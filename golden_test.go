package firemarshal

import (
	"io"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/boards"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim/rtlsim"
	"firemarshal/internal/workgen"
)

func mustAssembleGolden(t *testing.T, src string) *isa.Executable {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// Golden cycle counts captured from the pre-fast-path simulator. The
// cycle-exact platform's whole value proposition (§IV-C: "repeatable results
// down to an exact cycle-count") means any interpreter optimization must
// leave these bit-identical: the batched step loop and predecoded fetch path
// may only change how fast the host runs, never what the model observes.

// TestGoldenFig7Cycles locks the education case study's tiling sweep
// (matmul 64×64 on the gemmini profile) to its exact cycle counts.
func TestGoldenFig7Cycles(t *testing.T) {
	want := map[int]struct{ cycles, instrs uint64 }{
		1:  {349850, 45116},
		16: {226970, 45116},
	}
	for tile, w := range want {
		rtl, err := rtlsim.New(rtlsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		drivers, err := boards.DeviceProfile("gemmini", boards.ProfileOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range drivers {
			if err := d.Attach(rtl); err != nil {
				t.Fatal(err)
			}
		}
		res, err := rtl.Exec(mustAssembleGolden(t, workgen.MatmulSource(64, tile)), io.Discard)
		if err != nil {
			t.Fatalf("tile=%d: %v", tile, err)
		}
		if res.Cycles != w.cycles || res.Instrs != w.instrs {
			t.Errorf("tile=%d: got cycles=%d instrs=%d, want cycles=%d instrs=%d",
				tile, res.Cycles, res.Instrs, w.cycles, w.instrs)
		}
	}
}

// TestGoldenFig6Cycles locks the predictor-comparison study (test dataset,
// both predictors, full suite) to its exact cycle counts.
func TestGoldenFig6Cycles(t *testing.T) {
	type golden struct{ cycles, instrs uint64 }
	want := map[string]map[string]golden{
		"gshare": {
			"600.perlbench_s": {130037, 32745},
			"602.gcc_s":       {95826, 23078},
			"605.mcf_s":       {91330, 11706},
			"620.omnetpp_s":   {67816, 13518},
			"623.xalancbmk_s": {579180, 528236},
			"625.x264_s":      {1059338, 1040736},
			"631.deepsjeng_s": {109060, 25888},
			"641.leela_s":     {52909, 16013},
			"648.exchange2_s": {38975, 23239},
			"657.xz_s":        {3619696, 2056336},
		},
		"tage": {
			"600.perlbench_s": {127709, 32745},
			"602.gcc_s":       {92106, 23078},
			"605.mcf_s":       {91138, 11706},
			"620.omnetpp_s":   {66552, 13518},
			"623.xalancbmk_s": {578948, 528236},
			"625.x264_s":      {1059178, 1040736},
			"631.deepsjeng_s": {108196, 25888},
			"641.leela_s":     {50589, 16013},
			"648.exchange2_s": {38807, 23239},
			"657.xz_s":        {3618544, 2056336},
		},
	}
	for _, pred := range []string{"gshare", "tage"} {
		for _, bench := range workgen.IntSpeedSuite() {
			w, ok := want[pred][bench.Name]
			if !ok {
				t.Errorf("no golden value for pred=%s bench=%s", pred, bench.Name)
				continue
			}
			cfg := rtlsim.DefaultConfig()
			cfg.Predictor = pred
			p, err := rtlsim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := p.Exec(mustAssembleGolden(t, bench.Source("test")), io.Discard)
			if err != nil {
				t.Fatalf("pred=%s bench=%s: %v", pred, bench.Name, err)
			}
			if res.Cycles != w.cycles || res.Instrs != w.instrs {
				t.Errorf("pred=%s bench=%s: got cycles=%d instrs=%d, want cycles=%d instrs=%d",
					pred, bench.Name, res.Cycles, res.Instrs, w.cycles, w.instrs)
			}
		}
	}
}
