package firemarshal

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/core"
	"firemarshal/internal/hostutil"
)

// The shipped workload library (workloads/) must build and run — the
// paper's benefaction goal: "FireMarshal comes with several standard
// workloads that are configured to work on the target platform" (§II).

func shippedMarshal(t *testing.T) *core.Marshal {
	t.Helper()
	// Copy workloads/ into a scratch dir so host-init outputs and build
	// state never dirty the repository.
	scratch := t.TempDir()
	wlDir := filepath.Join(scratch, "workloads")
	if err := hostutil.CopyDir("workloads", wlDir); err != nil {
		t.Fatal(err)
	}
	m, err := core.New(filepath.Join(scratch, "work"), wlDir)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestShippedHelloWorkload(t *testing.T) {
	m := shippedMarshal(t)
	results, err := m.Test("hello", core.TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Passed {
		t.Errorf("hello test failed: %+v", results[0].Failures)
	}
}

func TestShippedFedoraPackagesWorkload(t *testing.T) {
	m := shippedMarshal(t)
	runs, err := m.Launch("fedora-packages", core.LaunchOpts{})
	if err != nil {
		t.Fatal(err)
	}
	uart, err := os.ReadFile(runs[0].Uartlog)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(uart), "Python 3.8.6") {
		t.Errorf("guest-init-installed python did not run:\n%s", uart)
	}
}

func TestShippedNoDiskWorkload(t *testing.T) {
	m := shippedMarshal(t)
	runs, err := m.Launch("nodisk-smoke", core.LaunchOpts{NoDisk: true})
	if err != nil {
		t.Fatal(err)
	}
	uart, _ := os.ReadFile(runs[0].Uartlog)
	if !strings.Contains(string(uart), "running without a disk device") {
		t.Errorf("nodisk output missing:\n%s", uart)
	}
	if !strings.Contains(string(uart), "Mounted root (initramfs)") {
		t.Error("nodisk boot should use initramfs root")
	}
}

func TestShippedCoreMarkWorkload(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("host-init needs the go toolchain on PATH")
	}
	// Build the masm cross-assembler onto PATH, as a user installing the
	// toolchain would.
	toolDir := t.TempDir()
	build := exec.Command(goBin, "build", "-o", filepath.Join(toolDir, "masm"), "firemarshal/cmd/masm")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building masm: %v\n%s", err, out)
	}
	t.Setenv("PATH", toolDir+string(os.PathListSeparator)+os.Getenv("PATH"))
	m := shippedMarshal(t)
	results, err := m.Test("coremark", core.TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Passed {
		t.Fatalf("coremark test failed: %+v", results[0].Failures)
	}
	// The post-run hook produced its summary.
	data, err := os.ReadFile(filepath.Join(m.RunDir("coremark"), "summary.txt"))
	if err != nil || !strings.Contains(string(data), "coremark summary: coremark,") {
		t.Errorf("post-run hook summary: %q %v", data, err)
	}
}

func TestShippedONNXWorkload(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("host-init needs the go toolchain on PATH")
	}
	toolDir := t.TempDir()
	build := exec.Command(goBin, "build", "-o", filepath.Join(toolDir, "masm"), "firemarshal/cmd/masm")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building masm: %v\n%s", err, out)
	}
	t.Setenv("PATH", toolDir+string(os.PathListSeparator)+os.Getenv("PATH"))
	m := shippedMarshal(t)
	results, err := m.Test("onnx-runtime", core.TestOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Passed {
		t.Fatalf("onnx-runtime test failed: %+v", results[0].Failures)
	}
	// The accelerator must actually have been used (gated by the kernel
	// config fragment + spike device profile).
	data, err := os.ReadFile(filepath.Join(m.RunDir("onnx-runtime"), "inference.csv"))
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Split(strings.TrimSpace(string(data)), ",")
	if len(fields) != 7 || fields[4] == "0" || fields[4] == "" {
		t.Errorf("accelerator cycles missing from %q", data)
	}
}
