// Command workgen emits generated benchmark workloads. Its -jobs N knob
// produces an N-job parallel benchmark workload (synthetic intspeed
// programs, round-robin) shared by the parallel-speedup demo and the
// launcher tests:
//
//	workgen -jobs 4 -out wl
//	marshal -workload-dirs wl launch -j 4 parjobs
package main

import (
	"flag"
	"fmt"
	"os"

	"firemarshal/internal/workgen"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("workgen", flag.ContinueOnError)
	jobs := fs.Int("jobs", 4, "number of jobs in the generated workload")
	out := fs.String("out", ".", "directory to write the workload and overlay into")
	dataset := fs.String("dataset", "test", `dataset scale: "test" (short) or "ref" (paper-scale, §IV-B)`)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path, err := workgen.EmitParallelWorkload(*out, *jobs, *dataset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "workgen:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d jobs, %s dataset)\n", path, *jobs, *dataset)
	fmt.Printf("launch with: marshal -workload-dirs %s launch -j %d parjobs\n", *out, *jobs)
	return 0
}
