package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/core"
)

func installedWorkload(t *testing.T, workloadJSON string, extra map[string]string) (string, string) {
	t.Helper()
	wlDir := t.TempDir()
	for name, content := range extra {
		p := filepath.Join(wlDir, name)
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(wlDir, "w.json"), []byte(workloadJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := core.New(t.TempDir(), wlDir)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := m.Install("w", core.InstallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return dir, t.TempDir()
}

func TestFireSimCLIRun(t *testing.T) {
	configDir, outDir := installedWorkload(t,
		`{"name":"w","base":"br-base","command":"echo firesim-cli > /output/o.txt","outputs":["/output/o.txt"]}`, nil)
	code := run([]string{"-config", configDir, "-output", outDir})
	if code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(outDir, "w", "o.txt"))
	if err != nil || !strings.Contains(string(data), "firesim-cli") {
		t.Errorf("output: %q %v", data, err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "w", "uartlog")); err != nil {
		t.Error("uartlog missing")
	}
}

func TestFireSimCLIVerify(t *testing.T) {
	configDir, outDir := installedWorkload(t,
		`{"name":"w","base":"br-base","command":"echo verify-me","testing":{"refDir":"refs"}}`,
		map[string]string{"refs/uartlog": "verify-me\n"})
	if code := run([]string{"-config", configDir, "-output", outDir, "-verify"}); code != 0 {
		t.Errorf("verify should pass, exit = %d", code)
	}
}

func TestFireSimCLIVerifyFails(t *testing.T) {
	configDir, outDir := installedWorkload(t,
		`{"name":"w","base":"br-base","command":"echo something","testing":{"refDir":"refs"}}`,
		map[string]string{"refs/uartlog": "not-present\n"})
	if code := run([]string{"-config", configDir, "-output", outDir, "-verify"}); code != 1 {
		t.Errorf("verify should fail, exit = %d", code)
	}
}

func TestFireSimCLIPredictorFlag(t *testing.T) {
	configDir, outDir := installedWorkload(t,
		`{"name":"w","base":"br-base","command":"echo x"}`, nil)
	if code := run([]string{"-config", configDir, "-output", outDir, "-predictor", "gshare"}); code != 0 {
		t.Error("gshare run failed")
	}
	if code := run([]string{"-config", configDir, "-output", outDir, "-predictor", "oracle"}); code != 1 {
		t.Error("bad predictor should fail")
	}
}

// TestFireSimCLIProfiles checks -cpuprofile and -memprofile both flush
// non-empty pprof files when the run returns — the same deferred path an
// interrupt drain exits through.
func TestFireSimCLIProfiles(t *testing.T) {
	configDir, outDir := installedWorkload(t,
		`{"name":"w","base":"br-base","command":"echo profiled"}`, nil)
	cpu := filepath.Join(t.TempDir(), "cpu.pprof")
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	if code := run([]string{"-config", configDir, "-output", outDir,
		"-cpuprofile", cpu, "-memprofile", mem}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	for name, p := range map[string]string{"cpuprofile": cpu, "memprofile": mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s not written: %v", name, err)
		} else if info.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestFireSimCLIArgErrors(t *testing.T) {
	if code := run([]string{}); code != 2 {
		t.Errorf("missing args exit = %d", code)
	}
	if code := run([]string{"-config", "/nonexistent", "-output", t.TempDir()}); code != 1 {
		t.Errorf("bad config exit = %d", code)
	}
}
