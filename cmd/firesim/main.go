// Command firesim is the cycle-exact simulator manager: it consumes
// workload configurations produced by `marshal install` and simulates each
// job on the FireSim-role RTL platform. Users provide the hardware
// configuration here (branch predictor, caches), exactly as §IV-B.1
// describes: "Users now interact with their RTL simulator as usual,
// providing their hardware configuration and any other simulation
// parameters they wish."
//
// Usage:
//
//	firesim -config DIR -output DIR [-predictor tage] [-j N] [-verify]
//	        [-resume] [-ckpt-every N] [-metrics FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"firemarshal/internal/fsrun"
	"firemarshal/internal/install"
	"firemarshal/internal/launcher"
	"firemarshal/internal/netsim"
	"firemarshal/internal/sim/rtlsim"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// splitAddrs parses a comma-separated worker address list, dropping empty
// entries (trailing commas, "").
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func run(args []string) int {
	fs := flag.NewFlagSet("firesim", flag.ContinueOnError)
	configDir := fs.String("config", "", "installed workload directory (from `marshal install`)")
	outputDir := fs.String("output", "", "directory for per-job run outputs")
	predictor := fs.String("predictor", "tage", "branch predictor: bimodal, gshare, tage, static")
	icacheKiB := fs.Int("icache-kib", 16, "L1 instruction cache size (KiB)")
	dcacheKiB := fs.Int("dcache-kib", 16, "L1 data cache size (KiB)")
	parallel := fs.Bool("parallel", false, "simulate independent jobs in parallel on the host (same as -j GOMAXPROCS)")
	var jobs int
	fs.IntVar(&jobs, "j", 0, "number of concurrent job simulations (0 = sequential, or all cores with -parallel)")
	fs.IntVar(&jobs, "jobs", 0, "alias for -j")
	timeout := fs.Duration("timeout", 0, "per-job simulation timeout (0 = none)")
	retries := fs.Int("retries", 0, "retry transiently-failing jobs up to N times")
	resume := fs.Bool("resume", false, "continue an interrupted run: carry nodes the journal records as ok, restore in-flight nodes from their latest checkpoint")
	ckptEvery := fs.Uint64("ckpt-every", 0, "snapshot each node's machine state every N retired instructions (0 = off)")
	metrics := fs.String("metrics", "", "write a JSON metrics snapshot to FILE after the run")
	workers := fs.String("workers", "", "comma-separated `marshal worker serve` addresses: simulate nodes on a worker fleet")
	remoteCache := fs.String("remote-cache", os.Getenv("MARSHAL_REMOTE_CACHE"), "shared cache server URL, required with -workers (default $MARSHAL_REMOTE_CACHE)")
	netLatency := fs.Uint64("net-latency", 0, "network one-way latency in cycles (0 = default)")
	netBandwidth := fs.Uint64("net-bandwidth", 0, "network bandwidth in bytes/cycle (0 = default)")
	verify := fs.Bool("verify", false, "compare outputs against the workload's reference directory")
	verbose := fs.Bool("v", false, "verbose output")
	cpuprofile := fs.String("cpuprofile", "", "write a host CPU profile of the simulation to this file")
	memprofile := fs.String("memprofile", "", "write a host heap profile to this file at exit (flushed even when the run is interrupted and drained)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *configDir == "" || *outputDir == "" {
		fmt.Fprintln(os.Stderr, "firesim: -config and -output are required")
		fs.PrintDefaults()
		return 2
	}

	cfg, err := install.Load(*configDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "firesim:", err)
		return 1
	}

	rtl := rtlsim.DefaultConfig()
	rtl.Predictor = *predictor
	rtl.ICache.SizeBytes = *icacheKiB << 10
	rtl.DCache.SizeBytes = *dcacheKiB << 10

	// Two-stage Ctrl-C, as in `marshal launch`: the first interrupt drains
	// — in-flight nodes finish, queued nodes are skipped — so the run still
	// returns through the deferred profile flushes below; the second kills
	// in-flight nodes too.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "\nfiresim: interrupt — draining (in-flight nodes finish; interrupt again to kill)")
		close(drain)
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "firesim: second interrupt — killing in-flight nodes")
		cancel()
	}()

	opts := fsrun.Options{
		RTL:          rtl,
		Jobs:         jobs,
		Parallel:     *parallel,
		Timeout:      *timeout,
		Retries:      *retries,
		OutputDir:    *outputDir,
		ManifestPath: filepath.Join(*outputDir, "manifest.jsonl"),
		Resume:       *resume,
		Context:      ctx,
		Drain:        drain,
		CkptEvery:    *ckptEvery,
		MetricsPath:  *metrics,
		Workers:      splitAddrs(*workers),
		RemoteCache:  *remoteCache,
	}
	if *netLatency != 0 || *netBandwidth != 0 {
		opts.Net = netsim.Config{LatencyCycles: *netLatency, BytesPerCycle: *netBandwidth}
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "firesim: cpuprofile:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "firesim: cpuprofile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "firesim: memprofile:", err)
			return 1
		}
		defer func() {
			runtime.GC() // materialize up-to-date allocation stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "firesim: memprofile:", err)
			}
			f.Close()
		}()
	}
	res, runErr := fsrun.Run(cfg, opts)
	if res == nil {
		fmt.Fprintln(os.Stderr, "firesim:", runErr)
		return 1
	}
	fmt.Printf("workload %s: %d node(s) simulated in %s\n", cfg.Workload, len(res.Jobs), res.HostTime.Round(time.Millisecond))
	for _, job := range res.Jobs {
		fmt.Printf("  %-24s exit=%-3d cycles=%-12d ipc=%.3f mispredict=%.4f outputs=%s\n",
			job.Name, job.ExitCode, job.Cycles, job.Stats.IPC(), job.Stats.MispredictRate(), job.OutputDir)
	}
	if res.Summary != nil && len(res.Summary.Jobs) > 0 {
		fmt.Printf("\n%s", launcher.FormatTable(res.Summary))
		fmt.Printf("manifest: %s\n", opts.ManifestPath)
	}
	if *metrics != "" {
		fmt.Printf("metrics: %s\n", *metrics)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "firesim:", runErr)
		return 1
	}

	if *verify {
		failures, err := fsrun.Verify(cfg, *outputDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "firesim verify:", err)
			return 1
		}
		if len(failures) > 0 {
			for _, f := range failures {
				fmt.Printf("VERIFY FAIL: %s\n", f)
			}
			return 1
		}
		fmt.Println("VERIFY PASS")
	}
	return 0
}
