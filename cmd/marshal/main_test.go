package main

import (
	"os"
	"path/filepath"
	"testing"
)

// cliEnv writes workload files and returns (workloadDir, workDir).
func cliEnv(t *testing.T, files map[string]string) (string, string) {
	t.Helper()
	wlDir := t.TempDir()
	for name, content := range files {
		p := filepath.Join(wlDir, name)
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return wlDir, t.TempDir()
}

func TestCLIBuildLaunch(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json": `{"name":"w","base":"br-base","command":"echo cli-test > /output/o.txt","outputs":["/output/o.txt"]}`,
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "build", "w"}); code != 0 {
		t.Fatalf("build exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(workDir, "images", "w.img")); err != nil {
		t.Error("image not built")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "launch", "w"}); code != 0 {
		t.Fatalf("launch exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(workDir, "runs", "w", "o.txt"))
	if err != nil || string(data) != "cli-test\n" {
		t.Errorf("launch output: %q %v", data, err)
	}
}

func TestCLITestCommand(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json":       `{"name":"w","base":"br-base","command":"echo pass-marker","testing":{"refDir":"refs"}}`,
		"refs/uartlog": "pass-marker\n",
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "test", "w"}); code != 0 {
		t.Errorf("passing test exit = %d", code)
	}
	// Failing reference.
	os.WriteFile(filepath.Join(wlDir, "refs", "uartlog"), []byte("absent\n"), 0o644)
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "test", "w"}); code != 1 {
		t.Errorf("failing test exit = %d, want 1", code)
	}
}

func TestCLIInstallCleanStatus(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json": `{"name":"w","base":"br-base","command":"echo x"}`,
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "install", "w"}); code != 0 {
		t.Fatal("install failed")
	}
	if _, err := os.Stat(filepath.Join(workDir, "firesim", "w", "config.json")); err != nil {
		t.Error("install config missing")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "status", "w"}); code != 0 {
		t.Error("status failed")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "clean", "w"}); code != 0 {
		t.Error("clean failed")
	}
	if _, err := os.Stat(filepath.Join(workDir, "images", "w.img")); !os.IsNotExist(err) {
		t.Error("clean left artifacts")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "list"}); code != 0 {
		t.Error("list failed")
	}
}

func TestCLIErrors(t *testing.T) {
	wlDir, workDir := cliEnv(t, nil)
	base := []string{"-workdir", workDir, "-workload-dirs", wlDir}
	if code := run(append(base, "build", "ghost")); code != 1 {
		t.Errorf("missing workload exit = %d", code)
	}
	if code := run(append(base, "frobnicate", "w")); code != 2 {
		t.Errorf("unknown command exit = %d", code)
	}
	if code := run(append(base, "build")); code != 2 {
		t.Errorf("missing argument exit = %d", code)
	}
	if code := run(base); code != 2 {
		t.Errorf("no command exit = %d", code)
	}
}

func TestCLINoDisk(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json": `{"name":"w","base":"br-base","command":"echo nodisk"}`,
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "build", "-nodisk", "w"}); code != 0 {
		t.Fatal("nodisk build failed")
	}
	if _, err := os.Stat(filepath.Join(workDir, "images", "w-bin-nodisk")); err != nil {
		t.Error("nodisk binary missing")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "launch", "-nodisk", "w"}); code != 0 {
		t.Error("nodisk launch failed")
	}
}

func TestCLIGraph(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"p.json": `{"name":"p","base":"br-base","overlay":"o"}`,
		"w.json": `{"name":"w","base":"p","command":"echo x","jobs":[{"name":"j0","command":"echo j"}]}`,
		"o/f":    "x",
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "graph", "w"}); code != 0 {
		t.Errorf("graph exit = %d", code)
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "graph", "ghost"}); code != 1 {
		t.Error("graph of missing workload should fail")
	}
}
