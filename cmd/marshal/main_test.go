package main

import (
	"os"
	"path/filepath"
	"testing"
)

// cliEnv writes workload files and returns (workloadDir, workDir).
func cliEnv(t *testing.T, files map[string]string) (string, string) {
	t.Helper()
	wlDir := t.TempDir()
	for name, content := range files {
		p := filepath.Join(wlDir, name)
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return wlDir, t.TempDir()
}

func TestCLIBuildLaunch(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json": `{"name":"w","base":"br-base","command":"echo cli-test > /output/o.txt","outputs":["/output/o.txt"]}`,
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "build", "w"}); code != 0 {
		t.Fatalf("build exit = %d", code)
	}
	if _, err := os.Stat(filepath.Join(workDir, "images", "w.img")); err != nil {
		t.Error("image not built")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "launch", "w"}); code != 0 {
		t.Fatalf("launch exit = %d", code)
	}
	data, err := os.ReadFile(filepath.Join(workDir, "runs", "w", "o.txt"))
	if err != nil || string(data) != "cli-test\n" {
		t.Errorf("launch output: %q %v", data, err)
	}
}

func TestCLITestCommand(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json":       `{"name":"w","base":"br-base","command":"echo pass-marker","testing":{"refDir":"refs"}}`,
		"refs/uartlog": "pass-marker\n",
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "test", "w"}); code != 0 {
		t.Errorf("passing test exit = %d", code)
	}
	// Failing reference.
	os.WriteFile(filepath.Join(wlDir, "refs", "uartlog"), []byte("absent\n"), 0o644)
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "test", "w"}); code != 1 {
		t.Errorf("failing test exit = %d, want 1", code)
	}
}

func TestCLIInstallCleanStatus(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json": `{"name":"w","base":"br-base","command":"echo x"}`,
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "install", "w"}); code != 0 {
		t.Fatal("install failed")
	}
	if _, err := os.Stat(filepath.Join(workDir, "firesim", "w", "config.json")); err != nil {
		t.Error("install config missing")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "status", "w"}); code != 0 {
		t.Error("status failed")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "clean", "w"}); code != 0 {
		t.Error("clean failed")
	}
	if _, err := os.Stat(filepath.Join(workDir, "images", "w.img")); !os.IsNotExist(err) {
		t.Error("clean left artifacts")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "list"}); code != 0 {
		t.Error("list failed")
	}
}

func TestCLIErrors(t *testing.T) {
	wlDir, workDir := cliEnv(t, nil)
	base := []string{"-workdir", workDir, "-workload-dirs", wlDir}
	if code := run(append(base, "build", "ghost")); code != 1 {
		t.Errorf("missing workload exit = %d", code)
	}
	if code := run(append(base, "frobnicate", "w")); code != 2 {
		t.Errorf("unknown command exit = %d", code)
	}
	if code := run(append(base, "build")); code != 2 {
		t.Errorf("missing argument exit = %d", code)
	}
	if code := run(base); code != 2 {
		t.Errorf("no command exit = %d", code)
	}
}

func TestCLINoDisk(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"w.json": `{"name":"w","base":"br-base","command":"echo nodisk"}`,
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "build", "-nodisk", "w"}); code != 0 {
		t.Fatal("nodisk build failed")
	}
	if _, err := os.Stat(filepath.Join(workDir, "images", "w-bin-nodisk")); err != nil {
		t.Error("nodisk binary missing")
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "launch", "-nodisk", "w"}); code != 0 {
		t.Error("nodisk launch failed")
	}
}

func TestCLIGraph(t *testing.T) {
	wlDir, workDir := cliEnv(t, map[string]string{
		"p.json": `{"name":"p","base":"br-base","overlay":"o"}`,
		"w.json": `{"name":"w","base":"p","command":"echo x","jobs":[{"name":"j0","command":"echo j"}]}`,
		"o/f":    "x",
	})
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "graph", "w"}); code != 0 {
		t.Errorf("graph exit = %d", code)
	}
	if code := run([]string{"-workdir", workDir, "-workload-dirs", wlDir, "graph", "ghost"}); code != 1 {
		t.Error("graph of missing workload should fail")
	}
}

// TestCLIVerifyFarm drives the verify-farm command through its three
// exit codes: 0 on a clean corpus, 1 when the seeded fault injects a
// real divergence, 2 on usage errors.
func TestCLIVerifyFarm(t *testing.T) {
	workDir := t.TempDir()
	if code := run([]string{"-workdir", workDir, "verify-farm",
		"-seeds", "1,2", "-rounds", "0", "-farm-seed", "9"}); code != 0 {
		t.Errorf("clean farm exit = %d, want 0", code)
	}
	if _, err := os.Stat(filepath.Join(workDir, "verify", "farm.jsonl")); err != nil {
		t.Error("farm manifest missing:", err)
	}
	if code := run([]string{"-workdir", workDir, "verify-farm",
		"-seeds", "7", "-rounds", "0", "-inject-fault", "fast:500:x27:0x1"}); code != 1 {
		t.Errorf("seeded-fault farm exit = %d, want 1", code)
	}
	if code := run([]string{"-workdir", workDir, "verify-farm", "-seeds", "zebra"}); code != 2 {
		t.Errorf("bad seed list exit = %d, want 2", code)
	}
	if code := run([]string{"-workdir", workDir, "verify-farm", "-seeds", "1", "extra-arg"}); code != 2 {
		t.Errorf("stray positional arg exit = %d, want 2", code)
	}
}

// TestParseSeeds covers the -seeds grammar, negative seeds included.
func TestParseSeeds(t *testing.T) {
	cases := []struct {
		in   string
		want []int64
	}{
		{"5", []int64{5}},
		{"1,2,3", []int64{1, 2, 3}},
		{"1-4", []int64{1, 2, 3, 4}},
		{"7,7,10-12", []int64{7, 7, 10, 11, 12}},
		{"-3", []int64{-3}},
		{"-2-1", []int64{-2, -1, 0, 1}},
		{" 1 , 2 ", []int64{1, 2}},
	}
	for _, c := range cases {
		got, err := parseSeeds(c.in)
		if err != nil {
			t.Errorf("parseSeeds(%q): %v", c.in, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseSeeds(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("parseSeeds(%q) = %v, want %v", c.in, got, c.want)
				break
			}
		}
	}
	for _, bad := range []string{"", ",", "x", "4-2", "1--", "1-2-3"} {
		if got, err := parseSeeds(bad); err == nil {
			t.Errorf("parseSeeds(%q) = %v, want error", bad, got)
		}
	}
}
