// Command marshal is the FireMarshal CLI (Table I): build, launch, test,
// and install software workloads for RISC-V full-stack simulation, plus the
// supporting clean, list, and status commands.
//
// Usage:
//
//	marshal [global flags] <command> [command flags] <workload>
//
// Global flags:
//
//	-workdir DIR      artifact/state directory (default ./marshal-work)
//	-workload-dirs    colon-separated workload search path (default .)
//	-cache-dir DIR    artifact-cache directory (default <workdir>/cache)
//	-remote-cache URL remote cache server (default $MARSHAL_REMOTE_CACHE)
//	-v                verbose progress output
//
// Commands:
//
//	build [-nodisk] <workload>          construct the boot binary + image
//	launch [-job J] [-spike] [-resume] [-ckpt-every N] [-metrics FILE] <workload>
//	                                    run in functional simulation
//	test [-manual DIR] <workload>       build, launch, compare outputs
//	install [-nodisk] <workload>        emit cycle-exact simulator config
//	clean <workload>                    drop artifacts and build state
//	list                                list known workloads
//	status <workload>                   show build state for a workload
//	cache stats|gc|verify [-repair]|serve [-hub URL]  manage the artifact cache
//	cached [-addr]                      shorthand for cache serve
//	metrics serve [-addr]               Prometheus endpoint + cache server
//	worker serve [-addr] [-slots N]     distributed-launch worker daemon
//	verify-farm [-seeds RANGE] [-rounds N] [-workers ...]
//	                                    differential-verification farm
//	chaos [-seed N] [-schedule-only] <workload>
//	                                    fault-injected loopback fleet run
//
// Every serve command takes -rate/-burst/-max-inflight backpressure flags:
// over-budget clients get 429 with a Retry-After hint the fleet clients
// honor with jittered backoff.
//
// A distributed launch (`launch -workers host1:port,host2:port`) schedules
// jobs across worker daemons, streaming artifacts, consoles, outputs, and
// checkpoints through the shared -remote-cache server.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/cas/remote"
	"firemarshal/internal/chaos"
	"firemarshal/internal/core"
	"firemarshal/internal/launcher"
	lremote "firemarshal/internal/launcher/remote"
	"firemarshal/internal/obs"
	"firemarshal/internal/ratelimit"
	"firemarshal/internal/spec"
)

// firemarshalWorkload aliases the spec type for the graph renderer.
type firemarshalWorkload = spec.Workload

// drainTimeout bounds how long a serving command waits for in-flight
// requests after SIGINT/SIGTERM before giving up on them.
const drainTimeout = 5 * time.Second

// serveGraceful runs an HTTP server until SIGINT/SIGTERM, then drains
// in-flight requests through http.Server.Shutdown under drainTimeout —
// Ctrl-C no longer truncates a cache transfer or drops a worker reply
// mid-flight. onStop, when non-nil, runs after the listener closes
// (worker shutdown: cancel leases and reap simulation goroutines).
func serveGraceful(name, addr string, h http.Handler, onStop func()) error {
	srv := &http.Server{Addr: addr, Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(os.Stderr, "%s: signal — draining in-flight requests (up to %s)\n", name, drainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	err := srv.Shutdown(dctx)
	if onStop != nil {
		onStop()
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	global := flag.NewFlagSet("marshal", flag.ContinueOnError)
	workDir := global.String("workdir", "./marshal-work", "artifact and state directory")
	workloadDirs := global.String("workload-dirs", ".", "colon-separated workload search path")
	cacheDir := global.String("cache-dir", "", "artifact-cache directory (default <workdir>/cache; share it to share builds)")
	remoteCache := global.String("remote-cache", os.Getenv("MARSHAL_REMOTE_CACHE"), "remote cache server URL (default $MARSHAL_REMOTE_CACHE)")
	verbose := global.Bool("v", false, "verbose output")
	global.Usage = func() { usage(global) }
	if err := global.Parse(args); err != nil {
		return 2
	}
	rest := global.Args()
	if len(rest) == 0 {
		usage(global)
		return 2
	}
	cmd, rest := rest[0], rest[1:]

	m, err := core.New(*workDir, filepath.SplitList(*workloadDirs)...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		return 1
	}
	if *verbose {
		m.Log = os.Stderr
	}
	m.CacheDir = *cacheDir
	m.RemoteCache = *remoteCache

	switch cmd {
	case "build":
		return cmdBuild(m, rest)
	case "launch":
		return cmdLaunch(m, rest)
	case "test":
		return cmdTest(m, rest)
	case "install":
		return cmdInstall(m, rest)
	case "clean":
		return cmdClean(m, rest)
	case "list":
		return cmdList(m)
	case "status":
		return cmdStatus(m, rest)
	case "graph":
		return cmdGraph(m, rest)
	case "cache":
		return cmdCache(m, rest)
	case "cached":
		return cmdCacheServe(m, rest)
	case "metrics":
		return cmdMetrics(m, rest)
	case "worker":
		return cmdWorker(m, rest)
	case "verify-farm":
		return cmdVerifyFarm(m, rest)
	case "chaos":
		return cmdChaos(m, rest)
	default:
		fmt.Fprintf(os.Stderr, "marshal: unknown command %q\n", cmd)
		usage(global)
		return 2
	}
}

func usage(fs *flag.FlagSet) {
	fmt.Fprint(os.Stderr, `usage: marshal [flags] <command> [command flags] <workload>

Commands (Table I):
  build     Construct the filesystem image and boot-binary
  launch    Launch this workload in functional simulation
            (-resume continues an interrupted run; -ckpt-every N snapshots
            machine state every N instructions for crash-safe resumption)
  test      Build and launch the workload and compare its outputs against a reference
  install   Set up a cycle-exact RTL simulator to launch this workload
  clean     Remove built artifacts and state for a workload
  list      List known workloads
  status    Show build status for a workload
  graph     Show a workload's inheritance chain and jobs
  cache     Manage the artifact cache: stats | gc | verify [-repair] |
            serve [-addr] [-hub URL]
            (verify -repair quarantines corrupt blobs and refetches
            referenced blobs from -remote-cache; serve -hub makes this
            server a write-through edge of a central cache)
  cached    Serve this checkout's artifact cache over HTTP (= cache serve)
  metrics   serve [-addr]: Prometheus /metrics endpoint plus the cache server
  worker    serve [-addr] [-slots N]: execute distributed-launch jobs
            (launch -workers a:1,b:2 schedules across such daemons)
  verify-farm  Run the differential-verification farm: generate workloads,
            lockstep-compare simulator tiers, bisect divergences to the
            exact instruction, dedup by signature (-workers shards the
            corpus across a fleet; exits 1 if any divergence is found)
  chaos     Run the workload on clean and fault-injected loopback fleets
            and assert bit-identical results (-seed names the schedule;
            -schedule-only prints it for replay diffing)

Serve commands accept -rate/-burst/-max-inflight per-client backpressure.

Flags:
`)
	fs.PrintDefaults()
}

// splitAddrs parses a comma-separated worker address list, dropping empty
// entries (trailing commas, "").
func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func oneWorkload(fs *flag.FlagSet, args []string) (string, bool) {
	if err := fs.Parse(args); err != nil {
		return "", false
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "marshal: expected exactly one workload argument")
		return "", false
	}
	return fs.Arg(0), true
}

func cmdBuild(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	noDisk := fs.Bool("nodisk", false, "embed the rootfs in the initramfs (no disk device)")
	wl, ok := oneWorkload(fs, args)
	if !ok {
		return 2
	}
	results, err := m.Build(wl, core.BuildOpts{NoDisk: *noDisk})
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal build:", err)
		return 1
	}
	for _, res := range results {
		fmt.Printf("built %s\n", res.Target)
		if res.Bin != "" {
			fmt.Printf("  bin: %s\n", res.Bin)
		}
		if res.Img != "" {
			fmt.Printf("  img: %s\n", res.Img)
		}
		if res.NoDiskBin != "" {
			fmt.Printf("  bin(nodisk): %s\n", res.NoDiskBin)
		}
	}
	return 0
}

func cmdLaunch(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("launch", flag.ContinueOnError)
	job := fs.String("job", "", "launch a specific job of a multi-job workload")
	spike := fs.Bool("spike", false, "use the Spike functional simulator variant")
	noDisk := fs.Bool("nodisk", false, "boot the initramfs-embedded binary")
	trace := fs.Bool("trace", false, "write a per-instruction trace to trace.log (slow)")
	var jobs int
	fs.IntVar(&jobs, "j", 0, "max concurrent job simulations (0 = GOMAXPROCS, 1 = sequential)")
	fs.IntVar(&jobs, "jobs", 0, "alias for -j")
	timeout := fs.Duration("timeout", 0, "per-job simulation timeout, e.g. 30s (0 = none)")
	retries := fs.Int("retries", 0, "retry attempts for transiently-failing jobs (with backoff)")
	resume := fs.Bool("resume", false, "continue an interrupted run: carry jobs the journal records as ok, restore in-flight jobs from their latest checkpoint")
	ckptEvery := fs.Uint64("ckpt-every", 0, "snapshot each job's machine state every N retired instructions (0 = off)")
	metrics := fs.String("metrics", "", "write a JSON metrics snapshot to FILE after the run")
	workers := fs.String("workers", "", "comma-separated `marshal worker serve` addresses: distribute jobs across a fleet (requires -remote-cache)")
	wl, ok := oneWorkload(fs, args)
	if !ok {
		return 2
	}

	// Two-stage Ctrl-C: the first interrupt drains (in-flight jobs finish,
	// queued jobs are skipped); the second kills in-flight jobs too.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	drain := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt)
	defer signal.Stop(sigc)
	go func() {
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "\nmarshal: interrupt — draining (in-flight jobs finish; interrupt again to kill)")
		close(drain)
		if _, ok := <-sigc; !ok {
			return
		}
		fmt.Fprintln(os.Stderr, "marshal: second interrupt — killing in-flight jobs")
		cancel()
	}()

	results, err := m.Launch(wl, core.LaunchOpts{
		Job:         *job,
		Spike:       *spike,
		NoDisk:      *noDisk,
		Trace:       *trace,
		ConsoleTee:  os.Stdout,
		Jobs:        jobs,
		JobTimeout:  *timeout,
		Retries:     *retries,
		Context:     ctx,
		Drain:       drain,
		Resume:      *resume,
		CkptEvery:   *ckptEvery,
		MetricsPath: *metrics,
		Workers:     splitAddrs(*workers),
	})
	for _, res := range results {
		fmt.Printf("\n%s: exit=%d cycles=%d outputs=%s\n", res.Target, res.ExitCode, res.Cycles, res.OutputDir)
	}
	if s := m.LastLaunch; s != nil {
		fmt.Printf("\n%s", launcher.FormatTable(s))
		fmt.Printf("manifest: %s\n", m.LastManifest)
	}
	if *metrics != "" {
		fmt.Printf("metrics: %s\n", *metrics)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal launch:", err)
		return 1
	}
	return 0
}

func cmdTest(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	manual := fs.String("manual", "", "compare an existing output directory instead of running")
	wl, ok := oneWorkload(fs, args)
	if !ok {
		return 2
	}
	results, err := m.Test(wl, core.TestOpts{Manual: *manual})
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal test:", err)
		return 1
	}
	failed := false
	for _, res := range results {
		if res.Passed {
			fmt.Printf("PASS %s\n", res.Target)
			continue
		}
		failed = true
		fmt.Printf("FAIL %s\n", res.Target)
		for _, f := range res.Failures {
			fmt.Printf("  %s\n", f)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func cmdInstall(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("install", flag.ContinueOnError)
	simName := fs.String("simulator", "firesim", "target RTL simulator connector")
	noDisk := fs.Bool("nodisk", false, "install the initramfs-embedded binaries")
	wl, ok := oneWorkload(fs, args)
	if !ok {
		return 2
	}
	dir, err := m.Install(wl, core.InstallOpts{Simulator: *simName, NoDisk: *noDisk})
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal install:", err)
		return 1
	}
	fmt.Printf("installed to %s\n", dir)
	fmt.Printf("run it with: firesim -config %s -output <dir>\n", dir)
	return 0
}

func cmdClean(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("clean", flag.ContinueOnError)
	wl, ok := oneWorkload(fs, args)
	if !ok {
		return 2
	}
	gc, err := m.Clean(wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal clean:", err)
		return 1
	}
	fmt.Printf("cache gc: removed %d actions, %d blobs, reclaimed %d bytes\n",
		gc.ActionsRemoved, gc.BlobsRemoved, gc.BytesReclaimed)
	return 0
}

// cmdCache manages the content-addressed artifact cache.
func cmdCache(m *core.Marshal, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "marshal cache: expected a subcommand: stats | gc | verify | serve")
		return 2
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "stats":
		return cmdCacheStats(m)
	case "gc":
		gc, err := m.CacheGC()
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal cache gc:", err)
			return 1
		}
		fmt.Printf("removed %d actions, %d blobs, reclaimed %d bytes\n",
			gc.ActionsRemoved, gc.BlobsRemoved, gc.BytesReclaimed)
		return 0
	case "verify":
		return cmdCacheVerify(m, rest)
	case "serve":
		return cmdCacheServe(m, rest)
	default:
		fmt.Fprintf(os.Stderr, "marshal cache: unknown subcommand %q (want stats | gc | verify | serve)\n", sub)
		return 2
	}
}

func openLocalStore(m *core.Marshal) (*cas.Store, error) {
	c, err := m.Cache()
	if err != nil {
		return nil, err
	}
	return c.Local(), nil
}

func cmdCacheStats(m *core.Marshal) int {
	store, err := openLocalStore(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal cache stats:", err)
		return 1
	}
	u, err := store.Usage()
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal cache stats:", err)
		return 1
	}
	fmt.Printf("cache dir: %s\n", store.Dir())
	fmt.Printf("blobs:     %d (%d bytes)\n", u.Blobs, u.BlobBytes)
	fmt.Printf("actions:   %d\n", u.Actions)
	return 0
}

func cmdCacheVerify(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("cache verify", flag.ContinueOnError)
	repair := fs.Bool("repair", false, "quarantine corrupt blobs and refetch referenced blobs from -remote-cache")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *repair {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		problems, healed, unhealed, err := m.CacheRepair(ctx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal cache verify -repair:", err)
			return 1
		}
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("repair: %d blob(s) healed from remote, %d unrecoverable\n", healed, unhealed)
		if unhealed > 0 {
			return 1
		}
		return 0
	}
	problems, err := m.CacheVerify()
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal cache verify:", err)
		return 1
	}
	if len(problems) == 0 {
		fmt.Println("cache OK")
		return 0
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	return 1
}

// cmdCacheServe runs the HTTP remote-cache server over this checkout's
// store, so other machines can point -remote-cache (or
// $MARSHAL_REMOTE_CACHE) at it.
// limitFlags registers the per-client backpressure flags every serve
// command shares; wrap applies them (a zero configuration wraps nothing).
func limitFlags(fs *flag.FlagSet) (wrap func(http.Handler) http.Handler) {
	rate := fs.Float64("rate", 0, "per-client sustained requests/sec; over-budget requests get 429 + Retry-After (0 = unlimited)")
	burst := fs.Int("burst", 0, "per-client burst size (default 2x -rate)")
	inflight := fs.Int("max-inflight", 0, "max concurrently-served requests across all clients (0 = unlimited)")
	return func(h http.Handler) http.Handler {
		return ratelimit.New(ratelimit.Options{RPS: *rate, Burst: *burst, MaxInFlight: *inflight}).Middleware(h)
	}
}

func cmdCacheServe(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("cache serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8414", "listen address")
	hub := fs.String("hub", "", "central cache URL; makes this server a write-through edge (PUTs replicate upward, GET misses read through, hub outages degrade to local-only)")
	limit := limitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	store, err := openLocalStore(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal cache serve:", err)
		return 1
	}
	srv := remote.NewServer(store)
	srv.SetObs(m.Obs)
	if *hub != "" {
		hc, err := m.HubCache(*hub)
		if err != nil {
			fmt.Fprintln(os.Stderr, "marshal cache serve:", err)
			return 1
		}
		srv.SetHub(hc)
		fmt.Printf("write-through hub: %s\n", *hub)
	}
	fmt.Printf("serving artifact cache %s on %s\n", store.Dir(), *addr)
	if err := serveGraceful("marshal cache serve", *addr, limit(srv), nil); err != nil {
		fmt.Fprintln(os.Stderr, "marshal cache serve:", err)
		return 1
	}
	return 0
}

// cmdMetrics exposes the observability surface: `metrics serve` runs an
// HTTP server with a Prometheus /metrics endpoint alongside the remote
// artifact-cache API (the cached-server plumbing), so one scrape target
// covers both the cache server's activity and its store usage.
func cmdMetrics(m *core.Marshal, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "marshal metrics: expected a subcommand: serve")
		return 2
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "serve":
		return cmdMetricsServe(m, rest)
	default:
		fmt.Fprintf(os.Stderr, "marshal metrics: unknown subcommand %q (want serve)\n", sub)
		return 2
	}
}

func cmdMetricsServe(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("metrics serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8415", "listen address")
	limit := limitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	store, err := openLocalStore(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal metrics serve:", err)
		return 1
	}
	// Store usage is point-in-time, not event-counted; the refresh hook
	// pulls it into gauges right before each scrape.
	refresh := func() {
		if u, err := store.Usage(); err == nil {
			obs.Default.Gauge("cas_store_blobs").Set(float64(u.Blobs))
			obs.Default.Gauge("cas_store_blob_bytes").Set(float64(u.BlobBytes))
			obs.Default.Gauge("cas_store_actions").Set(float64(u.Actions))
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(nil, refresh))
	mux.Handle("/", remote.NewServer(store))
	fmt.Printf("serving /metrics and artifact cache %s on %s\n", store.Dir(), *addr)
	if err := serveGraceful("marshal metrics serve", *addr, limit(mux), nil); err != nil {
		fmt.Fprintln(os.Stderr, "marshal metrics serve:", err)
		return 1
	}
	return 0
}

// cmdWorker runs the distributed-launch worker daemon: it serves the
// fleet protocol and executes leased jobs against the shared remote cache.
func cmdWorker(m *core.Marshal, args []string) int {
	if len(args) == 0 || args[0] != "serve" {
		fmt.Fprintln(os.Stderr, "marshal worker: expected a subcommand: serve")
		return 2
	}
	return cmdWorkerServe(m, args[1:])
}

func cmdWorkerServe(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("worker serve", flag.ContinueOnError)
	addr := fs.String("addr", ":8416", "listen address")
	slots := fs.Int("slots", 1, "concurrent simulation slots (leases beyond it queue)")
	timeout := fs.Duration("timeout", 0, "default per-attempt timeout for leases that carry none")
	retries := fs.Int("retries", 0, "default retry attempts for leases that carry none")
	limit := limitFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	cache, err := m.Cache()
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal worker serve:", err)
		return 1
	}
	rem := cache.Remote()
	if rem == nil {
		fmt.Fprintln(os.Stderr, "marshal worker serve: a worker needs the fleet's shared cache: set -remote-cache (or $MARSHAL_REMOTE_CACHE) to a `marshal cache serve` server")
		return 1
	}
	w := lremote.NewWorker(lremote.WorkerConfig{
		Runner: &lremote.ArtifactRunner{
			Store:   cache.Local(),
			Remote:  rem,
			CkptDir: m.CkptDir(),
			Obs:     m.Obs,
			Log:     os.Stderr,
		},
		Slots:   *slots,
		Timeout: *timeout,
		Retries: *retries,
		Obs:     m.Obs,
		Log:     os.Stderr,
	})
	fmt.Printf("worker: serving on %s (slots=%d, shared cache=%s)\n", *addr, *slots, m.RemoteCache)
	if err := serveGraceful("marshal worker", *addr, limit(w), w.Close); err != nil {
		fmt.Fprintln(os.Stderr, "marshal worker serve:", err)
		return 1
	}
	return 0
}

// parseSeeds parses a -seeds list: comma-separated integers and
// inclusive ranges, e.g. "1,2,10-14".
func parseSeeds(s string) ([]int64, error) {
	var seeds []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		// Split on a dash AFTER the first character so negative seeds
		// ("-3", "-5--1") still parse.
		if i := strings.Index(part[1:], "-"); i >= 0 {
			lo, err := strconv.ParseInt(part[:i+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
			hi, err := strconv.ParseInt(part[i+2:], 10, 64)
			if err != nil || hi < lo {
				return nil, fmt.Errorf("bad seed range %q", part)
			}
			for v := lo; v <= hi; v++ {
				seeds = append(seeds, v)
			}
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q", part)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("empty seed list")
	}
	return seeds, nil
}

// cmdVerifyFarm runs one differential-verification farm session and
// reports its findings. Exit status: 0 when every workload agreed across
// tiers, 1 when any divergence signature was found, 2 on usage errors.
func cmdVerifyFarm(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("verify-farm", flag.ContinueOnError)
	seedSpec := fs.String("seeds", "1-8", "corpus seeds: comma list and inclusive ranges, e.g. 1,2,10-14")
	rounds := fs.Int("rounds", 1, "coverage-guided mutation rounds after the seed round")
	mutations := fs.Int("mutations", 0, "mutants per round (0 = one per seed)")
	maxEntries := fs.Int("max-entries", 0, "stop after N corpus entries (0 = unbounded)")
	maxInstrs := fs.Uint64("max-instrs", 0, "per-workload instruction budget (0 = default)")
	ckptEvery := fs.Uint64("ckpt-every", 0, "bisector coarse checkpoint interval (0 = default)")
	rtlEvery := fs.Int("rtl-every", 0, "cycle-exact spot-check every Nth clean entry (0 = off)")
	farmSeed := fs.Int64("farm-seed", 0, "mutation RNG seed (fixed => byte-identical manifests)")
	fault := fs.String("inject-fault", "", "seeded-fault self-test: tier:instr:reg:xor, e.g. fast:5000:x27:0x1")
	var jobs int
	fs.IntVar(&jobs, "j", 0, "evaluation parallelism (0 = GOMAXPROCS)")
	fs.IntVar(&jobs, "jobs", 0, "alias for -j")
	timeout := fs.Duration("timeout", 0, "time-box the whole session, e.g. 5m (0 = none)")
	out := fs.String("out", "", "manifest path (default <workdir>/verify/farm.jsonl)")
	workers := fs.String("workers", "", "comma-separated worker addresses: shard the corpus across a fleet (requires -remote-cache)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "marshal verify-farm: unexpected arguments (the farm generates its own workloads)")
		return 2
	}
	seeds, err := parseSeeds(*seedSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal verify-farm:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := m.VerifyFarm(ctx, core.VerifyOpts{
		Seeds:      seeds,
		Rounds:     *rounds,
		Mutations:  *mutations,
		MaxEntries: *maxEntries,
		MaxInstrs:  *maxInstrs,
		CkptEvery:  *ckptEvery,
		RTLEvery:   *rtlEvery,
		FarmSeed:   *farmSeed,
		Fault:      *fault,
		Jobs:       jobs,
		Timeout:    *timeout,
		Out:        *out,
		Workers:    splitAddrs(*workers),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal verify-farm:", err)
		return 1
	}

	fmt.Printf("verify-farm: %d entries, %d divergences, %d unique signatures\n",
		res.Entries, res.Divergences, len(res.Signatures))
	fmt.Print(res.Coverage.Report())
	fmt.Printf("manifest: %s\n", res.Manifest)
	if len(res.Signatures) == 0 {
		fmt.Println("PASS: all tiers agree on every workload")
		return 0
	}
	sigs := make([]string, 0, len(res.Signatures))
	for sig := range res.Signatures {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	for _, sig := range sigs {
		fmt.Printf("FAIL %s: %d hit(s)", sig, res.Signatures[sig])
		if d, ok := res.Repros[sig]; ok {
			fmt.Printf(", repro %s", d)
		}
		fmt.Println()
	}
	return 1
}

// cmdChaos runs the chaos gate: a clean loopback worker fleet and a
// fault-injected one, asserting the workload survives the schedule with
// bit-identical results. -schedule-only prints the seed's deterministic
// fault schedule without running anything — diffing two invocations is
// the replay check.
func cmdChaos(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "fault-schedule seed (same seed = same schedule)")
	workers := fs.Int("workers", 3, "loopback fleet size")
	scheduleOnly := fs.Bool("schedule-only", false, "print the seed's fault schedule and exit (no fleet)")
	hedgeAfter := fs.Duration("hedge-after", 0, "straggler-hedging threshold (default 250ms)")
	slowDelay := fs.Duration("slow-delay", 0, "injected delay on the slow worker's leases (default 2s)")
	timeout := fs.Duration("timeout", 0, "per-job simulation timeout (0 = none)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scheduleOnly {
		plan := chaos.DefaultPlan(*seed)
		fmt.Printf("seed %d fingerprint %s\n", *seed, plan.Fingerprint())
		for _, site := range []string{"coord-cache", "coord-worker", "worker0-cache", "worker0-store"} {
			plan.Describe(os.Stdout, site, 32)
		}
		return 0
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "marshal chaos: expected exactly one workload argument")
		return 2
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	_, err := m.Chaos(ctx, fs.Arg(0), core.ChaosOpts{
		Seed:         *seed,
		Workers:      *workers,
		HedgeAfter:   *hedgeAfter,
		SlowJobDelay: *slowDelay,
		JobTimeout:   *timeout,
		Out:          os.Stdout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal chaos:", err)
		return 1
	}
	return 0
}

func cmdList(m *core.Marshal) int {
	fmt.Println("built-in workloads:")
	for _, name := range m.Loader.Builtins() {
		fmt.Printf("  %s\n", name)
	}
	fmt.Println("search path:")
	for _, dir := range m.Loader.SearchPath {
		fmt.Printf("  %s\n", dir)
		entries, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".json") || strings.HasSuffix(e.Name(), ".yaml") {
				fmt.Printf("    %s\n", e.Name())
			}
		}
	}
	return 0
}

func cmdGraph(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("graph", flag.ContinueOnError)
	wl, ok := oneWorkload(fs, args)
	if !ok {
		return 2
	}
	w, err := m.Loader.Load(wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal graph:", err)
		return 1
	}
	chain := w.Chain()
	for i, c := range chain {
		indent := strings.Repeat("  ", i)
		details := describeWorkload(c)
		fmt.Printf("%s%s%s\n", indent, c.Name, details)
	}
	for _, job := range w.Jobs {
		base := w.Name + " (implicit)"
		if job.Base != "" {
			base = job.Base
		}
		fmt.Printf("%sjob %s <- %s%s\n", strings.Repeat("  ", len(chain)), job.Name, base, describeWorkload(job))
	}
	return 0
}

// describeWorkload summarizes the options a workload adds over its base.
func describeWorkload(w *firemarshalWorkload) string {
	var opts []string
	if w.Command != "" {
		opts = append(opts, "command")
	}
	if w.Run != "" {
		opts = append(opts, "run")
	}
	if w.Overlay != "" {
		opts = append(opts, "overlay")
	}
	if len(w.Files) > 0 {
		opts = append(opts, "files")
	}
	if w.HostInit != "" {
		opts = append(opts, "host-init")
	}
	if w.GuestInit != "" {
		opts = append(opts, "guest-init")
	}
	if w.Linux != nil {
		opts = append(opts, "linux")
	}
	if w.Firmware != nil {
		opts = append(opts, "firmware")
	}
	if w.Spike != "" {
		opts = append(opts, "spike")
	}
	if w.Bin != "" {
		opts = append(opts, "bin")
	}
	if w.Img != "" {
		opts = append(opts, "img")
	}
	if w.Distro != "" {
		opts = append(opts, "distro="+w.Distro)
	}
	if len(opts) == 0 {
		return ""
	}
	return "  [" + strings.Join(opts, " ") + "]"
}

func cmdStatus(m *core.Marshal, args []string) int {
	fs := flag.NewFlagSet("status", flag.ContinueOnError)
	wl, ok := oneWorkload(fs, args)
	if !ok {
		return 2
	}
	w, err := m.Loader.Load(wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal status:", err)
		return 1
	}
	for _, tgt := range core.Targets(w) {
		fmt.Printf("%s:\n", tgt.Name)
		for _, p := range []struct{ label, path string }{
			{"bin", m.BinPath(tgt.Name)},
			{"img", m.ImgPath(tgt.Name)},
			{"bin(nodisk)", m.NoDiskBinPath(tgt.Name)},
		} {
			if info, err := os.Stat(p.path); err == nil {
				fmt.Printf("  %-12s %s (%d bytes)\n", p.label, p.path, info.Size())
			} else {
				fmt.Printf("  %-12s (not built)\n", p.label)
			}
		}
	}
	return 0
}
