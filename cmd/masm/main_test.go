package main

import (
	"os"
	"path/filepath"
	"testing"

	"firemarshal/internal/isa"
)

func TestMasmAssembles(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "prog.s")
	out := filepath.Join(dir, "prog.bin")
	os.WriteFile(src, []byte("_start:\n    li a0, 0\n    li a7, 93\n    ecall\n"), 0o644)
	if code := run([]string{"-o", out, src}); code != 0 {
		t.Fatalf("exit = %d", code)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := isa.DecodeExecutable(data)
	if err != nil {
		t.Fatal(err)
	}
	if exe.Entry == 0 || len(exe.Segments) == 0 {
		t.Errorf("executable malformed: %+v", exe)
	}
	info, _ := os.Stat(out)
	if info.Mode()&0o111 == 0 {
		t.Error("output should be executable")
	}
}

func TestMasmTextBase(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.s")
	out := filepath.Join(dir, "p.bin")
	os.WriteFile(src, []byte("_start:\n    ecall\n"), 0o644)
	if code := run([]string{"-o", out, "-text-base", "65536", src}); code != 0 {
		t.Fatal("custom text base failed")
	}
	data, _ := os.ReadFile(out)
	exe, _ := isa.DecodeExecutable(data)
	if exe.Entry != 65536 {
		t.Errorf("entry = %#x", exe.Entry)
	}
}

func TestMasmErrors(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.s")
	os.WriteFile(bad, []byte("_start:\n    bogus a0\n"), 0o644)
	if code := run([]string{"-o", filepath.Join(dir, "x"), bad}); code != 1 {
		t.Error("assembly error should exit 1")
	}
	if code := run([]string{"-o", filepath.Join(dir, "x"), filepath.Join(dir, "missing.s")}); code != 1 {
		t.Error("missing input should exit 1")
	}
	if code := run([]string{}); code != 2 {
		t.Error("no input should exit 2")
	}
	if code := run([]string{"a.s", "b.s"}); code != 2 {
		t.Error("two inputs should exit 2")
	}
}
