// Command masm is the guest assembler — the cross-compilation toolchain a
// FireMarshal host-init script invokes (§IV-A.1: "a script to cross-compile
// the benchmarks (using the host-init option)"). It assembles an RV64IM
// subset source file into an MEX1 guest executable.
//
// Usage:
//
//	masm -o out.bin input.s
package main

import (
	"flag"
	"fmt"
	"os"

	"firemarshal/internal/asm"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/isa"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("masm", flag.ContinueOnError)
	out := fs.String("o", "a.bin", "output executable path")
	textBase := fs.Uint64("text-base", 0, "text section load address (default 0x10000)")
	disasm := fs.Bool("d", false, "disassemble an existing executable instead of assembling")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "masm: expected exactly one input file")
		return 2
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "masm:", err)
		return 1
	}
	if *disasm {
		exe, err := isa.DecodeExecutable(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "masm: %s: %v\n", fs.Arg(0), err)
			return 1
		}
		for _, line := range isa.DisassembleExecutable(exe) {
			fmt.Println(line)
		}
		return 0
	}
	exe, err := asm.Assemble(string(src), asm.Options{TextBase: *textBase})
	if err != nil {
		fmt.Fprintf(os.Stderr, "masm: %s: %v\n", fs.Arg(0), err)
		return 1
	}
	if err := hostutil.WriteFileAtomic(*out, isa.EncodeExecutable(exe), 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "masm:", err)
		return 1
	}
	return 0
}
