package firemarshal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/workgen"
)

// TestPublicAPIQuickstart drives the whole lifecycle through the public
// façade only — what a downstream user of the library sees.
func TestPublicAPIQuickstart(t *testing.T) {
	wlDir := t.TempDir()
	os.WriteFile(filepath.Join(wlDir, "q.json"), []byte(
		`{"name":"q","base":"br-base","command":"echo api-quickstart > /output/r.txt","outputs":["/output/r.txt"],"testing":{"refDir":"refs"}}`), 0o644)
	os.MkdirAll(filepath.Join(wlDir, "refs"), 0o755)
	os.WriteFile(filepath.Join(wlDir, "refs", "r.txt"), []byte("api-quickstart\n"), 0o644)

	m, err := New(t.TempDir(), wlDir)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := m.Build("q", BuildOpts{}); err != nil {
		t.Fatalf("build: %v", err)
	}
	runs, err := m.Launch("q", LaunchOpts{})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	if runs[0].ExitCode != 0 {
		t.Fatalf("exit = %d", runs[0].ExitCode)
	}
	tests, err := m.Test("q", TestOpts{})
	if err != nil || !tests[0].Passed {
		t.Fatalf("test: %v %+v", err, tests)
	}
	dir, err := m.Install("q", InstallOpts{})
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	cfg, err := LoadInstalled(dir)
	if err != nil {
		t.Fatal(err)
	}
	outDir := filepath.Join(t.TempDir(), "out")
	res, err := RunInstalled(cfg, SimOptions{RTL: DefaultRTLConfig(), OutputDir: outDir})
	if err != nil {
		t.Fatalf("run installed: %v", err)
	}
	if len(res.Jobs) != 1 || res.Jobs[0].ExitCode != 0 {
		t.Fatalf("sim jobs: %+v", res.Jobs)
	}
	if err := VerifyInstalled(cfg, outDir); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestPFAEndToEndMultiNode is the full §IV-A integration: the Listing 1
// workload hierarchy, developed against the Spike golden model and then
// run as a two-node cycle-exact simulation with RDMA over the fabric. The
// per-step hardware latencies must agree between the two simulation levels.
func TestPFAEndToEndMultiNode(t *testing.T) {
	wlDir := t.TempDir()
	const pages = 4
	writeExe := func(name, src string) {
		exe, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p := filepath.Join(wlDir, name)
		os.MkdirAll(filepath.Dir(p), 0o755)
		if err := os.WriteFile(p, isa.EncodeExecutable(exe), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	writeExe("pfa-root/pfa/latency", workgen.PFAClientSource(pages))
	writeExe("serve", workgen.PFAServerSource(pages))
	os.WriteFile(filepath.Join(wlDir, "pfa.kfrag"), []byte("CONFIG_PFA=y\n"), 0o644)
	os.WriteFile(filepath.Join(wlDir, "pfa-base.json"), []byte(`{
  "name": "pfa-base", "base": "buildroot",
  "linux": {"config": "pfa.kfrag"},
  "overlay": "pfa-root", "spike": "pfa-spike"
}`), 0o644)
	os.WriteFile(filepath.Join(wlDir, "latency-microbenchmark.json"), []byte(`{
  "name": "latency-microbenchmark", "base": "pfa-base",
  "jobs": [
    {"name": "client", "command": "/pfa/latency > /output/latency.csv", "outputs": ["/output/latency.csv"]},
    {"name": "server", "base": "bare-metal", "bin": "serve"}
  ]
}`), 0o644)

	m, err := New(t.TempDir(), wlDir)
	if err != nil {
		t.Fatal(err)
	}

	// Development: client against the Spike golden model.
	runs, err := m.Launch("latency-microbenchmark", LaunchOpts{Job: "client"})
	if err != nil {
		t.Fatal(err)
	}
	funcCSV, err := os.ReadFile(filepath.Join(runs[0].OutputDir, "latency.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Evaluation: both nodes cycle-exactly with RDMA over the fabric.
	dir, err := m.Install("latency-microbenchmark", InstallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadInstalled(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The install layer must have wired the client to the RDMA profile and
	// found the bare server node.
	var client, server *JobResult
	foundRDMA := false
	for _, job := range cfg.Jobs {
		if job.Devices == "pfa-rdma" && strings.HasSuffix(job.ServerNode, "server") {
			foundRDMA = true
		}
	}
	if !foundRDMA {
		t.Fatalf("install did not wire RDMA: %+v", cfg.Jobs)
	}
	outDir := filepath.Join(t.TempDir(), "sim")
	res, err := RunInstalled(cfg, SimOptions{RTL: DefaultRTLConfig(), OutputDir: outDir})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Jobs {
		switch {
		case strings.HasSuffix(res.Jobs[i].Name, "client"):
			client = &res.Jobs[i]
		case strings.HasSuffix(res.Jobs[i].Name, "server"):
			server = &res.Jobs[i]
		}
	}
	if client == nil || server == nil {
		t.Fatalf("jobs: %+v", res.Jobs)
	}
	if server.ExitCode != 0 || client.ExitCode != 0 {
		t.Fatalf("exit codes: client=%d server=%d", client.ExitCode, server.ExitCode)
	}
	rtlCSV, err := os.ReadFile(filepath.Join(client.OutputDir, "latency.csv"))
	if err != nil {
		t.Fatal(err)
	}

	// Hardware step latencies (detect, walk, install) agree across levels;
	// only the network fetch differs (golden emulation vs real fabric).
	fRow := strings.Split(strings.Split(string(funcCSV), "\n")[1], ",")
	rRow := strings.Split(strings.Split(string(rtlCSV), "\n")[1], ",")
	for _, idx := range []int{1, 2, 4} {
		if fRow[idx] != rRow[idx] {
			t.Errorf("step %d differs: golden=%s rtl=%s", idx, fRow[idx], rRow[idx])
		}
	}
	if fRow[3] == "0" || rRow[3] == "0" {
		t.Error("fetch latency missing")
	}

	// Determinism: a second cycle-exact run gives identical cycles.
	res2, err := RunInstalled(cfg, SimOptions{RTL: DefaultRTLConfig(), OutputDir: filepath.Join(t.TempDir(), "sim2")})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Jobs {
		if res.Jobs[i].Cycles != res2.Jobs[i].Cycles {
			t.Errorf("node %s cycles differ across runs: %d vs %d",
				res.Jobs[i].Name, res.Jobs[i].Cycles, res2.Jobs[i].Cycles)
		}
	}
}

// TestVerifyErrorFormatting covers the public error type.
func TestVerifyErrorFormatting(t *testing.T) {
	wlDir := t.TempDir()
	os.WriteFile(filepath.Join(wlDir, "q.json"), []byte(
		`{"name":"q","base":"br-base","command":"echo actual","testing":{"refDir":"refs"}}`), 0o644)
	os.MkdirAll(filepath.Join(wlDir, "refs"), 0o755)
	os.WriteFile(filepath.Join(wlDir, "refs", "uartlog"), []byte("never-printed\n"), 0o644)
	m, _ := New(t.TempDir(), wlDir)
	dir, err := m.Install("q", InstallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := LoadInstalled(dir)
	outDir := filepath.Join(t.TempDir(), "o")
	if _, err := RunInstalled(cfg, SimOptions{RTL: DefaultRTLConfig(), OutputDir: outDir}); err != nil {
		t.Fatal(err)
	}
	err = VerifyInstalled(cfg, outDir)
	if err == nil {
		t.Fatal("verify should fail")
	}
	if !strings.Contains(err.Error(), "uartlog") {
		t.Errorf("error should name the failing reference: %v", err)
	}
}
