// SPEC2017 case study (§IV-B, Listings 2-3, Fig. 6): provide the intspeed
// benchmark suite as a reusable FireMarshal workload and use it to compare
// two branch predictors on the same hardware platform.
//
// The flow mirrors the paper's user experience (§IV-B.1):
//
//  1. "Install SPEC": the suite binaries are cross-compiled (generated and
//     assembled here — SPEC itself is licensed software).
//  2. Write the workload: ten jobs, one per benchmark, differing only in
//     the command (Listing 2).
//  3. marshal build, marshal install.
//  4. Run the RTL simulation twice — once with the Gshare predictor (BOOM
//     v2) and once with TAGE — with jobs simulated in parallel.
//  5. The post-run processing combines per-benchmark results into a CSV
//     like Listing 3 and prints the score comparison (Fig. 6's data).
//
// Run with: go run ./examples/spec2017
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"firemarshal"
	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/workgen"
)

func main() {
	scratch, err := os.MkdirTemp("", "marshal-spec-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	wlDir := filepath.Join(scratch, "workloads")
	binDir := filepath.Join(wlDir, "overlay", "intspeed", "spec", "bin")
	os.MkdirAll(binDir, 0o755)

	// Step 1-2: cross-compile the suite (Speckle's role) into the overlay.
	suite := workgen.IntSpeedSuite()
	for _, b := range suite {
		exe, err := asm.Assemble(b.Source("test"), asm.Options{})
		if err != nil {
			log.Fatalf("%s: %v", b.Name, err)
		}
		if err := os.WriteFile(filepath.Join(binDir, b.Name), isa.EncodeExecutable(exe), 0o755); err != nil {
			log.Fatal(err)
		}
	}
	os.WriteFile(filepath.Join(wlDir, "overlay", "intspeed", "intspeed.sh"),
		[]byte(workgen.IntSpeedRunScript()), 0o755)

	// The workload of Listing 2: ten jobs, one per benchmark, each
	// differing only in the command option.
	var jobs []string
	for _, b := range suite {
		jobs = append(jobs, fmt.Sprintf(
			`    { "name": %q, "command": "/intspeed.sh %s --threads 1" }`, b.Name, b.Name))
	}
	workload := fmt.Sprintf(`{
  "name": "intspeed",
  "base": "buildroot",
  "overlay": "overlay/intspeed",
  "rootfs-size": "3GiB",
  "outputs": ["/output"],
  "jobs": [
%s
  ]
}`, strings.Join(jobs, ",\n"))
	os.WriteFile(filepath.Join(wlDir, "intspeed.json"), []byte(workload), 0o644)
	fmt.Println("intspeed.json (Listing 2):")
	fmt.Println(firstLines(workload, 10), "  ...")

	m, err := firemarshal.New(filepath.Join(scratch, "work"), wlDir)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: marshal build + install (one command each).
	fmt.Println("\n== marshal build intspeed.json && marshal install intspeed.json ==")
	dir, err := m.Install("intspeed", firemarshal.InstallOpts{})
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := firemarshal.LoadInstalled(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed %d jobs (each becomes a FireSim node, run in parallel)\n", len(cfg.Jobs))

	// Step 4: run under both branch predictors.
	type row struct {
		cycles uint64
		score  float64
	}
	results := map[string]map[string]row{} // predictor -> bench -> row
	for _, predictor := range []string{"gshare", "tage"} {
		rtl := firemarshal.DefaultRTLConfig()
		rtl.Predictor = predictor
		simRes, err := firemarshal.RunInstalled(cfg, firemarshal.SimOptions{
			RTL:       rtl,
			Parallel:  true,
			OutputDir: filepath.Join(scratch, "sim-"+predictor),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: simulated %d nodes in %s (host wall clock)\n",
			predictor, len(simRes.Jobs), simRes.HostTime.Round(1000000))

		// Step 5: combine per-benchmark results (the post-run-hook's job).
		results[predictor] = map[string]row{}
		for _, job := range simRes.Jobs {
			data, err := os.ReadFile(filepath.Join(job.OutputDir, "output", "results.csv"))
			if err != nil {
				log.Fatalf("%s: %v", job.Name, err)
			}
			fields := strings.Split(strings.TrimSpace(string(data)), ",")
			name := fields[0]
			cycles, _ := strconv.ParseUint(fields[1], 10, 64)
			ref := refSeconds(suite, name)
			realTime := float64(cycles) / 1e9 // 1 GHz
			results[predictor][name] = row{cycles: cycles, score: ref / realTime}
		}
	}

	// Listing 3 style CSV for the TAGE configuration.
	fmt.Println("\nname,RealTime,score   (TAGE configuration, Listing 3 format)")
	var names []string
	for name := range results["tage"] {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := results["tage"][name]
		fmt.Printf("%s,%.6f,%.2f\n", name, float64(r.cycles)/1e9, r.score)
	}

	// Fig. 6: per-benchmark score comparison.
	fmt.Println("\nFig. 6 — intspeed score by branch predictor (higher is better):")
	fmt.Printf("%-20s %10s %10s %8s\n", "benchmark", "gshare", "tage", "tage/gsh")
	var gMean float64
	wins := 0
	for _, name := range names {
		g, t := results["gshare"][name], results["tage"][name]
		ratio := t.score / g.score
		gMean += ratio
		if ratio >= 1 {
			wins++
		}
		fmt.Printf("%-20s %10.2f %10.2f %8.3f\n", name, g.score, t.score, ratio)
	}
	fmt.Printf("\nTAGE wins on %d/%d benchmarks (mean ratio %.3f)\n", wins, len(names), gMean/float64(len(names)))
}

func refSeconds(suite []workgen.Benchmark, name string) float64 {
	for _, b := range suite {
		if b.Name == name {
			return b.RefSeconds
		}
	}
	return 1
}

func firstLines(s string, n int) string {
	lines := strings.Split(s, "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
