// PFA case study (§IV-A, Listing 1): develop and evaluate the Page Fault
// Accelerator with FireMarshal.
//
// The example reconstructs the paper's workload hierarchy:
//
//	pfa-base                 — common setup: PFA kernel driver fragment,
//	                           test overlay, Spike golden model
//	latency-microbenchmark   — two jobs: a Linux client measuring per-step
//	                           remote-page-fault latency, and a bare-metal
//	                           memory server (Listing 1, lower)
//
// Development happens against the Spike golden model (emulated remote
// memory); the identical workload is then installed and run cycle-exactly
// with the client fetching pages over the simulated network from the
// server node via RDMA.
//
// Run with: go run ./examples/pfa
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"firemarshal"
	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/workgen"
)

const pages = 8

func main() {
	scratch, err := os.MkdirTemp("", "marshal-pfa-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	wlDir := filepath.Join(scratch, "workloads")
	os.MkdirAll(filepath.Join(wlDir, "pfa-test-root", "pfa"), 0o755)

	// Cross-compile the guest programs (the role of the host-init
	// cross-compile.sh in Listing 1; here assembled in-process).
	assemble := func(src, out string) {
		exe, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			log.Fatalf("assembling %s: %v", out, err)
		}
		if err := os.WriteFile(out, isa.EncodeExecutable(exe), 0o755); err != nil {
			log.Fatal(err)
		}
	}
	assemble(workgen.PFAClientSource(pages), filepath.Join(wlDir, "pfa-test-root", "pfa", "latency"))
	assemble(workgen.PFAServerSource(pages), filepath.Join(wlDir, "serve"))

	// The kernel configuration fragment enabling the PFA driver — the
	// one-line change the paper highlights (§IV-A.2).
	os.WriteFile(filepath.Join(wlDir, "pfa-linux.kfrag"), []byte("CONFIG_PFA=y\n"), 0o644)

	// Listing 1 (upper): the base workload.
	pfaBase := `{
  "name": "pfa-base",
  "base": "buildroot",
  "linux": { "config": "pfa-linux.kfrag" },
  "overlay": "pfa-test-root/",
  "spike": "pfa-spike"
}`
	os.WriteFile(filepath.Join(wlDir, "pfa-base.json"), []byte(pfaBase), 0o644)

	// Listing 1 (lower): the latency microbenchmark with client and
	// bare-metal server jobs.
	micro := `{
  "name": "latency-microbenchmark",
  "base": "pfa-base",
  "jobs": [
    { "name": "client",
      "command": "/pfa/latency > /output/latency.csv",
      "outputs": ["/output/latency.csv"] },
    { "name": "server",
      "base": "bare-metal",
      "bin": "serve" }
  ]
}`
	os.WriteFile(filepath.Join(wlDir, "latency-microbenchmark.json"), []byte(micro), 0o644)
	fmt.Println("pfa-base.json:")
	fmt.Println(pfaBase)
	fmt.Println("latency-microbenchmark.json:")
	fmt.Println(micro)

	m, err := firemarshal.New(filepath.Join(scratch, "work"), wlDir)
	if err != nil {
		log.Fatal(err)
	}

	// --- development: launch the client against the Spike golden model ---
	fmt.Println("\n== marshal launch -job client (Spike golden model) ==")
	runs, err := m.Launch("latency-microbenchmark", firemarshal.LaunchOpts{Job: "client"})
	if err != nil {
		log.Fatal(err)
	}
	funcCSV, err := os.ReadFile(filepath.Join(runs[0].OutputDir, "latency.csv"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("per-step remote-page-fault latency (cycles), golden model:")
	fmt.Print(head(string(funcCSV), 4))

	// --- evaluation: install and run both nodes cycle-exactly ------------
	fmt.Println("\n== marshal install latency-microbenchmark ==")
	dir, err := m.Install("latency-microbenchmark", firemarshal.InstallOpts{})
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := firemarshal.LoadInstalled(dir)
	if err != nil {
		log.Fatal(err)
	}
	for _, job := range cfg.Jobs {
		fmt.Printf("node %-36s devices=%-10q bare=%v\n", job.Name, job.Devices, job.Bare)
	}

	fmt.Println("\n== firesim: client fetches pages from the server over RDMA ==")
	simOut := filepath.Join(scratch, "sim-out")
	simRes, err := firemarshal.RunInstalled(cfg, firemarshal.SimOptions{
		RTL:       firemarshal.DefaultRTLConfig(),
		OutputDir: simOut,
	})
	if err != nil {
		log.Fatal(err)
	}
	var rtlCSV []byte
	for _, job := range simRes.Jobs {
		fmt.Printf("node %-36s exit=%d cycles=%d\n", job.Name, job.ExitCode, job.Cycles)
		if strings.HasSuffix(job.Name, "client") {
			rtlCSV, err = os.ReadFile(filepath.Join(job.OutputDir, "latency.csv"))
			if err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("per-step latency (cycles), cycle-exact with real network:")
	fmt.Print(head(string(rtlCSV), 4))

	// The per-step hardware latencies agree between the golden model and
	// RTL simulation except the network fetch, which now crosses the
	// simulated fabric — exactly the §IV-A verification methodology.
	fSteps := strings.Split(strings.Split(string(funcCSV), "\n")[1], ",")
	rSteps := strings.Split(strings.Split(string(rtlCSV), "\n")[1], ",")
	fmt.Printf("\ndetect/walk/install agree: golden=%s/%s/%s  rtl=%s/%s/%s\n",
		fSteps[1], fSteps[2], fSteps[4], rSteps[1], rSteps[2], rSteps[4])
	fmt.Printf("network fetch differs by design: golden=%s cycles (emulated), rtl=%s cycles (RDMA over fabric)\n",
		fSteps[3], rSteps[3])
	if fSteps[1] != rSteps[1] || fSteps[2] != rSteps[2] || fSteps[4] != rSteps[4] {
		log.Fatal("hardware step latencies diverged between simulators")
	}
}

func head(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n") + "\n"
}
