// Education case study (§IV-C, Fig. 7): the hardware-ML class assignment.
// Students tune a tiled matrix-multiplication routine for an accelerator
// integrated into the SoC. The course staff provide a FireMarshal workload;
// students iterate in fast functional simulation, then measure on the
// cycle-exact simulator — and because builds and simulations are
// deterministic, "students were able to obtain repeatable results down to
// an exact cycle-count" which the staff can reproduce for grading.
//
// Run with: go run ./examples/education
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"firemarshal"
	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/workgen"
)

const matrixN = 64

func main() {
	scratch, err := os.MkdirTemp("", "marshal-edu-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	wlDir := filepath.Join(scratch, "workloads")
	os.MkdirAll(filepath.Join(wlDir, "overlay"), 0o755)

	// The course staff's base workload: enables the accelerator driver and
	// uses the Spike functional simulator with the accelerator golden model.
	os.WriteFile(filepath.Join(wlDir, "gemmini.kfrag"), []byte("CONFIG_ACCEL_GEMM=y\n"), 0o644)
	staffBase := `{
  "name": "gemmini-base",
  "base": "br-base",
  "linux": { "config": "gemmini.kfrag" },
  "spike": "gemmini-spike",
  "overlay": "overlay"
}`
	os.WriteFile(filepath.Join(wlDir, "gemmini-base.json"), []byte(staffBase), 0o644)

	// The student's workload: inherits everything, runs their binary.
	student := `{
  "name": "assignment",
  "base": "gemmini-base",
  "command": "/matmul > /output/result.csv",
  "outputs": ["/output/result.csv"]
}`
	os.WriteFile(filepath.Join(wlDir, "assignment.json"), []byte(student), 0o644)
	fmt.Println("course-staff base (gemmini-base.json):")
	fmt.Println(staffBase)
	fmt.Println("student workload (assignment.json):")
	fmt.Println(student)

	m, err := firemarshal.New(filepath.Join(scratch, "work"), wlDir)
	if err != nil {
		log.Fatal(err)
	}

	// The student's tuning loop: try tile sizes, develop on functional
	// simulation (fast), measure on cycle-exact simulation (the grade).
	fmt.Printf("\n%-6s %16s %18s %18s\n", "tile", "accel cycles", "RTL total cycles", "repeat run")
	type measurement struct {
		tile      int
		accCycles uint64
		rtlCycles uint64
	}
	var best measurement
	for _, tile := range []int{1, 4, 16, 64} {
		// "Cross-compile" this tile's implementation into the overlay.
		exe, err := asm.Assemble(workgen.MatmulSource(matrixN, tile), asm.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(wlDir, "overlay", "matmul"), isa.EncodeExecutable(exe), 0o755); err != nil {
			log.Fatal(err)
		}

		// Development pass: functional simulation (Spike + golden model).
		funcRuns, err := m.Launch("assignment", firemarshal.LaunchOpts{})
		if err != nil {
			log.Fatal(err)
		}
		accCycles := parseAccelCycles(readCSV(funcRuns[0].OutputDir))

		// Measurement pass: the identical artifacts on cycle-exact sim.
		dir, err := m.Install("assignment", firemarshal.InstallOpts{})
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := firemarshal.LoadInstalled(dir)
		if err != nil {
			log.Fatal(err)
		}
		measure := func(outSuffix string) uint64 {
			simRes, err := firemarshal.RunInstalled(cfg, firemarshal.SimOptions{
				RTL:       firemarshal.DefaultRTLConfig(),
				OutputDir: filepath.Join(scratch, fmt.Sprintf("sim-%d-%s", tile, outSuffix)),
			})
			if err != nil {
				log.Fatal(err)
			}
			return simRes.Jobs[0].Cycles
		}
		rtl1 := measure("a")
		rtl2 := measure("b") // grading reproducibility check
		repeat := "==  (exact)"
		if rtl1 != rtl2 {
			repeat = "MISMATCH"
		}
		fmt.Printf("%-6d %16d %18d %18s\n", tile, accCycles, rtl1, repeat)
		if rtl1 != rtl2 {
			log.Fatal("cycle counts not repeatable — grading would be impossible")
		}
		if best.rtlCycles == 0 || rtl1 < best.rtlCycles {
			best = measurement{tile: tile, accCycles: accCycles, rtlCycles: rtl1}
		}
	}
	fmt.Printf("\nbest tiling: %d (%d total cycles) — tile reuse cuts scratchpad traffic,\n", best.tile, best.rtlCycles)
	fmt.Println("and the deterministic cycle counts let course staff reproduce every grade.")
}

func readCSV(dir string) string {
	data, err := os.ReadFile(filepath.Join(dir, "result.csv"))
	if err != nil {
		log.Fatal(err)
	}
	return string(data)
}

// parseAccelCycles extracts the accelerator-cycles field from
// "tile,<t>,cycles,<c>,c0,<v>".
func parseAccelCycles(csv string) uint64 {
	fields := strings.Split(strings.TrimSpace(csv), ",")
	if len(fields) < 4 {
		log.Fatalf("bad result csv: %q", csv)
	}
	v, err := strconv.ParseUint(fields[3], 10, 64)
	if err != nil {
		log.Fatalf("bad cycles in %q: %v", csv, err)
	}
	return v
}
