// Post-tapeout bring-up (§VI): "a post-tapeout bring up and evaluation
// effort where the existing suite of FireMarshal-based benchmarks are run
// in an identical manner in both function[al] simulation and during
// bringup[,] allowing researchers to triage issues with potentially faulty
// hardware."
//
// This example plays both roles: first silicon is modeled by the
// cycle-exact platform with a deterministic stuck-at fault injected into
// one functional unit. The bring-up suite (a slice of the intspeed
// benchmarks plus targeted unit tests) runs against the Spike golden model
// and against "silicon"; the triage report localizes the broken unit.
//
// Run with: go run ./examples/bringup
package main

import (
	"fmt"
	"log"
	"strings"

	"firemarshal/internal/asm"
	"firemarshal/internal/bringup"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim/rtlsim"
	"firemarshal/internal/workgen"
)

func main() {
	// The bring-up suite: unit tests per functional unit plus two real
	// benchmarks. All were developed and verified in functional simulation
	// long before tapeout; they run here completely unmodified.
	programs := map[string]*isa.Executable{}
	add := func(name, src string) {
		exe, err := asm.Assemble(src, asm.Options{})
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		programs[name] = exe
	}
	unitTest := func(op string) string {
		return `
_start:
    li t0, 123456789
    li t1, 37
    ` + op + ` a0, t0, t1
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`
	}
	add("unit-add", unitTest("add"))
	add("unit-mul", unitTest("mul"))
	add("unit-div", unitTest("div"))
	add("unit-rem", unitTest("rem"))
	suite := workgen.IntSpeedSuite()
	add("bench-perlbench", mustSource(suite, "600.perlbench_s"))
	add("bench-x264", mustSource(suite, "625.x264_s"))

	// Benchmarks self-report cycle counts, which legitimately differ
	// between simulation levels; the triage normalizer drops that field
	// (the post-run-hook role for complex success criteria, §III-D).
	dropCycles := func(out string) string {
		var lines []string
		for _, line := range strings.Split(out, "\n") {
			fields := strings.Split(line, ",")
			if len(fields) == 3 {
				line = fields[0] + ",<cycles>," + fields[2]
			}
			lines = append(lines, line)
		}
		return strings.Join(lines, "\n")
	}

	fmt.Println("== bring-up sweep 1: healthy silicon ==")
	runSweep(programs, rtlsim.DefaultConfig(), dropCycles)

	fmt.Println("\n== bring-up sweep 2: silicon with a defective multiplier (stuck-at bit 4) ==")
	faulty := rtlsim.DefaultConfig()
	faulty.FaultMask = 1 << 4
	faulty.FaultOp = isa.OpMUL
	failures := runSweep(programs, faulty, dropCycles)
	if failures == 0 {
		log.Fatal("fault escaped the bring-up suite")
	}
	fmt.Println("\nthe multiplier unit tests and the mul-heavy benchmark fail while")
	fmt.Println("everything else passes — the defect is localized without a debugger,")
	fmt.Println("because the same artifacts run identically on the golden model.")
}

func runSweep(programs map[string]*isa.Executable, silicon rtlsim.Config, normalize bringup.Normalize) int {
	reports, failures, err := bringup.TriageSuite(programs, silicon, normalize)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		status := "PASS"
		detail := ""
		if !rep.Match {
			status = "FAIL"
			detail = "  <- " + rep.FirstDivergence
		}
		fmt.Printf("  %-18s %s%s\n", rep.Name, status, detail)
	}
	fmt.Printf("  %d/%d programs diverged from the golden model\n", failures, len(reports))
	return failures
}

func mustSource(suite []workgen.Benchmark, name string) string {
	for _, b := range suite {
		if b.Name == name {
			return b.Source("test")
		}
	}
	log.Fatalf("no benchmark %s", name)
	return ""
}
