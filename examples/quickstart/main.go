// Quickstart: the typical FireMarshal flow of Fig. 2 on a minimal
// workload — specify, build, launch, collect outputs, rebuild (noting the
// dependency tracker skips everything), then install and re-run the exact
// same artifacts on the cycle-exact simulator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"firemarshal"
)

func main() {
	scratch, err := os.MkdirTemp("", "marshal-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(scratch)
	wlDir := filepath.Join(scratch, "workloads")
	os.MkdirAll(wlDir, 0o755)

	// --- specify -------------------------------------------------------
	// A workload description: inherit everything from the Buildroot base,
	// override only the boot command, declare an output to collect.
	workload := `{
  "name": "quickstart",
  "base": "br-base",
  "command": "echo hello from the guest > /output/greeting.txt; echo quickstart finished",
  "outputs": ["/output/greeting.txt"]
}`
	if err := os.WriteFile(filepath.Join(wlDir, "quickstart.json"), []byte(workload), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("workload description (quickstart.json):")
	fmt.Println(workload)

	m, err := firemarshal.New(filepath.Join(scratch, "work"), wlDir)
	if err != nil {
		log.Fatal(err)
	}
	m.Log = os.Stdout

	// --- build ---------------------------------------------------------
	fmt.Println("\n== marshal build quickstart ==")
	results, err := m.Build("quickstart", firemarshal.BuildOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("artifacts: bin=%s img=%s\n", results[0].Bin, results[0].Img)

	// A second build is a no-op thanks to dependency tracking (§III-B).
	fmt.Println("\n== marshal build quickstart (again) ==")
	if _, err := m.Build("quickstart", firemarshal.BuildOpts{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tasks executed on rebuild: %d (skipped: %d)\n",
		len(m.LastBuildStats.Executed), len(m.LastBuildStats.Skipped))

	// --- launch (functional simulation) ---------------------------------
	fmt.Println("\n== marshal launch quickstart ==")
	runs, err := m.Launch("quickstart", firemarshal.LaunchOpts{})
	if err != nil {
		log.Fatal(err)
	}
	run := runs[0]
	fmt.Printf("exit=%d, %d guest cycles, outputs in %s\n", run.ExitCode, run.Cycles, run.OutputDir)
	greeting, err := os.ReadFile(filepath.Join(run.OutputDir, "greeting.txt"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected output: %q\n", strings.TrimSpace(string(greeting)))

	// --- install + cycle-exact run ---------------------------------------
	fmt.Println("\n== marshal install quickstart ==")
	dir, err := m.Install("quickstart", firemarshal.InstallOpts{})
	if err != nil {
		log.Fatal(err)
	}
	cfg, err := firemarshal.LoadInstalled(dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("installed config for %d node(s) at %s\n", len(cfg.Jobs), dir)

	fmt.Println("\n== firesim (cycle-exact) ==")
	simOut := filepath.Join(scratch, "sim-out")
	simRes, err := firemarshal.RunInstalled(cfg, firemarshal.SimOptions{
		RTL:       firemarshal.DefaultRTLConfig(),
		OutputDir: simOut,
	})
	if err != nil {
		log.Fatal(err)
	}
	job := simRes.Jobs[0]
	fmt.Printf("node %s: exit=%d cycles=%d ipc=%.3f\n", job.Name, job.ExitCode, job.Cycles, job.Stats.IPC())

	rtlGreeting, err := os.ReadFile(filepath.Join(job.OutputDir, "greeting.txt"))
	if err != nil {
		log.Fatal(err)
	}
	if string(rtlGreeting) == string(greeting) {
		fmt.Println("\nfunctional and cycle-exact runs produced identical outputs — the")
		fmt.Println("same artifacts ran on both simulators (the paper's core guarantee).")
	} else {
		log.Fatalf("output mismatch!\nfunctional: %q\nrtl: %q", greeting, rtlGreeting)
	}
}
