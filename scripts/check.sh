#!/bin/sh
# check.sh — the full pre-merge gate: vet, build, and the complete test
# suite under the race detector (the dag engine runs RunMany workers
# concurrently against a shared state DB; -race keeps that honest).
set -e
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
