#!/bin/sh
# check.sh — the full pre-merge gate: formatting, vet, build, and the
# complete test suite under the race detector with shuffled test order
# (the dag engine and the launcher run worker goroutines against shared
# state; -race keeps that honest, -shuffle flushes out order coupling).
# Ends with a per-package timing summary, slowest first, so CI time sinks
# are visible instead of buried in the log.
set -e
cd "$(dirname "$0")/.."

echo "== gofmt"
UNFORMATTED="$(gofmt -l .)"
if [ -n "$UNFORMATTED" ]; then
    echo "check.sh: gofmt needed on:" >&2
    printf '%s\n' "$UNFORMATTED" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test -race -shuffle=on"
# POSIX sh has no pipefail: capture output to a file so the exit status
# of `go test` survives the timing post-processing below.
OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT
STATUS=0
go test -race -shuffle=on ./... >"$OUT" 2>&1 || STATUS=$?
cat "$OUT"

echo "== slowest packages"
awk '$1 == "ok" && $3 ~ /^[0-9]/ { printf "  %8.2fs  %s\n", $3 + 0, $2 }' "$OUT" |
    sort -rn | head -10

if [ "$STATUS" != 0 ]; then
    echo "check.sh: FAIL (go test exit $STATUS)"
    exit "$STATUS"
fi

# Crash-recovery spot check: the fault-injection suite (kill a run
# mid-flight, resume, demand bit-identical cycles) re-runs un-cached so a
# flaky pass can't hide behind Go's test result cache. The full
# resume-determinism gate, including journal fuzzing, is scripts/resume_gate.sh.
echo "== crash-recovery resume determinism (-count=1)"
go test -race -count=1 -run 'CrashResume' \
    ./internal/checkpoint/ ./internal/sim/rtlsim/ ./internal/core/ ./internal/fsrun/

# Opt-in gates: each mirrors a CI job that always runs it, but costs too
# much (or needs loopback ports) to force on every local check. The
# summary at the end lists which ran and which were skipped, with the
# CHECK_* switch that would enable each — so a local PASS can't be
# mistaken for full CI coverage.
GATES_RAN=""
GATES_SKIPPED=""

# Distributed-launch gate: it binds loopback ports and spawns daemons,
# which not every dev sandbox allows; CI's `distributed` job always runs it.
if [ -n "$CHECK_DISTRIBUTED" ]; then
    echo "== distributed-launch gate (worker fleet fault injection + smoke)"
    scripts/distributed_gate.sh
    GATES_RAN="$GATES_RAN distributed"
else
    GATES_SKIPPED="$GATES_SKIPPED distributed(CHECK_DISTRIBUTED=1)"
fi

# Trace-compiler gate: it adds a second multi-second benchmark run; CI's
# `bench` job always runs it.
if [ -n "$CHECK_TRACED" ]; then
    echo "== trace-compiler throughput gate (loop-heavy superblock tier)"
    scripts/traced_gate.sh
    GATES_RAN="$GATES_RAN traced"
else
    GATES_SKIPPED="$GATES_SKIPPED traced(CHECK_TRACED=1)"
fi

# Chaos gate: a seed-driven fault schedule against a loopback fleet (two
# full fleet runs, compared bit-for-bit); CI's `chaos` job always runs it.
if [ -n "$CHECK_CHAOS" ]; then
    echo "== chaos gate (deterministic fault injection + self-healing)"
    scripts/chaos_gate.sh
    GATES_RAN="$GATES_RAN chaos"
else
    GATES_SKIPPED="$GATES_SKIPPED chaos(CHECK_CHAOS=1)"
fi

# Cache-service gate: the saturation benchmark (another multi-second
# bench run) plus the upload-resume and GC-race smokes; CI's `cache` job
# always runs it.
if [ -n "$CHECK_CACHE" ]; then
    echo "== cache-service gate (saturation bench + resume/GC-race smokes)"
    scripts/cache_gate.sh
    GATES_RAN="$GATES_RAN cache"
else
    GATES_SKIPPED="$GATES_SKIPPED cache(CHECK_CACHE=1)"
fi

# Verification-farm gate: a time-boxed differential farm plus the
# seeded-fault self-test; CI's `verify-farm` job always runs it.
if [ -n "$CHECK_VERIFY" ]; then
    echo "== verification-farm gate (clean farm + seeded-fault self-test)"
    scripts/verify_gate.sh
    GATES_RAN="$GATES_RAN verify"
else
    GATES_SKIPPED="$GATES_SKIPPED verify(CHECK_VERIFY=1)"
fi

# Metrics-overhead gate: re-run the hot-loop benchmark with obs counter
# shards attached (BENCH_METRICS=1) and hold it to the same BENCH_sim.json
# baseline and 30% rule as the plain bench. Instrumentation that slows the
# interpreter measurably fails here, not in a later profiling session.
echo "== metrics-overhead gate (BenchmarkSimMIPS with metrics enabled)"
BENCH_METRICS=1 scripts/bench.sh
GATES_RAN="$GATES_RAN metrics-overhead"

echo "== gate summary"
echo "  ran:    $GATES_RAN"
if [ -n "$GATES_SKIPPED" ]; then
    echo "  skipped:$GATES_SKIPPED  (CI runs these; set the listed variable to include one locally)"
fi

echo "check.sh: PASS"
