#!/bin/sh
# resume_gate.sh — the crash-safety gate. Proves, under the race detector,
# that an interrupted run resumed with `-resume` is indistinguishable from
# an uninterrupted one: journaled manifests salvage torn tails, checkpoints
# restore mid-exec machine state, and per-job cycle counts come out
# bit-identical on both the functional and cycle-exact simulation paths.
# Ends with a short fuzz of the journal reader, which must salvage (never
# crash on) arbitrary torn or garbage journal bytes.
set -e
cd "$(dirname "$0")/.."

echo "== crash/resume determinism (journal, checkpoint, launch, firesim)"
go test -race -count=1 \
    -run 'CrashResume|Resume|Journal|Compact|Torn|Pointer|Replay|Snapshot|Sig' \
    ./internal/launcher/ ./internal/checkpoint/ ./internal/sim/ \
    ./internal/sim/rtlsim/ ./internal/core/ ./internal/fsrun/

echo "== fuzz journal salvage (short CI smoke)"
go test -run '^$' -fuzz 'FuzzReadJournal' -fuzztime 10s ./internal/launcher/

echo "resume_gate.sh: PASS"
