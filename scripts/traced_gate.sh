#!/bin/sh
# traced_gate.sh — trace-compiler throughput gate. Runs the loop-heavy
# workload under superblock dispatch (the BenchmarkSimMIPS
# functional-traced tier) and holds it to the recorded BENCH_sim.json
# baseline with the same 30% regression rule as bench.sh: shared CI hosts
# are jittery, a 30% drop is a real regression. It also reports the
# same-run speedup over the plain functional tier, so the gate log shows
# traces are actually paying for themselves on identical hardware.
set -e
cd "$(dirname "$0")/.."

BASELINE=BENCH_sim.json
THRESHOLD="${THRESHOLD:-0.70}"

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "== go test -bench 'BenchmarkSimMIPS/functional' (plain + traced tiers)"
go test -run '^$' -bench 'BenchmarkSimMIPS/functional' -benchmem . | tee "$OUT"

mips() {
    awk -v want="BenchmarkSimMIPS/$1" '
        index($1, want) == 1 && $1 !~ (want "-traced") {
            for (i = 2; i <= NF; i++) if ($(i) == "sim-MIPS") print $(i-1) + 0
        }' "$OUT"
}
cur="$(awk '/^BenchmarkSimMIPS\/functional-traced/ {
        for (i = 2; i <= NF; i++) if ($(i) == "sim-MIPS") print $(i-1) + 0
    }' "$OUT")"
plain="$(mips functional)"
if [ -z "$cur" ]; then
    echo "traced_gate.sh: FAIL (no functional-traced sim-MIPS in bench output)"
    exit 1
fi
if [ -n "$plain" ]; then
    awk -v c="$cur" -v p="$plain" 'BEGIN {
        printf "  same-run speedup: traced %.1f / functional %.1f = %.2fx\n", c, p, c / p
    }'
fi

base="$(awk -F'[:,]' '$1 ~ /"functional-traced"/ {print $2+0}' "$BASELINE" 2>/dev/null || true)"
if [ -z "$base" ]; then
    echo "traced_gate.sh: no functional-traced baseline in $BASELINE; run scripts/bench.sh to record one"
    exit 0
fi

ok="$(awk -v c="$cur" -v b="$base" -v t="$THRESHOLD" 'BEGIN {print (c >= b*t) ? 1 : 0}')"
printf '  %-18s baseline=%-10s current=%-10s threshold=%sx\n' functional-traced "$base" "$cur" "$THRESHOLD"
if [ "$ok" != 1 ]; then
    echo "traced_gate.sh: FAIL (functional-traced sim-MIPS regression)"
    exit 1
fi
echo "traced_gate.sh: PASS"
