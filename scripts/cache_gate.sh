#!/bin/sh
# cache_gate.sh — cache-service throughput + resilience gate. Runs the
# concurrent GET/PUT saturation benchmark against a live cache server,
# records MB/s per traffic pattern in BENCH_cache.json, and compares
# against the checked-in baseline so streaming-path regressions (a return
# to whole-body buffering, a lock on the read path) fail loudly. Then it
# smoke-tests the resilience properties the benchmark can't see: a torn
# chunked upload must resume from the last acked offset bit-identically,
# and a GC sweeping under concurrent publish traffic must lose nothing —
# both under the race detector.
#
# Usage:
#   scripts/cache_gate.sh             run + compare against BENCH_cache.json
#   scripts/cache_gate.sh -update     run + rewrite BENCH_cache.json baseline
#
# The comparison tolerates noise: a pattern fails only if it drops below
# THRESHOLD (default 0.70) of its recorded baseline. Shared CI hosts are
# jittery; a 30% drop is a real regression, not scheduling noise.
set -e
cd "$(dirname "$0")/.."

BASELINE=BENCH_cache.json
THRESHOLD="${THRESHOLD:-0.70}"
UPDATE=0
[ "$1" = "-update" ] && UPDATE=1

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "== go test -bench BenchmarkCacheSaturation ./internal/cas/remote"
go test -run '^$' -bench 'BenchmarkCacheSaturation' -benchmem ./internal/cas/remote/ | tee "$OUT"

# Parse "BenchmarkCacheSaturation/<pattern>-N  iters  ns/op  X MB/s ..."
# into JSON. awk keeps the dependency surface at POSIX tools only.
KEYS="get put mixed"
CURRENT="$(awk '
    /^BenchmarkCacheSaturation\// {
        split($1, parts, "/"); sub(/-[0-9]+$/, "", parts[2])
        for (i = 2; i <= NF; i++) if ($(i) == "MB/s") mbs[parts[2]] = $(i-1)
    }
    END {
        printf "{\n"
        printf "  \"get\": %s,\n", mbs["get"] + 0
        printf "  \"put\": %s,\n", mbs["put"] + 0
        printf "  \"mixed\": %s\n", mbs["mixed"] + 0
        printf "}\n"
    }' "$OUT")"

if [ "$UPDATE" = 1 ] || [ ! -f "$BASELINE" ]; then
    printf '%s\n' "$CURRENT" > "$BASELINE"
    echo "== wrote baseline $BASELINE"
    printf '%s\n' "$CURRENT"
else
    # Compare per key. A key absent from the baseline (a pattern added
    # after it was recorded) is not a regression: report it, adopt the
    # current number, and merge without clobbering the recorded keys.
    echo "== comparing against $BASELINE (threshold ${THRESHOLD}x)"
    FAIL=0
    RECORD=0
    MERGED=""
    sep=""
    for key in $KEYS; do
        base="$(awk -F'[:,]' -v k="\"$key\"" '$1 ~ k {print $2+0}' "$BASELINE")"
        cur="$(printf '%s\n' "$CURRENT" | awk -F'[:,]' -v k="\"$key\"" '$1 ~ k {print $2+0}')"
        if [ -z "$base" ]; then
            printf '  %-8s no baseline, recording %s\n' "$key" "$cur"
            RECORD=1
            val="$cur"
        else
            ok="$(awk -v c="$cur" -v b="$base" -v t="$THRESHOLD" 'BEGIN {print (c >= b*t) ? 1 : 0}')"
            status=ok
            [ "$ok" = 1 ] || { status="REGRESSION"; FAIL=1; }
            printf '  %-8s baseline=%-10s current=%-10s MB/s %s\n' "$key" "$base" "$cur" "$status"
            val="$base"
        fi
        MERGED="${MERGED}${sep}  \"${key}\": ${val}"
        sep=",\n"
    done

    if [ "$FAIL" = 1 ]; then
        echo "cache_gate.sh: cache throughput regression detected (rerun with -update to accept)"
        exit 1
    fi
    if [ "$RECORD" = 1 ]; then
        printf '{\n%b\n}\n' "$MERGED" > "$BASELINE"
        echo "== recorded new pattern(s) into $BASELINE"
    fi
fi

# Resilience smokes, both under -race: the kill-mid-upload resume (a torn
# chunk must resume from the last acked offset, final bytes digest-
# verified) and the GC-vs-publish race (no live/pinned/in-flight entry
# may be lost to a concurrent sweep).
echo "== kill-mid-upload resume smoke (-race)"
go test -race -count=1 -run 'TestUploadResumesAfterTornConnection|TestChunkOffsetConflict' ./internal/cas/remote/
echo "== GC-vs-publish race smoke (-race)"
go test -race -count=1 -run 'TestGCUnderConcurrentTraffic|TestGCSweepSparesConcurrentWrites|TestGCHoldProtectsPublishWindow' ./internal/cas/

echo "cache_gate.sh: PASS"
