#!/bin/sh
# distributed_gate.sh — the worker-fleet gate. Two layers:
#
#  1. The in-process fault-injection suite under the race detector:
#     coordinator/worker protocol tests, lease expiry and work stealing,
#     and the end-to-end kills — a worker shot mid-job must forfeit to a
#     surviving worker that restores from the handed-off checkpoint and
#     finishes with cycles, stats, and console bytes bit-identical to an
#     uninterrupted single-host run (functional AND cycle-exact paths).
#     MARSHAL_DIST_SPEEDUP=1 arms the >2x @ 4-worker speedup assertion,
#     which self-skips on hosts without enough cores.
#
#  2. A loopback smoke over real binaries: `marshal cache serve` plus
#     three `marshal worker serve` daemons on 127.0.0.1, and one
#     `marshal launch -workers` that leases a 3-job workgen workload
#     across them and materializes every uartlog on the coordinator.
set -e
cd "$(dirname "$0")/.."

echo "== distributed fault-injection suite (-race, -count=1)"
MARSHAL_DIST_SPEEDUP=1 go test -race -count=1 \
    -run 'Distributed|Worker|Coordinator|Transfer|Fleet' \
    ./internal/launcher/remote/ ./internal/core/ ./internal/fsrun/

echo "== loopback 3-worker fleet smoke (real binaries over HTTP)"
TMP="$(mktemp -d)"
PIDS=""
cleanup() {
    # shellcheck disable=SC2086
    [ -n "$PIDS" ] && kill $PIDS 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT

go build -o "$TMP" ./cmd/marshal ./cmd/workgen

CACHE=127.0.0.1:18414
CACHE_URL="http://$CACHE"
WORKERS="127.0.0.1:18421,127.0.0.1:18422,127.0.0.1:18423"

"$TMP/workgen" -jobs 3 -out "$TMP/wl" >/dev/null

# The coordinator's workdir backs the shared cache server, so artifacts it
# publishes are immediately servable to the fleet.
"$TMP/marshal" -workdir "$TMP/coord" cache serve -addr "$CACHE" &
PIDS="$PIDS $!"
for port in 18421 18422 18423; do
    "$TMP/marshal" -workdir "$TMP/worker$port" -remote-cache "$CACHE_URL" \
        worker serve -addr "127.0.0.1:$port" &
    PIDS="$PIDS $!"
done

# The daemons bind asynchronously; retry the launch until they answer.
STATUS=1
for attempt in 1 2 3 4 5; do
    if "$TMP/marshal" -workdir "$TMP/coord" -workload-dirs "$TMP/wl" \
        -remote-cache "$CACHE_URL" launch -workers "$WORKERS" parjobs; then
        STATUS=0
        break
    fi
    echo "distributed_gate.sh: fleet not up yet (attempt $attempt), retrying"
    sleep 1
done
if [ "$STATUS" != 0 ]; then
    echo "distributed_gate.sh: FAIL (fleet launch never succeeded)"
    exit 1
fi

for job in job00 job01 job02; do
    LOG="$TMP/coord/runs/parjobs-$job/uartlog"
    if [ ! -s "$LOG" ]; then
        echo "distributed_gate.sh: FAIL (missing or empty $LOG)"
        exit 1
    fi
done

echo "distributed_gate.sh: PASS"
