#!/bin/sh
# bench.sh — simulator throughput gate. Runs BenchmarkSimMIPS (the
# interpreter hot-loop benchmark) with -benchmem, records the sim-MIPS of
# each path in BENCH_sim.json, and compares against the checked-in
# baseline so hot-loop regressions fail loudly instead of landing
# silently.
#
# Usage:
#   scripts/bench.sh             run + compare against BENCH_sim.json
#   scripts/bench.sh -update     run + rewrite BENCH_sim.json baseline
#
# The comparison tolerates noise: a path fails only if it drops below
# THRESHOLD (default 0.70) of its recorded baseline. Shared CI hosts are
# jittery; a 30% drop is a real regression, not scheduling noise.
set -e
cd "$(dirname "$0")/.."

BASELINE=BENCH_sim.json
THRESHOLD="${THRESHOLD:-0.70}"
UPDATE=0
[ "$1" = "-update" ] && UPDATE=1

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

echo "== go test -bench BenchmarkSimMIPS -benchmem"
go test -run '^$' -bench 'BenchmarkSimMIPS' -benchmem . | tee "$OUT"

# Parse "BenchmarkSimMIPS/<path>-N  iters  ns/op  X sim-MIPS  B/op  allocs/op"
# into JSON. awk keeps the dependency surface at POSIX tools only.
KEYS="functional functional-traced reference cycle-exact"
CURRENT="$(awk '
    /^BenchmarkSimMIPS\// {
        split($1, parts, "/"); sub(/-[0-9]+$/, "", parts[2])
        for (i = 2; i <= NF; i++) if ($(i) == "sim-MIPS") mips[parts[2]] = $(i-1)
    }
    END {
        printf "{\n"
        printf "  \"functional\": %s,\n", mips["functional"] + 0
        printf "  \"functional-traced\": %s,\n", mips["functional-traced"] + 0
        printf "  \"reference\": %s,\n", mips["reference"] + 0
        printf "  \"cycle-exact\": %s\n", mips["cycle-exact"] + 0
        printf "}\n"
    }' "$OUT")"

if [ "$UPDATE" = 1 ] || [ ! -f "$BASELINE" ]; then
    printf '%s\n' "$CURRENT" > "$BASELINE"
    echo "== wrote baseline $BASELINE"
    printf '%s\n' "$CURRENT"
    exit 0
fi

# Compare per key. A key absent from the baseline (a tier added after the
# baseline was recorded) is not a regression: report it, adopt the current
# number, and merge it in without clobbering the keys already recorded.
echo "== comparing against $BASELINE (threshold ${THRESHOLD}x)"
FAIL=0
RECORD=0
MERGED=""
sep=""
for key in $KEYS; do
    base="$(awk -F'[:,]' -v k="\"$key\"" '$1 ~ k {print $2+0}' "$BASELINE")"
    cur="$(printf '%s\n' "$CURRENT" | awk -F'[:,]' -v k="\"$key\"" '$1 ~ k {print $2+0}')"
    if [ -z "$base" ]; then
        printf '  %-18s no baseline, recording %s\n' "$key" "$cur"
        RECORD=1
        val="$cur"
    else
        ok="$(awk -v c="$cur" -v b="$base" -v t="$THRESHOLD" 'BEGIN {print (c >= b*t) ? 1 : 0}')"
        status=ok
        [ "$ok" = 1 ] || { status="REGRESSION"; FAIL=1; }
        printf '  %-18s baseline=%-10s current=%-10s %s\n' "$key" "$base" "$cur" "$status"
        val="$base"
    fi
    MERGED="${MERGED}${sep}  \"${key}\": ${val}"
    sep=",\n"
done

if [ "$FAIL" = 1 ]; then
    echo "bench.sh: sim-MIPS regression detected (rerun with -update to accept)"
    exit 1
fi
if [ "$RECORD" = 1 ]; then
    printf '{\n%b\n}\n' "$MERGED" > "$BASELINE"
    echo "== recorded new tier(s) into $BASELINE"
fi
echo "bench.sh: PASS"
