#!/bin/sh
# verify_gate.sh — the standing differential-verification gate. Three layers:
#
#  1. The in-process verify suite under the race detector: coverage model,
#     lockstep comparison, seeded-fault bisection (the injected divergence
#     must bisect to the exact retired instruction), minimization, and the
#     farm's determinism contract (same seeds + farm seed => byte-identical
#     manifests across parallel runs).
#
#  2. A clean time-boxed farm over the pinned corpus: `marshal verify-farm`
#     on fixed seeds with a fixed farm seed must find ZERO divergences —
#     this is the actual correctness gate on the simulator tiers. The
#     cycle-exact spot-check rides along (-rtl-every).
#
#  3. The seeded-fault self-test: the same farm with an injected register
#     corruption must exit nonzero, catch the divergence on EVERY workload,
#     bisect each to exactly the injected retirement, dedup the whole run
#     to one signature, and leave a minimized repro in the CAS. This proves
#     the farm can actually catch a bug, so a green layer 2 means
#     something.
#
# Time box: tune -seeds/-rounds here, not in CI yaml; FARM_TIMEOUT guards
# against a hung simulator rather than pacing the run.
set -e
cd "$(dirname "$0")/.."

FARM_TIMEOUT="${FARM_TIMEOUT:-5m}"

echo "== verify suite (-race, -count=1)"
go test -race -count=1 ./internal/verify/

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
go build -o "$TMP/marshal" ./cmd/marshal

echo "== clean farm over pinned corpus (must find zero divergences)"
"$TMP/marshal" -workdir "$TMP/clean" verify-farm \
    -seeds 1-8 -rounds 1 -farm-seed 42 -rtl-every 4 -timeout "$FARM_TIMEOUT"

echo "== seeded-fault self-test (injected bug must be caught end to end)"
# Three copies of one seed: the same workload, so the same corrupted
# instruction — the whole run must dedup to ONE signature. Instruction 500
# is safely inside every generated workload (they retire thousands).
FAULT_INSTR=500
STATUS=0
"$TMP/marshal" -workdir "$TMP/fault" verify-farm \
    -seeds 7,7,7 -rounds 0 -farm-seed 1 -timeout "$FARM_TIMEOUT" \
    -inject-fault "fast:$FAULT_INSTR:x27:0x1" >"$TMP/fault.out" || STATUS=$?
cat "$TMP/fault.out"
if [ "$STATUS" != 1 ]; then
    echo "verify_gate.sh: FAIL (self-test exit $STATUS, want 1: injected fault not caught)"
    exit 1
fi
MANIFEST="$TMP/fault/verify/farm.jsonl"
DIVERGED="$(grep -c '"status":"diverged"' "$MANIFEST" || true)"
if [ "$DIVERGED" != 3 ]; then
    echo "verify_gate.sh: FAIL (want the fault caught on all 3 workloads, got $DIVERGED)"
    exit 1
fi
NEWSIGS="$(grep -c '"new_sig":true' "$MANIFEST" || true)"
if [ "$NEWSIGS" != 1 ]; then
    echo "verify_gate.sh: FAIL (want 1 unique signature after dedup, got $NEWSIGS)"
    exit 1
fi
if ! grep -q "\"instr\":$FAULT_INSTR" "$MANIFEST"; then
    echo "verify_gate.sh: FAIL (bisection did not land on injected instruction $FAULT_INSTR)"
    exit 1
fi
REPRO="$(grep -o '"repro":"[0-9a-f]*"' "$MANIFEST" | head -1 | cut -d'"' -f4)"
if [ -z "$REPRO" ] || [ ! -s "$TMP/fault/cache/blobs/$(echo "$REPRO" | cut -c1-2)/$REPRO" ]; then
    echo "verify_gate.sh: FAIL (minimized repro $REPRO missing from the CAS)"
    exit 1
fi

echo "verify_gate.sh: PASS"
