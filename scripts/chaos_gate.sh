#!/bin/sh
# chaos_gate.sh — the fault-injection/self-healing gate. Three layers:
#
#  1. The robustness suite under the race detector: the deterministic
#     fault schedule itself (pure function of seed/site/index), breaker
#     half-open recovery on a fake clock, concurrent readers self-healing
#     one corrupt blob, 429/Retry-After backoff in both HTTP clients,
#     per-client rate limiting, coordinator quarantine/hedge/revival, and
#     a lease expiry racing a checkpoint publish.
#
#  2. A full `marshal chaos` run over real binaries: a loopback 3-worker
#     fleet under the pinned default schedule (seed 1) with pre-planted
#     corrupt blobs, a flaky worker, and a slow straggler. The run must
#     report bit-identical cycles/exit/console vs the clean baseline,
#     at least one blob self-heal, and at least one worker quarantine —
#     all asserted off the `chaos: metric` lines.
#
#  3. Replayability: `-schedule-only` for one seed printed twice must be
#     byte-identical, and a different seed must print a different
#     fingerprint.
set -e
cd "$(dirname "$0")/.."

echo "== chaos robustness suite (-race, -count=1)"
go test -race -count=1 \
    -run 'Chaos|Schedule|Transport|StoreFaults|PlantCorrupt|Breaker|SelfHeal|429|Throttle|TokenBucket|MaxInFlight|Quarantine|Hedge|Revive|LeaseExpiry|RateLimit' \
    ./internal/chaos/ ./internal/ratelimit/ ./internal/cas/... ./internal/launcher/remote/ ./internal/core/

echo "== loopback chaos fleet (marshal chaos, pinned seed)"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP" ./cmd/marshal ./cmd/workgen
"$TMP/workgen" -jobs 6 -out "$TMP/wl" >/dev/null

OUT="$TMP/chaos.out"
if ! "$TMP/marshal" -workdir "$TMP/work" -workload-dirs "$TMP/wl" \
    chaos -seed 1 parjobs >"$OUT" 2>&1; then
    cat "$OUT"
    echo "chaos_gate.sh: FAIL (chaos run did not survive the fault schedule)"
    exit 1
fi
cat "$OUT"

if ! grep -q "chaos: PASS" "$OUT"; then
    echo "chaos_gate.sh: FAIL (no PASS line)"
    exit 1
fi

# metric NAME must be present with a value >= 1.
require_metric() {
    VAL="$(awk -v name="$1" '$1 == "chaos:" && $2 == "metric" && $3 == name { print $4 }' "$OUT")"
    if [ -z "$VAL" ]; then
        echo "chaos_gate.sh: FAIL (metric $1 not reported)"
        exit 1
    fi
    if ! awk -v v="$VAL" 'BEGIN { exit !(v + 0 >= 1) }'; then
        echo "chaos_gate.sh: FAIL (metric $1 = $VAL, want >= 1)"
        exit 1
    fi
}
# metric NAME must be present (any value — e.g. a breaker that recovered
# back to closed reports 0).
require_metric_line() {
    if ! awk -v name="$1" '$1 == "chaos:" && $2 == "metric" && $3 == name { found = 1 } END { exit !found }' "$OUT"; then
        echo "chaos_gate.sh: FAIL (metric $1 not reported)"
        exit 1
    fi
}

require_metric cas_blobs_healed_total
require_metric remote_worker_quarantines_total
require_metric chaos_http_faults_total
require_metric_line cas_remote_breaker_state
require_metric_line remote_workers_quarantined

echo "== schedule replayability (-schedule-only)"
"$TMP/marshal" -workdir "$TMP/work" chaos -schedule-only -seed 5 >"$TMP/sched-a"
"$TMP/marshal" -workdir "$TMP/work" chaos -schedule-only -seed 5 >"$TMP/sched-b"
if ! cmp -s "$TMP/sched-a" "$TMP/sched-b"; then
    echo "chaos_gate.sh: FAIL (same seed printed two different schedules)"
    diff "$TMP/sched-a" "$TMP/sched-b" | head -20
    exit 1
fi
"$TMP/marshal" -workdir "$TMP/work" chaos -schedule-only -seed 6 >"$TMP/sched-c"
if cmp -s "$TMP/sched-a" "$TMP/sched-c"; then
    echo "chaos_gate.sh: FAIL (seeds 5 and 6 printed identical schedules)"
    exit 1
fi

echo "chaos_gate.sh: PASS"
