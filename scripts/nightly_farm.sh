#!/bin/sh
# nightly_farm.sh — the long verification-farm session behind the nightly
# workflow. Where verify_gate.sh is a minutes-scale PR gate, this run
# covers a much wider pinned corpus with more mutation rounds and denser
# cycle-exact spot-checks, then collects everything a human needs to act
# on a red night into one artifact directory:
#
#   farm.jsonl    the full JSONL manifest (entries + summary)
#   coverage.txt  the farm's stdout: coverage report + per-signature hits
#   repros/       the minimized repro workload for each unique signature
#
# Exit status is the farm's own: 1 when any tier divergence was found, so
# the nightly goes red while the artifacts still upload (if: always()).
set -e
cd "$(dirname "$0")/.."

OUT_DIR="${FARM_ARTIFACTS:-farm-artifacts}"
FARM_TIMEOUT="${FARM_TIMEOUT:-30m}"
FARM_SEEDS="${FARM_SEEDS:-1-32}"
FARM_ROUNDS="${FARM_ROUNDS:-3}"

mkdir -p "$OUT_DIR"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
go build -o "$WORK/marshal" ./cmd/marshal

STATUS=0
"$WORK/marshal" -workdir "$WORK/farm" verify-farm \
    -seeds "$FARM_SEEDS" -rounds "$FARM_ROUNDS" -farm-seed 42 -rtl-every 4 \
    -timeout "$FARM_TIMEOUT" -out "$OUT_DIR/farm.jsonl" \
    | tee "$OUT_DIR/coverage.txt" || STATUS=$?

# Pull each signature's minimized repro out of the farm's CAS by the
# digests the manifest records, so the artifact is self-contained.
mkdir -p "$OUT_DIR/repros"
grep -o '"sig":"[0-9a-f]*","new_sig":true,"repro":"[0-9a-f]*"' "$OUT_DIR/farm.jsonl" 2>/dev/null |
    while IFS= read -r hit; do
        SIG="$(echo "$hit" | cut -d'"' -f4)"
        REPRO="$(echo "$hit" | cut -d'"' -f12)"
        BLOB="$WORK/farm/cache/blobs/$(echo "$REPRO" | cut -c1-2)/$REPRO"
        [ -s "$BLOB" ] && cp "$BLOB" "$OUT_DIR/repros/$SIG.s"
    done

echo "nightly_farm.sh: artifacts in $OUT_DIR (exit $STATUS)"
exit "$STATUS"
