// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, per the experiment index in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark regenerates the corresponding result (printing the
// series/rows once) and reports headline numbers as benchmark metrics.
// Absolute values are properties of this reproduction's simulators; the
// shapes — who wins, by what factor, where the crossovers are — are the
// paper's.
package firemarshal

import (
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"firemarshal/internal/asm"
	"firemarshal/internal/boards"
	"firemarshal/internal/cas"
	"firemarshal/internal/cas/remote"
	"firemarshal/internal/core"
	"firemarshal/internal/isa"
	"firemarshal/internal/obs"
	"firemarshal/internal/pfa"
	"firemarshal/internal/sim"
	"firemarshal/internal/sim/approxsim"
	"firemarshal/internal/sim/bpred"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/sim/rtlsim"
	"firemarshal/internal/workgen"
)

var printOnce sync.Map

// once prints a result block a single time per benchmark name, so repeated
// b.N iterations do not spam the output.
func once(name string, f func()) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		f()
	}
}

func mustAssemble(b *testing.B, src string) *isa.Executable {
	b.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return exe
}

// benchMarshal builds a Marshal over temp dirs with the given workload
// files ({name: content}; .sh files are written executable).
func benchMarshal(b *testing.B, files map[string]string) (*core.Marshal, string) {
	b.Helper()
	wlDir := b.TempDir()
	for name, content := range files {
		p := filepath.Join(wlDir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			b.Fatal(err)
		}
		mode := os.FileMode(0o644)
		if strings.HasSuffix(name, ".sh") || strings.HasSuffix(name, ".bin") {
			mode = 0o755
		}
		if err := os.WriteFile(p, []byte(content), mode); err != nil {
			b.Fatal(err)
		}
	}
	m, err := core.New(b.TempDir(), wlDir)
	if err != nil {
		b.Fatal(err)
	}
	return m, wlDir
}

// ---------------------------------------------------------------------------
// Fig. 2 — the typical FireMarshal flow: build -> launch -> collect ->
// compare against known-good outputs.
// ---------------------------------------------------------------------------

func BenchmarkFig2Workflow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _ := benchMarshal(b, map[string]string{
			"w.json":       `{"name":"w","base":"br-base","command":"echo fig2-flow > /output/r.txt; echo fig2-console","outputs":["/output/r.txt"],"testing":{"refDir":"refs"}}`,
			"refs/uartlog": "fig2-console\n",
			"refs/r.txt":   "fig2-flow\n",
		})
		results, err := m.Test("w", core.TestOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if !results[0].Passed {
			b.Fatalf("workflow comparison failed: %+v", results[0].Failures)
		}
	}
}

// ---------------------------------------------------------------------------
// Fig. 3 — build outputs: boot binary + disk image, and the --no-disk
// variant with the rootfs embedded in the initramfs.
// ---------------------------------------------------------------------------

func BenchmarkFig3Build(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _ := benchMarshal(b, map[string]string{
			"w.json": `{"name":"w","base":"br-base","command":"echo x"}`,
		})
		results, err := m.Build("w", core.BuildOpts{NoDisk: true})
		if err != nil {
			b.Fatal(err)
		}
		res := results[0]
		if res.Bin == "" || res.Img == "" || res.NoDiskBin == "" {
			b.Fatal("missing Fig. 3 outputs")
		}
		if i == 0 {
			binSize := fileSize(b, res.Bin)
			imgSize := fileSize(b, res.Img)
			ndSize := fileSize(b, res.NoDiskBin)
			once("fig3", func() {
				fmt.Printf("\nFig3: boot-binary=%dB disk-image=%dB nodisk-binary=%dB (nodisk embeds the image)\n",
					binSize, imgSize, ndSize)
			})
			b.ReportMetric(float64(ndSize)/float64(binSize), "nodisk/bin-size-ratio")
		}
	}
}

func fileSize(b *testing.B, p string) int64 {
	info, err := os.Stat(p)
	if err != nil {
		b.Fatal(err)
	}
	return info.Size()
}

// ---------------------------------------------------------------------------
// Fig. 5 — PFA latency microbenchmark: per-step remote-page-fault latency,
// hardware PFA vs the software-paging baseline over the same network.
// ---------------------------------------------------------------------------

func BenchmarkFig5PFALatency(b *testing.B) {
	const pages = 32
	backend := &pfa.GoldenBackend{Latency: 1200}
	for i := 0; i < b.N; i++ {
		// Hardware path.
		rtl, err := rtlsim.New(rtlsim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		dev, err := pfa.NewDevice(pfa.DefaultTiming(), backend, boards.PFARemoteBase, pages*pfa.PageSize)
		if err != nil {
			b.Fatal(err)
		}
		rtl.AddDevice(dev)
		rtl.AddHook(dev)
		var hwOut strings.Builder
		if _, err := rtl.Exec(mustAssemble(b, workgen.PFAClientSource(pages)), &hwOut); err != nil {
			b.Fatal(err)
		}
		hw := dev.TotalStats()

		// Software baseline path (emulated PFA in the fault handler).
		rtl2, _ := rtlsim.New(rtlsim.DefaultConfig())
		base, err := pfa.NewBaseline(pfa.DefaultBaselineTiming(), backend, boards.PFARemoteBase, pages*pfa.PageSize)
		if err != nil {
			b.Fatal(err)
		}
		rtl2.AddHook(base)
		var swOut strings.Builder
		if _, err := rtl2.Exec(mustAssemble(b, workgen.PFABaselineClientSource(pages)), &swOut); err != nil {
			b.Fatal(err)
		}
		sw := base.TotalStats()

		hwPer := float64(hw.TotalCycles()) / float64(hw.Faults)
		swPer := float64(sw.TotalCycles()) / float64(sw.Faults)
		if i == 0 {
			once("fig5", func() {
				fmt.Printf("\nFig5: per-step remote-page-fault latency, cycles/fault over %d faults\n", hw.Faults)
				fmt.Printf("%-12s %10s %10s %10s %10s %10s\n", "config", "detect", "walk", "fetch", "install", "total")
				fmt.Printf("%-12s %10.0f %10.0f %10.0f %10.0f %10.0f\n", "pfa",
					per(hw.DetectCycles, hw.Faults), per(hw.WalkCycles, hw.Faults),
					per(hw.RDMACycles, hw.Faults), per(hw.InstallCycles, hw.Faults), hwPer)
				fmt.Printf("%-12s %10.0f %10.0f %10.0f %10.0f %10.0f\n", "sw-paging",
					per(sw.DetectCycles, sw.Faults), per(sw.WalkCycles, sw.Faults),
					per(sw.RDMACycles, sw.Faults), per(sw.InstallCycles, sw.Faults), swPer)
				fmt.Printf("critical-path overhead beyond the raw fetch: pfa=%.0f sw=%.0f cycles (%.1fx)\n",
					hwPer-1200, swPer-1200, (swPer-1200)/(hwPer-1200))
			})
			b.ReportMetric(hwPer, "pfa-cycles/fault")
			b.ReportMetric(swPer, "sw-cycles/fault")
			b.ReportMetric(swPer/hwPer, "sw/pfa-ratio")
		}
		if swPer <= hwPer {
			b.Fatal("baseline must be slower than the PFA")
		}
	}
}

func per(total, n uint64) float64 { return float64(total) / float64(n) }

// ---------------------------------------------------------------------------
// Fig. 6 / Listings 2-3 — SPEC2017 intspeed on the reference dataset:
// Gshare (BOOM v2) vs TAGE, per-benchmark score.
// ---------------------------------------------------------------------------

func BenchmarkFig6BranchPredictors(b *testing.B) {
	suite := workgen.IntSpeedSuite()
	exes := make([]*isa.Executable, len(suite))
	for i, bench := range suite {
		exes[i] = mustAssemble(b, bench.Source("ref"))
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		type result struct {
			cycles     uint64
			mispredict float64
		}
		scores := map[string]map[string]result{}
		for _, predictor := range []string{"gshare", "tage"} {
			scores[predictor] = map[string]result{}
			for i, bench := range suite {
				cfg := rtlsim.DefaultConfig()
				cfg.Predictor = predictor
				p, err := rtlsim.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := p.Exec(exes[i], io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				scores[predictor][bench.Name] = result{cycles: res.Cycles, mispredict: p.Stats().MispredictRate()}
			}
		}
		if n == 0 {
			ratioSum := 0.0
			wins := 0
			once("fig6", func() {
				fmt.Printf("\nFig6: intspeed (ref dataset) score by branch predictor\n")
				fmt.Printf("%-20s %12s %12s %9s %9s %8s\n", "benchmark", "gshare-score", "tage-score", "gsh-miss", "tage-miss", "speedup")
			})
			for _, bench := range suite {
				g := scores["gshare"][bench.Name]
				t := scores["tage"][bench.Name]
				gScore := bench.RefSeconds / (float64(g.cycles) / 1e9)
				tScore := bench.RefSeconds / (float64(t.cycles) / 1e9)
				ratio := tScore / gScore
				ratioSum += ratio
				if ratio >= 1.0 {
					wins++
				}
				once("fig6-"+bench.Name, func() {
					fmt.Printf("%-20s %12.2f %12.2f %9.4f %9.4f %8.3f\n",
						bench.Name, gScore, tScore, g.mispredict, t.mispredict, ratio)
				})
			}
			b.ReportMetric(ratioSum/float64(len(suite)), "mean-tage/gshare-score")
			b.ReportMetric(float64(wins), "tage-wins-of-10")
			if wins < 7 {
				b.Fatalf("TAGE should win most benchmarks, won %d/10", wins)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// §IV-B speedup — running the 10 intspeed jobs as parallel FireSim nodes
// ("reduced the runtime for our experiment from about two weeks to roughly
// two days"). Measured as host wall clock serial vs parallel.
// ---------------------------------------------------------------------------

func BenchmarkJobParallelism(b *testing.B) {
	m, wlDir := specWorkload(b, "test")
	dir, err := m.Install("intspeed", core.InstallOpts{})
	if err != nil {
		b.Fatal(err)
	}
	cfg := loadInstalled(b, dir)
	_ = wlDir
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		serial, err := RunInstalled(cfg, SimOptions{RTL: DefaultRTLConfig(), OutputDir: filepath.Join(b.TempDir(), "s")})
		if err != nil {
			b.Fatal(err)
		}
		parallel, err := RunInstalled(cfg, SimOptions{RTL: DefaultRTLConfig(), Parallel: true, OutputDir: filepath.Join(b.TempDir(), "p")})
		if err != nil {
			b.Fatal(err)
		}
		speedup := float64(serial.HostTime) / float64(parallel.HostTime)
		// The paper ran each job on its own FireSim FPGA node: completion
		// time drops from the sum of node times to the max ("from about two
		// weeks to roughly two days"). Model that from simulated cycles,
		// which is host-independent; the measured host speedup is
		// additionally bounded by runtime.NumCPU.
		var sumCycles, maxCycles uint64
		for _, job := range serial.Jobs {
			sumCycles += job.Cycles
			if job.Cycles > maxCycles {
				maxCycles = job.Cycles
			}
		}
		cluster := float64(sumCycles) / float64(maxCycles)
		if i == 0 {
			once("parallel", func() {
				fmt.Printf("\nJobParallelism: 10 intspeed jobs serial=%v parallel=%v host-speedup=%.2fx (%d CPU)\n",
					serial.HostTime.Round(1000000), parallel.HostTime.Round(1000000), speedup, runtime.NumCPU())
				fmt.Printf("  cluster model: sum(node cycles)=%d max=%d -> %.1fx fewer sim-days with one FPGA per job\n",
					sumCycles, maxCycles, cluster)
			})
			b.ReportMetric(speedup, "host-speedup")
			b.ReportMetric(cluster, "cluster-speedup")
		}
		if cluster < 2 {
			b.Fatalf("cluster-parallel speedup %.2f implausibly low", cluster)
		}
	}
}

func specWorkload(b *testing.B, dataset string) (*core.Marshal, string) {
	b.Helper()
	files := map[string]string{
		"overlay/intspeed.sh": workgen.IntSpeedRunScript(),
	}
	var jobs []string
	for _, bench := range workgen.IntSpeedSuite() {
		exe := mustAssemble(b, bench.Source(dataset))
		files["overlay/spec/bin/"+bench.Name+".bin"] = string(isa.EncodeExecutable(exe))
		jobs = append(jobs, fmt.Sprintf(`    {"name": %q, "command": "/intspeed.sh %s --threads 1"}`, bench.Name, bench.Name))
	}
	files["intspeed.json"] = fmt.Sprintf(`{
  "name": "intspeed", "base": "buildroot", "overlay": "overlay",
  "rootfs-size": "3GiB", "outputs": ["/output"],
  "jobs": [
%s
  ]}`, strings.Join(jobs, ",\n"))
	m, wlDir := benchMarshal(b, files)
	// The overlay writes "<name>.bin"; the dispatcher expects "<name>".
	for _, bench := range workgen.IntSpeedSuite() {
		oldPath := filepath.Join(wlDir, "overlay/spec/bin", bench.Name+".bin")
		if err := os.Rename(oldPath, strings.TrimSuffix(oldPath, ".bin")); err != nil {
			b.Fatal(err)
		}
		os.Chmod(strings.TrimSuffix(oldPath, ".bin"), 0o755)
	}
	return m, wlDir
}

func loadInstalled(b *testing.B, dir string) *InstalledConfig {
	b.Helper()
	cfg, err := LoadInstalled(dir)
	if err != nil {
		b.Fatal(err)
	}
	return cfg
}

// ---------------------------------------------------------------------------
// Fig. 7 — education flow: the tile sweep on the accelerator, with the
// determinism check grading depends on.
// ---------------------------------------------------------------------------

func BenchmarkFig7Education(b *testing.B) {
	const n = 64
	for i := 0; i < b.N; i++ {
		cyclesFor := func(tile int) (uint64, uint64) {
			run := func() uint64 {
				rtl, err := rtlsim.New(rtlsim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				drivers, err := boards.DeviceProfile("gemmini", boards.ProfileOpts{})
				if err != nil {
					b.Fatal(err)
				}
				for _, d := range drivers {
					if err := d.Attach(rtl); err != nil {
						b.Fatal(err)
					}
				}
				res, err := rtl.Exec(mustAssemble(b, workgen.MatmulSource(n, tile)), io.Discard)
				if err != nil {
					b.Fatal(err)
				}
				return res.Cycles
			}
			return run(), run()
		}
		naive1, naive2 := cyclesFor(1)
		tiled1, tiled2 := cyclesFor(16)
		if naive1 != naive2 || tiled1 != tiled2 {
			b.Fatal("cycle counts not repeatable")
		}
		if tiled1 >= naive1 {
			b.Fatal("tiling should reduce cycles")
		}
		if i == 0 {
			once("fig7", func() {
				fmt.Printf("\nFig7: matmul %dx%d — naive(tile=1)=%d cycles, tiled(tile=16)=%d cycles (%.2fx); repeat runs cycle-exact\n",
					n, n, naive1, tiled1, float64(naive1)/float64(tiled1))
			})
			b.ReportMetric(float64(naive1)/float64(tiled1), "tiled-speedup")
		}
	}
}

// ---------------------------------------------------------------------------
// §III-B — dependency tracking: incremental no-op rebuild vs clean build.
// ---------------------------------------------------------------------------

// chainFiles is the 4-deep inheritance chain shared by the rebuild and
// cache benchmarks. Every level does the representative per-workload work
// of §III-B: a kernel config fragment (custom kernel build) and a
// guest-init script that boots the image in functional simulation and runs
// real software in the guest — the base level does the expensive one-time
// setup (a ref-dataset compute job standing in for compiling packages
// inside the guest), children run a quick smoke check. A cache restore
// skips all of it.
func chainFiles(b *testing.B) map[string]string {
	b.Helper()
	bench := workgen.IntSpeedSuite()[0]
	setup := string(isa.EncodeExecutable(mustAssemble(b, bench.Source("ref"))))
	smoke := string(isa.EncodeExecutable(mustAssemble(b, bench.Source("test"))))
	return map[string]string{
		"p1.kfrag":           "CONFIG_PFA=y\n",
		"overlay1/setup.bin": setup,
		"init1.sh":           "#!/bin/sh\n/setup.bin\necho init p1 > /etc/p1\n",
		"p1.json":            `{"name":"p1","base":"br-base","linux":{"config":"p1.kfrag"},"overlay":"overlay1","guest-init":"init1.sh","command":"echo 1"}`,
		"p2.kfrag":           "CONFIG_ICENET=y\n",
		"overlay2/smoke.bin": smoke,
		"init2.sh":           "#!/bin/sh\n/setup.bin\n/smoke.bin\necho init p2 > /etc/p2\n",
		"p2.json":            `{"name":"p2","base":"p1","linux":{"config":"p2.kfrag"},"overlay":"overlay2","guest-init":"init2.sh","command":"echo 2"}`,
		"p3.kfrag":           "CONFIG_DEBUG_INFO=y\n",
		"init3.sh":           "#!/bin/sh\n/smoke.bin\necho init p3 > /etc/p3\n",
		"p3.json":            `{"name":"p3","base":"p2","linux":{"config":"p3.kfrag"},"guest-init":"init3.sh","command":"echo 3"}`,
		"initw.sh":           "#!/bin/sh\n/smoke.bin\necho init w > /etc/w\n",
		"w.json":             `{"name":"w","base":"p3","guest-init":"initw.sh","command":"echo leaf"}`,
	}
}

// benchChainMarshal builds a Marshal over the chain workloads with an
// explicit workload dir, cache dir, and remote URL (either may be "").
func benchChainMarshal(b *testing.B, wlDir, cacheDir, remoteURL string) *core.Marshal {
	b.Helper()
	m, err := core.New(b.TempDir(), wlDir)
	if err != nil {
		b.Fatal(err)
	}
	m.CacheDir = cacheDir
	m.RemoteCache = remoteURL
	return m
}

func BenchmarkIncrementalRebuild(b *testing.B) {
	wlDir := b.TempDir()
	for name, content := range chainFiles(b) {
		p := filepath.Join(wlDir, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			b.Fatal(err)
		}
		mode := os.FileMode(0o644)
		if strings.HasSuffix(name, ".sh") || strings.HasSuffix(name, ".bin") {
			mode = 0o755
		}
		if err := os.WriteFile(p, []byte(content), mode); err != nil {
			b.Fatal(err)
		}
	}

	// cold: full build with an empty cache every iteration.
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := benchChainMarshal(b, wlDir, b.TempDir(), "")
			if _, err := m.Build("w", core.BuildOpts{}); err != nil {
				b.Fatal(err)
			}
			if len(m.LastBuildStats.Executed) == 0 {
				b.Fatal("cold build executed nothing")
			}
		}
	})

	// noop: rebuild in place; the state DB skips everything.
	b.Run("noop", func(b *testing.B) {
		m := benchChainMarshal(b, wlDir, b.TempDir(), "")
		if _, err := m.Build("w", core.BuildOpts{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := m.Build("w", core.BuildOpts{}); err != nil {
				b.Fatal(err)
			}
			if len(m.LastBuildStats.Executed) != 0 {
				b.Fatal("no-op rebuild executed tasks")
			}
		}
	})

	// warm-cache: a fresh checkout every iteration, restored entirely from
	// a shared local action cache (zero build actions run).
	b.Run("warm-cache", func(b *testing.B) {
		cacheDir := b.TempDir()
		coldStart := time.Now()
		seed := benchChainMarshal(b, wlDir, cacheDir, "")
		if _, err := seed.Build("w", core.BuildOpts{}); err != nil {
			b.Fatal(err)
		}
		coldTime := time.Since(coldStart)
		b.ResetTimer()
		var warmTotal time.Duration
		for i := 0; i < b.N; i++ {
			m := benchChainMarshal(b, wlDir, cacheDir, "")
			start := time.Now()
			if _, err := m.Build("w", core.BuildOpts{}); err != nil {
				b.Fatal(err)
			}
			warmTotal += time.Since(start)
			if len(m.LastBuildStats.Executed) != 0 {
				b.Fatal("warm-cache rebuild executed tasks")
			}
			if len(m.LastBuildStats.Restored) == 0 {
				b.Fatal("warm-cache rebuild restored nothing")
			}
		}
		warm := warmTotal / time.Duration(b.N)
		speedup := float64(coldTime) / float64(warm)
		b.ReportMetric(speedup, "cold/warm-speedup")
		once("warm-cache", func() {
			fmt.Printf("\nIncrementalRebuild: cold=%v warm-cache=%v (%.1fx faster; zero build actions on warm)\n",
				coldTime, warm, speedup)
		})
	})

	// remote-hit: a fresh checkout AND fresh local cache every iteration,
	// restored from the HTTP remote-cache server.
	b.Run("remote-hit", func(b *testing.B) {
		serverStore, err := cas.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(remote.NewServer(serverStore))
		defer srv.Close()
		seed := benchChainMarshal(b, wlDir, b.TempDir(), srv.URL)
		if _, err := seed.Build("w", core.BuildOpts{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := benchChainMarshal(b, wlDir, b.TempDir(), srv.URL)
			if _, err := m.Build("w", core.BuildOpts{}); err != nil {
				b.Fatal(err)
			}
			if len(m.LastBuildStats.Executed) != 0 {
				b.Fatal("remote-hit rebuild executed tasks")
			}
			if m.LastBuildStats.Cache.RemoteHits == 0 {
				b.Fatal("remote-hit rebuild did not touch the remote")
			}
		}
	})
}

// BenchmarkCASRestore measures raw artifact-restore throughput out of the
// content-addressed store: publish once, restore b.N times.
func BenchmarkCASRestore(b *testing.B) {
	store, err := cas.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	cache := cas.NewCache(store, nil)
	srcDir := b.TempDir()
	var targets []string
	const artifacts = 8
	const artifactSize = 256 << 10
	payload := make([]byte, artifactSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	for i := 0; i < artifacts; i++ {
		p := filepath.Join(srcDir, fmt.Sprintf("artifact%d", i))
		if err := os.WriteFile(p, append(payload, byte(i)), 0o644); err != nil {
			b.Fatal(err)
		}
		targets = append(targets, p)
	}
	key := strings.Repeat("ab", 32)
	action, err := cache.Publish(key, "bench", targets)
	if err != nil {
		b.Fatal(err)
	}
	dstDir := b.TempDir()
	var restored []string
	for i := range targets {
		restored = append(restored, filepath.Join(dstDir, filepath.Base(targets[i])))
	}
	b.SetBytes(int64(artifacts * (artifactSize + 1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cache.Restore(action, restored); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCleanBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, _ := benchMarshal(b, map[string]string{
			"p1.json": `{"name":"p1","base":"br-base","command":"echo 1"}`,
			"p2.json": `{"name":"p2","base":"p1","command":"echo 2"}`,
			"p3.json": `{"name":"p3","base":"p2","command":"echo 3"}`,
			"w.json":  `{"name":"w","base":"p3","command":"echo leaf"}`,
		})
		if _, err := m.Build("w", core.BuildOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablation — TAGE storage budget sweep (DESIGN.md ablation 2).
// ---------------------------------------------------------------------------

func BenchmarkTageBudget(b *testing.B) {
	bench := workgen.IntSpeedSuite()[6] // 631.deepsjeng_s: branch-heavy
	exe := mustAssemble(b, bench.Source("test"))
	for i := 0; i < b.N; i++ {
		if i == 0 {
			once("tage-budget-hdr", func() {
				fmt.Printf("\nTageBudget: 631.deepsjeng_s cycles by tagged-table size\n")
			})
		}
		prev := uint64(0)
		for _, bits := range []uint{6, 8, 10, 12} {
			cfg := rtlsim.DefaultConfig()
			cfg.Predictor = "tage"
			p, err := rtlsim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			// Rebuild with a custom TAGE budget.
			tcfg := bpred.DefaultTageConfig()
			tcfg.TableBits = bits
			custom := bpred.NewTage(tcfg)
			replacePredictor(p, custom)
			res, err := p.Exec(exe, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				bits := bits
				cycles := res.Cycles
				once(fmt.Sprintf("tage-budget-%d", bits), func() {
					fmt.Printf("  2^%d entries/table: %d cycles\n", bits, cycles)
				})
			}
			prev = res.Cycles
		}
		_ = prev
	}
}

// replacePredictor swaps the platform's branch predictor (test/bench
// support; production code selects predictors by name).
func replacePredictor(p *rtlsim.Platform, pred bpred.Predictor) {
	p.SetPredictor(pred)
}

// ---------------------------------------------------------------------------
// Ablation — D$ size sweep on the memory-bound benchmark (DESIGN.md 3).
// ---------------------------------------------------------------------------

func BenchmarkCacheSweep(b *testing.B) {
	bench := workgen.IntSpeedSuite()[2] // 605.mcf_s: pointer chasing
	exe := mustAssemble(b, bench.Source("test"))
	for i := 0; i < b.N; i++ {
		var last uint64
		for _, kib := range []int{4, 16, 64, 256} {
			cfg := rtlsim.DefaultConfig()
			cfg.DCache.SizeBytes = kib << 10
			p, err := rtlsim.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.Exec(exe, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				kib := kib
				cycles := res.Cycles
				hitRate := float64(p.Stats().DCacheHits) / float64(p.Stats().DCacheHits+p.Stats().DCacheMisses)
				once(fmt.Sprintf("cache-%d", kib), func() {
					fmt.Printf("CacheSweep: 605.mcf_s D$=%3dKiB cycles=%d hit-rate=%.3f\n", kib, cycles, hitRate)
				})
			}
			last = res.Cycles
		}
		_ = last
	}
}

// ---------------------------------------------------------------------------
// Ablation — functional vs cycle-exact simulation speed (DESIGN.md 4): the
// gap that motivates developing on QEMU and saving FireSim for evaluation.
// ---------------------------------------------------------------------------

func BenchmarkFuncVsRTLSpeed(b *testing.B) {
	bench := workgen.IntSpeedSuite()[0]
	exe := mustAssemble(b, bench.Source("ref"))
	b.Run("functional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p := funcsim.New(funcsim.Config{})
			res, err := p.Exec(exe, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Instrs), "instrs")
		}
	})
	b.Run("cycle-exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := rtlsim.New(rtlsim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.Exec(exe, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Instrs), "instrs")
		}
	})
}

// ---------------------------------------------------------------------------
// Ablation — content-hash vs timestamp dependency tracking (DESIGN.md 1):
// touching a file without changing content must not rebuild.
// ---------------------------------------------------------------------------

func BenchmarkDepTrackingHashVsStamp(b *testing.B) {
	m, wlDir := benchMarshal(b, map[string]string{
		"frag.kfrag": "CONFIG_PFA=y\n",
		"w.json":     `{"name":"w","base":"br-base","linux":{"config":"frag.kfrag"},"command":"echo x"}`,
	})
	if _, err := m.Build("w", core.BuildOpts{}); err != nil {
		b.Fatal(err)
	}
	frag := filepath.Join(wlDir, "frag.kfrag")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Touch: rewrite identical content (new mtime). A timestamp-based
		// tracker would rebuild the kernel; the hash-based one must not.
		if err := os.WriteFile(frag, []byte("CONFIG_PFA=y\n"), 0o644); err != nil {
			b.Fatal(err)
		}
		if _, err := m.Build("w", core.BuildOpts{}); err != nil {
			b.Fatal(err)
		}
		if len(m.LastBuildStats.Executed) != 0 {
			b.Fatal("content-unchanged touch triggered a rebuild")
		}
	}
}

// parseCyclesField is shared output-parsing support for benches.
func parseCyclesField(b *testing.B, csv string, idx int) uint64 {
	b.Helper()
	fields := strings.Split(strings.TrimSpace(csv), ",")
	if len(fields) <= idx {
		b.Fatalf("bad csv %q", csv)
	}
	v, err := strconv.ParseUint(fields[idx], 10, 64)
	if err != nil {
		b.Fatalf("bad csv %q: %v", csv, err)
	}
	return v
}

// ---------------------------------------------------------------------------
// Ablation — network latency sweep (DESIGN.md follow-on): the PFA's
// end-to-end fault latency tracks the fabric, while its non-network
// overhead stays constant — the opposite of the software path, whose
// kernel overhead dominates regardless of the network.
// ---------------------------------------------------------------------------

func BenchmarkNetLatencySweep(b *testing.B) {
	const pages = 16
	exe := mustAssemble(b, workgen.PFAClientSource(pages))
	for i := 0; i < b.N; i++ {
		for _, lat := range []uint64{200, 1200, 5000} {
			backend := &pfa.GoldenBackend{Latency: lat}
			rtl, err := rtlsim.New(rtlsim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			dev, err := pfa.NewDevice(pfa.DefaultTiming(), backend, boards.PFARemoteBase, pages*pfa.PageSize)
			if err != nil {
				b.Fatal(err)
			}
			rtl.AddDevice(dev)
			rtl.AddHook(dev)
			if _, err := rtl.Exec(exe, io.Discard); err != nil {
				b.Fatal(err)
			}
			st := dev.TotalStats()
			perFault := float64(st.TotalCycles()) / float64(st.Faults)
			overhead := perFault - float64(lat)
			if i == 0 {
				lat := lat
				once(fmt.Sprintf("netsweep-%d", lat), func() {
					fmt.Printf("NetLatencySweep: fetch=%5d cycles -> fault=%6.0f cycles (pfa overhead %3.0f, constant)\n",
						lat, perFault, overhead)
				})
				if overhead != 35 {
					b.Fatalf("pfa non-network overhead should be constant 35 cycles, got %.0f", overhead)
				}
			}
		}
	}
}

// ---------------------------------------------------------------------------
// §II-A — the simulator spectrum: functional vs cycle-approximate vs
// cycle-exact, measuring both host speed and timing accuracy on the
// intspeed suite. "The general trade-off across the spectrum of simulators
// is between modeling detail and performance."
// ---------------------------------------------------------------------------

func BenchmarkSimulatorSpectrum(b *testing.B) {
	suite := workgen.IntSpeedSuite()[:4] // a representative slice
	exes := make([]*isa.Executable, len(suite))
	for i, bench := range suite {
		exes[i] = mustAssemble(b, bench.Source("ref"))
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		type row struct {
			instrs   uint64
			cycles   uint64
			hostTime time.Duration
		}
		measure := func(run func(exe *isa.Executable) (*sim.ExecResult, error)) row {
			var r row
			start := time.Now()
			for _, exe := range exes {
				res, err := run(exe)
				if err != nil {
					b.Fatal(err)
				}
				r.instrs += res.Instrs
				r.cycles += res.Cycles
			}
			r.hostTime = time.Since(start)
			return r
		}
		functional := measure(func(exe *isa.Executable) (*sim.ExecResult, error) {
			return funcsim.New(funcsim.Config{}).Exec(exe, io.Discard)
		})
		approx := measure(func(exe *isa.Executable) (*sim.ExecResult, error) {
			return approxsim.New(approxsim.DefaultConfig()).Exec(exe, io.Discard)
		})
		exact := measure(func(exe *isa.Executable) (*sim.ExecResult, error) {
			p, err := rtlsim.New(rtlsim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			return p.Exec(exe, io.Discard)
		})
		if n == 0 {
			mips := func(r row) float64 { return float64(r.instrs) / r.hostTime.Seconds() / 1e6 }
			cpiErr := func(r row) float64 {
				return 100 * (float64(r.cycles) - float64(exact.cycles)) / float64(exact.cycles)
			}
			once("spectrum", func() {
				fmt.Printf("\nSimulatorSpectrum (4 intspeed benchmarks, ref dataset):\n")
				fmt.Printf("%-14s %10s %14s %12s\n", "platform", "Minstr/s", "est. cycles", "cycle error")
				fmt.Printf("%-14s %10.1f %14d %11.1f%%\n", "qemu (func)", mips(functional), functional.cycles, cpiErr(functional))
				fmt.Printf("%-14s %10.1f %14d %11.1f%%\n", "gem5 (approx)", mips(approx), approx.cycles, cpiErr(approx))
				fmt.Printf("%-14s %10.1f %14d %11s\n", "firesim (RTL)", mips(exact), exact.cycles, "exact")
			})
			b.ReportMetric(mips(functional)/mips(exact), "func/exact-speed")
			b.ReportMetric(cpiErr(approx), "approx-cycle-error-%")
			// Spectrum shape: functional fastest, approximate in between or
			// comparable, exact slowest; approximate error far below the
			// functional platform's (which undercounts every stall).
			if !(mips(functional) > mips(exact)) {
				b.Fatal("functional must be faster than cycle-exact")
			}
			if abs(cpiErr(approx)) >= abs(cpiErr(functional)) {
				b.Fatalf("approx error (%.1f%%) should beat functional (%.1f%%)", cpiErr(approx), cpiErr(functional))
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ---------------------------------------------------------------------------
// Interpreter hot loop — simulated MIPS of the functional fast path, the
// reference StepInto loop, and the cycle-exact platform on a mixed
// ALU/load/store/branch workload. The functional loop must run with zero
// steady-state allocations; scripts/bench.sh tracks these numbers against a
// committed baseline.
// ---------------------------------------------------------------------------

const mipsWorkloadSrc = `
_start:
    li s0, 0
    li s1, 100000
    la s2, arr
    li s3, 0
loop:
    add t0, s3, s0
    xor t1, t0, s0
    slli t2, t1, 3
    srli t3, t2, 2
    andi t4, s0, 255
    slli t4, t4, 3
    add t5, s2, t4
    ld t6, 0(t5)
    add t6, t6, t1
    sd t6, 0(t5)
    add s3, s3, t6
    andi t0, s0, 7
    beqz t0, skip
    addi s3, s3, 1
skip:
    addi s0, s0, 1
    blt s0, s1, loop
    li a0, 0
    li a7, 93
    ecall
.data
.align 3
arr: .space 2048
`

func BenchmarkSimMIPS(b *testing.B) {
	exe := mustAssemble(b, mipsWorkloadSrc)
	// BENCH_METRICS=1 runs the same loop with obs counter shards attached
	// (the exact wiring funcsim uses), so scripts/check.sh can gate the
	// metrics-enabled hot loop against the metrics-free baseline.
	var instrShard, cycleShard *obs.Shard
	if os.Getenv("BENCH_METRICS") != "" {
		reg := obs.NewRegistry()
		instrShard = reg.Counter("sim_funcsim_instrs_total").Shard()
		cycleShard = reg.Counter("sim_funcsim_cycles_total").Shard()
	}
	// The functional-traced tier runs the loop-heavy workgen workload:
	// nearly every instruction retires inside a compiled superblock, so
	// this measures the trace compiler's speed tier (the plain functional
	// tier's mixed workload keeps measuring the general fast path).
	tracedExe := mustAssemble(b, workgen.LoopHeavySource(2048, 64))
	// runLoop drives one machine through b.N executions of the workload,
	// resetting architectural state between runs so the steady state
	// exercises only the interpreter loop (and its 0 allocs/op).
	runLoop := func(b *testing.B, exe *isa.Executable, run func(m *sim.Machine) (uint64, error)) {
		m := sim.NewMachine()
		m.Console = io.Discard
		m.Devices = []sim.Device{&sim.UART{}}
		m.SyscallFn = sim.BareSyscalls()
		m.MaxInstrs = 500_000_000
		m.LoadExecutable(exe, sim.DefaultStackTop)
		pc0, regs0 := m.PC, m.Regs
		var instrs uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PC, m.Regs, m.Halted = pc0, regs0, false
			m.Instret, m.Now = 0, 0
			if instrShard != nil {
				// Re-attach after the counter reset so the flush deltas
				// restart from the fresh baselines.
				m.AttachObs(instrShard, cycleShard)
			}
			n, err := run(m)
			if err != nil {
				b.Fatal(err)
			}
			if m.ExitCode != 0 {
				b.Fatalf("exit code %d", m.ExitCode)
			}
			instrs += n
		}
		b.StopTimer()
		b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
	}
	b.Run("functional", func(b *testing.B) { runLoop(b, exe, sim.RunFunctional) })
	b.Run("functional-traced", func(b *testing.B) { runLoop(b, tracedExe, sim.RunFunctional) })
	b.Run("reference", func(b *testing.B) { runLoop(b, exe, sim.RunReference) })
	b.Run("cycle-exact", func(b *testing.B) {
		var instrs uint64
		for i := 0; i < b.N; i++ {
			p, err := rtlsim.New(rtlsim.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			res, err := p.Exec(exe, io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			instrs += res.Instrs
		}
		b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "sim-MIPS")
	})
}
