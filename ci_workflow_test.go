package firemarshal

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"firemarshal/internal/yaml"
)

// TestCIWorkflowParses is an act-style dry parse of the CI workflow: the
// file must be valid YAML (per the same parser the spec loader uses),
// declare both gate jobs, and every `run:` step must reference a script
// that exists and is executable. A broken workflow edit fails here, in
// `go test`, instead of silently skipping CI on the hosted runner.
func TestCIWorkflowParses(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(".github", "workflows", "ci.yml"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := yaml.Parse(src)
	if err != nil {
		t.Fatalf("ci.yml does not parse: %v", err)
	}
	wf, ok := doc.(map[string]any)
	if !ok {
		t.Fatalf("ci.yml top level = %T, want mapping", doc)
	}
	if wf["name"] != "ci" {
		t.Errorf("workflow name = %v", wf["name"])
	}

	on, ok := wf["on"].(map[string]any)
	if !ok {
		t.Fatalf("on = %T, want mapping", wf["on"])
	}
	push, ok := on["push"].(map[string]any)
	if !ok {
		t.Fatalf("on.push = %T", on["push"])
	}
	if branches, ok := push["branches"].([]any); !ok || len(branches) == 0 || branches[0] != "main" {
		t.Errorf("on.push.branches = %v", push["branches"])
	}
	if _, ok := on["pull_request"]; !ok {
		t.Error("workflow does not trigger on pull_request")
	}

	jobs, ok := wf["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("jobs = %T, want mapping", wf["jobs"])
	}
	usesRe := regexp.MustCompile(`^[\w.-]+/[\w.-]+@v\d+`)
	wantRun := map[string]string{
		"check":       "scripts/check.sh",
		"bench":       "scripts/bench.sh",
		"metrics":     "scripts/bench.sh",
		"resume":      "scripts/resume_gate.sh",
		"distributed": "scripts/distributed_gate.sh",
		"verify-farm": "scripts/verify_gate.sh",
		"chaos":       "scripts/chaos_gate.sh",
		"cache":       "scripts/cache_gate.sh",
	}
	for _, name := range []string{"check", "bench", "metrics", "resume", "distributed", "verify-farm", "chaos", "cache"} {
		job, ok := jobs[name].(map[string]any)
		if !ok {
			t.Fatalf("jobs.%s = %T, want mapping", name, jobs[name])
		}
		if job["runs-on"] != "ubuntu-latest" {
			t.Errorf("jobs.%s.runs-on = %v", name, job["runs-on"])
		}
		steps, ok := job["steps"].([]any)
		if !ok || len(steps) == 0 {
			t.Fatalf("jobs.%s.steps = %v", name, job["steps"])
		}
		var sawGate, sawSetupGo, sawTracedGate bool
		for i, s := range steps {
			step, ok := s.(map[string]any)
			if !ok {
				t.Fatalf("jobs.%s.steps[%d] = %T", name, i, s)
			}
			if uses, ok := step["uses"].(string); ok {
				if !usesRe.MatchString(uses) {
					t.Errorf("jobs.%s.steps[%d].uses = %q, want owner/repo@vN", name, i, uses)
				}
				if strings.HasPrefix(uses, "actions/setup-go@") {
					sawSetupGo = true
					with, _ := step["with"].(map[string]any)
					if with["cache"] != true {
						t.Errorf("jobs.%s setup-go has no module/build cache: with = %v", name, with)
					}
				}
				continue
			}
			run, ok := step["run"].(string)
			if !ok {
				t.Errorf("jobs.%s.steps[%d] has neither uses nor run: %v", name, i, step)
				continue
			}
			// Each run step must point at a real, executable script.
			script := strings.Fields(strings.TrimSpace(run))[0]
			info, err := os.Stat(script)
			if err != nil {
				t.Errorf("jobs.%s run step references missing script %q: %v", name, script, err)
			} else if info.Mode()&0o111 == 0 {
				t.Errorf("jobs.%s script %q is not executable", name, script)
			}
			if script == "scripts/traced_gate.sh" {
				sawTracedGate = true
			}
			if script == wantRun[name] {
				sawGate = true
				// The metrics job is the bench gate re-run with the obs
				// shards attached; without the env it measures nothing new.
				if name == "metrics" {
					env, _ := step["env"].(map[string]any)
					if env["BENCH_METRICS"] != "1" {
						t.Errorf("jobs.metrics gate step does not set BENCH_METRICS=1: env = %v", env)
					}
				}
			}
		}
		if !sawSetupGo {
			t.Errorf("jobs.%s does not set up Go", name)
		}
		if !sawGate {
			t.Errorf("jobs.%s never runs its gate %s", name, wantRun[name])
		}
		// The bench job also gates the trace-compiled tier: the loop-heavy
		// workload under superblock dispatch, same 30% regression rule.
		if name == "bench" && !sawTracedGate {
			t.Error("jobs.bench never runs scripts/traced_gate.sh")
		}
	}
}

// TestNightlyWorkflowParses dry-parses the nightly verification-farm
// workflow the same way: valid YAML, a cron schedule plus manual
// dispatch, the farm job running an existing executable script, and an
// artifact-upload step that fires even on a red run (a nightly that
// finds a divergence is exactly the one whose repros must upload).
func TestNightlyWorkflowParses(t *testing.T) {
	src, err := os.ReadFile(filepath.Join(".github", "workflows", "nightly.yml"))
	if err != nil {
		t.Fatal(err)
	}
	doc, err := yaml.Parse(src)
	if err != nil {
		t.Fatalf("nightly.yml does not parse: %v", err)
	}
	wf, ok := doc.(map[string]any)
	if !ok {
		t.Fatalf("nightly.yml top level = %T, want mapping", doc)
	}
	if wf["name"] != "nightly" {
		t.Errorf("workflow name = %v", wf["name"])
	}

	on, ok := wf["on"].(map[string]any)
	if !ok {
		t.Fatalf("on = %T, want mapping", wf["on"])
	}
	sched, ok := on["schedule"].([]any)
	if !ok || len(sched) == 0 {
		t.Fatalf("on.schedule = %v, want a cron list", on["schedule"])
	}
	entry, _ := sched[0].(map[string]any)
	cron, _ := entry["cron"].(string)
	if len(strings.Fields(cron)) != 5 {
		t.Errorf("on.schedule[0].cron = %q, want a 5-field cron expression", cron)
	}
	if _, ok := on["workflow_dispatch"]; !ok {
		t.Error("nightly is not manually dispatchable (workflow_dispatch)")
	}

	jobs, ok := wf["jobs"].(map[string]any)
	if !ok {
		t.Fatalf("jobs = %T, want mapping", wf["jobs"])
	}
	job, ok := jobs["farm"].(map[string]any)
	if !ok {
		t.Fatalf("jobs.farm = %T, want mapping", jobs["farm"])
	}
	steps, ok := job["steps"].([]any)
	if !ok || len(steps) == 0 {
		t.Fatalf("jobs.farm.steps = %v", job["steps"])
	}
	var sawFarm, sawUpload bool
	for i, s := range steps {
		step, ok := s.(map[string]any)
		if !ok {
			t.Fatalf("jobs.farm.steps[%d] = %T", i, s)
		}
		if run, ok := step["run"].(string); ok {
			script := strings.Fields(strings.TrimSpace(run))[0]
			info, err := os.Stat(script)
			if err != nil {
				t.Errorf("jobs.farm run step references missing script %q: %v", script, err)
			} else if info.Mode()&0o111 == 0 {
				t.Errorf("jobs.farm script %q is not executable", script)
			}
			if script == "scripts/nightly_farm.sh" {
				sawFarm = true
			}
		}
		if uses, ok := step["uses"].(string); ok && strings.HasPrefix(uses, "actions/upload-artifact@") {
			sawUpload = true
			if step["if"] != "always()" {
				t.Errorf("artifact upload must run on red nights too: if = %v", step["if"])
			}
		}
	}
	if !sawFarm {
		t.Error("jobs.farm never runs scripts/nightly_farm.sh")
	}
	if !sawUpload {
		t.Error("jobs.farm never uploads the farm artifacts")
	}
}
