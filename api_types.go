package firemarshal

import "firemarshal/internal/runtest"

// runtestFailure aliases the test-comparison failure type.
type runtestFailure = runtest.Failure
