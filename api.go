// Package firemarshal is the public API of the FireMarshal reproduction: a
// software workload management system for RISC-V full-stack hardware
// research (Pemberton & Amid, ISPASS 2021). It automates workload
// generation (boot binaries and filesystem images), development (functional
// simulation), and evaluation (cycle-exact simulation), guaranteeing that
// the exact same artifacts run deterministically across all simulation
// levels.
//
// The five lifecycle phases (§II) map onto this API:
//
//	specify — write a JSON/YAML workload description (spec options of Table II)
//	build   — (*Marshal).Build: boot binary + disk image, dependency tracked
//	launch  — (*Marshal).Launch: run in functional simulation (QEMU/Spike role)
//	test    — (*Marshal).Test: compare run outputs against references
//	install — (*Marshal).Install + RunInstalled: cycle-exact simulation
//	          (FireSim role) of the identical artifacts
//
// See examples/ for complete programs covering the paper's case studies.
package firemarshal

import (
	"io"

	"firemarshal/internal/core"
	"firemarshal/internal/fsrun"
	"firemarshal/internal/install"
	"firemarshal/internal/launcher"
	"firemarshal/internal/sim/rtlsim"
	"firemarshal/internal/spec"
)

// Marshal manages workloads rooted at a working directory.
type Marshal = core.Marshal

// Workload is a resolved workload description.
type Workload = spec.Workload

// Option and result types of the lifecycle commands.
type (
	// BuildOpts controls Build (NoDisk embeds the rootfs in the initramfs).
	BuildOpts = core.BuildOpts
	// BuildResult names the artifacts built for one target.
	BuildResult = core.BuildResult
	// LaunchOpts controls functional-simulation runs.
	LaunchOpts = core.LaunchOpts
	// RunResult reports one launch.
	RunResult = core.RunResult
	// TestOpts controls test runs (Manual compares an existing directory).
	TestOpts = core.TestOpts
	// TestResult reports one test outcome.
	TestResult = core.TestResult
	// InstallOpts selects the RTL simulator connector.
	InstallOpts = core.InstallOpts
	// Target identifies the root workload or one of its jobs.
	Target = core.Target
)

// Parallel-launch scheduling types (marshal launch -j N).
type (
	// LaunchSummary is the per-job scheduling record of the most recent
	// launch (Marshal.LastLaunch): statuses, attempts, wall-clock.
	LaunchSummary = launcher.Summary
	// LaunchJobResult is one job's row in a LaunchSummary.
	LaunchJobResult = launcher.Result
)

// Cycle-exact simulation of installed workloads (the FireSim manager role).
type (
	// RTLConfig is the hardware configuration: branch predictor, caches,
	// latencies.
	RTLConfig = rtlsim.Config
	// SimOptions controls a cycle-exact run.
	SimOptions = fsrun.Options
	// SimResult reports a completed cycle-exact run.
	SimResult = fsrun.Result
	// JobResult reports one simulated node.
	JobResult = fsrun.JobResult
	// InstalledConfig is the machine-readable output of Install.
	InstalledConfig = install.Config
)

// New creates a workload manager. workDir holds build state and artifacts;
// searchPath lists directories to resolve workload names in (the PATH-like
// search order of §III-B.1).
func New(workDir string, searchPath ...string) (*Marshal, error) {
	return core.New(workDir, searchPath...)
}

// DefaultRTLConfig returns the BOOM-like default hardware configuration
// (TAGE predictor, 16KiB L1 caches, 1 GHz).
func DefaultRTLConfig() RTLConfig {
	return rtlsim.DefaultConfig()
}

// LoadInstalled reads a configuration produced by (*Marshal).Install.
func LoadInstalled(dir string) (*InstalledConfig, error) {
	return install.Load(dir)
}

// RunInstalled simulates an installed workload cycle-exactly, one node per
// job, optionally in parallel on the host (§IV-B's two-weeks-to-two-days
// optimization).
func RunInstalled(cfg *InstalledConfig, opts SimOptions) (*SimResult, error) {
	return fsrun.Run(cfg, opts)
}

// VerifyInstalled compares a cycle-exact run's outputs against the
// workload's reference directory — `marshal test --manual` (§III-E).
func VerifyInstalled(cfg *InstalledConfig, outputDir string) error {
	failures, err := fsrun.Verify(cfg, outputDir)
	if err != nil {
		return err
	}
	if len(failures) > 0 {
		return &VerifyError{Failures: failures}
	}
	return nil
}

// VerifyError reports reference mismatches from VerifyInstalled.
type VerifyError struct {
	Failures []fsrunFailure
}

type fsrunFailure = runtestFailure

func (e *VerifyError) Error() string {
	msg := "firemarshal: output verification failed:"
	for _, f := range e.Failures {
		msg += "\n  " + f.String()
	}
	return msg
}

// Discard is a no-op log sink for quiet operation.
var Discard io.Writer = io.Discard
