module firemarshal

go 1.22
