// Package accel models the machine-learning accelerator from the paper's
// education case study (§IV-C): students "optimize tiled convolution and
// matrix multiplication implementations for an RTL implementation of a
// machine learning accelerator integrated into a RISC-V SoC" (a
// Gemmini-style unit). The device performs C = A×B over int32 matrices in
// guest memory via MMIO, with a deterministic timing model in which the
// tiling factor controls scratchpad reuse: well-chosen tiles move far fewer
// bytes between memory and the scratchpad, which is exactly the quantity
// students tuned.
package accel

import (
	"encoding/binary"
	"fmt"

	"firemarshal/internal/sim"
)

// MMIOBase is the accelerator's device address.
const MMIOBase = 0x56000000

// MMIO register offsets. All registers are 8 bytes.
const (
	regM      = 0x00 // store: rows of A/C
	regN      = 0x08 // store: cols of B/C
	regK      = 0x10 // store: cols of A / rows of B
	regAddrA  = 0x18 // store: guest address of A (row-major int32)
	regAddrB  = 0x20 // store: guest address of B
	regAddrC  = 0x28 // store: guest address of C
	regTile   = 0x30 // store: square tile size (1 = untiled streaming)
	regStart  = 0x38 // store: any value starts the operation
	regStatus = 0x40 // load: 1 when last op completed
	regCycles = 0x48 // load: cycles consumed by last op
	regSize   = 0x50
)

// Config sets the accelerator's structural parameters.
type Config struct {
	// ScratchpadBytes bounds the working set of one tile
	// (three tile×tile int32 blocks must fit).
	ScratchpadBytes int
	// MACsPerCycle is the compute throughput.
	MACsPerCycle int
	// BytesPerCycle is the memory interface bandwidth.
	BytesPerCycle int
	// MaxDim bounds matrix dimensions.
	MaxDim int
}

// DefaultConfig models a 16×16 systolic array with a 64KiB scratchpad.
func DefaultConfig() Config {
	return Config{
		ScratchpadBytes: 64 << 10,
		MACsPerCycle:    256,
		BytesPerCycle:   16,
		MaxDim:          1024,
	}
}

// Device is the accelerator.
type Device struct {
	cfg Config

	m, n, k             uint64
	addrA, addrB, addrC uint64
	tile                uint64

	status     uint64
	lastCycles uint64

	// Ops counts completed operations.
	Ops uint64
}

// New creates the device.
func New(cfg Config) *Device {
	return &Device{cfg: cfg, tile: 1}
}

// Name implements sim.Device.
func (d *Device) Name() string { return "gemm-accel" }

// Contains implements sim.Device.
func (d *Device) Contains(addr uint64) bool {
	return addr >= MMIOBase && addr < MMIOBase+regSize
}

// AddrRange implements sim.AddrRanger for the machine's device index.
func (d *Device) AddrRange() (uint64, uint64) { return MMIOBase, MMIOBase + regSize }

// Load implements sim.Device.
func (d *Device) Load(m *sim.Machine, addr uint64, size int) (uint64, uint64, error) {
	switch addr - MMIOBase {
	case regStatus:
		return d.status, 0, nil
	case regCycles:
		return d.lastCycles, 0, nil
	default:
		return 0, 0, fmt.Errorf("accel: load from unknown register %#x", addr)
	}
}

// Store implements sim.Device.
func (d *Device) Store(m *sim.Machine, addr uint64, size int, val uint64) (uint64, error) {
	switch addr - MMIOBase {
	case regM:
		d.m = val
	case regN:
		d.n = val
	case regK:
		d.k = val
	case regAddrA:
		d.addrA = val
	case regAddrB:
		d.addrB = val
	case regAddrC:
		d.addrC = val
	case regTile:
		d.tile = val
	case regStart:
		return d.run(m)
	default:
		return 0, fmt.Errorf("accel: store to unknown register %#x", addr)
	}
	return 0, nil
}

// run executes the configured matmul and returns the modeled cycles as the
// store's stall cost.
func (d *Device) run(m *sim.Machine) (uint64, error) {
	d.status = 0
	if err := d.validate(); err != nil {
		return 0, err
	}
	M, N, K := int(d.m), int(d.n), int(d.k)

	a := readMatrix(m, d.addrA, M, K)
	b := readMatrix(m, d.addrB, K, N)
	c := make([]int32, M*N)
	for i := 0; i < M; i++ {
		for kk := 0; kk < K; kk++ {
			av := a[i*K+kk]
			if av == 0 {
				continue
			}
			for j := 0; j < N; j++ {
				c[i*N+j] += av * b[kk*N+j]
			}
		}
	}
	writeMatrix(m, d.addrC, c)

	d.lastCycles = d.cost(M, N, K, int(d.tile))
	d.status = 1
	d.Ops++
	return d.lastCycles, nil
}

func (d *Device) validate() error {
	if d.m == 0 || d.n == 0 || d.k == 0 {
		return fmt.Errorf("accel: dimensions not configured (m=%d n=%d k=%d)", d.m, d.n, d.k)
	}
	max := uint64(d.cfg.MaxDim)
	if d.m > max || d.n > max || d.k > max {
		return fmt.Errorf("accel: dimension exceeds max %d", max)
	}
	if d.tile == 0 {
		return fmt.Errorf("accel: tile must be >= 1")
	}
	if d.tile > 1 {
		// Three tile blocks (A, B, C) must fit in the scratchpad.
		need := 3 * int(d.tile) * int(d.tile) * 4
		if need > d.cfg.ScratchpadBytes {
			return fmt.Errorf("accel: tile %d needs %d bytes of scratchpad (%d available)",
				d.tile, need, d.cfg.ScratchpadBytes)
		}
	}
	return nil
}

// cost models the cycle count: compute time plus memory traffic, where
// traffic depends on tiling. With tile T, each T×T block of C requires
// streaming K/T blocks of A and B, so A is read N/T times and B M/T times.
// T=1 degenerates to the worst case (no reuse).
func (d *Device) cost(m, n, k, tile int) uint64 {
	ceilDiv := func(a, b int) int { return (a + b - 1) / b }
	t := tile
	trafficA := m * k * ceilDiv(n, t) // bytes/4
	trafficB := k * n * ceilDiv(m, t)
	trafficC := 2 * m * n
	bytes := 4 * (trafficA + trafficB + trafficC)
	memCycles := bytes / d.cfg.BytesPerCycle
	macs := m * n * k
	computeCycles := ceilDiv(macs, d.cfg.MACsPerCycle)
	// The array overlaps compute with loads; the slower side dominates,
	// plus a fixed start cost.
	cost := computeCycles
	if memCycles > cost {
		cost = memCycles
	}
	return uint64(cost) + 100
}

// LastCycles returns the modeled cycles of the last operation.
func (d *Device) LastCycles() uint64 { return d.lastCycles }

func readMatrix(m *sim.Machine, addr uint64, rows, cols int) []int32 {
	raw := m.Mem.ReadBytes(addr, rows*cols*4)
	out := make([]int32, rows*cols)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

func writeMatrix(m *sim.Machine, addr uint64, vals []int32) {
	raw := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[i*4:], uint32(v))
	}
	m.Mem.WriteBytes(addr, raw)
}

var _ sim.Device = (*Device)(nil)
