package accel

import (
	"encoding/binary"
	"testing"

	"firemarshal/internal/sim"
)

func setup(t *testing.T) (*Device, *sim.Machine) {
	t.Helper()
	return New(DefaultConfig()), sim.NewMachine()
}

func store(t *testing.T, d *Device, m *sim.Machine, off, val uint64) uint64 {
	t.Helper()
	extra, err := d.Store(m, MMIOBase+off, 8, val)
	if err != nil {
		t.Fatalf("store %#x=%d: %v", off, val, err)
	}
	return extra
}

func load(t *testing.T, d *Device, m *sim.Machine, off uint64) uint64 {
	t.Helper()
	v, _, err := d.Load(m, MMIOBase+off, 8)
	if err != nil {
		t.Fatalf("load %#x: %v", off, err)
	}
	return v
}

func putMatrix(m *sim.Machine, addr uint64, vals []int32) {
	raw := make([]byte, len(vals)*4)
	for i, v := range vals {
		binary.LittleEndian.PutUint32(raw[i*4:], uint32(v))
	}
	m.Mem.WriteBytes(addr, raw)
}

func getMatrix(m *sim.Machine, addr uint64, n int) []int32 {
	raw := m.Mem.ReadBytes(addr, n*4)
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return out
}

func runMatmul(t *testing.T, d *Device, m *sim.Machine, M, N, K, tile int, a, b []int32) []int32 {
	t.Helper()
	putMatrix(m, 0x100000, a)
	putMatrix(m, 0x200000, b)
	store(t, d, m, regM, uint64(M))
	store(t, d, m, regN, uint64(N))
	store(t, d, m, regK, uint64(K))
	store(t, d, m, regAddrA, 0x100000)
	store(t, d, m, regAddrB, 0x200000)
	store(t, d, m, regAddrC, 0x300000)
	store(t, d, m, regTile, uint64(tile))
	store(t, d, m, regStart, 1)
	if load(t, d, m, regStatus) != 1 {
		t.Fatal("status not set after start")
	}
	return getMatrix(m, 0x300000, M*N)
}

func TestSmallMatmul(t *testing.T) {
	d, m := setup(t)
	// A = [1 2; 3 4], B = [5 6; 7 8] -> C = [19 22; 43 50]
	c := runMatmul(t, d, m, 2, 2, 2, 2, []int32{1, 2, 3, 4}, []int32{5, 6, 7, 8})
	want := []int32{19, 22, 43, 50}
	for i := range want {
		if c[i] != want[i] {
			t.Errorf("C[%d] = %d, want %d", i, c[i], want[i])
		}
	}
}

func TestIdentity(t *testing.T) {
	d, m := setup(t)
	n := 8
	a := make([]int32, n*n)
	id := make([]int32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
		for j := 0; j < n; j++ {
			a[i*n+j] = int32(i*n + j + 1)
		}
	}
	c := runMatmul(t, d, m, n, n, n, 4, a, id)
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("A*I != A at %d: %d vs %d", i, c[i], a[i])
		}
	}
}

func TestRectangular(t *testing.T) {
	d, m := setup(t)
	// 1x3 * 3x2
	c := runMatmul(t, d, m, 1, 2, 3, 1, []int32{1, 2, 3}, []int32{1, 2, 3, 4, 5, 6})
	if c[0] != 22 || c[1] != 28 {
		t.Errorf("C = %v", c)
	}
}

func TestNegativeValues(t *testing.T) {
	d, m := setup(t)
	c := runMatmul(t, d, m, 1, 1, 2, 1, []int32{-3, 4}, []int32{5, -2})
	if c[0] != -23 {
		t.Errorf("C = %d, want -23", c[0])
	}
}

func TestTilingReducesCycles(t *testing.T) {
	// The assignment's whole point: larger tiles (more scratchpad reuse)
	// cost fewer cycles for the same matmul.
	d, m := setup(t)
	n := 128
	a := make([]int32, n*n)
	b := make([]int32, n*n)
	for i := range a {
		a[i], b[i] = int32(i%7), int32(i%5)
	}
	cycles := map[int]uint64{}
	for _, tile := range []int{1, 4, 16, 64} {
		runMatmul(t, d, m, n, n, n, tile, a, b)
		cycles[tile] = d.LastCycles()
	}
	if !(cycles[1] > cycles[4] && cycles[4] > cycles[16]) {
		t.Errorf("tiling should monotonically help until compute-bound: %v", cycles)
	}
	if cycles[64] > cycles[16] {
		t.Errorf("tile 64 should be no worse than 16: %v", cycles)
	}
}

func TestCyclesDeterministic(t *testing.T) {
	run := func() uint64 {
		d, m := setup(t)
		a := make([]int32, 32*32)
		runMatmul(t, d, m, 32, 32, 32, 8, a, a)
		return d.LastCycles()
	}
	if run() != run() {
		t.Error("accelerator cycles not deterministic")
	}
}

func TestValidation(t *testing.T) {
	d, m := setup(t)
	// start without dimensions
	if _, err := d.Store(m, MMIOBase+regStart, 8, 1); err == nil {
		t.Error("expected error for unconfigured start")
	}
	store(t, d, m, regM, 4)
	store(t, d, m, regN, 4)
	store(t, d, m, regK, 4)
	// tile too large for scratchpad: 3*t*t*4 > 64KiB -> t > 74
	store(t, d, m, regTile, 128)
	if _, err := d.Store(m, MMIOBase+regStart, 8, 1); err == nil {
		t.Error("expected scratchpad overflow error")
	}
	// zero tile
	store(t, d, m, regTile, 0)
	if _, err := d.Store(m, MMIOBase+regStart, 8, 1); err == nil {
		t.Error("expected zero-tile error")
	}
	// oversized dims
	store(t, d, m, regTile, 4)
	store(t, d, m, regM, 4096)
	if _, err := d.Store(m, MMIOBase+regStart, 8, 1); err == nil {
		t.Error("expected max-dim error")
	}
}

func TestUnknownRegisters(t *testing.T) {
	d, m := setup(t)
	if _, _, err := d.Load(m, MMIOBase+0x48+8, 8); err == nil {
		t.Error("expected unknown-register load error")
	}
	if _, err := d.Store(m, MMIOBase+regStatus, 8, 1); err == nil {
		t.Error("expected unknown-register store error (status is read-only)")
	}
}

func TestStartStallEqualsLastCycles(t *testing.T) {
	d, m := setup(t)
	a := make([]int32, 16*16)
	putMatrix(m, 0x100000, a)
	putMatrix(m, 0x200000, a)
	store(t, d, m, regM, 16)
	store(t, d, m, regN, 16)
	store(t, d, m, regK, 16)
	store(t, d, m, regAddrA, 0x100000)
	store(t, d, m, regAddrB, 0x200000)
	store(t, d, m, regAddrC, 0x300000)
	store(t, d, m, regTile, 8)
	extra := store(t, d, m, regStart, 1)
	if extra != d.LastCycles() || extra == 0 {
		t.Errorf("start stall %d != last cycles %d", extra, d.LastCycles())
	}
	if load(t, d, m, regCycles) != d.LastCycles() {
		t.Error("cycles register mismatch")
	}
}
