// Package isa defines the guest instruction set for the FireMarshal
// reproduction: a subset of RV64IM (plus the Zicsr counter CSRs) with the
// standard RISC-V instruction encodings. Workload binaries are real machine
// code produced by the internal/asm assembler and executed by both the
// functional simulator (QEMU/Spike role) and the cycle-exact simulator
// (FireSim role) — giving the paper's property that the exact same artifact
// bytes run on every simulation platform.
package isa

import "fmt"

// Op identifies a decoded operation.
type Op uint8

// Operations. Order is stable; new ops append.
const (
	OpInvalid Op = iota
	// RV32I/RV64I register-register
	OpADD
	OpSUB
	OpSLL
	OpSLT
	OpSLTU
	OpXOR
	OpSRL
	OpSRA
	OpOR
	OpAND
	// M extension
	OpMUL
	OpMULH
	OpMULHU
	OpDIV
	OpDIVU
	OpREM
	OpREMU
	// Immediate ALU
	OpADDI
	OpSLTI
	OpSLTIU
	OpXORI
	OpORI
	OpANDI
	OpSLLI
	OpSRLI
	OpSRAI
	// Upper immediates
	OpLUI
	OpAUIPC
	// Control flow
	OpJAL
	OpJALR
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpBLTU
	OpBGEU
	// Loads
	OpLB
	OpLH
	OpLW
	OpLD
	OpLBU
	OpLHU
	OpLWU
	// Stores
	OpSB
	OpSH
	OpSW
	OpSD
	// System
	OpECALL
	OpEBREAK
	OpCSRRS
	OpCSRRW
	OpFENCE
	// RV64 W-suffix (32-bit) operations
	OpADDW
	OpSUBW
	OpSLLW
	OpSRLW
	OpSRAW
	OpADDIW
	OpSLLIW
	OpSRLIW
	OpSRAIW
	OpMULW
	OpDIVW
	OpDIVUW
	OpREMW
	OpREMUW
	opMax
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpSLL: "sll", OpSLT: "slt", OpSLTU: "sltu",
	OpXOR: "xor", OpSRL: "srl", OpSRA: "sra", OpOR: "or", OpAND: "and",
	OpMUL: "mul", OpMULH: "mulh", OpMULHU: "mulhu", OpDIV: "div", OpDIVU: "divu",
	OpREM: "rem", OpREMU: "remu",
	OpADDI: "addi", OpSLTI: "slti", OpSLTIU: "sltiu", OpXORI: "xori",
	OpORI: "ori", OpANDI: "andi", OpSLLI: "slli", OpSRLI: "srli", OpSRAI: "srai",
	OpLUI: "lui", OpAUIPC: "auipc",
	OpJAL: "jal", OpJALR: "jalr",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge", OpBLTU: "bltu", OpBGEU: "bgeu",
	OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLD: "ld", OpLBU: "lbu", OpLHU: "lhu", OpLWU: "lwu",
	OpSB: "sb", OpSH: "sh", OpSW: "sw", OpSD: "sd",
	OpECALL: "ecall", OpEBREAK: "ebreak", OpCSRRS: "csrrs", OpCSRRW: "csrrw",
	OpFENCE: "fence",
	OpADDW:  "addw", OpSUBW: "subw", OpSLLW: "sllw", OpSRLW: "srlw", OpSRAW: "sraw",
	OpADDIW: "addiw", OpSLLIW: "slliw", OpSRLIW: "srliw", OpSRAIW: "sraiw",
	OpMULW: "mulw", OpDIVW: "divw", OpDIVUW: "divuw", OpREMW: "remw", OpREMUW: "remuw",
}

// String returns the assembler mnemonic.
func (op Op) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool { return op >= OpBEQ && op <= OpBGEU }

// IsJump reports whether op is an unconditional jump.
func (op Op) IsJump() bool { return op == OpJAL || op == OpJALR }

// IsLoad reports whether op reads memory.
func (op Op) IsLoad() bool { return op >= OpLB && op <= OpLWU }

// IsStore reports whether op writes memory.
func (op Op) IsStore() bool { return op >= OpSB && op <= OpSD }

// IsMulDiv reports whether op uses the multiplier/divider.
func (op Op) IsMulDiv() bool {
	return (op >= OpMUL && op <= OpREMU) || (op >= OpMULW && op <= OpREMUW)
}

// IsMul reports whether op uses only the multiplier.
func (op Op) IsMul() bool {
	return op == OpMUL || op == OpMULH || op == OpMULHU || op == OpMULW
}

// CSR numbers implemented by the simulators.
const (
	CSRCycle   = 0xC00
	CSRTime    = 0xC01
	CSRInstret = 0xC02
	CSRMHartID = 0xF14
)

// Instr is a decoded instruction.
type Instr struct {
	Op       Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int64  // sign-extended immediate (shamt for shifts, CSR in CSR ops)
	Raw      uint32 // original encoding
}

// RISC-V base opcodes.
const (
	opcLUI     = 0b0110111
	opcAUIPC   = 0b0010111
	opcJAL     = 0b1101111
	opcJALR    = 0b1100111
	opcBranch  = 0b1100011
	opcLoad    = 0b0000011
	opcStore   = 0b0100011
	opcOpImm   = 0b0010011
	opcOp      = 0b0110011
	opcSystem  = 0b1110011
	opcFence   = 0b0001111
	opcOpImm32 = 0b0011011
	opcOp32    = 0b0111011
)

// signExtend returns v sign-extended from `bits` width.
func signExtend(v uint32, bits uint) int64 {
	shift := 64 - bits
	return int64(uint64(v)<<shift) >> shift
}

// Decode lookup tables, indexed by funct3. Unassigned slots hold OpInvalid
// (the zero Op), which Decode reports as an encoding error. Package-level
// arrays instead of per-call map literals: Decode runs for every word of
// every loaded segment at predecode time.
var (
	branchOps = [8]Op{0: OpBEQ, 1: OpBNE, 4: OpBLT, 5: OpBGE, 6: OpBLTU, 7: OpBGEU}
	loadOps   = [8]Op{0: OpLB, 1: OpLH, 2: OpLW, 3: OpLD, 4: OpLBU, 5: OpLHU, 6: OpLWU}
	storeOps  = [8]Op{0: OpSB, 1: OpSH, 2: OpSW, 3: OpSD}
	// OP (R-type): funct7 = 0, 0x20, and 1 (the M extension).
	rOps    = [8]Op{OpADD, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpOR, OpAND}
	rOpsSub = [8]Op{0: OpSUB, 5: OpSRA}
	mOps    = [8]Op{0: OpMUL, 1: OpMULH, 3: OpMULHU, 4: OpDIV, 5: OpDIVU, 6: OpREM, 7: OpREMU}
	// OP-32 (W-suffixed): same funct7 split.
	wOps    = [8]Op{0: OpADDW, 1: OpSLLW, 5: OpSRLW}
	wOpsSub = [8]Op{0: OpSUBW, 5: OpSRAW}
	mwOps   = [8]Op{0: OpMULW, 4: OpDIVW, 5: OpDIVUW, 6: OpREMW, 7: OpREMUW}
)

// Decode decodes a 32-bit RISC-V instruction word.
func Decode(raw uint32) (Instr, error) {
	in := Instr{Raw: raw}
	opcode := raw & 0x7f
	rd := uint8((raw >> 7) & 0x1f)
	funct3 := (raw >> 12) & 0x7
	rs1 := uint8((raw >> 15) & 0x1f)
	rs2 := uint8((raw >> 20) & 0x1f)
	funct7 := (raw >> 25) & 0x7f

	switch opcode {
	case opcLUI:
		in.Op, in.Rd = OpLUI, rd
		in.Imm = signExtend(raw&0xfffff000, 32)
	case opcAUIPC:
		in.Op, in.Rd = OpAUIPC, rd
		in.Imm = signExtend(raw&0xfffff000, 32)
	case opcJAL:
		in.Op, in.Rd = OpJAL, rd
		imm := ((raw>>31)&1)<<20 | ((raw>>12)&0xff)<<12 | ((raw>>20)&1)<<11 | ((raw>>21)&0x3ff)<<1
		in.Imm = signExtend(imm, 21)
	case opcJALR:
		if funct3 != 0 {
			return in, fmt.Errorf("isa: bad JALR funct3 %d", funct3)
		}
		in.Op, in.Rd, in.Rs1 = OpJALR, rd, rs1
		in.Imm = signExtend(raw>>20, 12)
	case opcBranch:
		op := branchOps[funct3]
		if op == OpInvalid {
			return in, fmt.Errorf("isa: bad branch funct3 %d", funct3)
		}
		in.Op, in.Rs1, in.Rs2 = op, rs1, rs2
		imm := ((raw>>31)&1)<<12 | ((raw>>7)&1)<<11 | ((raw>>25)&0x3f)<<5 | ((raw>>8)&0xf)<<1
		in.Imm = signExtend(imm, 13)
	case opcLoad:
		op := loadOps[funct3]
		if op == OpInvalid {
			return in, fmt.Errorf("isa: bad load funct3 %d", funct3)
		}
		in.Op, in.Rd, in.Rs1 = op, rd, rs1
		in.Imm = signExtend(raw>>20, 12)
	case opcStore:
		op := storeOps[funct3]
		if op == OpInvalid {
			return in, fmt.Errorf("isa: bad store funct3 %d", funct3)
		}
		in.Op, in.Rs1, in.Rs2 = op, rs1, rs2
		imm := ((raw>>25)&0x7f)<<5 | (raw>>7)&0x1f
		in.Imm = signExtend(imm, 12)
	case opcOpImm:
		in.Rd, in.Rs1 = rd, rs1
		switch funct3 {
		case 0:
			in.Op = OpADDI
		case 2:
			in.Op = OpSLTI
		case 3:
			in.Op = OpSLTIU
		case 4:
			in.Op = OpXORI
		case 6:
			in.Op = OpORI
		case 7:
			in.Op = OpANDI
		case 1:
			if funct7>>1 != 0 {
				return in, fmt.Errorf("isa: bad SLLI funct7")
			}
			in.Op = OpSLLI
			in.Imm = int64(raw >> 20 & 0x3f)
			return in, nil
		case 5:
			switch funct7 >> 1 {
			case 0:
				in.Op = OpSRLI
			case 0b10000:
				in.Op = OpSRAI
			default:
				return in, fmt.Errorf("isa: bad shift funct7 %#x", funct7)
			}
			in.Imm = int64(raw >> 20 & 0x3f)
			return in, nil
		}
		in.Imm = signExtend(raw>>20, 12)
	case opcOp:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		var op Op
		switch funct7 {
		case 0:
			op = rOps[funct3]
		case 0x20:
			op = rOpsSub[funct3]
		case 1:
			op = mOps[funct3]
		}
		if op == OpInvalid {
			return in, fmt.Errorf("isa: bad R-type funct3=%d funct7=%#x", funct3, funct7)
		}
		in.Op = op
	case opcSystem:
		switch {
		case raw == 0x00000073:
			in.Op = OpECALL
		case raw == 0x00100073:
			in.Op = OpEBREAK
		case funct3 == 1:
			in.Op, in.Rd, in.Rs1 = OpCSRRW, rd, rs1
			in.Imm = int64(raw >> 20)
		case funct3 == 2:
			in.Op, in.Rd, in.Rs1 = OpCSRRS, rd, rs1
			in.Imm = int64(raw >> 20)
		default:
			return in, fmt.Errorf("isa: unsupported SYSTEM encoding %#08x", raw)
		}
	case opcOpImm32:
		in.Rd, in.Rs1 = rd, rs1
		switch funct3 {
		case 0:
			in.Op = OpADDIW
			in.Imm = signExtend(raw>>20, 12)
		case 1:
			if funct7 != 0 {
				return in, fmt.Errorf("isa: bad SLLIW funct7 %#x", funct7)
			}
			in.Op = OpSLLIW
			in.Imm = int64(raw >> 20 & 0x1f)
		case 5:
			switch funct7 {
			case 0:
				in.Op = OpSRLIW
			case 0x20:
				in.Op = OpSRAIW
			default:
				return in, fmt.Errorf("isa: bad W-shift funct7 %#x", funct7)
			}
			in.Imm = int64(raw >> 20 & 0x1f)
		default:
			return in, fmt.Errorf("isa: bad OP-IMM-32 funct3 %d", funct3)
		}
	case opcOp32:
		in.Rd, in.Rs1, in.Rs2 = rd, rs1, rs2
		var op Op
		switch funct7 {
		case 0:
			op = wOps[funct3]
		case 0x20:
			op = wOpsSub[funct3]
		case 1:
			op = mwOps[funct3]
		}
		if op == OpInvalid {
			return in, fmt.Errorf("isa: bad OP-32 funct3=%d funct7=%#x", funct3, funct7)
		}
		in.Op = op
	case opcFence:
		in.Op = OpFENCE
	default:
		return in, fmt.Errorf("isa: unknown opcode %#02x (instr %#08x)", opcode, raw)
	}
	return in, nil
}

// Encode produces the 32-bit word for a decoded instruction. It is the
// inverse of Decode for every supported operation.
func Encode(in Instr) (uint32, error) {
	rd := uint32(in.Rd) & 0x1f
	rs1 := uint32(in.Rs1) & 0x1f
	rs2 := uint32(in.Rs2) & 0x1f
	switch in.Op {
	case OpLUI, OpAUIPC:
		opc := uint32(opcLUI)
		if in.Op == OpAUIPC {
			opc = opcAUIPC
		}
		if in.Imm&0xfff != 0 {
			return 0, fmt.Errorf("isa: %s immediate %#x has low bits set", in.Op, in.Imm)
		}
		if err := checkRange(in.Imm>>12, 20, true, in.Op); err != nil {
			return 0, err
		}
		return uint32(in.Imm)&0xfffff000 | rd<<7 | opc, nil
	case OpJAL:
		if err := checkRange(in.Imm, 21, true, in.Op); err != nil {
			return 0, err
		}
		if in.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: JAL offset must be even")
		}
		imm := uint32(in.Imm)
		enc := ((imm>>20)&1)<<31 | ((imm>>1)&0x3ff)<<21 | ((imm>>11)&1)<<20 | ((imm>>12)&0xff)<<12
		return enc | rd<<7 | opcJAL, nil
	case OpJALR:
		if err := checkRange(in.Imm, 12, true, in.Op); err != nil {
			return 0, err
		}
		return (uint32(in.Imm)&0xfff)<<20 | rs1<<15 | rd<<7 | opcJALR, nil
	case OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU:
		f3 := map[Op]uint32{OpBEQ: 0, OpBNE: 1, OpBLT: 4, OpBGE: 5, OpBLTU: 6, OpBGEU: 7}[in.Op]
		if err := checkRange(in.Imm, 13, true, in.Op); err != nil {
			return 0, err
		}
		if in.Imm&1 != 0 {
			return 0, fmt.Errorf("isa: branch offset must be even")
		}
		imm := uint32(in.Imm)
		enc := ((imm>>12)&1)<<31 | ((imm>>5)&0x3f)<<25 | ((imm>>1)&0xf)<<8 | ((imm>>11)&1)<<7
		return enc | rs2<<20 | rs1<<15 | f3<<12 | opcBranch, nil
	case OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU:
		f3 := map[Op]uint32{OpLB: 0, OpLH: 1, OpLW: 2, OpLD: 3, OpLBU: 4, OpLHU: 5, OpLWU: 6}[in.Op]
		if err := checkRange(in.Imm, 12, true, in.Op); err != nil {
			return 0, err
		}
		return (uint32(in.Imm)&0xfff)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcLoad, nil
	case OpSB, OpSH, OpSW, OpSD:
		f3 := map[Op]uint32{OpSB: 0, OpSH: 1, OpSW: 2, OpSD: 3}[in.Op]
		if err := checkRange(in.Imm, 12, true, in.Op); err != nil {
			return 0, err
		}
		imm := uint32(in.Imm)
		return ((imm>>5)&0x7f)<<25 | rs2<<20 | rs1<<15 | f3<<12 | (imm&0x1f)<<7 | opcStore, nil
	case OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI:
		f3 := map[Op]uint32{OpADDI: 0, OpSLTI: 2, OpSLTIU: 3, OpXORI: 4, OpORI: 6, OpANDI: 7}[in.Op]
		if err := checkRange(in.Imm, 12, true, in.Op); err != nil {
			return 0, err
		}
		return (uint32(in.Imm)&0xfff)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOpImm, nil
	case OpSLLI, OpSRLI, OpSRAI:
		if in.Imm < 0 || in.Imm > 63 {
			return 0, fmt.Errorf("isa: shift amount %d out of range", in.Imm)
		}
		var f3, f7 uint32
		switch in.Op {
		case OpSLLI:
			f3 = 1
		case OpSRLI:
			f3 = 5
		case OpSRAI:
			f3, f7 = 5, 0x20
		}
		return f7<<25 | uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOpImm, nil
	case OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
		OpMUL, OpMULH, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU:
		type enc struct{ f3, f7 uint32 }
		encs := map[Op]enc{
			OpADD: {0, 0}, OpSUB: {0, 0x20}, OpSLL: {1, 0}, OpSLT: {2, 0},
			OpSLTU: {3, 0}, OpXOR: {4, 0}, OpSRL: {5, 0}, OpSRA: {5, 0x20},
			OpOR: {6, 0}, OpAND: {7, 0},
			OpMUL: {0, 1}, OpMULH: {1, 1}, OpMULHU: {3, 1},
			OpDIV: {4, 1}, OpDIVU: {5, 1}, OpREM: {6, 1}, OpREMU: {7, 1},
		}
		e := encs[in.Op]
		return e.f7<<25 | rs2<<20 | rs1<<15 | e.f3<<12 | rd<<7 | opcOp, nil
	case OpADDIW:
		if err := checkRange(in.Imm, 12, true, in.Op); err != nil {
			return 0, err
		}
		return (uint32(in.Imm)&0xfff)<<20 | rs1<<15 | rd<<7 | opcOpImm32, nil
	case OpSLLIW, OpSRLIW, OpSRAIW:
		if in.Imm < 0 || in.Imm > 31 {
			return 0, fmt.Errorf("isa: W-shift amount %d out of range", in.Imm)
		}
		var f3, f7 uint32
		switch in.Op {
		case OpSLLIW:
			f3 = 1
		case OpSRLIW:
			f3 = 5
		case OpSRAIW:
			f3, f7 = 5, 0x20
		}
		return f7<<25 | uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcOpImm32, nil
	case OpADDW, OpSUBW, OpSLLW, OpSRLW, OpSRAW, OpMULW, OpDIVW, OpDIVUW, OpREMW, OpREMUW:
		type enc32 struct{ f3, f7 uint32 }
		encs := map[Op]enc32{
			OpADDW: {0, 0}, OpSUBW: {0, 0x20}, OpSLLW: {1, 0},
			OpSRLW: {5, 0}, OpSRAW: {5, 0x20},
			OpMULW: {0, 1}, OpDIVW: {4, 1}, OpDIVUW: {5, 1},
			OpREMW: {6, 1}, OpREMUW: {7, 1},
		}
		e := encs[in.Op]
		return e.f7<<25 | rs2<<20 | rs1<<15 | e.f3<<12 | rd<<7 | opcOp32, nil
	case OpECALL:
		return 0x00000073, nil
	case OpEBREAK:
		return 0x00100073, nil
	case OpCSRRW, OpCSRRS:
		f3 := uint32(1)
		if in.Op == OpCSRRS {
			f3 = 2
		}
		if in.Imm < 0 || in.Imm > 0xfff {
			return 0, fmt.Errorf("isa: CSR number %#x out of range", in.Imm)
		}
		return uint32(in.Imm)<<20 | rs1<<15 | f3<<12 | rd<<7 | opcSystem, nil
	case OpFENCE:
		return opcFence, nil
	}
	return 0, fmt.Errorf("isa: cannot encode op %v", in.Op)
}

func checkRange(v int64, bits uint, signed bool, op Op) error {
	if signed {
		min := -(int64(1) << (bits - 1))
		max := int64(1)<<(bits-1) - 1
		if v < min || v > max {
			return fmt.Errorf("isa: %s immediate %d out of %d-bit signed range", op, v, bits)
		}
		return nil
	}
	if v < 0 || v >= int64(1)<<bits {
		return fmt.Errorf("isa: %s immediate %d out of %d-bit range", op, v, bits)
	}
	return nil
}

// RegNames maps ABI register names to numbers.
var RegNames = map[string]uint8{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7,
	"s0": 8, "fp": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15, "a6": 16, "a7": 17,
	"s2": 18, "s3": 19, "s4": 20, "s5": 21, "s6": 22, "s7": 23,
	"s8": 24, "s9": 25, "s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

// RegName returns the ABI name for a register number.
func RegName(r uint8) string {
	names := [...]string{
		"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
		"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
		"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
		"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
	}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("x%d", r)
}
