package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Known encodings cross-checked against the RISC-V spec / gnu as output.
func TestKnownEncodings(t *testing.T) {
	cases := []struct {
		in   Instr
		want uint32
	}{
		// addi a0, a0, 1  -> 0x00150513
		{Instr{Op: OpADDI, Rd: 10, Rs1: 10, Imm: 1}, 0x00150513},
		// addi sp, sp, -16 -> 0xff010113
		{Instr{Op: OpADDI, Rd: 2, Rs1: 2, Imm: -16}, 0xff010113},
		// add a0, a1, a2 -> 0x00c58533
		{Instr{Op: OpADD, Rd: 10, Rs1: 11, Rs2: 12}, 0x00c58533},
		// sub a0, a1, a2 -> 0x40c58533
		{Instr{Op: OpSUB, Rd: 10, Rs1: 11, Rs2: 12}, 0x40c58533},
		// lui a0, 0x12345 -> 0x12345537
		{Instr{Op: OpLUI, Rd: 10, Imm: 0x12345000}, 0x12345537},
		// jal ra, +8 -> 0x008000ef
		{Instr{Op: OpJAL, Rd: 1, Imm: 8}, 0x008000ef},
		// jalr zero, 0(ra)  (ret) -> 0x00008067
		{Instr{Op: OpJALR, Rd: 0, Rs1: 1, Imm: 0}, 0x00008067},
		// beq a0, a1, +16 -> 0x00b50863
		{Instr{Op: OpBEQ, Rs1: 10, Rs2: 11, Imm: 16}, 0x00b50863},
		// ld a0, 8(sp) -> 0x00813503
		{Instr{Op: OpLD, Rd: 10, Rs1: 2, Imm: 8}, 0x00813503},
		// sd a0, 8(sp) -> 0x00a13423
		{Instr{Op: OpSD, Rs1: 2, Rs2: 10, Imm: 8}, 0x00a13423},
		// mul a0, a1, a2 -> 0x02c58533
		{Instr{Op: OpMUL, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c58533},
		// ecall -> 0x00000073
		{Instr{Op: OpECALL}, 0x00000073},
		// slli a0, a0, 3 -> 0x00351513
		{Instr{Op: OpSLLI, Rd: 10, Rs1: 10, Imm: 3}, 0x00351513},
		// srai a0, a0, 63 -> 0x43f55513
		{Instr{Op: OpSRAI, Rd: 10, Rs1: 10, Imm: 63}, 0x43f55513},
		// csrrs a0, cycle, zero -> 0xc0002573
		{Instr{Op: OpCSRRS, Rd: 10, Rs1: 0, Imm: CSRCycle}, 0xc0002573},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v %v): %v", c.in.Op, c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in.Op, got, c.want)
		}
		dec, err := Decode(c.want)
		if err != nil {
			t.Errorf("Decode(%#08x): %v", c.want, err)
			continue
		}
		if dec.Op != c.in.Op || dec.Rd != c.in.Rd || dec.Rs1 != c.in.Rs1 ||
			dec.Rs2 != c.in.Rs2 || dec.Imm != c.in.Imm {
			t.Errorf("Decode(%#08x) = %+v, want %+v", c.want, dec, c.in)
		}
	}
}

func TestNegativeImmediates(t *testing.T) {
	cases := []Instr{
		{Op: OpADDI, Rd: 5, Rs1: 6, Imm: -2048},
		{Op: OpBNE, Rs1: 1, Rs2: 2, Imm: -4096},
		{Op: OpJAL, Rd: 1, Imm: -1048576},
		{Op: OpLW, Rd: 3, Rs1: 4, Imm: -1},
		{Op: OpSD, Rs1: 2, Rs2: 8, Imm: -8},
		{Op: OpLUI, Rd: 1, Imm: -4096},
	}
	for _, in := range cases {
		raw, err := Encode(in)
		if err != nil {
			t.Errorf("%v: %v", in.Op, err)
			continue
		}
		dec, err := Decode(raw)
		if err != nil {
			t.Errorf("%v: decode: %v", in.Op, err)
			continue
		}
		if dec.Imm != in.Imm {
			t.Errorf("%v: imm round trip %d -> %d", in.Op, in.Imm, dec.Imm)
		}
	}
}

func TestImmediateRangeErrors(t *testing.T) {
	cases := []Instr{
		{Op: OpADDI, Imm: 2048},
		{Op: OpADDI, Imm: -2049},
		{Op: OpJAL, Imm: 1 << 21},
		{Op: OpJAL, Imm: 3}, // odd offset
		{Op: OpBEQ, Imm: 1 << 13},
		{Op: OpBEQ, Imm: 5}, // odd offset
		{Op: OpSLLI, Imm: 64},
		{Op: OpSLLI, Imm: -1},
		{Op: OpLUI, Imm: 0x123}, // low bits set
		{Op: OpCSRRS, Imm: 0x1000},
	}
	for _, in := range cases {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v imm=%d): expected error", in.Op, in.Imm)
		}
	}
}

func TestDecodeInvalid(t *testing.T) {
	bad := []uint32{
		0x00000000,         // all zeros: invalid opcode
		0xffffffff,         // all ones
		0x0000007f,         // unknown opcode
		0x00001073 | 7<<12, // bad SYSTEM funct3 (and not ecall/ebreak)
		0x00002063,         // branch funct3=2 undefined
		0x00007003,         // load funct3=7 undefined
		0x00007023 | 4<<12, // store funct3=4 undefined
	}
	for _, raw := range bad {
		if _, err := Decode(raw); err == nil {
			t.Errorf("Decode(%#08x): expected error", raw)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !OpBEQ.IsBranch() || OpJAL.IsBranch() {
		t.Error("IsBranch wrong")
	}
	if !OpJAL.IsJump() || !OpJALR.IsJump() || OpADD.IsJump() {
		t.Error("IsJump wrong")
	}
	if !OpLD.IsLoad() || OpSD.IsLoad() {
		t.Error("IsLoad wrong")
	}
	if !OpSD.IsStore() || OpLD.IsStore() {
		t.Error("IsStore wrong")
	}
	if !OpDIV.IsMulDiv() || OpADD.IsMulDiv() {
		t.Error("IsMulDiv wrong")
	}
}

func TestRegNames(t *testing.T) {
	if RegNames["a0"] != 10 || RegNames["sp"] != 2 || RegNames["t6"] != 31 {
		t.Error("RegNames wrong")
	}
	if RegName(10) != "a0" || RegName(0) != "zero" {
		t.Error("RegName wrong")
	}
	// fp aliases s0
	if RegNames["fp"] != RegNames["s0"] {
		t.Error("fp alias broken")
	}
}

// Property: Encode∘Decode is the identity on all valid instructions we can
// generate.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() Instr {
		ops := []Op{
			OpADD, OpSUB, OpSLL, OpSLT, OpSLTU, OpXOR, OpSRL, OpSRA, OpOR, OpAND,
			OpMUL, OpMULH, OpMULHU, OpDIV, OpDIVU, OpREM, OpREMU,
			OpADDI, OpSLTI, OpSLTIU, OpXORI, OpORI, OpANDI, OpSLLI, OpSRLI, OpSRAI,
			OpLUI, OpAUIPC, OpJAL, OpJALR,
			OpBEQ, OpBNE, OpBLT, OpBGE, OpBLTU, OpBGEU,
			OpLB, OpLH, OpLW, OpLD, OpLBU, OpLHU, OpLWU,
			OpSB, OpSH, OpSW, OpSD,
			OpECALL, OpEBREAK, OpCSRRS, OpCSRRW,
		}
		in := Instr{
			Op:  ops[rng.Intn(len(ops))],
			Rd:  uint8(rng.Intn(32)),
			Rs1: uint8(rng.Intn(32)),
			Rs2: uint8(rng.Intn(32)),
		}
		switch {
		case in.Op == OpLUI || in.Op == OpAUIPC:
			in.Imm = int64(rng.Intn(1<<20)-(1<<19)) << 12
			in.Rs1, in.Rs2 = 0, 0
		case in.Op == OpJAL:
			in.Imm = int64(rng.Intn(1<<20)-(1<<19)) * 2
			in.Rs1, in.Rs2 = 0, 0
		case in.Op.IsBranch():
			in.Imm = int64(rng.Intn(1<<12)-(1<<11)) * 2
			in.Rd = 0
		case in.Op == OpSLLI || in.Op == OpSRLI || in.Op == OpSRAI:
			in.Imm = int64(rng.Intn(64))
			in.Rs2 = 0
		case in.Op == OpJALR || in.Op.IsLoad() ||
			in.Op == OpADDI || in.Op == OpSLTI || in.Op == OpSLTIU ||
			in.Op == OpXORI || in.Op == OpORI || in.Op == OpANDI:
			in.Imm = int64(rng.Intn(1<<12) - (1 << 11))
			in.Rs2 = 0
		case in.Op.IsStore():
			in.Imm = int64(rng.Intn(1<<12) - (1 << 11))
			in.Rd = 0
		case in.Op == OpCSRRS || in.Op == OpCSRRW:
			in.Imm = int64(rng.Intn(1 << 12))
			in.Rs2 = 0
		case in.Op == OpECALL || in.Op == OpEBREAK:
			in.Rd, in.Rs1, in.Rs2 = 0, 0, 0
		}
		return in
	}
	f := func() bool {
		in := gen()
		raw, err := Encode(in)
		if err != nil {
			t.Logf("Encode(%+v): %v", in, err)
			return false
		}
		dec, err := Decode(raw)
		if err != nil {
			t.Logf("Decode(%#08x) [%+v]: %v", raw, in, err)
			return false
		}
		ok := dec.Op == in.Op && dec.Rd == in.Rd && dec.Rs1 == in.Rs1 &&
			dec.Rs2 == in.Rs2 && dec.Imm == in.Imm
		if !ok {
			t.Logf("round trip: in=%+v raw=%#08x out=%+v", in, raw, dec)
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOpString(t *testing.T) {
	if OpADD.String() != "add" || OpCSRRS.String() != "csrrs" {
		t.Error("Op.String wrong")
	}
	if Op(200).String() == "" {
		t.Error("out-of-range op should still format")
	}
}
