package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
)

// Executable is the guest binary format ("MEX1") produced by the assembler
// and loaded by both simulators. It plays the role of the ELF binaries a
// real FireMarshal workload would cross-compile: a bit-exact artifact that
// can be stored in filesystem images, hashed for dependency tracking, and
// executed identically everywhere.
type Executable struct {
	Entry    uint64
	Segments []Segment
	Symbols  map[string]uint64
}

// Segment is a loadable region.
type Segment struct {
	Addr uint64
	Data []byte
}

var exeMagic = [4]byte{'M', 'E', 'X', '1'}

// EncodeExecutable serializes the executable deterministically.
func EncodeExecutable(e *Executable) []byte {
	var buf bytes.Buffer
	buf.Write(exeMagic[:])
	var w [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf.Write(w[:8])
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(w[:4], v)
		buf.Write(w[:4])
	}
	put64(e.Entry)
	put32(uint32(len(e.Segments)))
	for _, s := range e.Segments {
		put64(s.Addr)
		put64(uint64(len(s.Data)))
		buf.Write(s.Data)
	}
	names := make([]string, 0, len(e.Symbols))
	for n := range e.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)
	put32(uint32(len(names)))
	for _, n := range names {
		put32(uint32(len(n)))
		buf.WriteString(n)
		put64(e.Symbols[n])
	}
	put32(crc32.ChecksumIEEE(buf.Bytes()))
	return buf.Bytes()
}

// DecodeExecutable parses an MEX1 binary.
func DecodeExecutable(data []byte) (*Executable, error) {
	if len(data) < 4+8+4+4 {
		return nil, fmt.Errorf("isa: executable too short")
	}
	if !bytes.Equal(data[:4], exeMagic[:]) {
		return nil, fmt.Errorf("isa: bad executable magic %q", data[:4])
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("isa: executable CRC mismatch")
	}
	off := 4
	need := func(n int) error {
		if off+n > len(body) {
			return fmt.Errorf("isa: truncated executable")
		}
		return nil
	}
	get64 := func() uint64 {
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(body[off:])
		off += 4
		return v
	}
	e := &Executable{Symbols: map[string]uint64{}}
	if err := need(12); err != nil {
		return nil, err
	}
	e.Entry = get64()
	nseg := int(get32())
	for i := 0; i < nseg; i++ {
		if err := need(16); err != nil {
			return nil, err
		}
		addr := get64()
		n := int(get64())
		if err := need(n); err != nil {
			return nil, err
		}
		e.Segments = append(e.Segments, Segment{Addr: addr, Data: append([]byte(nil), body[off:off+n]...)})
		off += n
	}
	if err := need(4); err != nil {
		return nil, err
	}
	nsym := int(get32())
	for i := 0; i < nsym; i++ {
		if err := need(4); err != nil {
			return nil, err
		}
		nl := int(get32())
		if err := need(nl + 8); err != nil {
			return nil, err
		}
		name := string(body[off : off+nl])
		off += nl
		e.Symbols[name] = get64()
	}
	if off != len(body) {
		return nil, fmt.Errorf("isa: %d trailing bytes in executable", len(body)-off)
	}
	return e, nil
}
