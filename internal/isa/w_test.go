package isa

import (
	"strings"
	"testing"
)

// W-suffix instruction encodings cross-checked against the RISC-V spec.
func TestWKnownEncodings(t *testing.T) {
	cases := []struct {
		in   Instr
		want uint32
	}{
		// addiw a0, a1, 1 -> 0x0015851b
		{Instr{Op: OpADDIW, Rd: 10, Rs1: 11, Imm: 1}, 0x0015851b},
		// addw a0, a1, a2 -> 0x00c5853b
		{Instr{Op: OpADDW, Rd: 10, Rs1: 11, Rs2: 12}, 0x00c5853b},
		// subw a0, a1, a2 -> 0x40c5853b
		{Instr{Op: OpSUBW, Rd: 10, Rs1: 11, Rs2: 12}, 0x40c5853b},
		// slliw a0, a0, 3 -> 0x0035151b
		{Instr{Op: OpSLLIW, Rd: 10, Rs1: 10, Imm: 3}, 0x0035151b},
		// sraiw a0, a0, 31 -> 0x41f5551b
		{Instr{Op: OpSRAIW, Rd: 10, Rs1: 10, Imm: 31}, 0x41f5551b},
		// mulw a0, a1, a2 -> 0x02c5853b
		{Instr{Op: OpMULW, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c5853b},
		// divw a0, a1, a2 -> 0x02c5c53b
		{Instr{Op: OpDIVW, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c5c53b},
		// remuw a0, a1, a2 -> 0x02c5f53b
		{Instr{Op: OpREMUW, Rd: 10, Rs1: 11, Rs2: 12}, 0x02c5f53b},
	}
	for _, c := range cases {
		got, err := Encode(c.in)
		if err != nil {
			t.Errorf("Encode(%v): %v", c.in.Op, err)
			continue
		}
		if got != c.want {
			t.Errorf("Encode(%v) = %#08x, want %#08x", c.in.Op, got, c.want)
		}
		dec, err := Decode(c.want)
		if err != nil || dec.Op != c.in.Op || dec.Imm != c.in.Imm {
			t.Errorf("Decode(%#08x) = %+v, %v", c.want, dec, err)
		}
	}
}

func TestWDecodeInvalid(t *testing.T) {
	bad := []uint32{
		0x0000201b, // OP-IMM-32 funct3=2 undefined
		0x0000203b, // OP-32 funct3=2 undefined
		0x4000101b, // SLLIW with funct7=0x20
	}
	for _, raw := range bad {
		if _, err := Decode(raw); err == nil {
			t.Errorf("Decode(%#08x): expected error", raw)
		}
	}
}

func TestWShiftRange(t *testing.T) {
	if _, err := Encode(Instr{Op: OpSLLIW, Imm: 32}); err == nil {
		t.Error("W shift amount 32 must be rejected")
	}
}

func TestIsMulPredicates(t *testing.T) {
	if !OpMULW.IsMulDiv() || !OpREMUW.IsMulDiv() {
		t.Error("W mul/div not classified")
	}
	if !OpMULW.IsMul() || OpDIVW.IsMul() {
		t.Error("IsMul wrong for W ops")
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: OpADDI, Rd: 10, Rs1: 10, Imm: 1}, "addi a0, a0, 1"},
		{Instr{Op: OpADD, Rd: 10, Rs1: 11, Rs2: 12}, "add a0, a1, a2"},
		{Instr{Op: OpLD, Rd: 10, Rs1: 2, Imm: 8}, "ld a0, 8(sp)"},
		{Instr{Op: OpSD, Rs1: 2, Rs2: 10, Imm: -16}, "sd a0, -16(sp)"},
		{Instr{Op: OpBEQ, Rs1: 10, Rs2: 11, Imm: 16}, "beq a0, a1, +16"},
		{Instr{Op: OpJAL, Rd: 1, Imm: -8}, "jal ra, -8"},
		{Instr{Op: OpECALL}, "ecall"},
		{Instr{Op: OpLUI, Rd: 5, Imm: 0x12345000}, "lui t0, 0x12345"},
		{Instr{Op: OpADDIW, Rd: 10, Rs1: 11, Imm: 0}, "addiw a0, a1, 0"},
	}
	for _, c := range cases {
		if got := Disassemble(c.in); got != c.want {
			t.Errorf("Disassemble(%v) = %q, want %q", c.in.Op, got, c.want)
		}
	}
}

func TestDisassembleExecutable(t *testing.T) {
	exe := &Executable{
		Entry: 0x10000,
		Segments: []Segment{{
			Addr: 0x10000,
			Data: []byte{0x13, 0x05, 0x15, 0x00, 0x73, 0x00, 0x00, 0x00},
		}},
	}
	lines := DisassembleExecutable(exe)
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if !strings.Contains(lines[0], "addi a0, a0, 1") || !strings.Contains(lines[1], "ecall") {
		t.Errorf("disassembly wrong: %v", lines)
	}
}

// Systematic Encode error coverage: every immediate class rejects
// out-of-range values.
func TestEncodeErrorPaths(t *testing.T) {
	bad := []Instr{
		{Op: OpLUI, Imm: 1 << 40}, // hi out of range (low bits clear)
		{Op: OpAUIPC, Imm: 0xfff}, // low bits set
		{Op: OpJALR, Imm: 4096},   // 12-bit signed
		{Op: OpBNE, Imm: -4098},   // 13-bit signed
		{Op: OpLW, Imm: 2048},     // load imm
		{Op: OpSW, Imm: -2049},    // store imm
		{Op: OpORI, Imm: 1 << 13}, // imm alu
		{Op: OpSRAI, Imm: 64},     // shamt
		{Op: OpSRAIW, Imm: 32},    // W shamt
		{Op: OpADDIW, Imm: 5000},  // addiw imm
		{Op: OpCSRRW, Imm: -1},    // csr range
		{Op: OpInvalid},           // not encodable
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v imm=%d): expected error", in.Op, in.Imm)
		}
	}
}

// Exhaustive decode fuzz: Decode must never panic, and everything it
// accepts must re-encode to the identical word.
func TestQuickDecodeEncodeIdentity(t *testing.T) {
	rng := newRand()
	for i := 0; i < 200000; i++ {
		raw := rng()
		in, err := Decode(raw)
		if err != nil {
			continue
		}
		back, err := Encode(in)
		if err != nil {
			t.Fatalf("Decode accepted %#08x (%v) but Encode rejected: %v", raw, in.Op, err)
		}
		// Re-encoding may canonicalize unused fields (e.g. fence operands);
		// decoding again must give the same instruction.
		again, err := Decode(back)
		if err != nil {
			t.Fatalf("re-decode of %#08x failed: %v", back, err)
		}
		if again.Op != in.Op || again.Rd != in.Rd || again.Rs1 != in.Rs1 ||
			again.Rs2 != in.Rs2 || again.Imm != in.Imm {
			t.Fatalf("decode/encode not stable: %#08x -> %+v -> %#08x -> %+v", raw, in, back, again)
		}
	}
}

// newRand returns a small deterministic xorshift generator (avoiding a
// math/rand import in this file).
func newRand() func() uint32 {
	state := uint32(0x1234567)
	return func() uint32 {
		state ^= state << 13
		state ^= state >> 17
		state ^= state << 5
		return state
	}
}
