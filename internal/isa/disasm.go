package isa

import "fmt"

// Disassemble renders a decoded instruction in assembler syntax, used by
// instruction tracing (the role of spike -l) and masm -d.
func Disassemble(in Instr) string {
	rd, rs1, rs2 := RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2)
	switch {
	case in.Op == OpECALL || in.Op == OpEBREAK || in.Op == OpFENCE:
		return in.Op.String()
	case in.Op == OpLUI || in.Op == OpAUIPC:
		return fmt.Sprintf("%s %s, %#x", in.Op, rd, uint64(in.Imm)>>12&0xfffff)
	case in.Op == OpJAL:
		return fmt.Sprintf("%s %s, %+d", in.Op, rd, in.Imm)
	case in.Op == OpJALR:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, rd, in.Imm, rs1)
	case in.Op.IsBranch():
		return fmt.Sprintf("%s %s, %s, %+d", in.Op, rs1, rs2, in.Imm)
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, rd, in.Imm, rs1)
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, rs2, in.Imm, rs1)
	case in.Op == OpCSRRS || in.Op == OpCSRRW:
		return fmt.Sprintf("%s %s, %#x, %s", in.Op, rd, in.Imm, rs1)
	case in.Op == OpADDI || in.Op == OpSLTI || in.Op == OpSLTIU || in.Op == OpXORI ||
		in.Op == OpORI || in.Op == OpANDI || in.Op == OpSLLI || in.Op == OpSRLI ||
		in.Op == OpSRAI || in.Op == OpADDIW || in.Op == OpSLLIW || in.Op == OpSRLIW ||
		in.Op == OpSRAIW:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, rd, rs1, in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, rd, rs1, rs2)
	}
}

// DisassembleExecutable renders the text segment of an executable, one
// line per word: "addr: raw  mnemonic".
func DisassembleExecutable(e *Executable) []string {
	var out []string
	for _, seg := range e.Segments {
		if e.Entry < seg.Addr || e.Entry >= seg.Addr+uint64(len(seg.Data)) {
			continue
		}
		for i := 0; i+4 <= len(seg.Data); i += 4 {
			raw := uint32(seg.Data[i]) | uint32(seg.Data[i+1])<<8 |
				uint32(seg.Data[i+2])<<16 | uint32(seg.Data[i+3])<<24
			addr := seg.Addr + uint64(i)
			in, err := Decode(raw)
			if err != nil {
				out = append(out, fmt.Sprintf("%08x: %08x  .word %#x", addr, raw, raw))
				continue
			}
			out = append(out, fmt.Sprintf("%08x: %08x  %s", addr, raw, Disassemble(in)))
		}
	}
	return out
}
