package install

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"firemarshal/internal/hostutil"
)

// VerilatorConnector implements the software-RTL-simulation integration the
// paper lists as planned work (§III-E: "FireMarshal currently supports
// FireSim, though integration with VCS and Verilator is planned", §VI:
// "pluggable simulator connectors"). Verilator-style simulators run one
// node per invocation with plusarg configuration, so the connector emits,
// alongside the shared config.json, a per-job plusargs file in the
// +permissive form RTL testbenches consume.
type VerilatorConnector struct{}

// Name implements Connector.
func (VerilatorConnector) Name() string { return "verilator" }

// Install implements Connector.
func (VerilatorConnector) Install(cfg *Config, destDir string) error {
	if err := (FireSimConnector{}).Install(cfg, destDir); err != nil {
		return err
	}
	for _, job := range cfg.Jobs {
		if job.Devices == "pfa-rdma" {
			return fmt.Errorf("install: verilator runs single nodes; job %q needs the network fabric (use firesim)", job.Name)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "+permissive\n")
		fmt.Fprintf(&b, "+bootbin=%s\n", job.Bin)
		if job.Img != "" {
			fmt.Fprintf(&b, "+blkdev=%s\n", job.Img)
		}
		if job.Devices != "" {
			fmt.Fprintf(&b, "+devices=%s\n", job.Devices)
		}
		for _, out := range job.Outputs {
			fmt.Fprintf(&b, "+output=%s\n", out)
		}
		fmt.Fprintf(&b, "+permissive-off\n")
		p := filepath.Join(destDir, job.Name+".plusargs")
		if err := hostutil.WriteFileAtomic(p, []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// PlusargsFor reads back the plusargs file written for a job.
func PlusargsFor(destDir, jobName string) (map[string][]string, error) {
	data, err := os.ReadFile(filepath.Join(destDir, jobName+".plusargs"))
	if err != nil {
		return nil, err
	}
	out := map[string][]string{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(strings.TrimPrefix(line, "+"))
		if line == "" || line == "permissive" || line == "permissive-off" {
			continue
		}
		key, val, found := strings.Cut(line, "=")
		if !found {
			return nil, fmt.Errorf("install: malformed plusarg %q", line)
		}
		out[key] = append(out[key], val)
	}
	return out, nil
}

func init() {
	if err := RegisterConnector(VerilatorConnector{}); err != nil {
		panic(err)
	}
}
