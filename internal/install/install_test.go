package install

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleConfig() *Config {
	return &Config{
		Workload: "intspeed",
		Topology: "no_net",
		Jobs: []JobConfig{
			{Name: "intspeed-600.perlbench_s", Bin: "/abs/bin", Img: "/abs/img", Outputs: []string{"/output"}},
			{Name: "intspeed-server", Bin: "/abs/serve", Bare: true},
		},
		PostRunHook:    "handle-results.py",
		PostRunHookDir: "/wl",
	}
}

func TestFireSimConnectorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	conn, err := GetConnector("firesim")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampleConfig()
	if err := conn.Install(cfg, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Workload != cfg.Workload || len(back.Jobs) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Jobs[1].Bare != true || back.Jobs[0].Img != "/abs/img" {
		t.Errorf("jobs wrong: %+v", back.Jobs)
	}
	if back.PostRunHook != "handle-results.py" {
		t.Error("hook lost")
	}
}

func TestConfigIsHumanReadableJSON(t *testing.T) {
	dir := t.TempDir()
	conn, _ := GetConnector("firesim")
	conn.Install(sampleConfig(), dir)
	data, err := os.ReadFile(filepath.Join(dir, ConfigFileName))
	if err != nil {
		t.Fatal(err)
	}
	// Version-controllable: indented, newline-terminated JSON.
	if !strings.Contains(string(data), "\n  \"workload\"") || !strings.HasSuffix(string(data), "\n") {
		t.Errorf("config not pretty-printed:\n%s", data)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("expected missing config error")
	}
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, ConfigFileName), []byte("{bad"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Error("expected bad JSON error")
	}
	os.WriteFile(filepath.Join(dir, ConfigFileName), []byte("{}"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Error("expected empty-config error")
	}
}

func TestUnknownConnector(t *testing.T) {
	if _, err := GetConnector("vcs"); err == nil {
		t.Error("expected unknown connector error")
	}
}

type fakeConnector struct{ name string }

func (f fakeConnector) Name() string                        { return f.name }
func (f fakeConnector) Install(cfg *Config, d string) error { return nil }

func TestPluggableConnectors(t *testing.T) {
	// §VI: "pluggable simulator connectors to expand the scope ... of the
	// install command".
	if err := RegisterConnector(fakeConnector{name: "test-sim"}); err != nil {
		t.Fatal(err)
	}
	if _, err := GetConnector("test-sim"); err != nil {
		t.Error("registered connector not found")
	}
	if err := RegisterConnector(fakeConnector{name: "test-sim"}); err == nil {
		t.Error("duplicate connector should fail")
	}
}

func TestVerilatorConnector(t *testing.T) {
	dir := t.TempDir()
	conn, err := GetConnector("verilator")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sampleConfig()
	if err := conn.Install(cfg, dir); err != nil {
		t.Fatal(err)
	}
	// config.json is still written for tooling.
	if _, err := Load(dir); err != nil {
		t.Errorf("verilator install should include config.json: %v", err)
	}
	args, err := PlusargsFor(dir, "intspeed-600.perlbench_s")
	if err != nil {
		t.Fatal(err)
	}
	if args["bootbin"][0] != "/abs/bin" || args["blkdev"][0] != "/abs/img" {
		t.Errorf("plusargs = %v", args)
	}
	if args["output"][0] != "/output" {
		t.Errorf("outputs = %v", args)
	}
	// Bare job has no image: no blkdev plusarg.
	args, err = PlusargsFor(dir, "intspeed-server")
	if err != nil {
		t.Fatal(err)
	}
	if _, has := args["blkdev"]; has {
		t.Error("bare job should not have blkdev")
	}
}

func TestVerilatorRejectsNetworkJobs(t *testing.T) {
	cfg := sampleConfig()
	cfg.Jobs[0].Devices = "pfa-rdma"
	conn, _ := GetConnector("verilator")
	if err := conn.Install(cfg, t.TempDir()); err == nil {
		t.Error("verilator cannot simulate networked jobs")
	}
}
