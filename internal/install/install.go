// Package install defines the simulator-connector configuration that
// `marshal install` emits (§III-E): a machine-readable description of the
// built artifacts that a cycle-exact RTL simulator consumes to run the
// workload. "FireMarshal provides the install command to convert the
// workload specification into a valid configuration for the RTL-level
// simulator. From there, users interact with the simulator normally."
//
// Connectors are pluggable (the paper's future work, §VI); the FireSim
// connector is built in and cmd/firesim consumes its output.
package install

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"firemarshal/internal/hostutil"
)

// JobConfig describes one simulated node.
type JobConfig struct {
	// Name is the node name (also its identity on the network fabric).
	Name string `json:"name"`
	// Bin is the absolute path of the boot binary artifact.
	Bin string `json:"bin"`
	// Img is the absolute path of the disk image ("" for bare-metal or
	// no-disk nodes).
	Img string `json:"img,omitempty"`
	// Outputs lists guest paths to extract after the run.
	Outputs []string `json:"outputs,omitempty"`
	// Devices is the SoC device profile the node's hardware config needs
	// (e.g. "pfa-rdma").
	Devices string `json:"devices,omitempty"`
	// ServerNode names the RDMA memory server for pfa-rdma nodes.
	ServerNode string `json:"serverNode,omitempty"`
	// Bare marks bare-metal nodes that must run before OS nodes (they set
	// up fabric state such as registered memory).
	Bare bool `json:"bare,omitempty"`
}

// Config is the complete installed-workload description.
type Config struct {
	// Workload is the root workload name.
	Workload string `json:"workload"`
	// Topology is "no_net" for single/independent nodes or "simple" when
	// jobs share a network.
	Topology string `json:"topology"`
	// Jobs lists the nodes to simulate.
	Jobs []JobConfig `json:"jobs"`
	// PostRunHook is the host script to run over the output directory.
	PostRunHook string `json:"postRunHook,omitempty"`
	// PostRunHookDir is the working directory for the hook.
	PostRunHookDir string `json:"postRunHookDir,omitempty"`
	// RefDir allows `marshal test --manual` against the run outputs.
	RefDir string `json:"refDir,omitempty"`
}

// ConfigFileName is the file the connector writes.
const ConfigFileName = "config.json"

// Connector converts built artifacts into a simulator configuration.
// Implementations are registered by name, making simulator integration
// pluggable (§VI).
type Connector interface {
	// Name identifies the simulator ("firesim", "verilator", ...).
	Name() string
	// Install writes simulator configuration for cfg into destDir.
	Install(cfg *Config, destDir string) error
}

var connectors = map[string]Connector{}

// RegisterConnector adds a simulator connector.
func RegisterConnector(c Connector) error {
	if _, dup := connectors[c.Name()]; dup {
		return fmt.Errorf("install: duplicate connector %q", c.Name())
	}
	connectors[c.Name()] = c
	return nil
}

// GetConnector looks up a registered connector.
func GetConnector(name string) (Connector, error) {
	c, ok := connectors[name]
	if !ok {
		names := make([]string, 0, len(connectors))
		for n := range connectors {
			names = append(names, n)
		}
		return nil, fmt.Errorf("install: unknown simulator %q (registered: %v)", name, names)
	}
	return c, nil
}

// FireSimConnector is the built-in connector for the FireSim-role
// cycle-exact simulator (cmd/firesim).
type FireSimConnector struct{}

// Name implements Connector.
func (FireSimConnector) Name() string { return "firesim" }

// Install implements Connector: it writes config.json into destDir.
func (FireSimConnector) Install(cfg *Config, destDir string) error {
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cfg, "", "  ")
	if err != nil {
		return err
	}
	return hostutil.WriteFileAtomic(filepath.Join(destDir, ConfigFileName), append(data, '\n'), 0o644)
}

// Load reads an installed configuration.
func Load(dir string) (*Config, error) {
	data, err := os.ReadFile(filepath.Join(dir, ConfigFileName))
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("install: bad config in %s: %w", dir, err)
	}
	if cfg.Workload == "" || len(cfg.Jobs) == 0 {
		return nil, fmt.Errorf("install: config in %s missing workload or jobs", dir)
	}
	return &cfg, nil
}

func init() {
	if err := RegisterConnector(FireSimConnector{}); err != nil {
		panic(err)
	}
}
