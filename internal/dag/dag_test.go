package dag

import (
	"os"
	"path/filepath"
	"testing"
)

// testTask returns a task that writes counter-stamped output to target.
func testTask(t *testing.T, name string, deps []string, target string, count *int) *Task {
	t.Helper()
	return &Task{
		Name:     name,
		FileDeps: deps,
		Targets:  []string{target},
		Action: func() error {
			*count++
			return os.WriteFile(target, []byte(name), 0o644)
		},
	}
}

func TestRunsOnceThenSkips(t *testing.T) {
	dir := t.TempDir()
	dep := filepath.Join(dir, "dep.txt")
	os.WriteFile(dep, []byte("v1"), 0o644)
	target := filepath.Join(dir, "out.txt")
	db := filepath.Join(dir, "state.json")

	count := 0
	for i := 0; i < 3; i++ {
		e, err := NewEngine(db)
		if err != nil {
			t.Fatal(err)
		}
		e.Register(testTask(t, "build", []string{dep}, target, &count))
		ran, err := e.Run("build")
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 && !ran {
			t.Error("first run should execute")
		}
		if i > 0 && ran {
			t.Errorf("run %d should have been skipped", i)
		}
	}
	if count != 1 {
		t.Errorf("action executed %d times, want 1", count)
	}
}

func TestRerunsOnDepChange(t *testing.T) {
	dir := t.TempDir()
	dep := filepath.Join(dir, "dep.txt")
	os.WriteFile(dep, []byte("v1"), 0o644)
	target := filepath.Join(dir, "out.txt")
	db := filepath.Join(dir, "state.json")

	count := 0
	run := func() bool {
		e, _ := NewEngine(db)
		e.Register(testTask(t, "build", []string{dep}, target, &count))
		ran, err := e.Run("build")
		if err != nil {
			t.Fatal(err)
		}
		return ran
	}
	run()
	os.WriteFile(dep, []byte("v2"), 0o644)
	if !run() {
		t.Error("dep change should trigger rerun")
	}
	if count != 2 {
		t.Errorf("count = %d", count)
	}
}

func TestContentHashNotTimestamp(t *testing.T) {
	dir := t.TempDir()
	dep := filepath.Join(dir, "dep.txt")
	os.WriteFile(dep, []byte("same"), 0o644)
	target := filepath.Join(dir, "out.txt")
	db := filepath.Join(dir, "state.json")

	count := 0
	e, _ := NewEngine(db)
	e.Register(testTask(t, "build", []string{dep}, target, &count))
	e.Run("build")

	// Rewrite the dep with identical content (new mtime).
	os.WriteFile(dep, []byte("same"), 0o644)
	e2, _ := NewEngine(db)
	e2.Register(testTask(t, "build", []string{dep}, target, &count))
	ran, _ := e2.Run("build")
	if ran {
		t.Error("touching a dep without content change must not rebuild")
	}
}

func TestMissingTargetForcesRun(t *testing.T) {
	dir := t.TempDir()
	dep := filepath.Join(dir, "dep.txt")
	os.WriteFile(dep, []byte("v"), 0o644)
	target := filepath.Join(dir, "out.txt")
	db := filepath.Join(dir, "state.json")

	count := 0
	e, _ := NewEngine(db)
	e.Register(testTask(t, "build", []string{dep}, target, &count))
	e.Run("build")
	os.Remove(target)
	e2, _ := NewEngine(db)
	e2.Register(testTask(t, "build", []string{dep}, target, &count))
	ran, _ := e2.Run("build")
	if !ran || count != 2 {
		t.Errorf("ran=%v count=%d, want rerun after target removal", ran, count)
	}
}

func TestValueDepChange(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "out.txt")
	db := filepath.Join(dir, "state.json")

	count := 0
	run := func(cfg string) bool {
		e, _ := NewEngine(db)
		task := testTask(t, "build", nil, target, &count)
		task.ValueDeps = map[string]string{"config": cfg}
		e.Register(task)
		ran, err := e.Run("build")
		if err != nil {
			t.Fatal(err)
		}
		return ran
	}
	run("a")
	if run("a") {
		t.Error("unchanged value dep must skip")
	}
	if !run("b") {
		t.Error("changed value dep must rerun")
	}
}

func TestTaskDepCascade(t *testing.T) {
	dir := t.TempDir()
	dep := filepath.Join(dir, "src.txt")
	os.WriteFile(dep, []byte("v1"), 0o644)
	parentOut := filepath.Join(dir, "parent.img")
	childOut := filepath.Join(dir, "child.img")
	db := filepath.Join(dir, "state.json")

	var parents, children int
	build := func() (bool, bool) {
		e, _ := NewEngine(db)
		e.Register(testTask(t, "parent", []string{dep}, parentOut, &parents))
		child := testTask(t, "child", []string{parentOut}, childOut, &children)
		child.TaskDeps = []string{"parent"}
		e.Register(child)
		e.Run("child")
		pr := contains(e.Executed, "parent")
		cr := contains(e.Executed, "child")
		return pr, cr
	}
	build()
	if parents != 1 || children != 1 {
		t.Fatalf("initial build: parents=%d children=%d", parents, children)
	}
	// No changes: both skipped.
	pr, cr := build()
	if pr || cr {
		t.Error("no-op rebuild should skip both tasks")
	}
	// Parent dep changes: both rebuild (child because upstream ran).
	os.WriteFile(dep, []byte("v2"), 0o644)
	pr, cr = build()
	if !pr || !cr {
		t.Errorf("cascade failed: parent=%v child=%v", pr, cr)
	}
}

func TestDeepChainOnlyDirtySuffixRuns(t *testing.T) {
	// Models a deep inheritance hierarchy: change a leaf-only input and
	// confirm ancestors are skipped.
	dir := t.TempDir()
	db := filepath.Join(dir, "state.json")
	leafDep := filepath.Join(dir, "leaf.cfg")
	os.WriteFile(leafDep, []byte("v1"), 0o644)

	counts := make([]int, 5)
	build := func() *Engine {
		e, _ := NewEngine(db)
		var prevTarget, prevName string
		for i := 0; i < 5; i++ {
			i := i
			name := string(rune('a' + i))
			target := filepath.Join(dir, name+".img")
			task := &Task{
				Name:    name,
				Targets: []string{target},
				Action: func() error {
					counts[i]++
					return os.WriteFile(target, []byte(name), 0o644)
				},
			}
			if prevName != "" {
				task.TaskDeps = []string{prevName}
				task.FileDeps = []string{prevTarget}
			}
			if i == 4 {
				task.FileDeps = append(task.FileDeps, leafDep)
			}
			e.Register(task)
			prevTarget, prevName = target, name
		}
		e.Run("e")
		return e
	}
	build()
	os.WriteFile(leafDep, []byte("v2"), 0o644)
	e := build()
	if !contains(e.Executed, "e") {
		t.Error("leaf must rebuild")
	}
	for _, name := range []string{"a", "b", "c", "d"} {
		if contains(e.Executed, name) {
			t.Errorf("ancestor %s rebuilt unnecessarily", name)
		}
	}
}

func TestCycleDetection(t *testing.T) {
	e, _ := NewEngine("")
	e.Register(&Task{Name: "a", TaskDeps: []string{"b"}, AlwaysRun: true, Action: func() error { return nil }})
	e.Register(&Task{Name: "b", TaskDeps: []string{"a"}, AlwaysRun: true, Action: func() error { return nil }})
	if _, err := e.Run("a"); err == nil {
		t.Error("expected cycle error")
	}
}

func TestUnknownTask(t *testing.T) {
	e, _ := NewEngine("")
	if _, err := e.Run("nope"); err == nil {
		t.Error("expected unknown task error")
	}
}

func TestDuplicateRegistration(t *testing.T) {
	e, _ := NewEngine("")
	e.Register(&Task{Name: "x", AlwaysRun: true})
	if err := e.Register(&Task{Name: "x"}); err == nil {
		t.Error("expected duplicate task error")
	}
}

func TestActionFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	e, _ := NewEngine(filepath.Join(dir, "db.json"))
	e.Register(&Task{
		Name:    "boom",
		Targets: []string{filepath.Join(dir, "never")},
		Action:  func() error { return os.ErrPermission },
	})
	if _, err := e.Run("boom"); err == nil {
		t.Error("expected action error")
	}
	// State must not record a failed task as done.
	e2, _ := NewEngine(filepath.Join(dir, "db.json"))
	ok := false
	e2.Register(&Task{
		Name:    "boom",
		Targets: []string{filepath.Join(dir, "out")},
		Action: func() error {
			ok = true
			return os.WriteFile(filepath.Join(dir, "out"), nil, 0o644)
		},
	})
	e2.Run("boom")
	if !ok {
		t.Error("failed task was cached as successful")
	}
}

func TestMissingTargetAfterActionIsError(t *testing.T) {
	e, _ := NewEngine("")
	e.Register(&Task{
		Name:    "liar",
		Targets: []string{"/nonexistent/target/file"},
		Action:  func() error { return nil },
	})
	if _, err := e.Run("liar"); err == nil {
		t.Error("expected missing-target error")
	}
}

func TestCorruptStateDBDegradesToRebuild(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "state.json")
	os.WriteFile(db, []byte("{not json"), 0o644)
	e, err := NewEngine(db)
	if err != nil {
		t.Fatalf("corrupt DB should not be fatal: %v", err)
	}
	count := 0
	target := filepath.Join(dir, "out")
	e.Register(testTask(t, "t", nil, target, &count))
	ran, err := e.Run("t")
	if err != nil || !ran {
		t.Errorf("ran=%v err=%v", ran, err)
	}
}

func TestAlwaysRun(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db.json")
	count := 0
	target := filepath.Join(dir, "out")
	for i := 0; i < 2; i++ {
		e, _ := NewEngine(db)
		task := testTask(t, "launch", nil, target, &count)
		task.AlwaysRun = true
		e.Register(task)
		e.Run("launch")
	}
	if count != 2 {
		t.Errorf("AlwaysRun executed %d times, want 2", count)
	}
}

func TestForget(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db.json")
	count := 0
	target := filepath.Join(dir, "out")
	e, _ := NewEngine(db)
	e.Register(testTask(t, "t", nil, target, &count))
	e.Run("t")
	e.Forget("t")

	e2, _ := NewEngine(db)
	e2.Register(testTask(t, "t", nil, target, &count))
	ran, _ := e2.Run("t")
	if !ran {
		t.Error("Forget should force a rebuild")
	}
}

func TestDirectoryDep(t *testing.T) {
	dir := t.TempDir()
	overlay := filepath.Join(dir, "overlay")
	os.MkdirAll(filepath.Join(overlay, "sub"), 0o755)
	os.WriteFile(filepath.Join(overlay, "sub", "f"), []byte("1"), 0o644)
	db := filepath.Join(dir, "db.json")
	target := filepath.Join(dir, "out")

	count := 0
	run := func() bool {
		e, _ := NewEngine(db)
		e.Register(testTask(t, "t", []string{overlay}, target, &count))
		ran, _ := e.Run("t")
		return ran
	}
	run()
	if run() {
		t.Error("unchanged dir dep must skip")
	}
	os.WriteFile(filepath.Join(overlay, "sub", "g"), []byte("2"), 0o644)
	if !run() {
		t.Error("new file in dir dep must rebuild")
	}
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
