package dag

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"firemarshal/internal/cas"
)

func testCache(t *testing.T) *cas.Cache {
	t.Helper()
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return cas.NewCache(store, nil)
}

// chainTasks registers a depth-deep chain a0 <- a1 <- ... where each task
// writes its target from its predecessor's output, counting executions.
func chainTasks(t *testing.T, e *Engine, dir string, depth int, execs *int) string {
	t.Helper()
	prev := ""
	for i := 0; i < depth; i++ {
		name := fmt.Sprintf("a%d", i)
		target := filepath.Join(dir, name+".out")
		task := &Task{
			Name:      name,
			ValueDeps: map[string]string{"spec": name + "-spec"},
			Targets:   []string{target},
			Action: func() error {
				*execs++
				return os.WriteFile(target, []byte("content of "+name), 0o644)
			},
		}
		if prev != "" {
			task.TaskDeps = []string{fmt.Sprintf("a%d", i-1)}
			task.FileDeps = []string{filepath.Join(dir, prev+".out")}
		}
		if err := e.Register(task); err != nil {
			t.Fatal(err)
		}
		prev = name
	}
	return fmt.Sprintf("a%d", depth-1)
}

// A fresh engine (no state DB, no targets on disk) sharing a warm cache
// restores the whole chain without executing a single action.
func TestCacheRestoresChainWithoutExecuting(t *testing.T) {
	cache := testCache(t)
	const depth = 4

	dir1 := t.TempDir()
	e1, _ := NewEngine(filepath.Join(dir1, "state.json"))
	e1.SetCache(cache)
	var execs1 int
	final := chainTasks(t, e1, dir1, depth, &execs1)
	if err := e1.RunMany([]string{final}, 2); err != nil {
		t.Fatal(err)
	}
	if execs1 != depth {
		t.Fatalf("cold build executed %d, want %d", execs1, depth)
	}

	// "Fresh checkout": new dir, new state DB, same cache.
	dir2 := t.TempDir()
	e2, _ := NewEngine(filepath.Join(dir2, "state.json"))
	e2.SetCache(cache)
	var execs2 int
	final2 := chainTasks(t, e2, dir2, depth, &execs2)
	if err := e2.RunMany([]string{final2}, 2); err != nil {
		t.Fatal(err)
	}
	if execs2 != 0 {
		t.Fatalf("warm rebuild executed %d actions, want 0 (pure restore)", execs2)
	}
	if len(e2.Restored) != depth {
		t.Fatalf("restored %v, want %d tasks", e2.Restored, depth)
	}
	for i := 0; i < depth; i++ {
		p := filepath.Join(dir2, fmt.Sprintf("a%d.out", i))
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("content of a%d", i); string(data) != want {
			t.Fatalf("%s = %q, want %q", p, data, want)
		}
	}

	// Third rebuild in place: everything up to date, nothing restored.
	e3, _ := NewEngine(filepath.Join(dir2, "state.json"))
	e3.SetCache(cache)
	var execs3 int
	final3 := chainTasks(t, e3, dir2, depth, &execs3)
	if err := e3.RunMany([]string{final3}, 2); err != nil {
		t.Fatal(err)
	}
	if execs3 != 0 || len(e3.Restored) != 0 || len(e3.Skipped) != depth {
		t.Fatalf("in-place rebuild: execs=%d restored=%v skipped=%v", execs3, e3.Restored, e3.Skipped)
	}
}

// The serial Run path takes the same cache branch as RunMany.
func TestCacheRestoreSerialRun(t *testing.T) {
	cache := testCache(t)
	dir1 := t.TempDir()
	e1, _ := NewEngine("")
	e1.SetCache(cache)
	var execs1 int
	final := chainTasks(t, e1, dir1, 2, &execs1)
	if _, err := e1.Run(final); err != nil {
		t.Fatal(err)
	}

	dir2 := t.TempDir()
	e2, _ := NewEngine("")
	e2.SetCache(cache)
	var execs2 int
	final2 := chainTasks(t, e2, dir2, 2, &execs2)
	ran, err := e2.Run(final2)
	if err != nil {
		t.Fatal(err)
	}
	if ran || execs2 != 0 {
		t.Fatalf("serial warm run: ran=%v execs=%d, want pure restore", ran, execs2)
	}
}

// A cache hit whose blob was corrupted falls back to executing the action.
func TestCorruptCacheFallsBackToExecution(t *testing.T) {
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache := cas.NewCache(store, nil)

	dir1 := t.TempDir()
	e1, _ := NewEngine("")
	e1.SetCache(cache)
	var execs1 int
	chainTasks(t, e1, dir1, 1, &execs1)
	if _, err := e1.Run("a0"); err != nil {
		t.Fatal(err)
	}

	// Corrupt every blob in the store.
	blobRoot := filepath.Join(store.Dir(), "blobs")
	filepath.Walk(blobRoot, func(path string, fi os.FileInfo, _ error) error {
		if fi != nil && !fi.IsDir() {
			os.WriteFile(path, []byte("garbage"), 0o644)
		}
		return nil
	})

	dir2 := t.TempDir()
	e2, _ := NewEngine("")
	e2.SetCache(cache)
	var execs2 int
	chainTasks(t, e2, dir2, 1, &execs2)
	if _, err := e2.Run("a0"); err != nil {
		t.Fatal(err)
	}
	if execs2 != 1 {
		t.Fatalf("corrupt cache: executed %d, want 1 (fallback to action)", execs2)
	}
	if data, _ := os.ReadFile(filepath.Join(dir2, "a0.out")); string(data) != "content of a0" {
		t.Fatalf("fallback produced %q", data)
	}
}

// AlwaysRun and target-less tasks stay out of the action cache.
func TestSideEffectTasksNotCached(t *testing.T) {
	cache := testCache(t)
	e, _ := NewEngine("")
	e.SetCache(cache)
	runs := 0
	e.Register(&Task{Name: "host", ValueDeps: map[string]string{"v": "1"}, Action: func() error { runs++; return nil }})
	if _, err := e.Run("host"); err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEngine("")
	e2.SetCache(cache)
	e2.Register(&Task{Name: "host", ValueDeps: map[string]string{"v": "1"}, Action: func() error { runs++; return nil }})
	if _, err := e2.Run("host"); err != nil {
		t.Fatal(err)
	}
	if runs != 2 {
		t.Fatalf("target-less task runs = %d, want 2 (never cache-satisfied)", runs)
	}
}

// ActionKeys exposes the live set for GC.
func TestActionKeysRecorded(t *testing.T) {
	cache := testCache(t)
	dir := t.TempDir()
	db := filepath.Join(dir, "state.json")
	e, _ := NewEngine(db)
	e.SetCache(cache)
	var execs int
	final := chainTasks(t, e, dir, 3, &execs)
	if err := e.RunMany([]string{final}, 2); err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEngine(db)
	keys := e2.ActionKeys()
	if len(keys) != 3 {
		t.Fatalf("action keys %v, want 3", keys)
	}
}

// Wide fan-out under RunMany with a shared state DB: exercised for data
// races (run the package tests with -race; scripts/check.sh does).
func TestRunManyConcurrentStateAccess(t *testing.T) {
	cache := testCache(t)
	dir := t.TempDir()
	e, _ := NewEngine(filepath.Join(dir, "state.json"))
	e.SetCache(cache)
	root := filepath.Join(dir, "root.out")
	e.Register(&Task{
		Name:    "root",
		Targets: []string{root},
		Action:  func() error { return os.WriteFile(root, []byte("root"), 0o644) },
	})
	var finals []string
	const width = 32
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("leaf%d", i)
		target := filepath.Join(dir, name+".out")
		e.Register(&Task{
			Name:      name,
			TaskDeps:  []string{"root"},
			FileDeps:  []string{root},
			ValueDeps: map[string]string{"leaf": name},
			Targets:   []string{target},
			Action:    func() error { return os.WriteFile(target, []byte(name), 0o644) },
		})
		finals = append(finals, name)
	}
	if err := e.RunMany(finals, 8); err != nil {
		t.Fatal(err)
	}
	if len(e.Executed) != width+1 {
		t.Fatalf("executed %d, want %d", len(e.Executed), width+1)
	}
	// Second pass: all leaves consult state concurrently while nothing runs.
	e2, _ := NewEngine(filepath.Join(dir, "state.json"))
	e2.SetCache(cache)
	e2.Register(&Task{Name: "root", Targets: []string{root}, Action: func() error { return os.WriteFile(root, []byte("root"), 0o644) }})
	for i := 0; i < width; i++ {
		name := fmt.Sprintf("leaf%d", i)
		target := filepath.Join(dir, name+".out")
		e2.Register(&Task{
			Name: name, TaskDeps: []string{"root"}, FileDeps: []string{root},
			ValueDeps: map[string]string{"leaf": name}, Targets: []string{target},
			Action: func() error { return os.WriteFile(target, []byte(name), 0o644) },
		})
	}
	if err := e2.RunMany(finals, 8); err != nil {
		t.Fatal(err)
	}
	if len(e2.Executed) != 0 {
		t.Fatalf("no-op pass executed %v", e2.Executed)
	}
}
