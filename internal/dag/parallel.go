package dag

import (
	"fmt"
	"sync"
)

// RunMany executes the named tasks and their transitive dependencies with
// up to `workers` actions in flight at once — the role of doit's `-n`
// parallel execution. Independent subtrees (e.g. the per-job images of a
// multi-job workload) build concurrently; the up-to-date semantics are
// identical to Run.
//
// Scheduler bookkeeping (ready queue, pending counts, the executed map) is
// guarded by a scheduler-local mutex; engine state and stats are guarded by
// the engine mutex inside execute/needsRun/record, so workers can hash and
// run tasks concurrently without touching shared maps unlocked.
func (e *Engine) RunMany(names []string, workers int) error {
	if workers < 1 {
		workers = 1
	}

	// Collect the needed task set and check for cycles / unknown tasks.
	order, err := e.topoOrder(names)
	if err != nil {
		return err
	}
	if len(order) == 0 {
		return e.save()
	}

	// Dependency bookkeeping within the set.
	pending := map[string]int{} // task -> unmet dep count
	dependents := map[string][]string{}
	inSet := map[string]bool{}
	for _, name := range order {
		inSet[name] = true
	}
	for _, name := range order {
		t := e.tasks[name]
		count := 0
		for _, dep := range t.TaskDeps {
			if inSet[dep] {
				count++
				dependents[dep] = append(dependents[dep], name)
			}
		}
		pending[name] = count
	}

	var (
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstErr error
		executed = map[string]bool{} // task -> ran its action?
	)
	ready := make(chan string, len(order))
	for _, name := range order {
		if pending[name] == 0 {
			ready <- name
		}
	}
	remaining := len(order)
	done := make(chan struct{})

	worker := func() {
		defer wg.Done()
		for name := range ready {
			t := e.tasks[name]
			mu.Lock()
			upstreamRan := false
			for _, dep := range t.TaskDeps {
				if executed[dep] {
					upstreamRan = true
				}
			}
			mu.Unlock()

			ran, err := e.execute(t, upstreamRan)

			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			executed[name] = ran && err == nil
			remaining--
			if firstErr == nil {
				for _, dep := range dependents[name] {
					pending[dep]--
					if pending[dep] == 0 {
						ready <- dep
					}
				}
			}
			if remaining == 0 || firstErr != nil {
				select {
				case <-done:
				default:
					close(done)
				}
			}
			mu.Unlock()
		}
	}

	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go worker()
	}
	<-done
	close(ready)
	wg.Wait()

	if firstErr != nil {
		return firstErr
	}
	if remaining != 0 {
		return fmt.Errorf("dag: internal: %d tasks never became ready", remaining)
	}
	return e.save()
}

// topoOrder returns every needed task in dependency order.
func (e *Engine) topoOrder(names []string) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("dag: dependency cycle through task %q", name)
		case 2:
			return nil
		}
		t, ok := e.tasks[name]
		if !ok {
			return fmt.Errorf("dag: unknown task %q", name)
		}
		state[name] = 1
		for _, dep := range t.TaskDeps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, name)
		return nil
	}
	for _, name := range names {
		if err := visit(name); err != nil {
			return nil, err
		}
	}
	return order, nil
}
