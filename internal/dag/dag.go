// Package dag implements the dependency-tracking build engine FireMarshal
// uses to avoid unnecessary rebuilding ("similar to GNU make ... done with
// the doit python package", §III-B). Tasks declare file dependencies, value
// dependencies (configuration that isn't a file), task dependencies, and
// targets. A persistent state database records the content hashes observed
// at the last successful run; a task re-executes only when a dependency
// hash changed, a value dep changed, a target is missing, or an upstream
// task actually ran.
//
// Like doit, state is keyed by task name and survives across processes via
// a JSON database file.
package dag

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"

	"firemarshal/internal/hostutil"
)

// osStat is an alias so parallel.go shares the same stat behaviour.
var osStat = os.Stat

// Task is one unit of buildable work.
type Task struct {
	// Name uniquely identifies the task in the graph and the state DB.
	Name string
	// FileDeps are files or directories whose content participates in the
	// up-to-date check.
	FileDeps []string
	// ValueDeps are non-file inputs (e.g. the resolved workload config).
	// They are hashed into the up-to-date check.
	ValueDeps map[string]string
	// TaskDeps name tasks that must run (or be confirmed up to date) first.
	TaskDeps []string
	// Targets are the output files. A missing target forces a run.
	Targets []string
	// Action performs the work. It must create every target.
	Action func() error
	// AlwaysRun forces execution regardless of recorded state (used for
	// launch-style tasks that are not cacheable).
	AlwaysRun bool
}

// taskState is the persisted per-task record.
type taskState struct {
	DepHashes   map[string]string `json:"depHashes"`
	ValueHashes map[string]string `json:"valueHashes"`
	TargetsSeen []string          `json:"targetsSeen"`
}

// Engine executes task graphs with persistent up-to-date state.
type Engine struct {
	mu     sync.Mutex
	dbPath string
	state  map[string]*taskState
	tasks  map[string]*Task

	// Stats for observability and the incremental-rebuild benchmark.
	Executed []string
	Skipped  []string
}

// NewEngine loads (or initializes) the state database at dbPath. An empty
// dbPath keeps state in memory only.
func NewEngine(dbPath string) (*Engine, error) {
	e := &Engine{dbPath: dbPath, state: map[string]*taskState{}, tasks: map[string]*Task{}}
	if dbPath != "" {
		data, err := os.ReadFile(dbPath)
		if err == nil {
			if jerr := json.Unmarshal(data, &e.state); jerr != nil {
				// A corrupt DB degrades to a full rebuild, never a failure.
				e.state = map[string]*taskState{}
			}
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("dag: reading state db: %w", err)
		}
	}
	return e, nil
}

// Register adds a task to the graph. Registering two tasks with the same
// name is an error.
func (e *Engine) Register(t *Task) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t.Name == "" {
		return fmt.Errorf("dag: task with empty name")
	}
	if _, dup := e.tasks[t.Name]; dup {
		return fmt.Errorf("dag: duplicate task %q", t.Name)
	}
	e.tasks[t.Name] = t
	return nil
}

// Run executes the named task and, first, its transitive dependencies.
// It returns whether the task itself actually executed.
func (e *Engine) Run(name string) (bool, error) {
	visiting := map[string]bool{}
	done := map[string]bool{} // name -> executed?
	ran, err := e.run(name, visiting, done)
	if err != nil {
		return ran, err
	}
	return ran, e.save()
}

func (e *Engine) run(name string, visiting, done map[string]bool) (bool, error) {
	if ran, ok := done[name]; ok {
		return ran, nil
	}
	if visiting[name] {
		return false, fmt.Errorf("dag: dependency cycle through task %q", name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	t, ok := e.tasks[name]
	if !ok {
		return false, fmt.Errorf("dag: unknown task %q", name)
	}

	upstreamRan := false
	for _, dep := range t.TaskDeps {
		ran, err := e.run(dep, visiting, done)
		if err != nil {
			return false, err
		}
		upstreamRan = upstreamRan || ran
	}

	need, err := e.needsRun(t, upstreamRan)
	if err != nil {
		return false, err
	}
	if !need {
		e.Skipped = append(e.Skipped, name)
		done[name] = false
		return false, nil
	}
	if t.Action != nil {
		if err := t.Action(); err != nil {
			return false, fmt.Errorf("dag: task %q: %w", name, err)
		}
	}
	for _, target := range t.Targets {
		if _, err := os.Stat(target); err != nil {
			return false, fmt.Errorf("dag: task %q did not produce target %q", name, target)
		}
	}
	if err := e.record(t); err != nil {
		return false, err
	}
	e.Executed = append(e.Executed, name)
	done[name] = true
	return true, nil
}

// needsRun decides whether the task must execute.
func (e *Engine) needsRun(t *Task, upstreamRan bool) (bool, error) {
	if t.AlwaysRun || upstreamRan {
		return true, nil
	}
	for _, target := range t.Targets {
		if _, err := os.Stat(target); err != nil {
			return true, nil
		}
	}
	st, ok := e.state[t.Name]
	if !ok {
		return true, nil
	}
	// Target set changed since last run.
	targets := append([]string(nil), t.Targets...)
	sort.Strings(targets)
	if !equalSlices(targets, st.TargetsSeen) {
		return true, nil
	}
	cur, err := e.depHashes(t)
	if err != nil {
		return false, err
	}
	if len(cur) != len(st.DepHashes) {
		return true, nil
	}
	for k, v := range cur {
		if st.DepHashes[k] != v {
			return true, nil
		}
	}
	vals := valueHashes(t)
	if len(vals) != len(st.ValueHashes) {
		return true, nil
	}
	for k, v := range vals {
		if st.ValueHashes[k] != v {
			return true, nil
		}
	}
	return false, nil
}

func (e *Engine) depHashes(t *Task) (map[string]string, error) {
	out := make(map[string]string, len(t.FileDeps))
	for _, dep := range t.FileDeps {
		h, err := hostutil.HashDir(dep)
		if err != nil {
			return nil, fmt.Errorf("dag: hashing dep %q of %q: %w", dep, t.Name, err)
		}
		out[dep] = h
	}
	return out, nil
}

func valueHashes(t *Task) map[string]string {
	out := make(map[string]string, len(t.ValueDeps))
	for k, v := range t.ValueDeps {
		out[k] = hostutil.HashStrings(v)
	}
	return out
}

func (e *Engine) record(t *Task) error {
	deps, err := e.depHashes(t)
	if err != nil {
		return err
	}
	targets := append([]string(nil), t.Targets...)
	sort.Strings(targets)
	e.mu.Lock()
	e.state[t.Name] = &taskState{DepHashes: deps, ValueHashes: valueHashes(t), TargetsSeen: targets}
	e.mu.Unlock()
	return nil
}

// Forget drops recorded state for a task (used by `marshal clean`).
func (e *Engine) Forget(name string) error {
	e.mu.Lock()
	delete(e.state, name)
	e.mu.Unlock()
	return e.save()
}

// save persists the state database atomically.
func (e *Engine) save() error {
	if e.dbPath == "" {
		return nil
	}
	e.mu.Lock()
	data, err := json.MarshalIndent(e.state, "", "  ")
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return hostutil.WriteFileAtomic(e.dbPath, data, 0o644)
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
