// Package dag implements the dependency-tracking build engine FireMarshal
// uses to avoid unnecessary rebuilding ("similar to GNU make ... done with
// the doit python package", §III-B). Tasks declare file dependencies, value
// dependencies (configuration that isn't a file), task dependencies, and
// targets. A persistent state database records the content hashes observed
// at the last successful run; a task re-executes only when a dependency
// hash changed, a value dep changed, a target is missing, or an upstream
// task actually ran.
//
// Like doit, state is keyed by task name and survives across processes via
// a JSON database file.
//
// When a content-addressed store is attached (SetCache), the engine also
// consults an action cache before executing: the task digest — a hash of
// the task name, its input content hashes, and its output names — is looked
// up, and on a hit the outputs are restored from the store instead of
// running the action. Tasks that do execute publish their outputs back, so
// sibling workloads, fresh checkouts, and remote-cache peers share one copy
// of every identical artifact.
package dag

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/obs"
)

// osStat is an alias so parallel.go shares the same stat behaviour.
var osStat = os.Stat

// Task is one unit of buildable work.
type Task struct {
	// Name uniquely identifies the task in the graph and the state DB.
	Name string
	// FileDeps are files or directories whose content participates in the
	// up-to-date check.
	FileDeps []string
	// ValueDeps are non-file inputs (e.g. the resolved workload config).
	// They are hashed into the up-to-date check.
	ValueDeps map[string]string
	// TaskDeps name tasks that must run (or be confirmed up to date) first.
	TaskDeps []string
	// Targets are the output files. A missing target forces a run.
	Targets []string
	// Action performs the work. It must create every target.
	Action func() error
	// AlwaysRun forces execution regardless of recorded state (used for
	// launch-style tasks that are not cacheable).
	AlwaysRun bool
}

// taskState is the persisted per-task record.
type taskState struct {
	DepHashes   map[string]string `json:"depHashes"`
	ValueHashes map[string]string `json:"valueHashes"`
	TargetsSeen []string          `json:"targetsSeen"`
	// ActionKey is the action-cache digest the last run was stored under
	// ("" when no cache was attached). Garbage collection treats the keys
	// recorded across the state DB as the live set.
	ActionKey string `json:"actionKey,omitempty"`
}

// Engine executes task graphs with persistent up-to-date state.
//
// The mutex guards the state map and the stats slices: RunMany workers call
// needsRun (which reads state) concurrently with record (which writes it).
type Engine struct {
	mu     sync.Mutex
	dbPath string
	state  map[string]*taskState
	tasks  map[string]*Task
	cache  *cas.Cache

	// Stats for observability and the incremental-rebuild benchmark.
	// Executed tasks ran their action; Restored tasks were materialized
	// from the action cache without running; Skipped tasks were already up
	// to date. Read them only after Run/RunMany returns.
	Executed []string
	Skipped  []string
	Restored []string

	// obsReg receives dag_node_* counters (nil = obs.Default); span, when
	// set, parents one child span per non-skipped node in the run trace.
	obsReg *obs.Registry
	span   *obs.Span
}

// NewEngine loads (or initializes) the state database at dbPath. An empty
// dbPath keeps state in memory only.
func NewEngine(dbPath string) (*Engine, error) {
	e := &Engine{dbPath: dbPath, state: map[string]*taskState{}, tasks: map[string]*Task{}}
	if dbPath != "" {
		data, err := os.ReadFile(dbPath)
		if err == nil {
			if jerr := json.Unmarshal(data, &e.state); jerr != nil {
				// A corrupt DB degrades to a full rebuild, never a failure.
				e.state = map[string]*taskState{}
			}
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("dag: reading state db: %w", err)
		}
	}
	return e, nil
}

// SetCache attaches a content-addressed artifact cache. Tasks with targets
// then restore from / publish to the cache (see the package comment).
func (e *Engine) SetCache(c *cas.Cache) { e.cache = c }

// SetObs attaches the observability layer: node builds and cache restores
// count into r (nil = obs.Default), and each non-skipped node gets a
// child span of parent in the run trace (nil parent disables tracing).
func (e *Engine) SetObs(r *obs.Registry, parent *obs.Span) {
	e.obsReg, e.span = r, parent
}

// Register adds a task to the graph. Registering two tasks with the same
// name is an error.
func (e *Engine) Register(t *Task) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if t.Name == "" {
		return fmt.Errorf("dag: task with empty name")
	}
	if _, dup := e.tasks[t.Name]; dup {
		return fmt.Errorf("dag: duplicate task %q", t.Name)
	}
	e.tasks[t.Name] = t
	return nil
}

// ActionKeys returns the action-cache keys recorded in the state DB — the
// live set for cache garbage collection.
func (e *Engine) ActionKeys() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var keys []string
	for _, st := range e.state {
		if st.ActionKey != "" {
			keys = append(keys, st.ActionKey)
		}
	}
	sort.Strings(keys)
	return keys
}

// Run executes the named task and, first, its transitive dependencies.
// It returns whether the task itself actually executed.
func (e *Engine) Run(name string) (bool, error) {
	visiting := map[string]bool{}
	done := map[string]bool{} // name -> executed?
	ran, err := e.run(name, visiting, done)
	if err != nil {
		return ran, err
	}
	return ran, e.save()
}

func (e *Engine) run(name string, visiting, done map[string]bool) (bool, error) {
	if ran, ok := done[name]; ok {
		return ran, nil
	}
	if visiting[name] {
		return false, fmt.Errorf("dag: dependency cycle through task %q", name)
	}
	visiting[name] = true
	defer delete(visiting, name)

	t, ok := e.tasks[name]
	if !ok {
		return false, fmt.Errorf("dag: unknown task %q", name)
	}

	upstreamRan := false
	for _, dep := range t.TaskDeps {
		ran, err := e.run(dep, visiting, done)
		if err != nil {
			return false, err
		}
		upstreamRan = upstreamRan || ran
	}

	ran, err := e.execute(t, upstreamRan)
	if err != nil {
		return false, err
	}
	done[name] = ran
	return ran, nil
}

// execute applies the up-to-date check, the action cache, and finally the
// task's action. It returns whether the action actually ran — a restore
// from the cache reports false, because downstream tasks need no forced
// rebuild when their input bytes are unchanged (they re-check hashes and
// hit the cache themselves if state is missing).
func (e *Engine) execute(t *Task, upstreamRan bool) (bool, error) {
	need, err := e.needsRun(t, upstreamRan)
	if err != nil {
		return false, err
	}
	if !need {
		e.note(&e.Skipped, t.Name)
		return false, nil
	}

	// Up-to-date nodes stay out of the trace; restored and built nodes
	// each get one span with a deterministic per-node path.
	span := e.span.Child("node:" + t.Name)
	defer span.End()

	key := ""
	if e.cacheable(t) {
		deps, err := e.depHashes(t)
		if err != nil {
			return false, err
		}
		key = taskKey(t, deps, valueHashes(t))
		if a := e.cache.Lookup(key); a != nil {
			if rerr := e.cache.Restore(a, sortedTargets(t)); rerr == nil {
				// A restore never touches the task's inputs, so the hashes
				// computed for the key are still current — no second pass.
				e.recordHashes(t, key, deps)
				e.note(&e.Restored, t.Name)
				e.obsReg.Counter("dag_node_cache_restores_total").Inc()
				span.Attr("outcome", "restored")
				return false, nil
			}
			// A failed restore (missing/corrupt blob, truncated transfer)
			// falls through to executing the task.
		}
	}

	if t.Action != nil {
		if err := t.Action(); err != nil {
			return false, fmt.Errorf("dag: task %q: %w", t.Name, err)
		}
	}
	for _, target := range t.Targets {
		if _, err := osStat(target); err != nil {
			return false, fmt.Errorf("dag: task %q did not produce target %q", t.Name, target)
		}
	}
	if key != "" {
		// Publishing is best-effort: a full disk or dead remote must not
		// fail a build whose artifacts already exist on disk.
		e.cache.Publish(key, t.Name, sortedTargets(t))
	}
	if err := e.record(t, key); err != nil {
		return false, err
	}
	e.note(&e.Executed, t.Name)
	e.obsReg.Counter("dag_node_builds_total").Inc()
	span.Attr("outcome", "built")
	return true, nil
}

// cacheable reports whether t participates in the action cache: only tasks
// with declared outputs are safe to satisfy without running (side-effect
// tasks like host-init scripts and always-run launches are excluded).
func (e *Engine) cacheable(t *Task) bool {
	return e.cache != nil && !t.AlwaysRun && len(t.Targets) > 0
}

// taskKey digests a task's identity and inputs for the action cache. Only
// content hashes and base names go in — never absolute paths — so two
// checkouts (or machines) building identical inputs share entries.
func taskKey(t *Task, deps, vals map[string]string) string {
	parts := []string{"task", t.Name, "deps"}
	depHashes := make([]string, 0, len(deps))
	for _, h := range deps {
		depHashes = append(depHashes, h)
	}
	sort.Strings(depHashes)
	parts = append(parts, depHashes...)
	parts = append(parts, "vals")
	valKeys := make([]string, 0, len(vals))
	for k := range vals {
		valKeys = append(valKeys, k)
	}
	sort.Strings(valKeys)
	for _, k := range valKeys {
		parts = append(parts, k, vals[k])
	}
	parts = append(parts, "targets")
	for _, target := range sortedTargets(t) {
		parts = append(parts, filepath.Base(target))
	}
	return hostutil.HashStrings(parts...)
}

// sortedTargets returns the task's targets in the canonical (sorted) order
// used for both publishing and restoring.
func sortedTargets(t *Task) []string {
	targets := append([]string(nil), t.Targets...)
	sort.Slice(targets, func(i, j int) bool {
		return filepath.Base(targets[i]) < filepath.Base(targets[j])
	})
	return targets
}

// note appends a task name to one of the stats slices under the lock.
func (e *Engine) note(slice *[]string, name string) {
	e.mu.Lock()
	*slice = append(*slice, name)
	e.mu.Unlock()
}

// needsRun decides whether the task must execute.
func (e *Engine) needsRun(t *Task, upstreamRan bool) (bool, error) {
	if t.AlwaysRun || upstreamRan {
		return true, nil
	}
	for _, target := range t.Targets {
		if _, err := osStat(target); err != nil {
			return true, nil
		}
	}
	e.mu.Lock()
	st, ok := e.state[t.Name]
	e.mu.Unlock()
	if !ok {
		return true, nil
	}
	// Target set changed since last run.
	targets := append([]string(nil), t.Targets...)
	sort.Strings(targets)
	if !equalSlices(targets, st.TargetsSeen) {
		return true, nil
	}
	cur, err := e.depHashes(t)
	if err != nil {
		return false, err
	}
	if len(cur) != len(st.DepHashes) {
		return true, nil
	}
	for k, v := range cur {
		if st.DepHashes[k] != v {
			return true, nil
		}
	}
	vals := valueHashes(t)
	if len(vals) != len(st.ValueHashes) {
		return true, nil
	}
	for k, v := range vals {
		if st.ValueHashes[k] != v {
			return true, nil
		}
	}
	return false, nil
}

func (e *Engine) depHashes(t *Task) (map[string]string, error) {
	out := make(map[string]string, len(t.FileDeps))
	for _, dep := range t.FileDeps {
		h, err := hostutil.HashDir(dep)
		if err != nil {
			return nil, fmt.Errorf("dag: hashing dep %q of %q: %w", dep, t.Name, err)
		}
		out[dep] = h
	}
	return out, nil
}

func valueHashes(t *Task) map[string]string {
	out := make(map[string]string, len(t.ValueDeps))
	for k, v := range t.ValueDeps {
		out[k] = hostutil.HashStrings(v)
	}
	return out
}

func (e *Engine) record(t *Task, actionKey string) error {
	// Hashes are taken after the action ran: an action is allowed to touch
	// (regenerate) one of its own inputs, and the post-run content is what
	// the next up-to-date check must compare against.
	deps, err := e.depHashes(t)
	if err != nil {
		return err
	}
	e.recordHashes(t, actionKey, deps)
	return nil
}

// recordHashes stores state from already-computed dep hashes (the cache
// restore path, where inputs provably did not change).
func (e *Engine) recordHashes(t *Task, actionKey string, deps map[string]string) {
	targets := append([]string(nil), t.Targets...)
	sort.Strings(targets)
	e.mu.Lock()
	e.state[t.Name] = &taskState{DepHashes: deps, ValueHashes: valueHashes(t), TargetsSeen: targets, ActionKey: actionKey}
	e.mu.Unlock()
}

// Forget drops recorded state for a task (used by `marshal clean`).
func (e *Engine) Forget(name string) error {
	e.mu.Lock()
	delete(e.state, name)
	e.mu.Unlock()
	return e.save()
}

// save persists the state database atomically.
func (e *Engine) save() error {
	if e.dbPath == "" {
		return nil
	}
	e.mu.Lock()
	data, err := json.MarshalIndent(e.state, "", "  ")
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return hostutil.WriteFileAtomic(e.dbPath, data, 0o644)
}

func equalSlices(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
