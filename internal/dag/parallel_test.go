package dag

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunManyBuildsAll(t *testing.T) {
	dir := t.TempDir()
	e, _ := NewEngine(filepath.Join(dir, "db.json"))
	var count int32
	for i := 0; i < 8; i++ {
		target := filepath.Join(dir, fmt.Sprintf("out%d", i))
		e.Register(&Task{
			Name:    fmt.Sprintf("t%d", i),
			Targets: []string{target},
			Action: func() error {
				atomic.AddInt32(&count, 1)
				return os.WriteFile(target, []byte("x"), 0o644)
			},
		})
	}
	names := make([]string, 8)
	for i := range names {
		names[i] = fmt.Sprintf("t%d", i)
	}
	if err := e.RunMany(names, 4); err != nil {
		t.Fatal(err)
	}
	if count != 8 {
		t.Errorf("executed %d tasks", count)
	}
	// Second run: all skipped.
	e2, _ := NewEngine(filepath.Join(dir, "db.json"))
	for i := 0; i < 8; i++ {
		i := i
		target := filepath.Join(dir, fmt.Sprintf("out%d", i))
		e2.Register(&Task{
			Name:    fmt.Sprintf("t%d", i),
			Targets: []string{target},
			Action:  func() error { return os.WriteFile(target, []byte("x"), 0o644) },
		})
	}
	if err := e2.RunMany(names, 4); err != nil {
		t.Fatal(err)
	}
	if len(e2.Executed) != 0 {
		t.Errorf("no-op parallel rebuild executed %v", e2.Executed)
	}
}

func TestRunManyRespectsDependencies(t *testing.T) {
	dir := t.TempDir()
	e, _ := NewEngine("")
	var orderLog []string
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	log := func(name string) {
		<-mu
		orderLog = append(orderLog, name)
		mu <- struct{}{}
	}
	mk := func(name string, deps ...string) {
		target := filepath.Join(dir, name)
		e.Register(&Task{
			Name:     name,
			TaskDeps: deps,
			Targets:  []string{target},
			Action: func() error {
				log(name)
				return os.WriteFile(target, []byte(name), 0o644)
			},
		})
	}
	mk("a")
	mk("b", "a")
	mk("c", "b")
	mk("d", "a")
	if err := e.RunMany([]string{"c", "d"}, 4); err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, name := range orderLog {
		pos[name] = i
	}
	if !(pos["a"] < pos["b"] && pos["b"] < pos["c"] && pos["a"] < pos["d"]) {
		t.Errorf("dependency order violated: %v", orderLog)
	}
}

func TestRunManyActuallyParallel(t *testing.T) {
	e, _ := NewEngine("")
	var inFlight, peak int32
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		target := filepath.Join(dir, fmt.Sprintf("o%d", i))
		e.Register(&Task{
			Name:    fmt.Sprintf("t%d", i),
			Targets: []string{target},
			Action: func() error {
				cur := atomic.AddInt32(&inFlight, 1)
				for {
					p := atomic.LoadInt32(&peak)
					if cur <= p || atomic.CompareAndSwapInt32(&peak, p, cur) {
						break
					}
				}
				time.Sleep(20 * time.Millisecond)
				atomic.AddInt32(&inFlight, -1)
				return os.WriteFile(target, []byte("x"), 0o644)
			},
		})
	}
	if err := e.RunMany([]string{"t0", "t1", "t2", "t3"}, 4); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&peak) < 2 {
		t.Errorf("peak concurrency %d; independent tasks should overlap", peak)
	}
}

func TestRunManyErrorStopsScheduling(t *testing.T) {
	e, _ := NewEngine("")
	ran := int32(0)
	e.Register(&Task{Name: "bad", AlwaysRun: true, Action: func() error {
		return fmt.Errorf("boom")
	}})
	e.Register(&Task{Name: "after", TaskDeps: []string{"bad"}, AlwaysRun: true, Action: func() error {
		atomic.AddInt32(&ran, 1)
		return nil
	}})
	err := e.RunMany([]string{"after"}, 2)
	if err == nil {
		t.Fatal("expected error")
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Error("dependent task ran after failure")
	}
}

func TestRunManyCycleAndUnknown(t *testing.T) {
	e, _ := NewEngine("")
	e.Register(&Task{Name: "a", TaskDeps: []string{"b"}})
	e.Register(&Task{Name: "b", TaskDeps: []string{"a"}})
	if err := e.RunMany([]string{"a"}, 2); err == nil {
		t.Error("expected cycle error")
	}
	if err := e.RunMany([]string{"ghost"}, 2); err == nil {
		t.Error("expected unknown task error")
	}
}

func TestRunManyEmpty(t *testing.T) {
	e, _ := NewEngine("")
	if err := e.RunMany(nil, 4); err != nil {
		t.Errorf("empty RunMany: %v", err)
	}
}

func TestRunManyCascade(t *testing.T) {
	// Upstream execution forces downstream re-run, same as serial Run.
	dir := t.TempDir()
	db := filepath.Join(dir, "db.json")
	dep := filepath.Join(dir, "dep")
	os.WriteFile(dep, []byte("v1"), 0o644)

	counts := map[string]*int32{"p": new(int32), "c": new(int32)}
	build := func() *Engine {
		e, _ := NewEngine(db)
		pt := filepath.Join(dir, "p.out")
		ct := filepath.Join(dir, "c.out")
		e.Register(&Task{Name: "p", FileDeps: []string{dep}, Targets: []string{pt}, Action: func() error {
			atomic.AddInt32(counts["p"], 1)
			return os.WriteFile(pt, []byte("p"), 0o644)
		}})
		e.Register(&Task{Name: "c", TaskDeps: []string{"p"}, FileDeps: []string{pt}, Targets: []string{ct}, Action: func() error {
			atomic.AddInt32(counts["c"], 1)
			return os.WriteFile(ct, []byte("c"), 0o644)
		}})
		if err := e.RunMany([]string{"c"}, 4); err != nil {
			t.Fatal(err)
		}
		return e
	}
	build()
	os.WriteFile(dep, []byte("v2"), 0o644)
	build()
	if *counts["p"] != 2 || *counts["c"] != 2 {
		t.Errorf("cascade counts: p=%d c=%d", *counts["p"], *counts["c"])
	}
}

func TestRunManySharedParentBuildsOnce(t *testing.T) {
	// N children claimed concurrently share one missing parent: the
	// scheduler must execute the parent exactly once, never per-child —
	// the invariant `marshal launch -j N` relies on when every job of a
	// workload depends on the same base-image build.
	dir := t.TempDir()
	e, _ := NewEngine(filepath.Join(dir, "db.json"))
	var parentRuns int32
	parentTarget := filepath.Join(dir, "base.out")
	e.Register(&Task{
		Name:    "base",
		Targets: []string{parentTarget},
		Action: func() error {
			atomic.AddInt32(&parentRuns, 1)
			// Stay in flight long enough that every child had the
			// chance to claim it again if claiming were broken.
			time.Sleep(20 * time.Millisecond)
			return os.WriteFile(parentTarget, []byte("base"), 0o644)
		},
	})
	const n = 8
	names := make([]string, n)
	for i := 0; i < n; i++ {
		target := filepath.Join(dir, fmt.Sprintf("child%d.out", i))
		names[i] = fmt.Sprintf("child%d", i)
		e.Register(&Task{
			Name:     names[i],
			TaskDeps: []string{"base"},
			FileDeps: []string{parentTarget},
			Targets:  []string{target},
			Action:   func() error { return os.WriteFile(target, []byte("c"), 0o644) },
		})
	}
	if err := e.RunMany(names, n); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&parentRuns); got != 1 {
		t.Errorf("shared parent executed %d times, want exactly 1", got)
	}
	if len(e.Executed) != n+1 {
		t.Errorf("executed %v", e.Executed)
	}
}
