package bringup

import (
	"strings"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim/rtlsim"
)

func build(t *testing.T, src string) *isa.Executable {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// mulProgram exercises the multiplier and prints the product.
const mulProgram = `
_start:
    li t0, 1234
    li t1, 5678
    mul a0, t0, t1
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall
`

func TestHealthySiliconMatches(t *testing.T) {
	rep, err := Triage("mul-test", build(t, mulProgram), rtlsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Errorf("healthy silicon should match golden: %+v", rep)
	}
	if !strings.Contains(rep.GoldenOut, "7006652") {
		t.Errorf("golden output = %q", rep.GoldenOut)
	}
}

func TestFaultyMultiplierDetected(t *testing.T) {
	cfg := rtlsim.DefaultConfig()
	cfg.FaultMask = 0x1 // stuck-at-1 on the multiplier's low result bit
	rep, err := Triage("mul-test", build(t, mulProgram), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match {
		t.Fatal("fault should be detected")
	}
	if rep.FirstDivergence == "" {
		t.Error("divergence not localized")
	}
	// 1234*5678 = 7006652 (even); stuck-at-1 low bit makes it 7006653.
	if !strings.Contains(rep.SiliconOut, "7006653") {
		t.Errorf("silicon output = %q", rep.SiliconOut)
	}
}

func TestFaultOnUnusedUnitNotDetected(t *testing.T) {
	// Faulty divider, but the program never divides: the test passes —
	// which is exactly why bring-up runs the whole suite.
	cfg := rtlsim.DefaultConfig()
	cfg.FaultMask = 0x1
	cfg.FaultOp = isa.OpDIV
	rep, err := Triage("mul-test", build(t, mulProgram), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Error("fault in unused unit should not show up in this test")
	}
}

func TestTriageSuiteLocalizesFaultyUnit(t *testing.T) {
	programs := map[string]*isa.Executable{
		"mul-test": build(t, mulProgram),
		"div-test": build(t, `
_start:
    li t0, 7006652
    li t1, 5678
    div a0, t0, t1
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`),
		"add-test": build(t, `
_start:
    li t0, 40
    addi a0, t0, 2
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`),
	}
	cfg := rtlsim.DefaultConfig()
	cfg.FaultMask = 0x8
	cfg.FaultOp = isa.OpDIV
	reports, failures, err := TriageSuite(programs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if failures != 1 {
		t.Fatalf("want exactly the div test to fail, got %d failures", failures)
	}
	for _, rep := range reports {
		if rep.Name == "div-test" && rep.Match {
			t.Error("div test should fail on faulty divider")
		}
		if rep.Name != "div-test" && !rep.Match {
			t.Errorf("%s should pass: %s", rep.Name, rep.FirstDivergence)
		}
	}
	// Reports are in deterministic (sorted) order.
	if reports[0].Name != "add-test" || reports[2].Name != "mul-test" {
		t.Errorf("report order: %s %s %s", reports[0].Name, reports[1].Name, reports[2].Name)
	}
}

func TestSiliconCrashIsAResult(t *testing.T) {
	// A program whose faulty result leads to an illegal jump: the golden
	// model completes but "silicon" crashes. Triage must report, not fail.
	src := `
_start:
    li t0, 0x10000      # valid code address
    li t1, 1
    mul t0, t0, t1      # faulty mul corrupts the target
    jr t0
`
	// Golden: jumps to _start... that would loop forever. Use MaxInstrs to
	// keep golden bounded? Instead jump to a ret-like halt:
	src = `
_start:
    la t0, done
    li t1, 1
    mul t0, t0, t1
    jr t0
done:
    li a0, 0
    li a7, 93
    ecall
`
	cfg := rtlsim.DefaultConfig()
	cfg.FaultMask = 1 << 62 // corrupt the jump target wildly
	rep, err := Triage("jump", build(t, src), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match {
		t.Error("crashing silicon should not match")
	}
	if !strings.Contains(rep.FirstDivergence, "silicon execution failed") {
		t.Errorf("divergence = %q", rep.FirstDivergence)
	}
}

func TestCleanedTimestampsDoNotDiverge(t *testing.T) {
	// Outputs that differ only in printed cycle counts (timestamps) must
	// not be flagged — that is why triage cleans outputs first. This
	// program prints rdcycle inside a kernel-like "[ %d ]" stamp... our
	// cleaner handles printk-style stamps in boot logs, which guest
	// programs do not emit; here we verify plain identical output across
	// very different timing models still matches.
	src := `
_start:
    li a0, 99
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`
	slow := rtlsim.DefaultConfig()
	slow.BranchMissPenalty = 100
	slow.DCacheMissPenalty = 500
	rep, err := Triage("timing", build(t, src), slow)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Errorf("timing-only differences must not diverge: %+v", rep)
	}
}

func TestNormalizerMasksExpectedDifferences(t *testing.T) {
	// A program printing rdcycle diverges across simulation levels unless
	// the triage normalizer masks the timing field.
	src := `
_start:
    rdcycle a0
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall
`
	exe := build(t, src)
	rep, err := Triage("timing", exe, rtlsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match {
		t.Skip("cycle counts coincided; cannot exercise the divergence")
	}
	maskAll := func(string) string { return "<masked>" }
	rep, err = Triage("timing", exe, rtlsim.DefaultConfig(), maskAll)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Match {
		t.Error("normalizer should mask expected differences")
	}
}
