// Package bringup implements the post-tapeout bring-up flow the paper
// describes as in-progress work (§VI): "the existing suite of
// FireMarshal-based benchmarks are run in an identical manner in both
// functional simulation and during bringup[,] allowing researchers to
// triage issues with potentially faulty hardware."
//
// Triage runs the same guest program on the functional simulator (the
// golden reference) and on a cycle-exact platform standing in for first
// silicon (optionally configured with an injected fault), cleans both
// outputs, and reports the first divergence.
package bringup

import (
	"fmt"
	"strings"

	"firemarshal/internal/isa"
	"firemarshal/internal/runtest"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/sim/rtlsim"
)

// Report is the triage outcome for one program.
type Report struct {
	// Name labels the test in suite reports.
	Name string
	// Match is true when cleaned outputs and exit codes agree.
	Match bool
	// GoldenExit / SiliconExit are the two exit codes.
	GoldenExit  int64
	SiliconExit int64
	// FirstDivergence describes the first differing cleaned output line.
	FirstDivergence string
	// GoldenOut / SiliconOut are the raw outputs (for deeper debugging).
	GoldenOut  string
	SiliconOut string
}

// Normalize transforms outputs before comparison, dropping content that
// legitimately differs between simulation levels (e.g. self-reported cycle
// counts) — the role post-run-hook plays for workloads "with more complex
// success criteria" (§III-D).
type Normalize func(string) string

// Triage runs exe on the golden functional model and on the given
// "silicon" configuration, comparing cleaned outputs. An optional
// normalizer is applied to both outputs first.
func Triage(name string, exe *isa.Executable, silicon rtlsim.Config, normalize ...Normalize) (*Report, error) {
	golden := funcsim.New(funcsim.Config{Variant: "spike"})
	var gOut strings.Builder
	gRes, err := golden.Exec(exe, &gOut)
	if err != nil {
		return nil, fmt.Errorf("bringup: golden model: %w", err)
	}

	chip, err := rtlsim.New(silicon)
	if err != nil {
		return nil, err
	}
	var sOut strings.Builder
	sRes, err := chip.Exec(exe, &sOut)
	if err != nil {
		// A crash on silicon is itself a triage result, not a tool error.
		return &Report{
			Name:            name,
			Match:           false,
			GoldenExit:      gRes.Exit,
			SiliconExit:     -1,
			FirstDivergence: fmt.Sprintf("silicon execution failed: %v", err),
			GoldenOut:       gOut.String(),
			SiliconOut:      sOut.String(),
		}, nil
	}

	rep := &Report{
		Name:        name,
		GoldenExit:  gRes.Exit,
		SiliconExit: sRes.Exit,
		GoldenOut:   gOut.String(),
		SiliconOut:  sOut.String(),
	}
	gClean := runtest.CleanOutput(gOut.String())
	sClean := runtest.CleanOutput(sOut.String())
	for _, n := range normalize {
		gClean, sClean = n(gClean), n(sClean)
	}
	if gClean == sClean && gRes.Exit == sRes.Exit {
		rep.Match = true
		return rep, nil
	}
	rep.FirstDivergence = firstDiff(gClean, sClean)
	if rep.FirstDivergence == "" && gRes.Exit != sRes.Exit {
		rep.FirstDivergence = fmt.Sprintf("exit codes differ: golden=%d silicon=%d", gRes.Exit, sRes.Exit)
	}
	return rep, nil
}

// TriageSuite runs a set of named programs and returns the reports plus the
// count of failures — the regression sweep a bring-up team runs after
// power-on. The optional normalizer applies to every program.
func TriageSuite(programs map[string]*isa.Executable, silicon rtlsim.Config, normalize ...Normalize) ([]*Report, int, error) {
	var reports []*Report
	failures := 0
	// Deterministic ordering by name.
	names := make([]string, 0, len(programs))
	for name := range programs {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		rep, err := Triage(name, programs[name], silicon, normalize...)
		if err != nil {
			return nil, 0, err
		}
		if !rep.Match {
			failures++
		}
		reports = append(reports, rep)
	}
	return reports, failures, nil
}

// firstDiff returns a description of the first differing line.
func firstDiff(a, b string) string {
	al := strings.Split(a, "\n")
	bl := strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: golden=%q silicon=%q", i+1, al[i], bl[i])
		}
	}
	if len(al) != len(bl) {
		return fmt.Sprintf("output lengths differ: golden=%d lines, silicon=%d lines", len(al), len(bl))
	}
	return ""
}
