package boards

import (
	"strings"
	"testing"

	"firemarshal/internal/guestos"
	"firemarshal/internal/netsim"
	"firemarshal/internal/spec"
)

func TestRegisterBuiltins(t *testing.T) {
	l := spec.NewLoader()
	if err := RegisterBuiltins(l); err != nil {
		t.Fatal(err)
	}
	names := l.Builtins()
	for _, want := range []string{"br-base", "fedora-base", "bare-metal", "buildroot", "fedora"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin %q missing (have %v)", want, names)
		}
	}
	// The paper's Listing 1 uses "buildroot" as a base name.
	w, err := l.Load("buildroot")
	if err != nil {
		t.Fatal(err)
	}
	if w.EffectiveDistro() != "br" {
		t.Errorf("buildroot alias distro = %q", w.EffectiveDistro())
	}
}

func TestRegisterBuiltinsTwiceFails(t *testing.T) {
	l := spec.NewLoader()
	RegisterBuiltins(l)
	if err := RegisterBuiltins(l); err == nil {
		t.Error("double registration should fail")
	}
}

func TestBaseImages(t *testing.T) {
	br, err := BaseImage("br")
	if err != nil {
		t.Fatal(err)
	}
	data, err := br.ReadFile(guestos.OSReleasePath)
	if err != nil || !strings.Contains(string(data), "ID=buildroot") {
		t.Errorf("br os-release: %q %v", data, err)
	}
	if br.Lookup("/etc/init.d/rcS") == nil {
		t.Error("br base missing init script")
	}

	fed, err := BaseImage("fedora")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = fed.ReadFile(guestos.OSReleasePath)
	if !strings.Contains(string(data), "ID=fedora") {
		t.Errorf("fedora os-release: %q", data)
	}
	if fed.Lookup("/etc/systemd/system") == nil {
		t.Error("fedora base missing systemd dir")
	}

	if _, err := BaseImage("bare"); err == nil {
		t.Error("bare should have no image")
	}
	if _, err := BaseImage("arch"); err == nil {
		t.Error("unknown distro should fail")
	}
}

func TestBaseImagesDeterministic(t *testing.T) {
	a, _ := BaseImage("br")
	b, _ := BaseImage("br")
	if a.Hash() != b.Hash() {
		t.Error("base image generation not deterministic")
	}
}

func TestDeviceProfiles(t *testing.T) {
	// Empty profile.
	drivers, err := DeviceProfile("", ProfileOpts{})
	if err != nil || drivers != nil {
		t.Errorf("empty profile: %v %v", drivers, err)
	}
	// Golden PFA.
	drivers, err = DeviceProfile("pfa-spike", ProfileOpts{})
	if err != nil || len(drivers) != 1 || drivers[0].Name != "pfa" {
		t.Fatalf("pfa-spike: %v %v", drivers, err)
	}
	if drivers[0].ConfigFlag != "PFA" || drivers[0].ModuleName != "pfa" {
		t.Errorf("pfa driver gating wrong: %+v", drivers[0])
	}
	// Combined profile.
	drivers, err = DeviceProfile("pfa-golden, gemmini", ProfileOpts{})
	if err != nil || len(drivers) != 2 {
		t.Fatalf("combined: %v %v", drivers, err)
	}
	// Unknown profile.
	if _, err := DeviceProfile("tpu", ProfileOpts{}); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestPFARDMARequiresFabric(t *testing.T) {
	if _, err := DeviceProfile("pfa-rdma", ProfileOpts{}); err == nil {
		t.Error("pfa-rdma without fabric should fail")
	}
	fabric := netsim.New(netsim.DefaultConfig())
	drivers, err := DeviceProfile("pfa-rdma", ProfileOpts{Fabric: fabric, ServerNode: "srv"})
	if err != nil || len(drivers) != 1 {
		t.Fatalf("pfa-rdma with fabric: %v %v", drivers, err)
	}
}

func TestOpenPitonBoard(t *testing.T) {
	l := spec.NewLoader()
	if err := RegisterBuiltins(l); err != nil {
		t.Fatal(err)
	}
	w, err := l.Load("op-base")
	if err != nil {
		t.Fatal(err)
	}
	if w.EffectiveBoard() != OpenPitonBoard {
		t.Errorf("board = %q", w.EffectiveBoard())
	}
	if w.EffectiveFirmware() != "bbl" {
		t.Errorf("op-base firmware = %q, want bbl", w.EffectiveFirmware())
	}
}
