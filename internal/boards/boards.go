// Package boards provides the board definitions FireMarshal ships with
// (§III-A.2): the default SoC platform, its device drivers, and the base
// workloads users inherit from — br-base (Buildroot), fedora-base (Fedora),
// and bare-metal. "Users will rarely need to define or modify a board, they
// should be provided by the SoC generation framework."
package boards

import (
	"fmt"
	"strings"

	"firemarshal/internal/accel"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/guestos"
	"firemarshal/internal/netsim"
	"firemarshal/internal/pfa"
	"firemarshal/internal/sim"
	"firemarshal/internal/spec"
)

// DefaultBoard is the board every builtin base targets (the Chipyard-style
// default SoC).
const DefaultBoard = "chipyard-default"

// Builtin base workload names.
const (
	BaseBuildroot = "br-base"
	BaseFedora    = "fedora-base"
	BaseBareMetal = "bare-metal"
)

// Aliases accepted for compatibility with the paper's listings, which call
// the Buildroot base simply "buildroot".
var aliases = map[string]string{
	"buildroot": BaseBuildroot,
	"fedora":    BaseFedora,
}

// OpenPitonBoard is a second SoC platform (§VI: "we hope to extend the
// available boards to include other SoC development frameworks like
// OpenPiton"). Its base workloads differ in board identity and default
// firmware (bbl rather than OpenSBI).
const OpenPitonBoard = "openpiton"

// RegisterBuiltins adds every board's base workloads to a loader.
func RegisterBuiltins(l *spec.Loader) error {
	bases := []*spec.Workload{
		{Name: BaseBuildroot, Distro: "br", Board: DefaultBoard},
		{Name: BaseFedora, Distro: "fedora", Board: DefaultBoard},
		{Name: BaseBareMetal, Distro: "bare", Board: DefaultBoard},
		{Name: "op-base", Distro: "br", Board: OpenPitonBoard,
			Firmware: &spec.FirmwareOpts{Kind: "bbl"}},
		{Name: "op-bare", Distro: "bare", Board: OpenPitonBoard},
	}
	for _, b := range bases {
		if err := l.RegisterBuiltin(b); err != nil {
			return err
		}
	}
	for alias, target := range aliases {
		cp := *bases[0]
		switch target {
		case BaseFedora:
			cp = *bases[1]
		}
		cp.Name = alias
		if err := l.RegisterBuiltin(&cp); err != nil {
			return err
		}
	}
	return nil
}

// BaseImage constructs the root filesystem for a builtin distribution —
// the artifact the lowest base workload's build produces ("FireMarshal uses
// Buildroot internally to construct the lowest base workload", §V).
func BaseImage(distro string) (*fsimg.FS, error) {
	fs := fsimg.New()
	switch distro {
	case "br":
		fs.WriteFile(guestos.OSReleasePath, []byte("ID=buildroot\nVERSION_ID=2020.08\nNAME=Buildroot\n"), 0o644)
		fs.WriteFile("/etc/hostname", []byte("buildroot\n"), 0o644)
		fs.WriteFile("/etc/init.d/rcS", []byte("# buildroot default init\necho Starting network: OK\n"), 0o755)
		fs.MkdirAll("/output", 0o755)
		fs.MkdirAll("/tmp", 0o777)
	case "fedora":
		fs.WriteFile(guestos.OSReleasePath, []byte("ID=fedora\nVERSION_ID=31\nNAME=\"Fedora 31 (RISC-V)\"\n"), 0o644)
		fs.WriteFile("/etc/hostname", []byte("fedora-riscv\n"), 0o644)
		fs.MkdirAll("/etc/systemd/system", 0o755)
		fs.MkdirAll("/output", 0o755)
		fs.MkdirAll("/var/lib/pkg", 0o755)
		fs.MkdirAll("/tmp", 0o777)
	case "bare":
		return nil, fmt.Errorf("boards: bare-metal workloads have no filesystem image")
	default:
		return nil, fmt.Errorf("boards: unknown distribution %q", distro)
	}
	return fs, nil
}

// ProfileOpts parameterize device profiles that need external resources.
type ProfileOpts struct {
	// Fabric connects multi-node RTL simulations.
	Fabric *netsim.Fabric
	// ServerNode names the memory-server job for RDMA-backed profiles.
	ServerNode string
	// RemotePages sizes the PFA remote region.
	RemotePages int
}

// PFARemoteBase is the guest address where the remote-memory region starts.
const PFARemoteBase = 0x40000000

// DeviceProfile resolves a device-profile name (the workload's `spike`
// option, or the hardware configuration of an RTL simulation) into the
// drivers available on the simulated SoC. Profiles may be comma-separated.
//
// Known profiles:
//
//	pfa-spike  — PFA with the golden-model backend (emulated remote memory)
//	pfa-rdma   — PFA fetching over the network fabric from ServerNode
//	gemmini    — the matmul accelerator
func DeviceProfile(name string, opts ProfileOpts) ([]guestos.DriverSpec, error) {
	if name == "" {
		return nil, nil
	}
	pages := opts.RemotePages
	if pages == 0 {
		pages = 256
	}
	var drivers []guestos.DriverSpec
	for _, part := range strings.Split(name, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "pfa-spike", "pfa-golden":
			drivers = append(drivers, pfaDriver(&pfa.GoldenBackend{Latency: 1200}, pages))
		case "pfa-rdma":
			if opts.Fabric == nil || opts.ServerNode == "" {
				return nil, fmt.Errorf("boards: profile pfa-rdma needs a network fabric and server node")
			}
			drivers = append(drivers, pfaDriver(&pfa.NetBackend{Fabric: opts.Fabric, ServerNode: opts.ServerNode}, pages))
		case "gemmini", "gemmini-spike":
			drivers = append(drivers, guestos.DriverSpec{
				Name:       "gemmini",
				ConfigFlag: "ACCEL_GEMM",
				ModuleName: "gemmini",
				Attach: func(p sim.Platform) error {
					p.AddDevice(accel.New(accel.DefaultConfig()))
					return nil
				},
			})
		default:
			return nil, fmt.Errorf("boards: unknown device profile %q", part)
		}
	}
	return drivers, nil
}

func pfaDriver(backend pfa.Backend, pages int) guestos.DriverSpec {
	return guestos.DriverSpec{
		Name:       "pfa",
		ConfigFlag: "PFA",
		ModuleName: "pfa",
		Attach: func(p sim.Platform) error {
			d, err := pfa.NewDevice(pfa.DefaultTiming(), backend, PFARemoteBase, uint64(pages)*pfa.PageSize)
			if err != nil {
				return err
			}
			p.AddDevice(d)
			p.AddHook(d)
			return nil
		},
	}
}

// BaselineDriver returns the software-paging comparison driver (the
// emulated-PFA kernel path of §IV-A.2), gated by the same kernel option so
// identical workloads can be rerun against it.
func BaselineDriver(backend pfa.Backend, pages int) guestos.DriverSpec {
	if pages == 0 {
		pages = 256
	}
	return guestos.DriverSpec{
		Name:       "pfa-sw-baseline",
		ConfigFlag: "PFA",
		ModuleName: "pfa",
		Attach: func(p sim.Platform) error {
			b, err := pfa.NewBaseline(pfa.DefaultBaselineTiming(), backend, PFARemoteBase, uint64(pages)*pfa.PageSize)
			if err != nil {
				return err
			}
			p.AddHook(b)
			return nil
		},
	}
}
