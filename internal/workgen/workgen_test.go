package workgen

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/boards"
	"firemarshal/internal/netsim"
	"firemarshal/internal/pfa"
	"firemarshal/internal/sim"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/sim/rtlsim"
)

// runSource assembles and runs a generated program on a fresh functional
// platform with the given drivers/devices attached.
func runSource(t *testing.T, src string, setup func(p sim.Platform)) string {
	t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		t.Fatalf("assemble: %v\nsource:\n%s", err, numbered(src))
	}
	p := funcsim.New(funcsim.Config{})
	if setup != nil {
		setup(p)
	}
	var out bytes.Buffer
	res, err := p.Exec(exe, &out)
	if err != nil {
		t.Fatalf("exec: %v (out: %s)", err, out.String())
	}
	if res.Exit != 0 {
		t.Fatalf("exit = %d (out: %s)", res.Exit, out.String())
	}
	return out.String()
}

func numbered(src string) string {
	var b strings.Builder
	for i, line := range strings.Split(src, "\n") {
		fmt.Fprintf(&b, "%4d %s\n", i+1, line)
	}
	return b.String()
}

func TestIntSpeedSuiteShape(t *testing.T) {
	suite := IntSpeedSuite()
	if len(suite) != 10 {
		t.Fatalf("suite has %d benchmarks, want 10 (Listing 2)", len(suite))
	}
	names := map[string]bool{}
	for _, b := range suite {
		if !strings.HasSuffix(b.Name, "_s") {
			t.Errorf("name %q not intspeed-style", b.Name)
		}
		if names[b.Name] {
			t.Errorf("duplicate name %q", b.Name)
		}
		names[b.Name] = true
		if b.RefSeconds <= 0 {
			t.Errorf("%s: missing reference time", b.Name)
		}
	}
	if !names["600.perlbench_s"] || !names["657.xz_s"] {
		t.Error("suite must span 600.perlbench_s..657.xz_s")
	}
}

func TestIntSpeedBenchmarksRun(t *testing.T) {
	for _, b := range IntSpeedSuite() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			out := runSource(t, b.Source("test"), nil)
			fields := strings.Split(strings.TrimSpace(out), ",")
			if len(fields) != 3 || fields[0] != b.Name {
				t.Fatalf("output = %q, want \"<name>,<cycles>,<checksum>\"", out)
			}
		})
	}
}

func TestIntSpeedDeterministicChecksum(t *testing.T) {
	b := IntSpeedSuite()[0]
	out1 := runSource(t, b.Source("test"), nil)
	out2 := runSource(t, b.Source("test"), nil)
	// cycles (field 2) equal under funcsim; checksum (field 3) always.
	if out1 != out2 {
		t.Errorf("benchmark not deterministic: %q vs %q", out1, out2)
	}
}

func TestRefLargerThanTest(t *testing.T) {
	b := IntSpeedSuite()[2] // mcf
	exeT, _ := asm.Assemble(b.Source("test"), asm.Options{})
	exeR, _ := asm.Assemble(b.Source("ref"), asm.Options{})
	p := funcsim.New(funcsim.Config{})
	rt, err := p.Exec(exeT, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := p.Exec(exeR, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Instrs < 10*rt.Instrs {
		t.Errorf("ref dataset (%d instrs) should dwarf test (%d)", rr.Instrs, rt.Instrs)
	}
}

func TestSuiteDifferentiatesPredictors(t *testing.T) {
	// The branch-heavy benchmarks must show a bigger TAGE-vs-bimodal gap
	// than the compute benchmark — the property Fig. 6 relies on.
	run := func(name, pred string) uint64 {
		var bench Benchmark
		for _, b := range IntSpeedSuite() {
			if b.Name == name {
				bench = b
			}
		}
		exe, err := asm.Assemble(bench.Source("test"), asm.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cfg := rtlsim.DefaultConfig()
		cfg.Predictor = pred
		p, err := rtlsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Exec(exe, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	gap := func(name string) float64 {
		bim := run(name, "bimodal")
		tage := run(name, "tage")
		return float64(bim) / float64(tage)
	}
	branchy := gap("631.deepsjeng_s")
	compute := gap("625.x264_s")
	if branchy <= compute {
		t.Errorf("deepsjeng predictor gap (%.3f) should exceed x264's (%.3f)", branchy, compute)
	}
}

func TestPFAClientAgainstGoldenModel(t *testing.T) {
	drivers, err := boards.DeviceProfile("pfa-spike", boards.ProfileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out := runSource(t, PFAClientSource(4), func(p sim.Platform) {
		for _, d := range drivers {
			if err := d.Attach(p); err != nil {
				t.Fatal(err)
			}
		}
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "page,detect,walk,rdma,install,total" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 5 {
		t.Fatalf("want 4 data rows, got %d: %q", len(lines)-1, out)
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 6 {
			t.Fatalf("row %q", line)
		}
		if fields[0] != fmt.Sprint(i) {
			t.Errorf("row %d starts with %q", i, fields[0])
		}
		if fields[1] != "3" || fields[2] != "24" || fields[3] != "1200" || fields[4] != "8" {
			t.Errorf("per-step latencies wrong: %q", line)
		}
	}
}

func TestPFAServerRegistersWithNIC(t *testing.T) {
	fabric := netsim.New(netsim.DefaultConfig())
	out := runSource(t, PFAServerSource(8), func(p sim.Platform) {
		p.AddDevice(&netsim.NIC{Fabric: fabric, NodeName: "server"})
	})
	if !strings.Contains(out, "serve: ready") {
		t.Errorf("server output = %q", out)
	}
	if !fabric.HasNode("server") {
		t.Fatal("server did not register memory")
	}
	// The registered pattern must match the golden model byte-for-byte, so
	// Spike-vs-FireSim outputs agree (§IV-A methodology).
	data, _, err := fabric.RDMARead("server", 0x40000000+4096, 16)
	if err != nil {
		t.Fatal(err)
	}
	pageAddr := uint64(0x40000000 + 4096)
	for i, b := range data {
		want := byte(pageAddr>>12) ^ byte(i)
		if b != want {
			t.Fatalf("server byte %d = %#x, golden wants %#x", i, b, want)
		}
	}
}

func TestMatmulProgram(t *testing.T) {
	drivers, err := boards.DeviceProfile("gemmini", boards.ProfileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out := runSource(t, MatmulSource(16, 8), func(p sim.Platform) {
		for _, d := range drivers {
			d.Attach(p)
		}
	})
	if !strings.HasPrefix(out, "tile,8,cycles,") {
		t.Fatalf("output = %q", out)
	}
	// C[0][0] = sum_k A[0][k]*B[k][0] with A=i%7, B=i%5 patterns:
	// A[0][k] = k%7, B[k][0] = (k*16)%5.
	want := 0
	for k := 0; k < 16; k++ {
		want += (k % 7) * ((k * 16) % 5)
	}
	if !strings.Contains(out, fmt.Sprintf(",c0,%d\n", want)) {
		t.Errorf("checksum wrong: %q (want c0=%d)", out, want)
	}
}

func TestMatmulTilingVisibleToGuest(t *testing.T) {
	drivers, _ := boards.DeviceProfile("gemmini", boards.ProfileOpts{})
	cycles := func(tile int) string {
		out := runSource(t, MatmulSource(64, tile), func(p sim.Platform) {
			for _, d := range drivers {
				d.Attach(p)
			}
		})
		fields := strings.Split(strings.TrimSpace(out), ",")
		return fields[3]
	}
	if cycles(1) == cycles(16) {
		t.Error("tile size should change accelerator cycles")
	}
}

func TestHelloAndQuickstart(t *testing.T) {
	out := runSource(t, HelloSource("hi there\n"), nil)
	if out != "hi there\n" {
		t.Errorf("hello = %q", out)
	}
	out = runSource(t, QuickstartSource(), nil)
	if !strings.HasPrefix(out, "quickstart,") {
		t.Errorf("quickstart = %q", out)
	}
}

func TestBaselineClientRuns(t *testing.T) {
	// Attach the software-paging baseline driver manually.
	drv := boards.BaselineDriver(&pfa.GoldenBackend{Latency: 1200}, 16)
	out := runSource(t, PFABaselineClientSource(3), func(p sim.Platform) {
		if err := drv.Attach(p); err != nil {
			t.Fatal(err)
		}
	})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "page,total" || len(lines) != 4 {
		t.Fatalf("baseline output = %q", out)
	}
}
