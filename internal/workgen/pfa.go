package workgen

import "fmt"

// Guest-visible device addresses (kept in sync with the device models).
const (
	pfaMMIO    = 0x55000000
	nicMMIO    = 0x57000000
	remoteBase = 0x40000000
	accelMMIO  = 0x56000000
)

// PFAClientSource generates the latency microbenchmark of Listing 1: it
// measures "the latency of each step in a remote page fault" (§IV-A.2).
// For each of the given pages it provisions a free frame, touches the
// remote page (triggering a hardware-serviced fault), then reads the PFA's
// per-step latency counters and emits a CSV row:
//
//	page,detect,walk,rdma,install,total
//
// total is measured end-to-end with rdcycle around the faulting access.
func PFAClientSource(pages int) string {
	return fmt.Sprintf(`# PFA latency microbenchmark client (generated)
.equ PFA, %#x
.equ REMOTE, %#x
_start:
    li s0, 0            # page index
    li s1, %d           # pages
    li s2, PFA
    la a1, hdr
    li a2, 36
    li a0, 1
    li a7, 64
    ecall
page_loop:
    # kernel provisions a free frame (asynchronous in real life)
    addi t0, s0, 1
    sd t0, 0x00(s2)
    # compute the page address
    slli t1, s0, 12
    li t2, REMOTE
    add t1, t1, t2
    # timed first touch: the remote page fault
    rdcycle s4
    ld t3, 0(t1)
    rdcycle s5
    sub s5, s5, s4
    add s6, s6, t3       # consume data so the load is live
    # drain the new-page queue (kernel bookkeeping, off critical path)
    ld t4, 0x10(s2)
    # print: page,detect,walk,rdma,install,total
    mv a0, s0
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    ld a0, 0x20(s2)
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    ld a0, 0x28(s2)
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    ld a0, 0x30(s2)
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    ld a0, 0x38(s2)
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    mv a0, s5
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    addi s0, s0, 1
    blt s0, s1, page_loop
    li a0, 0
    li a7, 93
    ecall
.data
hdr: .ascii "page,detect,walk,rdma,install,total\n"
`, pfaMMIO, remoteBase, pages)
}

// PFABaselineClientSource generates the software-paging comparison: the
// same page touches, but with no PFA hardware — each fault is serviced by
// the emulated kernel paging path. Rows are "page,total".
func PFABaselineClientSource(pages int) string {
	return fmt.Sprintf(`# PFA baseline (software paging) client (generated)
.equ REMOTE, %#x
_start:
    li s0, 0
    li s1, %d
    la a1, hdr
    li a2, 11
    li a0, 1
    li a7, 64
    ecall
page_loop:
    slli t1, s0, 12
    li t2, REMOTE
    add t1, t1, t2
    rdcycle s4
    ld t3, 0(t1)
    rdcycle s5
    sub s5, s5, s4
    add s6, s6, t3
    mv a0, s0
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    mv a0, s5
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    addi s0, s0, 1
    blt s0, s1, page_loop
    li a0, 0
    li a7, 93
    ecall
.data
hdr: .ascii "page,total\n"
`, remoteBase, pages)
}

// PFAServerSource generates the bare-metal memory server of Listing 1 (the
// `serve` binary): it fills the remote region with the same deterministic
// pattern the Spike golden model emulates, registers the region with the
// RDMA NIC, and halts — after which the NIC serves fetches without CPU
// involvement.
func PFAServerSource(pages int) string {
	return fmt.Sprintf(`# PFA bare-metal memory server (generated)
.equ NIC, %#x
.equ REMOTE, %#x
_start:
    li s0, REMOTE
    li s1, %d           # pages
    li s2, 0            # page index
page_loop:
    slli t0, s2, 12
    add t0, t0, s0      # page base address
    srli t1, t0, 12     # golden pattern tag: byte(addr>>12)
    li t2, 0
    li t3, 4096
byte_loop:
    xor t4, t1, t2
    add t5, t0, t2
    sb t4, 0(t5)
    addi t2, t2, 1
    blt t2, t3, byte_loop
    addi s2, s2, 1
    blt s2, s1, page_loop
    # register [REMOTE, REMOTE+pages*4096) with the NIC
    li t0, NIC
    li t1, REMOTE
    sd t1, 0x00(t0)
    li t1, %d
    sd t1, 0x08(t0)
    sd t1, 0x10(t0)
    # announce readiness on the serial port
    la a1, msg
    li a2, 13
    li a0, 1
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
msg: .ascii "serve: ready\n"
`, nicMMIO, remoteBase, pages, pages*4096)
}

// MatmulSource generates the education assignment program (§IV-C): fill
// two n×n int32 matrices, run the accelerator with the given tile size,
// and print "tile,<tile>,cycles,<accelCycles>,c0,<C[0][0]>".
func MatmulSource(n, tile int) string {
	return fmt.Sprintf(`# education matmul (generated): n=%[1]d tile=%[2]d
.equ ACCEL, %#[3]x
_start:
    # fill A at bufA with i %% 7, B at bufB with i %% 5 (int32)
    la s0, bufA
    la s1, bufB
    li s2, %[4]d        # n*n
    li t0, 0
fill:
    li t2, 7
    remu t3, t0, t2
    slli t4, t0, 2
    add t5, s0, t4
    sw t3, 0(t5)
    li t2, 5
    remu t3, t0, t2
    add t5, s1, t4
    sw t3, 0(t5)
    addi t0, t0, 1
    blt t0, s2, fill
    # configure the accelerator
    li t0, ACCEL
    li t1, %[1]d
    sd t1, 0x00(t0)     # M
    sd t1, 0x08(t0)     # N
    sd t1, 0x10(t0)     # K
    la t1, bufA
    sd t1, 0x18(t0)
    la t1, bufB
    sd t1, 0x20(t0)
    la t1, bufC
    sd t1, 0x28(t0)
    li t1, %[2]d
    sd t1, 0x30(t0)     # tile
    sd t1, 0x38(t0)     # start
    # read results
    ld s3, 0x48(t0)     # accel cycles
    la t1, bufC
    lw s4, 0(t1)        # C[0][0]
    # print CSV
    la a1, row
    li a2, 5
    li a0, 1
    li a7, 64
    ecall
    li a0, %[2]d
    li a7, 0x101
    ecall
    la a1, cyc
    li a2, 8
    li a0, 1
    li a7, 64
    ecall
    mv a0, s3
    li a7, 0x101
    ecall
    la a1, c0
    li a2, 4
    li a0, 1
    li a7, 64
    ecall
    mv a0, s4
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
row: .ascii "tile,"
cyc: .ascii ",cycles,"
c0:  .ascii ",c0,"
    .align 3
bufA: .space %[5]d
bufB: .space %[5]d
bufC: .space %[5]d
`, n, tile, accelMMIO, n*n, n*n*4)
}
