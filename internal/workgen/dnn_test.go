package workgen

import (
	"strings"
	"testing"

	"firemarshal/internal/boards"
	"firemarshal/internal/sim"
)

func TestDNNInference(t *testing.T) {
	drivers, err := boards.DeviceProfile("gemmini", boards.ProfileOpts{})
	if err != nil {
		t.Fatal(err)
	}
	out := runSource(t, DNNInferenceSource(3, 16, 8), func(p sim.Platform) {
		for _, d := range drivers {
			if err := d.Attach(p); err != nil {
				t.Fatal(err)
			}
		}
	})
	if !strings.HasPrefix(out, "dnn,3,16,accel_cycles,") {
		t.Fatalf("output = %q", out)
	}
	fields := strings.Split(strings.TrimSpace(out), ",")
	if len(fields) != 7 {
		t.Fatalf("fields = %v", fields)
	}
	if fields[4] == "0" {
		t.Error("accelerator cycles missing")
	}
	// ReLU guarantees a non-negative final activation.
	if strings.HasPrefix(fields[6], "-") {
		t.Errorf("out0 = %s, ReLU output cannot be negative", fields[6])
	}
}

func TestDNNDeterministic(t *testing.T) {
	drivers, _ := boards.DeviceProfile("gemmini", boards.ProfileOpts{})
	attach := func(p sim.Platform) {
		for _, d := range drivers {
			d.Attach(p)
		}
	}
	a := runSource(t, DNNInferenceSource(2, 8, 4), attach)
	b := runSource(t, DNNInferenceSource(2, 8, 4), attach)
	if a != b {
		t.Errorf("dnn inference not deterministic: %q vs %q", a, b)
	}
}
