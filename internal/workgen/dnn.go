package workgen

import (
	"fmt"
	"strings"
)

// DNNInferenceSource generates the ONNX-runtime-style inference benchmark
// the paper lists among the available workloads ("the ONNX-runtime deep
// learning framework", §IV-B): a multi-layer perceptron forward pass where
// each layer is a matmul offloaded to the Gemmini-style accelerator
// followed by a ReLU applied on the core. Output:
//
//	dnn,<layers>,<n>,accel_cycles,<sum>,out0,<activation[0]>
func DNNInferenceSource(layers, n, tile int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `# DNN inference (generated): %d layers of %dx%d matmul + ReLU
.equ ACCEL, %#x
_start:
    # fill the input activation (i %% 9 - 4: mixed signs for ReLU)
    la s0, actA
    li s1, %d          # n*n
    li t0, 0
fill_in:
    li t1, 9
    remu t2, t0, t1
    addi t2, t2, -4
    slli t3, t0, 2
    add t3, t3, s0
    sw t2, 0(t3)
    addi t0, t0, 1
    blt t0, s1, fill_in
    # fill the (shared) weight matrix (i %% 5 - 2)
    la s0, weights
    li t0, 0
fill_w:
    li t1, 5
    remu t2, t0, t1
    addi t2, t2, -2
    slli t3, t0, 2
    add t3, t3, s0
    sw t2, 0(t3)
    addi t0, t0, 1
    blt t0, s1, fill_w

    li s4, 0            # accumulated accelerator cycles
    li s5, 0            # layer counter
layer_loop:
    # C = A x W on the accelerator
    li t0, ACCEL
    li t1, %d
    sd t1, 0x00(t0)     # M = n
    sd t1, 0x08(t0)     # N = n
    sd t1, 0x10(t0)     # K = n
    la t1, actA
    sd t1, 0x18(t0)
    la t1, weights
    sd t1, 0x20(t0)
    la t1, actB
    sd t1, 0x28(t0)
    li t1, %d
    sd t1, 0x30(t0)     # tile
    sd t1, 0x38(t0)     # start
    ld t2, 0x48(t0)     # accel cycles
    add s4, s4, t2
    # ReLU on the core: actA[i] = max(actB[i], 0)
    la t0, actB
    la t1, actA
    li t2, 0
relu:
    slli t3, t2, 2
    add t4, t0, t3
    lw t5, 0(t4)
    bgez t5, relu_pos
    li t5, 0
relu_pos:
    add t4, t1, t3
    sw t5, 0(t4)
    addi t2, t2, 1
    blt t2, s1, relu
    addi s5, s5, 1
    li t0, %d
    blt s5, t0, layer_loop

    # report
    la a1, tag
    li a2, 4
    li a0, 1
    li a7, 64
    ecall
    li a0, %d
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    li a0, %d
    li a7, 0x101
    ecall
    la a1, f1
    li a2, 14
    li a0, 1
    li a7, 64
    ecall
    mv a0, s4
    li a7, 0x101
    ecall
    la a1, f2
    li a2, 6
    li a0, 1
    li a7, 64
    ecall
    la t0, actA
    lw a0, 0(t0)
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
tag: .ascii "dnn,"
f1:  .ascii ",accel_cycles,"
f2:  .ascii ",out0,"
    .align 3
actA:    .space %d
actB:    .space %d
weights: .space %d
`, layers, n, n, accelMMIO, n*n, n, tile, layers, layers, n, n*n*4, n*n*4, n*n*4)
	return b.String()
}
