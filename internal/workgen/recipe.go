// Recipe is the structured form of a generated workload: instead of going
// straight from a seed to assembly text, generation first produces a list
// of parameterized kernel instances. The indirection is what makes the
// verification farm possible — a recipe can be mutated toward coverage
// gaps, minimized kernel-by-kernel into a repro, serialized into the CAS,
// and always re-emitted into byte-identical assembly.
//
// RandomRecipe draws from the generator RNG in exactly the order the old
// RandomSource did, so RandomSource(seed) == RandomRecipe(seed).Source()
// for every seed (locked by TestRecipeMatchesRandomSource) and the
// differential suites' pinned seeds keep their exact workloads.
package workgen

import (
	"fmt"
	"math/rand"
)

// KernelKind identifies one generator from the kernel library.
type KernelKind int

const (
	KPatternBranch KernelKind = iota
	KPointerChase
	KStreamSum
	KALU
	KDivide
	KStoreFill
	KLoopHeavy
	NumKernelKinds // count sentinel, not a kind
)

// String names a kind for manifests and logs.
func (k KernelKind) String() string {
	switch k {
	case KPatternBranch:
		return "pattern-branch"
	case KPointerChase:
		return "pointer-chase"
	case KStreamSum:
		return "stream-sum"
	case KALU:
		return "alu"
	case KDivide:
		return "divide"
	case KStoreFill:
		return "store-fill"
	case KLoopHeavy:
		return "loop-heavy"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Kernel is one parameterized kernel instance. A and B are the two shape
// parameters in the order the kernel's emit method takes them (iterations
// then table size, outer then inner, ...); Seed feeds data-table
// generation for the kinds that have one; Flag selects the ALU kernel's
// multiply variant.
type Kernel struct {
	Kind KernelKind `json:"kind"`
	A    int        `json:"a"`
	B    int        `json:"b,omitempty"`
	Seed int64      `json:"seed,omitempty"`
	Flag bool       `json:"flag,omitempty"`
}

// kernelMin holds the smallest legal A/B per kind; mutation and
// minimization clamp against it so a shrunken recipe still assembles and
// terminates. Randomly drawn parameters always sit above these floors.
var kernelMin = [NumKernelKinds]Kernel{
	KPatternBranch: {A: 1, B: 1},
	KPointerChase:  {A: 1, B: 1},
	KStreamSum:     {A: 1, B: 1},
	KALU:           {A: 1},
	KDivide:        {A: 1},
	KStoreFill:     {A: 1, B: 1},
	KLoopHeavy:     {A: 1, B: 1},
}

// Clamped returns the kernel with A/B raised to their legal minimums.
func (k Kernel) Clamped() Kernel {
	if int(k.Kind) < 0 || k.Kind >= NumKernelKinds {
		k.Kind = KALU
	}
	min := kernelMin[k.Kind]
	if k.A < min.A {
		k.A = min.A
	}
	if k.B < min.B {
		k.B = min.B
	}
	return k
}

// emit appends the kernel to a program under construction.
func (k Kernel) emit(p *program) {
	k = k.Clamped()
	switch k.Kind {
	case KPatternBranch:
		p.patternBranch(k.A, k.B, k.Seed)
	case KPointerChase:
		p.pointerChase(k.A, k.B, k.Seed)
	case KStreamSum:
		p.streamSum(k.A, k.B)
	case KALU:
		p.alu(k.A, k.Flag)
	case KDivide:
		p.divide(k.A)
	case KStoreFill:
		p.storeFill(k.A, k.B)
	case KLoopHeavy:
		p.loopHeavy(k.A, k.B)
	}
}

// Recipe is a complete workload: an ordered list of kernels plus the name
// baked into the program's output line.
type Recipe struct {
	Name    string   `json:"name"`
	Seed    int64    `json:"seed,omitempty"`
	Kernels []Kernel `json:"kernels"`
}

// Source emits the recipe as assembly text. Emission is pure: the same
// recipe value always yields byte-identical source.
func (r Recipe) Source() string {
	p := newProgram(r.Name)
	for _, k := range r.Kernels {
		k.emit(p)
	}
	return p.emit()
}

// Clone returns a deep copy (the kernel slice is not shared).
func (r Recipe) Clone() Recipe {
	r.Kernels = append([]Kernel(nil), r.Kernels...)
	return r
}

// randomKernel draws one kernel. The switch arm draw order replicates the
// original RandomSource exactly — one Intn for the kind, then the kind's
// parameter draws in argument order — so seeds keep their workloads.
func randomKernel(rng *rand.Rand) Kernel {
	switch KernelKind(rng.Intn(int(NumKernelKinds))) {
	case KPatternBranch:
		return Kernel{Kind: KPatternBranch, A: 200 + rng.Intn(800), B: 4 + rng.Intn(60), Seed: rng.Int63()}
	case KPointerChase:
		return Kernel{Kind: KPointerChase, A: 200 + rng.Intn(800), B: 16 + rng.Intn(240), Seed: rng.Int63()}
	case KStreamSum:
		return Kernel{Kind: KStreamSum, A: 2 + rng.Intn(8), B: 16 + rng.Intn(200)}
	case KALU:
		return Kernel{Kind: KALU, A: 300 + rng.Intn(1000), Flag: rng.Intn(2) == 0}
	case KDivide:
		return Kernel{Kind: KDivide, A: 100 + rng.Intn(300)}
	case KStoreFill:
		return Kernel{Kind: KStoreFill, A: 2 + rng.Intn(6), B: 8 + rng.Intn(100)}
	default:
		return Kernel{Kind: KLoopHeavy, A: 2 + rng.Intn(16), B: 8 + rng.Intn(56)}
	}
}

// KernelOfKind draws a kernel of a specific kind with the same parameter
// distributions randomKernel uses — the coverage-guided mutator's way of
// steering generation toward kinds the corpus has not exercised.
func KernelOfKind(rng *rand.Rand, kind KernelKind) Kernel {
	switch kind {
	case KPatternBranch:
		return Kernel{Kind: KPatternBranch, A: 200 + rng.Intn(800), B: 4 + rng.Intn(60), Seed: rng.Int63()}
	case KPointerChase:
		return Kernel{Kind: KPointerChase, A: 200 + rng.Intn(800), B: 16 + rng.Intn(240), Seed: rng.Int63()}
	case KStreamSum:
		return Kernel{Kind: KStreamSum, A: 2 + rng.Intn(8), B: 16 + rng.Intn(200)}
	case KALU:
		return Kernel{Kind: KALU, A: 300 + rng.Intn(1000), Flag: rng.Intn(2) == 0}
	case KDivide:
		return Kernel{Kind: KDivide, A: 100 + rng.Intn(300)}
	case KStoreFill:
		return Kernel{Kind: KStoreFill, A: 2 + rng.Intn(6), B: 8 + rng.Intn(100)}
	default:
		return Kernel{Kind: KLoopHeavy, A: 2 + rng.Intn(16), B: 8 + rng.Intn(56)}
	}
}

// RandomRecipe returns the deterministic pseudo-random recipe for a seed:
// 2–4 kernels drawn from the library. Same seed, same recipe, always.
func RandomRecipe(seed int64) Recipe {
	rng := rand.New(rand.NewSource(seed))
	r := Recipe{Name: fmt.Sprintf("fuzz%04x", uint16(seed)), Seed: seed}
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		r.Kernels = append(r.Kernels, randomKernel(rng))
	}
	return r
}

// Mutate returns a mutated copy of the recipe, drawing every decision
// from rng (deterministic under a fixed rng state). When bias is
// non-empty, kernel-kind draws come from it — the farm passes the kinds
// its coverage model reports as unexercised, steering the corpus toward
// gaps. Mutations: replace a kernel, append one (capped at 6), drop one
// (floor 1), or perturb one kernel's parameters in place.
func (r Recipe) Mutate(rng *rand.Rand, bias []KernelKind) Recipe {
	out := r.Clone()
	pick := func() KernelKind {
		if len(bias) > 0 {
			return bias[rng.Intn(len(bias))]
		}
		return KernelKind(rng.Intn(int(NumKernelKinds)))
	}
	switch op := rng.Intn(4); {
	case op == 0 && len(out.Kernels) > 0: // replace
		out.Kernels[rng.Intn(len(out.Kernels))] = KernelOfKind(rng, pick())
	case op == 1 && len(out.Kernels) < 6: // append
		out.Kernels = append(out.Kernels, KernelOfKind(rng, pick()))
	case op == 2 && len(out.Kernels) > 1: // drop
		i := rng.Intn(len(out.Kernels))
		out.Kernels = append(out.Kernels[:i], out.Kernels[i+1:]...)
	default: // perturb parameters
		if len(out.Kernels) == 0 {
			out.Kernels = append(out.Kernels, KernelOfKind(rng, pick()))
			break
		}
		k := &out.Kernels[rng.Intn(len(out.Kernels))]
		k.A = 1 + rng.Intn(2*k.A+1)
		if k.B > 0 {
			k.B = 1 + rng.Intn(2*k.B+1)
		}
		if k.Seed != 0 {
			k.Seed = rng.Int63()
		}
		*k = k.Clamped()
	}
	return out
}
