package workgen

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// legacyRandomSource is the pre-recipe generator, kept verbatim as the
// compatibility oracle: RandomRecipe must draw from the RNG in exactly
// this order or every pinned differential seed changes workload.
func legacyRandomSource(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	p := newProgram(randName(seed))
	n := 2 + rng.Intn(3)
	for i := 0; i < n; i++ {
		switch rng.Intn(7) {
		case 0:
			p.patternBranch(200+rng.Intn(800), 4+rng.Intn(60), rng.Int63())
		case 1:
			p.pointerChase(200+rng.Intn(800), 16+rng.Intn(240), rng.Int63())
		case 2:
			p.streamSum(2+rng.Intn(8), 16+rng.Intn(200))
		case 3:
			p.alu(300+rng.Intn(1000), rng.Intn(2) == 0)
		case 4:
			p.divide(100 + rng.Intn(300))
		case 5:
			p.storeFill(2+rng.Intn(6), 8+rng.Intn(100))
		case 6:
			p.loopHeavy(2+rng.Intn(16), 8+rng.Intn(56))
		}
	}
	return p.emit()
}

func randName(seed int64) string { return RandomRecipe(seed).Name }

func TestRecipeMatchesRandomSource(t *testing.T) {
	for seed := int64(0); seed < 500; seed++ {
		if got, want := RandomSource(seed), legacyRandomSource(seed); got != want {
			t.Fatalf("seed %d: RandomSource diverged from legacy generator\ngot:\n%s\nwant:\n%s", seed, got, want)
		}
	}
}

func TestRecipeSourceDeterministic(t *testing.T) {
	for seed := int64(1); seed < 50; seed++ {
		r := RandomRecipe(seed)
		if a, b := r.Source(), RandomRecipe(seed).Source(); a != b {
			t.Fatalf("seed %d: two emissions differ", seed)
		}
	}
}

func TestRecipeJSONRoundTrip(t *testing.T) {
	r := RandomRecipe(42)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Recipe
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Source() != r.Source() {
		t.Fatal("JSON round-trip changed emitted source")
	}
}

func TestMutateDeterministicAndValid(t *testing.T) {
	base := RandomRecipe(7)
	bias := []KernelKind{KLoopHeavy, KDivide}
	a := base.Mutate(rand.New(rand.NewSource(99)), bias)
	b := base.Mutate(rand.New(rand.NewSource(99)), bias)
	if a.Source() != b.Source() {
		t.Fatal("Mutate is not deterministic under a fixed rng")
	}
	// The base recipe must not be aliased by the mutant.
	if &a.Kernels[0] == &base.Kernels[0] {
		t.Fatal("Mutate shares the kernel slice with its input")
	}
	// Many mutations in sequence stay emittable and within bounds.
	rng := rand.New(rand.NewSource(3))
	r := base
	for i := 0; i < 200; i++ {
		r = r.Mutate(rng, bias)
		if len(r.Kernels) < 1 || len(r.Kernels) > 6 {
			t.Fatalf("mutation %d: kernel count %d out of bounds", i, len(r.Kernels))
		}
		for _, k := range r.Kernels {
			c := k.Clamped()
			if c != k {
				t.Fatalf("mutation %d: kernel %+v below legal minimums", i, k)
			}
		}
		if r.Source() == "" {
			t.Fatalf("mutation %d: empty source", i)
		}
	}
}

func TestKernelOfKindCoversLibrary(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for kind := KernelKind(0); kind < NumKernelKinds; kind++ {
		k := KernelOfKind(rng, kind)
		if k.Kind != kind {
			t.Fatalf("KernelOfKind(%v) returned kind %v", kind, k.Kind)
		}
		r := Recipe{Name: "t", Kernels: []Kernel{k}}
		if r.Source() == "" {
			t.Fatalf("kind %v emits empty source", kind)
		}
	}
}
