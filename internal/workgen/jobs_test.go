package workgen

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"firemarshal/internal/asm"
)

func TestParallelJobsDeterministic(t *testing.T) {
	a := ParallelJobs(12, "test")
	b := ParallelJobs(12, "test")
	if len(a) != 12 {
		t.Fatalf("len = %d", len(a))
	}
	suite := IntSpeedSuite()
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("job %d not deterministic", i)
		}
		if want := suite[i%len(suite)].Name; a[i].Bench != want {
			t.Errorf("job %d bench = %s, want %s (round-robin)", i, a[i].Bench, want)
		}
		if _, err := asm.Assemble(a[i].Source, asm.Options{}); err != nil {
			t.Errorf("job %d (%s) does not assemble: %v", i, a[i].Bench, err)
		}
	}
	if a[0].Name != "job00" || a[11].Name != "job11" {
		t.Errorf("names = %s..%s", a[0].Name, a[11].Name)
	}
}

func TestEmitParallelWorkload(t *testing.T) {
	dir := t.TempDir()
	path, err := EmitParallelWorkload(dir, 3, "test")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Name    string `json:"name"`
		Base    string `json:"base"`
		Overlay string `json:"overlay"`
		Jobs    []struct {
			Name    string `json:"name"`
			Command string `json:"command"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("emitted workload is not valid JSON: %v", err)
	}
	if doc.Name != "parjobs" || doc.Base != "br-base" || len(doc.Jobs) != 3 {
		t.Errorf("workload = %+v", doc)
	}
	for i, j := range doc.Jobs {
		bin := filepath.Join(dir, doc.Overlay, "parjobs", j.Name)
		info, err := os.Stat(bin)
		if err != nil {
			t.Errorf("job %d binary missing: %v", i, err)
			continue
		}
		if info.Mode()&0o111 == 0 {
			t.Errorf("job %d binary not executable", i)
		}
		if want := "/parjobs/" + j.Name; j.Command != want {
			t.Errorf("job %d command = %q, want %q", i, j.Command, want)
		}
	}

	if _, err := EmitParallelWorkload(dir, 0, "test"); err == nil {
		t.Error("expected error for 0 jobs")
	}
}
