package workgen

import "fmt"

// Benchmark is one generated benchmark program.
type Benchmark struct {
	// Name matches SPEC2017 intspeed naming (Listing 2).
	Name string
	// RefSeconds is the reference runtime used for the SPEC-style score
	// (score = RefSeconds / measured seconds). Values are scaled-down
	// stand-ins for the suite's reference machine times.
	RefSeconds float64
	// Source generates the assembly for a dataset scale: "test" (short)
	// or "ref" (the reference dataset of §IV-B).
	Source func(dataset string) string
}

func scale(dataset string, ref int) int {
	if dataset == "test" {
		n := ref / 50
		if n < 100 {
			n = 100
		}
		return n
	}
	return ref
}

// IntSpeedSuite returns the ten intspeed benchmarks (Listing 2: "In total,
// there are 10 jobs, one for each benchmark in the suite"). Each has a
// distinct branch/memory character so microarchitectural choices (Gshare
// vs TAGE, cache geometry) separate them the way the real suite does.
func IntSpeedSuite() []Benchmark {
	return []Benchmark{
		{
			// Interpreter: long pseudo-random branch patterns with a
			// long-period structure — strong TAGE territory.
			Name: "600.perlbench_s", RefSeconds: 0.00786,
			Source: func(ds string) string {
				p := newProgram("600.perlbench_s")
				p.patternBranch(scale(ds, 140_000), 96, 600)
				p.patternBranch(scale(ds, 90_000), 48, 601)
				p.alu(scale(ds, 30_000), false)
				return p.emit()
			},
		},
		{
			// Compiler: many branches of mixed periods plus pointer data.
			Name: "602.gcc_s", RefSeconds: 0.00624,
			Source: func(ds string) string {
				p := newProgram("602.gcc_s")
				p.patternBranch(scale(ds, 100_000), 24, 602)
				p.pointerChase(scale(ds, 40_000), 2048, 602)
				p.patternBranch(scale(ds, 60_000), 7, 603)
				return p.emit()
			},
		},
		{
			// mcf: cache-hostile pointer chasing dominates.
			Name: "605.mcf_s", RefSeconds: 0.00482,
			Source: func(ds string) string {
				p := newProgram("605.mcf_s")
				p.pointerChase(scale(ds, 150_000), 8192, 605)
				p.patternBranch(scale(ds, 20_000), 12, 605)
				return p.emit()
			},
		},
		{
			// Discrete event simulation: medium-period branches + queues.
			Name: "620.omnetpp_s", RefSeconds: 0.00428,
			Source: func(ds string) string {
				p := newProgram("620.omnetpp_s")
				p.patternBranch(scale(ds, 80_000), 160, 620)
				p.pointerChase(scale(ds, 50_000), 4096, 620)
				return p.emit()
			},
		},
		{
			// XML: branchy with structured (learnable) patterns.
			Name: "623.xalancbmk_s", RefSeconds: 0.00467,
			Source: func(ds string) string {
				p := newProgram("623.xalancbmk_s")
				p.patternBranch(scale(ds, 120_000), 8, 623)
				p.streamSum(scale(ds, 60), 1024)
				return p.emit()
			},
		},
		{
			// Video encode: compute-dominated, multiply-heavy.
			Name: "625.x264_s", RefSeconds: 0.00308,
			Source: func(ds string) string {
				p := newProgram("625.x264_s")
				p.alu(scale(ds, 160_000), true)
				p.streamSum(scale(ds, 40), 2048)
				return p.emit()
			},
		},
		{
			// Chess: deep correlated branch history (alpha-beta).
			Name: "631.deepsjeng_s", RefSeconds: 0.00690,
			Source: func(ds string) string {
				p := newProgram("631.deepsjeng_s")
				p.patternBranch(scale(ds, 150_000), 64, 631)
				p.patternBranch(scale(ds, 50_000), 128, 632)
				return p.emit()
			},
		},
		{
			// Go engine: mixed branches and memory.
			Name: "641.leela_s", RefSeconds: 0.00350,
			Source: func(ds string) string {
				p := newProgram("641.leela_s")
				p.patternBranch(scale(ds, 70_000), 40, 641)
				p.pointerChase(scale(ds, 30_000), 1024, 641)
				p.alu(scale(ds, 50_000), true)
				return p.emit()
			},
		},
		{
			// Puzzle solver: tight predictable loops, no memory pressure.
			Name: "648.exchange2_s", RefSeconds: 0.00420,
			Source: func(ds string) string {
				p := newProgram("648.exchange2_s")
				p.alu(scale(ds, 180_000), false)
				p.patternBranch(scale(ds, 40_000), 4, 648)
				return p.emit()
			},
		},
		{
			// Compression: division/arithmetic plus streaming memory.
			Name: "657.xz_s", RefSeconds: 0.00930,
			Source: func(ds string) string {
				p := newProgram("657.xz_s")
				p.divide(scale(ds, 25_000))
				p.streamSum(scale(ds, 80), 4096)
				p.patternBranch(scale(ds, 40_000), 20, 657)
				return p.emit()
			},
		},
	}
}

// IntSpeedRunScript generates the guest intspeed.sh dispatcher of Listing 2
// ("/intspeed.sh 600.perlbench_s --threads 1"): it runs the named
// benchmark binary and appends its CSV line to /output/results.csv.
func IntSpeedRunScript() string {
	return `# intspeed dispatcher (generated)
/spec/bin/$1 >> /output/results.csv
`
}

// QuickstartSource is a minimal first workload: prints a greeting and a
// deterministic sum.
func QuickstartSource() string {
	p := newProgram("quickstart")
	p.alu(1000, false)
	src := p.emit()
	return src
}

// helloSource returns a tiny console program used by examples.
func HelloSource(msg string) string {
	return fmt.Sprintf(`
_start:
    la a1, msg
    li a2, %d
    li a0, 1
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
.data
msg: .ascii %q
`, len(msg), msg)
}
