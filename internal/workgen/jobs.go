package workgen

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
)

// ParallelJob is one generated job of an N-job benchmark workload.
type ParallelJob struct {
	// Name is the job name (job00, job01, ...), unique within the
	// workload even when benchmarks repeat.
	Name string
	// Bench is the intspeed benchmark the program is drawn from.
	Bench string
	// Source is the generated assembly.
	Source string
}

// ParallelJobs returns n deterministic benchmark programs drawn
// round-robin from the intspeed suite. It is the single generator behind
// `workgen -jobs N`, the parallel-speedup demo, and the launcher's
// determinism tests — Case Study B runs exactly this shape of workload,
// "one per benchmark in the suite" (§IV-B.1), as parallel simulations.
func ParallelJobs(n int, dataset string) []ParallelJob {
	suite := IntSpeedSuite()
	out := make([]ParallelJob, n)
	for i := range out {
		b := suite[i%len(suite)]
		out[i] = ParallelJob{
			Name:   fmt.Sprintf("job%02d", i),
			Bench:  b.Name,
			Source: b.Source(dataset),
		}
	}
	return out
}

// EmitParallelWorkload writes an n-job workload into dir: assembled
// benchmark binaries under overlay-parjobs/parjobs and a parjobs.json
// workload whose jobs each run one binary (each prints
// "<bench>,<cycles>,<checksum>" to its own uartlog). It returns the
// workload file path; launch it with `marshal launch -j N parjobs`.
func EmitParallelWorkload(dir string, n int, dataset string) (string, error) {
	if n < 1 {
		return "", fmt.Errorf("workgen: jobs must be >= 1, got %d", n)
	}
	binDir := filepath.Join(dir, "overlay-parjobs", "parjobs")
	if err := os.MkdirAll(binDir, 0o755); err != nil {
		return "", err
	}
	var jobLines []string
	for _, j := range ParallelJobs(n, dataset) {
		exe, err := asm.Assemble(j.Source, asm.Options{})
		if err != nil {
			return "", fmt.Errorf("workgen: assembling %s (%s): %w", j.Name, j.Bench, err)
		}
		if err := os.WriteFile(filepath.Join(binDir, j.Name), isa.EncodeExecutable(exe), 0o755); err != nil {
			return "", err
		}
		jobLines = append(jobLines, fmt.Sprintf(
			`    { "name": %q, "command": "/parjobs/%s" }`, j.Name, j.Name))
	}
	doc := fmt.Sprintf(`{
  "name": "parjobs",
  "base": "br-base",
  "overlay": "overlay-parjobs",
  "jobs": [
%s
  ]
}
`, strings.Join(jobLines, ",\n"))
	path := filepath.Join(dir, "parjobs.json")
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		return "", err
	}
	return path, nil
}
