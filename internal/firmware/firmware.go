// Package firmware models the supervisor binary interface firmware a
// RISC-V system boots through (§III-A.2): either OpenSBI or the Berkeley
// Boot Loader (bbl). The build step links the firmware with the compiled
// kernel into the final boot binary (Fig. 3) — the single artifact every
// simulator consumes. Bare-metal workloads use a raw executable payload
// instead of a kernel.
package firmware

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"strings"

	"firemarshal/internal/hostutil"
	"firemarshal/internal/kernel"
)

// Kinds of supported firmware.
const (
	KindOpenSBI = "opensbi"
	KindBBL     = "bbl"
)

// Versions reported by the firmware banners.
var versions = map[string]string{
	KindOpenSBI: "0.9",
	KindBBL:     "1.0.0",
}

// BootBinary is the complete boot artifact: firmware + payload.
type BootBinary struct {
	// Kind is the firmware implementation.
	Kind string
	// Version of the firmware.
	Version string
	// BuildArgs are the firmware build options (recorded for identity).
	BuildArgs []string
	// Kernel is the Linux payload (nil for bare-metal binaries).
	Kernel *kernel.Image
	// BareExe is the raw MEX1 executable for bare-metal workloads.
	BareExe []byte
}

// Build links firmware of the given kind with a kernel payload.
func Build(kind string, args []string, kimg *kernel.Image) (*BootBinary, error) {
	if kind == "" {
		kind = KindOpenSBI
	}
	v, ok := versions[kind]
	if !ok {
		return nil, fmt.Errorf("firmware: unknown kind %q (want %s or %s)", kind, KindOpenSBI, KindBBL)
	}
	if kimg == nil {
		return nil, fmt.Errorf("firmware: nil kernel payload")
	}
	return &BootBinary{Kind: kind, Version: v, BuildArgs: args, Kernel: kimg}, nil
}

// BuildBare wraps a bare-metal executable (already linked by host-init)
// into a boot binary without firmware or kernel.
func BuildBare(exe []byte) *BootBinary {
	return &BootBinary{Kind: "bare", BareExe: exe}
}

// IsBare reports whether the binary is a bare-metal workload.
func (b *BootBinary) IsBare() bool { return b.Kernel == nil }

// Banner returns the console lines the firmware prints at reset.
func (b *BootBinary) Banner() []string {
	switch b.Kind {
	case KindOpenSBI:
		return []string{
			fmt.Sprintf("OpenSBI v%s", b.Version),
			"Platform Name       : firemarshal-sim,chipyard",
			"Boot HART ISA       : rv64im",
		}
	case KindBBL:
		return []string{fmt.Sprintf("bbl loader v%s", b.Version)}
	default:
		return nil
	}
}

// BootCostCycles models the firmware initialization time.
func (b *BootBinary) BootCostCycles() uint64 {
	switch b.Kind {
	case KindOpenSBI:
		return 90_000
	case KindBBL:
		return 60_000
	default:
		return 0
	}
}

// Hash fingerprints the boot binary.
func (b *BootBinary) Hash() string {
	parts := []string{b.Kind, b.Version, strings.Join(b.BuildArgs, "\x00")}
	if b.Kernel != nil {
		parts = append(parts, b.Kernel.Hash())
	}
	if b.BareExe != nil {
		parts = append(parts, hostutil.HashBytes(b.BareExe))
	}
	return hostutil.HashStrings(parts...)
}

type header struct {
	Kind      string   `json:"kind"`
	Version   string   `json:"version"`
	BuildArgs []string `json:"buildArgs,omitempty"`
	HasKernel bool     `json:"hasKernel"`
}

var magic = [4]byte{'M', 'B', 'B', '1'}

// Encode serializes the boot binary.
func (b *BootBinary) Encode() ([]byte, error) {
	hdr, err := json.Marshal(header{Kind: b.Kind, Version: b.Version, BuildArgs: b.BuildArgs, HasKernel: b.Kernel != nil})
	if err != nil {
		return nil, err
	}
	var payload []byte
	if b.Kernel != nil {
		payload, err = b.Kernel.Encode()
		if err != nil {
			return nil, err
		}
	} else {
		payload = b.BareExe
	}
	var buf bytes.Buffer
	buf.Write(magic[:])
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(hdr)))
	buf.Write(n[:])
	buf.Write(hdr)
	buf.Write(payload)
	return buf.Bytes(), nil
}

// Decode parses a boot binary. It also accepts a raw MEX1 executable,
// treating it as a bare-metal workload — users may hard-code a boot binary
// "generally a bare-metal workload generated in host-init" (§III-B.4).
func Decode(data []byte) (*BootBinary, error) {
	if len(data) >= 4 && bytes.Equal(data[:4], []byte("MEX1")) {
		return BuildBare(data), nil
	}
	if len(data) < 8 || !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("firmware: bad boot binary magic")
	}
	hlen := int(binary.LittleEndian.Uint32(data[4:8]))
	if 8+hlen > len(data) {
		return nil, fmt.Errorf("firmware: truncated boot binary header")
	}
	var hdr header
	if err := json.Unmarshal(data[8:8+hlen], &hdr); err != nil {
		return nil, fmt.Errorf("firmware: bad boot binary header: %w", err)
	}
	b := &BootBinary{Kind: hdr.Kind, Version: hdr.Version, BuildArgs: hdr.BuildArgs}
	payload := data[8+hlen:]
	if hdr.HasKernel {
		kimg, err := kernel.Decode(payload)
		if err != nil {
			return nil, err
		}
		b.Kernel = kimg
	} else {
		b.BareExe = append([]byte(nil), payload...)
	}
	return b, nil
}
