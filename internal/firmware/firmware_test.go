package firmware

import (
	"strings"
	"testing"

	"firemarshal/internal/kernel"
)

func kimg(t *testing.T) *kernel.Image {
	t.Helper()
	img, err := kernel.Build(kernel.BuildOpts{})
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestBuildOpenSBI(t *testing.T) {
	b, err := Build(KindOpenSBI, nil, kimg(t))
	if err != nil {
		t.Fatal(err)
	}
	if b.IsBare() {
		t.Error("kernel boot binary should not be bare")
	}
	banner := strings.Join(b.Banner(), "\n")
	if !strings.Contains(banner, "OpenSBI v0.9") {
		t.Errorf("banner = %q", banner)
	}
	if b.BootCostCycles() == 0 {
		t.Error("firmware boot must cost cycles")
	}
}

func TestBuildBBL(t *testing.T) {
	b, err := Build(KindBBL, []string{"--with-payload"}, kimg(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.Banner()[0], "bbl") {
		t.Errorf("banner = %v", b.Banner())
	}
	// bbl and OpenSBI must produce different artifacts for the same kernel.
	o, _ := Build(KindOpenSBI, nil, kimg(t))
	if o.Hash() == b.Hash() {
		t.Error("firmware kind must affect the boot binary hash")
	}
}

func TestDefaultsToOpenSBI(t *testing.T) {
	b, err := Build("", nil, kimg(t))
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind != KindOpenSBI {
		t.Errorf("kind = %q", b.Kind)
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := Build("uboot", nil, kimg(t)); err == nil {
		t.Error("expected error for unknown firmware")
	}
	if _, err := Build(KindOpenSBI, nil, nil); err == nil {
		t.Error("expected error for nil kernel")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	b, _ := Build(KindOpenSBI, []string{"FW_TEXT_START=0x80000000"}, kimg(t))
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != b.Hash() {
		t.Error("round trip changed hash")
	}
	if back.Kernel == nil || back.Kernel.Version != b.Kernel.Version {
		t.Error("kernel payload lost")
	}
	if len(back.BuildArgs) != 1 {
		t.Error("build args lost")
	}
}

func TestBareMetalRoundTrip(t *testing.T) {
	exe := []byte("MEX1 fake executable payload")
	b := BuildBare(exe)
	if !b.IsBare() {
		t.Error("should be bare")
	}
	enc, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsBare() || string(back.BareExe) != string(exe) {
		t.Error("bare payload lost")
	}
}

func TestDecodeRawMEX1(t *testing.T) {
	// A hard-coded `bin` pointing at a raw executable must be accepted.
	raw := []byte("MEX1restofexecutable")
	b, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !b.IsBare() || string(b.BareExe) != string(raw) {
		t.Error("raw MEX1 not wrapped as bare workload")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode([]byte("BOGUS!!!")); err == nil {
		t.Error("expected magic error")
	}
	if _, err := Decode([]byte{'M', 'B', 'B', '1', 0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("expected truncation error")
	}
}

func TestHashSensitivity(t *testing.T) {
	a, _ := Build(KindOpenSBI, nil, kimg(t))
	b, _ := Build(KindOpenSBI, []string{"X=1"}, kimg(t))
	if a.Hash() == b.Hash() {
		t.Error("build args must affect hash")
	}
}
