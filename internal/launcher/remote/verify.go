// Verification-farm shards on the worker fleet: a JobSpec with Verify
// set runs a whole farm session (generate → lockstep → bisect → dedup)
// on the worker instead of booting a guest. The shard's manifest and
// every minimized repro it found are published to the shared cache, so
// the coordinator can merge shards and fetch repros without ever talking
// to the worker again — the same artifact-purity contract regular jobs
// have, with zero artifacts shipped forward (workloads regenerate from
// seeds).
package remote

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"

	"firemarshal/internal/launcher"
	"firemarshal/internal/verify"
)

// VerifyManifestOutput is the Outputs key under which a farm shard's
// JSONL manifest is announced.
const VerifyManifestOutput = "farm.jsonl"

// runVerify executes one farm shard. The farm journal is written to a
// scratch file (the worker keeps no run directory for farm shards) and
// published wholesale; Metrics.Instrs totals the shard's simulated
// instructions so coordinator summaries show throughput.
func (r *ArtifactRunner) runVerify(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
	vs := spec.Verify
	var fault *verify.Fault
	if vs.Fault != "" {
		var err error
		if fault, err = verify.ParseFault(vs.Fault); err != nil {
			return nil, launcher.Permanent(fmt.Errorf("remote: job %s: %w", spec.Name, err))
		}
	}

	dir, err := os.MkdirTemp("", "marshal-verify-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	manifestPath := filepath.Join(dir, VerifyManifestOutput)
	jnl, err := launcher.OpenJournal(manifestPath)
	if err != nil {
		return nil, err
	}

	r.logf("remote: job %s running verify-farm shard (%d seeds)", spec.Name, len(vs.Seeds))
	sum, farmErr := verify.RunFarm(verify.FarmOptions{
		Store:      r.Store,
		Journal:    jnl,
		Seeds:      vs.Seeds,
		Rounds:     vs.Rounds,
		Mutations:  vs.Mutations,
		MaxEntries: vs.MaxEntries,
		MaxInstrs:  vs.MaxInstrs,
		CkptEvery:  vs.CkptEvery,
		RTLEvery:   vs.RTLEvery,
		FarmSeed:   vs.FarmSeed,
		Fault:      fault,
		Obs:        r.Obs,
		Log:        r.Log,
		Ctx:        ctx,
	})
	jnl.Close()
	if farmErr != nil {
		return nil, fmt.Errorf("remote: job %s: farm: %w", spec.Name, farmErr)
	}

	// Replicate repros first — once the manifest is visible its repro
	// digests must resolve from the shared cache.
	for _, digest := range sum.Repros {
		data, err := r.Store.Get(digest)
		if err != nil {
			return nil, fmt.Errorf("remote: job %s: repro %s: %w", spec.Name, digest, err)
		}
		if _, err := r.publish(ctx, data); err != nil {
			return nil, fmt.Errorf("remote: job %s: publishing repro: %w", spec.Name, err)
		}
	}
	manifest, err := os.ReadFile(manifestPath)
	if err != nil {
		return nil, err
	}
	manifestDigest, err := r.publish(ctx, manifest)
	if err != nil {
		return nil, fmt.Errorf("remote: job %s: publishing farm manifest: %w", spec.Name, err)
	}

	var instrs uint64
	for _, rec := range sum.Records {
		instrs += rec.Instret
	}
	var console bytes.Buffer
	fmt.Fprintf(&console, "verify-farm shard %s: %d entries, %d divergences, %d unique signatures\n%s",
		spec.Name, sum.Entries, sum.Divergences, len(sum.Signatures), sum.Coverage.Report())
	consoleDigest, err := r.publish(ctx, console.Bytes())
	if err != nil {
		return nil, err
	}
	return &RunOutput{
		// A shard that FOUND divergences still exits 0: the farm ran to
		// completion; findings are data, judged by the coordinator.
		Metrics: launcher.Metrics{Instrs: instrs, Cycles: instrs},
		Console: consoleDigest,
		Outputs: map[string]string{VerifyManifestOutput: manifestDigest},
	}, nil
}
