package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"firemarshal/internal/checkpoint"
	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim/rtlsim"
)

// okRunner returns a fake runner whose jobs finish instantly with the
// given cycle count.
func okRunner(cycles uint64) RunnerFunc {
	return func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
		return &RunOutput{Metrics: launcher.Metrics{ExitCode: 0, Cycles: cycles}}, nil
	}
}

// fleet spins up n in-process workers and returns their addresses plus a
// cleanup-ordered list of servers and workers.
func fleet(t *testing.T, n int, mk func(i int) WorkerConfig) (addrs []string, workers []*Worker, servers []*httptest.Server) {
	t.Helper()
	for i := 0; i < n; i++ {
		w := NewWorker(mk(i))
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		t.Cleanup(w.Close)
		workers = append(workers, w)
		servers = append(servers, srv)
		addrs = append(addrs, srv.Listener.Addr().String())
	}
	return addrs, workers, servers
}

func TestJobSpecRoundTrip(t *testing.T) {
	rtl := rtlsim.Config{Predictor: "gshare", BranchMissPenalty: 3, FreqMHz: 1000}
	rtl.ICache.SizeBytes, rtl.ICache.LineBytes, rtl.ICache.Ways = 16384, 64, 4
	rtl.DCache.SizeBytes, rtl.DCache.LineBytes, rtl.DCache.Ways = 32768, 64, 8
	spec := JobSpec{
		Name: "br-sweep-0", Sim: "rtl", Bin: "sha256:ab", Img: "sha256:cd",
		Args: []string{"-m", "1G"}, Outputs: []string{"/root/out.txt"},
		RTL: NewRTLSpec(rtl), Timeout: 3 * time.Second, Retries: 2,
		Prior: 1, Resumed: true,
		Ckpt:      &checkpoint.Pointer{Job: "br-sweep-0", Digest: "sha256:ee", Exec: 2, Instret: 5000},
		CkptEvery: 1000,
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var got JobSpec
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(spec, got) {
		t.Fatalf("round trip mismatch:\n  sent %+v\n  got  %+v", spec, got)
	}
	rt := got.RTL.Config()
	if rt.Predictor != "gshare" || rt.ICache.SizeBytes != 16384 || rt.DCache.Ways != 8 || rt.FreqMHz != 1000 {
		t.Fatalf("RTL config did not survive the wire: %+v", rt)
	}
}

func TestWorkerLeaseToDone(t *testing.T) {
	// The runner blocks until released so the duplicate-lease probe below
	// is guaranteed to arrive while the first lease is still live (a
	// *terminal* entry is deliberately re-leasable).
	release := make(chan struct{})
	gated := RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
		<-release
		return &RunOutput{Metrics: launcher.Metrics{ExitCode: 0, Cycles: 4242}}, nil
	})
	w := NewWorker(WorkerConfig{Runner: gated, Slots: 2, Obs: obs.NewRegistry()})
	defer w.Close()
	srv := httptest.NewServer(w)
	defer srv.Close()
	c := NewWorkerClient(srv.Listener.Addr().String(), 0)
	ctx := context.Background()

	st, err := c.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if st.Slots != 2 || st.Seq != 0 || st.Outstanding() != 0 {
		t.Fatalf("fresh worker status = %+v", st)
	}
	if err := c.Submit(ctx, JobSpec{Name: "job-a", Sim: "qemu", Bin: "sha256:aa"}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Double-lease of a live job must be refused, with the sentinel the
	// coordinator uses to recognize its own retransmits.
	if err := c.Submit(ctx, JobSpec{Name: "job-a", Sim: "qemu", Bin: "sha256:aa"}); !errors.Is(err, ErrAlreadyLeased) {
		t.Fatalf("duplicate lease err = %v, want ErrAlreadyLeased", err)
	}
	close(release)

	deadline := time.After(5 * time.Second)
	var evs []Event
	for {
		if evs, err = c.Events(ctx, 0); err != nil {
			t.Fatalf("events: %v", err)
		}
		if len(evs) >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job never finished; events: %+v", evs)
		case <-time.After(10 * time.Millisecond):
		}
	}
	if evs[0].Type != EventStart || evs[0].Job != "job-a" || evs[0].Attempt != 1 {
		t.Fatalf("first event = %+v, want start attempt 1", evs[0])
	}
	done := evs[len(evs)-1]
	if done.Type != EventDone || done.Record == nil {
		t.Fatalf("last event = %+v, want done with record", done)
	}
	if done.Record.Status != launcher.StatusOK || done.Record.Cycles != 4242 {
		t.Fatalf("done record = %+v", done.Record)
	}
	// The cursor protocol: asking from the end returns nothing.
	if evs, err = c.Events(ctx, done.Seq+1); err != nil || len(evs) != 0 {
		t.Fatalf("events past end = %v, %v", evs, err)
	}
}

func TestWorkerStealOnlyWhileQueued(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	runner := RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &RunOutput{}, nil
	})
	w := NewWorker(WorkerConfig{Runner: runner, Slots: 1, Obs: obs.NewRegistry()})
	defer w.Close()
	defer close(release)
	srv := httptest.NewServer(w)
	defer srv.Close()
	c := NewWorkerClient(srv.Listener.Addr().String(), 0)
	ctx := context.Background()

	if err := c.Submit(ctx, JobSpec{Name: "running", Sim: "qemu", Bin: "sha256:aa"}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started // "running" holds the only slot
	if err := c.Submit(ctx, JobSpec{Name: "queued", Sim: "qemu", Bin: "sha256:bb"}); err != nil {
		t.Fatalf("submit: %v", err)
	}

	if ok, err := c.Steal(ctx, "running"); err != nil || ok {
		t.Fatalf("steal of running job = %v, %v; want refused", ok, err)
	}
	if ok, err := c.Steal(ctx, "queued"); err != nil || !ok {
		t.Fatalf("steal of queued job = %v, %v; want granted", ok, err)
	}
	if ok, err := c.Steal(ctx, "queued"); err != nil || ok {
		t.Fatalf("second steal = %v, %v; want unknown-job refusal", ok, err)
	}
	// The stolen job must never start even once the slot frees.
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if _, ok := st.Jobs["queued"]; ok {
		t.Fatalf("stolen job still tracked: %+v", st.Jobs)
	}
}

func TestCoordinatorSpreadsAndCarriesRecords(t *testing.T) {
	reg := obs.NewRegistry()
	var hits [2]atomic.Int64
	addrs, _, _ := fleet(t, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				hits[i].Add(1)
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 100 * (1 + uint64(i))}}, nil
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})

	dir := t.TempDir()
	j, err := launcher.OpenJournal(filepath.Join(dir, "manifest.json.journal"))
	if err != nil {
		t.Fatalf("journal: %v", err)
	}
	defer j.Close()

	var specs []JobSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, JobSpec{Name: fmt.Sprintf("job-%d", i), Sim: "qemu", Bin: "sha256:aa"})
	}
	sum, err := Launch(context.Background(), specs, CoordOptions{
		Workers: addrs, Journal: j, Poll: 5 * time.Millisecond, Obs: reg,
	})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	if len(sum.Jobs) != 4 || sum.Err() != nil {
		t.Fatalf("summary = %+v", sum)
	}
	for i, res := range sum.Jobs {
		if res.Name != fmt.Sprintf("job-%d", i) {
			t.Fatalf("summary order broken at %d: %+v", i, res)
		}
		if res.Status != launcher.StatusOK || res.Carried == nil || res.Carried.Cycles != res.Metrics.Cycles {
			t.Fatalf("job %s result = %+v", res.Name, res)
		}
	}
	// Least-loaded spread: both workers executed jobs.
	if hits[0].Load() == 0 || hits[1].Load() == 0 {
		t.Fatalf("scheduler did not spread: worker hits = %d, %d", hits[0].Load(), hits[1].Load())
	}
	if got := reg.Counter("remote_leases_total").Value(); got != 4 {
		t.Fatalf("remote_leases_total = %d, want 4", got)
	}
	if reg.Gauge("remote_workers_up").Value() != 2 {
		t.Fatalf("remote_workers_up = %v", reg.Gauge("remote_workers_up").Value())
	}

	// The journal the coordinator wrote replays like a local run's.
	j.Close()
	recs, _, err := launcher.ReadJournal(filepath.Join(dir, "manifest.json.journal"))
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	starts, dones := 0, 0
	for _, r := range recs {
		switch r.Event {
		case launcher.EventStart:
			starts++
		case launcher.EventDone:
			dones++
		}
	}
	if starts != 4 || dones != 4 {
		t.Fatalf("journal has %d starts, %d dones; want 4, 4", starts, dones)
	}
}

func TestCoordinatorReleasesOnWorkerDeath(t *testing.T) {
	reg := obs.NewRegistry()
	ptr := checkpoint.Pointer{Job: "victim", Digest: "sha256:cc", Exec: 1, Instret: 9000}
	hung := make(chan struct{})

	// Worker 0 announces a checkpoint then hangs; worker 1 finishes
	// anything, proving the re-leased spec carried Prior and Ckpt.
	var release atomic.Pointer[JobSpec]
	addrs, workers, servers := fleet(t, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				if i == 0 {
					emit(Event{Type: EventCheckpoint, Job: spec.Name, Ckpt: &ptr})
					close(hung)
					<-ctx.Done()
					return nil, ctx.Err()
				}
				s := spec
				release.Store(&s)
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 777}}, nil
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})

	var persisted atomic.Pointer[checkpoint.Pointer]
	done := make(chan struct{})
	var sum *launcher.Summary
	var lerr error
	go func() {
		defer close(done)
		sum, lerr = Launch(context.Background(), []JobSpec{{Name: "victim", Sim: "qemu", Bin: "sha256:aa"}},
			CoordOptions{
				Workers: addrs, Poll: 5 * time.Millisecond, LeaseTTL: 50 * time.Millisecond,
				Obs:          reg,
				OnCheckpoint: func(p *checkpoint.Pointer) { persisted.Store(p) },
			})
	}()

	<-hung // job is on worker 0 and checkpointed
	// Give the poll loop a beat to observe the checkpoint event, then
	// kill worker 0 hard: server down, simulation reaped.
	for i := 0; i < 400 && persisted.Load() == nil; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	servers[0].Close()
	workers[0].Close()

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never recovered from worker death")
	}
	if lerr != nil {
		t.Fatalf("launch: %v", lerr)
	}
	if sum.Jobs[0].Status != launcher.StatusOK || sum.Jobs[0].Metrics.Cycles != 777 {
		t.Fatalf("re-leased job result = %+v", sum.Jobs[0])
	}
	got := release.Load()
	if got == nil {
		t.Fatal("job never reached worker 1")
	}
	if got.Prior < 1 || !got.Resumed {
		t.Fatalf("re-leased spec lost attempt history: %+v", got)
	}
	if got.Ckpt == nil || got.Ckpt.Digest != ptr.Digest || got.Ckpt.Instret != 9000 {
		t.Fatalf("re-leased spec lost the checkpoint: %+v", got.Ckpt)
	}
	if p := persisted.Load(); p == nil || p.Digest != ptr.Digest {
		t.Fatalf("OnCheckpoint never saw the pointer: %+v", p)
	}
	if reg.Counter("remote_lease_expiries_total").Value() != 1 {
		t.Fatalf("remote_lease_expiries_total = %d", reg.Counter("remote_lease_expiries_total").Value())
	}
	if reg.Gauge("remote_workers_up").Value() != 1 {
		t.Fatalf("remote_workers_up = %v after death", reg.Gauge("remote_workers_up").Value())
	}
}

func TestCoordinatorStealsFromStraggler(t *testing.T) {
	reg := obs.NewRegistry()
	slow := make(chan struct{})
	var w1Jobs atomic.Int64
	addrs, _, _ := fleet(t, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				if i == 0 && spec.Name == "job-0" {
					select {
					case <-slow:
					case <-ctx.Done():
						return nil, ctx.Err()
					}
				}
				if i == 1 {
					w1Jobs.Add(1)
				}
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 1}}, nil
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})

	// job-0 (slow) and job-2 land on worker 0; job-1 on worker 1. Once
	// worker 1 drains, it must steal job-2 from behind the straggler.
	specs := []JobSpec{
		{Name: "job-0", Sim: "qemu", Bin: "sha256:aa"},
		{Name: "job-1", Sim: "qemu", Bin: "sha256:aa"},
		{Name: "job-2", Sim: "qemu", Bin: "sha256:aa"},
	}
	done := make(chan struct{})
	var sum *launcher.Summary
	var lerr error
	go func() {
		defer close(done)
		sum, lerr = Launch(context.Background(), specs, CoordOptions{
			Workers: addrs, Poll: 5 * time.Millisecond, Obs: reg,
		})
	}()

	deadline := time.After(10 * time.Second)
	for reg.Counter("remote_steals_total").Value() == 0 {
		select {
		case <-deadline:
			t.Fatal("no steal happened")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(slow)
	<-done
	if lerr != nil {
		t.Fatalf("launch: %v", lerr)
	}
	if sum.Err() != nil {
		t.Fatalf("summary err: %v", sum.Err())
	}
	// Worker 1 ran its own job plus the stolen one.
	if w1Jobs.Load() < 2 {
		t.Fatalf("worker 1 ran %d jobs, want >= 2 (steal)", w1Jobs.Load())
	}
}

func TestCoordinatorRelaysGracefulForfeit(t *testing.T) {
	// Worker 0 shuts down cleanly mid-job (Close, server still up): the
	// cancelled record must read as a forfeited lease, not a dead job.
	running := make(chan struct{})
	var ran1 atomic.Bool
	addrs, workers, _ := fleet(t, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				if i == 0 {
					close(running)
					<-ctx.Done()
					return nil, ctx.Err()
				}
				ran1.Store(true)
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 55}}, nil
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})

	done := make(chan struct{})
	var sum *launcher.Summary
	var lerr error
	go func() {
		defer close(done)
		sum, lerr = Launch(context.Background(), []JobSpec{{Name: "mover", Sim: "qemu", Bin: "sha256:aa"}},
			CoordOptions{Workers: addrs, Poll: 5 * time.Millisecond, Obs: obs.NewRegistry()})
	}()
	<-running
	workers[0].Close() // graceful: HTTP still answers, jobs report cancelled

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator never re-leased the forfeited job")
	}
	if lerr != nil {
		t.Fatalf("launch: %v", lerr)
	}
	if sum.Jobs[0].Status != launcher.StatusOK || sum.Jobs[0].Metrics.Cycles != 55 || !ran1.Load() {
		t.Fatalf("forfeited job result = %+v (ran on worker 1: %v)", sum.Jobs[0], ran1.Load())
	}
}

func TestCoordinatorNoWorkers(t *testing.T) {
	if _, err := Launch(context.Background(), []JobSpec{{Name: "x"}}, CoordOptions{}); err == nil {
		t.Fatal("launch with no workers succeeded")
	}
	// A configured-but-dead fleet is also a hard error.
	if _, err := Launch(context.Background(), []JobSpec{{Name: "x"}},
		CoordOptions{Workers: []string{"127.0.0.1:1"}, RequestTimeout: 200 * time.Millisecond}); err == nil {
		t.Fatal("launch with all-dead fleet succeeded")
	}
}

func TestCoordinatorCancelLeavesJobsResumable(t *testing.T) {
	started := make(chan struct{})
	addrs, _, _ := fleet(t, 1, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				close(started)
				<-ctx.Done()
				return nil, ctx.Err()
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var sum *launcher.Summary
	go func() {
		defer close(done)
		sum, _ = Launch(ctx, []JobSpec{{Name: "interrupted", Sim: "qemu", Bin: "sha256:aa"}},
			CoordOptions{Workers: addrs, Poll: 5 * time.Millisecond, Obs: obs.NewRegistry()})
	}()
	<-started
	cancel()
	<-done
	if sum == nil || len(sum.Jobs) != 1 || sum.Jobs[0].Status != launcher.StatusCancelled {
		t.Fatalf("cancelled summary = %+v", sum)
	}
}

func TestTransferPushFetchRoundTrip(t *testing.T) {
	// Exercised end to end by the e2e crash/resume tests; here just the
	// pointer-file plumbing.
	dir := t.TempDir()
	ptr := &checkpoint.Pointer{Job: "j", Digest: "sha256:dd", Exec: 3, Instret: 123}
	if err := checkpoint.WritePointer(dir, ptr); err != nil {
		t.Fatalf("write pointer: %v", err)
	}
	got, err := checkpoint.LoadPointer(checkpoint.PointerPath(dir, "j"))
	if err != nil {
		t.Fatalf("load pointer: %v", err)
	}
	if !reflect.DeepEqual(ptr, got) {
		t.Fatalf("pointer round trip: sent %+v got %+v", ptr, got)
	}
	_ = os.RemoveAll(dir)
}
