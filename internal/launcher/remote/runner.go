package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"

	"firemarshal/internal/cas"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/guestos"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/sim/rtlsim"
)

// RunOutput is what one successful job execution produces, everything
// already published to the remote cache: the coordinator materializes the
// run directory from these digests.
type RunOutput struct {
	Metrics launcher.Metrics
	// Console is the CAS digest of the full console transcript.
	Console string
	// Outputs maps run-directory-relative paths to CAS digests.
	Outputs map[string]string
	// Stats is the cycle-exact timing breakdown (rtl jobs; nil otherwise).
	Stats *rtlsim.Stats
}

// Runner executes one leased job attempt. emit publishes protocol events
// mid-run (checkpoint announcements); start and done events are the
// worker's own. Implementations must honor ctx — the worker threads each
// attempt's context (timeout, shutdown) through it.
type Runner interface {
	Run(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error)
}

// RunnerFunc adapts a function to the Runner interface (test fakes).
type RunnerFunc func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error)

func (f RunnerFunc) Run(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
	return f(ctx, spec, emit)
}

// ArtifactRunner is the production Runner: it materializes a job's boot
// binary and disk image from the shared remote cache into the worker's
// local store, simulates the job (functional or cycle-exact per the
// spec), checkpoints into the shared cache when asked, and publishes the
// console and extracted outputs back. It holds no per-job state — one
// runner serves every lease a worker accepts, concurrently.
type ArtifactRunner struct {
	// Store is the worker's local CAS (artifact staging + checkpoints).
	Store *cas.Store
	// Remote is the shared cache every artifact and checkpoint flows
	// through (required — a fleet without a shared cache cannot exist).
	Remote cas.Remote
	// CkptDir holds the worker's checkpoint pointer files.
	CkptDir string
	// Obs is the registry sim/checkpoint metrics report into.
	Obs *obs.Registry
	// Log receives progress messages.
	Log io.Writer
}

func (r *ArtifactRunner) logf(format string, args ...any) {
	if r.Log != nil {
		fmt.Fprintf(r.Log, format+"\n", args...)
	}
}

// fetch returns a blob's bytes, pulling it from the remote cache into the
// local store on a local miss. A corrupt local blob self-heals here: Get
// quarantined it, the remote copy is digest-verified by the client, and
// the Put rewrites it in place (cas_blobs_healed_total counts the heal).
// A failed write-back degrades — the verified remote bytes still serve
// this attempt.
func (r *ArtifactRunner) fetch(ctx context.Context, digest string) ([]byte, error) {
	data, lerr := r.Store.Get(digest)
	if lerr == nil {
		return data, nil
	}
	data, err := r.Remote.GetBlob(ctx, digest)
	if err != nil {
		return nil, err
	}
	if _, err := r.Store.Put(data); err != nil {
		r.Obs.Counter("cas_writeback_failures_total").Inc()
		r.logf("worker: blob %.12s write-back failed (serving remote bytes): %v", digest, err)
	} else if errors.Is(lerr, cas.ErrCorrupt) {
		r.Obs.Counter("cas_blobs_healed_total").Inc()
		r.logf("worker: healed corrupt blob %.12s from remote cache", digest)
	}
	return data, nil
}

// Run executes one attempt of the spec'd job.
func (r *ArtifactRunner) Run(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
	if spec.Verify != nil {
		return r.runVerify(ctx, spec, emit)
	}
	binData, err := r.fetch(ctx, spec.Bin)
	if err != nil {
		return nil, fmt.Errorf("remote: job %s: boot binary: %w", spec.Name, err)
	}
	boot, err := firmware.Decode(binData)
	if err != nil {
		return nil, launcher.Permanent(err)
	}
	var rootfs *fsimg.FS
	if spec.Img != "" {
		imgData, err := r.fetch(ctx, spec.Img)
		if err != nil {
			return nil, fmt.Errorf("remote: job %s: disk image: %w", spec.Name, err)
		}
		if rootfs, err = fsimg.Decode(imgData); err != nil {
			return nil, launcher.Permanent(err)
		}
	}

	// Checkpointing: a handed-off pointer is fetched from the shared cache
	// and staged locally before the runtime opens it; every snapshot this
	// attempt takes is replicated back and announced, so the NEXT handoff
	// can happen from here.
	var ckrt *checkpoint.Runtime
	if spec.CkptEvery > 0 || spec.Ckpt != nil {
		if spec.Ckpt != nil {
			if err := checkpoint.Fetch(ctx, r.Store, r.Remote, spec.Ckpt); err != nil {
				return nil, fmt.Errorf("remote: job %s: fetching checkpoint: %w", spec.Name, err)
			}
			if err := checkpoint.WritePointer(r.CkptDir, spec.Ckpt); err != nil {
				return nil, err
			}
			r.logf("remote: job %s restoring from handed-off checkpoint (exec %d, instret %d)",
				spec.Name, spec.Ckpt.Exec, spec.Ckpt.Instret)
		}
		ckrt, err = checkpoint.Open(checkpoint.Config{
			Store: r.Store,
			Dir:   r.CkptDir,
			Job:   spec.Name,
			Every: spec.CkptEvery,
			Obs:   r.Obs,
			Span:  obs.SpanFromContext(ctx),
			OnSnapshot: func(ptr checkpoint.Pointer, cp *checkpoint.Checkpoint) error {
				if err := checkpoint.Push(ctx, r.Store, r.Remote, &ptr); err != nil {
					return err
				}
				emit(Event{Type: EventCheckpoint, Job: spec.Name, Ckpt: &ptr})
				return nil
			},
		}, spec.Ckpt != nil)
		if err != nil {
			return nil, err
		}
	}

	var console bytes.Buffer
	var platform sim.Platform
	var rtlPlat *rtlsim.Platform
	switch spec.Sim {
	case "qemu", "spike":
		platform = funcsim.New(funcsim.Config{
			Variant:   spec.Sim,
			ExtraArgs: spec.Args,
			Stop:      ctx.Done(),
			Ckpt:      ckrt,
			Obs:       r.Obs,
		})
	case "rtl":
		rcfg := rtlsim.Config{}
		if spec.RTL != nil {
			rcfg = spec.RTL.Config()
		}
		rcfg.Stop = ctx.Done()
		rcfg.Ckpt = ckrt
		rcfg.Obs = r.Obs
		rtlPlat, err = rtlsim.New(rcfg)
		if err != nil {
			return nil, launcher.Permanent(err)
		}
		rtlPlat.NodeName = spec.Name
		platform = rtlPlat
	default:
		return nil, launcher.Permanent(fmt.Errorf("remote: job %s: unknown simulator %q", spec.Name, spec.Sim))
	}

	r.logf("remote: simulating %s on %s", spec.Name, spec.Sim)
	bootRes, err := guestos.Boot(guestos.BootOpts{
		Boot:     boot,
		Disk:     rootfs,
		Platform: platform,
		Console:  &console,
		PkgRepo:  guestos.DefaultRepo(),
	})
	if err != nil {
		return nil, err
	}

	out := &RunOutput{
		Metrics: launcher.Metrics{ExitCode: bootRes.ExitCode, Cycles: bootRes.Cycles},
	}
	if rtlPlat != nil {
		stats := rtlPlat.Stats()
		out.Stats = &stats
		out.Metrics.Instrs = stats.Instrs
	}
	if out.Console, err = r.publish(ctx, console.Bytes()); err != nil {
		return nil, fmt.Errorf("remote: job %s: publishing console: %w", spec.Name, err)
	}
	if bootRes.FinalFS != nil && len(spec.Outputs) > 0 {
		if out.Outputs, err = r.publishOutputs(ctx, bootRes.FinalFS, spec.Outputs); err != nil {
			return nil, fmt.Errorf("remote: job %s: publishing outputs: %w", spec.Name, err)
		}
	}
	return out, nil
}

// publish stores data locally and replicates it to the remote cache.
func (r *ArtifactRunner) publish(ctx context.Context, data []byte) (string, error) {
	digest, err := r.Store.Put(data)
	if err != nil {
		return "", err
	}
	if err := r.Remote.PutBlob(ctx, digest, data); err != nil {
		return "", err
	}
	return digest, nil
}

// publishOutputs extracts the declared guest paths from the final
// filesystem and publishes each file, keyed by its run-directory-relative
// path — the same layout extractOutputs writes on a local launch.
func (r *ArtifactRunner) publishOutputs(ctx context.Context, fs *fsimg.FS, outputs []string) (map[string]string, error) {
	files := map[string][]byte{}
	for _, out := range outputs {
		node := fs.Lookup(out)
		if node == nil {
			// Missing outputs are not fatal, matching the local launch
			// path: the gap surfaces during test.
			continue
		}
		if node.IsDir() {
			err := fs.Walk(func(p string, f *fsimg.File) error {
				if f.IsDir() || !withinGuestDir(p, out) {
					return nil
				}
				rel, err := filepath.Rel(out, p)
				if err != nil {
					return err
				}
				files[filepath.Join(filepath.Base(out), rel)] = f.Data
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		files[filepath.Base(out)] = node.Data
	}
	digests := make(map[string]string, len(files))
	for rel, data := range files {
		d, err := r.publish(ctx, data)
		if err != nil {
			return nil, err
		}
		digests[rel] = d
	}
	return digests, nil
}

func withinGuestDir(p, dir string) bool {
	if dir == "/" {
		return true
	}
	return p == dir || (len(p) > len(dir) && p[:len(dir)] == dir && p[len(dir)] == '/')
}

// Digest names the blob `data` would publish as — coordinators use it to
// announce artifacts they push with raw PutBlob calls.
func Digest(data []byte) string { return hostutil.HashBytes(data) }
