// Package remote distributes a launch across a fleet of worker daemons —
// the cluster mode behind FireMarshal's headline result of turning a
// two-week SPEC sweep into two days (§IV-B), extended past one machine.
//
// Topology: each worker (`marshal worker serve`) is an HTTP server
// executing jobs through the existing launcher machinery; the coordinator
// (`marshal launch -workers a:1,b:2`) is a transient client that leases
// jobs to workers, polls their event streams (the poll doubles as the
// heartbeat), and folds every event into its own journal — the JSONL
// journal/manifest on the coordinator stays the single source of truth.
// Artifacts never travel over this protocol: the coordinator publishes
// boot binaries and disk images to the shared CAS remote-cache server and
// job specs carry only digests; workers fetch what they miss and publish
// consoles, outputs, and checkpoints the same way.
//
// Fault model: a worker that stops answering polls for LeaseTTL forfeits
// its leases. Each forfeited job is re-leased to a live worker together
// with the latest checkpoint pointer the dead worker managed to announce,
// so the job restores bit-identically (cycles, stats, console) instead of
// restarting — exactly the single-machine `-resume` guarantee, stretched
// across machines. Idle workers steal still-queued jobs from loaded ones;
// the queued-only constraint is enforced by the owning worker, so a steal
// can never duplicate a running simulation.
package remote

import (
	"time"

	"firemarshal/internal/checkpoint"
	"firemarshal/internal/launcher"
	"firemarshal/internal/sim/rtlsim"
)

// JobSpec is one leased job, self-contained modulo CAS digests: a worker
// needs nothing but the shared remote cache to execute it. Wire format of
// POST /v1/jobs.
type JobSpec struct {
	// Name is the job's manifest name, unique within the run.
	Name string `json:"name"`
	// Sim selects the simulator: "qemu" or "spike" (functional), or
	// "rtl" (cycle-exact; RTL carries the hardware configuration).
	Sim string `json:"sim"`
	// Bin is the CAS digest of the boot binary.
	Bin string `json:"bin"`
	// Img is the CAS digest of the disk image ("" for no-disk/bare boots).
	Img string `json:"img,omitempty"`
	// Args carries the workload's qemu-args/spike-args.
	Args []string `json:"args,omitempty"`
	// Outputs lists guest paths to extract from the final filesystem.
	Outputs []string `json:"outputs,omitempty"`
	// RTL is the cycle-exact hardware configuration (Sim == "rtl").
	RTL *RTLSpec `json:"rtl,omitempty"`

	// Timeout bounds each attempt; Retries re-attempts transient failures
	// (total attempts = Retries+1). Both run worker-side, through the
	// worker's launcher pool.
	Timeout time.Duration `json:"timeout,omitempty"`
	Retries int           `json:"retries,omitempty"`

	// Prior is the attempt count already consumed by earlier leases or an
	// interrupted earlier run; start events and the final record count
	// attempts on top of it, so manifests show totals across handoffs.
	Prior int `json:"prior,omitempty"`
	// Resumed marks the job as carried across an interruption.
	Resumed bool `json:"resumed,omitempty"`
	// Ckpt, when set, names the checkpoint to restore before executing:
	// the worker fetches its blobs from the remote cache and resumes
	// mid-exec, bit-identically to the machine that snapshotted it.
	Ckpt *checkpoint.Pointer `json:"ckpt,omitempty"`
	// CkptEvery, when nonzero, snapshots machine state every N retired
	// instructions and replicates each snapshot to the remote cache, so
	// this worker dying forfeits at most N instructions of progress.
	CkptEvery uint64 `json:"ckpt_every,omitempty"`

	// Verify, when set, makes this job one verification-farm shard (Sim
	// is "verify"; Bin/Img are unused). The spec carries only parameters:
	// farm workloads regenerate deterministically from seeds, so the
	// artifact-purity property — a worker needs nothing but the shared
	// cache — holds trivially. The shard's JSONL manifest is published to
	// the cache and announced as the "farm.jsonl" output.
	Verify *VerifySpec `json:"verify,omitempty"`
}

// VerifySpec parameterizes one verification-farm shard. Fields mirror
// verify.FarmOptions; Fault is the ParseFault wire form
// ("tier:instr:reg:xor").
type VerifySpec struct {
	Seeds      []int64 `json:"seeds"`
	Rounds     int     `json:"rounds,omitempty"`
	Mutations  int     `json:"mutations,omitempty"`
	MaxEntries int     `json:"max_entries,omitempty"`
	MaxInstrs  uint64  `json:"max_instrs,omitempty"`
	CkptEvery  uint64  `json:"ckpt_every,omitempty"`
	RTLEvery   int     `json:"rtl_every,omitempty"`
	FarmSeed   int64   `json:"farm_seed,omitempty"`
	Fault      string  `json:"fault,omitempty"`
}

// RTLSpec is the serializable subset of rtlsim.Config a job carries (the
// runtime fields — stop channel, checkpoint runtime, metrics registry —
// are the executing worker's own).
type RTLSpec struct {
	Predictor         string `json:"predictor,omitempty"`
	ICacheSize        int    `json:"icache_size,omitempty"`
	ICacheLine        int    `json:"icache_line,omitempty"`
	ICacheWays        int    `json:"icache_ways,omitempty"`
	DCacheSize        int    `json:"dcache_size,omitempty"`
	DCacheLine        int    `json:"dcache_line,omitempty"`
	DCacheWays        int    `json:"dcache_ways,omitempty"`
	BranchMissPenalty uint64 `json:"branch_miss,omitempty"`
	JalrPenalty       uint64 `json:"jalr,omitempty"`
	ICacheMissPenalty uint64 `json:"icache_miss,omitempty"`
	DCacheMissPenalty uint64 `json:"dcache_miss,omitempty"`
	MMIOLatency       uint64 `json:"mmio_latency,omitempty"`
	MulLatency        uint64 `json:"mul_latency,omitempty"`
	DivLatency        uint64 `json:"div_latency,omitempty"`
	SyscallPenalty    uint64 `json:"syscall_penalty,omitempty"`
	FreqMHz           uint64 `json:"freq_mhz,omitempty"`
	MaxInstrs         uint64 `json:"max_instrs,omitempty"`
}

// NewRTLSpec captures the serializable fields of an rtlsim.Config.
func NewRTLSpec(c rtlsim.Config) *RTLSpec {
	return &RTLSpec{
		Predictor:         c.Predictor,
		ICacheSize:        c.ICache.SizeBytes,
		ICacheLine:        c.ICache.LineBytes,
		ICacheWays:        c.ICache.Ways,
		DCacheSize:        c.DCache.SizeBytes,
		DCacheLine:        c.DCache.LineBytes,
		DCacheWays:        c.DCache.Ways,
		BranchMissPenalty: c.BranchMissPenalty,
		JalrPenalty:       c.JalrPenalty,
		ICacheMissPenalty: c.ICacheMissPenalty,
		DCacheMissPenalty: c.DCacheMissPenalty,
		MMIOLatency:       c.MMIOLatency,
		MulLatency:        c.MulLatency,
		DivLatency:        c.DivLatency,
		SyscallPenalty:    c.SyscallPenalty,
		FreqMHz:           c.FreqMHz,
		MaxInstrs:         c.MaxInstrs,
	}
}

// Config reconstructs the rtlsim.Config this spec was captured from.
func (s *RTLSpec) Config() rtlsim.Config {
	c := rtlsim.Config{
		Predictor:         s.Predictor,
		BranchMissPenalty: s.BranchMissPenalty,
		JalrPenalty:       s.JalrPenalty,
		ICacheMissPenalty: s.ICacheMissPenalty,
		DCacheMissPenalty: s.DCacheMissPenalty,
		MMIOLatency:       s.MMIOLatency,
		MulLatency:        s.MulLatency,
		DivLatency:        s.DivLatency,
		SyscallPenalty:    s.SyscallPenalty,
		FreqMHz:           s.FreqMHz,
		MaxInstrs:         s.MaxInstrs,
	}
	c.ICache.SizeBytes, c.ICache.LineBytes, c.ICache.Ways = s.ICacheSize, s.ICacheLine, s.ICacheWays
	c.DCache.SizeBytes, c.DCache.LineBytes, c.DCache.Ways = s.DCacheSize, s.DCacheLine, s.DCacheWays
	return c
}

// Event kinds streamed from worker to coordinator.
const (
	// EventStart: a job attempt began. Attempt is absolute (Prior
	// included), matching what the journal's start records carry.
	EventStart = "start"
	// EventCheckpoint: a snapshot was taken AND fully replicated to the
	// remote cache; Ckpt names it. The coordinator persists the pointer,
	// making it the job's restore point if this worker dies.
	EventCheckpoint = "checkpoint"
	// EventDone: the job reached a terminal status. Record is the exact
	// manifest record; Console and Outputs name the transcript and
	// extracted output blobs in the remote cache.
	EventDone = "done"
)

// Event is one entry of a worker's event log, streamed to the coordinator
// via GET /v1/events?since=N. Seq is worker-global and monotonic, so a
// single cursor per worker resumes the stream exactly.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"`
	Job  string `json:"job"`
	// Attempt is set on start events (absolute, Prior included).
	Attempt int `json:"attempt,omitempty"`
	// Ckpt is set on checkpoint events.
	Ckpt *checkpoint.Pointer `json:"ckpt,omitempty"`
	// Record is set on done events: the job's verbatim manifest record.
	Record *launcher.Record `json:"record,omitempty"`
	// Console is the CAS digest of the job's full console transcript
	// (done events of jobs that produced output).
	Console string `json:"console,omitempty"`
	// Outputs maps run-directory-relative paths to CAS digests of the
	// job's extracted output files (done events).
	Outputs map[string]string `json:"outputs,omitempty"`
	// Stats carries the cycle-exact timing statistics (rtl jobs).
	Stats *rtlsim.Stats `json:"stats,omitempty"`
}

// JobState classifies a job on a worker, reported by GET /v1/status.
type JobState string

const (
	// JobQueued: leased but not yet started — the stealable window.
	JobQueued JobState = "queued"
	// JobRunning: executing (or retrying) on a simulation slot.
	JobRunning JobState = "running"
	// JobDone: terminal; its done event is in the log.
	JobDone JobState = "done"
)

// WorkerStatus is GET /v1/status: the registration probe, the heartbeat
// payload, and the scheduler's load signal all in one.
type WorkerStatus struct {
	// Slots is the worker's simulation concurrency.
	Slots int `json:"slots"`
	// Jobs maps each known job to its state.
	Jobs map[string]JobState `json:"jobs,omitempty"`
	// Seq is the current end of the event log (next event's Seq).
	Seq int `json:"seq"`
}

// Outstanding counts jobs not yet terminal — the scheduler's load metric.
func (s *WorkerStatus) Outstanding() int {
	n := 0
	for _, st := range s.Jobs {
		if st != JobDone {
			n++
		}
	}
	return n
}
