package remote

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"firemarshal/internal/checkpoint"
	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
)

// TestCoordinatorQuarantinesErrorProneWorker: a worker that answers the
// registration probe but fails every subsequent request accrues submit
// faults past the threshold and is quarantined — all jobs land on the
// healthy worker and the run still succeeds.
func TestCoordinatorQuarantinesErrorProneWorker(t *testing.T) {
	reg := obs.NewRegistry()
	var healthyJobs atomic.Int64
	mkWorker := func(count bool) *Worker {
		return NewWorker(WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				if count {
					healthyJobs.Add(1)
				}
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 9}}, nil
			}),
			Slots: 4, Obs: obs.NewRegistry(),
		})
	}

	flaky := mkWorker(false)
	defer flaky.Close()
	// Registration succeeds; every lease and poll gets a 500.
	flakySrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/status" {
			flaky.ServeHTTP(w, r)
			return
		}
		http.Error(w, "injected fault", http.StatusInternalServerError)
	}))
	defer flakySrv.Close()

	healthy := mkWorker(true)
	defer healthy.Close()
	healthySrv := httptest.NewServer(healthy)
	defer healthySrv.Close()

	// Three jobs: the least-loaded scheduler offers each to the flaky
	// worker first, each refusal charges faultSubmit, and the third
	// crosses the quarantine threshold during initial assignment —
	// no timing dependence at all.
	specs := []JobSpec{
		{Name: "q-0", Sim: "qemu", Bin: "sha256:aa"},
		{Name: "q-1", Sim: "qemu", Bin: "sha256:aa"},
		{Name: "q-2", Sim: "qemu", Bin: "sha256:aa"},
	}
	sum, err := Launch(context.Background(), specs, CoordOptions{
		Workers: []string{flakySrv.Listener.Addr().String(), healthySrv.Listener.Addr().String()},
		Poll:    5 * time.Millisecond, Obs: reg,
	})
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	if serr := sum.Err(); serr != nil {
		t.Fatalf("summary err: %v", serr)
	}
	if got := healthyJobs.Load(); got != 3 {
		t.Errorf("healthy worker ran %d jobs, want all 3", got)
	}
	if got := reg.Counter("remote_worker_quarantines_total").Value(); got != 1 {
		t.Errorf("remote_worker_quarantines_total = %d, want 1", got)
	}
	if got := reg.Gauge("remote_workers_quarantined").Value(); got != 1 {
		t.Errorf("remote_workers_quarantined = %g, want 1", got)
	}
}

// TestCoordinatorHedgesStraggler: a started-but-silent job is duplicated
// onto the idle healthy worker after HedgeAfter; the hedge's terminal
// event wins and the job completes while the straggler is still stuck.
func TestCoordinatorHedgesStraggler(t *testing.T) {
	reg := obs.NewRegistry()
	addrs, _, _ := fleet(t, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				if i == 0 {
					<-ctx.Done() // the straggler never finishes on its own
					return nil, ctx.Err()
				}
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 123}}, nil
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})

	done := make(chan struct{})
	var sum *launcher.Summary
	var lerr error
	go func() {
		defer close(done)
		sum, lerr = Launch(context.Background(), []JobSpec{{Name: "stuck", Sim: "qemu", Bin: "sha256:aa"}},
			CoordOptions{
				Workers: addrs, Poll: 5 * time.Millisecond,
				HedgeAfter: 30 * time.Millisecond, Obs: reg,
			})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("hedge never rescued the straggler")
	}
	if lerr != nil {
		t.Fatalf("launch: %v", lerr)
	}
	if sum.Jobs[0].Status != launcher.StatusOK || sum.Jobs[0].Metrics.Cycles != 123 {
		t.Fatalf("hedged job result = %+v", sum.Jobs[0])
	}
	if got := reg.Counter("remote_hedges_total").Value(); got == 0 {
		t.Error("remote_hedges_total = 0; the job finished without a hedge")
	}
}

// TestCoordinatorRevivesLateWorker: a worker that misses the registration
// probe joins the fleet mid-run the moment it starts answering — the
// revive pass re-probes dead workers every tick.
func TestCoordinatorRevivesLateWorker(t *testing.T) {
	// Reserve an address, then give it up so registration fails there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lateAddr := l.Addr().String()
	l.Close()

	reg := obs.NewRegistry()
	release := make(chan struct{})
	addrs, _, _ := fleet(t, 1, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				select {
				case <-release:
				case <-ctx.Done():
				}
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 77}}, nil
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})

	done := make(chan struct{})
	var sum *launcher.Summary
	var lerr error
	go func() {
		defer close(done)
		sum, lerr = Launch(context.Background(), []JobSpec{{Name: "held", Sim: "qemu", Bin: "sha256:aa"}},
			CoordOptions{
				Workers: []string{lateAddr, addrs[0]},
				Poll:    5 * time.Millisecond, Obs: reg,
			})
	}()

	// Bring the late worker up on the reserved address mid-run.
	late := NewWorker(WorkerConfig{Runner: okRunner(1), Slots: 1, Obs: obs.NewRegistry()})
	defer late.Close()
	var lateL net.Listener
	for i := 0; i < 50; i++ {
		if lateL, err = net.Listen("tcp", lateAddr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Skipf("could not rebind %s: %v", lateAddr, err)
	}
	lateSrv := &httptest.Server{Listener: lateL, Config: &http.Server{Handler: late}}
	lateSrv.Start()
	defer lateSrv.Close()

	deadline := time.After(10 * time.Second)
	for reg.Gauge("remote_workers_up").Value() < 2 {
		select {
		case <-deadline:
			t.Fatal("late worker never rejoined the fleet")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(release)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run never finished after revival")
	}
	if lerr != nil {
		t.Fatalf("launch: %v", lerr)
	}
	if sum.Jobs[0].Status != launcher.StatusOK {
		t.Fatalf("job result = %+v", sum.Jobs[0])
	}
}

// TestLeaseExpiryRacesCheckpointPublish: worker 0 streams checkpoint
// events continuously while the test kills it hard, so the lease expiry
// races the checkpoint-publish handling in the poll loop. The job must
// re-lease onto worker 1 carrying some replicated checkpoint, complete
// exactly once, and the whole dance must be race-clean (the chaos gate
// runs this under -race).
func TestLeaseExpiryRacesCheckpointPublish(t *testing.T) {
	reg := obs.NewRegistry()
	var relayed atomic.Pointer[JobSpec]
	var persisted atomic.Int64
	streaming := make(chan struct{}, 1)
	addrs, workers, servers := fleet(t, 2, func(i int) WorkerConfig {
		return WorkerConfig{
			Runner: RunnerFunc(func(ctx context.Context, spec JobSpec, emit func(Event)) (*RunOutput, error) {
				if i == 0 {
					for n := uint64(1); ; n++ {
						select {
						case <-ctx.Done():
							return nil, ctx.Err()
						case <-time.After(time.Millisecond):
							emit(Event{Type: EventCheckpoint, Job: spec.Name,
								Ckpt: &checkpoint.Pointer{Job: spec.Name, Digest: "sha256:ff", Exec: 1, Instret: 1000 * n}})
							select {
							case streaming <- struct{}{}:
							default:
							}
						}
					}
				}
				s := spec
				relayed.Store(&s)
				return &RunOutput{Metrics: launcher.Metrics{Cycles: 31337}}, nil
			}),
			Slots: 1, Obs: obs.NewRegistry(),
		}
	})

	done := make(chan struct{})
	var sum *launcher.Summary
	var lerr error
	go func() {
		defer close(done)
		sum, lerr = Launch(context.Background(), []JobSpec{{Name: "racer", Sim: "qemu", Bin: "sha256:aa"}},
			CoordOptions{
				Workers: addrs, Poll: 3 * time.Millisecond, LeaseTTL: 40 * time.Millisecond,
				Obs:          reg,
				OnCheckpoint: func(p *checkpoint.Pointer) { persisted.Add(1) },
			})
	}()

	<-streaming // the job is on worker 0 and checkpoints are flowing
	// Let a few checkpoint polls land, then kill the worker mid-stream.
	deadline := time.After(5 * time.Second)
	for persisted.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("no checkpoint ever reached the coordinator")
		case <-time.After(2 * time.Millisecond):
		}
	}
	servers[0].Close()
	workers[0].Close()

	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("coordinator never recovered the job")
	}
	if lerr != nil {
		t.Fatalf("launch: %v", lerr)
	}
	if sum.Jobs[0].Status != launcher.StatusOK || sum.Jobs[0].Metrics.Cycles != 31337 {
		t.Fatalf("recovered job result = %+v", sum.Jobs[0])
	}
	got := relayed.Load()
	if got == nil {
		t.Fatal("job never reached worker 1")
	}
	if got.Ckpt == nil || got.Ckpt.Instret == 0 {
		t.Fatalf("re-leased spec lost the checkpoint stream: %+v", got.Ckpt)
	}
	if !got.Resumed {
		t.Error("re-leased spec not marked resumed despite a checkpoint")
	}
	if reg.Counter("remote_lease_expiries_total").Value() == 0 {
		t.Error("remote_lease_expiries_total = 0; the recovery path was not lease expiry")
	}
}

// TestWorkerClient429Backoff: the control client honors a worker's
// Retry-After hint before retrying, instead of hammering a throttled
// worker.
func TestWorkerClient429Backoff(t *testing.T) {
	w := NewWorker(WorkerConfig{Runner: okRunner(1), Slots: 1, Obs: obs.NewRegistry()})
	defer w.Close()
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			rw.Header().Set("Retry-After", "1")
			http.Error(rw, "throttled", http.StatusTooManyRequests)
			return
		}
		w.ServeHTTP(rw, r)
	}))
	defer srv.Close()

	c := NewWorkerClient(srv.Listener.Addr().String(), 0)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatalf("status after throttling: %v", err)
	}
	if st.Slots != 1 {
		t.Fatalf("status = %+v", st)
	}
	if len(slept) != 2 {
		t.Fatalf("client slept %d times, want 2 (once per 429)", len(slept))
	}
	for i, d := range slept {
		if d < time.Second {
			t.Errorf("backoff %d = %v, want >= the 1s Retry-After hint", i, d)
		}
	}
}
