package remote

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
)

// WorkerConfig parameterizes a worker daemon.
type WorkerConfig struct {
	// Runner executes leased jobs (ArtifactRunner in production).
	Runner Runner
	// Slots caps concurrent simulations (default 1). Leases beyond it
	// queue — the queued window is what work-stealing harvests.
	Slots int
	// Timeout/Retries are per-attempt defaults applied when a lease
	// doesn't carry its own.
	Timeout time.Duration
	Retries int
	// Obs is the registry remote_worker_* metrics report into.
	Obs *obs.Registry
	// Log receives progress messages.
	Log io.Writer
}

// wjob is one lease's worker-side state.
type wjob struct {
	spec   JobSpec
	state  JobState
	stolen bool
	out    *RunOutput // last successful attempt's output
}

// Worker executes leased jobs and serves the fleet protocol over HTTP:
//
//	GET    /v1/status            registration probe / heartbeat / load
//	POST   /v1/jobs              lease a job (body: JobSpec)
//	GET    /v1/events?since=N    the event log from sequence N
//	DELETE /v1/jobs/{name}       steal a still-queued job (409 otherwise)
//
// Each lease runs through its own single-worker launcher pool — reusing
// the existing retry/timeout/backoff machinery — under a slots semaphore
// bounding real concurrency. Every externally observable fact (attempt
// starts, replicated checkpoints, terminal records) lands in one
// worker-global event log the coordinator drains with a single cursor.
type Worker struct {
	cfg   WorkerConfig
	mux   *http.ServeMux
	slots chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*wjob
	events []Event
}

// NewWorker creates a worker daemon. Close must be called to stop it.
func NewWorker(cfg WorkerConfig) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{
		cfg:    cfg,
		slots:  make(chan struct{}, cfg.Slots),
		ctx:    ctx,
		cancel: cancel,
		jobs:   map[string]*wjob{},
	}
	w.mux = http.NewServeMux()
	w.mux.HandleFunc("/v1/status", w.handleStatus)
	w.mux.HandleFunc("/v1/jobs", w.handleSubmit)
	w.mux.HandleFunc("/v1/jobs/", w.handleJob)
	w.mux.HandleFunc("/v1/events", w.handleEvents)
	return w
}

func (w *Worker) ServeHTTP(rw http.ResponseWriter, r *http.Request) {
	w.mux.ServeHTTP(rw, r)
}

// Close cancels every in-flight job and waits for their goroutines, so
// no simulation (or its -race-visible state) outlives the worker.
func (w *Worker) Close() {
	w.cancel()
	w.wg.Wait()
}

func (w *Worker) logf(format string, args ...any) {
	fmt.Fprintf(w.cfg.Log, format+"\n", args...)
}

// emit appends one event to the worker-global log, stamping its sequence.
func (w *Worker) emit(ev Event) {
	w.mu.Lock()
	ev.Seq = len(w.events)
	w.events = append(w.events, ev)
	w.mu.Unlock()
}

func (w *Worker) handleStatus(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.mu.Lock()
	st := WorkerStatus{Slots: w.cfg.Slots, Jobs: map[string]JobState{}, Seq: len(w.events)}
	for name, j := range w.jobs {
		st.Jobs[name] = j.state
	}
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(&st)
}

func (w *Worker) handleSubmit(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil || spec.Name == "" {
		http.Error(rw, "malformed job spec", http.StatusBadRequest)
		return
	}
	if w.ctx.Err() != nil {
		// A draining worker must refuse with a retryable status, not 409:
		// 409 means "I already hold that lease", and a coordinator
		// re-leasing a job this worker just forfeited must look elsewhere.
		http.Error(rw, "worker shutting down", http.StatusServiceUnavailable)
		return
	}
	w.mu.Lock()
	if old, exists := w.jobs[spec.Name]; exists && old.state != JobDone {
		w.mu.Unlock()
		http.Error(rw, "job already leased", http.StatusConflict)
		return
	}
	// A terminal entry is re-leasable: the coordinator arbitrates leases,
	// and re-running is deterministic, so a re-lease (hedge, post-forfeit
	// retry) just computes the same record again.
	j := &wjob{spec: spec, state: JobQueued}
	w.jobs[spec.Name] = j
	w.mu.Unlock()
	w.cfg.Obs.Counter("remote_worker_leases_total").Inc()
	w.logf("worker: leased job %s (sim=%s)", spec.Name, spec.Sim)

	w.wg.Add(1)
	go w.runLease(j)
	rw.WriteHeader(http.StatusAccepted)
}

// handleJob routes /v1/jobs/{name}: DELETE is the steal protocol.
func (w *Worker) handleJob(rw http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if r.Method != http.MethodDelete {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	j, ok := w.jobs[name]
	if !ok {
		http.Error(rw, "unknown job", http.StatusNotFound)
		return
	}
	// Only a job that has not started may leave: the owning worker is the
	// arbiter, so a steal can never race a running simulation into
	// duplicate execution.
	if j.state != JobQueued {
		http.Error(rw, "job already "+string(j.state), http.StatusConflict)
		return
	}
	j.stolen = true
	delete(w.jobs, name)
	w.logf("worker: job %s stolen while queued", name)
	rw.WriteHeader(http.StatusOK)
}

func (w *Worker) handleEvents(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	since := 0
	if s := r.URL.Query().Get("since"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			http.Error(rw, "bad since cursor", http.StatusBadRequest)
			return
		}
		since = n
	}
	w.mu.Lock()
	var evs []Event
	if since < len(w.events) {
		evs = append(evs, w.events[since:]...)
	}
	w.mu.Unlock()
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(evs)
}

// runLease drives one leased job to a terminal state: wait for a
// simulation slot (the stealable window), then run the job through a
// single-worker launcher pool so timeout/retry/backoff semantics match a
// local launch exactly, and finally publish the done event.
func (w *Worker) runLease(j *wjob) {
	defer w.wg.Done()
	select {
	case w.slots <- struct{}{}:
		defer func() { <-w.slots }()
	case <-w.ctx.Done():
		w.finishCancelled(j)
		return
	}
	w.mu.Lock()
	if j.stolen {
		w.mu.Unlock()
		return
	}
	j.state = JobRunning
	w.mu.Unlock()
	w.cfg.Obs.Gauge("remote_worker_busy").Set(float64(len(w.slots)))
	defer func() { w.cfg.Obs.Gauge("remote_worker_busy").Set(float64(len(w.slots))) }()

	spec := j.spec
	timeout, retries := spec.Timeout, spec.Retries
	if timeout == 0 {
		timeout = w.cfg.Timeout
	}
	if retries == 0 {
		retries = w.cfg.Retries
	}
	pool := launcher.New(launcher.Options{
		Workers: 1,
		Timeout: timeout,
		Retries: retries,
		Log:     w.cfg.Log,
		Obs:     w.cfg.Obs,
	})
	sum := pool.Run(w.ctx, []launcher.Job{{
		Name:    spec.Name,
		Prior:   spec.Prior,
		Resumed: spec.Resumed,
		Run: func(ctx context.Context, attempt int) (launcher.Metrics, error) {
			w.emit(Event{Type: EventStart, Job: spec.Name, Attempt: spec.Prior + attempt})
			out, err := w.cfg.Runner.Run(ctx, spec, w.emit)
			if err != nil {
				return launcher.Metrics{}, err
			}
			w.mu.Lock()
			j.out = out
			w.mu.Unlock()
			return out.Metrics, nil
		},
	}})
	rec := sum.Records()[0]
	w.finish(j, rec)
}

// finishCancelled records a lease killed before it ever got a slot.
func (w *Worker) finishCancelled(j *wjob) {
	w.finish(j, launcher.Record{
		Job:      j.spec.Name,
		Status:   launcher.StatusCancelled,
		Attempts: j.spec.Prior,
		Resumed:  j.spec.Resumed,
		Error:    "worker shut down before start",
	})
}

// finish marks the job done and publishes its terminal event.
func (w *Worker) finish(j *wjob, rec launcher.Record) {
	ev := Event{Type: EventDone, Job: j.spec.Name, Record: &rec}
	w.mu.Lock()
	j.state = JobDone
	if j.out != nil {
		ev.Console = j.out.Console
		ev.Outputs = j.out.Outputs
		ev.Stats = j.out.Stats
	}
	w.mu.Unlock()
	w.cfg.Obs.Counter("remote_worker_jobs_done_total").Inc()
	w.emit(ev)
	w.logf("worker: job %s %s (attempts=%d)", rec.Job, rec.Status, rec.Attempts)
}
