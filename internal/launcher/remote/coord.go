package remote

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"firemarshal/internal/checkpoint"
	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
)

// CoordOptions parameterizes a coordinated (fleet) launch.
type CoordOptions struct {
	// Workers lists worker addresses ("host:port"). At least one must
	// answer the initial status probe.
	Workers []string
	// Journal, when set, receives a start record per attempt and a done
	// record per terminal job, exactly as a local launch journals — the
	// coordinator's journal/manifest stays the single source of truth,
	// and `-resume` after a coordinator crash works unchanged.
	Journal *launcher.Journal
	// LeaseTTL is how long a worker may go unreachable before its leases
	// are forfeited and re-assigned (default 10s).
	LeaseTTL time.Duration
	// Poll is the event-poll (= heartbeat) interval (default 100ms).
	Poll time.Duration
	// RequestTimeout bounds each control request (default DefaultTimeout).
	RequestTimeout time.Duration
	// NoSteal disables work-stealing (for deterministic tests).
	NoSteal bool
	// HedgeAfter, when positive, duplicates a started-but-silent job onto
	// an idle healthy worker once its lease is this old — the straggler
	// and the hedge race, the first terminal event wins, and determinism
	// makes the race benign (both copies compute identical results). Zero
	// disables hedging.
	HedgeAfter time.Duration
	// Transport, when set, wraps every worker client's HTTP transport
	// (chaos fault injection).
	Transport http.RoundTripper
	// OnCheckpoint runs for each checkpoint a worker announces; the core
	// integration persists the pointer into the run's checkpoint
	// directory so a coordinator crash resumes from it.
	OnCheckpoint func(ptr *checkpoint.Pointer)
	// OnDone runs for each terminal job (once), with its done event; the
	// core integration materializes the console and outputs from the
	// remote cache into the job's run directory. Errors are logged, never
	// fatal — the journal already holds the authoritative record.
	OnDone func(ev Event) error
	// Obs is the registry remote_* fleet metrics report into.
	Obs *obs.Registry
	// Log receives scheduling decisions and fleet-health messages.
	Log io.Writer
}

// Worker health scoring: a leaky fault counter per worker. Poll and
// submit failures add, successful polls drain, and crossing the
// threshold quarantines the worker — it keeps its running leases (the
// TTL remains the only forfeit path) but receives no new ones for the
// rest of the run. Quarantine is sticky: a worker flaky enough to cross
// the threshold once doesn't get to poison tail latency again.
const (
	faultPoll           = 1
	faultSubmit         = 2
	quarantineThreshold = 6
	// reconcileEvery is the successful-poll cadence of the reconcile
	// pass: a Status fetch that re-derives lease truth from the worker
	// (a job we think it owns but it doesn't hold was lost in transit —
	// e.g. a steal whose response dropped — and must be re-leased).
	reconcileEvery = 8
	// maxRefusals bounds how many full assignment sweeps a job survives
	// without any worker accepting it before it fails terminally.
	maxRefusals = 50
)

// cjob is the coordinator's view of one job.
type cjob struct {
	spec      JobSpec // current lease's spec (Prior/Ckpt evolve across leases)
	origPrior int     // Prior at entry, for the summary's prior/fresh split
	worker    int     // owning worker index, -1 when unowned
	hedge     int     // hedge worker index, -1 when not hedged
	leased    time.Time
	started   bool // a start event arrived from the current worker
	maxAtt    int  // highest absolute attempt observed
	refusals  int  // failed assignment sweeps (liveness bound)
	ckpt      *checkpoint.Pointer
	done      bool
	rec       launcher.Record
}

// cworker is the coordinator's view of one worker.
type cworker struct {
	client      *WorkerClient
	alive       bool
	quarantined bool
	faults      int       // leaky fault counter
	polls       int       // successful polls (reconcile cadence)
	cursor      int       // event-log read position
	lastOK      time.Time // last successful poll — the lease clock
}

// coordinator drives one fleet launch.
type coordinator struct {
	opts    CoordOptions
	order   []string
	jobs    map[string]*cjob
	workers []*cworker
}

// Launch distributes specs across the worker fleet and blocks until every
// job is terminal (or ctx is cancelled). Scheduling is least-loaded with
// ties broken by worker order; stragglers are rebalanced by stealing
// still-queued jobs onto idle workers and by hedging started-but-slow
// jobs onto healthy ones; a worker unreachable past the lease TTL
// forfeits its jobs, which re-lease — restoring from the latest
// replicated checkpoint — onto live workers; an error-prone worker is
// quarantined from new leases. The returned summary carries each job's
// verbatim worker record, so manifests compacted from it match
// single-machine runs (wall-clock fields aside).
func Launch(ctx context.Context, specs []JobSpec, opts CoordOptions) (*launcher.Summary, error) {
	if len(opts.Workers) == 0 {
		return nil, fmt.Errorf("remote: no workers configured")
	}
	if len(specs) == 0 {
		return &launcher.Summary{}, nil
	}
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = 10 * time.Second
	}
	if opts.Poll <= 0 {
		opts.Poll = 100 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if ctx == nil {
		ctx = context.Background()
	}

	c := &coordinator{opts: opts, jobs: map[string]*cjob{}}
	for _, spec := range specs {
		if _, dup := c.jobs[spec.Name]; dup {
			return nil, fmt.Errorf("remote: duplicate job name %q", spec.Name)
		}
		c.order = append(c.order, spec.Name)
		c.jobs[spec.Name] = &cjob{spec: spec, origPrior: spec.Prior, worker: -1, hedge: -1}
	}

	// Registration: probe every worker once; a worker that answers is in
	// the fleet. The run needs at least one.
	now := time.Now()
	for _, addr := range opts.Workers {
		cl := NewWorkerClient(addr, opts.RequestTimeout)
		if opts.Transport != nil {
			cl.SetTransport(opts.Transport)
		}
		w := &cworker{client: cl, lastOK: now}
		if st, err := w.client.Status(ctx); err == nil {
			w.alive = true
			w.cursor = st.Seq
			c.logf("coordinator: worker %s registered (slots=%d)", addr, st.Slots)
		} else {
			c.logf("coordinator: worker %s unreachable at start: %v", addr, err)
		}
		c.workers = append(c.workers, w)
	}
	c.gauges()
	if c.aliveCount() == 0 {
		return nil, fmt.Errorf("remote: none of %d workers answered the status probe", len(opts.Workers))
	}

	start := time.Now()
	for _, name := range c.order {
		c.assign(ctx, c.jobs[name])
	}

	tick := time.NewTicker(opts.Poll)
	defer tick.Stop()
	cancelled := false
	for !c.allDone() && !cancelled {
		select {
		case <-ctx.Done():
			cancelled = true
		case <-tick.C:
			c.pollAll(ctx)
			c.reassignOrphans(ctx)
			if !opts.NoSteal {
				c.steal(ctx)
			}
			if opts.HedgeAfter > 0 {
				c.hedgeStragglers(ctx)
			}
		}
	}

	workers := 0
	for _, w := range c.workers {
		if w.alive {
			workers++
		}
	}
	sum := &launcher.Summary{Wall: time.Since(start), Workers: max(workers, 1)}
	for _, name := range c.order {
		j := c.jobs[name]
		if j.done {
			rec := j.rec
			sum.Jobs = append(sum.Jobs, launcher.Result{
				Name:     name,
				Status:   rec.Status,
				Attempts: rec.Attempts - j.origPrior,
				Prior:    j.origPrior,
				Resumed:  rec.Resumed,
				Err:      rec.Error,
				Metrics:  launcher.Metrics{ExitCode: rec.Exit, Cycles: rec.Cycles, Instrs: rec.Instrs},
				Wall:     time.Duration(rec.WallMS * float64(time.Millisecond)),
				Carried:  &rec,
			})
			continue
		}
		// Not terminal when the loop ended: the run was cancelled. No
		// done record is journaled, so `-resume` re-runs (or restores)
		// these jobs.
		sum.Jobs = append(sum.Jobs, launcher.Result{
			Name:     name,
			Status:   launcher.StatusCancelled,
			Attempts: j.maxAtt - j.origPrior,
			Prior:    j.origPrior,
			Resumed:  j.spec.Resumed,
			Err:      "run cancelled with job on worker fleet",
		})
	}
	return sum, nil
}

func (c *coordinator) logf(format string, args ...any) {
	fmt.Fprintf(c.opts.Log, format+"\n", args...)
}

func (c *coordinator) aliveCount() int {
	n := 0
	for _, w := range c.workers {
		if w.alive {
			n++
		}
	}
	return n
}

// gauges refreshes the fleet-health gauges: the aggregate up and
// quarantined counts and a per-worker 0/1 gauge (registry names are
// label-free, so the worker address is folded into the metric name).
func (c *coordinator) gauges() {
	quarantined := 0
	for _, w := range c.workers {
		if w.alive && w.quarantined {
			quarantined++
		}
	}
	c.opts.Obs.Gauge("remote_workers_up").Set(float64(c.aliveCount()))
	c.opts.Obs.Gauge("remote_workers_quarantined").Set(float64(quarantined))
	for _, w := range c.workers {
		up := 0.0
		if w.alive {
			up = 1.0
		}
		c.opts.Obs.Gauge("remote_worker_up_" + obs.SanitizeName(w.client.Addr)).Set(up)
	}
}

// noteFault charges a worker's leaky fault counter; crossing the
// threshold quarantines it (no new leases; running leases keep going —
// the lease TTL stays the only forfeit path).
func (c *coordinator) noteFault(wi, weight int) {
	w := c.workers[wi]
	w.faults += weight
	if w.faults >= quarantineThreshold && !w.quarantined {
		w.quarantined = true
		c.opts.Obs.Counter("remote_worker_quarantines_total").Inc()
		c.logf("coordinator: quarantining error-prone worker %s (fault score %d)", w.client.Addr, w.faults)
		c.gauges()
	}
}

// noteOK drains the fault counter on a successful poll (the leak in the
// leaky bucket; a quarantine itself is sticky).
func (c *coordinator) noteOK(wi int) {
	if w := c.workers[wi]; w.faults > 0 {
		w.faults--
	}
}

func (c *coordinator) allDone() bool {
	for _, j := range c.jobs {
		if !j.done {
			return false
		}
	}
	return true
}

// outstanding counts a worker's not-yet-terminal leases (hedge copies
// included), the scheduler's load metric.
func (c *coordinator) outstanding(wi int) int {
	n := 0
	for _, j := range c.jobs {
		if !j.done && (j.worker == wi || j.hedge == wi) {
			n++
		}
	}
	return n
}

// assign leases a job to the least-loaded live, non-quarantined worker
// (ties: lowest worker index, so schedules are deterministic given
// worker order); when every healthy worker is quarantined the job falls
// back to quarantined-but-alive ones rather than failing. A worker that
// refuses the lease is charged a fault and skipped for this sweep —
// transient refusals no longer declare it dead (the lease TTL decides
// death). A job no worker accepts stays unowned and is retried next
// tick, up to a refusal bound; it fails terminally only with zero live
// workers or the bound exhausted.
func (c *coordinator) assign(ctx context.Context, j *cjob) {
	tried := map[int]bool{}
	for ctx.Err() == nil {
		best := -1
		for pass := 0; pass < 2 && best == -1; pass++ {
			for i, w := range c.workers {
				if !w.alive || tried[i] || (pass == 0 && w.quarantined) {
					continue
				}
				if best == -1 || c.outstanding(i) < c.outstanding(best) {
					best = i
				}
			}
		}
		if best == -1 {
			if c.aliveCount() > 0 && len(tried) > 0 {
				// Every live worker refused this sweep; leave the job
				// unowned and let the next tick retry with fresh luck.
				j.refusals++
				if j.refusals <= maxRefusals {
					j.worker = -1
					return
				}
			}
			c.finishJob(j, launcher.Record{
				Job:      j.spec.Name,
				Status:   launcher.StatusFailed,
				Attempts: j.spec.Prior,
				Resumed:  j.spec.Resumed,
				Error:    "remote: no live workers to lease the job to",
			}, Event{})
			return
		}
		if err := c.workers[best].client.Submit(ctx, j.spec); err != nil && !errors.Is(err, ErrAlreadyLeased) {
			if ctx.Err() != nil {
				// The run is being cancelled, not the worker dying: leave
				// the job unowned so the summary reports it cancelled.
				return
			}
			c.logf("coordinator: worker %s refused lease for %s: %v", c.workers[best].client.Addr, j.spec.Name, err)
			c.noteFault(best, faultSubmit)
			tried[best] = true
			continue
		}
		j.worker = best
		j.started = false
		j.leased = time.Now()
		j.refusals = 0
		if j.hedge == best {
			j.hedge = -1
		}
		c.opts.Obs.Counter("remote_leases_total").Inc()
		c.opts.Obs.Gauge("remote_worker_queue_" + obs.SanitizeName(c.workers[best].client.Addr)).Set(float64(c.outstanding(best)))
		c.logf("coordinator: leased %s to worker %s", j.spec.Name, c.workers[best].client.Addr)
		return
	}
}

// reassignOrphans retries jobs left unowned by an all-refused sweep.
func (c *coordinator) reassignOrphans(ctx context.Context) {
	for _, name := range c.order {
		if j := c.jobs[name]; !j.done && j.worker == -1 {
			c.assign(ctx, j)
		}
	}
}

// pollAll drains every live worker's event log; the successful poll is
// the heartbeat. A worker silent past the lease TTL forfeits its leases;
// every reconcileEvery-th heartbeat cross-checks the worker's job table
// against ours.
func (c *coordinator) pollAll(ctx context.Context) {
	for wi, w := range c.workers {
		if !w.alive {
			c.revive(ctx, wi)
			continue
		}
		evs, err := w.client.Events(ctx, w.cursor)
		if err != nil {
			c.noteFault(wi, faultPoll)
			if time.Since(w.lastOK) > c.opts.LeaseTTL {
				c.expire(ctx, wi)
			}
			continue
		}
		w.lastOK = time.Now()
		w.polls++
		c.noteOK(wi)
		c.opts.Obs.Counter("remote_heartbeats_total").Inc()
		for _, ev := range evs {
			w.cursor = ev.Seq + 1
			c.handleEvent(ctx, wi, ev)
		}
		if w.polls%reconcileEvery == 0 {
			c.reconcile(ctx, wi)
		}
	}
}

// revive re-probes a dead worker each tick. A worker that failed the
// initial registration probe (or went silent past the lease TTL) is not
// gone forever: the moment it answers again it rejoins the fleet at its
// current event cursor. Its forfeited jobs already re-leased elsewhere,
// and any stale events it emits for them are ignored (handleEvent only
// honors the current owner and hedge), so rejoining is always safe.
// A quarantine survives revival — flakiness is why it went dark.
func (c *coordinator) revive(ctx context.Context, wi int) {
	w := c.workers[wi]
	st, err := w.client.Status(ctx)
	if err != nil {
		// Failed probes count against the health score: a worker that
		// repeatedly cannot answer Status is error-prone, and if it ever
		// does rejoin it should rejoin quarantined rather than poison
		// tail latency with fresh leases.
		c.noteFault(wi, faultPoll)
		return
	}
	w.alive = true
	w.cursor = st.Seq
	w.lastOK = time.Now()
	c.logf("coordinator: worker %s (re)joined the fleet (slots=%d)", w.client.Addr, st.Slots)
	c.gauges()
}

// reconcile re-derives lease truth from one worker's own job table. A
// job we believe it owns that is absent there was lost in transit — the
// canonical case is a Steal whose success response dropped, leaving the
// worker without the job while we still charge it to the victim. Workers
// keep finished jobs in their table (only a steal removes an entry), so
// absence is unambiguous: the lease is gone, re-lease it.
func (c *coordinator) reconcile(ctx context.Context, wi int) {
	st, err := c.workers[wi].client.Status(ctx)
	if err != nil {
		c.noteFault(wi, faultPoll)
		return
	}
	for _, name := range c.order {
		j := c.jobs[name]
		if j.done {
			continue
		}
		if _, held := st.Jobs[name]; held {
			continue
		}
		switch wi {
		case j.worker:
			c.logf("coordinator: worker %s no longer holds %s; re-leasing", c.workers[wi].client.Addr, name)
			c.opts.Obs.Counter("remote_reconciled_leases_total").Inc()
			c.relay(ctx, j)
		case j.hedge:
			j.hedge = -1
		}
	}
}

// handleEvent folds one worker event into the journal and run state.
// Events are honored from the job's owner and its hedge; anything else
// is stale (the job was re-leased or stolen away since the event).
func (c *coordinator) handleEvent(ctx context.Context, wi int, ev Event) {
	j, ok := c.jobs[ev.Job]
	if !ok || j.done {
		return
	}
	fromOwner := j.worker == wi
	if !fromOwner && j.hedge != wi {
		return
	}
	switch ev.Type {
	case EventStart:
		if ev.Attempt > j.maxAtt {
			j.maxAtt = ev.Attempt
		}
		if !fromOwner {
			return // the hedge's start doesn't change the owner lease state
		}
		j.started = true
		if err := c.opts.Journal.Start(ev.Job, ev.Attempt); err != nil {
			c.logf("coordinator: journal write failed: %v", err)
		}
	case EventCheckpoint:
		if ev.Ckpt != nil {
			j.ckpt = ev.Ckpt
			c.opts.Obs.Counter("remote_checkpoints_total").Inc()
			if c.opts.OnCheckpoint != nil {
				c.opts.OnCheckpoint(ev.Ckpt)
			}
		}
	case EventDone:
		if ev.Record == nil {
			return
		}
		// A cancelled record from a live worker means the worker is
		// shutting down gracefully, not that the job failed: drop the
		// hedge copy, or promote the hedge when the owner forfeits, or
		// re-lease when there is no hedge.
		if ev.Record.Status == launcher.StatusCancelled && ctx.Err() == nil {
			if !fromOwner {
				j.hedge = -1
				return
			}
			if j.hedge >= 0 && c.workers[j.hedge].alive {
				c.logf("coordinator: worker %s forfeited %s; promoting hedge on %s",
					c.workers[wi].client.Addr, ev.Job, c.workers[j.hedge].client.Addr)
				j.worker, j.hedge = j.hedge, -1
				return
			}
			c.logf("coordinator: worker %s forfeited %s (shutting down); re-leasing", c.workers[wi].client.Addr, ev.Job)
			c.relay(ctx, j)
			return
		}
		if ev.Record.Attempts > j.maxAtt {
			j.maxAtt = ev.Record.Attempts
		}
		c.finishJob(j, *ev.Record, ev)
	}
}

// relay re-leases a forfeited job onto a live worker, restoring from the
// latest replicated checkpoint when one exists.
func (c *coordinator) relay(ctx context.Context, j *cjob) {
	spec := j.spec
	if j.maxAtt > spec.Prior {
		spec.Prior = j.maxAtt
	}
	spec.Ckpt = j.ckpt
	spec.Resumed = spec.Resumed || spec.Prior > 0 || spec.Ckpt != nil
	j.spec = spec
	j.worker = -1
	c.assign(ctx, j)
}

// expire declares a worker dead and re-leases everything it held — or
// promotes the hedge copy where one is already running elsewhere.
func (c *coordinator) expire(ctx context.Context, wi int) {
	w := c.workers[wi]
	w.alive = false
	c.gauges()
	var forfeited []*cjob
	for _, name := range c.order {
		j := c.jobs[name]
		if j.done {
			continue
		}
		if j.hedge == wi {
			j.hedge = -1
		}
		if j.worker == wi {
			forfeited = append(forfeited, j)
		}
	}
	c.logf("coordinator: worker %s lease expired (silent > %s); re-leasing %d job(s)",
		w.client.Addr, c.opts.LeaseTTL, len(forfeited))
	for _, j := range forfeited {
		c.opts.Obs.Counter("remote_lease_expiries_total").Inc()
		if j.hedge >= 0 && c.workers[j.hedge].alive {
			c.logf("coordinator: promoting hedge of %s on %s", j.spec.Name, c.workers[j.hedge].client.Addr)
			j.worker, j.hedge = j.hedge, -1
			j.started = true // conservative: never steal a possibly-running hedge
			continue
		}
		ckpt := ""
		if j.ckpt != nil {
			ckpt = fmt.Sprintf(" (restoring from checkpoint at instret %d)", j.ckpt.Instret)
		}
		c.logf("coordinator: re-leasing %s%s", j.spec.Name, ckpt)
		c.relay(ctx, j)
	}
}

// steal rebalances stragglers: an idle, healthy worker takes a
// still-queued job from the most-loaded worker. The owning worker
// arbitrates (409 once the job started), so a steal never duplicates a
// running simulation.
func (c *coordinator) steal(ctx context.Context) {
	for wi, w := range c.workers {
		if !w.alive || w.quarantined || c.outstanding(wi) != 0 {
			continue
		}
		// Victim: the live worker with the most outstanding leases, at
		// least two (stealing a worker's only job would just move it).
		victim := -1
		for vi, v := range c.workers {
			if vi == wi || !v.alive || c.outstanding(vi) < 2 {
				continue
			}
			if victim == -1 || c.outstanding(vi) > c.outstanding(victim) {
				victim = vi
			}
		}
		if victim == -1 {
			continue
		}
		for _, name := range c.order {
			j := c.jobs[name]
			if j.done || j.worker != victim || j.started {
				continue
			}
			ok, err := c.workers[victim].client.Steal(ctx, name)
			if err != nil || !ok {
				continue
			}
			c.opts.Obs.Counter("remote_steals_total").Inc()
			c.logf("coordinator: worker %s stole %s from %s",
				w.client.Addr, name, c.workers[victim].client.Addr)
			j.worker = -1
			c.assign(ctx, j)
			break
		}
	}
}

// hedgeStragglers duplicates started-but-slow jobs onto idle healthy
// workers. Only running jobs are hedged (queued stragglers are the steal
// pass's business), the hedge goes to a non-quarantined idle worker, and
// the first terminal event — owner's or hedge's — wins. Determinism
// makes the duplicate harmless: both copies compute bit-identical
// results, so whichever finishes first reports the same record.
func (c *coordinator) hedgeStragglers(ctx context.Context) {
	for _, name := range c.order {
		j := c.jobs[name]
		if j.done || j.worker < 0 || j.hedge >= 0 || !j.started || time.Since(j.leased) < c.opts.HedgeAfter {
			continue
		}
		for hi, h := range c.workers {
			if hi == j.worker || !h.alive || h.quarantined || c.outstanding(hi) != 0 {
				continue
			}
			spec := j.spec
			spec.Ckpt = j.ckpt
			spec.Resumed = spec.Resumed || spec.Ckpt != nil
			if err := h.client.Submit(ctx, spec); err != nil && !errors.Is(err, ErrAlreadyLeased) {
				c.noteFault(hi, faultSubmit)
				continue
			}
			j.hedge = hi
			c.opts.Obs.Counter("remote_hedges_total").Inc()
			c.logf("coordinator: hedging straggler %s (on %s) onto %s",
				name, c.workers[j.worker].client.Addr, h.client.Addr)
			break
		}
	}
}

// finishJob records a job's terminal state and runs the OnDone hook.
func (c *coordinator) finishJob(j *cjob, rec launcher.Record, ev Event) {
	j.done = true
	j.rec = rec
	if err := c.opts.Journal.Done(rec); err != nil {
		c.logf("coordinator: journal write failed: %v", err)
	}
	c.opts.Obs.Counter("remote_jobs_done_total").Inc()
	if c.opts.OnDone != nil && ev.Type == EventDone {
		if err := c.opts.OnDone(ev); err != nil {
			c.logf("coordinator: materializing %s: %v", rec.Job, err)
		}
	}
	c.logf("coordinator: job %-24s %s (attempts=%d)", rec.Job, rec.Status, rec.Attempts)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
