package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"firemarshal/internal/hostutil"
)

// DefaultTimeout bounds each coordinator→worker request. It is short:
// requests are tiny control messages, and a worker that cannot answer
// within it is what the lease TTL exists to detect.
const DefaultTimeout = 5 * time.Second

// clientRetries bounds per-request retries: transient transport errors
// and 429 throttles are retried with Retry-After-aware deterministic
// jittered backoff; anything else surfaces immediately.
const clientRetries = 3

// ErrAlreadyLeased reports a Submit refused because the worker already
// holds that job — for the coordinator this is success-shaped (the lease
// exists; a duplicated or retried Submit landed twice), distinguished
// from real refusals so health scoring doesn't punish the worker for our
// own retransmit.
var ErrAlreadyLeased = errors.New("remote: job already leased")

// WorkerClient is the coordinator's handle on one worker daemon.
type WorkerClient struct {
	// Addr is the worker's address as given ("host:port"), used in logs
	// and metrics names.
	Addr string

	base    string
	timeout time.Duration
	hc      *http.Client
	sleep   func(time.Duration) // injectable for tests
}

// NewWorkerClient returns a client for the worker at addr ("host:port" or
// a full URL). A zero timeout uses DefaultTimeout.
func NewWorkerClient(addr string, timeout time.Duration) *WorkerClient {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &WorkerClient{Addr: addr, base: strings.TrimSuffix(base, "/"), timeout: timeout, hc: &http.Client{}, sleep: time.Sleep}
}

// SetTransport installs a custom RoundTripper (chaos fault injection).
// A nil rt restores the default transport.
func (c *WorkerClient) SetTransport(rt http.RoundTripper) {
	c.hc.Transport = rt
}

// doOnce issues one request under the caller's context with the
// per-request timeout layered on, decoding a JSON body into out when
// non-nil.
func (c *WorkerClient) doOnce(ctx context.Context, method, path string, body any, out any) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("worker %s: %w", c.Addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		wait := time.Second
		if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs >= 0 {
			if wait = time.Duration(secs) * time.Second; wait < 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
		}
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, &retryAfterError{wait: wait}
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("worker %s: decoding response: %w", c.Addr, err)
		}
	}
	return resp.StatusCode, nil
}

// retryAfterError marks a 429 answer inside the retry loop.
type retryAfterError struct{ wait time.Duration }

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("throttled (retry after %s)", e.wait)
}

// do retries doOnce on 429 throttles (honoring Retry-After) and, for
// idempotent methods, on transport errors. DELETE is never blind-retried:
// a Steal whose response was lost may have succeeded, and re-sending it
// could "succeed" against a job the worker re-acquired — the
// coordinator's reconcile pass resolves that ambiguity instead. The
// backoff jitter is hashed from (path, attempt), so retry schedules are
// deterministic and de-correlated across jobs.
func (c *WorkerClient) do(ctx context.Context, method, path string, body any, out any) (int, error) {
	retryTransport := method == http.MethodGet || method == http.MethodPost
	var lastCode int
	var lastErr error
	for attempt := 0; attempt <= clientRetries; attempt++ {
		code, err := c.doOnce(ctx, method, path, body, out)
		var ra *retryAfterError
		switch {
		case err == nil:
			return code, nil
		case errors.As(err, &ra):
			lastCode, lastErr = code, fmt.Errorf("worker %s: %s %s: %w", c.Addr, method, path, err)
			if attempt < clientRetries {
				c.sleep(ra.wait + hostutil.DetJitter(path, attempt, 25*time.Millisecond))
			}
		case code == 0 && retryTransport && ctx.Err() == nil:
			// Transport-level failure on an idempotent call (POST /v1/jobs
			// is idempotent too: a duplicate lands as 409 → ErrAlreadyLeased).
			lastCode, lastErr = code, err
			if attempt < clientRetries {
				c.sleep(5*time.Millisecond + hostutil.DetJitter(path, attempt, 20*time.Millisecond))
			}
		default:
			return code, err
		}
		if ctx != nil && ctx.Err() != nil {
			return lastCode, lastErr
		}
	}
	return lastCode, lastErr
}

// Status probes the worker — the registration handshake and the heartbeat.
func (c *WorkerClient) Status(ctx context.Context) (*WorkerStatus, error) {
	var st WorkerStatus
	code, err := c.do(ctx, http.MethodGet, "/v1/status", nil, &st)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("worker %s: status: HTTP %d", c.Addr, code)
	}
	return &st, nil
}

// Submit leases a job to the worker. A worker that already holds the job
// answers 409, surfaced as ErrAlreadyLeased (success-shaped for the
// coordinator, error-shaped for anyone double-leasing by mistake).
func (c *WorkerClient) Submit(ctx context.Context, spec JobSpec) error {
	code, err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, nil)
	if err != nil {
		return err
	}
	switch code {
	case http.StatusAccepted:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("worker %s: submit %s: %w", c.Addr, spec.Name, ErrAlreadyLeased)
	}
	return fmt.Errorf("worker %s: submit %s: HTTP %d", c.Addr, spec.Name, code)
}

// Events drains the worker's event log from sequence `since`.
func (c *WorkerClient) Events(ctx context.Context, since int) ([]Event, error) {
	var evs []Event
	code, err := c.do(ctx, http.MethodGet, "/v1/events?since="+strconv.Itoa(since), nil, &evs)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("worker %s: events: HTTP %d", c.Addr, code)
	}
	return evs, nil
}

// Steal asks the worker to give up a still-queued job. It reports true
// when the worker agreed (the job is now unowned and may be re-leased);
// false when the job already started or finished there.
func (c *WorkerClient) Steal(ctx context.Context, job string) (bool, error) {
	code, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+job, nil, nil)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
		return true, nil
	case http.StatusConflict, http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("worker %s: steal %s: HTTP %d", c.Addr, job, code)
}
