package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// DefaultTimeout bounds each coordinator→worker request. It is short:
// requests are tiny control messages, and a worker that cannot answer
// within it is what the lease TTL exists to detect.
const DefaultTimeout = 5 * time.Second

// WorkerClient is the coordinator's handle on one worker daemon.
type WorkerClient struct {
	// Addr is the worker's address as given ("host:port"), used in logs
	// and metrics names.
	Addr string

	base    string
	timeout time.Duration
	hc      *http.Client
}

// NewWorkerClient returns a client for the worker at addr ("host:port" or
// a full URL). A zero timeout uses DefaultTimeout.
func NewWorkerClient(addr string, timeout time.Duration) *WorkerClient {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &WorkerClient{Addr: addr, base: strings.TrimSuffix(base, "/"), timeout: timeout, hc: &http.Client{}}
}

// do issues one request under the caller's context with the per-request
// timeout layered on, decoding a JSON body into out when non-nil.
func (c *WorkerClient) do(ctx context.Context, method, path string, body any, out any) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(rctx, method, c.base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("worker %s: %w", c.Addr, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("worker %s: decoding response: %w", c.Addr, err)
		}
	}
	return resp.StatusCode, nil
}

// Status probes the worker — the registration handshake and the heartbeat.
func (c *WorkerClient) Status(ctx context.Context) (*WorkerStatus, error) {
	var st WorkerStatus
	code, err := c.do(ctx, http.MethodGet, "/v1/status", nil, &st)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("worker %s: status: HTTP %d", c.Addr, code)
	}
	return &st, nil
}

// Submit leases a job to the worker.
func (c *WorkerClient) Submit(ctx context.Context, spec JobSpec) error {
	code, err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, nil)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("worker %s: submit %s: HTTP %d", c.Addr, spec.Name, code)
	}
	return nil
}

// Events drains the worker's event log from sequence `since`.
func (c *WorkerClient) Events(ctx context.Context, since int) ([]Event, error) {
	var evs []Event
	code, err := c.do(ctx, http.MethodGet, "/v1/events?since="+strconv.Itoa(since), nil, &evs)
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("worker %s: events: HTTP %d", c.Addr, code)
	}
	return evs, nil
}

// Steal asks the worker to give up a still-queued job. It reports true
// when the worker agreed (the job is now unowned and may be re-leased);
// false when the job already started or finished there.
func (c *WorkerClient) Steal(ctx context.Context, job string) (bool, error) {
	code, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+job, nil, nil)
	if err != nil {
		return false, err
	}
	switch code {
	case http.StatusOK:
		return true, nil
	case http.StatusConflict, http.StatusNotFound:
		return false, nil
	}
	return false, fmt.Errorf("worker %s: steal %s: HTTP %d", c.Addr, job, code)
}
