package launcher

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// This file makes runs crash-safe at the manifest level. The launcher
// used to report results only through the end-of-run atomic manifest
// (manifest.go): a host crash at hour N of a multi-hour sweep discarded
// every completed job. The journal fixes that by appending one fsynced
// JSONL record per job event as it happens; the atomic manifest is then
// merely a compaction of the journal. A reader salvages everything up to
// (and excluding) a record torn by a crash mid-append, so `-resume` can
// reconstruct which jobs finished, which were in flight, and which never
// started.

// Journal event kinds.
const (
	// EventStart records that a job attempt began.
	EventStart = "start"
	// EventDone records a job's terminal result (a full manifest Record).
	EventDone = "done"
)

// JournalRecord is one line of the run journal: either a start marker for
// a job attempt or a done marker embedding the job's manifest Record.
type JournalRecord struct {
	Event string `json:"event"`
	// Seq is a monotonically increasing sequence number; concurrent
	// workers interleave, so order on disk is completion order, not
	// declaration order.
	Seq int `json:"seq"`
	// Attempt is set on start events (1-based).
	Attempt int `json:"attempt,omitempty"`
	Record
}

// Journal is an append-only, fsync-per-record run log. Appends are
// serialized internally; the launcher's workers share one Journal.
type Journal struct {
	mu  sync.Mutex
	f   *os.File
	seq int
}

// OpenJournal opens (creating if needed) the journal at path for
// appending. An interrupted run's journal is appended to, not truncated,
// so a resumed run's records land after the originals.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append writes one record and fsyncs it. The write is a single
// newline-terminated line, so a crash can tear at most the final record
// — exactly what ReadJournal salvages around.
func (j *Journal) Append(rec JournalRecord) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Seq = j.seq
	j.seq++
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// AppendLine marshals an arbitrary value as one fsynced JSONL line —
// the journal's durability semantics (append-only, at most the final
// record torn by a crash) for record types other than JournalRecord.
// The verification farm writes its per-entry manifest through this, so
// farm manifests survive crashes exactly like run journals do. Lines
// appended this way carry no sequence number; ordering is append order.
func (j *Journal) AppendLine(v any) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	line, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

// ReadLines parses any JSONL file with the journal's salvage semantics:
// parse runs once per non-blank line, unparseable lines (typically one
// record torn by a crash mid-append) are reported through the returned
// Torn rather than failing the read. A missing file is an error the
// caller can test with os.IsNotExist.
func ReadLines(path string, parse func(line []byte) error) (*Torn, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return salvageLines(data, parse), nil
}

// Start journals the beginning of a job attempt.
func (j *Journal) Start(job string, attempt int) error {
	return j.Append(JournalRecord{Event: EventStart, Attempt: attempt, Record: Record{Job: job}})
}

// Done journals a job's terminal result.
func (j *Journal) Done(rec Record) error {
	return j.Append(JournalRecord{Event: EventDone, Record: rec})
}

// Close closes the underlying file. A nil Journal is a no-op.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Torn describes journal or manifest content that could not be parsed —
// typically the single record torn by a crash mid-append, but garbage
// lines are tolerated (and reported) the same way. Salvage never fails
// the whole parse.
type Torn struct {
	// Line is the 1-based line number of the first unusable line.
	Line int
	// Lines is how many lines were unusable.
	Lines int
	// Bytes is the total unusable byte count.
	Bytes int
	// Tail is true when the file ends mid-record (no trailing newline).
	Tail bool
	// Err is the first parse error, for diagnostics.
	Err string
}

func (t *Torn) String() string {
	if t == nil {
		return ""
	}
	kind := "garbage"
	if t.Tail {
		kind = "torn tail"
	}
	return fmt.Sprintf("%s at line %d (%d line(s), %d byte(s)): %s", kind, t.Line, t.Lines, t.Bytes, t.Err)
}

// salvageLines walks newline-separated JSONL data, calling parse on each
// candidate record. Unparseable lines are reported via the returned Torn
// (nil when everything parsed); parsing never aborts. A final fragment
// with no newline is still offered to parse — a crash can complete the
// record but not the newline — and only reported torn if it fails.
func salvageLines(data []byte, parse func(line []byte) error) *Torn {
	var torn *Torn
	note := func(lineNo int, line []byte, tail bool, err error) {
		if torn == nil {
			torn = &Torn{Line: lineNo, Err: err.Error()}
		}
		torn.Lines++
		torn.Bytes += len(line)
		torn.Tail = tail
	}
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		var line []byte
		i := bytes.IndexByte(data, '\n')
		tail := i < 0
		if tail {
			line, data = data, nil
		} else {
			line, data = data[:i], data[i+1:]
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) == 0 {
			continue
		}
		if err := parse(trimmed); err != nil {
			note(lineNo, line, tail, err)
		}
	}
	return torn
}

// ReadJournal parses the run journal at path, salvaging complete records
// around any torn or garbage lines. A missing file is an error the caller
// can test with os.IsNotExist.
func ReadJournal(path string) ([]JournalRecord, *Torn, error) {
	var recs []JournalRecord
	torn, err := ReadLines(path, func(line []byte) error {
		var rec JournalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		if rec.Event != EventStart && rec.Event != EventDone {
			return fmt.Errorf("unknown journal event %q", rec.Event)
		}
		if rec.Job == "" {
			return fmt.Errorf("journal record without job name")
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return recs, torn, nil
}

// ReadManifest parses a JSONL run manifest, tolerating a truncated final
// line (crash mid-append): complete records are salvaged, the torn tail
// is reported, and the parse as a whole never fails on bad content.
func ReadManifest(path string) ([]Record, *Torn, error) {
	var recs []Record
	torn, err := ReadLines(path, func(line []byte) error {
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		if rec.Job == "" {
			return fmt.Errorf("manifest record without job name")
		}
		recs = append(recs, rec)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return recs, torn, nil
}

// PriorJob summarizes one job's outcome reconstructed from an interrupted
// run, for `-resume`.
type PriorJob struct {
	// Record is the job's last terminal record; valid when Done.
	Record Record
	// Done reports whether a terminal record was seen.
	Done bool
	// InFlight reports a start with no matching done — the job was
	// running when the host died.
	InFlight bool
	// Attempts is the highest attempt observed (started or recorded).
	Attempts int
}

// ReadPrior reconstructs per-job outcomes for a resume: from the journal
// when one exists (the run was interrupted before compaction), otherwise
// from the compacted manifest (the run finished, perhaps with failures).
// When neither exists it returns an empty map — resume of a fresh run is
// just a run.
func ReadPrior(journalPath, manifestPath string) (map[string]PriorJob, *Torn, error) {
	prior := map[string]PriorJob{}
	if recs, torn, err := ReadJournal(journalPath); err == nil {
		for _, rec := range recs {
			p := prior[rec.Job]
			switch rec.Event {
			case EventStart:
				p.InFlight = true
				if rec.Attempt > p.Attempts {
					p.Attempts = rec.Attempt
				}
			case EventDone:
				p.Done, p.InFlight = true, false
				p.Record = rec.Record
				if rec.Record.Attempts > p.Attempts {
					p.Attempts = rec.Record.Attempts
				}
			}
			prior[rec.Job] = p
		}
		return prior, torn, nil
	} else if !os.IsNotExist(err) {
		return nil, nil, err
	}
	recs, torn, err := ReadManifest(manifestPath)
	if os.IsNotExist(err) {
		return prior, nil, nil
	}
	if err != nil {
		return nil, nil, err
	}
	for _, rec := range recs {
		prior[rec.Job] = PriorJob{Record: rec, Done: true, Attempts: rec.Attempts}
	}
	return prior, torn, nil
}

// CarriedResult converts a prior run's record into a Result carried into
// a resumed run's summary: the job is not re-run, its recorded outcome
// (and attempt count, via Prior) rides along. The record itself is kept
// verbatim (modulo the Resumed flag) and re-emitted by record(), so
// wall_ms and sim_mips survive any number of resume cycles byte-identical
// — Wall below is reconstructed from the rounded wall_ms for display
// only and is never written back to a manifest.
func CarriedResult(rec Record) Result {
	carried := rec
	carried.Resumed = true
	return Result{
		Name:    rec.Job,
		Status:  rec.Status,
		Prior:   rec.Attempts,
		Resumed: true,
		Err:     rec.Error,
		Metrics: Metrics{ExitCode: rec.Exit, Cycles: rec.Cycles, Instrs: rec.Instrs},
		Wall:    time.Duration(rec.WallMS * float64(time.Millisecond)),
		Carried: &carried,
	}
}

// MergeResumed interleaves carried results from an interrupted run with
// this run's fresh results, in declaration order, so the compacted
// manifest of a resumed run diffs cleanly against an uninterrupted one.
func MergeResumed(order []string, carried map[string]Result, fresh *Summary) *Summary {
	byName := map[string]*Result{}
	for i := range fresh.Jobs {
		byName[fresh.Jobs[i].Name] = &fresh.Jobs[i]
	}
	out := &Summary{Wall: fresh.Wall, Workers: fresh.Workers}
	for _, name := range order {
		if r, ok := byName[name]; ok {
			out.Jobs = append(out.Jobs, *r)
		} else if r, ok := carried[name]; ok {
			out.Jobs = append(out.Jobs, r)
		}
	}
	return out
}

// Compact atomically writes the final manifest and retires the journal:
// once the manifest is durable the journal is redundant, and removing it
// marks the run as no longer in flight (releasing its checkpoint pins).
func Compact(journalPath, manifestPath string, s *Summary) error {
	if err := WriteManifest(manifestPath, s); err != nil {
		return err
	}
	if journalPath == "" {
		return nil
	}
	if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
