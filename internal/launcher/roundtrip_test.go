package launcher

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCarriedRecordByteIdentical is the resume→resume round-trip: a record
// carried through one resume flips only the Resumed flag; carrying it
// through a second resume must reproduce the record byte-for-byte. Before
// the fix, CarriedResult rebuilt Wall from the round1-ed wall_ms and
// record() re-derived sim_mips from it, so every resume cycle drifted the
// floats.
func TestCarriedRecordByteIdentical(t *testing.T) {
	orig := Record{
		Job:      "spec-657.xz",
		Status:   StatusOK,
		Attempts: 3,
		Cycles:   987654321,
		Instrs:   987654321,
		WallMS:   1234.5,
		SimMIPS:  800.2, // deliberately NOT derivable from WallMS/Instrs
	}
	res1 := CarriedResult(orig)
	first := res1.record()
	want := orig
	want.Resumed = true
	b1, _ := json.Marshal(first)
	bw, _ := json.Marshal(want)
	if !bytes.Equal(b1, bw) {
		t.Fatalf("first carry mutated the record:\n got %s\nwant %s", b1, bw)
	}
	res2 := CarriedResult(first)
	second := res2.record()
	b2, _ := json.Marshal(second)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("second carry drifted:\n got %s\nwant %s", b2, b1)
	}
}

// TestManifestStableAcrossResumes drives the full file-level cycle:
// write manifest → read → carry every record → write again, twice. The
// second and third manifests must be byte-identical (the first differs
// only by the resumed flag flipping on).
func TestManifestStableAcrossResumes(t *testing.T) {
	dir := t.TempDir()
	sum := &Summary{Jobs: []Result{
		{Name: "a", Status: StatusOK, Attempts: 1, Metrics: Metrics{Cycles: 31337, Instrs: 31337}, Wall: 777777 * time.Nanosecond},
		{Name: "b", Status: StatusFailed, Attempts: 2, Err: "boom", Wall: 123456 * time.Nanosecond},
	}}
	paths := []string{
		filepath.Join(dir, "m0.jsonl"),
		filepath.Join(dir, "m1.jsonl"),
		filepath.Join(dir, "m2.jsonl"),
	}
	if err := WriteManifest(paths[0], sum); err != nil {
		t.Fatal(err)
	}
	var manifests [][]byte
	for cycle := 1; cycle < 3; cycle++ {
		recs, torn, err := ReadManifest(paths[cycle-1])
		if err != nil || torn != nil {
			t.Fatalf("cycle %d read: %v torn=%v", cycle, err, torn)
		}
		next := &Summary{}
		for _, rec := range recs {
			next.Jobs = append(next.Jobs, CarriedResult(rec))
		}
		if err := WriteManifest(paths[cycle], next); err != nil {
			t.Fatal(err)
		}
		data := EncodeManifest(next)
		manifests = append(manifests, data)
	}
	if !bytes.Equal(manifests[0], manifests[1]) {
		t.Fatalf("resume→resume manifests differ:\n%s\nvs\n%s", manifests[0], manifests[1])
	}
}

// TestZeroWallSimMIPS covers the sub-millisecond-job audit: a zero or
// negative wall must yield sim_mips 0, and the record must still encode —
// an Inf/NaN would fail the whole manifest write mid-run.
func TestZeroWallSimMIPS(t *testing.T) {
	for _, wall := range []time.Duration{0, -time.Millisecond} {
		r := Result{Name: "instant", Status: StatusOK, Metrics: Metrics{Cycles: 1_000_000}, Wall: wall}
		if got := r.SimMIPS(); got != 0 {
			t.Errorf("SimMIPS() with wall=%v = %v, want 0", wall, got)
		}
		rec := r.record()
		if rec.SimMIPS != 0 || math.IsInf(rec.SimMIPS, 0) || math.IsNaN(rec.SimMIPS) {
			t.Errorf("record() with wall=%v → sim_mips %v, want 0", wall, rec.SimMIPS)
		}
		if _, err := json.Marshal(rec); err != nil {
			t.Errorf("0-wall record does not encode: %v", err)
		}
	}
	// round1 itself must defuse non-finite and overflow-sized inputs.
	for _, f := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		if got := round1(f); got != 0 {
			t.Errorf("round1(%v) = %v, want 0", f, got)
		}
	}
	if got := round1(1e300); got != 1e300 {
		t.Errorf("round1(1e300) = %v, want pass-through", got)
	}
}

// TestFormatTableGoldenMixed is the golden layout test for a summary
// mixing a fresh job, a resumed job with double-digit prior attempts, and
// a carried job. The att column must widen to fit "12+3" and every row
// must stay aligned.
func TestFormatTableGoldenMixed(t *testing.T) {
	carried := CarriedResult(Record{
		Job: "carried-job", Status: StatusFailed, Attempts: 2,
		Cycles: 42, WallMS: 10.5, SimMIPS: 3.3, Error: "boom",
	})
	s := &Summary{
		Jobs: []Result{
			{Name: "fresh-job", Status: StatusOK, Attempts: 1,
				Metrics: Metrics{Cycles: 5_000_000}, Wall: 2 * time.Second, QueueWait: 2 * time.Millisecond},
			{Name: "resumed-dd", Status: StatusOK, Attempts: 3, Prior: 12, Resumed: true,
				Metrics: Metrics{Cycles: 1_000_000}, Wall: 500 * time.Millisecond},
			carried,
		},
		Workers: 2,
		Wall:    3 * time.Second,
	}
	got := FormatTable(s)
	want := "" +
		"job                      status     att        wall      wait          cycles   sim-MIPS  exit\n" +
		"fresh-job                ok           1          2s       2ms         5000000        2.5     0\n" +
		"resumed-dd               ok        12+3       500ms        0s         1000000        2.0     0\n" +
		"carried-job              failed     2+0        11ms         -              42        3.3     0\n" +
		"3 job(s): 2 ok, 1 failed  (workers=2, wall 3s)\n"
	if got != want {
		t.Errorf("table mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	// Alignment invariant, independent of the golden text: the sim-MIPS
	// column must end at the same offset on every row.
	lines := strings.Split(strings.TrimSuffix(got, "\n"), "\n")
	header := lines[0]
	col := strings.Index(header, "sim-MIPS") + len("sim-MIPS")
	for _, line := range lines[1 : len(lines)-1] {
		if len(line) < col || line[col] != ' ' {
			t.Errorf("row misaligned at sim-MIPS column %d: %q", col, line)
		}
	}
}
