package launcher

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"firemarshal/internal/hostutil"
)

// fakeJob describes an injectable fault point: how a job misbehaves before
// (or instead of) succeeding.
type fakeJob struct {
	name      string
	failures  int    // fail the first N attempts with a transient error
	permanent bool   // fail every attempt with a Permanent error
	hang      bool   // block until the attempt context is cancelled
	cycles    uint64 // reported on success
}

func (f fakeJob) job() Job {
	return Job{Name: f.name, Run: func(ctx context.Context, attempt int) (Metrics, error) {
		switch {
		case f.hang:
			<-ctx.Done()
			return Metrics{}, ctx.Err()
		case f.permanent:
			return Metrics{}, Permanent(errors.New("bad artifact"))
		case attempt <= f.failures:
			return Metrics{}, fmt.Errorf("transient fault on attempt %d", attempt)
		}
		return Metrics{ExitCode: 0, Cycles: f.cycles}, nil
	}}
}

// recordingSleep replaces real backoff delays with a log of what would
// have been slept — retry tests finish in microseconds.
type recordingSleep struct {
	mu     sync.Mutex
	delays []time.Duration
}

func (r *recordingSleep) sleep(ctx context.Context, d time.Duration) error {
	r.mu.Lock()
	r.delays = append(r.delays, d)
	r.mu.Unlock()
	return ctx.Err()
}

func TestLauncherTable(t *testing.T) {
	cases := []struct {
		name         string
		jobs         []fakeJob
		opts         Options
		wantStatus   []Status
		wantAttempts []int
		wantBackoffs []time.Duration
		wantErr      bool
	}{
		{
			name:         "all succeed",
			jobs:         []fakeJob{{name: "a", cycles: 10}, {name: "b", cycles: 20}, {name: "c", cycles: 30}},
			opts:         Options{Workers: 2},
			wantStatus:   []Status{StatusOK, StatusOK, StatusOK},
			wantAttempts: []int{1, 1, 1},
		},
		{
			name:         "one fails, siblings complete",
			jobs:         []fakeJob{{name: "a", cycles: 10}, {name: "bad", permanent: true}, {name: "c", cycles: 30}},
			opts:         Options{Workers: 3},
			wantStatus:   []Status{StatusOK, StatusFailed, StatusOK},
			wantAttempts: []int{1, 1, 1},
			wantErr:      true,
		},
		{
			name:         "transient failure retried with backoff, then succeeds",
			jobs:         []fakeJob{{name: "flaky", failures: 2, cycles: 10}},
			opts:         Options{Workers: 1, Retries: 3, Backoff: 8 * time.Millisecond},
			wantStatus:   []Status{StatusOK},
			wantAttempts: []int{3},
			wantBackoffs: []time.Duration{8 * time.Millisecond, 16 * time.Millisecond},
		},
		{
			name:         "retries exhausted",
			jobs:         []fakeJob{{name: "hopeless", failures: 99}},
			opts:         Options{Workers: 1, Retries: 2, Backoff: time.Millisecond},
			wantStatus:   []Status{StatusFailed},
			wantAttempts: []int{3},
			wantBackoffs: []time.Duration{time.Millisecond, 2 * time.Millisecond},
			wantErr:      true,
		},
		{
			name:         "permanent error is not retried",
			jobs:         []fakeJob{{name: "perm", permanent: true}},
			opts:         Options{Workers: 1, Retries: 5},
			wantStatus:   []Status{StatusFailed},
			wantAttempts: []int{1},
			wantErr:      true,
		},
		{
			name: "hung job killed at timeout without stalling siblings",
			jobs: []fakeJob{{name: "hung", hang: true}, {name: "b", cycles: 20}, {name: "c", cycles: 30}},
			opts: Options{Workers: 3, Timeout: 20 * time.Millisecond, Retries: 3},
			// Timeouts are terminal: no retry even with Retries set.
			wantStatus:   []Status{StatusTimeout, StatusOK, StatusOK},
			wantAttempts: []int{1, 1, 1},
			wantErr:      true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := &recordingSleep{}
			tc.opts.Sleep = rec.sleep
			jobs := make([]Job, len(tc.jobs))
			for i, f := range tc.jobs {
				jobs[i] = f.job()
			}
			start := time.Now()
			sum := New(tc.opts).Run(context.Background(), jobs)
			if wall := time.Since(start); wall > 5*time.Second {
				t.Fatalf("run took %s; launcher stalled", wall)
			}
			if len(sum.Jobs) != len(tc.jobs) {
				t.Fatalf("got %d results, want %d", len(sum.Jobs), len(tc.jobs))
			}
			for i, r := range sum.Jobs {
				if r.Name != tc.jobs[i].name {
					t.Errorf("result %d: name %q, want %q (order must match declaration)", i, r.Name, tc.jobs[i].name)
				}
				if r.Status != tc.wantStatus[i] {
					t.Errorf("job %s: status %q (err %q), want %q", r.Name, r.Status, r.Err, tc.wantStatus[i])
				}
				if r.Attempts != tc.wantAttempts[i] {
					t.Errorf("job %s: attempts %d, want %d", r.Name, r.Attempts, tc.wantAttempts[i])
				}
				if r.Status == StatusOK && r.Metrics.Cycles != tc.jobs[i].cycles {
					t.Errorf("job %s: cycles %d, want %d", r.Name, r.Metrics.Cycles, tc.jobs[i].cycles)
				}
			}
			if tc.wantBackoffs != nil {
				rec.mu.Lock()
				got := append([]time.Duration(nil), rec.delays...)
				rec.mu.Unlock()
				// wantBackoffs holds the pure exponential schedule; the
				// launcher adds deterministic per-job jitter on top, so the
				// expected delays are reconstructed with the same hash. The
				// backoff cases are single-job, so jobs[0] names the job.
				want := make([]time.Duration, len(tc.wantBackoffs))
				for i, pure := range tc.wantBackoffs {
					want[i] = pure + hostutil.DetJitter(tc.jobs[0].name, i+1, pure/4)
					if want[i] < pure || want[i] >= pure+pure/4+1 {
						t.Errorf("attempt %d: jittered delay %v outside [%v, %v)", i+1, want[i], pure, pure+pure/4)
					}
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("backoffs %v, want %v", got, want)
				}
			}
			if err := sum.Err(); (err != nil) != tc.wantErr {
				t.Errorf("summary err = %v, wantErr=%v", err, tc.wantErr)
			}
		})
	}
}

// TestCancellationMidFlight covers the second-Ctrl-C path: cancelling the
// run context kills in-flight jobs and marks queued jobs cancelled.
func TestCancellationMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan string, 2)
	blocking := func(name string) Job {
		return Job{Name: name, Run: func(ctx context.Context, attempt int) (Metrics, error) {
			started <- name
			<-ctx.Done()
			return Metrics{}, ctx.Err()
		}}
	}
	jobs := []Job{blocking("a"), blocking("b"), blocking("c"), blocking("d")}

	done := make(chan *Summary, 1)
	go func() { done <- New(Options{Workers: 2}).Run(ctx, jobs) }()

	// Wait until two jobs are genuinely in flight, then kill.
	<-started
	<-started
	cancel()

	sum := <-done
	for _, r := range sum.Jobs {
		if r.Status != StatusCancelled {
			t.Errorf("job %s: status %q, want cancelled", r.Name, r.Status)
		}
	}
	if sum.Err() == nil {
		t.Error("cancelled run must report an error")
	}
}

// TestDrainFinishesInFlight covers the first-Ctrl-C path: draining lets
// the running job finish normally and skips everything still queued.
func TestDrainFinishesInFlight(t *testing.T) {
	l := New(Options{Workers: 1})
	jobs := []Job{
		{Name: "a", Run: func(ctx context.Context, attempt int) (Metrics, error) {
			l.Drain() // the Ctrl-C arrives while a runs
			return Metrics{Cycles: 1}, nil
		}},
		{Name: "b", Run: func(ctx context.Context, attempt int) (Metrics, error) {
			return Metrics{Cycles: 2}, nil
		}},
		{Name: "c", Run: func(ctx context.Context, attempt int) (Metrics, error) {
			return Metrics{Cycles: 3}, nil
		}},
	}
	sum := l.Run(context.Background(), jobs)
	want := []Status{StatusOK, StatusSkipped, StatusSkipped}
	for i, r := range sum.Jobs {
		if r.Status != want[i] {
			t.Errorf("job %s: status %q, want %q", r.Name, r.Status, want[i])
		}
	}
}

// TestParallelSpeedup is the Fig. 6 claim in miniature: on a workload of
// simulated-latency jobs, -j 4 must beat -j 1 by more than 2x wall-clock.
func TestParallelSpeedup(t *testing.T) {
	const perJob = 25 * time.Millisecond
	mkJobs := func() []Job {
		jobs := make([]Job, 8)
		for i := range jobs {
			jobs[i] = Job{Name: fmt.Sprintf("job%02d", i), Run: func(ctx context.Context, attempt int) (Metrics, error) {
				select {
				case <-time.After(perJob):
					return Metrics{Cycles: 1000}, nil
				case <-ctx.Done():
					return Metrics{}, ctx.Err()
				}
			}}
		}
		return jobs
	}

	seq := New(Options{Workers: 1}).Run(context.Background(), mkJobs())
	par := New(Options{Workers: 4}).Run(context.Background(), mkJobs())
	if err := seq.Err(); err != nil {
		t.Fatal(err)
	}
	if err := par.Err(); err != nil {
		t.Fatal(err)
	}
	if par.Wall*2 >= seq.Wall {
		t.Errorf("workers=4 wall %s vs workers=1 wall %s: want >2x speedup", par.Wall, seq.Wall)
	}
	// Per-job wall-clock must be recorded on the result the caller sees
	// (it once was stamped only on a dead local copy).
	for _, r := range par.Jobs {
		if r.Wall < perJob {
			t.Errorf("job %s wall = %s, want >= %s", r.Name, r.Wall, perJob)
		}
	}
}

// TestManifestDeterministic runs jobs whose completion order scrambles
// (staggered latencies under 4 workers) and checks the manifest still
// lists records in declaration order with identical deterministic fields
// across runs.
func TestManifestDeterministic(t *testing.T) {
	mkJobs := func() []Job {
		delays := []time.Duration{8, 1, 5, 2} // milliseconds; completion order != declaration order
		jobs := make([]Job, len(delays))
		for i, d := range delays {
			d := d * time.Millisecond
			cycles := uint64(100 * (i + 1))
			jobs[i] = Job{Name: fmt.Sprintf("job%02d", i), Run: func(ctx context.Context, attempt int) (Metrics, error) {
				time.Sleep(d)
				return Metrics{ExitCode: 0, Cycles: cycles}, nil
			}}
		}
		return jobs
	}
	stable := func(s *Summary) []string {
		var out []string
		for _, rec := range s.Records() {
			out = append(out, fmt.Sprintf("%s|%s|%d|%d|%d", rec.Job, rec.Status, rec.Attempts, rec.Exit, rec.Cycles))
		}
		return out
	}
	a := New(Options{Workers: 4}).Run(context.Background(), mkJobs())
	b := New(Options{Workers: 4}).Run(context.Background(), mkJobs())
	sa, sb := stable(a), stable(b)
	if fmt.Sprint(sa) != fmt.Sprint(sb) {
		t.Errorf("manifests differ:\n%v\n%v", sa, sb)
	}
	if want := "job00|ok|1|0|100"; sa[0] != want {
		t.Errorf("first record %q, want %q", sa[0], want)
	}

	// Each line must be valid JSON with the job field first.
	for _, line := range strings.Split(strings.TrimSpace(string(EncodeManifest(a))), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad manifest line %q: %v", line, err)
		}
		if !strings.HasPrefix(line, `{"job":`) {
			t.Errorf("manifest line does not lead with job field: %q", line)
		}
	}
}

func TestFormatTable(t *testing.T) {
	s := &Summary{
		Jobs: []Result{
			{Name: "job00", Status: StatusOK, Attempts: 1, Metrics: Metrics{Cycles: 12345}, Wall: 10 * time.Millisecond},
			{Name: "job01", Status: StatusTimeout, Attempts: 1, Err: "killed", Wall: 20 * time.Millisecond},
		},
		Workers: 2,
		Wall:    21 * time.Millisecond,
	}
	tbl := FormatTable(s)
	for _, want := range []string{"job00", "job01", "timeout", "sim-MIPS", "1 ok, 1 timeout", "workers=2"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
}

func TestPermanentWrapping(t *testing.T) {
	base := errors.New("boom")
	if !IsPermanent(Permanent(base)) {
		t.Error("Permanent(err) not detected")
	}
	if !IsPermanent(fmt.Errorf("context: %w", Permanent(base))) {
		t.Error("wrapped Permanent not detected")
	}
	if IsPermanent(base) {
		t.Error("plain error misdetected as permanent")
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) must be nil")
	}
	if !errors.Is(Permanent(base), base) {
		t.Error("Permanent must unwrap to the original error")
	}
}

// The retry backoff must jitter deterministically: the same (job,
// attempt) always sleeps the same amount (bit-reproducible schedules),
// distinct jobs spread out (no thundering herd), and the jitter stays
// within a quarter of the pure exponential delay.
func TestBackoffDeterministicJitter(t *testing.T) {
	l := New(Options{Backoff: 80 * time.Millisecond})
	pure := 80 * time.Millisecond
	if a, b := l.backoff("job-a", 1), l.backoff("job-a", 1); a != b {
		t.Fatalf("same job+attempt jittered differently: %v vs %v", a, b)
	}
	distinct := map[time.Duration]bool{}
	for _, name := range []string{"job00", "job01", "job02", "job03", "job04", "job05", "job06", "job07"} {
		d := l.backoff(name, 1)
		if d < pure || d >= pure+pure/4+1 {
			t.Errorf("job %s: delay %v outside [%v, %v)", name, d, pure, pure+pure/4)
		}
		distinct[d] = true
	}
	if len(distinct) < 2 {
		t.Error("all jobs share one backoff delay; herd not spread")
	}
	if a1, a2 := l.backoff("job-a", 1), l.backoff("job-a", 2); a2 < 2*pure || a2 == 2*a1 && a1 != pure {
		t.Errorf("attempt 2 delay %v not doubled from %v", a2, a1)
	}
}
