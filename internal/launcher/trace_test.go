package launcher

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"firemarshal/internal/obs"
)

// maskTraceTimes rewrites every span line's start_us/dur_us to zero so
// traces from two runs can be compared structurally: paths, seqs, and
// attrs must match even though wall-clock timings never will.
func maskTraceTimes(t *testing.T, jsonl []byte) string {
	t.Helper()
	var out bytes.Buffer
	dec := json.NewDecoder(bytes.NewReader(jsonl))
	enc := json.NewEncoder(&out)
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatalf("trace line does not parse: %v", err)
		}
		line["start_us"] = 0
		line["dur_us"] = 0
		if err := enc.Encode(line); err != nil {
			t.Fatal(err)
		}
	}
	return out.String()
}

// TestTraceDeterministicAcrossRuns runs the same job mix twice through a
// parallel pool — flaky jobs retrying, workers racing over the queue —
// and demands the two span traces be identical once timestamps are
// masked: same paths, same seq ordinals, same status/attempt attrs,
// regardless of goroutine scheduling.
func TestTraceDeterministicAcrossRuns(t *testing.T) {
	runOnce := func() []byte {
		tracer := obs.NewTracer()
		run := tracer.Start("run")
		jobs := []fakeJob{
			{name: "a", cycles: 10},
			{name: "b", failures: 2, cycles: 20},
			{name: "c", cycles: 30},
			{name: "d", failures: 1, cycles: 40},
			{name: "e", permanent: true},
			{name: "f", cycles: 60},
		}
		var js []Job
		for _, f := range jobs {
			js = append(js, f.job())
		}
		sleeps := &recordingSleep{}
		l := New(Options{Workers: 4, Retries: 3, Span: run, Obs: obs.NewRegistry(), Sleep: sleeps.sleep})
		s := l.Run(context.Background(), js)
		if len(s.Jobs) != len(jobs) {
			t.Fatalf("got %d results, want %d", len(s.Jobs), len(jobs))
		}
		run.End()
		var buf bytes.Buffer
		if err := tracer.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := maskTraceTimes(t, runOnce())
	second := maskTraceTimes(t, runOnce())
	if first != second {
		t.Errorf("masked traces differ between identical runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", first, second)
	}
	if first == "" {
		t.Fatal("empty trace")
	}
}

// TestTraceMatchesManifestCounts ties the trace to the run manifest: one
// job:<name> span per job, and per job exactly as many attempt child
// spans as the manifest's attempts column records.
func TestTraceMatchesManifestCounts(t *testing.T) {
	tracer := obs.NewTracer()
	run := tracer.Start("run")
	jobs := []fakeJob{
		{name: "a", cycles: 10},
		{name: "b", failures: 2, cycles: 20},
		{name: "c", permanent: true},
	}
	var js []Job
	for _, f := range jobs {
		js = append(js, f.job())
	}
	sleeps := &recordingSleep{}
	l := New(Options{Workers: 2, Retries: 3, Span: run, Obs: obs.NewRegistry(), Sleep: sleeps.sleep})
	s := l.Run(context.Background(), js)
	run.End()

	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	jobSpans := map[string]int{}
	attemptSpans := map[string]int{}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var line struct {
			Path  string            `json:"path"`
			Attrs map[string]string `json:"attrs"`
		}
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		name, ok := strings.CutPrefix(line.Path, "run/job:")
		if !ok {
			continue
		}
		if i := strings.IndexByte(name, '/'); i >= 0 {
			attemptSpans[name[:i]]++
		} else {
			jobSpans[name]++
		}
	}
	for _, r := range s.Jobs {
		if jobSpans[r.Name] != 1 {
			t.Errorf("job %s: %d job spans, want 1", r.Name, jobSpans[r.Name])
		}
		if attemptSpans[r.Name] != r.Attempts {
			t.Errorf("job %s: %d attempt spans, manifest says %d attempts", r.Name, attemptSpans[r.Name], r.Attempts)
		}
	}
}
