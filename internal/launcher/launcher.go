// Package launcher schedules the jobs of a multi-job workload across a
// bounded pool of concurrent simulations — the optimization behind Case
// Study B, where running the 10 SPEC2017 intspeed jobs as parallel
// simulations "reduced the runtime for our experiment from about two weeks
// to roughly two days" (§IV-B).
//
// The scheduler is fault tolerant: every job gets its own context (with a
// configurable per-job timeout), transiently-failing jobs are re-attempted
// a bounded number of times with exponential backoff, and one job's
// failure never prevents its siblings from completing. Cancellation is
// two-stage, matching the CLI's Ctrl-C semantics: draining stops new jobs
// from starting while in-flight jobs run to completion, and cancelling the
// context kills in-flight jobs too (cooperatively — simulations poll their
// machine's Stop channel).
//
// Results aggregate into a deterministic per-job summary: jobs appear in
// declaration order regardless of completion order, so the JSONL run
// manifest (manifest.go) diffs cleanly across runs.
package launcher

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"firemarshal/internal/hostutil"
	"firemarshal/internal/obs"
)

// Metrics is what a completed job reports for the run manifest.
type Metrics struct {
	// ExitCode is the guest's exit status.
	ExitCode int64
	// Cycles is the job's simulated guest time.
	Cycles uint64
	// Instrs is the retired-instruction count (0 when the simulator only
	// reports cycles; functional simulation retires one per cycle).
	Instrs uint64
}

// Job is one schedulable unit: a named closure running one simulation
// attempt. Run must return promptly once ctx is cancelled — simulations
// satisfy this by wiring ctx.Done() into the machine's Stop channel — or
// the final summary is delayed until it does.
type Job struct {
	Name string
	Run  func(ctx context.Context, attempt int) (Metrics, error)
	// Prior is the attempt count carried over from an interrupted run
	// this run is resuming (0 for fresh jobs); it rides into the Result
	// so manifests show total attempts across the interruption.
	Prior int
	// Resumed marks a job restored from a checkpoint by `-resume`.
	Resumed bool
}

// Status classifies a job's outcome.
type Status string

const (
	// StatusOK marks a job whose final attempt succeeded.
	StatusOK Status = "ok"
	// StatusFailed marks a job whose attempts are exhausted (or whose
	// error was marked Permanent).
	StatusFailed Status = "failed"
	// StatusTimeout marks a job killed at its per-job timeout. Timeouts
	// are not retried: a deterministic simulation that hung once would
	// only hang again.
	StatusTimeout Status = "timeout"
	// StatusCancelled marks a job killed (or never started) because the
	// run context was cancelled — the second-Ctrl-C path.
	StatusCancelled Status = "cancelled"
	// StatusSkipped marks a job never started because the launcher was
	// drained — the first-Ctrl-C path: in-flight jobs finish, queued jobs
	// are skipped.
	StatusSkipped Status = "skipped"
)

// Result reports one job's outcome.
type Result struct {
	Name     string
	Status   Status
	Attempts int
	// Prior is the attempt count carried over from the interrupted run
	// this run resumed (0 for fresh jobs).
	Prior int
	// Resumed marks a job whose outcome was carried over from a prior
	// run, or which was restored from a checkpoint, by `-resume`.
	Resumed bool
	// Err holds the final attempt's error text ("" on success).
	Err     string
	Metrics Metrics
	// Wall is the job's host wall-clock time across all attempts.
	Wall time.Duration
	// QueueWait is how long the job sat in the worker queue before its
	// first attempt started (zero for carried and never-started jobs).
	QueueWait time.Duration
	// Carried, when set, is the verbatim manifest record of a prior run
	// this result was carried from. record() re-emits it unchanged, so
	// resuming a resumed run keeps manifest records byte-identical instead
	// of re-deriving (and drifting) wall_ms and sim_mips each cycle.
	Carried *Record
}

// SimMIPS is the job's simulation throughput: millions of simulated
// instructions per host second (cycles stand in for instructions when the
// simulator reports only cycles, as functional simulation retires one
// instruction per cycle).
func (r *Result) SimMIPS() float64 {
	if r.Carried != nil {
		// A carried result reports exactly what the prior run recorded;
		// recomputing from the round-tripped Wall would drift.
		return r.Carried.SimMIPS
	}
	n := r.Metrics.Instrs
	if n == 0 {
		n = r.Metrics.Cycles
	}
	secs := r.Wall.Seconds()
	if n == 0 || secs <= 0 {
		return 0
	}
	return float64(n) / secs / 1e6
}

// Options configures a Launcher.
type Options struct {
	// Workers caps how many jobs simulate concurrently. <=0 means
	// GOMAXPROCS (the `marshal launch -j N` default).
	Workers int
	// Timeout bounds each job attempt's host wall-clock time (0 = none).
	Timeout time.Duration
	// Retries is how many times a transiently-failing job is re-attempted
	// after its first failure (total attempts = Retries+1). Errors marked
	// Permanent and timeouts are not retried.
	Retries int
	// Backoff is the delay before the first retry; it doubles per
	// subsequent retry, capped at 30s. Default 250ms.
	Backoff time.Duration
	// Drain, when closed, stops new jobs from starting (in-flight jobs
	// finish) — equivalent to calling Drain().
	Drain <-chan struct{}
	// Journal, when set, receives a fsynced start record as each attempt
	// begins and a done record as each job reaches a terminal status, so
	// a crashed run can be reconstructed (and resumed) from disk.
	Journal *Journal
	// Log receives per-job progress messages.
	Log io.Writer
	// Obs is the registry launcher counters (attempts, retries, timeouts)
	// and the queue-wait histogram report into; nil resolves to the
	// process-wide obs.Default.
	Obs *obs.Registry
	// Span, when set, parents one child span per job (run → job →
	// attempt) in the run trace; nil disables tracing.
	Span *obs.Span
	// Sleep is the backoff sleeper — injectable so retry tests need no
	// real delays. The default sleeps on a timer, aborting early (with
	// the context's error) on cancellation.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Launcher runs job sets through a worker pool.
type Launcher struct {
	opts      Options
	drain     chan struct{}
	drainOnce sync.Once
	// stragglers tracks attempt goroutines abandoned at a timeout or
	// cancellation; Run joins them before returning so no attempt can
	// touch caller state after the summary is read.
	stragglers sync.WaitGroup
}

// New creates a Launcher.
func New(opts Options) *Launcher {
	if opts.Backoff <= 0 {
		opts.Backoff = 250 * time.Millisecond
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	return &Launcher{opts: opts, drain: make(chan struct{})}
}

// Drain stops new jobs from starting; in-flight jobs run to completion.
// Safe to call from any goroutine, any number of times.
func (l *Launcher) Drain() {
	l.drainOnce.Do(func() { close(l.drain) })
}

func (l *Launcher) draining() bool {
	select {
	case <-l.drain:
		return true
	default:
	}
	if l.opts.Drain == nil {
		return false
	}
	select {
	case <-l.opts.Drain:
		return true
	default:
		return false
	}
}

// Summary aggregates a completed run. Jobs appear in the order they were
// passed to Run, regardless of completion order.
type Summary struct {
	Jobs []Result
	// Wall is the end-to-end host wall-clock time of the run.
	Wall time.Duration
	// Workers is the concurrency the run actually used.
	Workers int
}

// Err returns nil when every job succeeded, otherwise an aggregate error
// naming each job that did not.
func (s *Summary) Err() error {
	var bad []string
	for _, r := range s.Jobs {
		if r.Status != StatusOK {
			bad = append(bad, fmt.Sprintf("%s (%s)", r.Name, r.Status))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("launcher: %d/%d jobs did not succeed: %s", len(bad), len(s.Jobs), strings.Join(bad, ", "))
}

// Counts tallies results by status in a fixed order for log lines.
func (s *Summary) Counts() string {
	n := map[Status]int{}
	for _, r := range s.Jobs {
		n[r.Status]++
	}
	parts := []string{fmt.Sprintf("%d ok", n[StatusOK])}
	for _, st := range []Status{StatusFailed, StatusTimeout, StatusCancelled, StatusSkipped} {
		if n[st] > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n[st], st))
		}
	}
	return strings.Join(parts, ", ")
}

// Run fans the jobs out across the worker pool and blocks until every job
// reaches a terminal status. It never returns early on failure — sibling
// jobs always get their chance — and it never returns an error itself;
// per-job outcomes (and Summary.Err) carry the failures.
func (l *Launcher) Run(ctx context.Context, jobs []Job) *Summary {
	if ctx == nil {
		ctx = context.Background()
	}
	workers := l.opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	results := make([]Result, len(jobs))
	queue := make(chan int, len(jobs))
	for i := range jobs {
		queue <- i
	}
	close(queue)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range queue {
				job := jobs[i]
				// Every queued job gets a span — even skipped and
				// cancelled ones — so trace job counts always match the
				// manifest. Job paths are unique ("job:<name>"), so span
				// ordering is deterministic despite worker interleaving.
				span := l.opts.Span.Child("job:" + job.Name)
				switch {
				case ctx.Err() != nil:
					results[i] = Result{Name: job.Name, Status: StatusCancelled, Err: ctx.Err().Error()}
				case l.draining():
					results[i] = Result{Name: job.Name, Status: StatusSkipped, Err: "drained before start"}
				default:
					results[i] = l.runOne(ctx, job, span, time.Since(start))
				}
				r := &results[i]
				r.Prior, r.Resumed = job.Prior, job.Resumed || job.Prior > 0
				span.Attr("status", string(r.Status))
				span.Attr("attempts", strconv.Itoa(r.Attempts))
				span.End()
				if err := l.opts.Journal.Done(r.record()); err != nil {
					l.logf("job %s: journal write failed: %v", r.Name, err)
				}
				l.logf("job %-24s %s (attempts=%d wall=%s)", r.Name, r.Status, r.Attempts, r.Wall.Round(time.Millisecond))
			}
		}()
	}
	wg.Wait()
	// Join abandoned attempts (see Launcher.stragglers) so nothing runs
	// past the summary.
	l.stragglers.Wait()
	return &Summary{Jobs: results, Wall: time.Since(start), Workers: workers}
}

// runOne drives a single job through its attempts. The result is named so
// the deferred Wall stamp applies to what the caller actually receives.
func (l *Launcher) runOne(ctx context.Context, job Job, span *obs.Span, wait time.Duration) (res Result) {
	res = Result{Name: job.Name, QueueWait: wait}
	l.opts.Obs.Histogram("launcher_queue_wait_us").Observe(uint64(wait.Microseconds()))
	start := time.Now()
	defer func() { res.Wall = time.Since(start) }()

	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		l.opts.Obs.Counter("launcher_attempts_total").Inc()
		if attempt > 1 {
			l.opts.Obs.Counter("launcher_retries_total").Inc()
		}
		if err := l.opts.Journal.Start(job.Name, job.Prior+attempt); err != nil {
			l.logf("job %s: journal write failed: %v", job.Name, err)
		}
		attemptCtx := ctx
		cancel := context.CancelFunc(func() {})
		if l.opts.Timeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, l.opts.Timeout)
		}
		attSpan := span.Child("attempt")
		met, err := l.runAttempt(obs.ContextWithSpan(attemptCtx, attSpan), job, attempt)
		timedOut := attemptCtx.Err() == context.DeadlineExceeded
		cancel()
		attSpan.End()

		if err == nil {
			res.Status, res.Metrics = StatusOK, met
			return res
		}
		switch {
		case ctx.Err() != nil:
			res.Status, res.Err = StatusCancelled, err.Error()
			return res
		case timedOut:
			l.opts.Obs.Counter("launcher_timeouts_total").Inc()
			res.Status = StatusTimeout
			res.Err = fmt.Sprintf("killed at per-job timeout %s: %v", l.opts.Timeout, err)
			return res
		case IsPermanent(err) || attempt > l.opts.Retries:
			res.Status, res.Err = StatusFailed, err.Error()
			return res
		}
		delay := l.backoff(job.Name, attempt)
		l.logf("job %s attempt %d failed (%v); retrying in %s", job.Name, attempt, err, delay)
		if serr := l.opts.Sleep(ctx, delay); serr != nil {
			res.Status, res.Err = StatusCancelled, err.Error()
			return res
		}
	}
}

// runAttempt runs the job body in its own goroutine so a hung simulation
// cannot stall the worker past the attempt's deadline: on expiry the
// worker moves on and the attempt is left to unwind cooperatively (the
// simulation observes its Stop channel); Run joins it before returning.
func (l *Launcher) runAttempt(ctx context.Context, job Job, attempt int) (Metrics, error) {
	type outcome struct {
		met Metrics
		err error
	}
	ch := make(chan outcome, 1)
	l.stragglers.Add(1)
	go func() {
		defer l.stragglers.Done()
		met, err := job.Run(ctx, attempt)
		ch <- outcome{met, err}
	}()
	select {
	case out := <-ch:
		return out.met, out.err
	case <-ctx.Done():
		return Metrics{}, ctx.Err()
	}
}

// backoff returns the delay before the retry following `attempt`:
// Backoff * 2^(attempt-1), capped at 30s, plus up to 25% deterministic
// per-job jitter. The jitter is hashed from (job name, attempt) — no
// wall clock, no RNG — so N jobs that fail together retry spread out
// instead of as a thundering herd at `-j N`, while any given run's
// retry schedule stays bit-reproducible.
func (l *Launcher) backoff(job string, attempt int) time.Duration {
	d := l.opts.Backoff
	for i := 1; i < attempt && d < 30*time.Second; i++ {
		d *= 2
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d + hostutil.DetJitter(job, attempt, d/4)
}

func (l *Launcher) logf(format string, args ...any) {
	fmt.Fprintf(l.opts.Log, format+"\n", args...)
}

// sleepCtx is the default backoff sleeper.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so the launcher fails the job immediately instead
// of retrying — for configuration and artifact errors that no retry can
// fix. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}
