package launcher

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"firemarshal/internal/hostutil"
)

// Record is one line of the JSONL run manifest. Field order is fixed and
// records appear in job-declaration order, so manifests from repeated runs
// of a deterministic workload diff cleanly (only the wall-clock and
// throughput fields vary between hosts).
type Record struct {
	Job      string  `json:"job"`
	Status   Status  `json:"status"`
	Attempts int     `json:"attempts"`
	Exit     int64   `json:"exit"`
	Cycles   uint64  `json:"cycles"`
	Instrs   uint64  `json:"instrs,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	SimMIPS  float64 `json:"sim_mips"`
	// Resumed marks a job whose outcome was carried over or restored
	// from a checkpoint by `-resume`; Attempts then includes the prior
	// run's attempts.
	Resumed bool   `json:"resumed,omitempty"`
	Error   string `json:"error,omitempty"`
}

// record converts one result into its manifest record. Attempts counts
// across the interruption: prior-run attempts plus this run's. A carried
// result re-emits the prior run's record verbatim.
func (r *Result) record() Record {
	if r.Carried != nil {
		return *r.Carried
	}
	return Record{
		Job:      r.Name,
		Status:   r.Status,
		Attempts: r.Prior + r.Attempts,
		Exit:     r.Metrics.ExitCode,
		Cycles:   r.Metrics.Cycles,
		Instrs:   r.Metrics.Instrs,
		WallMS:   round1(float64(r.Wall) / float64(time.Millisecond)),
		SimMIPS:  round1(r.SimMIPS()),
		Resumed:  r.Resumed,
		Error:    r.Err,
	}
}

// Records converts the summary into manifest records, in job order.
func (s *Summary) Records() []Record {
	out := make([]Record, len(s.Jobs))
	for i := range s.Jobs {
		out[i] = s.Jobs[i].record()
	}
	return out
}

// EncodeManifest renders the summary as JSONL: one Record per line.
func EncodeManifest(s *Summary) []byte {
	var b strings.Builder
	for _, rec := range s.Records() {
		line, err := json.Marshal(rec)
		if err != nil {
			// Record holds only scalars; Marshal cannot fail.
			panic(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// WriteManifest atomically writes the JSONL run manifest to path.
func WriteManifest(path string, s *Summary) error {
	return hostutil.WriteFileAtomic(path, EncodeManifest(s), 0o644)
}

// FormatTable renders the human-readable summary table printed by
// `marshal launch`: per-job status, attempts, wall-clock, queue wait,
// simulated cycles, and sim-MIPS, followed by a totals line. The att
// column is sized from the rendered strings, so resumed jobs with
// double-digit attempt counts ("12+3") keep the layout aligned.
func FormatTable(s *Summary) string {
	atts := make([]string, len(s.Jobs))
	attW := len("att")
	for i := range s.Jobs {
		r := &s.Jobs[i]
		// Resumed jobs render attempts as prior+new ("2+1") so carried
		// work is visible at a glance.
		atts[i] = fmt.Sprintf("%d", r.Attempts)
		if r.Prior > 0 {
			atts[i] = fmt.Sprintf("%d+%d", r.Prior, r.Attempts)
		}
		if len(atts[i]) > attW {
			attW = len(atts[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-9s %*s  %10s  %8s  %14s  %9s  %4s\n",
		"job", "status", attW, "att", "wall", "wait", "cycles", "sim-MIPS", "exit")
	for i := range s.Jobs {
		r := &s.Jobs[i]
		// Carried jobs never entered this run's queue; their wait is "-".
		wait := "-"
		if r.Carried == nil {
			wait = r.QueueWait.Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-24s %-9s %*s  %10s  %8s  %14d  %9.1f  %4d\n",
			r.Name, r.Status, attW, atts[i], r.Wall.Round(time.Millisecond), wait,
			r.Metrics.Cycles, r.SimMIPS(), r.Metrics.ExitCode)
	}
	fmt.Fprintf(&b, "%d job(s): %s  (workers=%d, wall %s)\n",
		len(s.Jobs), s.Counts(), s.Workers, s.Wall.Round(time.Millisecond))
	return b.String()
}

// round1 rounds to one decimal place so manifest floats render compactly.
// Non-finite inputs collapse to 0: a NaN or ±Inf (e.g. a sim_mips derived
// from a zero wall) would make encoding/json fail the whole manifest
// write mid-run. Values too large to round through uint64 pass through
// unrounded rather than overflow.
func round1(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	if f < 0 || f >= float64(1<<60) {
		return f
	}
	n := f*10 + 0.5
	return float64(uint64(n)) / 10
}
