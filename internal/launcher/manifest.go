package launcher

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"firemarshal/internal/hostutil"
)

// Record is one line of the JSONL run manifest. Field order is fixed and
// records appear in job-declaration order, so manifests from repeated runs
// of a deterministic workload diff cleanly (only the wall-clock and
// throughput fields vary between hosts).
type Record struct {
	Job      string  `json:"job"`
	Status   Status  `json:"status"`
	Attempts int     `json:"attempts"`
	Exit     int64   `json:"exit"`
	Cycles   uint64  `json:"cycles"`
	Instrs   uint64  `json:"instrs,omitempty"`
	WallMS   float64 `json:"wall_ms"`
	SimMIPS  float64 `json:"sim_mips"`
	// Resumed marks a job whose outcome was carried over or restored
	// from a checkpoint by `-resume`; Attempts then includes the prior
	// run's attempts.
	Resumed bool   `json:"resumed,omitempty"`
	Error   string `json:"error,omitempty"`
}

// record converts one result into its manifest record. Attempts counts
// across the interruption: prior-run attempts plus this run's.
func (r *Result) record() Record {
	return Record{
		Job:      r.Name,
		Status:   r.Status,
		Attempts: r.Prior + r.Attempts,
		Exit:     r.Metrics.ExitCode,
		Cycles:   r.Metrics.Cycles,
		Instrs:   r.Metrics.Instrs,
		WallMS:   round1(float64(r.Wall) / float64(time.Millisecond)),
		SimMIPS:  round1(r.SimMIPS()),
		Resumed:  r.Resumed,
		Error:    r.Err,
	}
}

// Records converts the summary into manifest records, in job order.
func (s *Summary) Records() []Record {
	out := make([]Record, len(s.Jobs))
	for i := range s.Jobs {
		out[i] = s.Jobs[i].record()
	}
	return out
}

// EncodeManifest renders the summary as JSONL: one Record per line.
func EncodeManifest(s *Summary) []byte {
	var b strings.Builder
	for _, rec := range s.Records() {
		line, err := json.Marshal(rec)
		if err != nil {
			// Record holds only scalars; Marshal cannot fail.
			panic(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return []byte(b.String())
}

// WriteManifest atomically writes the JSONL run manifest to path.
func WriteManifest(path string, s *Summary) error {
	return hostutil.WriteFileAtomic(path, EncodeManifest(s), 0o644)
}

// FormatTable renders the human-readable summary table printed by
// `marshal launch`: per-job status, attempts, wall-clock, simulated
// cycles, and sim-MIPS, followed by a totals line.
func FormatTable(s *Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-9s %3s  %10s  %14s  %9s  %4s\n",
		"job", "status", "att", "wall", "cycles", "sim-MIPS", "exit")
	for i := range s.Jobs {
		r := &s.Jobs[i]
		// Resumed jobs render attempts as prior+new ("2+1") so carried
		// work is visible at a glance.
		att := fmt.Sprintf("%d", r.Attempts)
		if r.Prior > 0 {
			att = fmt.Sprintf("%d+%d", r.Prior, r.Attempts)
		}
		fmt.Fprintf(&b, "%-24s %-9s %3s  %10s  %14d  %9.1f  %4d\n",
			r.Name, r.Status, att, r.Wall.Round(time.Millisecond),
			r.Metrics.Cycles, r.SimMIPS(), r.Metrics.ExitCode)
	}
	fmt.Fprintf(&b, "%d job(s): %s  (workers=%d, wall %s)\n",
		len(s.Jobs), s.Counts(), s.Workers, s.Wall.Round(time.Millisecond))
	return b.String()
}

// round1 rounds to one decimal place so manifest floats render compactly.
func round1(f float64) float64 {
	if f < 0 {
		return f
	}
	n := f*10 + 0.5
	return float64(uint64(n)) / 10
}
