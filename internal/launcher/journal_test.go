package launcher

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestJournalAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Start("job00", 1); err != nil {
		t.Fatal(err)
	}
	if err := j.Done(Record{Job: "job00", Status: StatusOK, Attempts: 1, Cycles: 42}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != nil {
		t.Fatalf("unexpected torn report: %v", torn)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Event != EventStart || recs[0].Job != "job00" || recs[0].Attempt != 1 {
		t.Errorf("start record = %+v", recs[0])
	}
	if recs[1].Event != EventDone || recs[1].Status != StatusOK || recs[1].Cycles != 42 {
		t.Errorf("done record = %+v", recs[1])
	}
	if recs[0].Seq >= recs[1].Seq {
		t.Errorf("seq not monotonic: %d then %d", recs[0].Seq, recs[1].Seq)
	}
}

// TestJournalTornTail is the crash-mid-append case: the final record is
// cut partway through. Complete records are salvaged, the tail reported.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	whole := `{"event":"start","seq":0,"attempt":1,"job":"a","status":"","attempts":0,"exit":0,"cycles":0,"wall_ms":0,"sim_mips":0}` + "\n"
	writeFile(t, path, whole+`{"event":"done","seq":1,"job":"a","status":"ok`)

	recs, torn, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Event != EventStart {
		t.Fatalf("salvaged %d records (%+v), want the 1 complete start", len(recs), recs)
	}
	if torn == nil || !torn.Tail || torn.Line != 2 {
		t.Fatalf("torn = %+v, want tail at line 2", torn)
	}
	if !strings.Contains(torn.String(), "torn tail") {
		t.Errorf("torn.String() = %q", torn.String())
	}
}

// A complete final record that merely lost its trailing newline is still
// salvaged — only genuinely unparseable tails are reported torn.
func TestJournalTailWithoutNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	writeFile(t, path, `{"event":"done","seq":0,"job":"a","status":"ok","attempts":1,"exit":0,"cycles":7,"wall_ms":1,"sim_mips":0}`)
	recs, torn, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != nil || len(recs) != 1 || recs[0].Cycles != 7 {
		t.Fatalf("recs=%+v torn=%+v", recs, torn)
	}
}

func TestJournalGarbageLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal")
	writeFile(t, path, strings.Join([]string{
		`{"event":"start","seq":0,"attempt":1,"job":"a"}`,
		`not json at all`,
		`{"event":"mystery","seq":9,"job":"a"}`,
		`{"event":"done","seq":2,"job":"a","status":"ok","attempts":1,"exit":0,"cycles":1,"wall_ms":1,"sim_mips":0}`,
		``,
	}, "\n"))
	recs, torn, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("salvaged %d records, want 2: %+v", len(recs), recs)
	}
	if torn == nil || torn.Line != 2 || torn.Lines != 2 || torn.Tail {
		t.Fatalf("torn = %+v", torn)
	}
}

func TestReadManifestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	writeFile(t, path,
		`{"job":"a","status":"ok","attempts":1,"exit":0,"cycles":10,"wall_ms":1,"sim_mips":0}`+"\n"+
			`{"job":"b","status":"ok","attempts":1,"exi`)
	recs, torn, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Job != "a" || recs[0].Cycles != 10 {
		t.Fatalf("recs = %+v", recs)
	}
	if torn == nil || !torn.Tail {
		t.Fatalf("torn = %+v, want torn tail", torn)
	}
	if _, _, err := ReadManifest(filepath.Join(t.TempDir(), "absent")); !os.IsNotExist(err) {
		t.Errorf("missing manifest: err = %v, want IsNotExist", err)
	}
}

func TestReadPrior(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "j")
	manifest := filepath.Join(dir, "m")

	// Neither file: clean slate.
	prior, torn, err := ReadPrior(journal, manifest)
	if err != nil || torn != nil || len(prior) != 0 {
		t.Fatalf("fresh: prior=%v torn=%v err=%v", prior, torn, err)
	}

	// Journal present: ok job done, crashed job started twice, failed job.
	writeFile(t, journal, strings.Join([]string{
		`{"event":"start","seq":0,"attempt":1,"job":"done"}`,
		`{"event":"done","seq":1,"job":"done","status":"ok","attempts":1,"exit":0,"cycles":5,"wall_ms":1,"sim_mips":0}`,
		`{"event":"start","seq":2,"attempt":1,"job":"crashed"}`,
		`{"event":"start","seq":3,"attempt":2,"job":"crashed"}`,
		`{"event":"start","seq":4,"attempt":1,"job":"bad"}`,
		`{"event":"done","seq":5,"job":"bad","status":"failed","attempts":1,"exit":3,"cycles":0,"wall_ms":1,"sim_mips":0,"error":"boom"}`,
		``,
	}, "\n"))
	prior, torn, err = ReadPrior(journal, manifest)
	if err != nil || torn != nil {
		t.Fatalf("torn=%v err=%v", torn, err)
	}
	if p := prior["done"]; !p.Done || p.InFlight || p.Record.Status != StatusOK || p.Attempts != 1 {
		t.Errorf("done job = %+v", p)
	}
	if p := prior["crashed"]; p.Done || !p.InFlight || p.Attempts != 2 {
		t.Errorf("crashed job = %+v", p)
	}
	if p := prior["bad"]; !p.Done || p.InFlight || p.Record.Status != StatusFailed {
		t.Errorf("bad job = %+v", p)
	}

	// Manifest fallback when no journal.
	if err := os.Remove(journal); err != nil {
		t.Fatal(err)
	}
	writeFile(t, manifest, `{"job":"m1","status":"ok","attempts":2,"exit":0,"cycles":9,"wall_ms":1,"sim_mips":0}`+"\n")
	prior, _, err = ReadPrior(journal, manifest)
	if err != nil {
		t.Fatal(err)
	}
	if p := prior["m1"]; !p.Done || p.Attempts != 2 || p.Record.Cycles != 9 {
		t.Errorf("manifest fallback = %+v", p)
	}
}

func TestMergeResumedAndTable(t *testing.T) {
	carried := map[string]Result{
		"a": CarriedResult(Record{Job: "a", Status: StatusOK, Attempts: 2, Cycles: 100, WallMS: 50}),
	}
	fresh := &Summary{
		Jobs: []Result{{Name: "b", Status: StatusOK, Attempts: 1, Prior: 1, Resumed: true,
			Metrics: Metrics{Cycles: 200}, Wall: time.Second}},
		Workers: 2, Wall: time.Second,
	}
	merged := MergeResumed([]string{"a", "b"}, carried, fresh)
	if len(merged.Jobs) != 2 || merged.Jobs[0].Name != "a" || merged.Jobs[1].Name != "b" {
		t.Fatalf("merged = %+v", merged.Jobs)
	}
	if err := merged.Err(); err != nil {
		t.Errorf("merged.Err() = %v", err)
	}
	recs := merged.Records()
	if !recs[0].Resumed || recs[0].Attempts != 2 || recs[0].Cycles != 100 {
		t.Errorf("carried record = %+v", recs[0])
	}
	if !recs[1].Resumed || recs[1].Attempts != 2 {
		t.Errorf("resumed record = %+v", recs[1])
	}
	table := FormatTable(merged)
	if !strings.Contains(table, "2+0") || !strings.Contains(table, "1+1") {
		t.Errorf("table does not mark carried attempts:\n%s", table)
	}
	// A resumed run whose re-run job failed must still aggregate an error.
	fresh.Jobs[0].Status = StatusFailed
	if err := MergeResumed([]string{"a", "b"}, carried, fresh).Err(); err == nil {
		t.Error("merged summary with failed job reports no error")
	}
}

// TestLauncherJournals runs a pool with a journal attached and checks the
// on-disk event stream plus compaction.
func TestLauncherJournals(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "run.journal")
	manifestPath := filepath.Join(dir, "run.manifest.jsonl")
	j, err := OpenJournal(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Name: "good", Run: func(ctx context.Context, attempt int) (Metrics, error) {
			return Metrics{Cycles: 11}, nil
		}},
		{Name: "flaky", Prior: 1, Run: func(ctx context.Context, attempt int) (Metrics, error) {
			if attempt == 1 {
				return Metrics{}, os.ErrDeadlineExceeded
			}
			return Metrics{Cycles: 22}, nil
		}},
	}
	l := New(Options{Workers: 2, Retries: 1, Backoff: time.Millisecond, Journal: j})
	sum := l.Run(context.Background(), jobs)
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	recs, torn, err := ReadJournal(journalPath)
	if err != nil || torn != nil {
		t.Fatalf("read journal: recs=%v torn=%v err=%v", recs, torn, err)
	}
	starts, dones := 0, 0
	for _, r := range recs {
		switch r.Event {
		case EventStart:
			starts++
		case EventDone:
			dones++
			if r.Job == "flaky" && (r.Attempts != 3 || !r.Resumed) {
				t.Errorf("flaky done record = %+v, want attempts=3 resumed", r.Record)
			}
		}
	}
	if starts != 3 || dones != 2 {
		t.Errorf("journal has %d starts, %d dones; want 3, 2", starts, dones)
	}

	if err := Compact(journalPath, manifestPath, sum); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(journalPath); !os.IsNotExist(err) {
		t.Errorf("journal survives compaction: %v", err)
	}
	mrecs, mtorn, err := ReadManifest(manifestPath)
	if err != nil || mtorn != nil || len(mrecs) != 2 {
		t.Fatalf("compacted manifest: recs=%v torn=%v err=%v", mrecs, mtorn, err)
	}
}

// FuzzReadJournal hammers the salvaging reader with torn and garbage
// input: it must never panic, never fail the parse, and every salvaged
// record must be a valid journal event.
func FuzzReadJournal(f *testing.F) {
	f.Add([]byte(`{"event":"start","seq":0,"attempt":1,"job":"a"}` + "\n"))
	f.Add([]byte(`{"event":"done","seq":1,"job":"a","status":"ok","attempts":1,"exit":0,"cycles":1,"wall_ms":1,"sim_mips":0}` + "\n"))
	f.Add([]byte(`{"event":"done","seq":1,"job":"a","status":"ok`))
	f.Add([]byte("\x00\xff{}[]\nnot json\n"))
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "j")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, torn, err := ReadJournal(path)
		if err != nil {
			t.Fatalf("ReadJournal failed on salvageable input: %v", err)
		}
		for _, r := range recs {
			if r.Event != EventStart && r.Event != EventDone {
				t.Fatalf("salvaged record with bad event: %+v", r)
			}
			if r.Job == "" {
				t.Fatalf("salvaged record without job: %+v", r)
			}
			if _, err := json.Marshal(r); err != nil {
				t.Fatalf("salvaged record does not re-encode: %v", err)
			}
		}
		if torn != nil && torn.Lines == 0 {
			t.Fatalf("torn report with zero lines: %+v", torn)
		}
	})
}
