package pfa

import (
	"fmt"

	"firemarshal/internal/sim"
)

// Baseline models the non-accelerated remote-paging path: every remote page
// fault traps into the kernel, which walks its data structures, performs
// the fetch synchronously through the OS network stack, and updates paging
// bookkeeping (LRU lists, reverse maps) before resuming — the "emulating
// the PFA's behavior in the regular page fault handler" configuration that
// §IV-A built first. All of that work sits on the fault's critical path,
// which is precisely what the PFA removes.
type Baseline struct {
	backend Backend

	remoteBase uint64
	remoteSize uint64

	resident map[uint64]bool

	timing BaselineTiming
	last   Stats
	total  Stats
}

// BaselineTiming models the software fault path costs in cycles.
type BaselineTiming struct {
	// TrapCycles covers the trap entry + context save.
	TrapCycles uint64
	// SoftwareWalkCycles is the kernel's fault triage and page-table work.
	SoftwareWalkCycles uint64
	// NetworkStackCycles is the OS networking overhead added to the raw
	// transfer (syscall layers, driver, completion handling).
	NetworkStackCycles uint64
	// BookkeepingCycles is LRU/rmap/cgroup accounting done synchronously.
	BookkeepingCycles uint64
	// ReturnCycles covers context restore + return.
	ReturnCycles uint64
}

// DefaultBaselineTiming reflects measured Linux do_page_fault-style costs
// relative to the hardware path: microseconds of kernel work per fault at
// 1GHz.
func DefaultBaselineTiming() BaselineTiming {
	return BaselineTiming{
		TrapCycles:         300,
		SoftwareWalkCycles: 900,
		NetworkStackCycles: 2500,
		BookkeepingCycles:  1800,
		ReturnCycles:       250,
	}
}

// NewBaseline creates the software-paging comparison for the same remote
// region and backend as the PFA device.
func NewBaseline(timing BaselineTiming, backend Backend, remoteBase, remoteSize uint64) (*Baseline, error) {
	if remoteBase%PageSize != 0 || remoteSize%PageSize != 0 {
		return nil, fmt.Errorf("pfa: remote region must be page aligned")
	}
	if backend == nil {
		return nil, fmt.Errorf("pfa: nil backend")
	}
	return &Baseline{
		timing:     timing,
		backend:    backend,
		remoteBase: remoteBase,
		remoteSize: remoteSize,
		resident:   map[uint64]bool{},
	}, nil
}

// BeforeAccess implements sim.MemHook.
func (b *Baseline) BeforeAccess(m *sim.Machine, addr uint64, store bool) (uint64, error) {
	if addr < b.remoteBase || addr >= b.remoteBase+b.remoteSize {
		return 0, nil
	}
	page := addr &^ (PageSize - 1)
	if b.resident[page] {
		return 0, nil
	}
	data, rdma, err := b.backend.FetchPage(page)
	if err != nil {
		return 0, fmt.Errorf("pfa baseline: remote fetch for %#x: %w", page, err)
	}
	m.Mem.WriteBytes(page, data)
	b.resident[page] = true

	kernel := b.timing.TrapCycles + b.timing.BookkeepingCycles + b.timing.ReturnCycles
	b.last = Stats{
		DetectCycles:  b.timing.TrapCycles,
		WalkCycles:    b.timing.SoftwareWalkCycles,
		RDMACycles:    rdma + b.timing.NetworkStackCycles,
		InstallCycles: b.timing.BookkeepingCycles + b.timing.ReturnCycles,
	}
	// Attribute trap/bookkeeping to KernelCycles in the totals so reports
	// can show how much of the path is kernel-only work.
	b.total.Faults++
	b.total.DetectCycles += b.timing.TrapCycles
	b.total.WalkCycles += b.timing.SoftwareWalkCycles
	b.total.RDMACycles += rdma + b.timing.NetworkStackCycles
	b.total.InstallCycles += b.timing.BookkeepingCycles + b.timing.ReturnCycles
	_ = kernel
	return b.last.TotalCycles(), nil
}

// Evict drops a page so it faults again (for repeated measurements).
func (b *Baseline) Evict(addr uint64) {
	delete(b.resident, addr&^(PageSize-1))
}

// TotalStats returns cumulative fault statistics.
func (b *Baseline) TotalStats() Stats { return b.total }

// LastStats returns the most recent fault's per-step cycles.
func (b *Baseline) LastStats() Stats { return b.last }
