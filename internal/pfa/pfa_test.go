package pfa

import (
	"io"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/isa"
	"firemarshal/internal/netsim"
	"firemarshal/internal/sim"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/sim/rtlsim"
)

const remoteBase = 0x40000000
const remoteSize = 64 * PageSize

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(DefaultTiming(), &GoldenBackend{Latency: 1200}, remoteBase, remoteSize)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFaultServicesPage(t *testing.T) {
	d := newDevice(t)
	m := sim.NewMachine()
	// Kernel provisions a free frame.
	if _, err := d.Store(m, MMIOBase+regFreeQ, 8, 1); err != nil {
		t.Fatal(err)
	}
	extra, err := d.BeforeAccess(m, remoteBase+0x10, false)
	if err != nil {
		t.Fatal(err)
	}
	if extra == 0 {
		t.Error("fault should cost cycles")
	}
	// Page data must now be resident and correct per the golden pattern.
	want, _, _ := (&GoldenBackend{Latency: 1200}).FetchPage(remoteBase)
	got := m.Mem.ReadBytes(remoteBase, PageSize)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("page byte %d = %#x, want %#x", i, got[i], want[i])
		}
	}
	// Second access: no fault.
	extra, err = d.BeforeAccess(m, remoteBase+0x20, false)
	if err != nil || extra != 0 {
		t.Errorf("resident access should be free: extra=%d err=%v", extra, err)
	}
	if d.TotalStats().Faults != 1 {
		t.Errorf("faults = %d", d.TotalStats().Faults)
	}
}

func TestFaultWithEmptyFreeQueueFails(t *testing.T) {
	d := newDevice(t)
	m := sim.NewMachine()
	if _, err := d.BeforeAccess(m, remoteBase, false); err == nil {
		t.Error("expected error when kernel has not provisioned frames")
	}
}

func TestNewQueueBookkeeping(t *testing.T) {
	d := newDevice(t)
	m := sim.NewMachine()
	d.Store(m, MMIOBase+regFreeQ, 8, 1)
	d.Store(m, MMIOBase+regFreeQ, 8, 2)
	d.BeforeAccess(m, remoteBase, false)
	d.BeforeAccess(m, remoteBase+PageSize, false)

	n, _, _ := d.Load(m, MMIOBase+regNewStat, 8)
	if n != 2 {
		t.Fatalf("newq occupancy = %d", n)
	}
	p1, _, _ := d.Load(m, MMIOBase+regNewQ, 8)
	p2, _, _ := d.Load(m, MMIOBase+regNewQ, 8)
	if p1 != remoteBase || p2 != remoteBase+PageSize {
		t.Errorf("newq pops = %#x, %#x", p1, p2)
	}
	empty, _, _ := d.Load(m, MMIOBase+regNewQ, 8)
	if empty != 0 {
		t.Errorf("empty newq pop = %#x", empty)
	}
}

func TestLatencyCounters(t *testing.T) {
	d := newDevice(t)
	m := sim.NewMachine()
	d.Store(m, MMIOBase+regFreeQ, 8, 1)
	d.BeforeAccess(m, remoteBase, false)
	det, _, _ := d.Load(m, MMIOBase+regLatDetect, 8)
	walk, _, _ := d.Load(m, MMIOBase+regLatWalk, 8)
	rdma, _, _ := d.Load(m, MMIOBase+regLatRDMA, 8)
	inst, _, _ := d.Load(m, MMIOBase+regLatInstal, 8)
	timing := DefaultTiming()
	if det != timing.DetectCycles || walk != timing.WalkCycles || inst != timing.InstallCycles {
		t.Errorf("per-step counters wrong: %d %d %d", det, walk, inst)
	}
	if rdma != 1200 {
		t.Errorf("rdma counter = %d", rdma)
	}
}

func TestEvictForcesRefault(t *testing.T) {
	d := newDevice(t)
	m := sim.NewMachine()
	d.Store(m, MMIOBase+regFreeQ, 8, 1)
	d.Store(m, MMIOBase+regFreeQ, 8, 2)
	d.BeforeAccess(m, remoteBase, false)
	d.Store(m, MMIOBase+regEvict, 8, remoteBase+0x40)
	extra, err := d.BeforeAccess(m, remoteBase, false)
	if err != nil || extra == 0 {
		t.Errorf("evicted page should refault: extra=%d err=%v", extra, err)
	}
	if d.TotalStats().Faults != 2 {
		t.Errorf("faults = %d", d.TotalStats().Faults)
	}
}

func TestFreeQueueOverflow(t *testing.T) {
	d := newDevice(t)
	m := sim.NewMachine()
	for i := 0; i < FreeQCapacity; i++ {
		if _, err := d.Store(m, MMIOBase+regFreeQ, 8, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Store(m, MMIOBase+regFreeQ, 8, 999); err == nil {
		t.Error("expected overflow error")
	}
}

func TestBaselineSlowerThanPFA(t *testing.T) {
	// The headline claim: the hardware critical path is far cheaper than
	// the software paging path for the same pages and network.
	backend := &GoldenBackend{Latency: 1200}
	d, _ := NewDevice(DefaultTiming(), backend, remoteBase, remoteSize)
	b, _ := NewBaseline(DefaultBaselineTiming(), backend, remoteBase, remoteSize)
	m1, m2 := sim.NewMachine(), sim.NewMachine()
	d.Store(m1, MMIOBase+regFreeQ, 8, 1)

	pfaCost, err := d.BeforeAccess(m1, remoteBase, false)
	if err != nil {
		t.Fatal(err)
	}
	swCost, err := b.BeforeAccess(m2, remoteBase, false)
	if err != nil {
		t.Fatal(err)
	}
	if swCost <= pfaCost {
		t.Errorf("software path (%d) should be slower than PFA (%d)", swCost, pfaCost)
	}
	// With network time excluded, the gap is the kernel overhead the PFA
	// moves off the critical path.
	pfaNonNet := pfaCost - 1200
	swNonNet := swCost - 1200
	if swNonNet < 10*pfaNonNet {
		t.Errorf("kernel-side overhead should dominate: pfa=%d sw=%d", pfaNonNet, swNonNet)
	}
}

func TestNetBackendFetchesFromServer(t *testing.T) {
	fabric := netsim.New(netsim.DefaultConfig())
	serverMem := make([]byte, remoteSize)
	for i := range serverMem {
		serverMem[i] = byte(i * 7)
	}
	fabric.RegisterMemory("server", remoteBase, serverMem)

	backend := &NetBackend{Fabric: fabric, ServerNode: "server"}
	d, _ := NewDevice(DefaultTiming(), backend, remoteBase, remoteSize)
	m := sim.NewMachine()
	d.Store(m, MMIOBase+regFreeQ, 8, 1)
	if _, err := d.BeforeAccess(m, remoteBase+PageSize, false); err != nil {
		t.Fatal(err)
	}
	got := m.Mem.ReadBytes(remoteBase+PageSize, 16)
	for i := 0; i < 16; i++ {
		if got[i] != serverMem[PageSize+i] {
			t.Fatalf("fetched byte %d = %#x, want %#x", i, got[i], serverMem[PageSize+i])
		}
	}
	if fabric.SnapshotStats().RDMAReads != 1 {
		t.Error("RDMA read not recorded on fabric")
	}
}

func TestNetBackendUnknownServer(t *testing.T) {
	backend := &NetBackend{Fabric: netsim.New(netsim.DefaultConfig()), ServerNode: "ghost"}
	d, _ := NewDevice(DefaultTiming(), backend, remoteBase, remoteSize)
	m := sim.NewMachine()
	d.Store(m, MMIOBase+regFreeQ, 8, 1)
	if _, err := d.BeforeAccess(m, remoteBase, false); err == nil {
		t.Error("expected error for missing server")
	}
}

func TestAlignmentValidation(t *testing.T) {
	if _, err := NewDevice(DefaultTiming(), &GoldenBackend{}, 0x1001, PageSize); err == nil {
		t.Error("expected alignment error")
	}
	if _, err := NewBaseline(DefaultBaselineTiming(), &GoldenBackend{}, remoteBase, 100); err == nil {
		t.Error("expected alignment error")
	}
	if _, err := NewDevice(DefaultTiming(), nil, remoteBase, PageSize); err == nil {
		t.Error("expected nil-backend error")
	}
}

// guestProgram is the latency microbenchmark core: provision frames, touch
// a remote page, read per-step counters from MMIO, print them.
const guestProgram = `
.equ PFA, 0x55000000
.equ REMOTE, 0x40000000
_start:
    # push a free frame
    li t0, PFA
    li t1, 1
    sd t1, 0x00(t0)
    # touch a remote page (faults, serviced by hardware)
    li t2, REMOTE
    ld t3, 0(t2)
    # print per-step latency counters
    ld a0, 0x20(t0)
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    ld a0, 0x28(t0)
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    ld a0, 0x30(t0)
    li a7, 0x101
    ecall
    li a0, ','
    li a7, 0x102
    ecall
    ld a0, 0x38(t0)
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall
`

func buildGuest(t *testing.T) *isa.Executable {
	t.Helper()
	exe, err := asm.Assemble(guestProgram, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

func TestGuestVisibleOnFunctionalAndRTL(t *testing.T) {
	// §IV-A methodology: the same artifact runs against the Spike golden
	// model and in RTL simulation; outputs must agree.
	exe := buildGuest(t)
	outputs := map[string]string{}

	fp := funcsim.New(funcsim.Config{Variant: "spike"})
	d1 := newDevice(t)
	fp.AddDevice(d1)
	fp.AddHook(d1)
	var fOut stringsWriter
	if _, err := fp.Exec(exe, &fOut); err != nil {
		t.Fatal(err)
	}
	outputs["spike"] = fOut.s

	rp, err := rtlsim.New(rtlsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d2 := newDevice(t)
	rp.AddDevice(d2)
	rp.AddHook(d2)
	var rOut stringsWriter
	if _, err := rp.Exec(exe, &rOut); err != nil {
		t.Fatal(err)
	}
	outputs["firesim"] = rOut.s

	if outputs["spike"] != outputs["firesim"] {
		t.Errorf("outputs differ:\nspike:   %q\nfiresim: %q", outputs["spike"], outputs["firesim"])
	}
	if outputs["spike"] != "3,24,1200,8\n" {
		t.Errorf("latency CSV = %q", outputs["spike"])
	}
}

type stringsWriter struct{ s string }

func (w *stringsWriter) Write(p []byte) (int, error) {
	w.s += string(p)
	return len(p), nil
}

var _ io.Writer = (*stringsWriter)(nil)
var _ sim.Device = (*Device)(nil)
var _ sim.MemHook = (*Device)(nil)
var _ sim.MemHook = (*Baseline)(nil)
