// Package pfa models the Page Fault Accelerator of the paper's first case
// study (§IV-A): a hardware unit embedded in the MMU that services remote
// page faults by fetching pages over an RDMA-capable network interface,
// keeping the OS's slow paging logic off the critical path. The package
// provides three pieces:
//
//   - Device: the PFA hardware model (MMIO queues, per-step latency
//     counters) installed on the cycle-exact simulator and, as a golden
//     model, on the Spike functional simulator — mirroring the paper's
//     methodology of verifying the same software against a Spike golden
//     model before RTL simulation.
//   - GoldenBackend: emulated remote memory with fixed latency (what the
//     modified Spike used).
//   - NetBackend: real RDMA fetches over the netsim fabric from a
//     bare-metal memory-server job (the FireSim configuration).
//   - Baseline: the non-accelerated comparison that emulates the PFA's
//     behaviour in the regular (software) page fault handler, as the
//     kernel bring-up did before the real driver existed.
package pfa

import (
	"fmt"

	"firemarshal/internal/netsim"
	"firemarshal/internal/sim"
)

// PageSize is the guest page granularity.
const PageSize = 4096

// MMIOBase is the PFA's device address.
const MMIOBase = 0x55000000

// MMIO register offsets.
const (
	regFreeQ     = 0x00 // store: push a free frame token
	regFreeStat  = 0x08 // load: free-queue occupancy
	regNewQ      = 0x10 // load: pop a fetched page address (0 = empty)
	regNewStat   = 0x18 // load: new-queue occupancy
	regLatDetect = 0x20 // load: last fault's detect cycles
	regLatWalk   = 0x28 // load: last fault's page-table walk cycles
	regLatRDMA   = 0x30 // load: last fault's network fetch cycles
	regLatInstal = 0x38 // load: last fault's install cycles
	regFaults    = 0x40 // load: total faults serviced
	regEvict     = 0x48 // store: evict the page containing the address
	regSize      = 0x50
)

// Timing of the hardware steps (cycles), from the block diagram in Fig. 4:
// detect (MMU signals the PFA), page-table walk, RDMA issue+transfer
// (from the backend), and page install.
type Timing struct {
	DetectCycles  uint64
	WalkCycles    uint64
	InstallCycles uint64
}

// DefaultTiming matches a hardware fault path: a handful of cycles per
// step, with the network transfer dominating.
func DefaultTiming() Timing {
	return Timing{DetectCycles: 3, WalkCycles: 24, InstallCycles: 8}
}

// Backend supplies remote pages.
type Backend interface {
	// FetchPage returns the PageSize bytes backing the remote page at addr
	// and the modeled transfer latency in cycles.
	FetchPage(addr uint64) ([]byte, uint64, error)
	// Name describes the backend in logs.
	Name() string
}

// GoldenBackend emulates remote memory locally — the Spike golden model of
// §IV-A ("the golden model ... emulated remote memory").
type GoldenBackend struct {
	// Latency is the fixed modeled fetch latency.
	Latency uint64
	// Pattern seeds deterministic page contents.
	Pattern byte
}

// Name implements Backend.
func (g *GoldenBackend) Name() string { return "golden" }

// FetchPage implements Backend: page contents are a deterministic function
// of the address so clients can validate fetched data.
func (g *GoldenBackend) FetchPage(addr uint64) ([]byte, uint64, error) {
	page := make([]byte, PageSize)
	base := addr &^ (PageSize - 1)
	for i := range page {
		page[i] = byte(base>>12) ^ byte(i) ^ g.Pattern
	}
	return page, g.Latency, nil
}

// NetBackend fetches pages from a memory-server node over the fabric.
type NetBackend struct {
	Fabric *netsim.Fabric
	// ServerNode names the bare-metal job serving remote memory.
	ServerNode string
}

// Name implements Backend.
func (n *NetBackend) Name() string { return "rdma:" + n.ServerNode }

// FetchPage implements Backend.
func (n *NetBackend) FetchPage(addr uint64) ([]byte, uint64, error) {
	base := addr &^ (PageSize - 1)
	return n.Fabric.RDMARead(n.ServerNode, base, PageSize)
}

// Stats aggregates fault-service measurements.
type Stats struct {
	Faults        uint64
	DetectCycles  uint64
	WalkCycles    uint64
	RDMACycles    uint64
	InstallCycles uint64
	KernelCycles  uint64 // baseline only: synchronous kernel work
}

// TotalCycles is the summed critical-path cost of all faults.
func (s Stats) TotalCycles() uint64 {
	return s.DetectCycles + s.WalkCycles + s.RDMACycles + s.InstallCycles + s.KernelCycles
}

// Device is the PFA hardware model. It is both an MMIO device (control
// interface) and a memory hook (fault detection on the remote region).
type Device struct {
	timing  Timing
	backend Backend

	remoteBase uint64
	remoteSize uint64

	resident map[uint64]bool
	freeq    []uint64
	newq     []uint64

	last  Stats // last fault's per-step cycles in the *Cycles fields
	total Stats
}

// FreeQCapacity bounds the free-frame queue, as the real PFA's queues were
// fixed-size hardware structures.
const FreeQCapacity = 64

// NewDevice creates a PFA servicing the remote region [base, base+size).
func NewDevice(timing Timing, backend Backend, remoteBase, remoteSize uint64) (*Device, error) {
	if remoteBase%PageSize != 0 || remoteSize%PageSize != 0 {
		return nil, fmt.Errorf("pfa: remote region must be page aligned")
	}
	if backend == nil {
		return nil, fmt.Errorf("pfa: nil backend")
	}
	return &Device{
		timing:     timing,
		backend:    backend,
		remoteBase: remoteBase,
		remoteSize: remoteSize,
		resident:   map[uint64]bool{},
	}, nil
}

// Name implements sim.Device.
func (d *Device) Name() string { return "pfa" }

// Contains implements sim.Device.
func (d *Device) Contains(addr uint64) bool {
	return addr >= MMIOBase && addr < MMIOBase+regSize
}

// AddrRange implements sim.AddrRanger for the machine's device index.
func (d *Device) AddrRange() (uint64, uint64) { return MMIOBase, MMIOBase + regSize }

// Load implements sim.Device.
func (d *Device) Load(m *sim.Machine, addr uint64, size int) (uint64, uint64, error) {
	switch addr - MMIOBase {
	case regFreeStat:
		return uint64(len(d.freeq)), 0, nil
	case regNewQ:
		if len(d.newq) == 0 {
			return 0, 0, nil
		}
		v := d.newq[0]
		d.newq = d.newq[1:]
		return v, 0, nil
	case regNewStat:
		return uint64(len(d.newq)), 0, nil
	case regLatDetect:
		return d.last.DetectCycles, 0, nil
	case regLatWalk:
		return d.last.WalkCycles, 0, nil
	case regLatRDMA:
		return d.last.RDMACycles, 0, nil
	case regLatInstal:
		return d.last.InstallCycles, 0, nil
	case regFaults:
		return d.total.Faults, 0, nil
	default:
		return 0, 0, fmt.Errorf("pfa: load from unknown register %#x", addr)
	}
}

// Store implements sim.Device.
func (d *Device) Store(m *sim.Machine, addr uint64, size int, val uint64) (uint64, error) {
	switch addr - MMIOBase {
	case regFreeQ:
		if len(d.freeq) >= FreeQCapacity {
			return 0, fmt.Errorf("pfa: free queue overflow")
		}
		d.freeq = append(d.freeq, val)
		return 0, nil
	case regEvict:
		page := val &^ (PageSize - 1)
		delete(d.resident, page)
		return 0, nil
	default:
		return 0, fmt.Errorf("pfa: store to unknown register %#x", addr)
	}
}

// BeforeAccess implements sim.MemHook: detect remote page faults and
// service them in "hardware".
func (d *Device) BeforeAccess(m *sim.Machine, addr uint64, store bool) (uint64, error) {
	if addr < d.remoteBase || addr >= d.remoteBase+d.remoteSize {
		return 0, nil
	}
	page := addr &^ (PageSize - 1)
	if d.resident[page] {
		return 0, nil
	}
	// The critical path, handled synchronously in hardware (Fig. 4 steps
	// 2-5): the kernel is not involved.
	if len(d.freeq) == 0 {
		return 0, fmt.Errorf("pfa: fault at %#x with empty free queue (kernel must provision frames)", addr)
	}
	d.freeq = d.freeq[:len(d.freeq)-1]

	data, rdma, err := d.backend.FetchPage(page)
	if err != nil {
		return 0, fmt.Errorf("pfa: remote fetch for %#x: %w", page, err)
	}
	m.Mem.WriteBytes(page, data)
	d.resident[page] = true
	d.newq = append(d.newq, page)

	d.last = Stats{
		DetectCycles:  d.timing.DetectCycles,
		WalkCycles:    d.timing.WalkCycles,
		RDMACycles:    rdma,
		InstallCycles: d.timing.InstallCycles,
	}
	d.total.Faults++
	d.total.DetectCycles += d.last.DetectCycles
	d.total.WalkCycles += d.last.WalkCycles
	d.total.RDMACycles += rdma
	d.total.InstallCycles += d.last.InstallCycles
	return d.last.TotalCycles(), nil
}

// TotalStats returns cumulative fault statistics.
func (d *Device) TotalStats() Stats { return d.total }

// LastStats returns the most recent fault's per-step cycles.
func (d *Device) LastStats() Stats { return d.last }

// ResidentPages returns how many remote pages are installed.
func (d *Device) ResidentPages() int { return len(d.resident) }
