// The farm loop: coverage-guided corpus generation, parallel lockstep
// evaluation, bisection + minimization of divergences, signature dedup,
// and a crash-safe JSONL manifest.
//
// Determinism is load-bearing: the same seeds, farm seed, and options
// produce byte-identical generated workloads and an identical manifest
// (no wall-clock fields), regardless of -jobs parallelism. That holds
// because evaluation is pure per entry, results are merged strictly in
// entry order, and each round's mutation RNG is seeded from
// FarmSeed+round while its bias comes from coverage merged over all
// prior entries — CI diffs two farm runs directly.
package verify

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sync"

	"firemarshal/internal/asm"
	"firemarshal/internal/cas"
	"firemarshal/internal/launcher"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim/rtlsim"
	"firemarshal/internal/workgen"
)

// FarmOptions configures one farm session (local run or one fleet shard).
type FarmOptions struct {
	// Store is the CAS holding checkpoints, repro sources, and manifests.
	Store *cas.Store
	// Journal, when set, receives one JSONL record per corpus entry plus
	// a final summary line (crash-safe: fsync per line).
	Journal *launcher.Journal
	// Seeds generate the round-0 corpus via workgen.RandomRecipe.
	Seeds []int64
	// Rounds of coverage-guided mutation after round 0 (default 1).
	Rounds int
	// Mutations per round (default: len(Seeds)).
	Mutations int
	// MaxEntries stops the farm after evaluating this many corpus
	// entries (0 = unlimited).
	MaxEntries int
	// MaxInstrs bounds each workload run (0 = the package default).
	MaxInstrs uint64
	// CkptEvery is the bisector's coarse checkpoint interval.
	CkptEvery uint64
	// RTLEvery spot-checks every Nth entry on the cycle-exact rtlsim
	// platform (0 = off).
	RTLEvery int
	// FarmSeed seeds each round's mutation RNG (FarmSeed + round).
	FarmSeed int64
	// Fault injects a deterministic divergence — the self-test hook.
	Fault *Fault
	// Jobs is the evaluation parallelism (default 1; results are merged
	// in entry order either way).
	Jobs int
	// Obs receives farm metrics (nil = the process-default registry).
	Obs *obs.Registry
	// Log, when set, receives human-readable progress lines.
	Log io.Writer
	// Ctx, when set, time-boxes the farm: no new entries are evaluated
	// after cancellation, already-evaluated entries are still recorded.
	Ctx context.Context
}

// FarmRecord is one manifest line: a corpus entry's outcome. It contains
// no timestamps or durations — two identical farm sessions produce
// byte-identical manifests.
type FarmRecord struct {
	Event string `json:"event"` // "entry"
	Entry int    `json:"entry"`
	Round int    `json:"round"`
	Name  string `json:"name"`
	// Seed is set for round-0 entries, Parent for mutants.
	Seed   int64  `json:"seed,omitempty"`
	Parent string `json:"parent,omitempty"`
	// Source is the CAS digest of the generated assembly.
	Source  string `json:"source"`
	Instret uint64 `json:"instret"`
	Exit    int64  `json:"exit"`
	// Status is "ok", "diverged", or "error".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Tier/Kind/Detail describe a divergence at lockstep level; Div adds
	// the bisected culprit when bisection reproduced it.
	Tier   string      `json:"tier,omitempty"`
	Kind   string      `json:"kind,omitempty"`
	Detail string      `json:"detail,omitempty"`
	Div    *Divergence `json:"divergence,omitempty"`
	// Sig is the dedup signature; NewSig marks its first occurrence,
	// which is when Repro (the minimized reproducer's CAS digest) and
	// ReproRecipe (its recipe JSON digest) are populated.
	Sig         string `json:"sig,omitempty"`
	NewSig      bool   `json:"new_sig,omitempty"`
	Repro       string `json:"repro,omitempty"`
	ReproRecipe string `json:"repro_recipe,omitempty"`
}

// FarmSummaryRecord is the manifest's final line — also what fleet
// coordinators parse back out of each shard's manifest to merge coverage
// and re-dedup signatures globally.
type FarmSummaryRecord struct {
	Event       string         `json:"event"` // "summary"
	Entries     int            `json:"entries"`
	Divergences int            `json:"divergences"`
	Signatures  map[string]int `json:"signatures,omitempty"`
	Coverage    Coverage       `json:"coverage"`
	Ratio       float64        `json:"ratio"`
}

// FarmSummary is the in-memory result of a farm session.
type FarmSummary struct {
	Entries     int
	Divergences int
	// Signatures maps each unique divergence signature to its hit count.
	Signatures map[string]int
	Coverage   Coverage
	Records    []FarmRecord
	// Repros maps signature → minimized repro source digest.
	Repros map[string]string
}

// entryEval is one corpus entry's evaluation — pure (no shared state),
// so entries evaluate in parallel and merge deterministically.
type entryEval struct {
	recipe workgen.Recipe
	round  int
	parent string
	source string
	ref    Outcome
	cov    Coverage
	// tier/kind/detail describe the first diverging tier ("" = clean).
	tier, kind, detail string
	err                string
}

// evaluateEntry assembles and runs one recipe on every tier.
func evaluateEntry(recipe workgen.Recipe, fault *Fault, limit uint64, checkRTL bool) *entryEval {
	e := &entryEval{recipe: recipe}
	exe, err := asm.Assemble(recipe.Source(), asm.Options{})
	if err != nil {
		e.err = err.Error()
		return e
	}

	ref := newTierRun(TierReference, exe, nil, limit)
	ref.onEvent = e.cov.NoteEvent
	if rerr := ref.run(); rerr != nil {
		e.ref = ref.outcome()
		e.ref.Err = rerr.Error()
	} else {
		e.ref = ref.outcome()
	}
	e.cov.NoteMachine(ref.m)

	for _, tier := range []string{TierFast, TierTraced} {
		tr := newTierRun(tier, exe, fault, limit)
		terr := tr.run()
		o := tr.outcome()
		if terr != nil {
			o.Err = terr.Error()
		}
		if tier == TierTraced {
			e.cov.NoteMachine(tr.m)
		}
		if kind, detail := diffOutcomes(e.ref, o); kind != "" && e.tier == "" {
			e.tier, e.kind, e.detail = tier, kind, detail
		}
	}

	if checkRTL && e.tier == "" {
		cfg := rtlsim.DefaultConfig()
		if limit > 0 {
			cfg.MaxInstrs = limit
		}
		// Only exit status and retired-instruction count are compared:
		// the cycle-exact platform's whole point is different timing,
		// and workload console output embeds rdcycle readings, so
		// console bytes legitimately differ.
		if p, err := rtlsim.New(cfg); err == nil {
			var console bytes.Buffer
			res, xerr := p.Exec(exe, &console)
			switch {
			case xerr != nil:
				e.tier, e.kind = TierRTL, "error"
				e.detail = fmt.Sprintf("rtl error %q vs reference none", xerr)
			case res.Exit != e.ref.Exit:
				e.tier, e.kind = TierRTL, "exit"
				e.detail = fmt.Sprintf("exit %d vs reference %d", res.Exit, e.ref.Exit)
			case res.Instrs != e.ref.Instret:
				e.tier, e.kind = TierRTL, "instret"
				e.detail = fmt.Sprintf("instret %d vs reference %d", res.Instrs, e.ref.Instret)
			}
		}
	}
	return e
}

// RunFarm executes one farm session and returns its summary. Records are
// appended to opt.Journal (when set) as they are merged, so a crash
// loses at most the entry being written.
func RunFarm(opt FarmOptions) (*FarmSummary, error) {
	if opt.Store == nil {
		return nil, fmt.Errorf("verify: farm needs a CAS store")
	}
	if len(opt.Seeds) == 0 {
		return nil, fmt.Errorf("verify: farm needs at least one seed")
	}
	rounds := opt.Rounds
	if rounds < 0 {
		rounds = 0
	}
	mutations := opt.Mutations
	if mutations <= 0 {
		mutations = len(opt.Seeds)
	}
	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = 1
	}
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	logf := func(format string, args ...any) {
		if opt.Log != nil {
			fmt.Fprintf(opt.Log, format+"\n", args...)
		}
	}

	sum := &FarmSummary{
		Signatures: map[string]int{},
		Repros:     map[string]string{},
	}
	var corpus []workgen.Recipe
	stopped := false

	for round := 0; round <= rounds && !stopped; round++ {
		var batch []workgen.Recipe
		if round == 0 {
			for _, s := range opt.Seeds {
				batch = append(batch, workgen.RandomRecipe(s))
			}
		} else {
			bias := sum.Coverage.Gaps()
			rng := rand.New(rand.NewSource(opt.FarmSeed + int64(round)))
			for i := 0; i < mutations; i++ {
				parent := corpus[i%len(corpus)]
				m := parent.Mutate(rng, bias)
				m.Name = fmt.Sprintf("%s.m%d.%d", parent.Name, round, i)
				batch = append(batch, m)
			}
			names := make([]string, len(bias))
			for i, k := range bias {
				names[i] = k.String()
			}
			logf("round %d: %d mutants, bias [%s]", round, len(batch), joinStrings(names))
		}
		if opt.MaxEntries > 0 && sum.Entries+len(batch) > opt.MaxEntries {
			batch = batch[:opt.MaxEntries-sum.Entries]
			stopped = true
		}

		// Evaluate the batch in parallel; merge strictly in entry order.
		evals := make([]*entryEval, len(batch))
		sem := make(chan struct{}, jobs)
		var wg sync.WaitGroup
		for i := range batch {
			if ctx.Err() != nil {
				stopped = true
				break
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				checkRTL := opt.RTLEvery > 0 && (sum.Entries+i)%opt.RTLEvery == 0
				e := evaluateEntry(batch[i], opt.Fault, opt.MaxInstrs, checkRTL)
				e.round = round
				if round > 0 {
					e.parent = corpus[i%len(corpus)].Name
				}
				evals[i] = e
			}(i)
		}
		wg.Wait()

		for _, e := range evals {
			if e == nil {
				break // cancelled before evaluation
			}
			rec, err := mergeEntry(opt, sum, e)
			if err != nil {
				return sum, err
			}
			if rec.Status == "diverged" {
				logf("entry %d %s: %s diverged (%s) sig=%s new=%v",
					rec.Entry, rec.Name, rec.Tier, rec.Kind, rec.Sig, rec.NewSig)
			}
		}
		corpus = append(corpus, batch...)
	}

	opt.Obs.Gauge("verify_coverage_ratio").Set(sum.Coverage.Ratio())
	opt.Obs.Gauge("verify_signatures_unique").Set(float64(len(sum.Signatures)))
	if err := opt.Journal.AppendLine(FarmSummaryRecord{
		Event:       "summary",
		Entries:     sum.Entries,
		Divergences: sum.Divergences,
		Signatures:  sum.Signatures,
		Coverage:    sum.Coverage,
		Ratio:       sum.Coverage.Ratio(),
	}); err != nil {
		return sum, err
	}
	logf("farm done: %d entries, %d divergences, %d unique signatures, coverage %.1f%%",
		sum.Entries, sum.Divergences, len(sum.Signatures), 100*sum.Coverage.Ratio())
	return sum, nil
}

// mergeEntry folds one evaluated entry into the summary — coverage
// merge, signature dedup, first-occurrence bisection bookkeeping,
// minimization, CAS storage, and the manifest line.
func mergeEntry(opt FarmOptions, sum *FarmSummary, e *entryEval) (*FarmRecord, error) {
	rec := FarmRecord{
		Event:  "entry",
		Entry:  sum.Entries,
		Round:  e.round,
		Name:   e.recipe.Name,
		Parent: e.parent,
	}
	if e.round == 0 {
		rec.Seed = e.recipe.Seed
	}
	sum.Entries++
	opt.Obs.Counter("verify_entries_total").Inc()
	sum.Coverage.Merge(e.cov)

	srcDigest, err := opt.Store.Put([]byte(e.recipe.Source()))
	if err != nil {
		return nil, err
	}
	rec.Source = srcDigest
	rec.Instret = e.ref.Instret
	rec.Exit = e.ref.Exit

	switch {
	case e.err != "":
		rec.Status, rec.Error = "error", e.err
	case e.tier == "":
		rec.Status = "ok"
	default:
		rec.Status = "diverged"
		rec.Tier, rec.Kind, rec.Detail = e.tier, e.kind, e.detail
		sum.Divergences++
		opt.Obs.Counter("verify_divergences_total").Inc()
		if err := bisectEntry(opt, sum, e, &rec); err != nil {
			return nil, err
		}
	}
	if err := opt.Journal.AppendLine(rec); err != nil {
		return nil, err
	}
	sum.Records = append(sum.Records, rec)
	return &rec, nil
}

// bisectEntry pins a diverged entry to its culprit instruction, dedupes
// by signature, and on a signature's first occurrence minimizes the
// workload and stores the repro in the CAS.
func bisectEntry(opt FarmOptions, sum *FarmSummary, e *entryEval, rec *FarmRecord) error {
	exe, err := asm.Assemble(e.recipe.Source(), asm.Options{})
	if err != nil {
		return err // assembled fine during evaluation; real I/O-free path
	}
	var div *Divergence
	if e.tier != TierRTL {
		div, err = Bisect(opt.Store, exe, e.tier, opt.Fault, opt.MaxInstrs, opt.CkptEvery)
		if err != nil {
			return err
		}
		opt.Obs.Counter("verify_bisect_probes_total").Add(uint64(probeCount(div)))
	}
	if div == nil {
		// rtl divergences and non-reproducing lockstep findings are
		// signed at lockstep granularity (no culprit instruction).
		rec.Sig = signature(e.tier, 0, "", e.kind)
	} else {
		rec.Div = div
		rec.Sig = div.Sig
	}

	first := sum.Signatures[rec.Sig] == 0
	sum.Signatures[rec.Sig]++
	rec.NewSig = first
	if !first || div == nil {
		return nil
	}
	small, smallDiv := Minimize(opt.Store, e.recipe, div, opt.Fault, opt.MaxInstrs, opt.CkptEvery)
	rec.Div = smallDiv
	repro, err := opt.Store.Put([]byte(small.Source()))
	if err != nil {
		return err
	}
	recipeJSON, err := recipeDigest(opt.Store, small)
	if err != nil {
		return err
	}
	rec.Repro, rec.ReproRecipe = repro, recipeJSON
	sum.Repros[rec.Sig] = repro
	return nil
}

func probeCount(d *Divergence) int {
	if d == nil {
		return 0
	}
	return d.Probes
}

func recipeDigest(store *cas.Store, r workgen.Recipe) (string, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return "", err
	}
	return store.Put(data)
}

func joinStrings(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += " "
		}
		out += s
	}
	return out
}
