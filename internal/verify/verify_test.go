package verify

import (
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/cas"
	"firemarshal/internal/isa"
	"firemarshal/internal/workgen"
)

func testStore(t *testing.T) *cas.Store {
	t.Helper()
	store, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return store
}

func assemble(t *testing.T, r workgen.Recipe) *isa.Executable {
	t.Helper()
	exe, err := asm.Assemble(r.Source(), asm.Options{})
	if err != nil {
		t.Fatalf("assembling %s: %v", r.Name, err)
	}
	return exe
}

// refInstret runs a recipe's reference tier to completion and returns
// how many instructions it retires.
func refInstret(t *testing.T, r workgen.Recipe) uint64 {
	t.Helper()
	tr := newTierRun(TierReference, assemble(t, r), nil, 0)
	if err := tr.run(); err != nil {
		t.Fatalf("reference run of %s: %v", r.Name, err)
	}
	if !tr.m.Halted {
		t.Fatalf("reference run of %s did not halt", r.Name)
	}
	return tr.m.Instret
}

func TestParseFault(t *testing.T) {
	f, err := ParseFault("fast:5000:x27:0x1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Tier != TierFast || f.Instr != 5000 || f.Reg != 27 || f.Xor != 1 {
		t.Fatalf("parsed %+v", f)
	}
	if f2, err := ParseFault("traced:10:27:255"); err != nil || f2.Reg != 27 || f2.Xor != 255 {
		t.Fatalf("parsed %+v err %v", f2, err)
	}
	for _, bad := range []string{
		"", "fast:1:2", "reference:1:1:1", "fast:0:1:1",
		"fast:1:x0:1", "fast:1:x32:1", "fast:1:x5:0", "fast:a:b:c",
	} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("ParseFault(%q) accepted", bad)
		}
	}
}

// TestCleanLockstep: an unfaulted workload agrees across all tiers and
// yields nonzero coverage.
func TestCleanLockstep(t *testing.T) {
	e := evaluateEntry(workgen.RandomRecipe(7), nil, 0, false)
	if e.err != "" {
		t.Fatalf("entry error: %s", e.err)
	}
	if e.tier != "" {
		t.Fatalf("clean workload diverged on %s: %s (%s)", e.tier, e.kind, e.detail)
	}
	if e.ref.Instret == 0 || !e.ref.Halted {
		t.Fatalf("reference outcome %+v", e.ref)
	}
	if e.cov.Ratio() == 0 {
		t.Fatal("no coverage recorded")
	}
	if e.cov.Ops == [2]uint64{} {
		t.Fatal("no opcode coverage recorded")
	}
}

// TestSeededFaultBisects is the farm's core self-test: inject a
// single-register corruption at a known retirement count and check the
// bisector lands on exactly that instruction.
func TestSeededFaultBisects(t *testing.T) {
	store := testStore(t)
	recipe := workgen.RandomRecipe(1)
	n := refInstret(t, recipe)
	fault := &Fault{Tier: TierFast, Instr: n / 2, Reg: 27, Xor: 1}

	e := evaluateEntry(recipe, fault, 0, false)
	if e.tier != TierFast {
		t.Fatalf("fault not detected: tier=%q kind=%q", e.tier, e.kind)
	}

	div, err := Bisect(store, assemble(t, recipe), TierFast, fault, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("divergence did not reproduce under bisection")
	}
	if div.Instr != fault.Instr {
		t.Fatalf("bisected to instruction %d, fault injected at %d", div.Instr, fault.Instr)
	}
	if div.Kind != "reg:x27" {
		t.Fatalf("kind %q, want reg:x27 (detail: %s)", div.Kind, div.Detail)
	}
	if div.Sig == "" || div.Disasm == "" {
		t.Fatalf("divergence incomplete: %+v", div)
	}

	// Minimization must preserve the signature and never grow the recipe.
	small, smallDiv := Minimize(store, recipe, div, fault, 0, 0)
	if smallDiv.Sig != div.Sig {
		t.Fatalf("minimized signature %s != original %s", smallDiv.Sig, div.Sig)
	}
	if len(small.Kernels) > len(recipe.Kernels) {
		t.Fatalf("minimization grew the recipe: %d > %d kernels", len(small.Kernels), len(recipe.Kernels))
	}
	if smallDiv.Instr != fault.Instr {
		t.Fatalf("minimized repro bisects to %d, want %d", smallDiv.Instr, fault.Instr)
	}
}

// TestBisectCleanReturnsNil: bisecting a workload with no divergence
// reports "did not reproduce" rather than fabricating a culprit.
func TestBisectCleanReturnsNil(t *testing.T) {
	store := testStore(t)
	recipe := workgen.RandomRecipe(3)
	div, err := Bisect(store, assemble(t, recipe), TierFast, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if div != nil {
		t.Fatalf("clean workload bisected to %+v", div)
	}
}

// TestCoverageGapsAndReport: an empty coverage wants every kernel family;
// a saturated one wants none; Report never panics.
func TestCoverageGapsAndReport(t *testing.T) {
	var c Coverage
	if c.Ratio() != 0 {
		t.Fatalf("empty coverage ratio %v", c.Ratio())
	}
	if len(c.Gaps()) == 0 {
		t.Fatal("empty coverage has no gaps")
	}
	full := Coverage{
		Ops:           genOps,
		Branch:        1<<numBranchShapes - 1,
		Mem:           1<<numMemClasses - 1,
		Fusion:        1<<uint(numFusionKinds) - 1,
		TraceDispatch: true,
		Pages:         64,
	}
	if r := full.Ratio(); r != 1 {
		t.Fatalf("full coverage ratio %v", r)
	}
	if gaps := full.Gaps(); len(gaps) != 0 {
		t.Fatalf("full coverage still wants %v", gaps)
	}
	if full.Report() == "" || c.Report() == "" {
		t.Fatal("empty report")
	}
	var m Coverage
	m.Merge(full)
	if m.Ratio() != 1 {
		t.Fatal("merge lost coverage")
	}
}
