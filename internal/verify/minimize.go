// Repro minimization: once a divergence is bisected and signed, shrink
// the workload that produced it as far as the signature allows. A
// reduction is kept only when re-running the full detect-and-bisect
// pipeline on the reduced recipe yields the SAME signature — the repro
// that lands in the CAS provably still triggers the same divergence at
// the same instruction.
package verify

import (
	"firemarshal/internal/asm"
	"firemarshal/internal/cas"
	"firemarshal/internal/workgen"
)

// minimizeAttempts caps re-verification runs per minimization; each
// attempt is a full lockstep + bisection of a candidate recipe.
const minimizeAttempts = 32

// Minimize greedily reduces recipe r, which bisected to d: drop kernels
// suffix-first (suffix drops leave the diverging execution prefix
// intact), then halve surviving kernels' shape parameters. Returns the
// smallest recipe that still signs identically and its divergence.
func Minimize(store *cas.Store, r workgen.Recipe, d *Divergence, fault *Fault, limit, ckptEvery uint64) (workgen.Recipe, *Divergence) {
	attempts := 0
	check := func(c workgen.Recipe) *Divergence {
		if attempts >= minimizeAttempts {
			return nil
		}
		attempts++
		exe, err := asm.Assemble(c.Source(), asm.Options{})
		if err != nil {
			return nil
		}
		div, err := Bisect(store, exe, d.Tier, fault, limit, ckptEvery)
		if err != nil || div == nil || div.Sig != d.Sig {
			return nil
		}
		return div
	}

	best, bestDiv := r, d
	for i := len(best.Kernels) - 1; i >= 0 && len(best.Kernels) > 1; i-- {
		c := best.Clone()
		c.Kernels = append(c.Kernels[:i], c.Kernels[i+1:]...)
		if div := check(c); div != nil {
			best, bestDiv = c, div
		}
	}
	for i := range best.Kernels {
		for param := 0; param < 2; param++ {
			for {
				c := best.Clone()
				k := &c.Kernels[i]
				v := &k.A
				if param == 1 {
					v = &k.B
				}
				if *v <= 1 {
					break
				}
				*v /= 2
				*k = k.Clamped()
				if c.Kernels[i] == best.Kernels[i] {
					break // clamp undid the halving
				}
				div := check(c)
				if div == nil {
					break
				}
				best, bestDiv = c, div
			}
		}
	}
	return best, bestDiv
}
