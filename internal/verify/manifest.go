// Farm-manifest parsing: the reverse of the journal writes in farm.go.
// Fleet coordinators pull each worker shard's manifest out of the shared
// cache and fold the shards into one global view — entries concatenated
// in shard order, coverage merged, signatures re-deduped globally.
package verify

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ParseManifest decodes farm-manifest JSONL: entry records in order plus
// the trailing summary. A manifest truncated before its summary line
// (worker died mid-run) parses to a nil summary, not an error.
func ParseManifest(data []byte) ([]FarmRecord, *FarmSummaryRecord, error) {
	var recs []FarmRecord
	var sum *FarmSummaryRecord
	for i, line := range bytes.Split(data, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, nil, fmt.Errorf("verify: manifest line %d: %w", i+1, err)
		}
		switch probe.Event {
		case "entry":
			var rec FarmRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, nil, fmt.Errorf("verify: manifest line %d: %w", i+1, err)
			}
			recs = append(recs, rec)
		case "summary":
			sum = &FarmSummaryRecord{}
			if err := json.Unmarshal(line, sum); err != nil {
				return nil, nil, fmt.Errorf("verify: manifest line %d: %w", i+1, err)
			}
		default:
			return nil, nil, fmt.Errorf("verify: manifest line %d: unknown event %q", i+1, probe.Event)
		}
	}
	return recs, sum, nil
}

// MergeShards folds per-shard farm results into one summary: entries
// re-numbered in shard order, coverage merged, and signatures re-deduped
// globally — a signature two shards both found counts all its hits but
// keeps only the first shard's repro and NewSig mark.
func MergeShards(shards [][]FarmRecord, sums []*FarmSummaryRecord) *FarmSummary {
	out := &FarmSummary{
		Signatures: map[string]int{},
		Repros:     map[string]string{},
	}
	for si, recs := range shards {
		for _, rec := range recs {
			rec.Entry = out.Entries
			out.Entries++
			if rec.Status == "diverged" {
				out.Divergences++
			}
			if rec.Sig != "" {
				first := out.Signatures[rec.Sig] == 0
				out.Signatures[rec.Sig]++
				rec.NewSig = first
				if first && rec.Repro != "" {
					out.Repros[rec.Sig] = rec.Repro
				} else if !first {
					rec.Repro, rec.ReproRecipe = "", ""
				}
			}
			out.Records = append(out.Records, rec)
		}
		if si < len(sums) && sums[si] != nil {
			out.Coverage.Merge(sums[si].Coverage)
		}
	}
	return out
}
