// Package verify implements the continuous differential-verification
// farm behind `marshal verify-farm`: coverage-guided workload generation
// over the workgen kernel library, lockstep co-simulation of the
// simulator's execution tiers (reference, fast, trace-compiled, plus
// batched rtlsim spot-checks), checkpoint-replay bisection of any
// divergence to the exact retired instruction, signature-based failure
// dedup into the CAS, and a crash-safe JSONL farm manifest written
// through the launcher's journal machinery.
//
// The farm turns the repo's core invariant — every fast path is
// architecturally equivalent to the reference interpreter — from a
// point-in-time test suite into a continuously running, coverage-measured
// service (ROADMAP item 4).
package verify

import (
	"fmt"
	"sort"
	"strings"

	"firemarshal/internal/isa"
	"firemarshal/internal/sim"
	"firemarshal/internal/workgen"
)

// pageSize mirrors the simulator's memory page granularity; used to
// classify page-crossing accesses (the soft-TLB slow path).
const pageSize = 4096

// Branch-shape bits: direction × outcome.
const (
	brFwdTaken = iota
	brFwdNot
	brBwdTaken
	brBwdNot
	numBranchShapes
)

var branchShapeNames = [numBranchShapes]string{
	"fwd-taken", "fwd-not-taken", "bwd-taken", "bwd-not-taken",
}

// Memory-access classes: width × kind, plus the soft-TLB-hostile shapes.
const (
	memLoad1 = iota
	memLoad2
	memLoad4
	memLoad8
	memStore1
	memStore2
	memStore4
	memStore8
	memLoadMMIO
	memStoreMMIO
	memLoadCross // access straddling a page boundary (TLB slow path)
	memStoreCross
	numMemClasses
)

var memClassNames = [numMemClasses]string{
	"load1", "load2", "load4", "load8",
	"store1", "store2", "store4", "store8",
	"load-mmio", "store-mmio", "load-page-cross", "store-page-cross",
}

// numOps bounds the architectural opcode space (trace.go pins the
// synthetic space above it, so this is stable).
const numOps = int(isa.OpREMUW) + 1

// Coverage is the farm's model of what a corpus has exercised, folded
// from the reference tier's event stream plus the traced tier's machine
// counters. All fields are plain bitsets/counters so merging is a few
// ORs — deterministic regardless of evaluation order.
type Coverage struct {
	// Ops has bit o set once opcode o retired.
	Ops [2]uint64 `json:"ops"`
	// Branch has branch-shape bits (brFwd/BwdTaken/Not).
	Branch uint32 `json:"branch"`
	// Mem has memory-class bits (memLoad1..memStoreCross).
	Mem uint32 `json:"mem"`
	// Fusion mirrors sim.Machine.TraceFusionKinds: synthetic trace-op
	// kinds observed in dispatched superblocks.
	Fusion uint32 `json:"fusion"`
	// TraceDispatch is set once a superblock actually dispatched.
	TraceDispatch bool `json:"trace_dispatch"`
	// Pages is the peak distinct mapped-page count over the corpus —
	// soft-TLB pressure, the closest observable to TLB-miss coverage.
	Pages int `json:"pages"`
}

// NoteEvent folds one reference-tier instruction event in.
func (c *Coverage) NoteEvent(ev *sim.Event) {
	op := ev.Instr.Op
	if int(op) < numOps {
		c.Ops[op>>6] |= 1 << (op & 63)
	}
	if op.IsBranch() {
		bwd := ev.Instr.Imm < 0
		shape := brFwdTaken
		switch {
		case bwd && ev.Taken:
			shape = brBwdTaken
		case bwd && !ev.Taken:
			shape = brBwdNot
		case !bwd && !ev.Taken:
			shape = brFwdNot
		}
		c.Branch |= 1 << shape
	}
	if ev.MemSize > 0 {
		load := op.IsLoad()
		if ev.MMIO {
			if load {
				c.Mem |= 1 << memLoadMMIO
			} else {
				c.Mem |= 1 << memStoreMMIO
			}
		} else {
			var cls int
			switch ev.MemSize {
			case 1:
				cls = memLoad1
			case 2:
				cls = memLoad2
			case 4:
				cls = memLoad4
			default:
				cls = memLoad8
			}
			if !load {
				cls += memStore1 - memLoad1
			}
			c.Mem |= 1 << cls
		}
		if ev.MemAddr&(pageSize-1)+uint64(ev.MemSize) > pageSize {
			if load {
				c.Mem |= 1 << memLoadCross
			} else {
				c.Mem |= 1 << memStoreCross
			}
		}
	}
}

// NoteMachine folds in the post-run trace-compiler observations of the
// traced tier's machine and the peak page count of any tier.
func (c *Coverage) NoteMachine(m *sim.Machine) {
	c.Fusion |= m.TraceFusionKinds()
	if _, hits, _, _ := m.TraceStats(); hits > 0 {
		c.TraceDispatch = true
	}
	if n := m.Mem.MappedPages(); n > c.Pages {
		c.Pages = n
	}
}

// Merge folds other into c.
func (c *Coverage) Merge(other Coverage) {
	c.Ops[0] |= other.Ops[0]
	c.Ops[1] |= other.Ops[1]
	c.Branch |= other.Branch
	c.Mem |= other.Mem
	c.Fusion |= other.Fusion
	c.TraceDispatch = c.TraceDispatch || other.TraceDispatch
	if other.Pages > c.Pages {
		c.Pages = other.Pages
	}
}

// genOps is the set of opcodes the workgen kernel library can actually
// emit (via the assembler's pseudo-expansions); coverage ratios are
// measured against this reachable set, not the full ISA, so a saturated
// corpus reads as 100% rather than asymptoting below it.
var genOps = func() [2]uint64 {
	var s [2]uint64
	for _, op := range []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpSLT, isa.OpXOR, isa.OpOR, isa.OpAND,
		isa.OpMUL, isa.OpDIV, isa.OpREMU,
		isa.OpADDI, isa.OpORI, isa.OpANDI, isa.OpSLLI,
		isa.OpLUI, isa.OpAUIPC,
		isa.OpJAL, isa.OpJALR,
		isa.OpBEQ, isa.OpBNE, isa.OpBLT,
		isa.OpLBU, isa.OpLD,
		isa.OpSB, isa.OpSH, isa.OpSW, isa.OpSD,
		isa.OpECALL,
	} {
		s[op>>6] |= 1 << (op & 63)
	}
	return s
}()

// numFusionKinds mirrors sim.FusionKindNames.
var numFusionKinds = len(sim.FusionKindNames)

// Ratio returns covered/total over the reachable coverage points — the
// farm's headline coverage number.
func (c *Coverage) Ratio() float64 {
	covered, total := 0, 0
	count := func(bits, want uint64) {
		for want != 0 {
			b := want & -want
			total++
			if bits&b != 0 {
				covered++
			}
			want &^= b
		}
	}
	count(c.Ops[0], genOps[0])
	count(c.Ops[1], genOps[1])
	count(uint64(c.Branch), 1<<numBranchShapes-1)
	count(uint64(c.Mem), 1<<numMemClasses-1)
	count(uint64(c.Fusion), 1<<uint(numFusionKinds)-1)
	total++
	if c.TraceDispatch {
		covered++
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// Gaps maps uncovered coverage points to the kernel kinds most likely to
// close them — the mutation bias. The result is in fixed kind order, so
// identical coverage always yields an identical bias list (corpus
// determinism depends on this).
func (c *Coverage) Gaps() []workgen.KernelKind {
	want := map[workgen.KernelKind]bool{}
	// Branch shapes: the data-driven pattern kernel produces every
	// taken/not × fwd/bwd combination.
	if c.Branch != 1<<numBranchShapes-1 {
		want[workgen.KPatternBranch] = true
	}
	// Store widths and the code-guard path come from the store-fill
	// kernel; wide pointer loads from the chase kernel.
	storeAll := uint32(1<<memStore1 | 1<<memStore2 | 1<<memStore4 | 1<<memStore8)
	if c.Mem&storeAll != storeAll {
		want[workgen.KStoreFill] = true
	}
	loadAll := uint32(1<<memLoad1 | 1<<memLoad8)
	if c.Mem&loadAll != loadAll {
		want[workgen.KPointerChase] = true
		want[workgen.KStreamSum] = true
	}
	// Division/remainder opcodes.
	divBit := func(op isa.Op) bool { return c.Ops[op>>6]&(1<<(op&63)) != 0 }
	if !divBit(isa.OpDIV) || !divBit(isa.OpREMU) {
		want[workgen.KDivide] = true
	}
	if !divBit(isa.OpMUL) {
		want[workgen.KALU] = true
	}
	// Fusion kinds and trace dispatch come overwhelmingly from the
	// fusion-saturated loop kernel.
	if !c.TraceDispatch || c.Fusion != 1<<uint(numFusionKinds)-1 {
		want[workgen.KLoopHeavy] = true
	}
	// Soft-TLB pressure: more pages via big pointer-chase working sets.
	if c.Pages < 32 {
		want[workgen.KPointerChase] = true
	}
	var out []workgen.KernelKind
	for kind := workgen.KernelKind(0); kind < workgen.NumKernelKinds; kind++ {
		if want[kind] {
			out = append(out, kind)
		}
	}
	return out
}

// Report renders a human-readable coverage summary, one line per
// dimension, uncovered points named.
func (c *Coverage) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "coverage %.1f%%\n", 100*c.Ratio())
	var missOps []string
	for op := isa.Op(1); int(op) < numOps; op++ {
		bit := uint64(1) << (op & 63)
		if genOps[op>>6]&bit != 0 && c.Ops[op>>6]&bit == 0 {
			missOps = append(missOps, op.String())
		}
	}
	writeMiss := func(dim string, miss []string) {
		if len(miss) == 0 {
			fmt.Fprintf(&b, "  %-12s complete\n", dim)
		} else {
			fmt.Fprintf(&b, "  %-12s missing: %s\n", dim, strings.Join(miss, " "))
		}
	}
	writeMiss("opcodes", missOps)
	var miss []string
	for i := 0; i < numBranchShapes; i++ {
		if c.Branch&(1<<i) == 0 {
			miss = append(miss, branchShapeNames[i])
		}
	}
	writeMiss("branches", miss)
	miss = nil
	for i := 0; i < numMemClasses; i++ {
		if c.Mem&(1<<i) == 0 {
			miss = append(miss, memClassNames[i])
		}
	}
	writeMiss("memory", miss)
	miss = nil
	for i := 0; i < numFusionKinds; i++ {
		if c.Fusion&(1<<i) == 0 {
			miss = append(miss, sim.FusionKindNames[i])
		}
	}
	writeMiss("fusion", miss)
	if c.TraceDispatch {
		fmt.Fprintf(&b, "  %-12s dispatched (peak %d pages)\n", "traces", c.Pages)
	} else {
		fmt.Fprintf(&b, "  %-12s never dispatched (peak %d pages)\n", "traces", c.Pages)
	}
	if gaps := c.Gaps(); len(gaps) > 0 {
		names := make([]string, len(gaps))
		for i, k := range gaps {
			names[i] = k.String()
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  %-12s %s\n", "bias", strings.Join(names, " "))
	}
	return b.String()
}
