// Lockstep co-simulation: run one workload on every execution tier and
// compare the complete observable outcome — retired instructions, cycle
// count, exit status, final registers/PC, and console transcript. The
// reference interpreter (StepInto) is the oracle; the predecoded fast
// loop and the trace-compiled loop are the suspects. rtlsim rides along
// as a batched spot-check (it shares StepInto, so it guards the platform
// plumbing rather than instruction semantics).
package verify

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"firemarshal/internal/isa"
	"firemarshal/internal/sim"
)

// Tier names. The fast tier runs the predecoded loop with the trace
// compiler disabled (sim.Machine.TraceOff); the traced tier runs it with
// superblock dispatch on.
const (
	TierReference = "reference"
	TierFast      = "fast"
	TierTraced    = "traced"
	TierRTL       = "rtl"
)

// Fault deterministically corrupts one tier mid-run: the moment the
// tier's machine reaches exactly Instr retired instructions, register
// Reg is XORed with Xor, and execution continues. It models the class of
// bug the farm exists to catch — a fast path computing one wrong value —
// while staying reproducible at any replay granularity, which is what
// lets the seeded-fault self-test assert the bisector lands on Instr
// exactly.
type Fault struct {
	Tier  string `json:"tier"`
	Instr uint64 `json:"instr"`
	Reg   int    `json:"reg"`
	Xor   uint64 `json:"xor"`
}

func (f *Fault) String() string {
	if f == nil {
		return "none"
	}
	return fmt.Sprintf("%s:%d:x%d:%#x", f.Tier, f.Instr, f.Reg, f.Xor)
}

// ParseFault parses the -inject-fault CLI form "tier:instr:reg:xor",
// e.g. "fast:5000:27:0x1".
func ParseFault(s string) (*Fault, error) {
	var f Fault
	parts := strings.Split(s, ":")
	if len(parts) != 4 {
		return nil, fmt.Errorf("verify: fault %q: want tier:instr:reg:xor", s)
	}
	f.Tier = parts[0]
	if f.Tier != TierFast && f.Tier != TierTraced {
		return nil, fmt.Errorf("verify: fault tier %q: want %s or %s", f.Tier, TierFast, TierTraced)
	}
	instr, err := strconv.ParseUint(parts[1], 0, 64)
	if err != nil || instr == 0 {
		return nil, fmt.Errorf("verify: fault instr %q: want positive integer", parts[1])
	}
	f.Instr = instr
	reg, err := strconv.Atoi(strings.TrimPrefix(parts[2], "x"))
	if err != nil || reg < 1 || reg > 31 {
		return nil, fmt.Errorf("verify: fault reg %q: want x1..x31", parts[2])
	}
	f.Reg = reg
	xor, err := strconv.ParseUint(parts[3], 0, 64)
	if err != nil || xor == 0 {
		return nil, fmt.Errorf("verify: fault xor %q: want nonzero integer", parts[3])
	}
	f.Xor = xor
	return &f, nil
}

// maxInstrsDefault bounds each corpus entry; generated workloads retire
// well under a million instructions, so this is a runaway guard.
const maxInstrsDefault = 50_000_000

// tierRun drives one machine down one tier with optional fault
// injection, in hops of exact retired-instruction counts. Hopping works
// because the instruction-limit trap leaves the machine at precisely
// MaxInstrs retirements with all state published, and raising the limit
// resumes it — the same property checkpointing is built on.
type tierRun struct {
	tier    string
	m       *sim.Machine
	console *bytes.Buffer
	fault   *Fault
	limit   uint64 // overall instruction budget
	applied bool   // fault already injected
	// onEvent, when set on the reference tier, receives every retired
	// instruction's event — the farm's coverage feed. (m.Trace is the
	// spike-style text log, not an event hook, so coverage drives
	// StepInto directly.)
	onEvent func(*sim.Event)
}

// newTierRun builds a machine for one tier over an assembled executable.
// The setup mirrors the differential suite's harness: bare syscalls, a
// UART device, DefaultStackTop.
func newTierRun(tier string, exe *isa.Executable, fault *Fault, limit uint64) *tierRun {
	if limit == 0 {
		limit = maxInstrsDefault
	}
	tr := &tierRun{tier: tier, limit: limit, console: &bytes.Buffer{}}
	if fault != nil && fault.Tier == tier {
		tr.fault = fault
	}
	m := sim.NewMachine()
	m.Console = tr.console
	m.SyscallFn = sim.BareSyscalls()
	m.Devices = []sim.Device{&sim.UART{}}
	m.TraceOff = tier != TierTraced
	m.LoadExecutable(exe, sim.DefaultStackTop)
	tr.m = m
	return tr
}

// isLimitTrap reports whether err is the instruction-limit trap hopping
// deliberately provokes.
func isLimitTrap(err error) bool {
	t, ok := err.(*sim.ErrTrap)
	return ok && strings.HasPrefix(t.Msg, "instruction limit")
}

// step advances the machine to exactly k retired instructions (or to
// halt, whichever first), injecting the fault at its boundary when the
// hop crosses it. Errors other than the expected limit trap propagate —
// a trap divergence is itself a finding, reported by the caller.
func (tr *tierRun) step(k uint64) error {
	if k > tr.limit {
		k = tr.limit
	}
	for !tr.m.Halted && tr.m.Instret < k {
		target := k
		if f := tr.fault; f != nil && !tr.applied && tr.m.Instret < f.Instr && f.Instr < target {
			target = f.Instr
		}
		tr.m.MaxInstrs = target
		var err error
		switch {
		case tr.onEvent != nil:
			err = tr.stepEvents()
		case tr.tier == TierReference:
			_, err = sim.RunReference(tr.m)
		default:
			_, err = sim.RunFunctional(tr.m)
		}
		if err != nil && !isLimitTrap(err) {
			return err
		}
		if !tr.m.Halted && tr.m.Instret != target {
			return fmt.Errorf("verify: %s tier stopped at %d, want %d", tr.tier, tr.m.Instret, target)
		}
		if f := tr.fault; f != nil && !tr.applied && tr.m.Instret >= f.Instr {
			tr.m.Regs[f.Reg] ^= f.Xor
			tr.applied = true
		}
	}
	return nil
}

// stepEvents mirrors sim.RunReference's loop (StepInto + one cycle per
// retirement) while feeding each event to onEvent. Architectural state
// evolves identically to RunReference; only observation differs.
func (tr *tierRun) stepEvents() error {
	var ev sim.Event
	for !tr.m.Halted {
		if err := tr.m.StepInto(&ev); err != nil {
			return err
		}
		tr.m.Now++
		tr.onEvent(&ev)
	}
	return nil
}

// run executes the workload to completion (within the budget).
func (tr *tierRun) run() error { return tr.step(tr.limit) }

// Outcome is one tier's complete observable result.
type Outcome struct {
	Tier    string
	Instret uint64
	Now     uint64
	Exit    int64
	Halted  bool
	Regs    [32]uint64
	PC      uint64
	Console []byte
	Err     string // non-trap-limit simulation error, if any
}

func (tr *tierRun) outcome() Outcome {
	return Outcome{
		Tier:    tr.tier,
		Instret: tr.m.Instret,
		Now:     tr.m.Now,
		Exit:    tr.m.ExitCode,
		Halted:  tr.m.Halted,
		Regs:    tr.m.Regs,
		PC:      tr.m.PC,
		Console: tr.console.Bytes(),
	}
}

// diffOutcomes names the first difference between a suspect tier's
// outcome and the reference's: kind is the observable that differs
// without its values (the dedup axis — "exit", "reg:x27", "console", ...)
// and detail carries the values. Both are "" when the outcomes agree.
func diffOutcomes(ref, got Outcome) (kind, detail string) {
	switch {
	case ref.Err != got.Err:
		return "error", fmt.Sprintf("error %q vs reference %q", got.Err, ref.Err)
	case ref.Halted != got.Halted:
		return "halted", fmt.Sprintf("halted=%v vs reference %v", got.Halted, ref.Halted)
	case ref.Exit != got.Exit:
		return "exit", fmt.Sprintf("exit %d vs reference %d", got.Exit, ref.Exit)
	case ref.Instret != got.Instret:
		return "instret", fmt.Sprintf("instret %d vs reference %d", got.Instret, ref.Instret)
	case ref.Now != got.Now:
		return "cycles", fmt.Sprintf("cycles %d vs reference %d", got.Now, ref.Now)
	case ref.PC != got.PC:
		return "pc", fmt.Sprintf("pc %#x vs reference %#x", got.PC, ref.PC)
	case ref.Regs != got.Regs:
		for i := range ref.Regs {
			if ref.Regs[i] != got.Regs[i] {
				return fmt.Sprintf("reg:x%d", i),
					fmt.Sprintf("x%d=%#x vs reference %#x", i, got.Regs[i], ref.Regs[i])
			}
		}
	case !bytes.Equal(ref.Console, got.Console):
		return "console", fmt.Sprintf("console %q vs reference %q", clip(got.Console), clip(ref.Console))
	}
	return "", ""
}

func clip(b []byte) string {
	const max = 80
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}
