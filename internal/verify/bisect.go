// Checkpoint-replay bisection: given a workload on which a suspect tier's
// end state departs from the reference, pinpoint the exact retired
// instruction where the observable state (architectural digest + console
// transcript) first differs.
//
// Phase 1 (coarse) runs the reference with periodic checkpoints, then
// hops the suspect boundary-to-boundary on a single machine, comparing
// checkpoint digests — digest equality IS state equality (see
// checkpoint.Capture). The first mismatching boundary brackets the
// divergence to one checkpoint interval.
//
// Phase 2 (fine) binary-searches that interval. Every probe restores BOTH
// a reference and a suspect machine from the reference checkpoint at the
// interval's lower bound — sound because the suspect's digest matched
// there — runs each to the probe point, and compares captures. The
// search invariant is divergence persistence: the composite observable
// (architectural state + append-only console) differs at the upper
// bracket and, once different, stays different, so binary search returns
// the smallest differing retirement count.
package verify

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"firemarshal/internal/cas"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim"
)

// bisectJob names bisection checkpoints in the CAS; it is constant so
// captures of identical states always collide to identical digests.
const bisectJob = "verify-bisect"

// defaultCkptEvery is the coarse-phase checkpoint interval.
const defaultCkptEvery = 4096

// Divergence is a bisected tier disagreement: the exact retired
// instruction, the culprit instruction itself (replayed on the
// reference), and what differed there.
type Divergence struct {
	// Tier is the suspect tier (fast, traced, or rtl).
	Tier string `json:"tier"`
	// Instr is the retirement count at which state first differs: the
	// Instr-th retired instruction is the culprit.
	Instr uint64 `json:"instr"`
	// PC/Disasm identify the culprit instruction on the reference replay.
	PC     uint64 `json:"pc"`
	Disasm string `json:"disasm"`
	// Kind names the first-differing observable without its values
	// ("reg:x27", "pc", "console", "mem", ...) — the dedup axis.
	Kind string `json:"kind"`
	// Detail carries the differing values, for humans.
	Detail string `json:"detail"`
	// Probes counts fine-phase probes spent (bisection cost).
	Probes int `json:"probes"`
	// Sig is the dedup signature: a hash of (tier, pc, disasm, kind),
	// deliberately excluding Instr and the values so the same buggy
	// instruction signs identically across workloads.
	Sig string `json:"sig"`
}

func signature(tier string, pc uint64, disasm, kind string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%s|%#x|%s|%s", tier, pc, disasm, kind)))
	return hex.EncodeToString(h[:8])
}

// boundary is one coarse-phase reference checkpoint.
type boundary struct {
	instret uint64
	cp      *checkpoint.Checkpoint
	digest  string
	console []byte
}

// Bisect locates the first divergent retirement of the suspect tier on
// exe, with an optional injected fault (the self-test's ground truth).
// It returns nil (no error) when the divergence does not reproduce —
// the caller then reports the lockstep finding un-bisected.
func Bisect(store *cas.Store, exe *isa.Executable, tier string, fault *Fault, limit, ckptEvery uint64) (*Divergence, error) {
	if ckptEvery == 0 {
		ckptEvery = defaultCkptEvery
	}

	// Coarse phase: reference run, checkpointing every ckptEvery.
	ref := newTierRun(TierReference, exe, nil, limit)
	cp0, d0, err := checkpoint.Capture(store, bisectJob, ref.m)
	if err != nil {
		return nil, err
	}
	bounds := []boundary{{instret: 0, cp: cp0, digest: d0}}
	ref.m.CkptEvery = ckptEvery
	ref.m.CkptFn = func(m *sim.Machine) error {
		cp, d, err := checkpoint.Capture(store, bisectJob, m)
		if err != nil {
			return err
		}
		bounds = append(bounds, boundary{
			instret: m.Instret,
			cp:      cp,
			digest:  d,
			console: append([]byte(nil), ref.console.Bytes()...),
		})
		return nil
	}
	ref.run() // a guest trap here is part of the behavior being compared
	refEnd := ref.m.Instret

	// Hop the suspect boundary-to-boundary on one machine; stop at the
	// first digest or console mismatch. A suspect that halts or traps
	// early shows up as a mismatch at the next boundary (its captured
	// Instret differs).
	sus := newTierRun(tier, exe, fault, limit)
	if _, d, err := checkpoint.Capture(store, bisectJob, sus.m); err != nil {
		return nil, err
	} else if d != d0 {
		return nil, fmt.Errorf("verify: bisect harness: initial states differ (%s vs %s)", d[:12], d0[:12])
	}
	lo := bounds[0]
	var hiInstret uint64
	found := false
	for _, b := range bounds[1:] {
		stepErr := sus.step(b.instret)
		_, d, err := checkpoint.Capture(store, bisectJob, sus.m)
		if err != nil {
			return nil, err
		}
		if stepErr != nil || d != b.digest || !bytes.Equal(sus.console.Bytes(), b.console) {
			found, hiInstret = true, b.instret
			break
		}
		lo = b
	}
	if !found {
		// All boundaries matched: the divergence (if any) is in the
		// final partial interval. Its upper bracket is the longer of the
		// two complete runs.
		sus.run()
		hiInstret = refEnd
		if sus.m.Instret > hiInstret {
			hiInstret = sus.m.Instret
		}
		if hiInstret <= lo.instret {
			return nil, nil
		}
	}

	// Fine phase: binary search (lo, hi] for the smallest differing
	// retirement count. Each probe rebuilds both machines from the
	// reference checkpoint at lo.
	probes := 0
	probe := func(k uint64) (*tierRun, *tierRun, bool, error) {
		probes++
		refP := newTierRun(TierReference, exe, nil, limit)
		if err := lo.cp.Restore(store, refP.m); err != nil {
			return nil, nil, false, err
		}
		susP := newTierRun(tier, exe, fault, limit)
		if err := lo.cp.Restore(store, susP.m); err != nil {
			return nil, nil, false, err
		}
		susP.applied = susP.fault != nil && susP.fault.Instr <= lo.instret
		refP.step(k) // guest traps are behavior, not probe failures
		susP.step(k)
		_, dr, err := checkpoint.Capture(store, bisectJob, refP.m)
		if err != nil {
			return nil, nil, false, err
		}
		_, ds, err := checkpoint.Capture(store, bisectJob, susP.m)
		if err != nil {
			return nil, nil, false, err
		}
		differs := dr != ds || !bytes.Equal(refP.console.Bytes(), susP.console.Bytes())
		return refP, susP, differs, nil
	}

	if _, _, d, err := probe(hiInstret); err != nil {
		return nil, err
	} else if !d {
		return nil, nil // did not reproduce
	}
	loI, hiI := lo.instret, hiInstret
	for hiI-loI > 1 {
		mid := loI + (hiI-loI)/2
		_, _, d, err := probe(mid)
		if err != nil {
			return nil, err
		}
		if d {
			hiI = mid
		} else {
			loI = mid
		}
	}
	k := hiI

	// Describe the divergence at k and replay the culprit instruction —
	// the k-th retirement — on the reference.
	refK, susK, _, err := probe(k)
	if err != nil {
		return nil, err
	}
	kind, detail := diffOutcomes(refK.outcome(), susK.outcome())
	if kind == "" {
		// Outcomes agree but digests differ: the divergence is in
		// memory. Name the first differing word.
		if addr, rv, sv, ok := diffMem(refK.m, susK.m); ok {
			kind = "mem"
			detail = fmt.Sprintf("[%#x]=%#x vs reference %#x", addr, sv, rv)
		} else {
			kind, detail = "state", "captures differ"
		}
	}
	pc, disasm := culprit(store, lo, k, exe, limit)
	return &Divergence{
		Tier:   tier,
		Instr:  k,
		PC:     pc,
		Disasm: disasm,
		Kind:   kind,
		Detail: detail,
		Probes: probes,
		Sig:    signature(tier, pc, disasm, kind),
	}, nil
}

// culprit replays the reference from the bracketing checkpoint to the
// k-1'th retirement and decodes the next instruction — the one whose
// execution first diverged.
func culprit(store *cas.Store, lo boundary, k uint64, exe *isa.Executable, limit uint64) (uint64, string) {
	cul := newTierRun(TierReference, exe, nil, limit)
	if err := lo.cp.Restore(store, cul.m); err != nil {
		return 0, "(restore failed)"
	}
	if err := cul.step(k - 1); err != nil || cul.m.Halted {
		// The reference halted before the k-th retirement: the suspect
		// executed past the reference's end of program.
		return cul.m.PC, "(past reference halt)"
	}
	pc := cul.m.PC
	cul.m.MaxInstrs = 0 // step(k-1) left the limit clamped at k-1
	ev, err := cul.m.Step()
	if err != nil {
		return pc, "(trap: " + err.Error() + ")"
	}
	return pc, isa.Disassemble(ev.Instr)
}

// diffMem returns the address and values of the first differing 8-byte
// word between two machines' memories, walking pages in ascending order.
// A page mapped on one side only is compared against zeroes.
func diffMem(a, b *sim.Machine) (addr, av, bv uint64, ok bool) {
	pa, pb := a.Mem.PageNumbers(), b.Mem.PageNumbers()
	var zero []byte
	i, j := 0, 0
	for i < len(pa) || j < len(pb) {
		var pn uint64
		var da, db []byte
		switch {
		case j >= len(pb) || (i < len(pa) && pa[i] < pb[j]):
			pn, da = pa[i], a.Mem.PageBytes(pa[i])
			i++
		case i >= len(pa) || pb[j] < pa[i]:
			pn, db = pb[j], b.Mem.PageBytes(pb[j])
			j++
		default:
			pn, da, db = pa[i], a.Mem.PageBytes(pa[i]), b.Mem.PageBytes(pb[j])
			i, j = i+1, j+1
		}
		n := len(da)
		if len(db) > n {
			n = len(db)
		}
		if zero == nil || len(zero) < n {
			zero = make([]byte, n)
		}
		if da == nil {
			da = zero[:n]
		}
		if db == nil {
			db = zero[:n]
		}
		for off := 0; off+8 <= n; off += 8 {
			wa := binary.LittleEndian.Uint64(da[off:])
			wb := binary.LittleEndian.Uint64(db[off:])
			if wa != wb {
				return pn*sim.PageSize + uint64(off), wa, wb, true
			}
		}
	}
	return 0, 0, 0, false
}
