// Prometheus text exposition (format version 0.0.4) for a Registry, so
// `marshal metrics serve` can be scraped by stock Prometheus without any
// client library. Counters map to counters, gauges to gauges, and the
// power-of-two histograms to cumulative classic histograms with `le`
// labels at bucket upper bounds.
package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WriteProm renders every metric in Prometheus text format, names sorted,
// so scrapes are deterministic.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		r = Default
	}
	ctrs, gaugs, hists := r.names()
	for _, name := range ctrs {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gaugs {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name,
			strconv.FormatFloat(r.Gauge(name).Value(), 'g', -1, 64)); err != nil {
			return err
		}
	}
	for _, name := range hists {
		s := r.Histogram(name).snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum uint64
		for i, n := range s.Buckets {
			cum += n
			// Bucket i holds values in [2^(i-1), 2^i); its upper bound is
			// 2^i - 1 for integer observations. Bucket 0 is exactly zero.
			le := uint64(0)
			if i > 0 {
				le = 1<<uint(i) - 1
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, s.Count, name, s.Sum, name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a Prometheus scrape target. refresh, if
// non-nil, runs before each scrape — the hook used to pull point-in-time
// gauges (cache store usage) that are not updated inline.
func Handler(r *Registry, refresh func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if refresh != nil {
			refresh()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := r.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
