// Span traces: a run is a tree of named spans (run → build → dag node;
// run → job → attempt → exec/checkpoint) timed against one monotonic
// clock and emitted as JSONL next to the run manifest.
//
// Determinism is a design goal: repeated identical runs must produce
// traces that diff cleanly once timestamps are masked. Two rules get us
// there. First, a span's sort key is its path (parent path + "/" + name),
// so emission order never depends on goroutine scheduling. Second, a
// span's seq is its ordinal among same-named siblings — not a global
// creation counter — so concurrent spans with distinct names always get
// seq 0 regardless of who started first.
package obs

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer owns a tree of spans and the monotonic clock they share.
type Tracer struct {
	mu    sync.Mutex
	base  time.Time
	spans []*Span
}

// NewTracer starts the clock.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// Span is one timed node of the trace tree. All methods are nil-safe, so
// uninstrumented call paths (nil tracer) cost a pointer test and nothing
// else.
type Span struct {
	t     *Tracer
	path  string
	seq   int
	start time.Duration
	dur   time.Duration
	ended bool
	attrs map[string]string
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.newSpan("", name)
}

// Child opens a sub-span.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.newSpan(s.path, name)
}

func (t *Tracer) newSpan(parentPath, name string) *Span {
	now := time.Since(t.base)
	t.mu.Lock()
	defer t.mu.Unlock()
	path := name
	if parentPath != "" {
		path = parentPath + "/" + name
	}
	seq := 0
	for _, other := range t.spans {
		if other.path == path {
			seq++
		}
	}
	sp := &Span{t: t, path: path, seq: seq, start: now}
	t.spans = append(t.spans, sp)
	return sp
}

// Attr records a key/value pair on the span. Values must be deterministic
// run-to-run (statuses, counts — never durations) or they defeat trace
// diffing.
func (s *Span) Attr(key, value string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[key] = value
}

// End closes the span. Ending twice keeps the first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Since(s.t.base)
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	if !s.ended {
		s.ended = true
		s.dur = now - s.start
	}
}

// spanLine is the JSONL wire form. Field order is fixed by the struct;
// attrs marshal with sorted keys.
type spanLine struct {
	Path    string            `json:"path"`
	Seq     int               `json:"seq"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// WriteJSONL emits every span, one JSON object per line, sorted by
// (path, seq). Spans still open are emitted with their elapsed time so a
// partial trace from an interrupted run is still well-formed.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	now := time.Since(t.base)
	t.mu.Lock()
	lines := make([]spanLine, len(t.spans))
	for i, s := range t.spans {
		dur := s.dur
		if !s.ended {
			dur = now - s.start
		}
		attrs := make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			attrs[k] = v
		}
		lines[i] = spanLine{
			Path:    s.path,
			Seq:     s.seq,
			StartUS: s.start.Microseconds(),
			DurUS:   dur.Microseconds(),
			Attrs:   attrs,
		}
	}
	t.mu.Unlock()
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].Path != lines[j].Path {
			return lines[i].Path < lines[j].Path
		}
		return lines[i].Seq < lines[j].Seq
	})
	enc := json.NewEncoder(w)
	for i := range lines {
		if len(lines[i].Attrs) == 0 {
			lines[i].Attrs = nil
		}
		if err := enc.Encode(&lines[i]); err != nil {
			return err
		}
	}
	return nil
}

type spanCtxKey struct{}

// ContextWithSpan threads a span through layers that only share a
// context (the launcher hands each attempt's span to the job function
// this way).
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span threaded by ContextWithSpan, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
