package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestCounterShards checks that sharded adds sum correctly and that Shard
// hands out distinct padded slots.
func TestCounterShards(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	s1, s2 := c.Shard(), c.Shard()
	if s1 == s2 {
		t.Fatal("consecutive Shard() calls returned the same slot")
	}
	s1.Add(10)
	s2.Add(20)
	if got := c.Value(); got != 34 {
		t.Fatalf("Value() = %d, want 34", got)
	}
}

// TestGaugeClampsNonFinite checks the snapshot-poisoning guard: NaN and
// ±Inf must never survive into a gauge.
func TestGaugeClampsNonFinite(t *testing.T) {
	var g Gauge
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("Value() = %v", g.Value())
	}
	for _, bad := range []float64{nan(), inf(1), inf(-1)} {
		g.Set(bad)
		if g.Value() != 0 {
			t.Fatalf("Set(%v) stored %v, want 0", bad, g.Value())
		}
	}
}

func nan() float64          { return float64(0) / zero }
func inf(s float64) float64 { return s / zero }

var zero float64 // defeats constant folding of 0/0

// TestHistogramBuckets checks the power-of-two bucketing.
func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 6 || s.Sum != 1010 {
		t.Fatalf("snapshot = %+v", s)
	}
	// 0→bucket 0; 1→1; 2,3→2; 4→3; 1000→10.
	want := []uint64{1, 1, 2, 1, 0, 0, 0, 0, 0, 0, 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %v, want %v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", s.Buckets, want)
		}
	}
}

// TestNilSafety checks every nil fast path costs nothing and crashes
// nothing — uninstrumented call sites rely on this.
func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var sh *Shard
	var tr *Tracer
	var sp *Span
	c.Add(1)
	c.Inc()
	sh.Add(1)
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics returned nonzero values")
	}
	sp = tr.Start("x")
	sp.Attr("k", "v")
	sp.Child("y").End()
	sp.End()
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	var r *Registry
	r.Counter("a").Inc() // nil registry resolves to Default
	if Default.Counter("a").Value() == 0 {
		t.Fatal("nil registry did not resolve to Default")
	}
}

// TestRaceHammer drives counters, gauges, and histograms from 8 writer
// goroutines while a reader concurrently snapshots the registry and
// serves Prometheus text — the exact concurrent shape of a live run with
// `marshal metrics serve` attached. Run under -race this proves the
// lock-free paths are sound; the final sums prove no add was lost.
func TestRaceHammer(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 10000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			r.Snapshot()
			var buf bytes.Buffer
			if err := r.WriteProm(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(w int) {
			defer writersWG.Done()
			shard := r.Counter("hammer_total").Shard()
			for i := 0; i < perWriter; i++ {
				shard.Add(1)
				r.Counter("hammer_plain_total").Inc()
				r.Gauge("hammer_gauge").Set(float64(w))
				r.Histogram("hammer_hist").Observe(uint64(i))
			}
		}(w)
	}
	writersWG.Wait()
	close(stop)
	readers.Wait()

	s := r.Snapshot()
	if s.Counters["hammer_total"] != writers*perWriter {
		t.Errorf("sharded counter = %d, want %d", s.Counters["hammer_total"], writers*perWriter)
	}
	if s.Counters["hammer_plain_total"] != writers*perWriter {
		t.Errorf("plain counter = %d, want %d", s.Counters["hammer_plain_total"], writers*perWriter)
	}
	if s.Histograms["hammer_hist"].Count != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", s.Histograms["hammer_hist"].Count, writers*perWriter)
	}
}

// TestSnapshotJSONDeterministic checks that two encodes of the same
// registry are byte-identical (map keys sort) and parse back.
func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Counter("a_total").Add(1)
	r.Gauge("z_gauge").Set(1.5)
	r.Histogram("h").Observe(7)
	one, two := r.EncodeSnapshot(), r.EncodeSnapshot()
	if !bytes.Equal(one, two) {
		t.Fatalf("snapshots differ:\n%s\n%s", one, two)
	}
	var s Snapshot
	if err := json.Unmarshal(one, &s); err != nil {
		t.Fatal(err)
	}
	if s.Counters["a_total"] != 1 || s.Counters["b_total"] != 2 || s.Gauges["z_gauge"] != 1.5 {
		t.Fatalf("round-trip = %+v", s)
	}
}

// TestPromFormat spot-checks the exposition format against what a
// Prometheus scraper expects.
func TestPromFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("cas_action_hits_total").Add(5)
	r.Gauge("sim_fast_mips").Set(310.5)
	r.Histogram("launcher_queue_wait_us").Observe(3)

	srv := httptest.NewServer(Handler(r, func() { r.Gauge("refreshed").Set(1) }))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"# TYPE cas_action_hits_total counter\ncas_action_hits_total 5\n",
		"# TYPE sim_fast_mips gauge\nsim_fast_mips 310.5\n",
		"# TYPE launcher_queue_wait_us histogram\n",
		`launcher_queue_wait_us_bucket{le="+Inf"} 1`,
		"launcher_queue_wait_us_sum 3\nlauncher_queue_wait_us_count 1\n",
		"# TYPE refreshed gauge\nrefreshed 1\n", // the pre-scrape refresh hook ran
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
}
