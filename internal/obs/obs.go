// Package obs is the run-wide observability layer: counters, gauges, and
// histograms with atomic fast paths, plus hierarchical span traces
// (trace.go) and export surfaces (JSON snapshots here, Prometheus text in
// prom.go).
//
// The design constraint is the simulator hot loop: metrics must be free
// enough that the fast-path interpreter can report retired instructions
// without measurable slowdown. Counters are therefore built from
// cache-line-padded shards; a hot goroutine reserves a private shard once
// (Counter.Shard) and pays one uncontended atomic add per fast-loop chunk
// (~1Mi instructions), never per instruction. Readers sum the shards.
package obs

import (
	"encoding/json"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry. Subsystems that cannot thread a
// registry through their construction (the simulator core, the remote-cache
// client) report here; everything else accepts an injected *Registry and
// falls back to Default when given nil.
var Default = NewRegistry()

// shardCount is the number of padded slots per counter. Eight covers the
// worker parallelism we actually run (launcher workers, dag builders)
// without bloating every counter; excess writers wrap around and share.
const shardCount = 8

// Shard is one cache-line-padded counter slot. Hot loops hold a *Shard so
// their adds never false-share with a neighbour's.
type Shard struct {
	v atomic.Uint64
	_ [7]uint64 // pad to 64 bytes
}

// Add adds n to the shard.
func (s *Shard) Add(n uint64) {
	if s != nil {
		s.v.Add(n)
	}
}

// Counter is a monotonically increasing sum across its shards.
type Counter struct {
	shards [shardCount]Shard
	ticket atomic.Uint32
}

// Add adds n on the first shard — the cheap path for call sites that are
// not per-instruction hot (cache lookups, launcher attempts).
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.shards[0].v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Shard reserves a padded slot for a hot writer. Slots are handed out
// round-robin; more than shardCount concurrent writers share slots, which
// stays correct (atomic adds) but may contend.
func (c *Counter) Shard() *Shard {
	if c == nil {
		return nil
	}
	return &c.shards[c.ticket.Add(1)%shardCount]
}

// Value sums the shards. It is a racy-but-monotonic read: concurrent adds
// may or may not be included, which is the usual contract for metrics.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// Gauge is a last-write-wins float. Non-finite values are clamped to zero
// so a gauge can never poison JSON encoding of a snapshot.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	g.bits.Store(math.Float64bits(v))
}

// Value loads the gauge.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations in power-of-two buckets: bucket i holds
// values v with bits.Len64(v) == i, i.e. [2^(i-1), 2^i). Exponential
// buckets make it cheap (one atomic add, no search) and wide enough for
// microsecond queue waits and gigabyte restore sizes alike.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [65]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// HistSnapshot is the JSON form of a histogram: Buckets[i] counts values
// in [2^(i-1), 2^i), trailing zero buckets trimmed.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []uint64 `json:"buckets"`
}

func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	last := -1
	var b [65]uint64
	for i := range h.buckets {
		b[i] = h.buckets[i].Load()
		if b[i] != 0 {
			last = i
		}
	}
	s.Buckets = append([]uint64{}, b[:last+1]...)
	return s
}

// Registry names and owns a set of metrics. Get-or-create lookups are
// mutex-guarded; the returned metric objects are lock-free. The zero
// registry is not usable — call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	ctrs  map[string]*Counter
	gaug  map[string]*Gauge
	hists map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		ctrs:  map[string]*Counter{},
		gaug:  map[string]*Gauge{},
		hists: map[string]*Histogram{},
	}
}

// SanitizeName folds a free-form string (a host:port address, a file
// path) into a metric-name-safe suffix: every byte outside [a-zA-Z0-9_]
// becomes '_'. Registries have no labels, so dynamic dimensions fold
// into the metric name itself.
func SanitizeName(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// Counter returns the named counter, creating it on first use. A nil
// registry resolves to Default, so injected registries stay optional.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		r = Default
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ctrs[name]
	if !ok {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		r = Default
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gaug[name]
	if !ok {
		g = &Gauge{}
		r.gaug[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		r = Default
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry. Map
// keys are metric names; encoding/json sorts them, so serialized
// snapshots are deterministic given deterministic values.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Snapshot copies current values out of the registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		r = Default
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.ctrs)),
		Gauges:     make(map[string]float64, len(r.gaug)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.ctrs {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gaug {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// EncodeSnapshot renders a snapshot as indented JSON with a trailing
// newline, ready to write next to a run manifest.
func (r *Registry) EncodeSnapshot() []byte {
	data, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		// Snapshot holds only finite scalars (Gauge.Set clamps); Marshal
		// cannot fail.
		panic("obs: encoding snapshot: " + err.Error())
	}
	return append(data, '\n')
}

// names returns the registry's metric names sorted, for deterministic
// Prometheus exposition.
func (r *Registry) names() (ctrs, gaugs, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name := range r.ctrs {
		ctrs = append(ctrs, name)
	}
	for name := range r.gaug {
		gaugs = append(gaugs, name)
	}
	for name := range r.hists {
		hists = append(hists, name)
	}
	sort.Strings(ctrs)
	sort.Strings(gaugs)
	sort.Strings(hists)
	return ctrs, gaugs, hists
}
