package guestos

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/isa"
	"firemarshal/internal/kconfig"
	"firemarshal/internal/kernel"
	"firemarshal/internal/sim"
	"firemarshal/internal/sim/funcsim"
	"firemarshal/internal/sim/rtlsim"
)

func buildBoot(t *testing.T, frags string, modules map[string]string) *firmware.BootBinary {
	t.Helper()
	var fr []*kconfig.Config
	if frags != "" {
		c, err := kconfig.Parse(frags)
		if err != nil {
			t.Fatal(err)
		}
		fr = append(fr, c)
	}
	kimg, err := kernel.Build(kernel.BuildOpts{Fragments: fr, Modules: modules})
	if err != nil {
		t.Fatal(err)
	}
	bb, err := firmware.Build(firmware.KindOpenSBI, nil, kimg)
	if err != nil {
		t.Fatal(err)
	}
	return bb
}

func brRootfs(t *testing.T, runScript string) *fsimg.FS {
	t.Helper()
	fs := fsimg.New()
	fs.WriteFile(OSReleasePath, []byte("ID=buildroot\nVERSION_ID=2020.08\n"), 0o644)
	if runScript != "" {
		fs.WriteFile(RunScriptPath, []byte(runScript), 0o755)
	}
	return fs
}

func TestBuildrootBootRunsScript(t *testing.T) {
	var console bytes.Buffer
	res, err := Boot(BootOpts{
		Boot:     buildBoot(t, "", nil),
		Disk:     brRootfs(t, "echo workload-output\npoweroff\n"),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &console,
	})
	if err != nil {
		t.Fatal(err)
	}
	log := console.String()
	for _, want := range []string{
		"OpenSBI v0.9",
		"Linux version " + kernel.DefaultVersion,
		"Mounted root (ext4",
		"busybox init",
		"workload-output",
		"Power down",
	} {
		if !strings.Contains(log, want) {
			t.Errorf("boot log missing %q:\n%s", want, log)
		}
	}
	if !res.RanScript || res.ExitCode != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.Cycles == 0 {
		t.Error("boot must consume guest time")
	}
}

func TestNoRunScriptReachesLogin(t *testing.T) {
	var console bytes.Buffer
	res, err := Boot(BootOpts{
		Boot:     buildBoot(t, "", nil),
		Disk:     brRootfs(t, ""),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &console,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RanScript {
		t.Error("no script should have run")
	}
	if !strings.Contains(console.String(), "login:") {
		t.Error("interactive boot should reach a login prompt")
	}
}

func TestFedoraBootStartsServices(t *testing.T) {
	fs := fsimg.New()
	fs.WriteFile(OSReleasePath, []byte("ID=fedora\nVERSION_ID=31\n"), 0o644)
	fs.WriteFile(RunScriptPath, []byte("echo done\npoweroff\n"), 0o755)

	var console bytes.Buffer
	p := funcsim.New(funcsim.Config{})
	_, err := Boot(BootOpts{Boot: buildBoot(t, "", nil), Disk: fs, Platform: p, Console: &console})
	if err != nil {
		t.Fatal(err)
	}
	log := console.String()
	if !strings.Contains(log, "systemd[1]: Started NetworkManager.service") {
		t.Errorf("fedora services missing:\n%s", log)
	}
	if !strings.Contains(log, "Reached target Multi-User System") {
		t.Error("missing multi-user target")
	}
}

func TestFedoraBootsSlowerThanBuildroot(t *testing.T) {
	// §IV-A.3: "Fedora took significantly longer to boot".
	boot := func(distro string) uint64 {
		fs := fsimg.New()
		fs.WriteFile(OSReleasePath, []byte("ID="+distro+"\n"), 0o644)
		fs.WriteFile(RunScriptPath, []byte("poweroff\n"), 0o755)
		p := funcsim.New(funcsim.Config{})
		res, err := Boot(BootOpts{Boot: buildBoot(t, "", nil), Disk: fs, Platform: p, Console: &bytes.Buffer{}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	br, fed := boot("buildroot"), boot("fedora")
	if fed <= 2*br {
		t.Errorf("fedora (%d cycles) should boot much slower than buildroot (%d)", fed, br)
	}
}

func TestDriverAttachViaConfigFlag(t *testing.T) {
	attached := false
	drv := DriverSpec{
		Name:       "pfa",
		ConfigFlag: "PFA",
		Attach: func(p sim.Platform) error {
			attached = true
			return nil
		},
	}
	var console bytes.Buffer
	_, err := Boot(BootOpts{
		Boot:     buildBoot(t, "CONFIG_PFA=y\n", nil),
		Disk:     brRootfs(t, "poweroff\n"),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &console,
		Drivers:  []DriverSpec{drv},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !attached {
		t.Error("CONFIG_PFA=y should attach the driver")
	}
	if !strings.Contains(console.String(), "pfa: device initialized") {
		t.Error("driver init line missing")
	}
}

func TestDriverNotAttachedWhenDisabled(t *testing.T) {
	attached := false
	drv := DriverSpec{Name: "pfa", ConfigFlag: "PFA", Attach: func(p sim.Platform) error {
		attached = true
		return nil
	}}
	_, err := Boot(BootOpts{
		Boot:     buildBoot(t, "", nil), // PFA defaults to n
		Disk:     brRootfs(t, "poweroff\n"),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &bytes.Buffer{},
		Drivers:  []DriverSpec{drv},
	})
	if err != nil {
		t.Fatal(err)
	}
	if attached {
		t.Error("disabled driver must not attach")
	}
}

func TestDriverAttachViaModule(t *testing.T) {
	dir := t.TempDir()
	// module source
	if err := writeModuleSource(dir); err != nil {
		t.Fatal(err)
	}
	attached := false
	drv := DriverSpec{Name: "icenic", ModuleName: "icenic", Attach: func(p sim.Platform) error {
		attached = true
		return nil
	}}
	var console bytes.Buffer
	_, err := Boot(BootOpts{
		Boot:     buildBoot(t, "", map[string]string{"icenic": dir}),
		Disk:     brRootfs(t, "poweroff\n"),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &console,
		Drivers:  []DriverSpec{drv},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !attached {
		t.Error("module should attach driver")
	}
	if !strings.Contains(console.String(), "insmod icenic.ko") {
		t.Error("insmod line missing")
	}
}

func TestNoDiskBootUsesInitramfsRoot(t *testing.T) {
	rootfs := brRootfs(t, "echo from-initramfs\npoweroff\n")
	kimg, err := kernel.Build(kernel.BuildOpts{ExtraInitramfs: rootfs})
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := firmware.Build(firmware.KindOpenSBI, nil, kimg)
	var console bytes.Buffer
	res, err := Boot(BootOpts{
		Boot:     bb,
		Disk:     nil, // --no-disk
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &console,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(console.String(), "Mounted root (initramfs)") {
		t.Error("should mount initramfs root")
	}
	if !strings.Contains(console.String(), "from-initramfs") {
		t.Error("embedded run script did not execute")
	}
	if !res.RanScript {
		t.Error("RanScript not set")
	}
}

func TestBareMetalBoot(t *testing.T) {
	exe, err := asm.Assemble(`
_start:
    la a1, msg
    li a2, 5
    li a0, 1
    li a7, 64
    ecall
    li a0, 7
    li a7, 93
    ecall
.data
msg: .ascii "bare!"
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bb := firmware.BuildBare(isa.EncodeExecutable(exe))
	var console bytes.Buffer
	res, err := Boot(BootOpts{Boot: bb, Platform: funcsim.New(funcsim.Config{}), Console: &console})
	if err != nil {
		t.Fatal(err)
	}
	if console.String() != "bare!" {
		t.Errorf("console = %q", console.String())
	}
	if res.ExitCode != 7 {
		t.Errorf("exit = %d", res.ExitCode)
	}
}

func TestOutputsSurviveInFinalFS(t *testing.T) {
	res, err := Boot(BootOpts{
		Boot:     buildBoot(t, "", nil),
		Disk:     brRootfs(t, "echo result,42 > /output/res.csv\npoweroff\n"),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &bytes.Buffer{},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.FinalFS.ReadFile("/output/res.csv")
	if err != nil || !strings.Contains(string(data), "result,42") {
		t.Errorf("output file: %q, %v", data, err)
	}
}

func TestGuestInitOverride(t *testing.T) {
	fs := brRootfs(t, "echo normal-run\npoweroff\n")
	var console bytes.Buffer
	_, err := Boot(BootOpts{
		Boot:        buildBoot(t, "", nil),
		Disk:        fs,
		Platform:    funcsim.New(funcsim.Config{}),
		Console:     &console,
		OverrideRun: "echo guest-init-ran > /marker\npoweroff\n",
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(console.String(), "normal-run") {
		t.Error("normal run script must not execute during guest-init")
	}
	if fs.Lookup("/marker") == nil {
		t.Error("guest-init changes not persisted")
	}
}

func TestSameArtifactsBothPlatforms(t *testing.T) {
	// The identical boot binary and disk image run on functional and
	// cycle-exact simulation; cleaned output (timestamps stripped) agrees.
	bb := buildBoot(t, "", nil)
	mkDisk := func() *fsimg.FS { return brRootfs(t, "echo determinism-check\npoweroff\n") }

	var funcOut, rtlOut bytes.Buffer
	if _, err := Boot(BootOpts{Boot: bb, Disk: mkDisk(), Platform: funcsim.New(funcsim.Config{}), Console: &funcOut}); err != nil {
		t.Fatal(err)
	}
	rp, _ := rtlsim.New(rtlsim.DefaultConfig())
	if _, err := Boot(BootOpts{Boot: bb, Disk: mkDisk(), Platform: rp, Console: &rtlOut}); err != nil {
		t.Fatal(err)
	}
	strip := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if i := strings.Index(line, "] "); i > 0 && strings.HasPrefix(line, "[") {
				line = line[i+2:]
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	if strip(funcOut.String()) != strip(rtlOut.String()) {
		t.Errorf("cleaned outputs differ:\nfunc:\n%s\nrtl:\n%s", strip(funcOut.String()), strip(rtlOut.String()))
	}
	// Raw outputs differ because timestamps reflect timing — the reason
	// the test command cleans output (§III-D).
	if funcOut.String() == rtlOut.String() {
		t.Log("note: raw outputs happened to match (timing models may coincide)")
	}
}

func TestRTLBootDeterministic(t *testing.T) {
	// §IV-C: repeatable down to the exact cycle count.
	run := func() uint64 {
		rp, _ := rtlsim.New(rtlsim.DefaultConfig())
		res, err := Boot(BootOpts{
			Boot:     buildBoot(t, "", nil),
			Disk:     brRootfs(t, "echo x\npoweroff\n"),
			Platform: rp,
			Console:  &bytes.Buffer{},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if run() != run() {
		t.Error("RTL boot cycles not deterministic")
	}
}

func writeModuleSource(dir string) error {
	return writeFileHelper(dir+"/icenic.c", "int init_module(void) { return 0; }")
}

func TestUnameReflectsBuiltKernel(t *testing.T) {
	// §IV-C: kernel version visibly affects the guest environment. A
	// custom kernel source changes what `uname -a` reports.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "VERSION"), []byte("5.11.0-custom"), 0o644)
	kimg, err := kernel.Build(kernel.BuildOpts{SourceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	bb, _ := firmware.Build(firmware.KindOpenSBI, nil, kimg)
	var console bytes.Buffer
	_, err = Boot(BootOpts{
		Boot:     bb,
		Disk:     brRootfs(t, "uname -a\npoweroff\n"),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &console,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(console.String(), "Linux localhost 5.11.0-custom riscv64") {
		t.Errorf("uname output missing:\n%s", console.String())
	}
}
