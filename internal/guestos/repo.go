package guestos

import (
	"fmt"
	"sort"
	"strings"

	"firemarshal/internal/fsimg"
)

// Repo is the simulated package repository backing the Fedora base's
// package manager. The paper's end-to-end benchmarks "leveraged the package
// management system of a full-featured OS (Fedora) to install dependencies
// at build time (using a guest-init script)" (§IV-A.3); guest-init scripts
// here do the same with `pkg install <name>`.
type Repo struct {
	packages map[string]Package
}

// Package is one installable unit.
type Package struct {
	Name    string
	Version string
	Deps    []string
	// Files maps guest paths to contents. Executables are marked by mode.
	Files map[string]PackageFile
}

// PackageFile is one file in a package.
type PackageFile struct {
	Data []byte
	Mode uint32
}

// NewRepo creates an empty repository.
func NewRepo() *Repo {
	return &Repo{packages: map[string]Package{}}
}

// Add registers a package.
func (r *Repo) Add(p Package) error {
	if p.Name == "" {
		return fmt.Errorf("guestos: package without name")
	}
	if _, dup := r.packages[p.Name]; dup {
		return fmt.Errorf("guestos: duplicate package %q", p.Name)
	}
	r.packages[p.Name] = p
	return nil
}

// Names returns the sorted package names.
func (r *Repo) Names() []string {
	out := make([]string, 0, len(r.packages))
	for name := range r.packages {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Install writes a package and its transitive dependencies into fs. It is
// idempotent; dependency cycles are rejected.
func (r *Repo) Install(fs *fsimg.FS, name string) error {
	return r.install(fs, name, map[string]bool{})
}

func (r *Repo) install(fs *fsimg.FS, name string, visiting map[string]bool) error {
	if visiting[name] {
		return fmt.Errorf("guestos: dependency cycle through package %q", name)
	}
	p, ok := r.packages[name]
	if !ok {
		return fmt.Errorf("guestos: no package %q in repository (available: %s)",
			name, strings.Join(r.Names(), ", "))
	}
	if installed(fs, name) {
		return nil
	}
	visiting[name] = true
	defer delete(visiting, name)
	for _, dep := range p.Deps {
		if err := r.install(fs, dep, visiting); err != nil {
			return fmt.Errorf("guestos: %s depends on %s: %w", name, dep, err)
		}
	}
	for path, f := range p.Files {
		if err := fs.WriteFile(path, f.Data, f.Mode); err != nil {
			return err
		}
	}
	return fs.WriteFile(manifestPath(name), []byte(p.Version), 0o644)
}

func manifestPath(name string) string { return "/var/lib/pkg/" + name }

func installed(fs *fsimg.FS, name string) bool {
	return fs.Lookup(manifestPath(name)) != nil
}

// DefaultRepo returns the repository shipped with the Fedora base: a small
// but realistic set of tools end-to-end benchmarks depend on.
func DefaultRepo() *Repo {
	r := NewRepo()
	script := func(body string) PackageFile {
		return PackageFile{Data: []byte(body), Mode: 0o755}
	}
	lib := func(body string) PackageFile {
		return PackageFile{Data: []byte(body), Mode: 0o644}
	}
	must := func(p Package) {
		if err := r.Add(p); err != nil {
			panic(err)
		}
	}
	must(Package{
		Name: "coreutils", Version: "8.32",
		Files: map[string]PackageFile{
			"/usr/bin/seq": script("# seq shim\necho seq-not-modeled\n"),
		},
	})
	must(Package{
		Name: "python3", Version: "3.8.6", Deps: []string{"coreutils"},
		Files: map[string]PackageFile{
			"/usr/bin/python3":      script("echo Python 3.8.6\n"),
			"/usr/lib/python3.8/os": lib("python stdlib placeholder"),
		},
	})
	must(Package{
		Name: "numpy", Version: "1.19", Deps: []string{"python3"},
		Files: map[string]PackageFile{
			"/usr/lib/python3.8/numpy": lib("numpy placeholder"),
		},
	})
	must(Package{
		Name: "gcc", Version: "10.2", Deps: []string{"coreutils"},
		Files: map[string]PackageFile{
			"/usr/bin/gcc": script("echo gcc (GCC) 10.2.1\n"),
		},
	})
	must(Package{
		Name: "perf", Version: "5.7",
		Files: map[string]PackageFile{
			"/usr/bin/perf": script("echo perf version 5.7\n"),
		},
	})
	must(Package{
		Name: "memcached", Version: "1.6", Deps: []string{"coreutils"},
		Files: map[string]PackageFile{
			"/usr/bin/memcached": script("echo memcached 1.6.6 starting\n"),
		},
	})
	return r
}
