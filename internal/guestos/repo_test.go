package guestos

import (
	"os"
	"strings"
	"testing"

	"firemarshal/internal/fsimg"
)

func writeFileHelper(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestRepoInstall(t *testing.T) {
	r := DefaultRepo()
	fs := fsimg.New()
	if err := r.Install(fs, "python3"); err != nil {
		t.Fatal(err)
	}
	bin := fs.Lookup("/usr/bin/python3")
	if bin == nil || !bin.IsExec() {
		t.Error("python3 binary missing or not executable")
	}
	// Dependency chain: python3 -> coreutils.
	if fs.Lookup("/usr/bin/seq") == nil {
		t.Error("dependency coreutils not installed")
	}
}

func TestRepoInstallIdempotent(t *testing.T) {
	r := DefaultRepo()
	fs := fsimg.New()
	r.Install(fs, "numpy")
	h1 := fs.Hash()
	if err := r.Install(fs, "numpy"); err != nil {
		t.Fatal(err)
	}
	if fs.Hash() != h1 {
		t.Error("re-install changed the image")
	}
}

func TestRepoTransitiveDeps(t *testing.T) {
	r := DefaultRepo()
	fs := fsimg.New()
	if err := r.Install(fs, "numpy"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"numpy", "python3", "coreutils"} {
		if !installed(fs, p) {
			t.Errorf("%s not recorded as installed", p)
		}
	}
}

func TestRepoMissingPackage(t *testing.T) {
	r := DefaultRepo()
	err := r.Install(fsimg.New(), "emacs")
	if err == nil || !strings.Contains(err.Error(), "available:") {
		t.Errorf("expected helpful missing-package error, got %v", err)
	}
}

func TestRepoCycleDetection(t *testing.T) {
	r := NewRepo()
	r.Add(Package{Name: "a", Deps: []string{"b"}})
	r.Add(Package{Name: "b", Deps: []string{"a"}})
	if err := r.Install(fsimg.New(), "a"); err == nil {
		t.Error("expected cycle error")
	}
}

func TestRepoAddValidation(t *testing.T) {
	r := NewRepo()
	if err := r.Add(Package{}); err == nil {
		t.Error("expected unnamed package error")
	}
	r.Add(Package{Name: "x"})
	if err := r.Add(Package{Name: "x"}); err == nil {
		t.Error("expected duplicate error")
	}
}

func TestRepoNames(t *testing.T) {
	names := DefaultRepo().Names()
	if len(names) < 5 {
		t.Errorf("default repo too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i] < names[i-1] {
			t.Error("names not sorted")
		}
	}
}
