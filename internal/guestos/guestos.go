// Package guestos implements the simulated Linux system that boots
// FireMarshal-built artifacts. It consumes exactly the artifacts the build
// pipeline produces — boot binary (firmware + kernel + initramfs) and disk
// image — and emulates the software stack of Fig. 1: firmware banner,
// kernel boot governed by the kernel configuration, early driver loading
// from the initramfs, and a distribution init system (a busybox-style init
// for the Buildroot base, a systemd-style manager with asynchronous
// services for the Fedora base, §IV-A.3).
//
// Boot log lines carry kernel-style timestamps derived from the platform's
// cycle clock. Those differ between functional and cycle-exact simulation,
// which is precisely why FireMarshal's test command cleans outputs before
// comparison (§III-D).
package guestos

import (
	"fmt"
	"io"
	"strings"

	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/isa"
	"firemarshal/internal/shell"
	"firemarshal/internal/sim"
)

// RunScriptPath is where the build bakes the workload's run/command script
// into the image (§III-B.5c: "inserting a new step in the Linux
// distribution's init system").
const RunScriptPath = "/etc/marshal/run.sh"

// OSReleasePath identifies the distribution inside an image.
const OSReleasePath = "/etc/os-release"

// DriverSpec describes hardware available on the simulated SoC and how the
// kernel enables it. A driver attaches when its config flag is enabled in
// the booted kernel or when a matching module is loaded from the initramfs.
type DriverSpec struct {
	// Name appears in the boot log.
	Name string
	// ConfigFlag is the kernel option (without CONFIG_) gating the
	// built-in driver.
	ConfigFlag string
	// ModuleName matches modules embedded in the initramfs.
	ModuleName string
	// Attach installs the device model onto the platform.
	Attach func(p sim.Platform) error
}

// BootOpts configures one boot.
type BootOpts struct {
	// Boot is the boot binary artifact.
	Boot *firmware.BootBinary
	// Disk is the root filesystem image; nil for --no-disk workloads
	// (the rootfs is embedded in the initramfs, Fig. 3).
	Disk *fsimg.FS
	// Platform supplies execution and timing.
	Platform sim.Platform
	// Console receives the serial log.
	Console io.Writer
	// Drivers lists hardware present on this SoC configuration.
	Drivers []DriverSpec
	// PkgRepo backs `pkg install` on distributions that support it.
	PkgRepo *Repo
	// RunArgs are passed to the run script (used by guest-init runs).
	RunArgs []string
	// OverrideRun, when non-empty, runs this script instead of the baked
	// run script (used by the build's guest-init phase, §III-B.5b).
	OverrideRun string
}

// BootResult reports the completed boot.
type BootResult struct {
	ExitCode int64
	// FinalFS is the root filesystem state after shutdown (output files
	// are extracted from it).
	FinalFS *fsimg.FS
	// Cycles is the total guest time of the boot.
	Cycles uint64
	// RanScript reports whether a run script executed.
	RanScript bool
}

// console wraps the serial sink with kernel-style timestamps.
type console struct {
	w io.Writer
	p sim.Platform
}

func (c *console) stamp() string {
	// Kernel printk timestamps: seconds since boot at 1GHz.
	sec := float64(c.p.Cycles()) / 1e9
	return fmt.Sprintf("[%12.6f] ", sec)
}

func (c *console) linef(format string, args ...any) {
	fmt.Fprintf(c.w, "%s%s\n", c.stamp(), fmt.Sprintf(format, args...))
}

// Boot runs the full software stack to completion.
func Boot(opts BootOpts) (*BootResult, error) {
	if opts.Boot == nil {
		return nil, fmt.Errorf("guestos: nil boot binary")
	}
	if opts.Platform == nil {
		return nil, fmt.Errorf("guestos: nil platform")
	}
	if opts.Console == nil {
		opts.Console = io.Discard
	}
	start := opts.Platform.Cycles()

	// Bare-metal workloads skip the OS entirely.
	if opts.Boot.IsBare() {
		exe, err := isa.DecodeExecutable(opts.Boot.BareExe)
		if err != nil {
			return nil, fmt.Errorf("guestos: bare-metal payload: %w", err)
		}
		res, err := opts.Platform.Exec(exe, opts.Console)
		if err != nil {
			return nil, err
		}
		return &BootResult{
			ExitCode: res.Exit,
			FinalFS:  fsimg.New(),
			Cycles:   opts.Platform.Cycles() - start,
		}, nil
	}

	con := &console{w: opts.Console, p: opts.Platform}

	// Stage 1: firmware.
	for _, line := range opts.Boot.Banner() {
		fmt.Fprintf(opts.Console, "%s\n", line)
	}
	opts.Platform.Charge(opts.Boot.BootCostCycles())

	// Stage 2: kernel.
	kimg := opts.Boot.Kernel
	cfg := kimg.Config
	con.linef("Linux version %s (firemarshal@build) rv64im", kimg.Version)
	con.linef("Kernel command line: %s", cfg.String("CMDLINE", ""))
	con.linef("riscv: ISA extensions im")
	if cfg.Bool("SMP") {
		con.linef("smp: Bringing up %d CPUs", cfg.Int("NR_CPUS", 1))
	}
	opts.Platform.Charge(kimg.BootCostCycles())

	// Built-in drivers gated by kernel config.
	attached := map[string]bool{}
	for _, drv := range opts.Drivers {
		if drv.ConfigFlag != "" && cfg.Bool(drv.ConfigFlag) {
			if err := drv.Attach(opts.Platform); err != nil {
				return nil, fmt.Errorf("guestos: driver %s: %w", drv.Name, err)
			}
			attached[drv.Name] = true
			con.linef("%s: device initialized (built-in)", drv.Name)
		}
	}

	// Stage 3: initramfs — first-stage init loads modules and mounts root.
	initramfs, err := kimg.InitramfsFS()
	if err != nil {
		return nil, fmt.Errorf("guestos: decoding initramfs: %w", err)
	}
	con.linef("Unpacking initramfs...")
	for _, mod := range kimg.Modules {
		con.linef("initramfs: insmod %s.ko", mod.Name)
		opts.Platform.Charge(50_000)
		for _, drv := range opts.Drivers {
			if drv.ModuleName == mod.Name && !attached[drv.Name] {
				if err := drv.Attach(opts.Platform); err != nil {
					return nil, fmt.Errorf("guestos: module %s: %w", mod.Name, err)
				}
				attached[drv.Name] = true
				con.linef("%s: device initialized (module)", drv.Name)
			}
		}
	}

	// Mount the root filesystem.
	var rootfs *fsimg.FS
	if opts.Disk != nil {
		con.linef("VFS: Mounted root (ext4 filesystem) on device 254:0.")
		rootfs = opts.Disk
	} else {
		con.linef("VFS: Mounted root (initramfs).")
		rootfs = initramfs
	}

	// Stage 4: distribution init system.
	distro := detectDistro(rootfs)
	env := &shell.Env{
		FS:       rootfs,
		Platform: opts.Platform,
		Console:  opts.Console,
		Vars: map[string]string{
			"KERNEL_VERSION": kimg.Version,
			"HOSTNAME":       hostname(rootfs),
		},
	}
	if opts.PkgRepo != nil && distro == "fedora" {
		env.PkgInstall = func(name string) error { return opts.PkgRepo.Install(rootfs, name) }
	}

	switch distro {
	case "fedora":
		if err := bootFedora(con, env, opts.Platform); err != nil {
			return nil, err
		}
	default: // buildroot and unknown images boot the minimal init
		if err := bootBuildroot(con, env); err != nil {
			return nil, err
		}
	}

	// Stage 5: the workload's run script (or the build's guest-init).
	result := &BootResult{FinalFS: rootfs}
	script := opts.OverrideRun
	if script == "" {
		if data, rerr := rootfs.ReadFile(RunScriptPath); rerr == nil {
			script = string(data)
		}
	}
	if script != "" {
		result.RanScript = true
		if err := env.Run(script, opts.RunArgs...); err != nil {
			return nil, fmt.Errorf("guestos: run script: %w", err)
		}
		result.ExitCode = env.LastExit
		con.linef("reboot: Power down")
	} else {
		// Interactive workloads (no run/command option) reach a login
		// prompt; headless simulation powers down there.
		fmt.Fprintf(opts.Console, "\nbuildroot login: ")
		fmt.Fprintf(opts.Console, "[headless simulation: halting]\n")
	}

	result.Cycles = opts.Platform.Cycles() - start
	return result, nil
}

// hostname reads /etc/hostname (default "localhost").
func hostname(fs *fsimg.FS) string {
	data, err := fs.ReadFile("/etc/hostname")
	if err != nil {
		return "localhost"
	}
	return strings.TrimSpace(string(data))
}

// detectDistro reads /etc/os-release.
func detectDistro(fs *fsimg.FS) string {
	data, err := fs.ReadFile(OSReleasePath)
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "ID=") {
			return strings.Trim(strings.TrimPrefix(line, "ID="), `"`)
		}
	}
	return ""
}

// bootBuildroot models the busybox-style init: fast, minimal, deterministic.
func bootBuildroot(con *console, env *shell.Env) error {
	con.linef("init: starting busybox init")
	env.Platform.Charge(400_000)
	if data, err := env.FS.ReadFile("/etc/init.d/rcS"); err == nil {
		if err := env.Run(string(data)); err != nil {
			return fmt.Errorf("guestos: rcS: %w", err)
		}
	}
	con.linef("init: reached runlevel 3")
	return nil
}

// fedoraServices is the deterministic set of systemd services the Fedora
// base starts. The paper: Fedora "took significantly longer to boot and
// introduced hard-to-debug features like asynchronous systemd services".
var fedoraServices = []struct {
	name   string
	cycles uint64
}{
	{"systemd-journald.service", 2_500_000},
	{"systemd-udevd.service", 4_000_000},
	{"systemd-tmpfiles-setup.service", 1_500_000},
	{"dbus.service", 3_000_000},
	{"NetworkManager.service", 6_000_000},
	{"sshd.service", 2_000_000},
	{"systemd-logind.service", 1_800_000},
}

func bootFedora(con *console, env *shell.Env, p sim.Platform) error {
	con.linef("systemd[1]: systemd 245 running in system mode.")
	for _, svc := range fedoraServices {
		p.Charge(svc.cycles)
		con.linef("systemd[1]: Started %s", svc.name)
	}
	// User units from the image (asynchronous services the workload set
	// up, e.g. via guest-init).
	if names, err := env.FS.List("/etc/systemd/system"); err == nil {
		for _, name := range names {
			if !strings.HasSuffix(name, ".service") || name == "marshal.service" {
				continue
			}
			p.Charge(1_000_000)
			con.linef("systemd[1]: Started %s", name)
		}
	}
	con.linef("systemd[1]: Reached target Multi-User System.")
	return nil
}
