package asm

import (
	"fmt"
	"strings"

	"firemarshal/internal/isa"
)

// instrSize returns how many 32-bit words the (possibly pseudo) instruction
// occupies. Pass 1 and pass 2 must agree, so pseudo expansion sizes are
// computed from operand values alone.
func (a *assembler) instrSize(it *item) (int, error) {
	switch it.mnem {
	case "li":
		if len(it.ops) != 2 {
			return 0, errf(it.line, "li needs 2 operands")
		}
		v, err := a.constOperand(it.ops[1], it.line)
		if err != nil {
			return 0, err
		}
		return len(liExpansion(0, v)), nil
	case "la", "call":
		return 2, nil
	case "nop", "mv", "not", "neg", "seqz", "snez", "sltz", "sgtz",
		"j", "jr", "ret", "beqz", "bnez", "blez", "bgez", "bltz", "bgtz",
		"bgt", "ble", "bgtu", "bleu", "rdcycle", "rdinstret", "rdtime":
		return 1, nil
	default:
		return 1, nil
	}
}

// encodeInstr produces the instruction word(s) for an item at its final
// address, with all symbols resolved.
func (a *assembler) encodeInstr(it *item) ([]uint32, error) {
	instrs, err := a.expand(it)
	if err != nil {
		return nil, err
	}
	words := make([]uint32, 0, len(instrs))
	for _, in := range instrs {
		w, err := isa.Encode(in)
		if err != nil {
			return nil, errf(it.line, "%v", err)
		}
		words = append(words, w)
	}
	if len(words)*4 != it.size {
		return nil, errf(it.line, "internal: pass size mismatch (%d != %d)", len(words)*4, it.size)
	}
	return words, nil
}

// regOperand parses a register name or xN form.
func regOperand(op string, line int) (uint8, error) {
	if r, ok := isa.RegNames[op]; ok {
		return r, nil
	}
	if strings.HasPrefix(op, "x") {
		var n int
		if _, err := fmt.Sscanf(op, "x%d", &n); err == nil && n >= 0 && n < 32 {
			return uint8(n), nil
		}
	}
	return 0, errf(line, "bad register %q", op)
}

// constOperand resolves an operand that must be a constant: an integer
// literal or an .equ symbol.
func (a *assembler) constOperand(op string, line int) (int64, error) {
	if v, err := parseInt(op); err == nil {
		return v, nil
	}
	if sv, ok := a.symbols[op]; ok && sv.defined && sv.isEqu {
		return int64(sv.addr), nil
	}
	return 0, errf(line, "expected constant, got %q", op)
}

// immOperand resolves an immediate: integer literal, .equ constant, or
// (for data addressing contexts) a defined symbol.
func (a *assembler) immOperand(op string, line int) (int64, error) {
	if v, err := parseInt(op); err == nil {
		return v, nil
	}
	if sym, addend, err := parseSymExpr(op); err == nil {
		if sv, ok := a.symbols[sym]; ok && sv.defined {
			return int64(sv.addr) + addend, nil
		}
	}
	return 0, errf(line, "cannot resolve immediate %q", op)
}

// branchTarget resolves a label to a pc-relative offset.
func (a *assembler) branchTarget(op string, pc uint64, line int) (int64, error) {
	if v, err := parseInt(op); err == nil {
		return v, nil // raw offset
	}
	sym, addend, err := parseSymExpr(op)
	if err != nil {
		return 0, errf(line, "bad branch target %q", op)
	}
	sv, ok := a.symbols[sym]
	if !ok || !sv.defined {
		return 0, errf(line, "undefined symbol %q", sym)
	}
	return int64(sv.addr) + addend - int64(pc), nil
}

// memOperand parses "off(reg)" or "(reg)".
func (a *assembler) memOperand(op string, line int) (int64, uint8, error) {
	open := strings.Index(op, "(")
	if open < 0 || !strings.HasSuffix(op, ")") {
		return 0, 0, errf(line, "bad memory operand %q (want off(reg))", op)
	}
	offStr := strings.TrimSpace(op[:open])
	regStr := strings.TrimSpace(op[open+1 : len(op)-1])
	var off int64
	if offStr != "" {
		v, err := a.constOperand(offStr, line)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	reg, err := regOperand(regStr, line)
	if err != nil {
		return 0, 0, err
	}
	return off, reg, nil
}

// liExpansion returns the canonical instruction sequence that materializes v
// into rd. The sequence length depends only on v.
func liExpansion(rd uint8, v int64) []isa.Instr {
	if v >= -2048 && v <= 2047 {
		return []isa.Instr{{Op: isa.OpADDI, Rd: rd, Rs1: 0, Imm: v}}
	}
	// lui+addi covers values where sign-extension works out: v must equal
	// signext32(hi<<12) + lo.
	lo := int64(int32(uint32(v)<<20)) >> 20 // sign-extended low 12 bits
	hi := v - lo
	if hi >= -(1<<31) && hi < 1<<31 && int64(int32(hi)) == hi {
		seq := []isa.Instr{{Op: isa.OpLUI, Rd: rd, Imm: int64(int32(hi))}}
		if lo != 0 {
			seq = append(seq, isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo})
		}
		return seq
	}
	// General 64-bit: materialize the upper part, shift by 12, add low 12
	// bits; recurse.
	lo12 := (v << 52) >> 52
	rest := (v - lo12) >> 12
	seq := liExpansion(rd, rest)
	seq = append(seq, isa.Instr{Op: isa.OpSLLI, Rd: rd, Rs1: rd, Imm: 12})
	if lo12 != 0 {
		seq = append(seq, isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo12})
	}
	return seq
}

// expand translates one statement into real instructions.
func (a *assembler) expand(it *item) ([]isa.Instr, error) {
	line := it.line
	ops := it.ops
	need := func(n int) error {
		if len(ops) != n {
			return errf(line, "%s needs %d operands, got %d", it.mnem, n, len(ops))
		}
		return nil
	}
	reg := func(i int) (uint8, error) { return regOperand(ops[i], line) }

	one := func(in isa.Instr, err error) ([]isa.Instr, error) {
		if err != nil {
			return nil, err
		}
		return []isa.Instr{in}, nil
	}

	switch it.mnem {
	// ---- R-type ----
	case "add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and",
		"mul", "mulh", "mulhu", "div", "divu", "rem", "remu",
		"addw", "subw", "sllw", "srlw", "sraw",
		"mulw", "divw", "divuw", "remw", "remuw":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := reg(1)
		if err != nil {
			return nil, err
		}
		rs2, err := reg(2)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: mnemOp(it.mnem), Rd: rd, Rs1: rs1, Rs2: rs2}, nil)

	// ---- I-type ALU ----
	case "addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai",
		"addiw", "slliw", "srliw", "sraiw":
		if err := need(3); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs1, err := reg(1)
		if err != nil {
			return nil, err
		}
		imm, err := a.constOperand(ops[2], line)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: mnemOp(it.mnem), Rd: rd, Rs1: rs1, Imm: imm}, nil)

	// ---- upper immediates ----
	case "lui", "auipc":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		imm, err := a.constOperand(ops[1], line)
		if err != nil {
			return nil, err
		}
		// Accept the conventional "upper 20 bits" operand form.
		return one(isa.Instr{Op: mnemOp(it.mnem), Rd: rd, Imm: imm << 12}, nil)

	// ---- loads/stores ----
	case "lb", "lh", "lw", "ld", "lbu", "lhu", "lwu":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(ops[1], line)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: mnemOp(it.mnem), Rd: rd, Rs1: rs1, Imm: off}, nil)
	case "sb", "sh", "sw", "sd":
		if err := need(2); err != nil {
			return nil, err
		}
		rs2, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, rs1, err := a.memOperand(ops[1], line)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: mnemOp(it.mnem), Rs1: rs1, Rs2: rs2, Imm: off}, nil)

	// ---- branches ----
	case "beq", "bne", "blt", "bge", "bltu", "bgeu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs2, err := reg(1)
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(ops[2], it.addr, line)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: mnemOp(it.mnem), Rs1: rs1, Rs2: rs2, Imm: off}, nil)
	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs2, err := reg(1)
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(ops[2], it.addr, line)
		if err != nil {
			return nil, err
		}
		swapped := map[string]isa.Op{"bgt": isa.OpBLT, "ble": isa.OpBGE, "bgtu": isa.OpBLTU, "bleu": isa.OpBGEU}[it.mnem]
		return one(isa.Instr{Op: swapped, Rs1: rs2, Rs2: rs1, Imm: off}, nil)
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		off, err := a.branchTarget(ops[1], it.addr, line)
		if err != nil {
			return nil, err
		}
		switch it.mnem {
		case "beqz":
			return one(isa.Instr{Op: isa.OpBEQ, Rs1: rs, Rs2: 0, Imm: off}, nil)
		case "bnez":
			return one(isa.Instr{Op: isa.OpBNE, Rs1: rs, Rs2: 0, Imm: off}, nil)
		case "blez":
			return one(isa.Instr{Op: isa.OpBGE, Rs1: 0, Rs2: rs, Imm: off}, nil)
		case "bgez":
			return one(isa.Instr{Op: isa.OpBGE, Rs1: rs, Rs2: 0, Imm: off}, nil)
		case "bltz":
			return one(isa.Instr{Op: isa.OpBLT, Rs1: rs, Rs2: 0, Imm: off}, nil)
		default: // bgtz
			return one(isa.Instr{Op: isa.OpBLT, Rs1: 0, Rs2: rs, Imm: off}, nil)
		}

	// ---- jumps ----
	case "jal":
		switch len(ops) {
		case 1: // jal label  (rd=ra)
			off, err := a.branchTarget(ops[0], it.addr, line)
			if err != nil {
				return nil, err
			}
			return one(isa.Instr{Op: isa.OpJAL, Rd: 1, Imm: off}, nil)
		case 2:
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			off, err := a.branchTarget(ops[1], it.addr, line)
			if err != nil {
				return nil, err
			}
			return one(isa.Instr{Op: isa.OpJAL, Rd: rd, Imm: off}, nil)
		default:
			return nil, errf(line, "jal needs 1 or 2 operands")
		}
	case "jalr":
		switch len(ops) {
		case 1:
			if off, rs1, err := a.memOperand(ops[0], line); err == nil {
				return one(isa.Instr{Op: isa.OpJALR, Rd: 1, Rs1: rs1, Imm: off}, nil)
			}
			rs, err := reg(0)
			if err != nil {
				return nil, err
			}
			return one(isa.Instr{Op: isa.OpJALR, Rd: 1, Rs1: rs}, nil)
		case 2:
			rd, err := reg(0)
			if err != nil {
				return nil, err
			}
			off, rs1, err := a.memOperand(ops[1], line)
			if err != nil {
				rs1, err = reg(1)
				if err != nil {
					return nil, err
				}
				off = 0
			}
			return one(isa.Instr{Op: isa.OpJALR, Rd: rd, Rs1: rs1, Imm: off}, nil)
		default:
			return nil, errf(line, "jalr needs 1 or 2 operands")
		}
	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		off, err := a.branchTarget(ops[0], it.addr, line)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpJAL, Rd: 0, Imm: off}, nil)
	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := reg(0)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpJALR, Rd: 0, Rs1: rs}, nil)
	case "ret":
		return one(isa.Instr{Op: isa.OpJALR, Rd: 0, Rs1: 1}, nil)
	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		// auipc ra, hi ; jalr ra, lo(ra) — reaches ±2GiB.
		sym, addend, err := parseSymExpr(ops[0])
		if err != nil {
			return nil, errf(line, "bad call target %q", ops[0])
		}
		sv, ok := a.symbols[sym]
		if !ok || !sv.defined {
			return nil, errf(line, "undefined symbol %q", sym)
		}
		delta := int64(sv.addr) + addend - int64(it.addr)
		hi, lo := splitHiLo(delta)
		return []isa.Instr{
			{Op: isa.OpAUIPC, Rd: 1, Imm: hi},
			{Op: isa.OpJALR, Rd: 1, Rs1: 1, Imm: lo},
		}, nil

	// ---- pseudo ALU ----
	case "nop":
		return one(isa.Instr{Op: isa.OpADDI}, nil)
	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpADDI, Rd: rd, Rs1: rs}, nil)
	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpXORI, Rd: rd, Rs1: rs, Imm: -1}, nil)
	case "sext.w":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpADDIW, Rd: rd, Rs1: rs}, nil)
	case "negw":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSUBW, Rd: rd, Rs1: 0, Rs2: rs}, nil)
	case "neg":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSUB, Rd: rd, Rs1: 0, Rs2: rs}, nil)
	case "seqz":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSLTIU, Rd: rd, Rs1: rs, Imm: 1}, nil)
	case "snez":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSLTU, Rd: rd, Rs1: 0, Rs2: rs}, nil)
	case "sltz":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSLT, Rd: rd, Rs1: rs, Rs2: 0}, nil)
	case "sgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpSLT, Rd: rd, Rs1: 0, Rs2: rs}, nil)

	// ---- li / la ----
	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		v, err := a.constOperand(ops[1], line)
		if err != nil {
			return nil, err
		}
		return liExpansion(rd, v), nil
	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		target, err := a.immOperand(ops[1], line)
		if err != nil {
			return nil, err
		}
		delta := target - int64(it.addr)
		hi, lo := splitHiLo(delta)
		return []isa.Instr{
			{Op: isa.OpAUIPC, Rd: rd, Imm: hi},
			{Op: isa.OpADDI, Rd: rd, Rs1: rd, Imm: lo},
		}, nil

	// ---- system ----
	case "ecall":
		return one(isa.Instr{Op: isa.OpECALL}, nil)
	case "ebreak":
		return one(isa.Instr{Op: isa.OpEBREAK}, nil)
	case "fence":
		return one(isa.Instr{Op: isa.OpFENCE}, nil)
	case "rdcycle", "rdinstret", "rdtime":
		if err := need(1); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		csr := map[string]int64{"rdcycle": isa.CSRCycle, "rdtime": isa.CSRTime, "rdinstret": isa.CSRInstret}[it.mnem]
		return one(isa.Instr{Op: isa.OpCSRRS, Rd: rd, Imm: csr}, nil)
	case "csrr":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := reg(0)
		if err != nil {
			return nil, err
		}
		csr, err := a.constOperand(ops[1], line)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpCSRRS, Rd: rd, Imm: csr}, nil)
	case "csrw":
		if err := need(2); err != nil {
			return nil, err
		}
		csr, err := a.constOperand(ops[0], line)
		if err != nil {
			return nil, err
		}
		rs, err := reg(1)
		if err != nil {
			return nil, err
		}
		return one(isa.Instr{Op: isa.OpCSRRW, Rd: 0, Rs1: rs, Imm: csr}, nil)
	}
	return nil, errf(line, "unknown instruction %q", it.mnem)
}

// splitHiLo splits a 32-bit pc-relative delta into AUIPC/ADDI halves.
func splitHiLo(delta int64) (hi, lo int64) {
	lo = (delta << 52) >> 52
	hi = delta - lo
	return hi, lo
}

func mnemOp(m string) isa.Op {
	ops := map[string]isa.Op{
		"add": isa.OpADD, "sub": isa.OpSUB, "sll": isa.OpSLL, "slt": isa.OpSLT,
		"sltu": isa.OpSLTU, "xor": isa.OpXOR, "srl": isa.OpSRL, "sra": isa.OpSRA,
		"or": isa.OpOR, "and": isa.OpAND,
		"mul": isa.OpMUL, "mulh": isa.OpMULH, "mulhu": isa.OpMULHU,
		"div": isa.OpDIV, "divu": isa.OpDIVU, "rem": isa.OpREM, "remu": isa.OpREMU,
		"addi": isa.OpADDI, "slti": isa.OpSLTI, "sltiu": isa.OpSLTIU,
		"xori": isa.OpXORI, "ori": isa.OpORI, "andi": isa.OpANDI,
		"slli": isa.OpSLLI, "srli": isa.OpSRLI, "srai": isa.OpSRAI,
		"lui": isa.OpLUI, "auipc": isa.OpAUIPC,
		"beq": isa.OpBEQ, "bne": isa.OpBNE, "blt": isa.OpBLT, "bge": isa.OpBGE,
		"bltu": isa.OpBLTU, "bgeu": isa.OpBGEU,
		"lb": isa.OpLB, "lh": isa.OpLH, "lw": isa.OpLW, "ld": isa.OpLD,
		"lbu": isa.OpLBU, "lhu": isa.OpLHU, "lwu": isa.OpLWU,
		"sb": isa.OpSB, "sh": isa.OpSH, "sw": isa.OpSW, "sd": isa.OpSD,
		"addw": isa.OpADDW, "subw": isa.OpSUBW, "sllw": isa.OpSLLW,
		"srlw": isa.OpSRLW, "sraw": isa.OpSRAW,
		"addiw": isa.OpADDIW, "slliw": isa.OpSLLIW, "srliw": isa.OpSRLIW,
		"sraiw": isa.OpSRAIW,
		"mulw":  isa.OpMULW, "divw": isa.OpDIVW, "divuw": isa.OpDIVUW,
		"remw": isa.OpREMW, "remuw": isa.OpREMUW,
	}
	return ops[m]
}
