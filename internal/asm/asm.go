// Package asm implements a two-pass assembler for the RV64IM subset defined
// in internal/isa. It fills the role of the cross-compilation toolchain in a
// real FireMarshal flow (invoked from host-init scripts, §IV-A): workload
// sources are assembly files, and the assembler produces deterministic MEX1
// executables that are embedded into filesystem images.
//
// Supported syntax:
//
//	label:                      # labels
//	.text / .data               # sections
//	.globl sym                  # export (entry point is _start)
//	.align N                    # align to 2^N bytes
//	.space N                    # N zero bytes
//	.byte/.half/.word/.dword    # data values (integers or symbols)
//	.ascii/.asciz "str"         # string data
//	.equ name, value            # assembler constants
//	add rd, rs1, rs2            # all isa ops, plus standard pseudo-ops:
//	li, la, mv, not, neg, nop, j, jr, ret, call, seqz, snez,
//	beqz, bnez, blez, bgez, bltz, bgtz, bgt, ble, bgtu, bleu,
//	rdcycle, rdinstret
//
// Comments start with '#' or '//'.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"firemarshal/internal/isa"
)

// Options controls assembly.
type Options struct {
	// TextBase is the load address of the .text section (default 0x10000).
	TextBase uint64
	// DataBase is the load address of .data; zero places it at the first
	// 4KiB boundary after text.
	DataBase uint64
}

// DefaultTextBase is where guest programs load unless overridden.
const DefaultTextBase = 0x10000

// Error is an assembly error with source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Assemble assembles source text into an executable.
func Assemble(src string, opts Options) (*isa.Executable, error) {
	if opts.TextBase == 0 {
		opts.TextBase = DefaultTextBase
	}
	a := &assembler{opts: opts, symbols: map[string]symval{}}
	if err := a.parse(src); err != nil {
		return nil, err
	}
	if err := a.layout(); err != nil {
		return nil, err
	}
	return a.emit()
}

type section int

const (
	secText section = iota
	secData
)

// item is one assembled unit: an instruction statement or a data directive.
type item struct {
	line    int
	sec     section
	label   string   // set when the item is a label definition
	mnem    string   // instruction mnemonic (empty for pure data/labels)
	ops     []string // operand strings
	data    []byte   // literal data bytes (for .byte/.ascii/...)
	dataSym []dataRef
	align   int // .align exponent (-1 when unused)
	space   int // .space size (0 when unused)
	size    int // bytes occupied, fixed in layout()
	addr    uint64
}

// dataRef is a symbol reference inside a data directive.
type dataRef struct {
	off    int // byte offset within item data
	width  int
	sym    string
	addend int64
}

type symval struct {
	addr    uint64
	defined bool
	isEqu   bool
}

type assembler struct {
	opts    Options
	items   []*item
	symbols map[string]symval
	globals []string
}

// ---------- pass 0: parsing ----------

func (a *assembler) parse(src string) error {
	sec := secText
	for i, raw := range strings.Split(src, "\n") {
		lineNo := i + 1
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several, possibly followed by a statement).
		for {
			idx := strings.Index(line, ":")
			if idx < 0 {
				break
			}
			head := strings.TrimSpace(line[:idx])
			if !isIdent(head) {
				break
			}
			a.items = append(a.items, &item{line: lineNo, sec: sec, label: head, align: -1})
			line = strings.TrimSpace(line[idx+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			var err error
			sec, err = a.parseDirective(line, lineNo, sec)
			if err != nil {
				return err
			}
			continue
		}
		mnem, ops, err := splitStatement(line, lineNo)
		if err != nil {
			return err
		}
		if sec != secText {
			return errf(lineNo, "instruction %q outside .text", mnem)
		}
		a.items = append(a.items, &item{line: lineNo, sec: sec, mnem: mnem, ops: ops, align: -1})
	}
	return nil
}

func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		if c == '"' && (i == 0 || line[i-1] != '\\') {
			inStr = !inStr
		}
		if inStr {
			continue
		}
		if c == '#' {
			return line[:i]
		}
		if c == '/' && i+1 < len(line) && line[i+1] == '/' {
			return line[:i]
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' || r == '$' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func splitStatement(line string, lineNo int) (string, []string, error) {
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return strings.ToLower(line), nil, nil
	}
	mnem := strings.ToLower(line[:sp])
	rest := strings.TrimSpace(line[sp+1:])
	if rest == "" {
		return mnem, nil, nil
	}
	var ops []string
	inQuote := byte(0)
	last := 0
	flush := func(end int) error {
		op := strings.TrimSpace(rest[last:end])
		if op == "" {
			return errf(lineNo, "empty operand in %q", line)
		}
		ops = append(ops, op)
		return nil
	}
	for i := 0; i < len(rest); i++ {
		c := rest[i]
		switch {
		case inQuote != 0:
			if c == inQuote && (inQuote != '"' || rest[i-1] != '\\') {
				inQuote = 0
			}
		case c == '\'' || c == '"':
			inQuote = c
		case c == ',':
			if err := flush(i); err != nil {
				return "", nil, err
			}
			last = i + 1
		}
	}
	if err := flush(len(rest)); err != nil {
		return "", nil, err
	}
	return mnem, ops, nil
}

func (a *assembler) parseDirective(line string, lineNo int, sec section) (section, error) {
	sp := strings.IndexAny(line, " \t")
	name := line
	rest := ""
	if sp > 0 {
		name = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	switch name {
	case ".text":
		return secText, nil
	case ".data", ".rodata", ".bss":
		return secData, nil
	case ".globl", ".global":
		if !isIdent(rest) {
			return sec, errf(lineNo, "bad symbol in %s", name)
		}
		a.globals = append(a.globals, rest)
		return sec, nil
	case ".align", ".p2align":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 || n > 12 {
			return sec, errf(lineNo, "bad alignment %q", rest)
		}
		a.items = append(a.items, &item{line: lineNo, sec: sec, align: n})
		return sec, nil
	case ".space", ".skip":
		n, err := strconv.Atoi(rest)
		if err != nil || n < 0 {
			return sec, errf(lineNo, "bad .space size %q", rest)
		}
		a.items = append(a.items, &item{line: lineNo, sec: sec, space: n, align: -1})
		return sec, nil
	case ".byte", ".half", ".word", ".dword", ".quad":
		width := map[string]int{".byte": 1, ".half": 2, ".word": 4, ".dword": 8, ".quad": 8}[name]
		it := &item{line: lineNo, sec: sec, align: -1}
		for _, field := range strings.Split(rest, ",") {
			field = strings.TrimSpace(field)
			if v, err := parseInt(field); err == nil {
				it.data = appendInt(it.data, v, width)
			} else if sym, addend, serr := parseSymExpr(field); serr == nil {
				it.dataSym = append(it.dataSym, dataRef{off: len(it.data), width: width, sym: sym, addend: addend})
				it.data = appendInt(it.data, 0, width)
			} else {
				return sec, errf(lineNo, "bad %s value %q", name, field)
			}
		}
		a.items = append(a.items, it)
		return sec, nil
	case ".ascii", ".asciz", ".string":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return sec, errf(lineNo, "bad string %q: %v", rest, err)
		}
		data := []byte(s)
		if name != ".ascii" {
			data = append(data, 0)
		}
		a.items = append(a.items, &item{line: lineNo, sec: sec, data: data, align: -1})
		return sec, nil
	case ".equ", ".set":
		parts := strings.SplitN(rest, ",", 2)
		if len(parts) != 2 || !isIdent(strings.TrimSpace(parts[0])) {
			return sec, errf(lineNo, "bad %s syntax", name)
		}
		v, err := parseInt(strings.TrimSpace(parts[1]))
		if err != nil {
			return sec, errf(lineNo, "bad %s value: %v", name, err)
		}
		symName := strings.TrimSpace(parts[0])
		if old, exists := a.symbols[symName]; exists && old.defined {
			return sec, errf(lineNo, "symbol %q redefined", symName)
		}
		a.symbols[symName] = symval{addr: uint64(v), defined: true, isEqu: true}
		return sec, nil
	default:
		return sec, errf(lineNo, "unknown directive %q", name)
	}
}

func appendInt(b []byte, v int64, width int) []byte {
	for i := 0; i < width; i++ {
		b = append(b, byte(uint64(v)>>(8*i)))
	}
	return b
}

// parseInt parses decimal, hex (0x), octal (0o), binary (0b), and character
// ('c') literals with an optional leading minus.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := strconv.Unquote(s)
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad char literal %q", s)
		}
		return int64(body[0]), nil
	}
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	// Allow full-range unsigned hex (e.g. 0xffffffffffffffff).
	if u, err := strconv.ParseUint(s, 0, 64); err == nil {
		return int64(u), nil
	}
	return 0, fmt.Errorf("bad integer %q", s)
}

// parseSymExpr parses "sym", "sym+N", or "sym-N".
func parseSymExpr(s string) (string, int64, error) {
	s = strings.TrimSpace(s)
	for i := 1; i < len(s); i++ {
		if s[i] == '+' || s[i] == '-' {
			sym := strings.TrimSpace(s[:i])
			if !isIdent(sym) {
				break
			}
			off, err := parseInt(s[i+1:])
			if err != nil {
				return "", 0, err
			}
			if s[i] == '-' {
				off = -off
			}
			return sym, off, nil
		}
	}
	if !isIdent(s) {
		return "", 0, fmt.Errorf("bad symbol expression %q", s)
	}
	return s, 0, nil
}

// ---------- pass 1: layout ----------

func (a *assembler) layout() error {
	textOff, dataOff := uint64(0), uint64(0)
	// First size everything.
	for _, it := range a.items {
		off := &textOff
		if it.sec == secData {
			off = &dataOff
		}
		switch {
		case it.label != "":
			// handled below once addresses are known
		case it.align >= 0:
			align := uint64(1) << it.align
			*off = (*off + align - 1) &^ (align - 1)
		case it.space > 0:
			it.addr = *off
			it.size = it.space
			*off += uint64(it.space)
		case it.data != nil:
			it.addr = *off
			it.size = len(it.data)
			*off += uint64(len(it.data))
		case it.mnem != "":
			n, err := a.instrSize(it)
			if err != nil {
				return err
			}
			it.addr = *off
			it.size = n * 4
			*off += uint64(n * 4)
		}
		if it.label != "" {
			it.addr = *off
		}
	}
	textBase := a.opts.TextBase
	dataBase := a.opts.DataBase
	if dataBase == 0 {
		dataBase = (textBase + textOff + 0xfff) &^ 0xfff
	}
	// Rebase and define label symbols.
	for _, it := range a.items {
		base := textBase
		if it.sec == secData {
			base = dataBase
		}
		it.addr += base
		if it.label != "" {
			if old, exists := a.symbols[it.label]; exists && old.defined {
				return errf(it.line, "symbol %q redefined", it.label)
			}
			a.symbols[it.label] = symval{addr: it.addr, defined: true}
		}
	}
	return nil
}

// ---------- pass 2: emission ----------

func (a *assembler) emit() (*isa.Executable, error) {
	var text, data []byte
	appendTo := func(sec section, addr uint64, b []byte, base uint64, buf *[]byte) {
		off := addr - base
		for uint64(len(*buf)) < off {
			*buf = append(*buf, 0)
		}
		*buf = append((*buf)[:off], b...)
	}
	textBase := a.opts.TextBase
	var dataBase uint64
	for _, it := range a.items {
		if it.sec == secData && (it.size > 0 || it.label != "") {
			if dataBase == 0 || it.addr < dataBase {
				dataBase = it.addr
			}
		}
	}
	if dataBase == 0 {
		dataBase = textBase // no data section
	}

	for _, it := range a.items {
		switch {
		case it.mnem != "":
			words, err := a.encodeInstr(it)
			if err != nil {
				return nil, err
			}
			var b []byte
			for _, w := range words {
				b = appendInt(b, int64(w), 4)
			}
			appendTo(it.sec, it.addr, b, textBase, &text)
		case it.data != nil:
			b := append([]byte(nil), it.data...)
			for _, ref := range it.dataSym {
				sym, ok := a.symbols[ref.sym]
				if !ok || !sym.defined {
					return nil, errf(it.line, "undefined symbol %q", ref.sym)
				}
				v := int64(sym.addr) + ref.addend
				copy(b[ref.off:], appendInt(nil, v, ref.width))
			}
			if it.sec == secText {
				appendTo(it.sec, it.addr, b, textBase, &text)
			} else {
				appendTo(it.sec, it.addr, b, dataBase, &data)
			}
		case it.space > 0:
			b := make([]byte, it.space)
			if it.sec == secText {
				appendTo(it.sec, it.addr, b, textBase, &text)
			} else {
				appendTo(it.sec, it.addr, b, dataBase, &data)
			}
		}
	}

	exe := &isa.Executable{Symbols: map[string]uint64{}}
	for name, sv := range a.symbols {
		if sv.defined && !sv.isEqu {
			exe.Symbols[name] = sv.addr
		}
	}
	if start, ok := exe.Symbols["_start"]; ok {
		exe.Entry = start
	} else {
		exe.Entry = textBase
	}
	if len(text) > 0 {
		exe.Segments = append(exe.Segments, isa.Segment{Addr: textBase, Data: text})
	}
	if len(data) > 0 {
		exe.Segments = append(exe.Segments, isa.Segment{Addr: dataBase, Data: data})
	}
	return exe, nil
}
