package asm

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"firemarshal/internal/isa"
)

func assemble(t *testing.T, src string) *isa.Executable {
	t.Helper()
	exe, err := Assemble(src, Options{})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return exe
}

// textWords decodes the text segment into instructions.
func textWords(t *testing.T, exe *isa.Executable) []isa.Instr {
	t.Helper()
	if len(exe.Segments) == 0 {
		t.Fatal("no segments")
	}
	seg := exe.Segments[0]
	if len(seg.Data)%4 != 0 {
		t.Fatalf("text length %d not word aligned", len(seg.Data))
	}
	var out []isa.Instr
	for i := 0; i < len(seg.Data); i += 4 {
		raw := binary.LittleEndian.Uint32(seg.Data[i:])
		in, err := isa.Decode(raw)
		if err != nil {
			t.Fatalf("decode word %d (%#08x): %v", i/4, raw, err)
		}
		out = append(out, in)
	}
	return out
}

func TestBasicProgram(t *testing.T) {
	exe := assemble(t, `
_start:
    addi a0, zero, 5
    addi a1, zero, 7
    add a0, a0, a1
    ecall
`)
	ins := textWords(t, exe)
	if len(ins) != 4 {
		t.Fatalf("got %d instructions", len(ins))
	}
	if ins[0].Op != isa.OpADDI || ins[0].Rd != 10 || ins[0].Imm != 5 {
		t.Errorf("ins[0] = %+v", ins[0])
	}
	if ins[2].Op != isa.OpADD || ins[2].Rs1 != 10 || ins[2].Rs2 != 11 {
		t.Errorf("ins[2] = %+v", ins[2])
	}
	if ins[3].Op != isa.OpECALL {
		t.Errorf("ins[3] = %+v", ins[3])
	}
	if exe.Entry != DefaultTextBase {
		t.Errorf("entry = %#x", exe.Entry)
	}
}

func TestBranchBackward(t *testing.T) {
	exe := assemble(t, `
_start:
    addi a0, zero, 10
loop:
    addi a0, a0, -1
    bnez a0, loop
    ecall
`)
	ins := textWords(t, exe)
	// bnez is instruction 2 at pc 0x10008; loop is 0x10004 -> offset -4.
	if ins[2].Op != isa.OpBNE || ins[2].Imm != -4 {
		t.Errorf("bnez = %+v", ins[2])
	}
}

func TestForwardReference(t *testing.T) {
	exe := assemble(t, `
_start:
    beqz a0, done
    addi a0, zero, 1
done:
    ecall
`)
	ins := textWords(t, exe)
	if ins[0].Op != isa.OpBEQ || ins[0].Imm != 8 {
		t.Errorf("beqz = %+v", ins[0])
	}
}

func TestDataSectionAndLa(t *testing.T) {
	exe := assemble(t, `
_start:
    la a0, msg
    ld a1, 0(a0)
    ecall
.data
msg:
    .dword 0x1122334455667788
`)
	if len(exe.Segments) != 2 {
		t.Fatalf("want 2 segments, got %d", len(exe.Segments))
	}
	data := exe.Segments[1]
	if got := binary.LittleEndian.Uint64(data.Data); got != 0x1122334455667788 {
		t.Errorf("data = %#x", got)
	}
	// la must compute msg's address: auipc+addi.
	ins := textWords(t, exe)
	if ins[0].Op != isa.OpAUIPC || ins[1].Op != isa.OpADDI {
		t.Errorf("la expansion = %v %v", ins[0].Op, ins[1].Op)
	}
	msgAddr := exe.Symbols["msg"]
	pc := exe.Segments[0].Addr
	got := uint64(int64(pc)+ins[0].Imm) + uint64(ins[1].Imm)
	if got != msgAddr {
		t.Errorf("la resolves to %#x, want %#x", got, msgAddr)
	}
}

func TestStringData(t *testing.T) {
	exe := assemble(t, `
_start:
    ecall
.data
greeting:
    .asciz "hello\n"
`)
	data := exe.Segments[1].Data
	want := "hello\n\x00"
	if string(data[:len(want)]) != want {
		t.Errorf("data = %q", data)
	}
}

func TestAlignAndSpace(t *testing.T) {
	exe := assemble(t, `
_start:
    ecall
.data
a:  .byte 1
    .align 3
b:  .dword 2
c:  .space 16
d:  .byte 3
`)
	syms := exe.Symbols
	if syms["b"]%8 != 0 {
		t.Errorf("b not 8-aligned: %#x", syms["b"])
	}
	if syms["d"]-syms["c"] != 16 {
		t.Errorf("space wrong: c=%#x d=%#x", syms["c"], syms["d"])
	}
}

func TestEqu(t *testing.T) {
	exe := assemble(t, `
.equ UART, 0x54000000
.equ COUNT, 10
_start:
    li a0, UART
    addi a1, zero, COUNT
    ecall
`)
	ins := textWords(t, exe)
	if evalLi(t, ins[:len(ins)-2]) != 0x54000000 {
		t.Error("equ in li wrong")
	}
	if ins[len(ins)-2].Imm != 10 {
		t.Errorf("equ in addi = %d", ins[len(ins)-2].Imm)
	}
}

// evalLi interprets an ADDI/LUI/SLLI sequence as executed on rd.
func evalLi(t *testing.T, seq []isa.Instr) int64 {
	t.Helper()
	var v int64
	for _, in := range seq {
		switch in.Op {
		case isa.OpADDI:
			if in.Rs1 == 0 {
				v = in.Imm
			} else {
				v += in.Imm
			}
		case isa.OpLUI:
			v = in.Imm
		case isa.OpSLLI:
			v <<= uint(in.Imm)
		default:
			t.Fatalf("unexpected op %v in li sequence", in.Op)
		}
	}
	return v
}

func TestLiValues(t *testing.T) {
	cases := []int64{
		0, 1, -1, 2047, -2048, 2048, -2049,
		0x7fff, 0xffff, 0x12345678, -0x12345678,
		0x7fffffff, -0x80000000, 0x80000000, 0xffffffff,
		0x123456789abcdef0, -0x123456789abcdef0,
		0x7fffffffffffffff, -0x8000000000000000,
	}
	for _, v := range cases {
		seq := liExpansion(10, v)
		if got := evalLi(t, seq); got != v {
			t.Errorf("li %#x evaluates to %#x (%d instrs)", v, got, len(seq))
		}
		for _, in := range seq {
			if _, err := isa.Encode(in); err != nil {
				t.Errorf("li %#x: unencodable %+v: %v", v, in, err)
			}
		}
	}
}

// Property: liExpansion materializes any 64-bit value exactly.
func TestQuickLi(t *testing.T) {
	f := func(v int64) bool {
		seq := liExpansion(5, v)
		if len(seq) == 0 || len(seq) > 8 {
			return false
		}
		var x int64
		for _, in := range seq {
			if _, err := isa.Encode(in); err != nil {
				return false
			}
			switch in.Op {
			case isa.OpADDI:
				if in.Rs1 == 0 {
					x = in.Imm
				} else {
					x += in.Imm
				}
			case isa.OpLUI:
				x = in.Imm
			case isa.OpSLLI:
				x <<= uint(in.Imm)
			default:
				return false
			}
		}
		return x == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestPseudoInstructions(t *testing.T) {
	exe := assemble(t, `
_start:
    nop
    mv a0, a1
    not a2, a3
    neg a4, a5
    seqz a0, a1
    snez a0, a1
    j next
next:
    jr ra
    ret
    rdcycle t0
    ecall
`)
	ins := textWords(t, exe)
	checks := []struct {
		i  int
		op isa.Op
	}{
		{0, isa.OpADDI}, {1, isa.OpADDI}, {2, isa.OpXORI}, {3, isa.OpSUB},
		{4, isa.OpSLTIU}, {5, isa.OpSLTU}, {6, isa.OpJAL}, {7, isa.OpJALR},
		{8, isa.OpJALR}, {9, isa.OpCSRRS},
	}
	for _, c := range checks {
		if ins[c.i].Op != c.op {
			t.Errorf("ins[%d] = %v, want %v", c.i, ins[c.i].Op, c.op)
		}
	}
	if ins[9].Imm != isa.CSRCycle {
		t.Errorf("rdcycle CSR = %#x", ins[9].Imm)
	}
}

func TestCall(t *testing.T) {
	exe := assemble(t, `
_start:
    call fn
    ecall
fn:
    ret
`)
	ins := textWords(t, exe)
	if ins[0].Op != isa.OpAUIPC || ins[0].Rd != 1 {
		t.Errorf("call[0] = %+v", ins[0])
	}
	if ins[1].Op != isa.OpJALR || ins[1].Rd != 1 || ins[1].Rs1 != 1 {
		t.Errorf("call[1] = %+v", ins[1])
	}
	fn := exe.Symbols["fn"]
	pc := exe.Segments[0].Addr
	if uint64(int64(pc)+ins[0].Imm+ins[1].Imm) != fn {
		t.Error("call target mismatch")
	}
}

func TestMemOperands(t *testing.T) {
	exe := assemble(t, `
_start:
    ld a0, 8(sp)
    sd a1, -16(s0)
    lw a2, (t0)
    ecall
`)
	ins := textWords(t, exe)
	if ins[0].Imm != 8 || ins[0].Rs1 != 2 {
		t.Errorf("ld = %+v", ins[0])
	}
	if ins[1].Imm != -16 || ins[1].Rs1 != 8 || ins[1].Rs2 != 11 {
		t.Errorf("sd = %+v", ins[1])
	}
	if ins[2].Imm != 0 || ins[2].Rs1 != 5 {
		t.Errorf("lw = %+v", ins[2])
	}
}

func TestDataSymbolReference(t *testing.T) {
	exe := assemble(t, `
_start:
    ecall
.data
table:
    .dword target
    .dword target+8
target:
    .dword 42
`)
	data := exe.Segments[1].Data
	targetAddr := exe.Symbols["target"]
	if got := binary.LittleEndian.Uint64(data[0:]); got != targetAddr {
		t.Errorf("table[0] = %#x, want %#x", got, targetAddr)
	}
	if got := binary.LittleEndian.Uint64(data[8:]); got != targetAddr+8 {
		t.Errorf("table[1] = %#x, want %#x", got, targetAddr+8)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"unknown instruction":  "_start:\n    frobnicate a0\n",
		"bad register":         "_start:\n    addi q0, zero, 1\n",
		"undefined symbol":     "_start:\n    j nowhere\n",
		"redefined label":      "a:\na:\n    ecall\n",
		"imm out of range":     "_start:\n    addi a0, zero, 5000\n",
		"operand count":        "_start:\n    add a0, a1\n",
		"instruction in .data": ".data\n    addi a0, zero, 1\n",
		"bad directive":        ".bogus 12\n",
		"bad string":           ".data\n.ascii notquoted\n",
		"empty operand":        "_start:\n    add a0,, a1\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestErrorHasLineNumber(t *testing.T) {
	_, err := Assemble("_start:\n    nop\n    bogus a0\n", Options{})
	if err == nil {
		t.Fatal("expected error")
	}
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("line = %d, want 3", ae.Line)
	}
}

func TestExecutableRoundTrip(t *testing.T) {
	exe := assemble(t, `
_start:
    li a0, 0x123456789
    ecall
.data
x: .dword 7
`)
	enc := isa.EncodeExecutable(exe)
	back, err := isa.DecodeExecutable(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Entry != exe.Entry || len(back.Segments) != len(exe.Segments) {
		t.Error("round trip lost structure")
	}
	for i := range exe.Segments {
		if string(back.Segments[i].Data) != string(exe.Segments[i].Data) {
			t.Errorf("segment %d data mismatch", i)
		}
	}
	if back.Symbols["x"] != exe.Symbols["x"] {
		t.Error("symbols lost")
	}
	// Corruption must be detected.
	enc[len(enc)/2] ^= 1
	if _, err := isa.DecodeExecutable(enc); err == nil {
		t.Error("expected CRC error")
	}
}

func TestDeterministicOutput(t *testing.T) {
	src := `
_start:
    li t0, 0xdeadbeef
    la t1, buf
loop:
    addi t0, t0, -1
    bnez t0, loop
    ecall
.data
buf: .space 64
`
	a := assemble(t, src)
	b := assemble(t, src)
	if string(isa.EncodeExecutable(a)) != string(isa.EncodeExecutable(b)) {
		t.Error("assembly not deterministic")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	exe := assemble(t, `
# full line comment
_start:           // C++ style
    nop           # trailing
    ecall
`)
	if len(textWords(t, exe)) != 2 {
		t.Error("comments mishandled")
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	exe := assemble(t, `
_start:
alias:
    ecall
`)
	if exe.Symbols["_start"] != exe.Symbols["alias"] {
		t.Error("stacked labels differ")
	}
}

func TestRandomProgramsAssembleDeterministically(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mnems := []string{"add", "sub", "and", "or", "xor", "mul", "sltu"}
	for trial := 0; trial < 20; trial++ {
		src := "_start:\n"
		for i := 0; i < 50; i++ {
			src += "    " + mnems[rng.Intn(len(mnems))] + " a0, a1, a2\n"
		}
		src += "    ecall\n"
		exe, err := Assemble(src, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(exe.Segments[0].Data) != 51*4 {
			t.Fatalf("trial %d: wrong size", trial)
		}
	}
}

// Exercise the per-mnemonic operand validation systematically.
func TestOperandErrors(t *testing.T) {
	cases := []string{
		"add a0, a1",           // R-type arity
		"add q9, a1, a2",       // bad rd
		"add a0, q9, a2",       // bad rs1
		"add a0, a1, q9",       // bad rs2
		"addi a0, a1",          // I-type arity
		"addi a0, q9, 1",       // bad reg
		"addi a0, a1, banana",  // bad imm
		"lui a0",               // arity
		"lui q9, 1",            // bad reg
		"ld a0, a1, a2",        // load arity
		"ld a0, nope",          // bad mem operand
		"ld a0, 8(q9)",         // bad base reg
		"sd a0",                // store arity
		"beq a0, a1",           // branch arity
		"beq q9, a1, x",        // bad reg
		"bgt a0, a1",           // swapped branch arity
		"beqz a0",              // z-branch arity
		"jal a0, a1, a2",       // jal arity
		"jalr",                 // jalr arity
		"j",                    // j arity
		"jr",                   // jr arity
		"call",                 // call arity
		"call nowhere",         // call undefined
		"mv a0",                // mv arity
		"not a0",               // not arity
		"neg a0",               // neg arity
		"seqz a0",              // arity
		"snez a0",              // arity
		"li a0",                // li arity
		"li q9, 4",             // li bad reg
		"li a0, symbolic",      // li non-const
		"la a0",                // la arity
		"la a0, undefined_sym", // la undefined
		"rdcycle",              // arity
		"csrr a0",              // arity
		"csrw 0xc00",           // arity
		"slliw a0, a0, 32",     // W-shift range
	}
	for _, src := range cases {
		if _, err := Assemble("_start:\n    "+src+"\n", Options{}); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestWMnemonicsAssemble(t *testing.T) {
	src := "_start:\n"
	for _, m := range []string{"addw", "subw", "sllw", "srlw", "sraw", "mulw", "divw", "divuw", "remw", "remuw"} {
		src += "    " + m + " a0, a1, a2\n"
	}
	for _, m := range []string{"addiw", "slliw", "srliw", "sraiw"} {
		src += "    " + m + " a0, a1, 3\n"
	}
	src += "    sext.w a0, a1\n    negw a0, a1\n    ecall\n"
	exe, err := Assemble(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ins := textWords(t, exe)
	if len(ins) != 17 {
		t.Errorf("got %d instructions", len(ins))
	}
	if ins[14].Op != isa.OpADDIW { // sext.w
		t.Errorf("sext.w = %v", ins[14].Op)
	}
	if ins[15].Op != isa.OpSUBW || ins[15].Rs1 != 0 { // negw
		t.Errorf("negw = %+v", ins[15])
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []string{
		".align 99\n",
		".align notanum\n",
		".space -1\n",
		".globl 9bad\n",
		".equ name\n",
		".equ name, bad!\n",
		".equ dup, 1\n.equ dup, 2\n",
		".data\n.byte bad-\n",
		".data\n.dword undefined_sym\n_start:\n    ecall\n",
	}
	for _, src := range cases {
		if _, err := Assemble(src, Options{}); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestBranchOutOfRange(t *testing.T) {
	// A branch to a label > ±4KiB away must fail encoding.
	src := "_start:\n    beq a0, a1, far\n"
	for i := 0; i < 2000; i++ {
		src += "    nop\n"
	}
	src += "far:\n    ecall\n"
	if _, err := Assemble(src, Options{}); err == nil {
		t.Error("expected branch-range error")
	}
}

func TestJalrForms(t *testing.T) {
	exe := assemble(t, `
_start:
    jalr t0
    jalr 8(t0)
    jalr ra, t0
    jalr ra, 8(t0)
    ecall
`)
	ins := textWords(t, exe)
	if ins[0].Rd != 1 || ins[0].Rs1 != 5 || ins[0].Imm != 0 {
		t.Errorf("jalr t0 = %+v", ins[0])
	}
	if ins[1].Imm != 8 {
		t.Errorf("jalr 8(t0) = %+v", ins[1])
	}
	if ins[2].Rd != 1 || ins[2].Rs1 != 5 {
		t.Errorf("jalr ra, t0 = %+v", ins[2])
	}
	if ins[3].Imm != 8 || ins[3].Rd != 1 {
		t.Errorf("jalr ra, 8(t0) = %+v", ins[3])
	}
}
