package asm

import (
	"testing"

	"firemarshal/internal/isa"
)

// FuzzAssemble guards the assembler against panics; successful assemblies
// must produce decodable executables.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"_start:\n    li a0, 42\n    ecall\n",
		"_start:\nloop:\n    bnez a0, loop\n",
		".equ X, 5\n_start:\n    addi a0, zero, X\n.data\nbuf: .space 8\n",
		"_start:\n    la a0, s\n.data\ns: .asciz \"hi\"\n",
		"_start:\n    jalr 8(t0)\n",
		"# comment\n_start: ecall\n",
		"_start:\n    .word 1, 2\n",
		"garbage input !!!",
		"_start:\n    add a0,, a1\n",
		// Crasher-shaped: out-of-range immediates and an absurd .space size
		// probe integer-overflow paths in operand parsing and layout.
		"_start:\n    li a0, 0x8000000000000000\n    jalr 9223372036854775807(t0)\n.data\nbuf: .space 99999999999999999999\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		exe, err := Assemble(src, Options{})
		if err != nil {
			return
		}
		enc := isa.EncodeExecutable(exe)
		if _, err := isa.DecodeExecutable(enc); err != nil {
			t.Fatalf("assembled executable does not round-trip: %v", err)
		}
	})
}
