package fsrun

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"firemarshal/internal/core"
	"firemarshal/internal/install"
	"firemarshal/internal/sim/rtlsim"
)

// buildInstalled creates a workload, installs it, and returns the config.
func buildInstalled(t *testing.T, workloadJSON string, extraFiles map[string]string) (*install.Config, string) {
	t.Helper()
	wlDir := t.TempDir()
	workDir := t.TempDir()
	for name, content := range extraFiles {
		p := filepath.Join(wlDir, name)
		os.MkdirAll(filepath.Dir(p), 0o755)
		mode := os.FileMode(0o644)
		if strings.HasSuffix(name, ".sh") {
			mode = 0o755
		}
		if err := os.WriteFile(p, []byte(content), mode); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(wlDir, "w.json"), []byte(workloadJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := core.New(workDir, wlDir)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := m.Install("w", core.InstallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := install.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	return cfg, workDir
}

func TestRunSingleJob(t *testing.T) {
	cfg, _ := buildInstalled(t, `{
  "name": "w", "base": "br-base",
  "command": "echo rtl-run-output > /output/res.txt",
  "outputs": ["/output/res.txt"]
}`, nil)
	res, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/out"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 1 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	jr := res.Jobs[0]
	if jr.ExitCode != 0 || jr.Cycles == 0 {
		t.Errorf("job result = %+v", jr)
	}
	uart, err := os.ReadFile(filepath.Join(jr.OutputDir, "uartlog"))
	if err != nil || !strings.Contains(string(uart), "OpenSBI") {
		t.Errorf("uartlog: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(jr.OutputDir, "res.txt"))
	if err != nil || !strings.Contains(string(data), "rtl-run-output") {
		t.Errorf("output file: %q %v", data, err)
	}
}

func TestRunDeterministicCycles(t *testing.T) {
	cfg, _ := buildInstalled(t, `{
  "name": "w", "base": "br-base", "command": "echo deterministic"
}`, nil)
	run := func() uint64 {
		res, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/o"})
		if err != nil {
			t.Fatal(err)
		}
		return res.Jobs[0].Cycles
	}
	if run() != run() {
		t.Error("RTL cycles not deterministic across runs")
	}
}

func TestMultiJobParallelMatchesSerial(t *testing.T) {
	cfg, _ := buildInstalled(t, `{
  "name": "w", "base": "br-base",
  "jobs": [
    {"name": "a", "command": "echo job-a > /output/r.txt", "outputs": ["/output/r.txt"]},
    {"name": "b", "command": "echo job-b > /output/r.txt", "outputs": ["/output/r.txt"]},
    {"name": "c", "command": "echo job-c > /output/r.txt", "outputs": ["/output/r.txt"]}
  ]}`, nil)
	serial, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/s"})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/p", Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Jobs) != 3 || len(parallel.Jobs) != 3 {
		t.Fatalf("job counts: %d %d", len(serial.Jobs), len(parallel.Jobs))
	}
	// Determinism across scheduling: per-job cycles identical.
	sc := map[string]uint64{}
	for _, j := range serial.Jobs {
		sc[j.Name] = j.Cycles
	}
	for _, j := range parallel.Jobs {
		if sc[j.Name] != j.Cycles {
			t.Errorf("job %s cycles differ: serial=%d parallel=%d", j.Name, sc[j.Name], j.Cycles)
		}
	}
}

func TestVerifyAgainstRefs(t *testing.T) {
	cfg, _ := buildInstalled(t, `{
  "name": "w", "base": "br-base",
  "command": "echo verified-marker",
  "testing": {"refDir": "refs"}
}`, map[string]string{"refs/uartlog": "verified-marker\n"})
	outDir := t.TempDir() + "/out"
	if _, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: outDir}); err != nil {
		t.Fatal(err)
	}
	failures, err := Verify(cfg, outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("verify failures: %v", failures)
	}
}

func TestPostRunHookRuns(t *testing.T) {
	cfg, _ := buildInstalled(t, `{
  "name": "w", "base": "br-base",
  "command": "echo x",
  "post-run-hook": "hook.sh"
}`, map[string]string{"hook.sh": "#!/bin/sh\ntouch \"$1/hook-ran\"\n"})
	outDir := t.TempDir() + "/out"
	if _, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: outDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(outDir, "hook-ran")); err != nil {
		t.Error("post-run hook did not run")
	}
}

func TestMissingOutputDir(t *testing.T) {
	cfg := &install.Config{Workload: "w", Jobs: []install.JobConfig{{Name: "w"}}}
	if _, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig()}); err == nil {
		t.Error("expected error for missing output dir")
	}
}

func TestRunBadArtifactPaths(t *testing.T) {
	cfg := &install.Config{
		Workload: "w",
		Jobs:     []install.JobConfig{{Name: "w", Bin: "/nonexistent/bin"}},
	}
	if _, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/o"}); err == nil {
		t.Error("expected error for missing bin")
	}
}

func TestRunBadDeviceProfile(t *testing.T) {
	cfg, _ := buildInstalled(t, `{"name":"w","base":"br-base","command":"echo x"}`, nil)
	cfg.Jobs[0].Devices = "not-a-device"
	if _, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/o"}); err == nil {
		t.Error("expected error for unknown device profile")
	}
}

func TestVerifyWithoutRefs(t *testing.T) {
	cfg := &install.Config{Workload: "w", Jobs: []install.JobConfig{{Name: "w"}}}
	if _, err := Verify(cfg, t.TempDir()); err == nil {
		t.Error("expected error when workload has no refs")
	}
}

func TestVerifyPerJobSubdirs(t *testing.T) {
	refDir := t.TempDir()
	os.MkdirAll(filepath.Join(refDir, "a"), 0o755)
	os.WriteFile(filepath.Join(refDir, "a", "uartlog"), []byte("job-a-marker\n"), 0o644)

	cfg, _ := buildInstalled(t, `{
  "name": "w", "base": "br-base",
  "jobs": [
    {"name": "a", "command": "echo job-a-marker"},
    {"name": "b", "command": "echo job-b-marker"}
  ],
  "testing": {"refDir": "refs"}
}`, map[string]string{"refs/uartlog": "job-\n", "refs/a/uartlog": "job-a-marker\n"})
	outDir := t.TempDir() + "/o"
	if _, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: outDir}); err != nil {
		t.Fatal(err)
	}
	failures, err := Verify(cfg, outDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Errorf("failures: %v", failures)
	}
}

func TestParallelErrorPropagates(t *testing.T) {
	cfg, _ := buildInstalled(t, `{
  "name": "w", "base": "br-base",
  "jobs": [
    {"name": "a", "command": "echo ok"},
    {"name": "b", "command": "echo ok"}
  ]}`, nil)
	cfg.Jobs[1].Bin = "/nonexistent"
	if _, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/o", Parallel: true}); err == nil {
		t.Error("expected parallel job error to propagate")
	}
}

// TestTracePath pins the trace-file naming: fsrun's default bare
// "manifest.jsonl" and core-style "<name>.manifest.jsonl" both swap the
// suffix; anything else gets ".trace.jsonl" appended.
func TestTracePath(t *testing.T) {
	cases := map[string]string{
		"out/manifest.jsonl":        "out/trace.jsonl",
		"runs/suite.manifest.jsonl": "runs/suite.trace.jsonl",
		"manifest.jsonl":            "trace.jsonl",
		"out/records.jsonl":         "out/records.jsonl.trace.jsonl",
		"out/mymanifest.jsonl":      "out/mymanifest.jsonl.trace.jsonl",
	}
	for in, want := range cases {
		if got := TracePath(in); got != want {
			t.Errorf("TracePath(%q) = %q, want %q", in, got, want)
		}
	}
}
