// Package fsrun executes installed workload configurations on the
// cycle-exact simulator — the role of FireSim's manager. It realizes the
// run phase of §III-E: after `marshal install`, "users interact with the
// simulator normally to launch the workload". Multi-job workloads become
// nodes of a simulated cluster sharing a network fabric; independent jobs
// can run in parallel on the host, the optimization that "reduced the
// runtime for our experiment from about two weeks to roughly two days"
// (§IV-B).
package fsrun

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"firemarshal/internal/boards"
	"firemarshal/internal/cas"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/firmware"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/guestos"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/install"
	"firemarshal/internal/launcher"
	"firemarshal/internal/netsim"
	"firemarshal/internal/obs"
	"firemarshal/internal/runtest"
	"firemarshal/internal/sim/rtlsim"
)

// Options configures a simulation run.
type Options struct {
	// RTL is the hardware configuration (predictor, caches, ...).
	RTL rtlsim.Config
	// Jobs caps how many independent OS jobs simulate concurrently on the
	// host (`firesim -j N`). <=0 means sequential unless Parallel is set.
	Jobs int
	// Parallel is the legacy toggle: run OS jobs on GOMAXPROCS workers.
	// Ignored when Jobs is set explicitly.
	Parallel bool
	// Timeout kills any single job attempt that exceeds it (0 = none).
	// The kill is cooperative: the RTL platform polls its Stop channel
	// between batches, so a hung node dies without stalling siblings.
	Timeout time.Duration
	// Retries re-attempts transiently-failing jobs (total = Retries+1).
	Retries int
	// Context, when non-nil, cancels in-flight simulations.
	Context context.Context
	// Drain, when closed, stops starting new jobs while in-flight ones
	// finish.
	Drain <-chan struct{}
	// ManifestPath, when set, receives the JSONL run manifest for the OS
	// jobs (one record per job, declaration order).
	ManifestPath string
	// Net overrides the network fabric timing (zero value = defaults).
	Net netsim.Config
	// OutputDir receives per-job output directories.
	OutputDir string
	// Log receives progress messages.
	Log io.Writer

	// Workers, when non-empty, simulates OS nodes on a fleet of
	// `marshal worker serve` daemons (`firesim -workers host1:p,host2:p`)
	// instead of local RTL slots. Requires RemoteCache; incompatible with
	// networked topologies (the fabric couples nodes through host memory).
	Workers []string
	// RemoteCache is the shared cache's base URL (required with Workers).
	RemoteCache string
	// WorkerLeaseTTL bounds how long a worker may go silent before the
	// coordinator declares it dead and re-leases its nodes; WorkerPoll is
	// the coordinator's event-poll cadence. Zero uses protocol defaults.
	WorkerLeaseTTL time.Duration
	WorkerPoll     time.Duration

	// Resume continues an interrupted run (`firesim -resume`): nodes the
	// run journal records as ok carry their results over, nodes with a live
	// checkpoint restore mid-flight. Requires ManifestPath for the journal;
	// without one only the checkpoint half applies.
	Resume bool
	// CkptEvery, when nonzero, snapshots each node's machine state every N
	// retired instructions into a store under <OutputDir>/.ckpt, so a
	// killed run can resume cycle-exactly. Disabled when the configuration
	// has a network fabric (cross-node state is not captured).
	CkptEvery uint64

	// Obs is the metrics registry the run reports into (launcher_*,
	// checkpoint_*, sim_rtlsim_*); nil resolves to obs.Default.
	Obs *obs.Registry
	// MetricsPath, when set, receives a JSON metrics snapshot after the
	// run (`firesim -metrics FILE`).
	MetricsPath string
}

// ckptEnv is the per-run checkpoint environment: the blob store and the
// directory holding per-node pointer files. Pointers live outside the
// per-job output directories, which every attempt wipes.
type ckptEnv struct {
	store *cas.Store
	dir   string
}

// JobResult reports one simulated node.
type JobResult struct {
	Name      string
	ExitCode  int64
	Cycles    uint64
	Stats     rtlsim.Stats
	OutputDir string
	// HostTime is the wall-clock simulation time on the host.
	HostTime time.Duration
}

// Result reports a whole run.
type Result struct {
	Jobs []JobResult
	// Summary is the launcher's per-job scheduling record for the OS jobs
	// (nil when the config has none).
	Summary *launcher.Summary
	// HostTime is the end-to-end wall-clock time.
	HostTime time.Duration
}

// Run simulates every job of an installed configuration.
func Run(cfg *install.Config, opts Options) (*Result, error) {
	if opts.OutputDir == "" {
		return nil, fmt.Errorf("fsrun: no output directory")
	}
	if opts.Log == nil {
		opts.Log = io.Discard
	}
	start := time.Now()

	// The run traces under one root span; the trace lands next to the
	// manifest (when one is configured) even when the run aborts.
	tracer := obs.NewTracer()
	runSpan := tracer.Start("run")
	defer func() {
		runSpan.End()
		writeObsFiles(tracer, opts)
	}()

	var fabric *netsim.Fabric
	if cfg.Topology == "simple" {
		netCfg := opts.Net
		if netCfg.LatencyCycles == 0 && netCfg.BytesPerCycle == 0 {
			netCfg = netsim.DefaultConfig()
		}
		fabric = netsim.New(netCfg)
	}
	if len(opts.Workers) > 0 && fabric != nil {
		return nil, fmt.Errorf("fsrun: networked topologies cannot run on a worker fleet: the fabric couples nodes through host-local state")
	}

	// Bare-metal jobs run first: they set up fabric state (registered
	// memory) that OS nodes depend on.
	var bare, osJobs []install.JobConfig
	for _, job := range cfg.Jobs {
		if job.Bare {
			bare = append(bare, job)
		} else {
			osJobs = append(osJobs, job)
		}
	}

	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Jobs
	if workers <= 0 {
		workers = 1
		if opts.Parallel {
			workers = runtime.GOMAXPROCS(0)
		}
	}

	// Checkpointing captures one node's machine state; a network fabric
	// couples nodes through state outside any machine, so it disables it.
	var ckpt *ckptEnv
	if (opts.CkptEvery > 0 || opts.Resume) && fabric == nil {
		store, err := cas.Open(filepath.Join(opts.OutputDir, ".ckpt", "cas"))
		if err != nil {
			return nil, err
		}
		ckpt = &ckptEnv{store: store, dir: filepath.Join(opts.OutputDir, ".ckpt")}
	}

	// Resume: reconstruct the interrupted run's per-node outcomes from its
	// journal (or, if it already compacted, its manifest).
	journalPath := ""
	var prior map[string]launcher.PriorJob
	var jnl *launcher.Journal
	if opts.ManifestPath != "" {
		journalPath = opts.ManifestPath + ".journal"
		if opts.Resume {
			var torn *launcher.Torn
			var err error
			prior, torn, err = launcher.ReadPrior(journalPath, opts.ManifestPath)
			if err != nil {
				return nil, err
			}
			if torn != nil {
				fmt.Fprintf(opts.Log, "firesim: resume salvaged journal around %s\n", torn)
			}
		}
		if err := os.MkdirAll(filepath.Dir(opts.ManifestPath), 0o755); err != nil {
			return nil, err
		}
		var err error
		jnl, err = launcher.OpenJournal(journalPath)
		if err != nil {
			return nil, err
		}
		defer jnl.Close()
	}

	res := &Result{}
	for _, job := range bare {
		span := runSpan.Child("job:" + job.Name)
		jr, err := runJob(obs.ContextWithSpan(ctx, span), job, fabric, nil, opts)
		span.End()
		if err != nil {
			return nil, fmt.Errorf("fsrun: job %s: %w", job.Name, err)
		}
		res.Jobs = append(res.Jobs, *jr)
	}

	// OS jobs fan out across the launcher's worker pool: isolated
	// platforms, per-job timeout/retry, deterministic result order.
	order := make([]string, len(osJobs))
	carried := map[string]launcher.Result{}
	results := make([]*JobResult, len(osJobs))
	var jobs []launcher.Job
	for i, job := range osJobs {
		i, job := i, job
		order[i] = job.Name
		if p, ok := prior[job.Name]; ok && p.Done && p.Record.Status == launcher.StatusOK {
			carried[job.Name] = launcher.CarriedResult(p.Record)
			if err := jnl.Done(p.Record); err != nil {
				return nil, err
			}
			results[i] = &JobResult{
				Name:      job.Name,
				ExitCode:  p.Record.Exit,
				Cycles:    p.Record.Cycles,
				OutputDir: filepath.Join(opts.OutputDir, job.Name),
			}
			fmt.Fprintf(opts.Log, "firesim: resume carries node %s (already ok)\n", job.Name)
			continue
		}
		priorAttempts := 0
		if p, ok := prior[job.Name]; ok {
			priorAttempts = p.Attempts
		}
		jobs = append(jobs, launcher.Job{
			Name:    job.Name,
			Prior:   priorAttempts,
			Resumed: opts.Resume && priorAttempts > 0,
			Run: func(jctx context.Context, attempt int) (launcher.Metrics, error) {
				if attempt > 1 {
					fmt.Fprintf(opts.Log, "firesim: re-simulating node %s (attempt %d)\n", job.Name, attempt)
				}
				jr, err := runJob(jctx, job, fabric, ckpt, opts)
				if err != nil {
					return launcher.Metrics{}, err
				}
				results[i] = jr
				return launcher.Metrics{ExitCode: jr.ExitCode, Cycles: jr.Cycles, Instrs: jr.Stats.Instrs}, nil
			},
		})
	}
	var summary *launcher.Summary
	if len(opts.Workers) > 0 {
		s, err := runFleet(ctx, osJobs, carried, prior, jnl, ckpt, opts, results)
		if err != nil {
			return nil, err
		}
		summary = s
	} else {
		pool := launcher.New(launcher.Options{
			Workers: workers,
			Timeout: opts.Timeout,
			Retries: opts.Retries,
			Drain:   opts.Drain,
			Log:     opts.Log,
			Journal: jnl,
			Obs:     opts.Obs,
			Span:    runSpan,
		})
		summary = pool.Run(ctx, jobs)
	}
	merged := launcher.MergeResumed(order, carried, summary)
	res.Summary = merged
	if opts.ManifestPath != "" {
		jnl.Close()
		if err := launcher.Compact(journalPath, opts.ManifestPath, merged); err != nil {
			return res, err
		}
	}
	if ckpt != nil {
		// Terminally-finished nodes' checkpoints are dead state; cancelled
		// and skipped nodes keep theirs for a later -resume.
		for _, r := range merged.Jobs {
			switch r.Status {
			case launcher.StatusOK, launcher.StatusFailed, launcher.StatusTimeout:
				if err := checkpoint.Clear(ckpt.dir, r.Name); err != nil {
					fmt.Fprintf(opts.Log, "firesim: clearing checkpoint for %s: %v\n", r.Name, err)
				}
			}
		}
	}
	for _, jr := range results {
		if jr != nil {
			res.Jobs = append(res.Jobs, *jr)
		}
	}
	res.HostTime = time.Since(start)
	if err := merged.Err(); err != nil {
		return res, fmt.Errorf("fsrun: %w", err)
	}

	if cfg.PostRunHook != "" {
		abs, err := filepath.Abs(opts.OutputDir)
		if err != nil {
			return nil, err
		}
		if _, err := hostutil.RunHostScript(cfg.PostRunHook, cfg.PostRunHookDir, abs); err != nil {
			return nil, fmt.Errorf("fsrun: post-run-hook: %w", err)
		}
	}
	res.HostTime = time.Since(start)
	return res, nil
}

// TracePath is where a run with the given manifest path writes its span
// trace: the manifest's "manifest.jsonl" suffix — bare (fsrun's default
// name) or as a ".manifest.jsonl" extension — swapped for the trace
// equivalent, or ".trace.jsonl" appended when the manifest is named
// differently.
func TracePath(manifestPath string) string {
	const suffix = "manifest.jsonl"
	if base := filepath.Base(manifestPath); base == suffix || strings.HasSuffix(base, "."+suffix) {
		return manifestPath[:len(manifestPath)-len(suffix)] + "trace.jsonl"
	}
	return manifestPath + ".trace.jsonl"
}

// writeObsFiles persists the run's observability artifacts. Failures are
// logged, never fatal.
func writeObsFiles(tracer *obs.Tracer, opts Options) {
	if opts.ManifestPath != "" {
		var buf bytes.Buffer
		if err := tracer.WriteJSONL(&buf); err == nil {
			if err := hostutil.WriteFileAtomic(TracePath(opts.ManifestPath), buf.Bytes(), 0o644); err != nil {
				fmt.Fprintf(opts.Log, "firesim: writing trace: %v\n", err)
			}
		}
	}
	if opts.MetricsPath != "" {
		if err := hostutil.WriteFileAtomic(opts.MetricsPath, opts.Obs.EncodeSnapshot(), 0o644); err != nil {
			fmt.Fprintf(opts.Log, "firesim: writing metrics snapshot: %v\n", err)
		}
	}
}

// runJob simulates one node on a fresh RTL platform. The job context's
// Done channel becomes the platform's cooperative kill switch, so a
// timed-out or cancelled job stops between batches.
func runJob(ctx context.Context, job install.JobConfig, fabric *netsim.Fabric, ckpt *ckptEnv, opts Options) (*JobResult, error) {
	jobStart := time.Now()
	binData, err := os.ReadFile(job.Bin)
	if err != nil {
		return nil, err
	}
	boot, err := firmware.Decode(binData)
	if err != nil {
		return nil, err
	}
	var rootfs *fsimg.FS
	if job.Img != "" {
		imgData, err := os.ReadFile(job.Img)
		if err != nil {
			return nil, err
		}
		if rootfs, err = fsimg.Decode(imgData); err != nil {
			return nil, err
		}
	}

	drivers, err := boards.DeviceProfile(job.Devices, boards.ProfileOpts{
		Fabric:     fabric,
		ServerNode: job.ServerNode,
	})
	if err != nil {
		return nil, err
	}

	rtl := opts.RTL
	rtl.Stop = ctx.Done()
	rtl.Obs = opts.Obs
	// Driver hooks sit outside the captured machine state, so nodes with
	// device drivers run unprotected.
	if ckpt != nil && len(drivers) == 0 {
		rt, err := checkpoint.Open(checkpoint.Config{
			Store: ckpt.store,
			Dir:   ckpt.dir,
			Job:   job.Name,
			Every: opts.CkptEvery,
			Obs:   opts.Obs,
			Span:  obs.SpanFromContext(ctx),
		}, opts.Resume)
		if err != nil {
			return nil, err
		}
		rtl.Ckpt = rt
	}
	platform, err := rtlsim.New(rtl)
	if err != nil {
		return nil, err
	}
	platform.NodeName = job.Name
	if fabric != nil {
		platform.AddDevice(&netsim.NIC{Fabric: fabric, NodeName: job.Name})
	}

	fmt.Fprintf(opts.Log, "firesim: simulating node %s\n", job.Name)
	var console bytes.Buffer
	bootRes, err := guestos.Boot(guestos.BootOpts{
		Boot:     boot,
		Disk:     rootfs,
		Platform: platform,
		Console:  &console,
		Drivers:  drivers,
		PkgRepo:  guestos.DefaultRepo(),
	})
	if err != nil {
		return nil, err
	}

	outDir := filepath.Join(opts.OutputDir, job.Name)
	if err := os.RemoveAll(outDir); err != nil {
		return nil, err
	}
	if err := hostutil.WriteFileAtomic(filepath.Join(outDir, "uartlog"), console.Bytes(), 0o644); err != nil {
		return nil, err
	}
	if bootRes.FinalFS != nil {
		if err := extractOutputs(bootRes.FinalFS, job.Outputs, outDir); err != nil {
			return nil, err
		}
	}
	return &JobResult{
		Name:      job.Name,
		ExitCode:  bootRes.ExitCode,
		Cycles:    bootRes.Cycles,
		Stats:     platform.Stats(),
		OutputDir: outDir,
		HostTime:  time.Since(jobStart),
	}, nil
}

// extractOutputs mirrors the launch command's output collection.
func extractOutputs(fs *fsimg.FS, outputs []string, outDir string) error {
	for _, out := range outputs {
		node := fs.Lookup(out)
		if node == nil {
			continue
		}
		if node.IsDir() {
			err := fs.Walk(func(p string, f *fsimg.File) error {
				if f.IsDir() || !within(p, out) {
					return nil
				}
				rel, err := filepath.Rel(out, p)
				if err != nil {
					return err
				}
				return hostutil.WriteFileAtomic(filepath.Join(outDir, filepath.Base(out), rel), f.Data, 0o644)
			})
			if err != nil {
				return err
			}
			continue
		}
		if err := hostutil.WriteFileAtomic(filepath.Join(outDir, filepath.Base(out)), node.Data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

func within(p, dir string) bool {
	if dir == "/" {
		return true
	}
	return p == dir || (len(p) > len(dir) && p[:len(dir)] == dir && p[len(dir)] == '/')
}

// Verify compares every job's output directory against the config's
// reference directory — the `marshal test --manual` flow of §III-E. A job
// whose short name matches a refDir subdirectory compares against that
// subdirectory; other jobs compare against the top-level reference files
// (sibling jobs' subdirectories are not expected in their outputs).
func Verify(cfg *install.Config, outputDir string) ([]runtest.Failure, error) {
	if cfg.RefDir == "" {
		return nil, fmt.Errorf("fsrun: workload has no reference outputs")
	}
	jobDirs := map[string]bool{}
	for _, job := range cfg.Jobs {
		jobDirs[jobShortName(cfg, job.Name)] = true
	}
	var all []runtest.Failure
	for _, job := range cfg.Jobs {
		jobOut := filepath.Join(outputDir, job.Name)
		if sub := filepath.Join(cfg.RefDir, jobShortName(cfg, job.Name)); dirExists(sub) {
			failures, err := runtest.CompareDir(jobOut, sub)
			if err != nil {
				return nil, err
			}
			all = append(all, failures...)
			continue
		}
		failures, err := runtest.CompareDirFiltered(jobOut, cfg.RefDir, true,
			func(name string) bool { return jobDirs[name] })
		if err != nil {
			return nil, err
		}
		all = append(all, failures...)
	}
	return all, nil
}

func jobShortName(cfg *install.Config, jobName string) string {
	prefix := cfg.Workload + "-"
	if len(jobName) > len(prefix) && jobName[:len(prefix)] == prefix {
		return jobName[len(prefix):]
	}
	return jobName
}

func dirExists(p string) bool {
	info, err := os.Stat(p)
	return err == nil && info.IsDir()
}
