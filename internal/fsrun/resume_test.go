package fsrun

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"firemarshal/internal/asm"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/core"
	"firemarshal/internal/install"
	"firemarshal/internal/isa"
	"firemarshal/internal/launcher"
	"firemarshal/internal/sim/rtlsim"
)

// buildCrashyInstalled installs a two-node workload: a quick echo node and
// a node that spins long enough for the fault injector to kill the run
// while it is mid-flight with checkpoints on disk.
func buildCrashyInstalled(t *testing.T) *install.Config {
	t.Helper()
	exe, err := asm.Assemble(`
_start:
    li s0, 800000
loop:
    addi s0, s0, -1
    bnez s0, loop
    li a0, 0
    li a7, 93
    ecall
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wlDir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(wlDir, "ovl", "bench"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wlDir, "ovl", "bench", "loop"), isa.EncodeExecutable(exe), 0o755); err != nil {
		t.Fatal(err)
	}
	workloadJSON := `{
  "name": "w", "base": "br-base", "overlay": "ovl",
  "jobs": [
    {"name": "quick", "command": "echo quick-done"},
    {"name": "slow", "command": "/bench/loop"}
  ]}`
	if err := os.WriteFile(filepath.Join(wlDir, "w.json"), []byte(workloadJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := core.New(t.TempDir(), wlDir)
	if err != nil {
		t.Fatal(err)
	}
	dir, err := m.Install("w", core.InstallOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := install.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The nodes are independent; run them without a network fabric.
	// Checkpointing is (by design) disabled on networked topologies, whose
	// cross-node fabric state sits outside any one machine.
	cfg.Topology = "no_net"
	return cfg
}

// TestFiresimCrashResumeCycleExact is the cycle-exact-simulation half of
// the tentpole's launch-level determinism gate: a firesim run killed while
// one node is done and another is mid-flight (with live checkpoints), then
// re-run with -resume, reports per-node cycle counts bit-identical to an
// uninterrupted run.
func TestFiresimCrashResumeCycleExact(t *testing.T) {
	cfg := buildCrashyInstalled(t)
	outDir := t.TempDir() + "/out"
	manifest := filepath.Join(outDir, "manifest.jsonl")

	// Uninterrupted reference run, in its own output directory.
	straight, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/ref"})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{}
	for _, j := range straight.Jobs {
		want[j.Name] = j.Cycles
	}
	if len(want) != 2 {
		t.Fatalf("reference run jobs = %d", len(want))
	}

	// Crashed run: sequential workers guarantee quick finishes first; the
	// watcher kills the run once slow has a checkpoint on disk.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	ptrPath := checkpoint.PointerPath(filepath.Join(outDir, ".ckpt"), "w-slow")
	go func() {
		for {
			if _, err := os.Stat(ptrPath); err == nil {
				cancel()
				return
			}
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	_, err = Run(cfg, Options{
		RTL:          rtlsim.DefaultConfig(),
		OutputDir:    outDir,
		ManifestPath: manifest,
		Context:      ctx,
		CkptEvery:    50000,
	})
	close(done)
	if err == nil {
		t.Fatal("interrupted run reported success (node too short to be caught mid-flight?)")
	}
	if _, err := checkpoint.LoadPointer(ptrPath); err != nil {
		t.Fatalf("cancelled node's checkpoint pointer missing: %v", err)
	}

	// Resume: quick carries, slow restores mid-flight and finishes.
	var log bytes.Buffer
	res, err := Run(cfg, Options{
		RTL:          rtlsim.DefaultConfig(),
		OutputDir:    outDir,
		ManifestPath: manifest,
		Resume:       true,
		CkptEvery:    50000,
		Log:          &log,
	})
	if err != nil {
		t.Fatalf("resume: %v (log:\n%s)", err, log.String())
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("resume jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Cycles != want[j.Name] {
			t.Errorf("node %s cycles = %d after resume, want %d (uninterrupted)", j.Name, j.Cycles, want[j.Name])
		}
	}
	if !strings.Contains(log.String(), "resume carries node w-quick") {
		t.Errorf("resume log missing carry marker:\n%s", log.String())
	}

	// The summary accounts attempts across the interruption and marks both
	// nodes resumed; the journal compacts away; checkpoints are cleared.
	for _, r := range res.Summary.Jobs {
		if r.Status != launcher.StatusOK {
			t.Errorf("node %s status %s", r.Name, r.Status)
		}
		if r.Name == "w-slow" && (r.Prior != 1 || !r.Resumed) {
			t.Errorf("slow summary = %+v, want prior=1 resumed", r)
		}
	}
	if _, err := os.Stat(manifest + ".journal"); !os.IsNotExist(err) {
		t.Errorf("journal survived compaction: %v", err)
	}
	ptrs, err := checkpoint.Pointers(filepath.Join(outDir, ".ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 0 {
		t.Errorf("pointers after successful resume: %+v", ptrs)
	}
}
