package fsrun

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"firemarshal/internal/cas"
	casremote "firemarshal/internal/cas/remote"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/launcher"
	lremote "firemarshal/internal/launcher/remote"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim/rtlsim"
)

// startRTLFleet spins up a shared cache server plus n in-process workers,
// each over its own local store and checkpoint dir. The returned slices
// are index-aligned so tests can kill a specific worker mid-node.
func startRTLFleet(t *testing.T, n int) (cacheURL string, addrs []string, workers []*lremote.Worker, servers []*httptest.Server) {
	t.Helper()
	shared, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cacheSrv := httptest.NewServer(casremote.NewServer(shared))
	t.Cleanup(cacheSrv.Close)
	for i := 0; i < n; i++ {
		store, err := cas.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		w := lremote.NewWorker(lremote.WorkerConfig{
			Runner: &lremote.ArtifactRunner{
				Store:   store,
				Remote:  casremote.NewClient(cacheSrv.URL, 0),
				CkptDir: t.TempDir(),
				Obs:     obs.NewRegistry(),
			},
			Slots: 1,
			Obs:   obs.NewRegistry(),
		})
		srv := httptest.NewServer(w)
		t.Cleanup(srv.Close)
		t.Cleanup(w.Close)
		workers = append(workers, w)
		servers = append(servers, srv)
		addrs = append(addrs, srv.Listener.Addr().String())
	}
	return cacheSrv.URL, addrs, workers, servers
}

// TestFiresimDistributedCrashResumeCycleExact is the cycle-exact half of
// the distributed determinism gate: an RTL node's worker is killed
// mid-simulation (checkpoints live); the coordinator re-leases the node to
// the surviving worker, which restores from the handed-off checkpoint and
// finishes — in the SAME `firesim -workers` invocation — with cycles,
// pipeline stats, and console bytes bit-identical to an uninterrupted
// single-host run.
func TestFiresimDistributedCrashResumeCycleExact(t *testing.T) {
	cfg := buildCrashyInstalled(t)

	// Uninterrupted single-host reference run.
	straight, err := Run(cfg, Options{RTL: rtlsim.DefaultConfig(), OutputDir: t.TempDir() + "/ref"})
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := map[string]uint64{}
	wantStats := map[string]rtlsim.Stats{}
	wantLogs := map[string][]byte{}
	for _, j := range straight.Jobs {
		wantCycles[j.Name] = j.Cycles
		wantStats[j.Name] = j.Stats
		data, err := os.ReadFile(filepath.Join(j.OutputDir, "uartlog"))
		if err != nil {
			t.Fatal(err)
		}
		wantLogs[j.Name] = data
	}
	if len(wantCycles) != 2 {
		t.Fatalf("reference run jobs = %d", len(wantCycles))
	}

	// Fleet run with a fault injector: least-loaded assignment puts quick
	// on worker 0 and slow on worker 1; the watcher kills worker 1 — HTTP
	// listener and simulation both — once the coordinator has persisted a
	// checkpoint pointer for slow.
	cacheURL, addrs, workers, servers := startRTLFleet(t, 2)
	outDir := t.TempDir() + "/out"
	manifest := filepath.Join(outDir, "manifest.jsonl")
	reg := obs.NewRegistry()
	done := make(chan struct{})
	killed := make(chan struct{})
	ptrPath := checkpoint.PointerPath(filepath.Join(outDir, ".ckpt"), "w-slow")
	go func() {
		defer close(killed)
		for {
			if _, err := os.Stat(ptrPath); err == nil {
				servers[1].CloseClientConnections()
				servers[1].Close()
				workers[1].Close()
				return
			}
			select {
			case <-done:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	res, err := Run(cfg, Options{
		RTL:            rtlsim.DefaultConfig(),
		OutputDir:      outDir,
		ManifestPath:   manifest,
		CkptEvery:      50000,
		Workers:        addrs,
		RemoteCache:    cacheURL,
		WorkerLeaseTTL: 300 * time.Millisecond,
		WorkerPoll:     2 * time.Millisecond,
		Obs:            reg,
	})
	close(done)
	<-killed
	if err != nil {
		t.Fatalf("fleet run with worker death: %v", err)
	}

	// The handoff really happened.
	if got := reg.Counter("remote_lease_expiries_total").Value(); got < 1 {
		t.Fatalf("remote_lease_expiries_total = %d, want >= 1 (did the kill land mid-node?)", got)
	}

	if len(res.Jobs) != 2 {
		t.Fatalf("fleet jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Cycles != wantCycles[j.Name] {
			t.Errorf("node %s cycles = %d after handoff, want %d (uninterrupted)", j.Name, j.Cycles, wantCycles[j.Name])
		}
		if !reflect.DeepEqual(j.Stats, wantStats[j.Name]) {
			t.Errorf("node %s stats after handoff = %+v, want %+v", j.Name, j.Stats, wantStats[j.Name])
		}
		data, err := os.ReadFile(filepath.Join(j.OutputDir, "uartlog"))
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(wantLogs[j.Name]) {
			t.Errorf("node %s console differs after handoff:\n%q\nwant:\n%q", j.Name, data, wantLogs[j.Name])
		}
	}

	// The summary accounts the lease handoff as a resumed second attempt.
	var slow *launcher.Result
	for i := range res.Summary.Jobs {
		if res.Summary.Jobs[i].Name == "w-slow" {
			slow = &res.Summary.Jobs[i]
		}
		if res.Summary.Jobs[i].Status != launcher.StatusOK {
			t.Errorf("node %s status = %s", res.Summary.Jobs[i].Name, res.Summary.Jobs[i].Status)
		}
	}
	if slow == nil || slow.Attempts != 2 || !slow.Resumed {
		t.Errorf("slow summary = %+v, want 2 attempts (one per worker) + resumed", slow)
	}

	// Terminal success cleared the journal and checkpoint pointers.
	if _, err := os.Stat(manifest + ".journal"); !os.IsNotExist(err) {
		t.Errorf("journal survived compaction: %v", err)
	}
	ptrs, err := checkpoint.Pointers(filepath.Join(outDir, ".ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 0 {
		t.Errorf("pointers after successful fleet run: %+v", ptrs)
	}
}

// TestFiresimFleetRejectsNetworkedTopology: the fabric couples nodes
// through host-local state, so a fleet run must refuse it up front rather
// than silently simulate wrong timing.
func TestFiresimFleetRejectsNetworkedTopology(t *testing.T) {
	cfg := buildCrashyInstalled(t)
	cfg.Topology = "simple" // re-arm the fabric the helper disabled
	_, addrs, _, _ := startRTLFleet(t, 1)
	_, err := Run(cfg, Options{
		RTL:         rtlsim.DefaultConfig(),
		OutputDir:   t.TempDir(),
		Workers:     addrs,
		RemoteCache: "http://127.0.0.1:1", // never dialed: the check is earlier
	})
	if err == nil {
		t.Fatal("networked topology on a fleet must be refused")
	}
}
