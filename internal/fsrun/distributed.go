package fsrun

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	casremote "firemarshal/internal/cas/remote"
	"firemarshal/internal/checkpoint"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/install"
	"firemarshal/internal/launcher"
	"firemarshal/internal/launcher/remote"
)

// runFleet simulates the OS jobs on a worker fleet (`firesim -workers`)
// instead of local RTL slots. The cycle-exact hardware configuration
// travels in each job spec, so every worker simulates the identical
// machine; consoles, outputs, stats, and checkpoints flow through the
// shared remote cache exactly as the functional path's do.
func runFleet(ctx context.Context, osJobs []install.JobConfig, carried map[string]launcher.Result,
	prior map[string]launcher.PriorJob, jnl *launcher.Journal, ckpt *ckptEnv, opts Options, results []*JobResult) (*launcher.Summary, error) {

	if opts.RemoteCache == "" {
		return nil, fmt.Errorf("fsrun: distributed run needs a shared artifact cache: set -remote-cache to a `marshal cache serve` server every worker can reach")
	}
	rem := casremote.NewClient(opts.RemoteCache, 0)

	publish := func(data []byte) (string, error) {
		digest := remote.Digest(data)
		if err := rem.PutBlob(ctx, digest, data); err != nil {
			return "", err
		}
		return digest, nil
	}

	idx := map[string]int{}
	var specs []remote.JobSpec
	for i, job := range osJobs {
		if _, ok := carried[job.Name]; ok {
			continue
		}
		if job.Devices != "" {
			return nil, fmt.Errorf("fsrun: node %s uses device drivers (%s); distributed runs support pure-CPU nodes only", job.Name, job.Devices)
		}
		binData, err := os.ReadFile(job.Bin)
		if err != nil {
			return nil, err
		}
		binDigest, err := publish(binData)
		if err != nil {
			return nil, fmt.Errorf("fsrun: publishing boot binary for %s: %w", job.Name, err)
		}
		imgDigest := ""
		if job.Img != "" {
			imgData, err := os.ReadFile(job.Img)
			if err != nil {
				return nil, err
			}
			if imgDigest, err = publish(imgData); err != nil {
				return nil, fmt.Errorf("fsrun: publishing disk image for %s: %w", job.Name, err)
			}
		}
		js := remote.JobSpec{
			Name:      job.Name,
			Sim:       "rtl",
			Bin:       binDigest,
			Img:       imgDigest,
			Outputs:   job.Outputs,
			RTL:       remote.NewRTLSpec(opts.RTL),
			Timeout:   opts.Timeout,
			Retries:   opts.Retries,
			CkptEvery: opts.CkptEvery,
		}
		if p, ok := prior[job.Name]; ok {
			js.Prior = p.Attempts
			js.Resumed = opts.Resume && p.Attempts > 0
		}
		if opts.Resume && ckpt != nil {
			// The pointer survived on the coordinator; the blobs it names are
			// already in the shared cache (snapshots replicate before they
			// are announced), so any worker can restore mid-exec from it.
			if ptr, err := checkpoint.LoadPointer(checkpoint.PointerPath(ckpt.dir, job.Name)); err == nil {
				js.Ckpt = ptr
				js.Resumed = true
				fmt.Fprintf(opts.Log, "firesim: resume: node %s will restore on a worker (instret %d)\n", job.Name, ptr.Instret)
			}
		}
		idx[job.Name] = i
		specs = append(specs, js)
	}

	return remote.Launch(ctx, specs, remote.CoordOptions{
		Workers:  opts.Workers,
		Journal:  jnl,
		LeaseTTL: opts.WorkerLeaseTTL,
		Poll:     opts.WorkerPoll,
		Obs:      opts.Obs,
		Log:      opts.Log,
		OnCheckpoint: func(ptr *checkpoint.Pointer) {
			if ckpt == nil {
				return
			}
			if err := checkpoint.WritePointer(ckpt.dir, ptr); err != nil {
				fmt.Fprintf(opts.Log, "firesim: persisting checkpoint pointer for %s: %v\n", ptr.Job, err)
			}
		},
		OnDone: func(ev remote.Event) error {
			return materializeFleetNode(ctx, rem, osJobs[idx[ev.Job]], opts, ev, &results[idx[ev.Job]])
		},
	})
}

// materializeFleetNode pulls a finished node's console and outputs from
// the shared cache into its output directory — byte-identical to what a
// local runJob writes.
func materializeFleetNode(ctx context.Context, rem *casremote.Client, job install.JobConfig, opts Options, ev remote.Event, out **JobResult) error {
	if ev.Record == nil || ev.Record.Status != launcher.StatusOK {
		return nil
	}
	outDir := filepath.Join(opts.OutputDir, job.Name)
	if err := os.RemoveAll(outDir); err != nil {
		return err
	}
	console, err := rem.GetBlob(ctx, ev.Console)
	if err != nil {
		return fmt.Errorf("fsrun: fetching console for %s: %w", job.Name, err)
	}
	if err := hostutil.WriteFileAtomic(filepath.Join(outDir, "uartlog"), console, 0o644); err != nil {
		return err
	}
	for rel, digest := range ev.Outputs {
		data, err := rem.GetBlob(ctx, digest)
		if err != nil {
			return fmt.Errorf("fsrun: fetching output %s for %s: %w", rel, job.Name, err)
		}
		if err := hostutil.WriteFileAtomic(filepath.Join(outDir, rel), data, 0o644); err != nil {
			return err
		}
	}
	jr := &JobResult{
		Name:      job.Name,
		ExitCode:  ev.Record.Exit,
		Cycles:    ev.Record.Cycles,
		OutputDir: outDir,
		HostTime:  time.Duration(ev.Record.WallMS * float64(time.Millisecond)),
	}
	if ev.Stats != nil {
		jr.Stats = *ev.Stats
	}
	*out = jr
	return nil
}
