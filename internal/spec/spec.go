// Package spec implements FireMarshal workload descriptions (§III-A): the
// JSON/YAML configuration files users write, the option set of Table II,
// the PATH-like workload search order, recursive inheritance through the
// `base` option, and multi-node `jobs`. A resolved Workload chain is the
// input to the build pipeline in internal/core.
package spec

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"firemarshal/internal/hostutil"
	"firemarshal/internal/yaml"
)

// FilePair is one entry of the `files` option: copy Src (host, relative to
// the workload dir) to Dst (guest absolute path).
type FilePair struct {
	Src string
	Dst string
}

// LinuxOpts customizes the kernel (Table II `linux`).
type LinuxOpts struct {
	// Source names a kernel source tree (a directory relative to the
	// workload dir, or a built-in source name).
	Source string
	// Config lists kernel configuration fragment files, merged in order.
	Config []string
	// Modules maps module names to source directories.
	Modules map[string]string
}

// FirmwareOpts customizes the firmware (Table II `firmware`).
type FirmwareOpts struct {
	// Kind selects "opensbi" or "bbl".
	Kind string
	// BuildArgs are passed to the firmware build.
	BuildArgs []string
}

// TestingOpts configures the `test` command.
type TestingOpts struct {
	// RefDir holds reference outputs to compare against.
	RefDir string
	// TimeoutSec bounds the test run.
	TimeoutSec int
	// Strip removes timestamp-like tokens before comparison.
	Strip bool
}

// Workload is one parsed (not yet inherited) workload description.
type Workload struct {
	Name    string
	Base    string
	Board   string
	Distro  string // "br", "fedora", or "bare"; normally set by base workloads
	Overlay string
	Files   []FilePair

	HostInit    string
	GuestInit   string
	Run         string
	Command     string
	Outputs     []string
	PostRunHook string

	RootfsSize string
	Bin        string
	Img        string
	NoDisk     bool

	Linux    *LinuxOpts
	Firmware *FirmwareOpts

	Spike     string
	SpikeArgs []string
	QemuArgs  []string

	Jobs []*Workload

	Testing *TestingOpts

	// Dir is the directory containing the workload file; host paths are
	// relative to it.
	Dir string

	// parent is the resolved base workload.
	parent *Workload

	// raw preserves the source document for hashing.
	raw string
}

// Parent returns the resolved base workload (nil for roots).
func (w *Workload) Parent() *Workload { return w.parent }

// Chain returns the inheritance chain, root base first, w last.
func (w *Workload) Chain() []*Workload {
	if w.parent == nil {
		return []*Workload{w}
	}
	return append(w.parent.Chain(), w)
}

// Hash fingerprints the workload document and its ancestry for dependency
// tracking. It is content-based — the host directory the document lives in
// is deliberately excluded, so identical workloads in different checkouts
// produce identical hashes and can share artifact-cache entries (referenced
// host files are hashed separately as file dependencies).
func (w *Workload) Hash() string {
	parts := []string{w.raw, w.Name}
	if w.parent != nil {
		parts = append(parts, w.parent.Hash())
	}
	return hostutil.HashStrings(parts...)
}

// HostPath resolves a host-side relative path against the workload dir.
func (w *Workload) HostPath(p string) string {
	if p == "" || filepath.IsAbs(p) {
		return p
	}
	return filepath.Join(w.Dir, p)
}

// knownKeys is the exhaustive option set (Table II plus supporting options);
// unknown keys are rejected so workload files stay unambiguous.
var knownKeys = map[string]bool{
	"name": true, "base": true, "board": true, "distro": true,
	"overlay": true, "files": true,
	"host-init": true, "guest-init": true,
	"run": true, "command": true,
	"outputs": true, "post-run-hook": true,
	"rootfs-size": true, "bin": true, "img": true, "no-disk": true,
	"linux": true, "firmware": true,
	"spike": true, "spike-args": true, "qemu-args": true,
	"jobs": true, "testing": true,
}

// ParseFile reads and parses a workload file (JSON or YAML by extension).
func ParseFile(path string) (*Workload, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	w, err := Parse(data, strings.HasSuffix(path, ".yaml") || strings.HasSuffix(path, ".yml"))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	w.Dir = filepath.Dir(path)
	if w.Name == "" {
		base := filepath.Base(path)
		w.Name = strings.TrimSuffix(base, filepath.Ext(base))
	}
	return w, nil
}

// Parse decodes a workload document.
func Parse(data []byte, isYAML bool) (*Workload, error) {
	var doc any
	if isYAML {
		v, err := yaml.Parse(data)
		if err != nil {
			return nil, err
		}
		doc = v
	} else {
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("spec: bad JSON: %w", err)
		}
	}
	m, ok := doc.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("spec: workload document must be a mapping, got %T", doc)
	}
	w, err := fromMap(m)
	if err != nil {
		return nil, err
	}
	w.raw = string(data)
	return w, nil
}

func fromMap(m map[string]any) (*Workload, error) {
	for k := range m {
		if !knownKeys[k] {
			return nil, fmt.Errorf("spec: unknown option %q (known options: %s)", k, strings.Join(sortedKeys(knownKeys), ", "))
		}
	}
	w := &Workload{}
	var err error
	if w.Name, err = optString(m, "name"); err != nil {
		return nil, err
	}
	if w.Base, err = optString(m, "base"); err != nil {
		return nil, err
	}
	if w.Board, err = optString(m, "board"); err != nil {
		return nil, err
	}
	if w.Distro, err = optString(m, "distro"); err != nil {
		return nil, err
	}
	if w.Overlay, err = optString(m, "overlay"); err != nil {
		return nil, err
	}
	if w.HostInit, err = optString(m, "host-init"); err != nil {
		return nil, err
	}
	if w.GuestInit, err = optString(m, "guest-init"); err != nil {
		return nil, err
	}
	if w.Run, err = optString(m, "run"); err != nil {
		return nil, err
	}
	if w.Command, err = optString(m, "command"); err != nil {
		return nil, err
	}
	if w.PostRunHook, err = optString(m, "post-run-hook"); err != nil {
		return nil, err
	}
	if w.RootfsSize, err = optString(m, "rootfs-size"); err != nil {
		return nil, err
	}
	if w.Bin, err = optString(m, "bin"); err != nil {
		return nil, err
	}
	if w.Img, err = optString(m, "img"); err != nil {
		return nil, err
	}
	if w.Spike, err = optString(m, "spike"); err != nil {
		return nil, err
	}
	if w.Outputs, err = optStrings(m, "outputs"); err != nil {
		return nil, err
	}
	if w.SpikeArgs, err = optStrings(m, "spike-args"); err != nil {
		return nil, err
	}
	if w.QemuArgs, err = optStrings(m, "qemu-args"); err != nil {
		return nil, err
	}
	if v, ok := m["no-disk"]; ok {
		b, isB := v.(bool)
		if !isB {
			return nil, fmt.Errorf("spec: no-disk must be a boolean")
		}
		w.NoDisk = b
	}
	if w.Run != "" && w.Command != "" {
		return nil, fmt.Errorf("spec: run and command are mutually exclusive")
	}
	if v, ok := m["files"]; ok {
		list, isL := v.([]any)
		if !isL {
			return nil, fmt.Errorf("spec: files must be a list")
		}
		for _, item := range list {
			pair, isP := item.([]any)
			if !isP || len(pair) != 2 {
				return nil, fmt.Errorf("spec: each files entry must be a [src, dst] pair")
			}
			src, ok1 := pair[0].(string)
			dst, ok2 := pair[1].(string)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("spec: files entries must be strings")
			}
			w.Files = append(w.Files, FilePair{Src: src, Dst: dst})
		}
	}
	if v, ok := m["linux"]; ok {
		lm, isM := v.(map[string]any)
		if !isM {
			return nil, fmt.Errorf("spec: linux must be a mapping")
		}
		w.Linux = &LinuxOpts{}
		if w.Linux.Source, err = optString(lm, "source"); err != nil {
			return nil, err
		}
		// config accepts a single string or a list of fragments.
		switch cv := lm["config"].(type) {
		case nil:
		case string:
			w.Linux.Config = []string{cv}
		case []any:
			for _, c := range cv {
				s, isS := c.(string)
				if !isS {
					return nil, fmt.Errorf("spec: linux.config entries must be strings")
				}
				w.Linux.Config = append(w.Linux.Config, s)
			}
		default:
			return nil, fmt.Errorf("spec: linux.config must be a string or list")
		}
		if mv, ok := lm["modules"]; ok {
			mm, isM := mv.(map[string]any)
			if !isM {
				return nil, fmt.Errorf("spec: linux.modules must be a mapping")
			}
			w.Linux.Modules = map[string]string{}
			for name, src := range mm {
				s, isS := src.(string)
				if !isS {
					return nil, fmt.Errorf("spec: linux.modules values must be strings")
				}
				w.Linux.Modules[name] = s
			}
		}
		for k := range lm {
			if k != "source" && k != "config" && k != "modules" {
				return nil, fmt.Errorf("spec: unknown linux option %q", k)
			}
		}
	}
	if v, ok := m["firmware"]; ok {
		fm, isM := v.(map[string]any)
		if !isM {
			return nil, fmt.Errorf("spec: firmware must be a mapping")
		}
		w.Firmware = &FirmwareOpts{}
		if w.Firmware.Kind, err = optString(fm, "kind"); err != nil {
			return nil, err
		}
		if w.Firmware.BuildArgs, err = optStrings(fm, "build-args"); err != nil {
			return nil, err
		}
		for k := range fm {
			if k != "kind" && k != "build-args" {
				return nil, fmt.Errorf("spec: unknown firmware option %q", k)
			}
		}
	}
	if v, ok := m["testing"]; ok {
		tm, isM := v.(map[string]any)
		if !isM {
			return nil, fmt.Errorf("spec: testing must be a mapping")
		}
		w.Testing = &TestingOpts{Strip: true}
		if w.Testing.RefDir, err = optString(tm, "refDir"); err != nil {
			return nil, err
		}
		if tv, ok := tm["timeout"]; ok {
			f, isF := tv.(float64)
			if !isF || f < 0 {
				return nil, fmt.Errorf("spec: testing.timeout must be a non-negative number")
			}
			w.Testing.TimeoutSec = int(f)
		}
		if sv, ok := tm["strip"]; ok {
			b, isB := sv.(bool)
			if !isB {
				return nil, fmt.Errorf("spec: testing.strip must be a boolean")
			}
			w.Testing.Strip = b
		}
		for k := range tm {
			if k != "refDir" && k != "timeout" && k != "strip" {
				return nil, fmt.Errorf("spec: unknown testing option %q", k)
			}
		}
	}
	if v, ok := m["jobs"]; ok {
		list, isL := v.([]any)
		if !isL {
			return nil, fmt.Errorf("spec: jobs must be a list")
		}
		for i, item := range list {
			jm, isM := item.(map[string]any)
			if !isM {
				return nil, fmt.Errorf("spec: job %d must be a mapping", i)
			}
			jw, jerr := fromMap(jm)
			if jerr != nil {
				return nil, fmt.Errorf("spec: job %d: %w", i, jerr)
			}
			if jw.Name == "" {
				return nil, fmt.Errorf("spec: job %d has no name", i)
			}
			if len(jw.Jobs) > 0 {
				return nil, fmt.Errorf("spec: job %q: jobs cannot nest", jw.Name)
			}
			w.Jobs = append(w.Jobs, jw)
		}
	}
	return w, nil
}

func optString(m map[string]any, key string) (string, error) {
	v, ok := m[key]
	if !ok || v == nil {
		return "", nil
	}
	s, isS := v.(string)
	if !isS {
		return "", fmt.Errorf("spec: option %q must be a string, got %T", key, v)
	}
	return s, nil
}

func optStrings(m map[string]any, key string) ([]string, error) {
	v, ok := m[key]
	if !ok || v == nil {
		return nil, nil
	}
	list, isL := v.([]any)
	if !isL {
		return nil, fmt.Errorf("spec: option %q must be a list", key)
	}
	out := make([]string, 0, len(list))
	for _, item := range list {
		s, isS := item.(string)
		if !isS {
			return nil, fmt.Errorf("spec: option %q entries must be strings", key)
		}
		out = append(out, s)
	}
	return out, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ParseRootfsSize converts "3GiB"/"512MiB"/"4096" style sizes to bytes.
func ParseRootfsSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(strings.TrimSpace(s))
	for _, suf := range []struct {
		name string
		mul  int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
	} {
		if strings.HasSuffix(upper, suf.name) {
			mult = suf.mul
			upper = strings.TrimSuffix(upper, suf.name)
			break
		}
	}
	var n int64
	if _, err := fmt.Sscanf(strings.TrimSpace(upper), "%d", &n); err != nil {
		return 0, fmt.Errorf("spec: bad rootfs-size %q", s)
	}
	if n <= 0 {
		return 0, fmt.Errorf("spec: rootfs-size must be positive")
	}
	return n * mult, nil
}
