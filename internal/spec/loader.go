package spec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Loader locates and resolves workloads. Lookup follows "a search order
// similar to the $PATH variable in a Unix shell" (§III-B.1): each directory
// in SearchPath is probed for <name>.json / <name>.yaml, then built-in
// workloads (provided by boards) are consulted.
type Loader struct {
	// SearchPath lists workload directories in priority order.
	SearchPath []string

	builtins map[string]*Workload
}

// NewLoader creates a loader with the given search path.
func NewLoader(searchPath ...string) *Loader {
	return &Loader{SearchPath: searchPath, builtins: map[string]*Workload{}}
}

// RegisterBuiltin adds a board-provided base workload (e.g. br-base).
func (l *Loader) RegisterBuiltin(w *Workload) error {
	if w.Name == "" {
		return fmt.Errorf("spec: builtin workload without name")
	}
	if _, dup := l.builtins[w.Name]; dup {
		return fmt.Errorf("spec: duplicate builtin %q", w.Name)
	}
	l.builtins[w.Name] = w
	return nil
}

// Builtins lists registered builtin workload names, sorted.
func (l *Loader) Builtins() []string {
	return sortedKeys2(l.builtins)
}

func sortedKeys2(m map[string]*Workload) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Load locates nameOrPath, parses it, resolves its inheritance chain, and
// resolves its jobs.
func (l *Loader) Load(nameOrPath string) (*Workload, error) {
	return l.load(nameOrPath, map[string]bool{})
}

func (l *Loader) load(nameOrPath string, visiting map[string]bool) (*Workload, error) {
	w, err := l.locate(nameOrPath)
	if err != nil {
		return nil, err
	}
	key := w.Name + "\x00" + w.Dir
	if visiting[key] {
		return nil, fmt.Errorf("spec: inheritance cycle through workload %q", w.Name)
	}
	visiting[key] = true
	defer delete(visiting, key)

	if w.Base != "" {
		parent, perr := l.load(w.Base, visiting)
		if perr != nil {
			return nil, fmt.Errorf("spec: workload %q: base: %w", w.Name, perr)
		}
		w.parent = parent
	}
	if err := l.resolveJobs(w, visiting); err != nil {
		return nil, err
	}
	return w, nil
}

// locate finds the workload document by explicit path, search path, or
// builtin registry. A fresh Workload is returned each time (resolution
// mutates parent pointers).
func (l *Loader) locate(nameOrPath string) (*Workload, error) {
	if strings.HasSuffix(nameOrPath, ".json") || strings.HasSuffix(nameOrPath, ".yaml") ||
		strings.HasSuffix(nameOrPath, ".yml") {
		if _, err := os.Stat(nameOrPath); err == nil {
			return ParseFile(nameOrPath)
		}
		// Relative config names also search the path.
		for _, dir := range l.SearchPath {
			p := filepath.Join(dir, nameOrPath)
			if _, err := os.Stat(p); err == nil {
				return ParseFile(p)
			}
		}
		return nil, fmt.Errorf("spec: workload file %q not found (search path: %v)", nameOrPath, l.SearchPath)
	}
	for _, dir := range l.SearchPath {
		for _, ext := range []string{".json", ".yaml", ".yml"} {
			p := filepath.Join(dir, nameOrPath+ext)
			if _, err := os.Stat(p); err == nil {
				return ParseFile(p)
			}
		}
	}
	if b, ok := l.builtins[nameOrPath]; ok {
		cp := *b
		return &cp, nil
	}
	return nil, fmt.Errorf("spec: workload %q not found (search path: %v; builtins: %v)",
		nameOrPath, l.SearchPath, l.Builtins())
}

// resolveJobs applies the rule of §III-A.1: "Jobs are implicitly based on
// the top level workload description and follow all inheritance rules."
func (l *Loader) resolveJobs(w *Workload, visiting map[string]bool) error {
	seen := map[string]bool{}
	for _, job := range w.Jobs {
		if seen[job.Name] {
			return fmt.Errorf("spec: duplicate job name %q", job.Name)
		}
		seen[job.Name] = true
		job.Dir = w.Dir
		if job.Base == "" {
			job.parent = w
		} else {
			parent, err := l.load(job.Base, visiting)
			if err != nil {
				return fmt.Errorf("spec: job %q: base: %w", job.Name, err)
			}
			job.parent = parent
		}
	}
	return nil
}

// ---- effective (inherited) option accessors ----

// EffectiveDistro walks the chain for the distribution ("br", "fedora",
// "bare").
func (w *Workload) EffectiveDistro() string {
	for c := w; c != nil; c = c.parent {
		if c.Distro != "" {
			return c.Distro
		}
	}
	return ""
}

// EffectiveBoard walks the chain for the target board.
func (w *Workload) EffectiveBoard() string {
	for c := w; c != nil; c = c.parent {
		if c.Board != "" {
			return c.Board
		}
	}
	return ""
}

// EffectiveLinuxSource walks the chain for the kernel source.
func (w *Workload) EffectiveLinuxSource() string {
	for c := w; c != nil; c = c.parent {
		if c.Linux != nil && c.Linux.Source != "" {
			return c.Linux.Source
		}
	}
	return ""
}

// EffectiveFirmware walks the chain for the firmware kind.
func (w *Workload) EffectiveFirmware() string {
	for c := w; c != nil; c = c.parent {
		if c.Firmware != nil && c.Firmware.Kind != "" {
			return c.Firmware.Kind
		}
	}
	return ""
}

// EffectiveSpike walks the chain for the custom functional simulator.
func (w *Workload) EffectiveSpike() string {
	for c := w; c != nil; c = c.parent {
		if c.Spike != "" {
			return c.Spike
		}
	}
	return ""
}

// EffectiveRootfsSize walks the chain for the image size limit.
func (w *Workload) EffectiveRootfsSize() string {
	for c := w; c != nil; c = c.parent {
		if c.RootfsSize != "" {
			return c.RootfsSize
		}
	}
	return ""
}

// EffectiveCommand walks the chain for the boot command (run scripts are
// handled separately because they are files).
func (w *Workload) EffectiveCommand() string {
	for c := w; c != nil; c = c.parent {
		if c.Command != "" || c.Run != "" {
			return c.Command
		}
	}
	return ""
}

// ConfigFragments collects kernel config fragment paths, parents first, as
// the merge order requires (§III-B.4a).
func (w *Workload) ConfigFragments() []string {
	var out []string
	for _, c := range w.Chain() {
		if c.Linux == nil {
			continue
		}
		for _, frag := range c.Linux.Config {
			out = append(out, c.HostPath(frag))
		}
	}
	return out
}

// Modules collects kernel modules across the chain (children override
// parents' module of the same name).
func (w *Workload) Modules() map[string]string {
	out := map[string]string{}
	for _, c := range w.Chain() {
		if c.Linux == nil {
			continue
		}
		for name, src := range c.Linux.Modules {
			out[name] = c.HostPath(src)
		}
	}
	return out
}

// EffectiveSpikeArgs concatenates simulator args across the chain.
func (w *Workload) EffectiveSpikeArgs() []string {
	var out []string
	for _, c := range w.Chain() {
		out = append(out, c.SpikeArgs...)
	}
	return out
}

// EffectiveQemuArgs concatenates simulator args across the chain.
func (w *Workload) EffectiveQemuArgs() []string {
	var out []string
	for _, c := range w.Chain() {
		out = append(out, c.QemuArgs...)
	}
	return out
}
