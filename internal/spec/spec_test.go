package spec

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseListing1JSON(t *testing.T) {
	// The paper's Listing 1 (upper): pfa-base.
	src := `{
  "name": "pfa-base",
  "base": "buildroot",
  "host-init": "cross-compile.sh",
  "linux": {
    "source": "pfa-linux",
    "config": "pfa-linux.kfrag"
  },
  "overlay": "pfa-test-root/",
  "spike": "pfa-spike"
}`
	w, err := Parse([]byte(src), false)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "pfa-base" || w.Base != "buildroot" {
		t.Errorf("header wrong: %+v", w)
	}
	if w.HostInit != "cross-compile.sh" || w.Overlay != "pfa-test-root/" || w.Spike != "pfa-spike" {
		t.Errorf("options wrong: %+v", w)
	}
	if w.Linux == nil || w.Linux.Source != "pfa-linux" || len(w.Linux.Config) != 1 {
		t.Errorf("linux opts wrong: %+v", w.Linux)
	}
}

func TestParseListing1Jobs(t *testing.T) {
	// The paper's Listing 1 (lower): latency-microbenchmark.
	src := `{
  "name": "latency-microbenchmark",
  "base": "pfa-base",
  "post-run-hook": "extract_csv.py",
  "jobs": [
    { "name": "client", "linux": { "config": "pfa.kfrag" } },
    { "name": "server", "base": "bare-metal", "bin": "serve" }
  ]
}`
	w, err := Parse([]byte(src), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(w.Jobs))
	}
	if w.Jobs[0].Name != "client" || w.Jobs[0].Linux.Config[0] != "pfa.kfrag" {
		t.Errorf("client job wrong: %+v", w.Jobs[0])
	}
	if w.Jobs[1].Base != "bare-metal" || w.Jobs[1].Bin != "serve" {
		t.Errorf("server job wrong: %+v", w.Jobs[1])
	}
}

func TestParseYAMLEquivalence(t *testing.T) {
	j, err := Parse([]byte(`{"name":"w","base":"b","outputs":["/output"],"rootfs-size":"3GiB"}`), false)
	if err != nil {
		t.Fatal(err)
	}
	y, err := Parse([]byte("name: w\nbase: b\noutputs:\n  - /output\nrootfs-size: 3GiB\n"), true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Name != y.Name || j.Base != y.Base || j.RootfsSize != y.RootfsSize ||
		len(j.Outputs) != len(y.Outputs) || j.Outputs[0] != y.Outputs[0] {
		t.Errorf("JSON and YAML parse differently: %+v vs %+v", j, y)
	}
}

func TestUnknownOptionRejected(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"w","bse":"typo"}`), false); err == nil {
		t.Error("expected error for unknown option")
	}
	if _, err := Parse([]byte(`{"name":"w","linux":{"sorce":"x"}}`), false); err == nil {
		t.Error("expected error for unknown linux option")
	}
}

func TestTypeErrors(t *testing.T) {
	bad := []string{
		`{"name": 42}`,
		`{"outputs": "notalist"}`,
		`{"files": [["onlyone"]]}`,
		`{"files": "x"}`,
		`{"linux": "x"}`,
		`{"jobs": [{"command": "no name"}]}`,
		`{"jobs": [{"name": "j", "jobs": [{"name":"nested"}]}]}`,
		`{"no-disk": "yes"}`,
		`{"run": "a.sh", "command": "echo hi"}`,
		`{"testing": {"timeout": -1}}`,
		`[1,2,3]`,
	}
	for _, src := range bad {
		if _, err := Parse([]byte(src), false); err == nil {
			t.Errorf("Parse(%s): expected error", src)
		}
	}
}

func TestTable2Options(t *testing.T) {
	// Every option named in Table II must parse.
	src := `{
  "name": "full",
  "base": "br-base",
  "overlay": "overlay/",
  "files": [["host.txt", "/guest.txt"]],
  "host-init": "build.sh",
  "guest-init": "install.sh",
  "run": "bench.sh",
  "outputs": ["/output"],
  "post-run-hook": "parse.py",
  "linux": {"source": "my-linux", "config": ["a.kfrag", "b.kfrag"], "modules": {"pfa": "pfa-driver/"}},
  "firmware": {"kind": "opensbi"},
  "spike": "custom-spike",
  "spike-args": ["--extension=pfa"],
  "qemu-args": ["-m", "4G"],
  "jobs": [{"name": "node0"}],
  "rootfs-size": "3GiB",
  "bin": "",
  "img": "",
  "testing": {"refDir": "refs/", "timeout": 60, "strip": true}
}`
	w, err := Parse([]byte(src), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Linux.Config) != 2 || w.Linux.Modules["pfa"] != "pfa-driver/" {
		t.Errorf("linux = %+v", w.Linux)
	}
	if w.Firmware.Kind != "opensbi" {
		t.Errorf("firmware = %+v", w.Firmware)
	}
	if w.Testing.TimeoutSec != 60 || !w.Testing.Strip || w.Testing.RefDir != "refs/" {
		t.Errorf("testing = %+v", w.Testing)
	}
	if len(w.Files) != 1 || w.Files[0].Dst != "/guest.txt" {
		t.Errorf("files = %+v", w.Files)
	}
}

func newTestLoader(t *testing.T, dir string) *Loader {
	t.Helper()
	l := NewLoader(dir)
	l.RegisterBuiltin(&Workload{Name: "br-base", Distro: "br", Board: "default"})
	l.RegisterBuiltin(&Workload{Name: "fedora-base", Distro: "fedora", Board: "default"})
	l.RegisterBuiltin(&Workload{Name: "bare-metal", Distro: "bare", Board: "default"})
	return l
}

func TestLoadWithInheritance(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "parent.json", `{"name":"parent","base":"br-base","rootfs-size":"1GiB","linux":{"config":"p.kfrag"}}`)
	writeFile(t, dir, "child.json", `{"name":"child","base":"parent","linux":{"config":"c.kfrag"},"command":"echo hi"}`)
	l := newTestLoader(t, dir)
	w, err := l.Load("child")
	if err != nil {
		t.Fatal(err)
	}
	chain := w.Chain()
	if len(chain) != 3 {
		t.Fatalf("chain length %d", len(chain))
	}
	if chain[0].Name != "br-base" || chain[1].Name != "parent" || chain[2].Name != "child" {
		t.Errorf("chain order: %s %s %s", chain[0].Name, chain[1].Name, chain[2].Name)
	}
	if w.EffectiveDistro() != "br" {
		t.Errorf("distro = %q", w.EffectiveDistro())
	}
	if w.EffectiveRootfsSize() != "1GiB" {
		t.Errorf("rootfs-size = %q", w.EffectiveRootfsSize())
	}
	frags := w.ConfigFragments()
	if len(frags) != 2 || !strings.HasSuffix(frags[0], "p.kfrag") || !strings.HasSuffix(frags[1], "c.kfrag") {
		t.Errorf("fragments = %v (parents must come first)", frags)
	}
}

func TestLoadByExplicitPath(t *testing.T) {
	dir := t.TempDir()
	p := writeFile(t, dir, "w.json", `{"name":"w","base":"br-base"}`)
	l := newTestLoader(t, t.TempDir())
	w, err := l.Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "w" || w.Dir != dir {
		t.Errorf("w = %+v", w)
	}
}

func TestSearchPathOrder(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	writeFile(t, dir1, "dup.json", `{"name":"dup","base":"br-base","command":"first"}`)
	writeFile(t, dir2, "dup.json", `{"name":"dup","base":"br-base","command":"second"}`)
	l := NewLoader(dir1, dir2)
	l.RegisterBuiltin(&Workload{Name: "br-base", Distro: "br"})
	w, err := l.Load("dup")
	if err != nil {
		t.Fatal(err)
	}
	if w.Command != "first" {
		t.Errorf("search order broken: got %q", w.Command)
	}
}

func TestYAMLWorkloadFile(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "w.yaml", "name: w\nbase: br-base\ncommand: echo yaml\n")
	l := newTestLoader(t, dir)
	w, err := l.Load("w")
	if err != nil {
		t.Fatal(err)
	}
	if w.Command != "echo yaml" {
		t.Errorf("command = %q", w.Command)
	}
}

func TestMissingWorkload(t *testing.T) {
	l := newTestLoader(t, t.TempDir())
	if _, err := l.Load("ghost"); err == nil {
		t.Error("expected error for missing workload")
	}
	if _, err := l.Load("ghost.json"); err == nil {
		t.Error("expected error for missing workload file")
	}
}

func TestInheritanceCycle(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "a.json", `{"name":"a","base":"b"}`)
	writeFile(t, dir, "b.json", `{"name":"b","base":"a"}`)
	l := newTestLoader(t, dir)
	if _, err := l.Load("a"); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("expected cycle error, got %v", err)
	}
}

func TestJobsImplicitBase(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "multi.json", `{
  "name": "multi", "base": "br-base", "rootfs-size": "2GiB",
  "jobs": [
    {"name": "client", "command": "run client"},
    {"name": "server", "base": "bare-metal", "bin": "serve"}
  ]}`)
	l := newTestLoader(t, dir)
	w, err := l.Load("multi")
	if err != nil {
		t.Fatal(err)
	}
	client, server := w.Jobs[0], w.Jobs[1]
	// "Jobs are implicitly based on the top level workload description".
	if client.Parent() != w {
		t.Error("client should inherit from top-level workload")
	}
	if client.EffectiveRootfsSize() != "2GiB" {
		t.Errorf("client rootfs = %q", client.EffectiveRootfsSize())
	}
	if client.EffectiveDistro() != "br" {
		t.Errorf("client distro = %q", client.EffectiveDistro())
	}
	// Explicit base overrides the implicit one.
	if server.EffectiveDistro() != "bare" {
		t.Errorf("server distro = %q", server.EffectiveDistro())
	}
}

func TestDuplicateJobNames(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "w.json", `{"name":"w","base":"br-base","jobs":[{"name":"x"},{"name":"x"}]}`)
	l := newTestLoader(t, dir)
	if _, err := l.Load("w"); err == nil {
		t.Error("expected duplicate job error")
	}
}

func TestBuiltinDuplicate(t *testing.T) {
	l := NewLoader()
	if err := l.RegisterBuiltin(&Workload{Name: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := l.RegisterBuiltin(&Workload{Name: "x"}); err == nil {
		t.Error("expected duplicate builtin error")
	}
	if err := l.RegisterBuiltin(&Workload{}); err == nil {
		t.Error("expected unnamed builtin error")
	}
}

func TestHashChangesWithAncestry(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.json", `{"name":"p","base":"br-base","command":"v1"}`)
	writeFile(t, dir, "c.json", `{"name":"c","base":"p"}`)
	l := newTestLoader(t, dir)
	c1, _ := l.Load("c")
	h1 := c1.Hash()

	// Changing only the parent must change the child's hash.
	writeFile(t, dir, "p.json", `{"name":"p","base":"br-base","command":"v2"}`)
	c2, _ := l.Load("c")
	if c2.Hash() == h1 {
		t.Error("hash insensitive to parent change")
	}
}

func TestModulesMergeAcrossChain(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.json", `{"name":"p","base":"br-base","linux":{"modules":{"icenic":"drv/icenic","pfa":"drv/pfa-v1"}}}`)
	writeFile(t, dir, "c.json", `{"name":"c","base":"p","linux":{"modules":{"pfa":"drv/pfa-v2"}}}`)
	l := newTestLoader(t, dir)
	w, err := l.Load("c")
	if err != nil {
		t.Fatal(err)
	}
	mods := w.Modules()
	if len(mods) != 2 {
		t.Fatalf("modules = %v", mods)
	}
	if !strings.HasSuffix(mods["pfa"], "drv/pfa-v2") {
		t.Errorf("child module should override: %v", mods)
	}
}

func TestParseRootfsSize(t *testing.T) {
	cases := map[string]int64{
		"3GiB":   3 << 30,
		"512MiB": 512 << 20,
		"1k":     1 << 10,
		"4096":   4096,
		"2GB":    2 << 30,
	}
	for in, want := range cases {
		got, err := ParseRootfsSize(in)
		if err != nil || got != want {
			t.Errorf("ParseRootfsSize(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"abc", "-5MiB", "0"} {
		if _, err := ParseRootfsSize(bad); err == nil {
			t.Errorf("ParseRootfsSize(%q): expected error", bad)
		}
	}
	if v, err := ParseRootfsSize(""); v != 0 || err != nil {
		t.Error("empty size should be 0, nil")
	}
}

func TestEffectiveArgsConcatenate(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "p.json", `{"name":"p","base":"br-base","qemu-args":["-m","4G"]}`)
	writeFile(t, dir, "c.json", `{"name":"c","base":"p","qemu-args":["-smp","2"]}`)
	l := newTestLoader(t, dir)
	w, _ := l.Load("c")
	args := w.EffectiveQemuArgs()
	want := []string{"-m", "4G", "-smp", "2"}
	if len(args) != 4 {
		t.Fatalf("args = %v", args)
	}
	for i := range want {
		if args[i] != want[i] {
			t.Errorf("args[%d] = %q", i, args[i])
		}
	}
}

func TestNameDefaultsFromFilename(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "unnamed.json", `{"base":"br-base"}`)
	l := newTestLoader(t, dir)
	w, err := l.Load("unnamed")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "unnamed" {
		t.Errorf("name = %q", w.Name)
	}
}

func TestBlockScalarCommand(t *testing.T) {
	// Real FireMarshal workloads use YAML block scalars for multi-line
	// boot commands.
	dir := t.TempDir()
	writeFile(t, dir, "w.yaml", `name: w
base: br-base
command: |-
  echo line one
  echo line two
`)
	l := newTestLoader(t, dir)
	w, err := l.Load("w")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.Command, "line one") || !strings.Contains(w.Command, "line two") {
		t.Errorf("command = %q", w.Command)
	}
}

// Property: for random inheritance chains, effective options resolve to the
// nearest definition and Chain() has the right shape.
func TestQuickInheritanceResolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "spec-quick-*")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		l := newTestLoaderQuick(dir)

		depth := rng.Intn(6) + 1
		// Each level may or may not set rootfs-size; record the deepest
		// setter.
		wantSize := ""
		parent := "br-base"
		for i := 0; i < depth; i++ {
			name := fmt.Sprintf("w%d", i)
			size := ""
			if rng.Intn(2) == 0 {
				size = fmt.Sprintf("%dMiB", rng.Intn(100)+1)
				wantSize = size
			}
			doc := fmt.Sprintf(`{"name":%q,"base":%q`, name, parent)
			if size != "" {
				doc += fmt.Sprintf(`,"rootfs-size":%q`, size)
			}
			doc += "}"
			if err := os.WriteFile(filepath.Join(dir, name+".json"), []byte(doc), 0o644); err != nil {
				return false
			}
			parent = name
		}
		w, err := l.Load(parent)
		if err != nil {
			return false
		}
		if len(w.Chain()) != depth+1 {
			return false
		}
		return w.EffectiveRootfsSize() == wantSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func newTestLoaderQuick(dir string) *Loader {
	l := NewLoader(dir)
	l.RegisterBuiltin(&Workload{Name: "br-base", Distro: "br", Board: "default"})
	return l
}
