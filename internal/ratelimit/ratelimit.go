// Package ratelimit is per-client backpressure for the serve commands:
// a token-bucket rate limit keyed by client host plus a global in-flight
// cap. Requests over either budget get 429 with an integer Retry-After
// header — the signal the cas/remote and launcher/remote clients already
// honor with jittered backoff, so an overloaded hub sheds load instead
// of timing out under it.
package ratelimit

import (
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"firemarshal/internal/obs"
)

// Options configures one Limiter.
type Options struct {
	// RPS is the sustained per-client request rate; <= 0 disables the
	// token bucket.
	RPS float64
	// Burst is the per-client bucket depth (defaults to max(2*RPS, 1)).
	Burst int
	// MaxInFlight caps concurrently-served requests across all clients;
	// <= 0 disables the cap.
	MaxInFlight int
	// RetryAfter is the hint sent with 429s (default 1s; rounded up to
	// whole seconds on the wire).
	RetryAfter time.Duration
	// Obs receives serve_throttled_total / serve_inflight (nil resolves
	// to obs.Default).
	Obs *obs.Registry
	// Now is the clock (tests inject a fake one).
	Now func() time.Time
}

// maxClients bounds the per-client bucket table; past it, the stalest
// buckets are evicted (a full bucket is equivalent to a fresh one).
const maxClients = 4096

type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter is an http.Handler middleware factory.
type Limiter struct {
	opts Options

	mu       sync.Mutex
	buckets  map[string]*bucket
	inflight int
}

// New builds a Limiter. A zero Options value passes every request
// through untouched.
func New(opts Options) *Limiter {
	if opts.Burst <= 0 {
		opts.Burst = int(2 * opts.RPS)
		if opts.Burst < 1 {
			opts.Burst = 1
		}
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Limiter{opts: opts, buckets: make(map[string]*bucket)}
}

// enabled reports whether any limit is configured.
func (l *Limiter) enabled() bool {
	return l.opts.RPS > 0 || l.opts.MaxInFlight > 0
}

// clientKey identifies the caller: the host half of RemoteAddr, so all
// connections from one peer share a bucket regardless of source port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// allow runs the token bucket for one client. Caller holds no locks.
func (l *Limiter) allow(key string) bool {
	if l.opts.RPS <= 0 {
		return true
	}
	now := l.opts.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxClients {
			l.evictLocked(now)
		}
		b = &bucket{tokens: float64(l.opts.Burst), last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.opts.RPS
	if max := float64(l.opts.Burst); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// evictLocked drops buckets that have refilled to full — clients idle
// long enough that forgetting them changes nothing.
func (l *Limiter) evictLocked(now time.Time) {
	for key, b := range l.buckets {
		idle := now.Sub(b.last).Seconds() * l.opts.RPS
		if b.tokens+idle >= float64(l.opts.Burst) {
			delete(l.buckets, key)
		}
	}
}

// acquire takes an in-flight slot; release with done().
func (l *Limiter) acquire() (ok bool, done func()) {
	if l.opts.MaxInFlight <= 0 {
		return true, func() {}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.inflight >= l.opts.MaxInFlight {
		return false, nil
	}
	l.inflight++
	l.opts.Obs.Gauge("serve_inflight").Set(float64(l.inflight))
	return true, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.inflight--
		l.opts.Obs.Gauge("serve_inflight").Set(float64(l.inflight))
	}
}

// reject sends the 429 with the Retry-After hint.
func (l *Limiter) reject(w http.ResponseWriter) {
	l.opts.Obs.Counter("serve_throttled_total").Inc()
	secs := int(l.opts.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
}

// Middleware wraps next with the limiter. With no limits configured it
// returns next unchanged.
func (l *Limiter) Middleware(next http.Handler) http.Handler {
	if !l.enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !l.allow(clientKey(r)) {
			l.reject(w)
			return
		}
		ok, done := l.acquire()
		if !ok {
			l.reject(w)
			return
		}
		defer done()
		next.ServeHTTP(w, r)
	})
}
