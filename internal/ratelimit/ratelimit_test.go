package ratelimit

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"firemarshal/internal/obs"
)

func serve(l *Limiter, remoteAddr string) *httptest.ResponseRecorder {
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	req := httptest.NewRequest("GET", "/blobs/x", nil)
	req.RemoteAddr = remoteAddr
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestDisabledPassesThrough: a zero config must return the handler
// unchanged — no wrapper in the serve path when no limits are set.
func TestDisabledPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	l := New(Options{})
	if got := l.Middleware(inner); &got != nil {
		// Can't compare handler identity through the interface directly in
		// all cases, but behaviorally every request must pass.
		for i := 0; i < 100; i++ {
			if rec := serve(l, "10.0.0.1:123"); rec.Code != http.StatusOK {
				t.Fatalf("request %d rejected by disabled limiter: %d", i, rec.Code)
			}
		}
	}
}

// TestTokenBucket: burst passes, the next request 429s with an integer
// Retry-After, and time refills the bucket.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	reg := obs.NewRegistry()
	l := New(Options{RPS: 1, Burst: 3, RetryAfter: 2 * time.Second, Obs: reg, Now: func() time.Time { return now }})

	for i := 0; i < 3; i++ {
		if rec := serve(l, "10.0.0.1:123"); rec.Code != http.StatusOK {
			t.Fatalf("burst request %d: %d", i, rec.Code)
		}
	}
	rec := serve(l, "10.0.0.1:123")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-burst request: %d, want 429", rec.Code)
	}
	ra, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || ra != 2 {
		t.Errorf("Retry-After = %q, want \"2\"", rec.Header().Get("Retry-After"))
	}
	if got := reg.Counter("serve_throttled_total").Value(); got != 1 {
		t.Errorf("serve_throttled_total = %d, want 1", got)
	}

	// One second refills one token.
	now = now.Add(time.Second)
	if rec := serve(l, "10.0.0.1:123"); rec.Code != http.StatusOK {
		t.Errorf("post-refill request: %d, want 200", rec.Code)
	}
	if rec := serve(l, "10.0.0.1:123"); rec.Code != http.StatusTooManyRequests {
		t.Errorf("second post-refill request: %d, want 429", rec.Code)
	}
}

// TestPerClientKeying: one client exhausting its bucket leaves another
// client's untouched, and ports don't split a client's budget.
func TestPerClientKeying(t *testing.T) {
	now := time.Unix(1000, 0)
	l := New(Options{RPS: 1, Burst: 1, Now: func() time.Time { return now }})
	if rec := serve(l, "10.0.0.1:111"); rec.Code != http.StatusOK {
		t.Fatal("first request rejected")
	}
	if rec := serve(l, "10.0.0.1:222"); rec.Code != http.StatusTooManyRequests {
		t.Error("same host, new port got a fresh bucket")
	}
	if rec := serve(l, "10.0.0.2:111"); rec.Code != http.StatusOK {
		t.Error("distinct host shares the first host's bucket")
	}
}

// TestMaxInFlight: the cap rejects the (n+1)-th concurrent request and
// the slot frees on completion.
func TestMaxInFlight(t *testing.T) {
	reg := obs.NewRegistry()
	l := New(Options{MaxInFlight: 2, Obs: reg})
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	h := l.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
	}))

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(port int) {
			defer wg.Done()
			req := httptest.NewRequest("GET", "/", nil)
			req.RemoteAddr = "10.0.0.1:" + strconv.Itoa(port)
			h.ServeHTTP(httptest.NewRecorder(), req)
		}(i)
	}
	<-entered
	<-entered
	if g := reg.Gauge("serve_inflight").Value(); g != 2 {
		t.Errorf("serve_inflight = %g, want 2", g)
	}

	rec := serve(l, "10.0.0.9:1")
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("over-cap request: %d, want 429", rec.Code)
	}
	close(release)
	wg.Wait()
	if rec := serve(l, "10.0.0.9:2"); rec.Code != http.StatusOK {
		t.Errorf("post-release request: %d, want 200", rec.Code)
	}
}

// TestEviction: past maxClients, idle-refilled buckets are dropped so
// the table cannot grow without bound.
func TestEviction(t *testing.T) {
	now := time.Unix(1000, 0)
	l := New(Options{RPS: 100, Burst: 1, Now: func() time.Time { return now }})
	for i := 0; i < maxClients; i++ {
		l.allow("client-" + strconv.Itoa(i))
	}
	if len(l.buckets) != maxClients {
		t.Fatalf("bucket table = %d, want %d", len(l.buckets), maxClients)
	}
	// Everyone refills within 10ms at 100 RPS; the next new client evicts.
	now = now.Add(time.Second)
	l.allow("one-more")
	if len(l.buckets) >= maxClients {
		t.Errorf("bucket table = %d after eviction, want < %d", len(l.buckets), maxClients)
	}
}
