// Package fsimg implements the filesystem images FireMarshal builds and
// manipulates: the rootfs disk image and the initramfs. Where the original
// tool manipulated ext4 images and cpio archives through guestmount and
// friends, this reproduction uses a deterministic in-memory filesystem tree
// with two interchange codecs: a compact binary image format ("MFS1") used
// for rootfs disk images, and a real cpio(newc) encoder/decoder used for the
// initramfs, matching the Linux kernel's initramfs format.
//
// Determinism matters: the paper's central claim is that the exact same
// artifacts run on every simulator, so images must serialize to identical
// bytes for identical logical contents. All codecs emit entries in sorted
// path order with no timestamps.
package fsimg

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"firemarshal/internal/hostutil"
)

// File is a node in the filesystem tree: either a regular file with Data or
// a directory with Children.
type File struct {
	Mode     uint32 // permission bits plus the directory flag (ModeDir)
	Data     []byte
	Children map[string]*File
}

// Mode flags. Only the distinctions the simulated OS cares about are kept.
const (
	ModeDir  = 0o040000
	ModeExec = 0o111
)

// IsDir reports whether the node is a directory.
func (f *File) IsDir() bool { return f.Mode&ModeDir != 0 }

// IsExec reports whether any execute bit is set.
func (f *File) IsExec() bool { return f.Mode&ModeExec != 0 }

// FS is a complete filesystem image rooted at "/".
type FS struct {
	Root *File
	// SizeLimit, when non-zero, is the logical image capacity in bytes
	// (the workload option "rootfs-size"). Writes that would exceed it fail,
	// reproducing the fixed-size disk images of the original tool.
	SizeLimit int64
}

// New returns an empty filesystem image.
func New() *FS {
	return &FS{Root: &File{Mode: ModeDir | 0o755, Children: map[string]*File{}}}
}

// clean canonicalizes p to an absolute slash path without trailing slash.
func clean(p string) (string, error) {
	if p == "" {
		return "", fmt.Errorf("fsimg: empty path")
	}
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	for _, part := range strings.Split(p, "/") {
		if part == ".." {
			return "", fmt.Errorf("fsimg: path %q escapes root", p)
		}
	}
	return path.Clean(p), nil
}

// Lookup returns the node at path p, or nil if absent.
func (fs *FS) Lookup(p string) *File {
	cp, err := clean(p)
	if err != nil {
		return nil
	}
	if cp == "/" {
		return fs.Root
	}
	cur := fs.Root
	for _, part := range strings.Split(strings.TrimPrefix(cp, "/"), "/") {
		if cur == nil || !cur.IsDir() {
			return nil
		}
		cur = cur.Children[part]
	}
	return cur
}

// MkdirAll creates a directory and any missing parents.
func (fs *FS) MkdirAll(p string, perm uint32) error {
	cp, err := clean(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return nil
	}
	cur := fs.Root
	for _, part := range strings.Split(strings.TrimPrefix(cp, "/"), "/") {
		next, ok := cur.Children[part]
		if !ok {
			next = &File{Mode: ModeDir | (perm & 0o777), Children: map[string]*File{}}
			cur.Children[part] = next
		} else if !next.IsDir() {
			return fmt.Errorf("fsimg: %q: path component is a file", p)
		}
		cur = next
	}
	return nil
}

// WriteFile creates or replaces the file at p, creating parent directories.
func (fs *FS) WriteFile(p string, data []byte, perm uint32) error {
	cp, err := clean(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("fsimg: cannot write to /")
	}
	if fs.SizeLimit > 0 {
		delta := int64(len(data))
		if old := fs.Lookup(cp); old != nil && !old.IsDir() {
			delta -= int64(len(old.Data))
		}
		if fs.TotalBytes()+delta > fs.SizeLimit {
			return fmt.Errorf("fsimg: writing %q (%d bytes) exceeds image size limit %d", p, len(data), fs.SizeLimit)
		}
	}
	dir, base := path.Split(cp)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	parent := fs.Lookup(dir)
	if existing, ok := parent.Children[base]; ok && existing.IsDir() {
		return fmt.Errorf("fsimg: %q is a directory", p)
	}
	parent.Children[base] = &File{Mode: perm & 0o7777, Data: append([]byte(nil), data...)}
	return nil
}

// ReadFile returns the contents of the file at p.
func (fs *FS) ReadFile(p string) ([]byte, error) {
	f := fs.Lookup(p)
	if f == nil {
		return nil, fmt.Errorf("fsimg: %q: no such file", p)
	}
	if f.IsDir() {
		return nil, fmt.Errorf("fsimg: %q is a directory", p)
	}
	return append([]byte(nil), f.Data...), nil
}

// Remove deletes the file or (recursively) the directory at p.
func (fs *FS) Remove(p string) error {
	cp, err := clean(p)
	if err != nil {
		return err
	}
	if cp == "/" {
		return fmt.Errorf("fsimg: cannot remove /")
	}
	dir, base := path.Split(cp)
	parent := fs.Lookup(dir)
	if parent == nil || !parent.IsDir() {
		return fmt.Errorf("fsimg: %q: no such file", p)
	}
	if _, ok := parent.Children[base]; !ok {
		return fmt.Errorf("fsimg: %q: no such file", p)
	}
	delete(parent.Children, base)
	return nil
}

// List returns the sorted child names of the directory at p.
func (fs *FS) List(p string) ([]string, error) {
	f := fs.Lookup(p)
	if f == nil {
		return nil, fmt.Errorf("fsimg: %q: no such directory", p)
	}
	if !f.IsDir() {
		return nil, fmt.Errorf("fsimg: %q is not a directory", p)
	}
	names := make([]string, 0, len(f.Children))
	for name := range f.Children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Walk visits every node in sorted path order. Directories are visited
// before their children. The root itself is not visited.
func (fs *FS) Walk(fn func(p string, f *File) error) error {
	return walk(fs.Root, "", fn)
}

func walk(dir *File, prefix string, fn func(string, *File) error) error {
	names := make([]string, 0, len(dir.Children))
	for name := range dir.Children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		child := dir.Children[name]
		p := prefix + "/" + name
		if err := fn(p, child); err != nil {
			return err
		}
		if child.IsDir() {
			if err := walk(child, p, fn); err != nil {
				return err
			}
		}
	}
	return nil
}

// Clone returns a deep copy, used when a child workload's image starts from
// a copy of its parent's image (build step 5a in the paper).
func (fs *FS) Clone() *FS {
	return &FS{Root: cloneFile(fs.Root), SizeLimit: fs.SizeLimit}
}

func cloneFile(f *File) *File {
	nf := &File{Mode: f.Mode}
	if f.Data != nil {
		nf.Data = append([]byte(nil), f.Data...)
	}
	if f.Children != nil {
		nf.Children = make(map[string]*File, len(f.Children))
		for name, child := range f.Children {
			nf.Children[name] = cloneFile(child)
		}
	}
	return nf
}

// Overlay copies every node of src into fs, overwriting existing files.
// This implements the workload "overlay" option.
func (fs *FS) Overlay(src *FS) error {
	return src.Walk(func(p string, f *File) error {
		if f.IsDir() {
			return fs.MkdirAll(p, f.Mode&0o777)
		}
		return fs.WriteFile(p, f.Data, f.Mode)
	})
}

// TotalBytes returns the sum of all file sizes.
func (fs *FS) TotalBytes() int64 {
	var total int64
	fs.Walk(func(_ string, f *File) error {
		if !f.IsDir() {
			total += int64(len(f.Data))
		}
		return nil
	})
	return total
}

// NumFiles returns the number of regular files in the image.
func (fs *FS) NumFiles() int {
	n := 0
	fs.Walk(func(_ string, f *File) error {
		if !f.IsDir() {
			n++
		}
		return nil
	})
	return n
}

// Hash returns a deterministic content hash of the whole image, used by the
// dependency tracker and by the artifact-identity tests.
func (fs *FS) Hash() string {
	var parts []string
	fs.Walk(func(p string, f *File) error {
		if f.IsDir() {
			parts = append(parts, fmt.Sprintf("d:%s:%o", p, f.Mode))
		} else {
			parts = append(parts, fmt.Sprintf("f:%s:%o:%s", p, f.Mode, hostutil.HashBytes(f.Data)))
		}
		return nil
	})
	return hostutil.HashStrings(parts...)
}
