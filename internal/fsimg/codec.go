package fsimg

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Binary image format ("MFS1"):
//
//	magic   [4]byte  "MFS1"
//	limit   uint64   size limit (0 = unlimited)
//	count   uint32   number of entries
//	entries, each:
//	   pathLen uint32, path []byte
//	   mode    uint32
//	   dataLen uint64, data []byte   (dataLen = 0 and mode&ModeDir for dirs)
//	crc     uint32   IEEE CRC-32 of everything before it
//
// Entries are emitted in sorted path order so identical logical images
// produce identical bytes.

var magic = [4]byte{'M', 'F', 'S', '1'}

// Encode serializes the image to its deterministic binary form.
func (fs *FS) Encode() []byte {
	var buf bytes.Buffer
	buf.Write(magic[:])
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(fs.SizeLimit))
	buf.Write(scratch[:8])

	type entry struct {
		path string
		f    *File
	}
	var entries []entry
	fs.Walk(func(p string, f *File) error {
		entries = append(entries, entry{p, f})
		return nil
	})
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(entries)))
	buf.Write(scratch[:4])
	for _, e := range entries {
		binary.LittleEndian.PutUint32(scratch[:4], uint32(len(e.path)))
		buf.Write(scratch[:4])
		buf.WriteString(e.path)
		binary.LittleEndian.PutUint32(scratch[:4], e.f.Mode)
		buf.Write(scratch[:4])
		if e.f.IsDir() {
			binary.LittleEndian.PutUint64(scratch[:8], 0)
			buf.Write(scratch[:8])
		} else {
			binary.LittleEndian.PutUint64(scratch[:8], uint64(len(e.f.Data)))
			buf.Write(scratch[:8])
			buf.Write(e.f.Data)
		}
	}
	crc := crc32.ChecksumIEEE(buf.Bytes())
	binary.LittleEndian.PutUint32(scratch[:4], crc)
	buf.Write(scratch[:4])
	return buf.Bytes()
}

// Decode parses a binary image produced by Encode.
func Decode(data []byte) (*FS, error) {
	if len(data) < 4+8+4+4 {
		return nil, fmt.Errorf("fsimg: image too short (%d bytes)", len(data))
	}
	if !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("fsimg: bad magic %q", data[:4])
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	wantCRC := binary.LittleEndian.Uint32(crcBytes)
	if got := crc32.ChecksumIEEE(body); got != wantCRC {
		return nil, fmt.Errorf("fsimg: CRC mismatch: image corrupt (got %08x want %08x)", got, wantCRC)
	}
	fs := New()
	off := 4
	fs.SizeLimit = int64(binary.LittleEndian.Uint64(body[off:]))
	off += 8
	count := binary.LittleEndian.Uint32(body[off:])
	off += 4
	for i := uint32(0); i < count; i++ {
		if off+4 > len(body) {
			return nil, fmt.Errorf("fsimg: truncated entry %d", i)
		}
		plen := int(binary.LittleEndian.Uint32(body[off:]))
		off += 4
		if off+plen+4+8 > len(body) {
			return nil, fmt.Errorf("fsimg: truncated entry %d", i)
		}
		p := string(body[off : off+plen])
		off += plen
		mode := binary.LittleEndian.Uint32(body[off:])
		off += 4
		dlen := int(binary.LittleEndian.Uint64(body[off:]))
		off += 8
		if off+dlen > len(body) {
			return nil, fmt.Errorf("fsimg: truncated data for %q", p)
		}
		if mode&ModeDir != 0 {
			if err := fs.MkdirAll(p, mode&0o777); err != nil {
				return nil, err
			}
		} else {
			// Bypass the size limit during decode: the encoded image was
			// valid when written.
			limit := fs.SizeLimit
			fs.SizeLimit = 0
			err := fs.WriteFile(p, body[off:off+dlen], mode)
			fs.SizeLimit = limit
			if err != nil {
				return nil, err
			}
		}
		off += dlen
	}
	if off != len(body) {
		return nil, fmt.Errorf("fsimg: %d trailing bytes", len(body)-off)
	}
	return fs, nil
}
