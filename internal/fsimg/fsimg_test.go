package fsimg

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestWriteRead(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/etc/hostname", []byte("firemarshal"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadFile("/etc/hostname")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "firemarshal" {
		t.Errorf("got %q", data)
	}
}

func TestImplicitParents(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/a/b/c/d.txt", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, dir := range []string{"/a", "/a/b", "/a/b/c"} {
		f := fs.Lookup(dir)
		if f == nil || !f.IsDir() {
			t.Errorf("%s: not a directory", dir)
		}
	}
}

func TestRelativePathNormalized(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("etc/issue", []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fs.Lookup("/etc/issue") == nil {
		t.Error("relative write not normalized to absolute")
	}
}

func TestPathEscapeRejected(t *testing.T) {
	fs := New()
	if err := fs.WriteFile("/../evil", []byte("x"), 0o644); err == nil {
		t.Error("expected error for path escaping root")
	}
}

func TestWriteOverDirectoryFails(t *testing.T) {
	fs := New()
	fs.MkdirAll("/etc", 0o755)
	if err := fs.WriteFile("/etc", []byte("x"), 0o644); err == nil {
		t.Error("expected error writing over a directory")
	}
}

func TestMkdirOverFileFails(t *testing.T) {
	fs := New()
	fs.WriteFile("/f", []byte("x"), 0o644)
	if err := fs.MkdirAll("/f/sub", 0o755); err == nil {
		t.Error("expected error mkdir through a file")
	}
}

func TestRemove(t *testing.T) {
	fs := New()
	fs.WriteFile("/a/b", []byte("x"), 0o644)
	if err := fs.Remove("/a/b"); err != nil {
		t.Fatal(err)
	}
	if fs.Lookup("/a/b") != nil {
		t.Error("file still present after Remove")
	}
	if err := fs.Remove("/a/b"); err == nil {
		t.Error("expected error removing missing file")
	}
	if err := fs.Remove("/"); err == nil {
		t.Error("expected error removing root")
	}
}

func TestList(t *testing.T) {
	fs := New()
	fs.WriteFile("/d/z", nil, 0o644)
	fs.WriteFile("/d/a", nil, 0o644)
	fs.MkdirAll("/d/m", 0o755)
	names, err := fs.List("/d")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"a", "m", "z"}) {
		t.Errorf("got %v", names)
	}
}

func TestSizeLimit(t *testing.T) {
	fs := New()
	fs.SizeLimit = 10
	if err := fs.WriteFile("/small", []byte("12345"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteFile("/big", []byte("1234567890"), 0o644); err == nil {
		t.Error("expected size-limit error")
	}
	// Overwriting the same file should account for the freed bytes.
	if err := fs.WriteFile("/small", []byte("1234567890"), 0o644); err != nil {
		t.Errorf("overwrite within limit failed: %v", err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", []byte("orig"), 0o644)
	cp := fs.Clone()
	cp.WriteFile("/a", []byte("changed"), 0o644)
	cp.WriteFile("/new", []byte("n"), 0o644)
	data, _ := fs.ReadFile("/a")
	if string(data) != "orig" {
		t.Error("clone mutation leaked into original")
	}
	if fs.Lookup("/new") != nil {
		t.Error("clone file leaked into original")
	}
}

func TestOverlay(t *testing.T) {
	base := New()
	base.WriteFile("/etc/inittab", []byte("base"), 0o644)
	base.WriteFile("/keep", []byte("keep"), 0o644)
	over := New()
	over.WriteFile("/etc/inittab", []byte("overlay"), 0o644)
	over.WriteFile("/bench/run", []byte("bin"), 0o755)
	if err := base.Overlay(over); err != nil {
		t.Fatal(err)
	}
	d, _ := base.ReadFile("/etc/inittab")
	if string(d) != "overlay" {
		t.Errorf("overlay did not overwrite: %q", d)
	}
	d, _ = base.ReadFile("/keep")
	if string(d) != "keep" {
		t.Error("overlay destroyed unrelated file")
	}
	f := base.Lookup("/bench/run")
	if f == nil || !f.IsExec() {
		t.Error("overlay lost exec bit")
	}
}

func TestHashDeterministicAndSensitive(t *testing.T) {
	build := func(order []string) *FS {
		fs := New()
		for _, p := range order {
			fs.WriteFile(p, []byte("data-"+p), 0o644)
		}
		return fs
	}
	a := build([]string{"/x", "/y", "/z"})
	b := build([]string{"/z", "/x", "/y"})
	if a.Hash() != b.Hash() {
		t.Error("hash depends on insertion order")
	}
	b.WriteFile("/x", []byte("different"), 0o644)
	if a.Hash() == b.Hash() {
		t.Error("hash insensitive to content change")
	}
	c := build([]string{"/x", "/y", "/z"})
	c.Lookup("/x").Mode = 0o755
	if a.Hash() == c.Hash() {
		t.Error("hash insensitive to mode change")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	fs := New()
	fs.SizeLimit = 1 << 20
	fs.WriteFile("/bin/bench", []byte{0x7f, 0x45, 0x4c, 0x46, 0, 1, 2, 3}, 0o755)
	fs.WriteFile("/etc/conf", []byte("key=value\n"), 0o644)
	fs.MkdirAll("/empty/dir", 0o700)
	enc := fs.Encode()
	back, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != fs.Hash() {
		t.Error("round trip changed content hash")
	}
	if back.SizeLimit != fs.SizeLimit {
		t.Errorf("size limit lost: %d", back.SizeLimit)
	}
	d := back.Lookup("/empty/dir")
	if d == nil || !d.IsDir() || d.Mode&0o777 != 0o700 {
		t.Errorf("empty dir not preserved: %+v", d)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	mk := func() *FS {
		fs := New()
		for i := 0; i < 50; i++ {
			fs.WriteFile(fmt.Sprintf("/f%02d", i), []byte{byte(i)}, 0o644)
		}
		return fs
	}
	if !bytes.Equal(mk().Encode(), mk().Encode()) {
		t.Error("encoding is not deterministic")
	}
}

func TestDecodeCorruption(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", []byte("hello"), 0o644)
	enc := fs.Encode()

	flip := append([]byte(nil), enc...)
	flip[len(flip)/2] ^= 0xff
	if _, err := Decode(flip); err == nil {
		t.Error("expected CRC error for corrupted image")
	}
	if _, err := Decode(enc[:10]); err == nil {
		t.Error("expected error for truncated image")
	}
	bad := append([]byte(nil), enc...)
	copy(bad[:4], "XXXX")
	if _, err := Decode(bad); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestCPIORoundTrip(t *testing.T) {
	fs := New()
	fs.WriteFile("/init", []byte("#!/bin/mshell\nload_modules\n"), 0o755)
	fs.WriteFile("/lib/modules/pfa.ko", []byte{1, 2, 3, 4, 5}, 0o644)
	fs.MkdirAll("/dev", 0o755)
	arch := fs.EncodeCPIO()
	back, err := DecodeCPIO(arch)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != fs.Hash() {
		t.Error("cpio round trip changed contents")
	}
}

func TestCPIOFormatDetails(t *testing.T) {
	fs := New()
	fs.WriteFile("/f", []byte("x"), 0o644)
	arch := fs.EncodeCPIO()
	if string(arch[:6]) != "070701" {
		t.Errorf("bad newc magic: %q", arch[:6])
	}
	if !bytes.Contains(arch, []byte("TRAILER!!!")) {
		t.Error("missing trailer")
	}
	if len(arch)%4 != 0 {
		t.Error("archive not 4-byte aligned")
	}
}

func TestCPIOTruncated(t *testing.T) {
	fs := New()
	fs.WriteFile("/f", bytes.Repeat([]byte("a"), 100), 0o644)
	arch := fs.EncodeCPIO()
	for _, cut := range []int{5, 50, len(arch) - 8} {
		if _, err := DecodeCPIO(arch[:cut]); err == nil {
			t.Errorf("cut=%d: expected error", cut)
		}
	}
}

// Property: any set of generated paths/contents survives both codecs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := New()
		n := rng.Intn(20) + 1
		for i := 0; i < n; i++ {
			depth := rng.Intn(4) + 1
			p := ""
			for d := 0; d < depth; d++ {
				p += fmt.Sprintf("/d%d", rng.Intn(5))
			}
			p += fmt.Sprintf("/file%d", i)
			data := make([]byte, rng.Intn(256))
			rng.Read(data)
			mode := uint32(0o644)
			if rng.Intn(2) == 0 {
				mode = 0o755
			}
			if err := fs.WriteFile(p, data, mode); err != nil {
				return false
			}
		}
		bin, err := Decode(fs.Encode())
		if err != nil || bin.Hash() != fs.Hash() {
			return false
		}
		cp, err := DecodeCPIO(fs.EncodeCPIO())
		return err == nil && cp.Hash() == fs.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Overlay is idempotent (applying the same overlay twice equals once).
func TestQuickOverlayIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := New()
		over := New()
		for i := 0; i < 10; i++ {
			p := fmt.Sprintf("/p%d", rng.Intn(15))
			base.WriteFile(p, []byte{byte(rng.Intn(256))}, 0o644)
			q := fmt.Sprintf("/p%d", rng.Intn(15))
			over.WriteFile(q, []byte{byte(rng.Intn(256))}, 0o644)
		}
		once := base.Clone()
		if err := once.Overlay(over); err != nil {
			return false
		}
		twice := once.Clone()
		if err := twice.Overlay(over); err != nil {
			return false
		}
		return once.Hash() == twice.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTotalBytesAndNumFiles(t *testing.T) {
	fs := New()
	fs.WriteFile("/a", make([]byte, 10), 0o644)
	fs.WriteFile("/b/c", make([]byte, 20), 0o644)
	if fs.TotalBytes() != 30 {
		t.Errorf("TotalBytes = %d", fs.TotalBytes())
	}
	if fs.NumFiles() != 2 {
		t.Errorf("NumFiles = %d", fs.NumFiles())
	}
}
