package fsimg

import (
	"bytes"
	"fmt"
	"strconv"
)

// cpio(newc) support. The Linux kernel consumes its initramfs as a newc
// ("070701") cpio archive; FireMarshal generates one containing early-boot
// drivers and init code. This file implements a faithful encoder/decoder for
// that format so initramfs artifacts are real cpio archives.

const (
	cpioMagic   = "070701"
	cpioTrailer = "TRAILER!!!"
	// Mode type bits from the cpio spec.
	cpioTypeMask = 0o170000
	cpioTypeDir  = 0o040000
	cpioTypeReg  = 0o100000
)

// EncodeCPIO serializes the image as a cpio(newc) archive. Inode numbers are
// assigned sequentially in sorted path order; all timestamps are zero so the
// archive is deterministic.
func (fs *FS) EncodeCPIO() []byte {
	var buf bytes.Buffer
	ino := 1
	fs.Walk(func(p string, f *File) error {
		name := p[1:] // cpio names are relative
		mode := uint32(cpioTypeReg) | f.Mode&0o7777
		var data []byte
		nlink := 1
		if f.IsDir() {
			mode = cpioTypeDir | f.Mode&0o777
			nlink = 2
		} else {
			data = f.Data
		}
		writeCPIOEntry(&buf, name, mode, ino, nlink, data)
		ino++
		return nil
	})
	writeCPIOEntry(&buf, cpioTrailer, 0, 0, 1, nil)
	return buf.Bytes()
}

func writeCPIOEntry(buf *bytes.Buffer, name string, mode uint32, ino, nlink int, data []byte) {
	// newc header: magic + 13 8-digit hex fields.
	fmt.Fprintf(buf, "%s%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X%08X",
		cpioMagic,
		ino,       // c_ino
		mode,      // c_mode
		0,         // c_uid
		0,         // c_gid
		nlink,     // c_nlink
		0,         // c_mtime
		len(data), // c_filesize
		0, 0,      // c_devmajor, c_devminor
		0, 0, // c_rdevmajor, c_rdevminor
		len(name)+1, // c_namesize (including NUL)
		0,           // c_check
	)
	buf.WriteString(name)
	buf.WriteByte(0)
	pad4(buf)
	buf.Write(data)
	pad4(buf)
}

func pad4(buf *bytes.Buffer) {
	for buf.Len()%4 != 0 {
		buf.WriteByte(0)
	}
}

// DecodeCPIO parses a cpio(newc) archive into a filesystem image.
func DecodeCPIO(data []byte) (*FS, error) {
	fs := New()
	off := 0
	for {
		if off+110 > len(data) {
			return nil, fmt.Errorf("fsimg: truncated cpio header at offset %d", off)
		}
		hdr := data[off : off+110]
		if string(hdr[:6]) != cpioMagic {
			return nil, fmt.Errorf("fsimg: bad cpio magic %q at offset %d", hdr[:6], off)
		}
		field := func(i int) (uint64, error) {
			s := string(hdr[6+8*i : 6+8*(i+1)])
			return strconv.ParseUint(s, 16, 64)
		}
		mode, err := field(1)
		if err != nil {
			return nil, fmt.Errorf("fsimg: bad cpio mode field: %v", err)
		}
		filesize, err := field(6)
		if err != nil {
			return nil, fmt.Errorf("fsimg: bad cpio filesize field: %v", err)
		}
		namesize, err := field(11)
		if err != nil {
			return nil, fmt.Errorf("fsimg: bad cpio namesize field: %v", err)
		}
		off += 110
		if off+int(namesize) > len(data) {
			return nil, fmt.Errorf("fsimg: truncated cpio name")
		}
		name := string(data[off : off+int(namesize)-1]) // strip NUL
		off += int(namesize)
		off = align4(off)
		if name == cpioTrailer {
			return fs, nil
		}
		if off+int(filesize) > len(data) {
			return nil, fmt.Errorf("fsimg: truncated cpio data for %q", name)
		}
		body := data[off : off+int(filesize)]
		off += int(filesize)
		off = align4(off)
		switch mode & cpioTypeMask {
		case cpioTypeDir:
			if err := fs.MkdirAll("/"+name, uint32(mode)&0o777); err != nil {
				return nil, err
			}
		case cpioTypeReg:
			if err := fs.WriteFile("/"+name, body, uint32(mode)&0o7777); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("fsimg: unsupported cpio entry type %o for %q", mode&cpioTypeMask, name)
		}
	}
}

func align4(n int) int {
	return (n + 3) &^ 3
}
