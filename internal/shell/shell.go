// Package shell implements the guest shell used by the simulated Linux
// distributions to run init scripts, guest-init scripts, and workload
// run/command scripts. It is deliberately a small POSIX-sh subset — the
// Buildroot base is "a bare-bones Linux distribution designed for embedded
// workloads" (§IV-A.2) — but covers everything FireMarshal workloads do:
// launching guest executables (with arguments), output redirection into the
// image, variables and positional parameters, and the handful of utilities
// benchmark scripts rely on.
//
// Guest executables are MEX1 binaries stored in the filesystem image and
// executed on the node's simulation platform, so a script's behaviour (and
// its cycle cost on the cycle-exact platform) flows entirely from the built
// artifacts.
package shell

import (
	"fmt"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"

	"firemarshal/internal/fsimg"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim"
)

// CommandOverheadCycles models the OS cost of spawning one command.
const CommandOverheadCycles = 2_000

// Env is one shell execution environment.
type Env struct {
	// FS is the root filesystem the shell operates on.
	FS *fsimg.FS
	// Platform executes guest binaries.
	Platform sim.Platform
	// Console receives command output that is not redirected.
	Console io.Writer
	// Vars holds shell variables.
	Vars map[string]string
	// PkgInstall, when set, implements `pkg install <name>` (the Fedora
	// base's package manager; absent on Buildroot).
	PkgInstall func(name string) error

	// PoweroffRequested is set when the script ran `poweroff`.
	PoweroffRequested bool
	// LastExit is the exit status of the last command.
	LastExit int64

	depth int
}

// maxDepth bounds script recursion.
const maxDepth = 16

// Run interprets a script with positional arguments.
func (e *Env) Run(script string, args ...string) error {
	if e.Vars == nil {
		e.Vars = map[string]string{}
	}
	if e.depth >= maxDepth {
		return fmt.Errorf("shell: script recursion too deep")
	}
	e.depth++
	defer func() { e.depth-- }()

	for ln, raw := range strings.Split(script, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Sequential separators. `&&` short-circuits, `;` does not.
		segments := splitOps(line)
		for _, seg := range segments {
			if seg.op == "&&" && e.LastExit != 0 {
				continue
			}
			if err := e.runCommand(seg.text, args, ln+1); err != nil {
				return err
			}
			if e.PoweroffRequested {
				return nil
			}
		}
	}
	return nil
}

type segment struct {
	text string
	op   string // separator that preceded this segment: "", ";" or "&&"
}

func splitOps(line string) []segment {
	var out []segment
	cur := strings.Builder{}
	op := ""
	inQ := byte(0)
	flush := func(nextOp string) {
		text := strings.TrimSpace(cur.String())
		if text != "" {
			out = append(out, segment{text: text, op: op})
		}
		cur.Reset()
		op = nextOp
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQ != 0:
			if c == inQ {
				inQ = 0
			}
			cur.WriteByte(c)
		case c == '\'' || c == '"':
			inQ = c
			cur.WriteByte(c)
		case c == '&' && i+1 < len(line) && line[i+1] == '&':
			flush("&&")
			i++
		case c == ';':
			flush(";")
		default:
			cur.WriteByte(c)
		}
	}
	flush("")
	return out
}

// runCommand executes one simple command.
func (e *Env) runCommand(cmdline string, posArgs []string, lineNo int) error {
	if e.Platform != nil {
		e.Platform.Charge(CommandOverheadCycles)
	}

	// Variable assignment: NAME=value (no spaces around =).
	if idx := strings.Index(cmdline, "="); idx > 0 && !strings.ContainsAny(cmdline[:idx], " \t") && isVarName(cmdline[:idx]) {
		e.Vars[cmdline[:idx]] = e.expand(strings.Trim(cmdline[idx+1:], `"'`), posArgs)
		e.LastExit = 0
		return nil
	}

	fields, redir, appendMode, err := tokenize(cmdline)
	if err != nil {
		return fmt.Errorf("shell: line %d: %w", lineNo, err)
	}
	for i := range fields {
		fields[i] = e.expand(fields[i], posArgs)
	}
	if redir != "" {
		redir = e.expand(redir, posArgs)
	}
	if len(fields) == 0 {
		return nil
	}

	out := e.Console
	var capture *strings.Builder
	if redir != "" {
		capture = &strings.Builder{}
		if appendMode {
			if old, err := e.FS.ReadFile(redir); err == nil {
				capture.Write(old)
			}
		}
		out = capture
	}

	err = e.dispatch(fields, out, lineNo)
	if err != nil {
		return err
	}
	if capture != nil {
		if werr := e.FS.WriteFile(redir, []byte(capture.String()), 0o644); werr != nil {
			return fmt.Errorf("shell: line %d: redirect: %w", lineNo, werr)
		}
	}
	return nil
}

func (e *Env) dispatch(fields []string, out io.Writer, lineNo int) error {
	name, args := fields[0], fields[1:]
	switch name {
	case "echo":
		fmt.Fprintln(out, strings.Join(args, " "))
		e.LastExit = 0
	case "cat":
		if len(args) != 1 {
			return fmt.Errorf("shell: line %d: cat needs one path", lineNo)
		}
		data, err := e.FS.ReadFile(args[0])
		if err != nil {
			e.LastExit = 1
			fmt.Fprintf(out, "cat: %s: No such file or directory\n", args[0])
			return nil
		}
		out.Write(data)
		e.LastExit = 0
	case "mkdir":
		paths := args
		if len(paths) > 0 && paths[0] == "-p" {
			paths = paths[1:]
		}
		for _, p := range paths {
			if err := e.FS.MkdirAll(p, 0o755); err != nil {
				return fmt.Errorf("shell: line %d: mkdir: %w", lineNo, err)
			}
		}
		e.LastExit = 0
	case "cp":
		if len(args) != 2 {
			return fmt.Errorf("shell: line %d: cp needs src and dst", lineNo)
		}
		data, err := e.FS.ReadFile(args[0])
		if err != nil {
			return fmt.Errorf("shell: line %d: cp: %w", lineNo, err)
		}
		mode := uint32(0o644)
		if f := e.FS.Lookup(args[0]); f != nil {
			mode = f.Mode
		}
		if err := e.FS.WriteFile(args[1], data, mode); err != nil {
			return fmt.Errorf("shell: line %d: cp: %w", lineNo, err)
		}
		e.LastExit = 0
	case "rm":
		paths := args
		if len(paths) > 0 && (paths[0] == "-f" || paths[0] == "-rf") {
			paths = paths[1:]
		}
		for _, p := range paths {
			e.FS.Remove(p) // rm -f semantics: missing files are fine
		}
		e.LastExit = 0
	case "ls":
		dir := "/"
		if len(args) == 1 {
			dir = args[0]
		}
		names, err := e.FS.List(dir)
		if err != nil {
			e.LastExit = 1
			fmt.Fprintf(out, "ls: %s: No such file or directory\n", dir)
			return nil
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintln(out, n)
		}
		e.LastExit = 0
	case "sleep":
		secs, err := strconv.ParseFloat(argOr(args, 0, "0"), 64)
		if err != nil {
			return fmt.Errorf("shell: line %d: sleep: bad duration", lineNo)
		}
		if e.Platform != nil {
			// Modeled: 1ms of guest time per 0.001s at 1GHz ~ 1e6 cycles/ms.
			e.Platform.Charge(uint64(secs * 1e9))
		}
		e.LastExit = 0
	case "uname":
		// uname [-a]: report the simulated system identity from the booted
		// kernel (set by the OS layer in Vars).
		ver := e.Vars["KERNEL_VERSION"]
		if ver == "" {
			ver = "unknown"
		}
		host := e.Vars["HOSTNAME"]
		if host == "" {
			host = "localhost"
		}
		if len(args) > 0 && args[0] == "-a" {
			fmt.Fprintf(out, "Linux %s %s riscv64 GNU/Linux\n", host, ver)
		} else {
			fmt.Fprintln(out, "Linux")
		}
		e.LastExit = 0
	case "true":
		e.LastExit = 0
	case "false":
		e.LastExit = 1
	case "poweroff", "halt", "shutdown":
		e.PoweroffRequested = true
		e.LastExit = 0
	case "insmod":
		// Module loading is handled by the OS layer during early boot;
		// scripts may still call it (idempotent no-op here).
		fmt.Fprintf(out, "insmod: loaded %s\n", path.Base(argOr(args, 0, "?")))
		e.LastExit = 0
	case "pkg":
		if len(args) != 2 || args[0] != "install" {
			return fmt.Errorf("shell: line %d: usage: pkg install <name>", lineNo)
		}
		if e.PkgInstall == nil {
			e.LastExit = 127
			fmt.Fprintf(out, "pkg: command not found (no package manager on this distribution)\n")
			return nil
		}
		if err := e.PkgInstall(args[1]); err != nil {
			return fmt.Errorf("shell: line %d: %w", lineNo, err)
		}
		fmt.Fprintf(out, "installed %s\n", args[1])
		e.LastExit = 0
	case "exit":
		code, _ := strconv.ParseInt(argOr(args, 0, "0"), 10, 64)
		e.LastExit = code
		e.PoweroffRequested = true
	default:
		return e.execFile(name, args, out, lineNo)
	}
	return nil
}

// execFile runs an executable or script from the image.
func (e *Env) execFile(name string, args []string, out io.Writer, lineNo int) error {
	p := name
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	f := e.FS.Lookup(p)
	if f == nil || f.IsDir() {
		return fmt.Errorf("shell: line %d: %s: command not found", lineNo, name)
	}
	if !f.IsExec() {
		return fmt.Errorf("shell: line %d: %s: permission denied", lineNo, name)
	}
	data := f.Data
	// Guest executable?
	if len(data) >= 4 && string(data[:4]) == "MEX1" {
		if e.Platform == nil {
			return fmt.Errorf("shell: line %d: no platform to execute %s", lineNo, name)
		}
		exe, err := isa.DecodeExecutable(data)
		if err != nil {
			return fmt.Errorf("shell: line %d: %s: %w", lineNo, name, err)
		}
		res, err := e.Platform.Exec(exe, out, append([]string{name}, args...)...)
		if err != nil {
			return fmt.Errorf("shell: line %d: %s: %w", lineNo, name, err)
		}
		e.LastExit = res.Exit
		return nil
	}
	// Shell script (with or without shebang).
	return e.Run(string(data), args...)
}

// expand substitutes $VAR, ${VAR}, and positional $1..$9, $0, $#.
func (e *Env) expand(s string, posArgs []string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '$' || i+1 >= len(s) {
			b.WriteByte(c)
			continue
		}
		j := i + 1
		braced := false
		if s[j] == '{' {
			braced = true
			j++
		}
		start := j
		if j < len(s) && ((s[j] >= '0' && s[j] <= '9') || s[j] == '#' || s[j] == '?') {
			j++ // positional/special params are single-char
		} else {
			for j < len(s) && isVarChar(s[j]) {
				j++
			}
		}
		if j == start {
			b.WriteByte(c)
			continue
		}
		name := s[start:j]
		if braced {
			if j < len(s) && s[j] == '}' {
				j++
			}
		}
		b.WriteString(e.lookupVar(name, posArgs))
		i = j - 1
	}
	return b.String()
}

func (e *Env) lookupVar(name string, posArgs []string) string {
	if name == "#" {
		return strconv.Itoa(len(posArgs))
	}
	if n, err := strconv.Atoi(name); err == nil {
		if n == 0 {
			return "script"
		}
		if n-1 < len(posArgs) {
			return posArgs[n-1]
		}
		return ""
	}
	if name == "?" {
		return strconv.FormatInt(e.LastExit, 10)
	}
	return e.Vars[name]
}

func isVarName(s string) bool {
	for i, c := range s {
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return s != ""
}

func isVarChar(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// tokenize splits a command line into fields, extracting `> file` /
// `>> file` redirection. Quotes group fields.
func tokenize(line string) (fields []string, redir string, appendMode bool, err error) {
	var cur strings.Builder
	inQ := byte(0)
	hasCur := false
	var rawFields []string
	flush := func() {
		if hasCur {
			rawFields = append(rawFields, cur.String())
			cur.Reset()
			hasCur = false
		}
	}
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inQ != 0:
			if c == inQ {
				inQ = 0
			} else {
				cur.WriteByte(c)
			}
		case c == '\'' || c == '"':
			inQ = c
			hasCur = true
		case c == ' ' || c == '\t':
			flush()
		case c == '>':
			flush()
			if i+1 < len(line) && line[i+1] == '>' {
				rawFields = append(rawFields, ">>")
				i++
			} else {
				rawFields = append(rawFields, ">")
			}
		default:
			cur.WriteByte(c)
			hasCur = true
		}
	}
	if inQ != 0 {
		return nil, "", false, fmt.Errorf("unterminated quote")
	}
	flush()

	for i := 0; i < len(rawFields); i++ {
		f := rawFields[i]
		if f == ">" || f == ">>" {
			if i+1 >= len(rawFields) {
				return nil, "", false, fmt.Errorf("redirect without target")
			}
			if redir != "" {
				return nil, "", false, fmt.Errorf("multiple redirects")
			}
			redir = rawFields[i+1]
			appendMode = f == ">>"
			i++
			continue
		}
		fields = append(fields, f)
	}
	return fields, redir, appendMode, nil
}

func argOr(args []string, i int, def string) string {
	if i < len(args) {
		return args[i]
	}
	return def
}
