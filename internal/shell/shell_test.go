package shell

import (
	"bytes"
	"strings"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/fsimg"
	"firemarshal/internal/isa"
	"firemarshal/internal/sim/funcsim"
)

func newEnv(t *testing.T) (*Env, *bytes.Buffer) {
	t.Helper()
	var console bytes.Buffer
	return &Env{
		FS:       fsimg.New(),
		Platform: funcsim.New(funcsim.Config{}),
		Console:  &console,
	}, &console
}

func TestEcho(t *testing.T) {
	e, out := newEnv(t)
	if err := e.Run("echo hello world"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "hello world\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestRedirect(t *testing.T) {
	e, out := newEnv(t)
	err := e.Run(`
echo first > /output/res.txt
echo second >> /output/res.txt
cat /output/res.txt
`)
	if err != nil {
		t.Fatal(err)
	}
	data, err := e.FS.ReadFile("/output/res.txt")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "first\nsecond\n" {
		t.Errorf("file = %q", data)
	}
	if out.String() != "first\nsecond\n" {
		t.Errorf("console = %q", out.String())
	}
}

func TestOverwriteRedirect(t *testing.T) {
	e, _ := newEnv(t)
	e.Run("echo one > /f\necho two > /f")
	data, _ := e.FS.ReadFile("/f")
	if string(data) != "two\n" {
		t.Errorf("file = %q", data)
	}
}

func TestVariables(t *testing.T) {
	e, out := newEnv(t)
	err := e.Run(`
NAME=world
GREETING="hello there"
echo $GREETING $NAME ${NAME}!
`)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != "hello there world world!\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestPositionalArgs(t *testing.T) {
	e, out := newEnv(t)
	if err := e.Run("echo $1 and $2 of $#", "alpha", "beta"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "alpha and beta of 2\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestSeparators(t *testing.T) {
	e, out := newEnv(t)
	if err := e.Run("echo a; echo b && echo c"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "a\nb\nc\n" {
		t.Errorf("out = %q", out.String())
	}
	out.Reset()
	if err := e.Run("false && echo skipped; echo ran"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "ran\n" {
		t.Errorf("&& should short-circuit: %q", out.String())
	}
}

func TestFileUtilities(t *testing.T) {
	e, out := newEnv(t)
	err := e.Run(`
mkdir -p /a/b
echo data > /a/b/f.txt
cp /a/b/f.txt /a/copy.txt
ls /a
rm /a/b/f.txt
cat /a/copy.txt
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "b\ncopy.txt") {
		t.Errorf("ls output: %q", out.String())
	}
	if !strings.HasSuffix(out.String(), "data\n") {
		t.Errorf("cat output: %q", out.String())
	}
	if e.FS.Lookup("/a/b/f.txt") != nil {
		t.Error("rm did not remove file")
	}
}

func TestCatMissingFileSetsExit(t *testing.T) {
	e, _ := newEnv(t)
	if err := e.Run("cat /nope"); err != nil {
		t.Fatal(err)
	}
	if e.LastExit != 1 {
		t.Errorf("exit = %d", e.LastExit)
	}
}

func TestPoweroff(t *testing.T) {
	e, out := newEnv(t)
	if err := e.Run("echo before\npoweroff\necho after"); err != nil {
		t.Fatal(err)
	}
	if !e.PoweroffRequested {
		t.Error("poweroff not recorded")
	}
	if strings.Contains(out.String(), "after") {
		t.Error("script continued after poweroff")
	}
}

func TestExecGuestBinary(t *testing.T) {
	e, out := newEnv(t)
	exe, err := asm.Assemble(`
_start:
    li a0, 777
    li a7, 0x101
    ecall
    li a0, 10
    li a7, 0x102
    ecall
    li a0, 5
    li a7, 93
    ecall
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.FS.WriteFile("/bin/bench", isa.EncodeExecutable(exe), 0o755)
	if err := e.Run("/bin/bench"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "777\n" {
		t.Errorf("binary output = %q", out.String())
	}
	if e.LastExit != 5 {
		t.Errorf("exit = %d", e.LastExit)
	}
}

func TestExecBinaryWithRedirect(t *testing.T) {
	e, out := newEnv(t)
	exe, _ := asm.Assemble(`
_start:
    li a0, 42
    li a7, 0x101
    ecall
    li a0, 0
    li a7, 93
    ecall
`, asm.Options{})
	e.FS.WriteFile("/bench", isa.EncodeExecutable(exe), 0o755)
	if err := e.Run("/bench > /output/r.txt"); err != nil {
		t.Fatal(err)
	}
	data, err := e.FS.ReadFile("/output/r.txt")
	if err != nil || string(data) != "42" {
		t.Errorf("redirected output = %q (%v)", data, err)
	}
	if out.Len() != 0 {
		t.Errorf("console should be empty, got %q", out.String())
	}
}

func TestGuestBinaryReceivesArgv(t *testing.T) {
	// Program prints argc then the first byte of argv[1].
	e, out := newEnv(t)
	exe, err := asm.Assemble(`
_start:
    # a0 = argc, a1 = argv
    mv s0, a0
    mv s1, a1
    mv a0, s0
    li a7, 0x101
    ecall
    li a0, ' '
    li a7, 0x102
    ecall
    ld t0, 8(s1)     # argv[1]
    lbu a0, 0(t0)
    li a7, 0x102
    ecall
    li a0, 0
    li a7, 93
    ecall
`, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.FS.WriteFile("/bench", isa.EncodeExecutable(exe), 0o755)
	if err := e.Run("/bench xyz"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "2 x" {
		t.Errorf("argv output = %q", out.String())
	}
}

func TestNestedScript(t *testing.T) {
	e, out := newEnv(t)
	e.FS.WriteFile("/inner.sh", []byte("echo inner $1\n"), 0o755)
	if err := e.Run("/inner.sh fromouter"); err != nil {
		t.Fatal(err)
	}
	if out.String() != "inner fromouter\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestScriptRecursionBounded(t *testing.T) {
	e, _ := newEnv(t)
	e.FS.WriteFile("/loop.sh", []byte("/loop.sh\n"), 0o755)
	if err := e.Run("/loop.sh"); err == nil {
		t.Error("expected recursion error")
	}
}

func TestCommandNotFound(t *testing.T) {
	e, _ := newEnv(t)
	if err := e.Run("/missing/binary"); err == nil {
		t.Error("expected command-not-found error")
	}
	e.FS.WriteFile("/notexec", []byte("data"), 0o644)
	if err := e.Run("/notexec"); err == nil {
		t.Error("expected permission error")
	}
}

func TestPkgInstall(t *testing.T) {
	e, out := newEnv(t)
	// Buildroot: no package manager.
	if err := e.Run("pkg install python3"); err != nil {
		t.Fatal(err)
	}
	if e.LastExit != 127 {
		t.Errorf("exit = %d", e.LastExit)
	}
	// Fedora: package manager available.
	installed := ""
	e.PkgInstall = func(name string) error {
		installed = name
		return nil
	}
	if err := e.Run("pkg install python3"); err != nil {
		t.Fatal(err)
	}
	if installed != "python3" || !strings.Contains(out.String(), "installed python3") {
		t.Errorf("installed=%q out=%q", installed, out.String())
	}
}

func TestQuotedFields(t *testing.T) {
	e, out := newEnv(t)
	if err := e.Run(`echo "a  b" 'c; d' plain`); err != nil {
		t.Fatal(err)
	}
	if out.String() != "a  b c; d plain\n" {
		t.Errorf("out = %q", out.String())
	}
}

func TestTokenizeErrors(t *testing.T) {
	e, _ := newEnv(t)
	for _, bad := range []string{
		`echo "unterminated`,
		"echo hi >",
		"echo a > /f > /g",
	} {
		if err := e.Run(bad); err == nil {
			t.Errorf("Run(%q): expected error", bad)
		}
	}
}

func TestChargesPlatformCycles(t *testing.T) {
	e, _ := newEnv(t)
	before := e.Platform.Cycles()
	e.Run("echo a\necho b")
	if e.Platform.Cycles()-before < 2*CommandOverheadCycles {
		t.Error("commands did not charge platform cycles")
	}
}

func TestSleepChargesCycles(t *testing.T) {
	e, _ := newEnv(t)
	before := e.Platform.Cycles()
	e.Run("sleep 0.001")
	if e.Platform.Cycles()-before < 1_000_000 {
		t.Error("sleep did not advance guest time")
	}
}

func TestExitStatusVar(t *testing.T) {
	e, out := newEnv(t)
	e.Run("false\necho $?")
	if !strings.Contains(out.String(), "1") {
		t.Errorf("$? = %q", out.String())
	}
}

func TestUname(t *testing.T) {
	e, out := newEnv(t)
	e.Vars = map[string]string{"KERNEL_VERSION": "5.7.0", "HOSTNAME": "buildroot"}
	if err := e.Run("uname -a\nuname"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Linux buildroot 5.7.0 riscv64") {
		t.Errorf("uname -a = %q", out.String())
	}
	if !strings.HasSuffix(out.String(), "Linux\n") {
		t.Errorf("plain uname = %q", out.String())
	}
}
