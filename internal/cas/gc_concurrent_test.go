package cas

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"firemarshal/internal/hostutil"
)

// TestGCSweepSparesConcurrentWrites pins the GC snapshot invariant
// deterministically: the sweep hook (which runs between mark and sweep)
// plays a client racing the collection — it writes a fresh blob and a
// fresh action. Both postdate the snapshot, so the sweep must spare them,
// while a genuinely stale blob written before the GC started is removed.
func TestGCSweepSparesConcurrentWrites(t *testing.T) {
	s := openTestStore(t)
	staleDigest, err := s.Put([]byte("stale, unreferenced"))
	if err != nil {
		t.Fatal(err)
	}
	// The mtime-after-snapshot guard compares against the GC entry time;
	// make sure the stale blob is strictly older even on coarse clocks.
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(s.blobPath(staleDigest), old, old); err != nil {
		t.Fatal(err)
	}

	var racedBlob string
	racedAction := &Action{Key: hostutil.HashBytes([]byte("raced-task")), Task: "raced"}
	s.gcSweepHook = func() {
		var err error
		if racedBlob, err = s.Put([]byte("landed mid-sweep")); err != nil {
			t.Error(err)
		}
		racedAction.Outputs = []Output{{Name: "out", Digest: racedBlob}}
		if err := s.PutAction(racedAction); err != nil {
			t.Error(err)
		}
	}

	stats, err := s.GC(map[string]bool{}, map[string]bool{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Has(staleDigest) {
		t.Fatal("stale unreferenced blob survived GC")
	}
	if stats.BlobsRemoved != 1 {
		t.Fatalf("BlobsRemoved = %d, want 1", stats.BlobsRemoved)
	}
	if !s.Has(racedBlob) {
		t.Fatal("blob put during the sweep was collected")
	}
	if _, err := s.GetAction(racedAction.Key); err != nil {
		t.Fatalf("action written during the sweep was collected: %v", err)
	}
}

// TestGCHoldProtectsPublishWindow covers the in-process guard: a publish
// holds its blob between the blob write and the action write; a sweep in
// that window (even one whose snapshot predates the blob) must not reap
// it. The blob's mtime is backdated so only the hold can save it.
func TestGCHoldProtectsPublishWindow(t *testing.T) {
	s := openTestStore(t)
	digest, err := s.Put([]byte("output bytes"))
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(s.blobPath(digest), old, old); err != nil {
		t.Fatal(err)
	}
	release := s.Hold(digest)
	if _, err := s.GC(map[string]bool{}, map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	if !s.Has(digest) {
		t.Fatal("held blob was collected mid-publish")
	}
	release()
	if err := os.Chtimes(s.blobPath(digest), old, old); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GC(map[string]bool{}, map[string]bool{}); err != nil {
		t.Fatal(err)
	}
	if s.Has(digest) {
		t.Fatal("released unreferenced blob survived the next GC")
	}
}

// TestGCUnderConcurrentTraffic races real writers against a looping
// collector under -race: publishers follow the Hold pattern (blob, then
// the referencing action, hold released after both), and at the end every
// published blob and action must exist — the sweep may only ever have
// delayed reclamation, never eaten a live entry.
func TestGCUnderConcurrentTraffic(t *testing.T) {
	s := openTestStore(t)
	const writers = 4
	const perWriter = 25

	// The collector's view of reachable build state: every key the writers
	// will publish is live (keys are deterministic). The interesting part
	// is the RACE — an action in the live set may not exist yet when a
	// mark phase runs, so its blob is unreferenced to that snapshot and
	// only the mtime/hold guards stand between it and the sweep.
	live := map[string]bool{}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			live[hostutil.HashBytes([]byte(fmt.Sprintf("task %d/%d", w, i)))] = true
		}
	}

	stop := make(chan struct{})
	var gcWG sync.WaitGroup
	gcWG.Add(1)
	go func() {
		defer gcWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.GC(live, map[string]bool{}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	type published struct {
		key    string
		digest string
	}
	results := make([][]published, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				data := []byte(fmt.Sprintf("writer %d artifact %d", w, i))
				digest := hostutil.HashBytes(data)
				release := s.Hold(digest)
				if _, err := s.Put(data); err != nil {
					t.Error(err)
					release()
					return
				}
				a := &Action{
					Key:     hostutil.HashBytes([]byte(fmt.Sprintf("task %d/%d", w, i))),
					Task:    "stress",
					Outputs: []Output{{Name: "out", Digest: digest, Size: int64(len(data))}},
				}
				if err := s.PutAction(a); err != nil {
					t.Error(err)
					release()
					return
				}
				release()
				results[w] = append(results[w], published{key: a.Key, digest: digest})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	gcWG.Wait()

	for w, pubs := range results {
		for i, p := range pubs {
			if _, err := s.GetAction(p.key); err != nil {
				t.Errorf("writer %d action %d lost: %v", w, i, err)
			}
			if !s.Has(p.digest) {
				t.Errorf("writer %d blob %d lost", w, i)
			}
		}
	}
}

// TestMigrateFlatLayout verifies the one-shot v1→v2 migration: flat
// entries written directly under blobs/ and actions/ move into their
// shard directories on Open, reads keep working, and junk that is not a
// flat entry is left alone. Running Open again is a no-op.
func TestMigrateFlatLayout(t *testing.T) {
	dir := t.TempDir()
	data := []byte("pre-sharding artifact")
	digest := hostutil.HashBytes(data)
	if err := os.MkdirAll(filepath.Join(dir, "blobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", digest), data, 0o644); err != nil {
		t.Fatal(err)
	}
	key := hostutil.HashBytes([]byte("flat task"))
	actionJSON := []byte(fmt.Sprintf(`{"key":%q,"task":"flat","outputs":[{"name":"out","digest":%q}]}`, key, digest))
	if err := os.MkdirAll(filepath.Join(dir, "actions"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "actions", key+".json"), actionJSON, 0o644); err != nil {
		t.Fatal(err)
	}
	// Junk a migration must not trip over: a dotfile and a short name.
	if err := os.WriteFile(filepath.Join(dir, "blobs", ".tmp-stale"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "blobs", "ab"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(digest)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after migration = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "blobs", digest[:2], digest)); err != nil {
		t.Fatalf("blob not in its shard: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "blobs", digest)); !os.IsNotExist(err) {
		t.Fatal("flat blob entry still present after migration")
	}
	a, err := s.GetAction(key)
	if err != nil || a.Task != "flat" {
		t.Fatalf("GetAction after migration = %+v, %v", a, err)
	}
	if _, err := os.Stat(filepath.Join(dir, "actions", key[:2], key+".json")); err != nil {
		t.Fatalf("action not in its shard: %v", err)
	}

	// Idempotent: a second Open over the sharded store changes nothing.
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("re-Open after migration: %v", err)
	}
	if got, err := s2.Get(digest); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Get after re-Open = %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "blobs", "ab")); err != nil {
		t.Fatalf("junk file was disturbed by migration: %v", err)
	}
	os.Remove(filepath.Join(dir, "blobs", "ab")) // drop junk before counting
	u, err := s2.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Blobs != 1 || u.Actions != 1 {
		t.Fatalf("Usage after migration = %+v, want 1 blob, 1 action", u)
	}

	// A mixed store (new flat entry appears, e.g. written by an old
	// binary sharing the cache) migrates on the next Open too.
	data2 := []byte("late flat entry")
	digest2 := hostutil.HashBytes(data2)
	if err := os.WriteFile(filepath.Join(dir, "blobs", digest2), data2, 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s3.Get(digest2); err != nil || !bytes.Equal(got, data2) {
		t.Fatalf("Get of late-migrated blob = %v", err)
	}
}

// TestPutStreamReadFailureClassified pins the error taxonomy the server's
// status mapping depends on: a reader that dies mid-stream yields ErrRead
// (client's fault), digest-mismatched bytes yield ErrCorrupt, and neither
// leaves a temp file behind.
func TestPutStreamReadFailureClassified(t *testing.T) {
	s := openTestStore(t)
	digest := hostutil.HashBytes([]byte("expected content"))

	_, err := s.PutStream(digest, &failAfterReader{data: []byte("expec")})
	if err == nil || !strings.Contains(err.Error(), "read failed") {
		t.Fatalf("torn-reader PutStream: %v, want ErrRead", err)
	}
	if !errors.Is(err, ErrRead) {
		t.Fatalf("torn-reader PutStream error %v does not wrap ErrRead", err)
	}

	_, err = s.PutStream(digest, bytes.NewReader([]byte("the wrong bytes")))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mismatched PutStream: %v, want ErrCorrupt", err)
	}
	if s.Has(digest) {
		t.Fatal("failed streams left a blob behind")
	}
	entries, err := os.ReadDir(filepath.Join(s.dir, "blobs", digest[:2]))
	if err == nil {
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), ".tmp-") {
				t.Fatalf("failed stream left temp file %s", e.Name())
			}
		}
	}
}

type failAfterReader struct {
	data []byte
	off  int
}

func (r *failAfterReader) Read(p []byte) (int, error) {
	if r.off < len(r.data) {
		n := copy(p, r.data[r.off:])
		r.off += n
		return n, nil
	}
	return 0, fmt.Errorf("mid-stream disconnect")
}
