package cas

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"firemarshal/internal/hostutil"
	"firemarshal/internal/obs"
)

// Remote is a second-level cache backend (the HTTP client in cas/remote
// implements it). Absent entries are reported with ErrNotFound; any other
// error counts against the remote's health. Every call takes a context so
// a hung remote is bounded by the caller's deadline (and by the client's
// own per-request timeout) instead of stalling a build until the circuit
// breaker trips.
type Remote interface {
	GetBlob(ctx context.Context, digest string) ([]byte, error)
	PutBlob(ctx context.Context, digest string, data []byte) error
	GetAction(ctx context.Context, key string) (*Action, error)
	PutAction(ctx context.Context, a *Action) error
}

// BlobStreamer is the optional streaming upgrade of Remote's GetBlob:
// the body arrives as a reader instead of one big allocation. Transfer
// paths (checkpoint fetch, cache write-through) type-assert for it and
// fall back to the buffered call when absent.
type BlobStreamer interface {
	GetBlobStream(ctx context.Context, digest string) (io.ReadCloser, int64, error)
}

// BlobFilePusher is the optional streaming upgrade of Remote's PutBlob
// for content already on disk: the implementation streams the file in
// chunks (and, over the v2 protocol, resumes a torn upload from the last
// acknowledged chunk instead of restarting).
type BlobFilePusher interface {
	PutBlobFile(ctx context.Context, digest, path string) error
}

// RateLimitedError reports a remote that answered 429 past the client's
// retry budget. It carries the server's Retry-After hint so the breaker
// can hold off exactly as long as asked instead of guessing — and it is
// deliberately NOT a health failure: a rate-limiting server is alive and
// protecting itself, so it must not trip the breaker open.
type RateLimitedError struct {
	RetryAfter time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("cas: remote rate limited (retry after %s)", e.RetryAfter)
}

// Circuit-breaker tuning.
const (
	// remoteTripThreshold is how many consecutive remote failures open
	// the breaker (graceful local-only degradation).
	remoteTripThreshold = 3
	// defaultBreakerCooldown is how long the breaker stays open before
	// letting one half-open probe through; each failed probe doubles it
	// up to maxBreakerCooldown.
	defaultBreakerCooldown = 5 * time.Second
	maxBreakerCooldown     = 2 * time.Minute
)

// Breaker states (also the cas_remote_breaker_state gauge values).
const (
	breakerClosed   = 0 // remote healthy, all calls go through
	breakerHalfOpen = 1 // cooldown elapsed, exactly one probe in flight
	breakerOpen     = 2 // remote disabled, waiting out the cooldown
)

// Cache is what the build engine talks to: a local Store, optionally backed
// by a Remote. Lookups try local first, then remote (with write-through to
// local); publishes go to local and best-effort to remote. A remote that
// keeps failing is breakered off so an unreachable server costs a bounded
// number of timeouts, never a failed build — and after a cooldown the
// breaker goes half-open and risks a single probe, so one transient blip
// no longer disables the remote for the rest of a long run.
type Cache struct {
	local  *Store
	remote Remote

	mu        sync.Mutex
	failures  int // consecutive remote failures
	state     int // breakerClosed / breakerHalfOpen / breakerOpen
	openedAt  time.Time
	cooldown  time.Duration // current open-state cooldown (doubles per failed probe)
	base      time.Duration // configured base cooldown
	probing   bool          // a half-open probe is in flight
	holdUntil time.Time     // 429 Retry-After hold, orthogonal to breaker state
	now       func() time.Time
	stats     CacheStats

	// obsReg mirrors the stats into cas_* metrics; a nil registry
	// resolves to the process-wide obs.Default.
	obsReg *obs.Registry

	// baseCtx parents every remote call. The dag engine predates contexts,
	// so builds install their run context here (SetContext) and remote
	// requests inherit its cancellation; nil means context.Background().
	baseCtx context.Context
}

// CacheStats counts one Cache's activity (in-memory, per process).
type CacheStats struct {
	// Action-cache lookups.
	Hits, Misses          uint64
	LocalHits, RemoteHits uint64
	// Artifact restores served from the cache.
	BlobsRestored, BytesRestored uint64
	RemoteBlobHits               uint64
	// Publishes into the cache.
	Published, BytesPublished uint64
	// Remote health. RemoteTripped reports the breaker fully open (it
	// goes false again once a half-open probe succeeds).
	RemoteErrors      uint64
	RemoteTripped     bool
	RemoteRateLimited uint64
	// Self-healing: corrupt local blobs rewritten from the remote.
	BlobsHealed uint64
}

// NewCache wraps a local store; remote may be nil for local-only operation.
func NewCache(local *Store, remote Remote) *Cache {
	return &Cache{
		local:    local,
		remote:   remote,
		cooldown: defaultBreakerCooldown,
		base:     defaultBreakerCooldown,
		now:      time.Now,
	}
}

// SetBreakerCooldown overrides the half-open cooldown (chaos runs and
// tests shrink it; <= 0 keeps the default).
func (c *Cache) SetBreakerCooldown(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.base = d
	c.cooldown = d
	c.mu.Unlock()
}

// Local exposes the underlying store (stats, GC, verify, serving).
func (c *Cache) Local() *Store { return c.local }

// Remote exposes the remote half (nil when no remote cache is configured).
// Callers that need raw blob access — the distributed launcher publishing
// artifacts, workers fetching them — go through it directly.
func (c *Cache) Remote() Remote { return c.remote }

// SetObs directs the cache's cas_* metrics at a specific registry (nil
// keeps the process-wide obs.Default).
func (c *Cache) SetObs(r *obs.Registry) { c.obsReg = r }

// SetContext installs the context remote calls run under. Cancelling it
// aborts in-flight remote requests promptly — a hung server can no longer
// stall a build past the caller's deadline. A nil ctx restores Background.
func (c *Cache) SetContext(ctx context.Context) {
	c.mu.Lock()
	c.baseCtx = ctx
	c.mu.Unlock()
}

func (c *Cache) ctx() context.Context {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.baseCtx == nil {
		return context.Background()
	}
	return c.baseCtx
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.RemoteTripped = c.state == breakerOpen
	return st
}

// BreakerState reports the breaker position (the gauge encoding:
// 0 closed, 1 half-open, 2 open).
func (c *Cache) BreakerState() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// setStateLocked transitions the breaker and mirrors the new state into
// the cas_remote_breaker_state gauge. Caller holds c.mu.
func (c *Cache) setStateLocked(state int) {
	c.state = state
	c.obsReg.Gauge("cas_remote_breaker_state").Set(float64(state))
}

// remoteUsable gates every remote call on the breaker state machine:
//
//	closed    → go ahead
//	open      → refused until the cooldown elapses, then half-open
//	half-open → exactly one probe call goes through; everyone else is
//	            refused until the probe's outcome resolves the state
//
// A 429 hold (holdUntil) refuses calls in any state — the server asked
// us to back off, and honoring that is not a health judgment.
func (c *Cache) remoteUsable() bool {
	if c.remote == nil {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	if now.Before(c.holdUntil) {
		return false
	}
	switch c.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(c.openedAt) < c.cooldown {
			return false
		}
		c.setStateLocked(breakerHalfOpen)
		c.probing = false
		fallthrough
	default: // breakerHalfOpen
		if c.probing {
			return false
		}
		c.probing = true
		return true
	}
}

// noteRemote records a remote call's outcome and drives the breaker:
// consecutive failures open it; a successful half-open probe closes it
// and resets the cooldown; a failed probe reopens it with the cooldown
// doubled (capped). Rate limiting is handled out of band: the Retry-After
// hint becomes a hold, not a failure. Every call is one remote
// round-trip, counted as such.
func (c *Cache) noteRemote(err error) {
	c.obsReg.Counter("cas_remote_roundtrips_total").Inc()
	var rl *RateLimitedError
	rateLimited := errors.As(err, &rl)
	failed := err != nil && !errors.Is(err, ErrNotFound) && !rateLimited
	if failed {
		c.obsReg.Counter("cas_remote_errors_total").Inc()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if rateLimited {
		c.stats.RemoteRateLimited++
		c.obsReg.Counter("cas_remote_rate_limited_total").Inc()
		hold := rl.RetryAfter
		if hold <= 0 {
			hold = time.Second
		}
		c.holdUntil = c.now().Add(hold)
		c.probing = false // the probe didn't answer the health question
		return
	}
	if !failed {
		c.failures = 0
		if c.state != breakerClosed {
			c.setStateLocked(breakerClosed)
			c.cooldown = c.base
		}
		c.probing = false
		return
	}
	c.stats.RemoteErrors++
	c.failures++
	switch {
	case c.state == breakerHalfOpen:
		// The probe failed: reopen and back off harder.
		c.setStateLocked(breakerOpen)
		c.openedAt = c.now()
		if c.cooldown *= 2; c.cooldown > maxBreakerCooldown {
			c.cooldown = maxBreakerCooldown
		}
		c.probing = false
	case c.state == breakerClosed && c.failures >= remoteTripThreshold:
		c.setStateLocked(breakerOpen)
		c.openedAt = c.now()
	}
}

// Lookup returns the action entry for key, or nil on a miss. A remote hit
// is written through to the local store.
func (c *Cache) Lookup(key string) *Action {
	if a, err := c.local.GetAction(key); err == nil {
		c.count(func(s *CacheStats) { s.Hits++; s.LocalHits++ })
		c.obsReg.Counter("cas_action_hits_total").Inc()
		return a
	}
	if c.remoteUsable() {
		a, err := c.remote.GetAction(c.ctx(), key)
		c.noteRemote(err)
		if err == nil && a != nil {
			c.local.PutAction(a)
			c.count(func(s *CacheStats) { s.Hits++; s.RemoteHits++ })
			c.obsReg.Counter("cas_action_hits_total").Inc()
			c.obsReg.Counter("cas_action_remote_hits_total").Inc()
			return a
		}
	}
	c.count(func(s *CacheStats) { s.Misses++ })
	c.obsReg.Counter("cas_action_misses_total").Inc()
	return nil
}

// blob fetches one blob, falling back to the remote (write-through) when
// the local store misses or is corrupt. The corrupt case is the read-path
// self-heal: Get already quarantined the bad bytes, the remote refetch is
// digest-verified, and the Put rewrites the blob in place. A failed
// write-back only degrades — the verified remote bytes are still served.
func (c *Cache) blob(digest string) ([]byte, error) {
	data, err := c.local.Get(digest)
	if err == nil {
		return data, nil
	}
	if c.remoteUsable() {
		rdata, rerr := c.remote.GetBlob(c.ctx(), digest)
		c.noteRemote(rerr)
		if rerr == nil {
			c.count(func(s *CacheStats) { s.RemoteBlobHits++ })
			c.obsReg.Counter("cas_blob_remote_hits_total").Inc()
			if _, perr := c.local.Put(rdata); perr != nil {
				c.obsReg.Counter("cas_writeback_failures_total").Inc()
			} else if errors.Is(err, ErrCorrupt) {
				c.count(func(s *CacheStats) { s.BlobsHealed++ })
				c.obsReg.Counter("cas_blobs_healed_total").Inc()
			}
			return rdata, nil
		}
	}
	return nil, err
}

// Blob returns one blob's bytes, local-first with remote fallback,
// write-through, and self-healing — the exported face of blob() for the
// cache server's hub mode (a local miss on GET is answered from the hub
// and kept).
func (c *Cache) Blob(digest string) ([]byte, error) { return c.blob(digest) }

// PushBlob best-effort replicates a locally-present blob to the remote,
// through the breaker — the write-through half of hub mode. A remote
// that supports streaming file pushes gets the blob straight off the
// local disk (resumable past transient drops); otherwise the bytes are
// read once and pushed whole. Failures degrade (and feed the breaker);
// they are never surfaced, because the local write already succeeded.
func (c *Cache) PushBlob(digest string) {
	if !c.remoteUsable() {
		return
	}
	if fp, ok := c.remote.(BlobFilePusher); ok {
		if path, err := c.local.BlobFilePath(digest); err == nil {
			c.noteRemote(fp.PutBlobFile(c.ctx(), digest, path))
			return
		}
	}
	data, err := c.local.Get(digest)
	if err != nil {
		// A local read problem says nothing about remote health; just
		// release the half-open probe slot if we were holding it.
		c.mu.Lock()
		c.probing = false
		c.mu.Unlock()
		return
	}
	c.noteRemote(c.remote.PutBlob(c.ctx(), digest, data))
}

// PushAction best-effort replicates an action entry to the remote,
// through the breaker (hub-mode write-through).
func (c *Cache) PushAction(a *Action) {
	if !c.remoteUsable() {
		return
	}
	c.noteRemote(c.remote.PutAction(c.ctx(), a))
}

// Restore materializes an action's outputs at the given target paths
// (sorted order, matching Publish). Any missing or corrupt blob aborts the
// restore; the caller falls back to executing the task.
func (c *Cache) Restore(a *Action, targets []string) error {
	if len(a.Outputs) != len(targets) {
		return fmt.Errorf("cas: action %s has %d outputs, task wants %d targets", a.Key[:12], len(a.Outputs), len(targets))
	}
	for i, o := range a.Outputs {
		data, err := c.blob(o.Digest)
		if err != nil {
			return fmt.Errorf("cas: restoring %s: %w", o.Name, err)
		}
		mode := os.FileMode(o.Mode)
		if mode == 0 {
			mode = 0o644
		}
		if err := hostutil.WriteFileAtomic(targets[i], data, mode); err != nil {
			return err
		}
		c.count(func(s *CacheStats) { s.BlobsRestored++; s.BytesRestored += uint64(len(data)) })
		c.obsReg.Counter("cas_blobs_restored_total").Inc()
		c.obsReg.Counter("cas_bytes_restored_total").Add(uint64(len(data)))
	}
	return nil
}

// Publish stores a task's produced targets (sorted order) as blobs plus an
// action entry, and pushes both to the remote best-effort. Local failures
// are returned; remote failures only degrade future remote use.
func (c *Cache) Publish(key, task string, targets []string) (*Action, error) {
	a := &Action{Key: key, Task: task}
	var payloads [][]byte
	// Hold every published blob until the action entry referencing them
	// is on disk: a concurrent GC sweeping between the blob writes and
	// the action write would otherwise see unreferenced blobs and reap
	// half a publish.
	var releases []func()
	defer func() {
		for _, r := range releases {
			r()
		}
	}()
	for _, target := range targets {
		data, err := os.ReadFile(target)
		if err != nil {
			return nil, fmt.Errorf("cas: publishing %s: %w", task, err)
		}
		digest, err := c.local.Put(data)
		if err != nil {
			return nil, err
		}
		releases = append(releases, c.local.Hold(digest))
		mode := uint32(0o644)
		if fi, err := os.Stat(target); err == nil {
			mode = uint32(fi.Mode().Perm())
		}
		a.Outputs = append(a.Outputs, Output{Name: filepath.Base(target), Digest: digest, Mode: mode, Size: int64(len(data))})
		payloads = append(payloads, data)
		c.count(func(s *CacheStats) { s.BytesPublished += uint64(len(data)) })
		c.obsReg.Counter("cas_bytes_published_total").Add(uint64(len(data)))
	}
	if err := c.local.PutAction(a); err != nil {
		return nil, err
	}
	c.count(func(s *CacheStats) { s.Published++ })
	c.obsReg.Counter("cas_actions_published_total").Inc()
	if c.remoteUsable() {
		for i, o := range a.Outputs {
			err := c.remote.PutBlob(c.ctx(), o.Digest, payloads[i])
			c.noteRemote(err)
			if err != nil {
				return a, nil // degrade silently; local publish succeeded
			}
		}
		err := c.remote.PutAction(c.ctx(), a)
		c.noteRemote(err)
	}
	return a, nil
}

func (c *Cache) count(f func(*CacheStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
