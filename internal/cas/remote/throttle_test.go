package remote

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"firemarshal/internal/cas"
)

// TestClient429RetryThenSuccess: a throttled hub's 429s are absorbed by
// the client — it waits out Retry-After (plus jitter) and retries, and
// the caller only sees the eventual success.
func TestClient429RetryThenSuccess(t *testing.T) {
	store := newStore(t)
	want := []byte("blob behind a throttled hub")
	digest, err := store.Put(want)
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(store)
	var n atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, time.Second)
	var slept []time.Duration
	c.sleep = func(d time.Duration) { slept = append(slept, d) }
	got, err := c.GetBlob(context.Background(), digest)
	if err != nil {
		t.Fatalf("GetBlob through throttling: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("GetBlob = %q, want %q", got, want)
	}
	if len(slept) != 2 {
		t.Fatalf("client slept %d times, want 2 (once per 429)", len(slept))
	}
	for i, d := range slept {
		if d < time.Second {
			t.Errorf("backoff %d = %v, want >= the 1s Retry-After hint", i, d)
		}
	}
}

// TestClient429Exhausted: past the retry budget the client surfaces
// cas.RateLimitedError carrying the server's hint — the signal the
// Cache turns into a hold instead of a breaker trip.
func TestClient429Exhausted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	defer srv.Close()
	c := NewClient(srv.URL, time.Second)
	c.sleep = func(time.Duration) {}
	_, err := c.GetBlob(context.Background(), "deadbeef")
	var rl *cas.RateLimitedError
	if !errors.As(err, &rl) {
		t.Fatalf("err = %v, want cas.RateLimitedError", err)
	}
	if rl.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %v, want 7s", rl.RetryAfter)
	}
}
