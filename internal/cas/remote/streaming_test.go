package remote

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
)

// deterministic payload generator: same bytes on every run, cheap to make
// larger than any chunk size a test picks.
func payload(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*131 + i>>8*17)
	}
	return data
}

// --- satellite 1: the 429 wait must abort on context cancellation ---

// TestRetryAfterWaitAbortsOnCancel regresses the bug where Client.do slept
// out the full Retry-After hint and only then noticed the context was
// cancelled. The server answers 429 with a 30-second hint; the context is
// cancelled shortly after the first attempt, and the call must return in
// far less than the hint.
func TestRetryAfterWaitAbortsOnCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, time.Second) // real timer path: c.sleep is nil

	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(50*time.Millisecond, cancel)
	begin := time.Now()
	_, err := client.GetBlob(ctx, hostutil.HashBytes([]byte("x")))
	elapsed := time.Since(begin)
	if err == nil {
		t.Fatal("GetBlob with cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("GetBlob error = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the wait slept through the Retry-After hint", elapsed)
	}
}

// TestWaitHonorsPreCancelledContext covers the injected-sleep path tests
// use: even with a fake sleep the wait must report a context already
// cancelled instead of looping into the next attempt.
func TestWaitHonorsPreCancelledContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "busy", http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, time.Second)
	attempts := 0
	client.sleep = func(time.Duration) { attempts++ }

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := client.GetBlob(ctx, hostutil.HashBytes([]byte("x")))
	if err == nil {
		t.Fatal("GetBlob with pre-cancelled context succeeded")
	}
	if attempts > 1 {
		t.Fatalf("client kept retrying (%d sleeps) against a cancelled context", attempts)
	}
}

// --- satellite 2: HasBlob must not report a failing server as "absent" ---

func TestHasBlobSurfacesServerErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "disk on fire", http.StatusInternalServerError)
	}))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, time.Second)

	ok, err := client.HasBlob(context.Background(), hostutil.HashBytes([]byte("x")))
	if err == nil {
		t.Fatalf("HasBlob against a 500-server = (%v, nil), want an error: a 5xx is not \"absent\"", ok)
	}
	if ok {
		t.Fatal("HasBlob reported present on a 500")
	}
}

// --- satellite 3: PUT status codes must match the failure ---

// failingBody errors mid-read, like a client that died mid-upload.
type failingBody struct{ n int }

func (b *failingBody) Read(p []byte) (int, error) {
	if b.n > 0 {
		b.n--
		p[0] = 'x'
		return 1, nil
	}
	return 0, errors.New("connection torn")
}

func TestPutBodyReadErrorIs400Not413(t *testing.T) {
	s := NewServer(newStore(t))
	digest := hostutil.HashBytes([]byte("never arrives"))

	req := httptest.NewRequest(http.MethodPut, "/v1/blobs/"+digest, &failingBody{n: 3})
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("PUT blob with torn body = %d, want 400 (got body %q)", w.Code, w.Body.String())
	}

	req = httptest.NewRequest(http.MethodPut, "/v1/actions/"+digest, &failingBody{n: 3})
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("PUT action with torn body = %d, want 400 (got body %q)", w.Code, w.Body.String())
	}
}

func TestPutOversizeBodyIs413(t *testing.T) {
	s := NewServer(newStore(t))
	s.SetMaxBytes(16)
	data := payload(100)
	digest := hostutil.HashBytes(data)

	req := httptest.NewRequest(http.MethodPut, "/v1/blobs/"+digest, bytes.NewReader(data))
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize PUT blob = %d, want 413 (got body %q)", w.Code, w.Body.String())
	}

	req = httptest.NewRequest(http.MethodPut, "/v1/actions/"+digest, bytes.NewReader(data))
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize PUT action = %d, want 413 (got body %q)", w.Code, w.Body.String())
	}
}

// --- protocol v2: ETag revalidation ---

func TestGetBlobETagRevalidation(t *testing.T) {
	store := newStore(t)
	srv, _ := serve(t, store)
	data := []byte("a disk image")
	digest, err := store.Put(data)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/blobs/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, data) {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+digest+`"` {
		t.Fatalf("ETag = %q, want quoted digest", etag)
	}
	if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(data)) {
		t.Fatalf("Content-Length = %q, want %d", cl, len(data))
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/blobs/"+digest, nil)
	req.Header.Set("If-None-Match", etag)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation GET = %d, want 304", resp.StatusCode)
	}
}

// --- protocol v2: streaming round trip and tail verification ---

func TestStreamingRoundTrip(t *testing.T) {
	store := newStore(t)
	_, client := serve(t, store)
	client.SetChunkSize(1 << 10)
	data := payload(10<<10 + 37) // 11 chunks, last one ragged
	digest := hostutil.HashBytes(data)

	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := client.PutBlobFile(context.Background(), digest, path); err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("chunked upload assembled different bytes")
	}

	rc, size, err := client.GetBlobStream(context.Background(), digest)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if size != int64(len(data)) {
		t.Fatalf("GetBlobStream size = %d, want %d", size, len(data))
	}
	streamed, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, data) {
		t.Fatal("GetBlobStream returned different bytes")
	}
}

func TestGetBlobStreamDetectsCorruption(t *testing.T) {
	store := newStore(t)
	_, client := serve(t, store)
	data := payload(4 << 10)
	digest, err := store.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte on disk, same length: the server streams it blindly (no
	// server-side verify on the fast path) and the client's tail check
	// must refuse it.
	path := filepath.Join(store.Dir(), "blobs", digest[:2], digest)
	data[100] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rc, _, err := client.GetBlobStream(context.Background(), digest)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := io.ReadAll(rc); !errors.Is(err, cas.ErrCorrupt) {
		t.Fatalf("reading corrupted stream: %v, want ErrCorrupt", err)
	}
}

// --- protocol v2: resumable uploads survive a torn connection ---

// chunkKiller fails exactly one Content-Range PUT (the killAt'th, counted
// from zero) with a transport error, simulating a connection dropped
// mid-upload. It records the offsets of chunk requests that reached the
// wire so the test can prove the client resumed instead of restarting.
type chunkKiller struct {
	mu      sync.Mutex
	killAt  int
	seen    int
	offsets []int64
}

func (k *chunkKiller) RoundTrip(req *http.Request) (*http.Response, error) {
	cr := req.Header.Get("Content-Range")
	if req.Method == http.MethodPut && cr != "" {
		var start, end, total int64
		fmt.Sscanf(cr, "bytes %d-%d/%d", &start, &end, &total)
		k.mu.Lock()
		idx := k.seen
		k.seen++
		k.offsets = append(k.offsets, start)
		k.mu.Unlock()
		if idx == k.killAt {
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, errors.New("connection reset mid-chunk")
		}
	}
	return http.DefaultTransport.RoundTrip(req)
}

func TestUploadResumesAfterTornConnection(t *testing.T) {
	store := newStore(t)
	srv, client := serve(t, store)
	_ = srv
	const chunk = 1 << 10
	client.SetChunkSize(chunk)
	killer := &chunkKiller{killAt: 2} // chunks 0 and 1 acked, chunk 2 dies
	client.SetTransport(killer)
	data := payload(5*chunk + 123)
	digest := hostutil.HashBytes(data)

	path := filepath.Join(t.TempDir(), "checkpoint.bin")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := client.PutBlobFile(context.Background(), digest, path); err != nil {
		t.Fatalf("PutBlobFile did not ride out the torn chunk: %v", err)
	}

	// Bit-identical on the far side (the server re-hashed before admitting).
	got, err := store.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("resumed upload assembled different bytes")
	}

	// The retry must have resumed from the last acked offset (2*chunk),
	// not offset 0: after the killed chunk at 2*chunk, the next chunk
	// request on the wire starts at 2*chunk again — never earlier.
	killer.mu.Lock()
	defer killer.mu.Unlock()
	if len(killer.offsets) < 4 {
		t.Fatalf("expected a resumed upload, saw chunk offsets %v", killer.offsets)
	}
	for i, off := range killer.offsets {
		if i > killer.killAt && off < 2*chunk {
			t.Fatalf("chunk after the kill started at %d — the upload restarted instead of resuming (offsets %v)", off, killer.offsets)
		}
	}
}

// TestChunkOffsetConflict checks the server's resync answer: a chunk at
// the wrong offset is refused with 409 plus the acknowledged offset.
func TestChunkOffsetConflict(t *testing.T) {
	store := newStore(t)
	srv, _ := serve(t, store)
	data := payload(4 << 10)
	digest := hostutil.HashBytes(data)

	put := func(start, end int64) *http.Response {
		req, _ := http.NewRequest(http.MethodPut, srv.URL+"/v1/blobs/"+digest, bytes.NewReader(data[start:end+1]))
		req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, end, len(data)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	if resp := put(0, 1023); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first chunk = %d, want 202", resp.StatusCode)
	}
	resp := put(2048, 3071) // skips ahead: server only has 1024 bytes
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("out-of-order chunk = %d, want 409", resp.StatusCode)
	}
	if off := resp.Header.Get("X-Upload-Offset"); off != "1024" {
		t.Fatalf("conflict X-Upload-Offset = %q, want 1024", off)
	}
}

// --- hub mode: write-through, read-through, and degradation ---

// hubPair builds a central server and an edge server wired to it in hub
// mode, returning the two stores and a client pointed at the edge.
func hubPair(t *testing.T) (central, edge *cas.Store, centralSrv *httptest.Server, edgeClient *Client) {
	t.Helper()
	central = newStore(t)
	centralSrv = httptest.NewServer(NewServer(central))
	t.Cleanup(centralSrv.Close)

	edge = newStore(t)
	es := NewServer(edge)
	hub := cas.NewCache(edge, NewClient(centralSrv.URL, time.Second))
	es.SetHub(hub)
	edgeSrv := httptest.NewServer(es)
	t.Cleanup(edgeSrv.Close)
	return central, edge, centralSrv, NewClient(edgeSrv.URL, time.Second)
}

func TestHubWriteThrough(t *testing.T) {
	central, _, _, client := hubPair(t)
	data := []byte("worker-built artifact")
	digest := hostutil.HashBytes(data)
	if err := client.PutBlob(context.Background(), digest, data); err != nil {
		t.Fatal(err)
	}
	got, err := central.Get(digest)
	if err != nil {
		t.Fatalf("blob did not replicate to the hub: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("hub holds different bytes")
	}

	a := &cas.Action{Key: hostutil.HashBytes([]byte("task")), Task: "build"}
	if err := client.PutAction(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if _, err := central.GetAction(a.Key); err != nil {
		t.Fatalf("action did not replicate to the hub: %v", err)
	}
}

func TestHubReadThrough(t *testing.T) {
	central, edge, _, client := hubPair(t)
	data := []byte("artifact only the hub has")
	digest, err := central.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := client.GetBlob(context.Background(), digest)
	if err != nil {
		t.Fatalf("edge GET missed despite hub having the blob: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read-through returned different bytes")
	}
	if !edge.Has(digest) {
		t.Fatal("read-through did not keep the blob at the edge")
	}
}

func TestHubDownDegradesToLocal(t *testing.T) {
	_, edge, centralSrv, client := hubPair(t)
	centralSrv.Close() // hub gone
	data := []byte("still cached locally")
	digest := hostutil.HashBytes(data)
	if err := client.PutBlob(context.Background(), digest, data); err != nil {
		t.Fatalf("edge PUT failed when the hub was down: %v", err)
	}
	if !edge.Has(digest) {
		t.Fatal("edge did not keep the blob")
	}
	got, err := client.GetBlob(context.Background(), digest)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("edge GET after hub death = %v", err)
	}
}

// --- GET aborts are the client's problem, not silent truncation ---

func TestGetBlobDetectsTruncatedTransfer(t *testing.T) {
	store := newStore(t)
	data := payload(8 << 10)
	digest, err := store.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// A proxy that forwards headers but truncates the body mid-stream.
	inner := NewServer(store)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := httptest.NewRecorder()
		inner.ServeHTTP(rec, r)
		for k, v := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			w.Header()[k] = v
		}
		w.WriteHeader(rec.Code)
		body := rec.Body.Bytes()
		if len(body) > 100 {
			body = body[:100]
		}
		w.Write(body)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}))
	t.Cleanup(srv.Close)
	client := NewClient(srv.URL, time.Second)

	if _, err := client.GetBlob(context.Background(), digest); !errors.Is(err, cas.ErrCorrupt) {
		t.Fatalf("truncated GetBlob: %v, want ErrCorrupt", err)
	}
	rc, _, err := client.GetBlobStream(context.Background(), digest)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := io.ReadAll(rc); err == nil {
		t.Fatal("truncated GetBlobStream read to EOF without error")
	}
}

// sanity: the digest in URLs is validated server-side before hitting disk
func TestJunkDigestRejected(t *testing.T) {
	srv, _ := serve(t, newStore(t))
	resp, err := http.Get(srv.URL + "/v1/blobs/" + strings.Repeat("z", 64))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("junk digest served 200")
	}
}
