// Package remote provides the HTTP remote-cache protocol over a cas.Store:
// a server that exposes blobs and action-cache entries for GET/HEAD/PUT,
// and a client implementing cas.Remote so builds on other machines (or in
// other checkouts) can share one cache. The protocol is deliberately dumb —
// content-addressed paths, whole-entry bodies — because the digests carry
// all the integrity information:
//
//	GET/HEAD/PUT /v1/blobs/<digest>
//	GET/PUT      /v1/actions/<key>
//	GET          /v1/stats
//
// The server re-verifies uploaded blob bytes against the digest in the URL
// and rejects mismatches, so a misbehaving client cannot poison the cache.
package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
)

// maxEntrySize bounds uploads (blobs and actions) accepted by the server.
const maxEntrySize = 1 << 30 // 1 GiB

// Server serves a cas.Store over HTTP.
type Server struct {
	store *cas.Store
	mux   *http.ServeMux
}

// NewServer wraps store in an http.Handler.
func NewServer(store *cas.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux()}
	s.mux.HandleFunc("/v1/blobs/", s.handleBlob)
	s.mux.HandleFunc("/v1/actions/", s.handleAction)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, "/v1/blobs/")
	switch r.Method {
	case http.MethodHead:
		if !s.store.Has(digest) {
			http.Error(w, "blob not found", http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		data, err := s.store.Get(digest)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntrySize))
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		if hostutil.HashBytes(data) != digest {
			http.Error(w, "body does not match digest", http.StatusBadRequest)
			return
		}
		if _, err := s.store.Put(data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleAction(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/actions/")
	switch r.Method {
	case http.MethodGet:
		a, err := s.store.GetAction(key)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a)
	case http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEntrySize))
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		var a cas.Action
		if err := json.Unmarshal(data, &a); err != nil {
			http.Error(w, "malformed action entry", http.StatusBadRequest)
			return
		}
		if a.Key != key {
			http.Error(w, "action key does not match URL", http.StatusBadRequest)
			return
		}
		if err := s.store.PutAction(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusCreated)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	u, err := s.store.Usage()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(u)
}

// Client talks to a Server; it implements cas.Remote. Every request runs
// under the caller's context with the configured timeout layered on top,
// so a hung server costs a bounded delay (the cas.Cache breaker then stops
// calling us entirely) and a cancelled build aborts its in-flight
// transfers immediately instead of waiting them out.
type Client struct {
	base    string
	timeout time.Duration
	hc      *http.Client
	sleep   func(time.Duration) // injectable for tests
}

// DefaultTimeout bounds each remote-cache request.
const DefaultTimeout = 5 * time.Second

// rateLimitRetries is how many 429 answers one logical request absorbs
// (honoring Retry-After each time) before giving up and surfacing a
// cas.RateLimitedError for the breaker's hold logic.
const rateLimitRetries = 3

// NewClient returns a client for the server at base (e.g.
// "http://cache-host:8080"). A zero timeout uses DefaultTimeout.
func NewClient(base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimSuffix(base, "/"), timeout: timeout, hc: &http.Client{}, sleep: time.Sleep}
}

// SetTransport installs a custom RoundTripper (chaos fault injection,
// instrumentation). A nil rt restores the default transport.
func (c *Client) SetTransport(rt http.RoundTripper) {
	c.hc.Transport = rt
}

func (c *Client) blobURL(digest string) string { return c.base + "/v1/blobs/" + digest }
func (c *Client) actionURL(key string) string  { return c.base + "/v1/actions/" + key }

// doOnce issues one request with the per-request deadline layered onto
// ctx. The returned cancel must be held until the response body is
// consumed — cancelling releases the request's resources and aborts a
// stalled body.
func (c *Client) doOnce(ctx context.Context, method, url string, body []byte, contentType string) (*http.Response, context.CancelFunc, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	rctx, cancel := context.WithTimeout(ctx, c.timeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, nil, fmt.Errorf("remote cache: %w", err)
	}
	return resp, cancel, nil
}

// retryAfter parses a 429's Retry-After header (integer seconds only;
// HTTP dates are overkill for our own servers) with a floor so a "0"
// hint still yields.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 0 {
		return time.Second
	}
	d := time.Duration(secs) * time.Second
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// do wraps doOnce with 429 handling: wait out Retry-After (plus
// deterministic jitter keyed by URL and attempt, so a herd of clients
// thundering against one hub de-correlates identically on every run)
// and retry a bounded number of times. Exhausting the budget returns a
// cas.RateLimitedError so the Cache breaker holds off instead of
// counting the healthy-but-busy remote as failed. All protocol methods
// are idempotent (content-addressed GET/HEAD/PUT), so retrying is safe.
func (c *Client) do(ctx context.Context, method, url string, body []byte, contentType string) (*http.Response, context.CancelFunc, error) {
	var wait time.Duration
	for attempt := 0; ; attempt++ {
		resp, cancel, err := c.doOnce(ctx, method, url, body, contentType)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp, cancel, nil
		}
		wait = retryAfter(resp)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		if attempt >= rateLimitRetries {
			return nil, nil, &cas.RateLimitedError{RetryAfter: wait}
		}
		c.sleep(wait + hostutil.DetJitter(url, attempt, 25*time.Millisecond))
		if ctx != nil && ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
	}
}

// GetBlob fetches blob bytes, verifying the digest before returning them.
func (c *Client) GetBlob(ctx context.Context, digest string) ([]byte, error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, c.blobURL(digest), nil, "")
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("remote cache: blob %s: %w", digest, cas.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote cache: GET blob: %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntrySize))
	if err != nil {
		return nil, fmt.Errorf("remote cache: %w", err)
	}
	if hostutil.HashBytes(data) != digest {
		return nil, fmt.Errorf("remote cache: blob %s: %w", digest, cas.ErrCorrupt)
	}
	return data, nil
}

// PutBlob uploads blob bytes.
func (c *Client) PutBlob(ctx context.Context, digest string, data []byte) error {
	resp, cancel, err := c.do(ctx, http.MethodPut, c.blobURL(digest), data, "application/octet-stream")
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote cache: PUT blob: %s", resp.Status)
	}
	return nil
}

// HasBlob reports blob presence via a HEAD probe.
func (c *Client) HasBlob(ctx context.Context, digest string) (bool, error) {
	resp, cancel, err := c.do(ctx, http.MethodHead, c.blobURL(digest), nil, "")
	if err != nil {
		return false, err
	}
	defer cancel()
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}

// GetAction fetches an action-cache entry.
func (c *Client) GetAction(ctx context.Context, key string) (*cas.Action, error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, c.actionURL(key), nil, "")
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("remote cache: action %s: %w", key, cas.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote cache: GET action: %s", resp.Status)
	}
	var a cas.Action
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntrySize)).Decode(&a); err != nil {
		return nil, fmt.Errorf("remote cache: decoding action: %w", err)
	}
	return &a, nil
}

// PutAction uploads an action-cache entry.
func (c *Client) PutAction(ctx context.Context, a *cas.Action) error {
	data, err := json.Marshal(a)
	if err != nil {
		return err
	}
	resp, cancel, err := c.do(ctx, http.MethodPut, c.actionURL(a.Key), data, "application/json")
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote cache: PUT action: %s", resp.Status)
	}
	return nil
}
