// Package remote provides the HTTP remote-cache protocol over a cas.Store:
// a server that exposes blobs and action-cache entries for GET/HEAD/PUT,
// and a client implementing cas.Remote so builds on other machines (or in
// other checkouts) can share one cache. The protocol stays deliberately
// dumb — content-addressed paths carry all the integrity information — but
// v2 moves the bodies off the heap:
//
//	GET/HEAD/PUT /v1/blobs/<digest>
//	GET/PUT      /v1/actions/<key>
//	GET          /v1/stats
//
// Blob GETs stream straight from the store's disk with Content-Length and
// a digest ETag (If-None-Match revalidation answers 304 without touching
// the blob). Blob PUTs stream to a temp file, hashing in flight — the
// server never buffers a body — and reject digest mismatches, so a
// misbehaving client cannot poison the cache. Large uploads may be sent
// as resumable chunks (Content-Range: bytes <a>-<b>/<total>); the server
// stages them under <store>/uploads and reports the acknowledged offset
// in X-Upload-Offset, so a client whose connection died mid-upload
// HEAD-probes and continues from the last acked chunk instead of
// restarting. A server given a hub cache (SetHub) is a worker-local
// write-through: PUTs replicate upward through the hub cache's circuit
// breaker, and GET misses are answered from the hub and kept locally.
package remote

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/obs"
)

// maxEntrySize bounds uploads (blobs and actions) accepted by the server.
const maxEntrySize = 1 << 30 // 1 GiB

// Server serves a cas.Store over HTTP.
type Server struct {
	store    *cas.Store
	mux      *http.ServeMux
	hub      *cas.Cache // optional write/read-through upstream (nil = standalone)
	maxBytes int64      // upload bound (tests shrink it)

	// obsReg resolves nil to obs.Default, mirroring the cas.Cache idiom.
	obsReg *obs.Registry

	// uploads serializes resumable-chunk appends per digest. Entries are
	// created on first chunk and dropped on completion; a stale mutex
	// handed out across a drop only guards a re-checked no-op.
	upMu    sync.Mutex
	uploads map[string]*sync.Mutex
}

// NewServer wraps store in an http.Handler.
func NewServer(store *cas.Store) *Server {
	s := &Server{store: store, mux: http.NewServeMux(), maxBytes: maxEntrySize, uploads: map[string]*sync.Mutex{}}
	s.mux.HandleFunc("/v1/blobs/", s.handleBlob)
	s.mux.HandleFunc("/v1/actions/", s.handleAction)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// SetHub makes this server a write-through edge of a central cache: hub
// wraps this server's own store as its local side and the central URL as
// its remote, so PUTs replicate upward behind the hub cache's breaker
// (an unreachable hub degrades to local-only, never an error) and GET
// misses read through and stick locally.
func (s *Server) SetHub(hub *cas.Cache) { s.hub = hub }

// SetMaxBytes overrides the upload size bound (tests shrink it; <= 0
// keeps the default).
func (s *Server) SetMaxBytes(n int64) {
	if n > 0 {
		s.maxBytes = n
	}
}

// SetObs directs the server's metrics at a specific registry (nil keeps
// the process-wide obs.Default).
func (s *Server) SetObs(r *obs.Registry) { s.obsReg = r }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func etagFor(digest string) string { return `"` + digest + `"` }

// notModified answers an If-None-Match revalidation: the ETag is the
// digest, and content-addressing makes it eternally strong — a client
// holding any bytes for this digest holds the right ones.
func notModified(w http.ResponseWriter, r *http.Request, digest string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	if inm != "*" && !strings.Contains(inm, etagFor(digest)) {
		return false
	}
	w.Header().Set("ETag", etagFor(digest))
	w.WriteHeader(http.StatusNotModified)
	return true
}

// classifyPutErr maps a streaming-put failure to a status: only an
// oversized body is 413; a torn client body or a digest mismatch is the
// client's fault (400); anything else is the store's problem (500).
func classifyPutErr(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, cas.ErrCorrupt), errors.Is(err, cas.ErrRead):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleBlob(w http.ResponseWriter, r *http.Request) {
	digest := strings.TrimPrefix(r.URL.Path, "/v1/blobs/")
	switch r.Method {
	case http.MethodHead:
		s.headBlob(w, r, digest)
	case http.MethodGet:
		s.getBlob(w, r, digest)
	case http.MethodPut:
		if r.Header.Get("Content-Range") != "" {
			s.putChunk(w, r, digest)
			return
		}
		s.putBlob(w, r, digest)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) headBlob(w http.ResponseWriter, r *http.Request, digest string) {
	if size, err := s.store.BlobSize(digest); err == nil {
		w.Header().Set("ETag", etagFor(digest))
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		w.WriteHeader(http.StatusOK)
		return
	}
	// Absent blob — but a resumable upload may be staged. Reporting the
	// acknowledged offset here is the resume handshake's probe answer.
	if off := s.uploadOffset(digest); off > 0 {
		w.Header().Set("X-Upload-Offset", strconv.FormatInt(off, 10))
	}
	http.Error(w, "blob not found", http.StatusNotFound)
}

func (s *Server) getBlob(w http.ResponseWriter, r *http.Request, digest string) {
	if notModified(w, r, digest) {
		return
	}
	rc, size, err := s.store.OpenBlob(digest)
	if err != nil {
		// Hub read-through: a miss at this edge may be a hit upstream;
		// Blob() writes it through locally so the next GET streams from
		// disk.
		if s.hub != nil {
			if data, herr := s.hub.Blob(digest); herr == nil {
				s.writeBlobBytes(w, digest, data)
				return
			}
		}
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("ETag", etagFor(digest))
	if _, err := io.Copy(w, rc); err != nil {
		// The status line is long gone; all we can do is count the
		// aborted stream (usually the client hanging up) and let the
		// connection tear down, which tells the client the body is torn.
		s.obsReg.Counter("cache_serve_get_aborts_total").Inc()
	}
}

func (s *Server) writeBlobBytes(w http.ResponseWriter, digest string, data []byte) {
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Header().Set("ETag", etagFor(digest))
	if _, err := w.Write(data); err != nil {
		s.obsReg.Counter("cache_serve_get_aborts_total").Inc()
	}
}

func (s *Server) putBlob(w http.ResponseWriter, r *http.Request, digest string) {
	if _, err := s.store.PutStream(digest, http.MaxBytesReader(w, r.Body, s.maxBytes)); err != nil {
		http.Error(w, err.Error(), classifyPutErr(err))
		return
	}
	s.pushHub(digest)
	w.WriteHeader(http.StatusCreated)
}

// pushHub write-throughs a just-stored blob to the hub, best-effort
// behind the hub cache's breaker.
func (s *Server) pushHub(digest string) {
	if s.hub != nil {
		s.hub.PushBlob(digest)
	}
}

// uploadLock returns the per-digest mutex serializing chunk appends.
func (s *Server) uploadLock(digest string) *sync.Mutex {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	m := s.uploads[digest]
	if m == nil {
		m = &sync.Mutex{}
		s.uploads[digest] = m
	}
	return m
}

func (s *Server) dropUploadLock(digest string) {
	s.upMu.Lock()
	delete(s.uploads, digest)
	s.upMu.Unlock()
}

// uploadOffset reports how many bytes of a staged resumable upload are
// acknowledged (0 when none is in progress).
func (s *Server) uploadOffset(digest string) int64 {
	path, err := s.store.UploadPath(digest)
	if err != nil {
		return 0
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

// parseContentRange parses "bytes <start>-<end>/<total>".
func parseContentRange(h string) (start, end, total int64, err error) {
	if n, serr := fmt.Sscanf(h, "bytes %d-%d/%d", &start, &end, &total); serr != nil || n != 3 {
		return 0, 0, 0, fmt.Errorf("malformed Content-Range %q", h)
	}
	if start < 0 || end < start || total <= end {
		return 0, 0, 0, fmt.Errorf("inconsistent Content-Range %q", h)
	}
	return start, end, total, nil
}

// putChunk appends one Content-Range chunk to the staged upload for
// digest. Chunks must arrive in order at the acknowledged offset; an
// out-of-sync client gets 409 plus the offset to re-sync to. A torn
// chunk is rolled back whole, so the staged file only ever grows by
// complete acknowledged chunks — the invariant the resume handshake
// relies on. The final chunk re-hashes the assembled file and promotes
// it into the store (or rejects the whole upload on mismatch).
func (s *Server) putChunk(w http.ResponseWriter, r *http.Request, digest string) {
	start, end, total, err := parseContentRange(r.Header.Get("Content-Range"))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if total > s.maxBytes {
		http.Error(w, "upload too large", http.StatusRequestEntityTooLarge)
		return
	}
	mu := s.uploadLock(digest)
	mu.Lock()
	defer mu.Unlock()
	if s.store.Has(digest) {
		// Another client (or a previous attempt) already completed it.
		w.Header().Set("X-Upload-Offset", strconv.FormatInt(total, 10))
		w.WriteHeader(http.StatusOK)
		return
	}
	path, err := s.store.UploadPath(digest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var cur int64
	if fi, serr := os.Stat(path); serr == nil {
		cur = fi.Size()
	}
	if start != cur {
		w.Header().Set("X-Upload-Offset", strconv.FormatInt(cur, 10))
		http.Error(w, fmt.Sprintf("upload offset is %d, chunk starts at %d", cur, start), http.StatusConflict)
		return
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	want := end - start + 1
	n, err := io.Copy(f, http.MaxBytesReader(w, r.Body, want))
	cerr := f.Close()
	if err != nil || cerr != nil || n != want {
		// Torn or over-long chunk: drop it entirely, back to the last
		// acked boundary.
		os.Truncate(path, cur)
		w.Header().Set("X-Upload-Offset", strconv.FormatInt(cur, 10))
		http.Error(w, fmt.Sprintf("chunk not fully received (%d of %d bytes)", n, want), http.StatusBadRequest)
		return
	}
	if end+1 < total {
		s.obsReg.Counter("cache_serve_chunks_total").Inc()
		w.Header().Set("X-Upload-Offset", strconv.FormatInt(end+1, 10))
		w.WriteHeader(http.StatusAccepted)
		return
	}
	// Final chunk: verify and promote.
	if err := s.store.IngestFile(digest, path); err != nil {
		os.Remove(path)
		s.dropUploadLock(digest)
		status := http.StatusInternalServerError
		if errors.Is(err, cas.ErrCorrupt) {
			status = http.StatusBadRequest
		}
		http.Error(w, err.Error(), status)
		return
	}
	s.dropUploadLock(digest)
	s.obsReg.Counter("cache_serve_uploads_completed_total").Inc()
	s.pushHub(digest)
	w.Header().Set("X-Upload-Offset", strconv.FormatInt(total, 10))
	w.WriteHeader(http.StatusCreated)
}

func (s *Server) handleAction(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/v1/actions/")
	switch r.Method {
	case http.MethodGet:
		a, err := s.store.GetAction(key)
		if err != nil {
			if s.hub != nil {
				// Read-through: Lookup consults the hub and writes a hit
				// into the local store.
				if ha := s.hub.Lookup(key); ha != nil {
					a = ha
				}
			}
			if a == nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(a)
	case http.MethodPut:
		data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxBytes))
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			} else {
				http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
			}
			return
		}
		var a cas.Action
		if err := json.Unmarshal(data, &a); err != nil {
			http.Error(w, "malformed action entry", http.StatusBadRequest)
			return
		}
		if a.Key != key {
			http.Error(w, "action key does not match URL", http.StatusBadRequest)
			return
		}
		if err := s.store.PutAction(&a); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if s.hub != nil {
			s.hub.PushAction(&a)
		}
		w.WriteHeader(http.StatusCreated)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	u, err := s.store.Usage()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(u)
}

// Client talks to a Server; it implements cas.Remote plus the streaming
// upgrades cas.BlobStreamer and cas.BlobFilePusher. Every request runs
// under the caller's context with the configured timeout layered on top,
// so a hung server costs a bounded delay (the cas.Cache breaker then stops
// calling us entirely) and a cancelled build aborts its in-flight
// transfers immediately instead of waiting them out. Streaming transfers
// get a proportionally larger deadline (streamTimeoutFactor) since their
// bodies legitimately outlive a control round-trip.
type Client struct {
	base    string
	timeout time.Duration
	chunk   int64
	hc      *http.Client
	sleep   func(time.Duration) // injectable for tests; nil = real timer
}

// DefaultTimeout bounds each remote-cache request.
const DefaultTimeout = 5 * time.Second

// streamTimeoutFactor scales the per-request timeout for streaming
// transfers (GetBlobStream bodies, upload chunks): a 1 GiB body cannot
// finish under a control-plane deadline, but it must still be bounded so
// a hung server cannot wedge a worker forever.
const streamTimeoutFactor = 60

// DefaultChunkSize is the resumable-upload chunk granularity. Each chunk
// is one request (acked server-side before the next), so it is also the
// most a torn connection can cost.
const DefaultChunkSize int64 = 8 << 20 // 8 MiB

// rateLimitRetries is how many 429 answers one logical request absorbs
// (honoring Retry-After each time) before giving up and surfacing a
// cas.RateLimitedError for the breaker's hold logic.
const rateLimitRetries = 3

// uploadResumes bounds how many transport failures one PutBlobFile rides
// out by re-probing and resuming before surfacing the error.
const uploadResumes = 5

// NewClient returns a client for the server at base (e.g.
// "http://cache-host:8080"). A zero timeout uses DefaultTimeout.
func NewClient(base string, timeout time.Duration) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimSuffix(base, "/"), timeout: timeout, chunk: DefaultChunkSize, hc: &http.Client{}}
}

// SetTransport installs a custom RoundTripper (chaos fault injection,
// instrumentation). A nil rt restores the default transport.
func (c *Client) SetTransport(rt http.RoundTripper) {
	c.hc.Transport = rt
}

// SetChunkSize overrides the resumable-upload chunk size (tests shrink
// it to exercise multi-chunk paths on small payloads; <= 0 keeps the
// default).
func (c *Client) SetChunkSize(n int64) {
	if n > 0 {
		c.chunk = n
	}
}

func (c *Client) blobURL(digest string) string { return c.base + "/v1/blobs/" + digest }
func (c *Client) actionURL(key string) string  { return c.base + "/v1/actions/" + key }

// reqOpts carries the per-request extras threaded through do/doOnce.
type reqOpts struct {
	contentType string
	hdr         map[string]string
	stream      bool // body outlives a control round-trip: scale the deadline
}

// doOnce issues one request with the per-request deadline layered onto
// ctx. The returned cancel must be held until the response body is
// consumed — cancelling releases the request's resources and aborts a
// stalled body.
func (c *Client) doOnce(ctx context.Context, method, url string, body []byte, o reqOpts) (*http.Response, context.CancelFunc, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	timeout := c.timeout
	if o.stream {
		timeout *= streamTimeoutFactor
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(rctx, method, url, rd)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	if o.contentType != "" {
		req.Header.Set("Content-Type", o.contentType)
	}
	for k, v := range o.hdr {
		req.Header.Set(k, v)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		cancel()
		return nil, nil, fmt.Errorf("remote cache: %w", err)
	}
	return resp, cancel, nil
}

// retryAfter parses a 429's Retry-After header (integer seconds only;
// HTTP dates are overkill for our own servers) with a floor so a "0"
// hint still yields.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After")))
	if err != nil || secs < 0 {
		return time.Second
	}
	d := time.Duration(secs) * time.Second
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// wait sleeps out a backoff, but cancellably: a context cancelled
// mid-Retry-After aborts the wait immediately instead of sleeping it
// through (a cancelled build must not sit out a hub's 30 s hint first).
// The injectable sleep hook keeps tests instant; it still honors a
// pre-cancelled context.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if c.sleep != nil {
		c.sleep(d)
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// do wraps doOnce with 429 handling: wait out Retry-After (plus
// deterministic jitter keyed by URL and attempt, so a herd of clients
// thundering against one hub de-correlates identically on every run)
// and retry a bounded number of times. Exhausting the budget returns a
// cas.RateLimitedError so the Cache breaker holds off instead of
// counting the healthy-but-busy remote as failed. All protocol methods
// are idempotent (content-addressed GET/HEAD/PUT), so retrying is safe.
func (c *Client) do(ctx context.Context, method, url string, body []byte, o reqOpts) (*http.Response, context.CancelFunc, error) {
	var wait time.Duration
	for attempt := 0; ; attempt++ {
		resp, cancel, err := c.doOnce(ctx, method, url, body, o)
		if err != nil {
			return nil, nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			return resp, cancel, nil
		}
		wait = retryAfter(resp)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		if attempt >= rateLimitRetries {
			return nil, nil, &cas.RateLimitedError{RetryAfter: wait}
		}
		if err := c.wait(ctx, wait+hostutil.DetJitter(url, attempt, 25*time.Millisecond)); err != nil {
			return nil, nil, err
		}
	}
}

// GetBlob fetches blob bytes, verifying the digest before returning them.
func (c *Client) GetBlob(ctx context.Context, digest string) ([]byte, error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, c.blobURL(digest), nil, reqOpts{})
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("remote cache: blob %s: %w", digest, cas.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote cache: GET blob: %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntrySize))
	if err != nil {
		return nil, fmt.Errorf("remote cache: %w", err)
	}
	if hostutil.HashBytes(data) != digest {
		return nil, fmt.Errorf("remote cache: blob %s: %w", digest, cas.ErrCorrupt)
	}
	return data, nil
}

// verifyReader hashes a streamed blob body as it passes through and
// rejects the final read if the bytes do not add up to the digest — the
// streaming equivalent of GetBlob's whole-body check. Close aborts a
// partially-consumed body.
type verifyReader struct {
	body   io.ReadCloser
	cancel context.CancelFunc
	want   string
	sum    [sha256.Size]byte // scratch; avoids a Sum allocation per Read
	h      hash.Hash
}

func (v *verifyReader) Read(p []byte) (int, error) {
	n, err := v.body.Read(p)
	v.h.Write(p[:n])
	if err == io.EOF {
		if hex.EncodeToString(v.h.Sum(v.sum[:0])) != v.want {
			return n, fmt.Errorf("remote cache: blob %s: %w", v.want, cas.ErrCorrupt)
		}
	}
	return n, err
}

func (v *verifyReader) Close() error {
	err := v.body.Close()
	v.cancel()
	return err
}

// GetBlobStream fetches a blob as a verified stream: the returned reader
// yields the body incrementally (never buffering it whole) and refuses
// to report EOF unless the bytes hash to the digest, so a truncated or
// corrupted transfer surfaces as cas.ErrCorrupt at the tail instead of
// silently producing short content. The declared size rides along for
// progress accounting.
func (c *Client) GetBlobStream(ctx context.Context, digest string) (io.ReadCloser, int64, error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, c.blobURL(digest), nil, reqOpts{stream: true})
	if err != nil {
		return nil, 0, err
	}
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		return nil, 0, fmt.Errorf("remote cache: blob %s: %w", digest, cas.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		return nil, 0, fmt.Errorf("remote cache: GET blob: %s", resp.Status)
	}
	return &verifyReader{body: resp.Body, cancel: cancel, want: digest, h: sha256.New()}, resp.ContentLength, nil
}

// PutBlob uploads blob bytes.
func (c *Client) PutBlob(ctx context.Context, digest string, data []byte) error {
	resp, cancel, err := c.do(ctx, http.MethodPut, c.blobURL(digest), data, reqOpts{contentType: "application/octet-stream"})
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote cache: PUT blob: %s", resp.Status)
	}
	return nil
}

// probeUpload asks the server where an upload for digest stands: done
// (the blob exists), or resumable from the acknowledged offset.
func (c *Client) probeUpload(ctx context.Context, digest string) (offset int64, done bool, err error) {
	resp, cancel, err := c.do(ctx, http.MethodHead, c.blobURL(digest), nil, reqOpts{})
	if err != nil {
		return 0, false, err
	}
	defer cancel()
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return 0, true, nil
	case http.StatusNotFound:
		off, _ := strconv.ParseInt(resp.Header.Get("X-Upload-Offset"), 10, 64)
		if off < 0 {
			off = 0
		}
		return off, false, nil
	default:
		return 0, false, fmt.Errorf("remote cache: HEAD blob: %s", resp.Status)
	}
}

// PutBlobFile uploads a file-backed blob. Files within one chunk go up
// as a single PUT; larger ones go as resumable Content-Range
// chunks, each acknowledged before the next, so a connection dropped at
// chunk N costs at most one chunk — the retry HEAD-probes the server for
// the acked offset and resumes there instead of restarting the upload.
// The server re-hashes the assembled bytes before admitting them, so a
// resumed upload is bit-identical or rejected.
func (c *Client) PutBlobFile(ctx context.Context, digest, path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size()
	if size <= c.chunk {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return c.PutBlob(ctx, digest, data)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	off, done, err := c.probeUpload(ctx, digest)
	if err != nil {
		return err
	}
	if done {
		return nil
	}
	buf := make([]byte, c.chunk)
	resumes := 0
	for off < size {
		n := c.chunk
		if size-off < n {
			n = size - off
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return fmt.Errorf("remote cache: reading %s for upload: %w", path, err)
		}
		o := reqOpts{
			contentType: "application/octet-stream",
			hdr:         map[string]string{"Content-Range": fmt.Sprintf("bytes %d-%d/%d", off, off+n-1, size)},
			stream:      true,
		}
		resp, cancel, err := c.do(ctx, http.MethodPut, c.blobURL(digest), buf[:n], o)
		if err != nil {
			// Transport drop mid-chunk. Re-probe for the acked offset
			// and resume; only a cancelled context or an exhausted
			// resume budget gives up.
			if ctx != nil && ctx.Err() != nil {
				return err
			}
			if resumes++; resumes > uploadResumes {
				return err
			}
			noff, done, perr := c.probeUpload(ctx, digest)
			if perr != nil {
				return err
			}
			if done {
				return nil
			}
			off = noff
			continue
		}
		serverOff, _ := strconv.ParseInt(resp.Header.Get("X-Upload-Offset"), 10, 64)
		status := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		cancel()
		switch status {
		case http.StatusCreated, http.StatusOK:
			return nil // final chunk admitted (or raced to completion)
		case http.StatusAccepted:
			off = serverOff
			resumes = 0
		case http.StatusConflict:
			// Another uploader moved the offset, or ours went stale:
			// adopt the server's and continue (bounded like a resume so
			// two clients cannot ping-pong forever).
			if resumes++; resumes > uploadResumes {
				return fmt.Errorf("remote cache: PUT blob chunk: offset would not converge")
			}
			off = serverOff
		default:
			return fmt.Errorf("remote cache: PUT blob chunk: %d %s", status, http.StatusText(status))
		}
	}
	return fmt.Errorf("remote cache: upload of %s never completed", digest)
}

// HasBlob reports blob presence via a HEAD probe. Only a definitive 404
// is "absent": any other non-200 answer (a 5xx, a proxy error) surfaces
// as an error so the caller's health accounting sees a failing remote
// instead of concluding the blob does not exist.
func (c *Client) HasBlob(ctx context.Context, digest string) (bool, error) {
	resp, cancel, err := c.do(ctx, http.MethodHead, c.blobURL(digest), nil, reqOpts{})
	if err != nil {
		return false, err
	}
	defer cancel()
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("remote cache: HEAD blob: %s", resp.Status)
	}
}

// GetAction fetches an action-cache entry.
func (c *Client) GetAction(ctx context.Context, key string) (*cas.Action, error) {
	resp, cancel, err := c.do(ctx, http.MethodGet, c.actionURL(key), nil, reqOpts{})
	if err != nil {
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("remote cache: action %s: %w", key, cas.ErrNotFound)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("remote cache: GET action: %s", resp.Status)
	}
	var a cas.Action
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntrySize)).Decode(&a); err != nil {
		return nil, fmt.Errorf("remote cache: decoding action: %w", err)
	}
	return &a, nil
}

// PutAction uploads an action-cache entry.
func (c *Client) PutAction(ctx context.Context, a *cas.Action) error {
	data, err := json.Marshal(a)
	if err != nil {
		return err
	}
	resp, cancel, err := c.do(ctx, http.MethodPut, c.actionURL(a.Key), data, reqOpts{contentType: "application/json"})
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("remote cache: PUT action: %s", resp.Status)
	}
	return nil
}
