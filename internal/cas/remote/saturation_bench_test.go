package remote

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
)

// benchBlobSize is the per-op transfer size for the saturation benchmark:
// big enough that the streaming paths dominate over HTTP overhead, small
// enough that CI hosts finish a bench round quickly.
const benchBlobSize = 64 << 10

// BenchmarkCacheSaturation hammers one cache server with concurrent
// clients — parallel GETs of a hot blob, parallel PUTs of distinct blobs,
// and a mixed read-mostly load — reporting MB/s per pattern. This is the
// throughput proof for the streaming protocol: scripts/cache_gate.sh runs
// it against the BENCH_cache.json baseline, so an accidental return to
// whole-body buffering (or a lock slipped into the read path) fails CI
// instead of landing silently.
func BenchmarkCacheSaturation(b *testing.B) {
	newBench := func(b *testing.B) (*cas.Store, *Client) {
		store, err := cas.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv := httptest.NewServer(NewServer(store))
		b.Cleanup(srv.Close)
		return store, NewClient(srv.URL, 30*time.Second)
	}
	mkBlob := func(seed int64) []byte {
		data := make([]byte, benchBlobSize)
		for i := range data {
			data[i] = byte(int64(i)*1315423911 + seed*2654435761)
		}
		return data
	}

	b.Run("get", func(b *testing.B) {
		store, client := newBench(b)
		data := mkBlob(0)
		digest, err := store.Put(data)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(benchBlobSize)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := client.GetBlob(context.Background(), digest); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("put", func(b *testing.B) {
		_, client := newBench(b)
		var seed int64
		b.SetBytes(benchBlobSize)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				data := mkBlob(atomic.AddInt64(&seed, 1))
				digest := hostutil.HashBytes(data)
				if err := client.PutBlob(context.Background(), digest, data); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})

	b.Run("mixed", func(b *testing.B) {
		store, client := newBench(b)
		// A small working set of hot blobs plus a PUT every 8th op:
		// roughly the worker-fleet profile (read-mostly with a trickle of
		// fresh artifacts).
		var hot []string
		for i := int64(0); i < 8; i++ {
			d, err := store.Put(mkBlob(i))
			if err != nil {
				b.Fatal(err)
			}
			hot = append(hot, d)
		}
		var seed int64 = 1 << 20
		var op int64
		b.SetBytes(benchBlobSize)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				n := atomic.AddInt64(&op, 1)
				if n%8 == 0 {
					data := mkBlob(atomic.AddInt64(&seed, 1))
					if err := client.PutBlob(context.Background(), hostutil.HashBytes(data), data); err != nil {
						b.Error(err)
						return
					}
					continue
				}
				if _, err := client.GetBlob(context.Background(), hot[n%int64(len(hot))]); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}
