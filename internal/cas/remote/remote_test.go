package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
)

func newStore(t *testing.T) *cas.Store {
	t.Helper()
	s, err := cas.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func serve(t *testing.T, s *cas.Store) (*httptest.Server, *Client) {
	t.Helper()
	srv := httptest.NewServer(NewServer(s))
	t.Cleanup(srv.Close)
	return srv, NewClient(srv.URL, time.Second)
}

func TestBlobRoundTrip(t *testing.T) {
	_, client := serve(t, newStore(t))
	data := []byte("a kernel image crossing the network")
	digest := hostutil.HashBytes(data)

	if ok, err := client.HasBlob(context.Background(), digest); err != nil || ok {
		t.Fatalf("HasBlob before put = %v, %v", ok, err)
	}
	if _, err := client.GetBlob(context.Background(), digest); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("GetBlob before put: %v, want ErrNotFound", err)
	}
	if err := client.PutBlob(context.Background(), digest, data); err != nil {
		t.Fatal(err)
	}
	if ok, err := client.HasBlob(context.Background(), digest); err != nil || !ok {
		t.Fatalf("HasBlob after put = %v, %v", ok, err)
	}
	got, err := client.GetBlob(context.Background(), digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("GetBlob = %q", got)
	}
}

func TestServerRejectsDigestMismatch(t *testing.T) {
	_, client := serve(t, newStore(t))
	wrong := hostutil.HashBytes([]byte("something else"))
	if err := client.PutBlob(context.Background(), wrong, []byte("not matching")); err == nil {
		t.Fatal("server accepted a blob whose bytes do not match the digest")
	}
}

func TestActionRoundTrip(t *testing.T) {
	store := newStore(t)
	_, client := serve(t, store)
	digest, _ := store.Put([]byte("output"))
	key := hostutil.HashStrings("task key")
	a := &cas.Action{Key: key, Task: "bin:w", Outputs: []cas.Output{{Name: "w-bin", Digest: digest, Mode: 0o644, Size: 6}}}
	if err := client.PutAction(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	got, err := client.GetAction(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != "bin:w" || len(got.Outputs) != 1 || got.Outputs[0].Digest != digest {
		t.Fatalf("round-trip mangled action: %+v", got)
	}
	if _, err := client.GetAction(context.Background(), hostutil.HashStrings("absent")); !errors.Is(err, cas.ErrNotFound) {
		t.Fatalf("missing action err = %v", err)
	}
}

func TestServerRejectsKeyMismatch(t *testing.T) {
	_, client := serve(t, newStore(t))
	a := &cas.Action{Key: hostutil.HashStrings("actual"), Task: "bin:w"}
	req, _ := http.NewRequest(http.MethodPut,
		client.actionURL(hostutil.HashStrings("different")), bytes.NewReader(mustJSON(t, a)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, a *cas.Action) []byte {
	t.Helper()
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// A local miss backed by a remote hit restores the artifact and writes it
// through to the local store.
func TestCacheRemoteHitWriteThrough(t *testing.T) {
	serverStore := newStore(t)
	_, client := serve(t, serverStore)

	// Populate the server side as a previous builder would.
	producer := cas.NewCache(newStore(t), client)
	dir := t.TempDir()
	out := filepath.Join(dir, "w-bin")
	os.WriteFile(out, []byte("shared boot binary"), 0o644)
	key := hostutil.HashStrings("task digest")
	if _, err := producer.Publish(key, "bin:w", []string{out}); err != nil {
		t.Fatal(err)
	}

	// A fresh machine: empty local store, same remote.
	consumerLocal := newStore(t)
	consumer := cas.NewCache(consumerLocal, client)
	a := consumer.Lookup(key)
	if a == nil {
		t.Fatal("remote action lookup missed")
	}
	restored := filepath.Join(t.TempDir(), "w-bin")
	if err := consumer.Restore(a, []string{restored}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(restored)
	if err != nil || string(data) != "shared boot binary" {
		t.Fatalf("restored %q, %v", data, err)
	}
	st := consumer.Stats()
	if st.RemoteHits != 1 || st.RemoteBlobHits != 1 {
		t.Fatalf("stats %+v, want remote action+blob hits", st)
	}
	// Write-through: the blob is now local, a second restore needs no remote.
	if !consumerLocal.Has(a.Outputs[0].Digest) {
		t.Fatal("remote blob not written through to local store")
	}
}

// An unreachable remote degrades to local-only operation: lookups and
// publishes succeed, and after a few failures the breaker stops calling
// the remote at all.
func TestCacheUnreachableRemoteFallsBack(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	c := cas.NewCache(newStore(t), NewClient(deadURL, 200*time.Millisecond))
	dir := t.TempDir()
	out := filepath.Join(dir, "w-bin")
	os.WriteFile(out, []byte("artifact"), 0o644)
	key := hostutil.HashStrings("key")
	if c.Lookup(key) != nil {
		t.Fatal("lookup against dead remote should miss")
	}
	if _, err := c.Publish(key, "bin:w", []string{out}); err != nil {
		t.Fatalf("publish must succeed locally despite dead remote: %v", err)
	}
	if c.Lookup(key) == nil {
		t.Fatal("local lookup after publish missed")
	}
	// Drive the breaker past its threshold.
	for i := 0; i < 5; i++ {
		c.Lookup(hostutil.HashStrings("miss", string(rune('a'+i))))
	}
	st := c.Stats()
	if st.RemoteErrors == 0 {
		t.Fatal("remote errors not counted")
	}
	if !st.RemoteTripped {
		t.Fatal("breaker should have tripped after repeated failures")
	}
}

func TestStatsEndpoint(t *testing.T) {
	store := newStore(t)
	srv, _ := serve(t, store)
	store.Put([]byte("blob"))
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
