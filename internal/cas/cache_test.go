package cas

import (
	"bytes"
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"firemarshal/internal/hostutil"
	"firemarshal/internal/obs"
)

// fakeRemote is an in-memory cas.Remote with switchable failure modes.
type fakeRemote struct {
	mu      sync.Mutex
	blobs   map[string][]byte
	actions map[string]*Action
	err     error // returned from every call while set
	calls   int
}

func newFakeRemote() *fakeRemote {
	return &fakeRemote{blobs: map[string][]byte{}, actions: map[string]*Action{}}
}

func (f *fakeRemote) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *fakeRemote) enter() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	return f.err
}

func (f *fakeRemote) GetBlob(_ context.Context, digest string) ([]byte, error) {
	if err := f.enter(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	data, ok := f.blobs[digest]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), data...), nil
}

func (f *fakeRemote) PutBlob(_ context.Context, digest string, data []byte) error {
	if err := f.enter(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.blobs[digest] = append([]byte(nil), data...)
	return nil
}

func (f *fakeRemote) GetAction(_ context.Context, key string) (*Action, error) {
	if err := f.enter(); err != nil {
		return nil, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	a, ok := f.actions[key]
	if !ok {
		return nil, ErrNotFound
	}
	return a, nil
}

func (f *fakeRemote) PutAction(_ context.Context, a *Action) error {
	if err := f.enter(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.actions[a.Key] = a
	return nil
}

// TestBreakerHalfOpenRecovery drives the full breaker state machine on a
// fake clock: consecutive failures trip it open, the cooldown admits one
// half-open probe, a failed probe doubles the cooldown, and a successful
// probe closes the breaker — the remote is never permanently written off.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rem := newFakeRemote()
	rem.err = os.ErrDeadlineExceeded // any non-NotFound error is a health failure
	c := NewCache(store, rem)
	reg := obs.NewRegistry()
	c.SetObs(reg)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	key := hostutil.HashBytes([]byte("missing-action"))

	for i := 0; i < remoteTripThreshold; i++ {
		c.Lookup(key)
	}
	if st := c.BreakerState(); st != breakerOpen {
		t.Fatalf("after %d failures state = %d, want open(%d)", remoteTripThreshold, st, breakerOpen)
	}
	if g := reg.Gauge("cas_remote_breaker_state").Value(); g != breakerOpen {
		t.Errorf("cas_remote_breaker_state = %g, want %d", g, breakerOpen)
	}

	// Open: calls are refused without touching the remote.
	before := rem.Calls()
	c.Lookup(key)
	if rem.Calls() != before {
		t.Fatal("open breaker let a call through before the cooldown")
	}

	// Cooldown elapsed: exactly one half-open probe goes through; it
	// fails, so the breaker reopens with the cooldown doubled.
	now = now.Add(defaultBreakerCooldown)
	c.Lookup(key)
	if rem.Calls() != before+1 {
		t.Fatalf("half-open probe count = %d, want %d", rem.Calls()-before, 1)
	}
	if st := c.BreakerState(); st != breakerOpen {
		t.Fatalf("after failed probe state = %d, want open", st)
	}

	// The doubled cooldown holds: the base cooldown is no longer enough.
	now = now.Add(defaultBreakerCooldown)
	before = rem.Calls()
	c.Lookup(key)
	if rem.Calls() != before {
		t.Fatal("reopened breaker ignored the doubled cooldown")
	}

	// Another base cooldown later the probe runs again; the remote is
	// back (a NotFound answer is healthy), so the breaker closes.
	rem.err = nil
	now = now.Add(defaultBreakerCooldown)
	c.Lookup(key)
	if st := c.BreakerState(); st != breakerClosed {
		t.Fatalf("after successful probe state = %d, want closed", st)
	}
	if g := reg.Gauge("cas_remote_breaker_state").Value(); g != breakerClosed {
		t.Errorf("cas_remote_breaker_state = %g, want %d", g, breakerClosed)
	}
	// Closed again: traffic flows on every call.
	before = rem.Calls()
	c.Lookup(key)
	c.Lookup(key)
	if rem.Calls() != before+2 {
		t.Errorf("closed breaker passed %d of 2 calls", rem.Calls()-before)
	}
}

// TestBreakerHalfOpenSingleProbe: while one probe is in flight, every
// other caller is refused — half-open risks exactly one request.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rem := newFakeRemote()
	rem.err = os.ErrDeadlineExceeded
	c := NewCache(store, rem)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	key := hostutil.HashBytes([]byte("x"))
	for i := 0; i < remoteTripThreshold; i++ {
		c.Lookup(key)
	}
	now = now.Add(defaultBreakerCooldown)
	if !c.remoteUsable() {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if c.remoteUsable() {
		t.Fatal("second concurrent caller admitted during half-open probe")
	}
	c.noteRemote(nil) // probe succeeds
	if st := c.BreakerState(); st != breakerClosed {
		t.Fatalf("state = %d after successful probe, want closed", st)
	}
}

// TestBreakerRateLimitHold: a 429 past the client's retry budget holds
// remote traffic for exactly the server's Retry-After — without counting
// as a failure or moving the breaker.
func TestBreakerRateLimitHold(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rem := newFakeRemote()
	rem.err = &RateLimitedError{RetryAfter: 30 * time.Second}
	c := NewCache(store, rem)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	key := hostutil.HashBytes([]byte("y"))

	c.Lookup(key)
	if st := c.BreakerState(); st != breakerClosed {
		t.Fatalf("rate limit moved the breaker to %d; it is not a health failure", st)
	}
	if got := c.Stats().RemoteRateLimited; got != 1 {
		t.Errorf("RemoteRateLimited = %d, want 1", got)
	}
	// Held: no remote traffic until the hint expires.
	before := rem.Calls()
	c.Lookup(key)
	if rem.Calls() != before {
		t.Fatal("hold ignored: call went to a remote that asked us to back off")
	}
	rem.err = nil
	now = now.Add(31 * time.Second)
	c.Lookup(key)
	if rem.Calls() != before+1 {
		t.Fatal("hold never expired")
	}
	if c.Stats().RemoteErrors != 0 {
		t.Errorf("RemoteErrors = %d after pure rate limiting, want 0", c.Stats().RemoteErrors)
	}
}

// TestConcurrentCorruptBlobSelfHeal: many readers hit one corrupt local
// blob at once. Every reader must come back with the correct verified
// bytes (served from the remote), and the local blob must end up healed
// on disk. Run under -race in the chaos gate.
func TestConcurrentCorruptBlobSelfHeal(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("the artifact every reader must see")
	digest, err := store.Put(want)
	if err != nil {
		t.Fatal(err)
	}
	// Rot the blob in place; the digest no longer matches.
	if err := os.WriteFile(store.blobPath(digest), []byte("bit-rotted garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	rem := newFakeRemote()
	rem.blobs[digest] = want
	c := NewCache(store, rem)
	c.SetObs(obs.NewRegistry())

	const readers = 16
	var wg sync.WaitGroup
	errs := make(chan error, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := c.blob(digest)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(data, want) {
				errs <- os.ErrInvalid
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent reader: %v", err)
	}

	// The corrupt bytes were quarantined and the blob healed on disk:
	// a fresh read succeeds locally without touching the remote.
	before := rem.Calls()
	if data, err := store.Get(digest); err != nil || !bytes.Equal(data, want) {
		t.Fatalf("local blob after heal: %q, %v", data, err)
	}
	if rem.Calls() != before {
		t.Error("post-heal read still needed the remote")
	}
	if healed := c.Stats().BlobsHealed; healed == 0 {
		t.Error("BlobsHealed = 0; the corrupt read never counted as a heal")
	}
	if store.Quarantined() == 0 {
		t.Error("corrupt blob was never quarantined")
	}
}
