package cas

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"firemarshal/internal/hostutil"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTestStore(t)
	data := []byte("boot binary bytes")
	digest, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if digest != hostutil.HashBytes(data) {
		t.Fatalf("digest mismatch: %s", digest)
	}
	if !s.Has(digest) {
		t.Fatal("Has after Put = false")
	}
	got, err := s.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get returned %q", got)
	}
}

func TestPutDeduplicates(t *testing.T) {
	s := openTestStore(t)
	d1, _ := s.Put([]byte("same"))
	d2, _ := s.Put([]byte("same"))
	if d1 != d2 {
		t.Fatal("identical content produced different digests")
	}
	puts, dedups := s.PutStats()
	if puts != 1 || dedups != 1 {
		t.Fatalf("puts=%d dedups=%d, want 1/1", puts, dedups)
	}
	u, err := s.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Blobs != 1 {
		t.Fatalf("blob count %d, want 1 (content stored once)", u.Blobs)
	}
}

func TestGetMissing(t *testing.T) {
	s := openTestStore(t)
	_, err := s.Get(hostutil.HashBytes([]byte("never stored")))
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("zzz-not-a-digest"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("invalid digest err = %v, want ErrNotFound", err)
	}
}

// A blob truncated on disk must be detected, reported as corrupt, and
// removed so a later Put can repopulate it.
func TestTruncatedBlobDetected(t *testing.T) {
	s := openTestStore(t)
	data := []byte("a disk image that will be truncated")
	digest, _ := s.Put(data)
	if err := os.WriteFile(s.blobPath(digest), data[:5], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := s.Get(digest)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	if s.Has(digest) {
		t.Fatal("corrupt blob should have been removed")
	}
	// The store self-heals on the next Put.
	if _, err := s.Put(data); err != nil {
		t.Fatal(err)
	}
	if got, err := s.Get(digest); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("re-put blob unreadable: %v", err)
	}
}

// A blob whose bytes were replaced wholesale (digest mismatch, same length)
// must never be served.
func TestDigestMismatchDetected(t *testing.T) {
	s := openTestStore(t)
	data := []byte("original artifact")
	digest, _ := s.Put(data)
	bogus := []byte("tampered artifact")
	if err := os.WriteFile(s.blobPath(digest), bogus, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// Concurrent writers of the same blob must all succeed and leave exactly
// one intact copy (the atomic-write path: unique temp file + rename).
func TestConcurrentWritersSameBlob(t *testing.T) {
	s := openTestStore(t)
	data := bytes.Repeat([]byte("artifact"), 4096)
	const writers = 16
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Put(data)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", i, err)
		}
	}
	digest := hostutil.HashBytes(data)
	got, err := s.Get(digest)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("blob corrupt after concurrent writes: %v", err)
	}
	u, _ := s.Usage()
	if u.Blobs != 1 {
		t.Fatalf("blob count %d, want 1", u.Blobs)
	}
}

func TestActionRoundTrip(t *testing.T) {
	s := openTestStore(t)
	digest, _ := s.Put([]byte("out"))
	key := hostutil.HashStrings("task", "bin:w")
	a := &Action{Key: key, Task: "bin:w", Outputs: []Output{{Name: "w-bin", Digest: digest, Mode: 0o644, Size: 3}}}
	if err := s.PutAction(a); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetAction(key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Task != "bin:w" || len(got.Outputs) != 1 || got.Outputs[0].Digest != digest {
		t.Fatalf("round-trip mangled entry: %+v", got)
	}
	if _, err := s.GetAction(hostutil.HashStrings("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing action err = %v", err)
	}
}

func TestGC(t *testing.T) {
	s := openTestStore(t)
	keep, _ := s.Put([]byte("kept artifact"))
	drop, _ := s.Put([]byte("dropped artifact"))
	liveKey := hostutil.HashStrings("live")
	deadKey := hostutil.HashStrings("dead")
	s.PutAction(&Action{Key: liveKey, Task: "bin:a", Outputs: []Output{{Name: "a-bin", Digest: keep}}})
	s.PutAction(&Action{Key: deadKey, Task: "bin:b", Outputs: []Output{{Name: "b-bin", Digest: drop}}})
	pinned, _ := s.Put([]byte("checkpoint page of a live run"))

	st, err := s.GC(map[string]bool{liveKey: true}, map[string]bool{pinned: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.ActionsRemoved != 1 || st.BlobsRemoved != 1 {
		t.Fatalf("gc stats %+v, want 1 action + 1 blob removed", st)
	}
	if st.BytesReclaimed != int64(len("dropped artifact")) {
		t.Fatalf("bytes reclaimed %d", st.BytesReclaimed)
	}
	if !s.Has(keep) || s.Has(drop) {
		t.Fatal("gc removed the wrong blob")
	}
	if !s.Has(pinned) {
		t.Fatal("gc removed a pinned blob")
	}
	if _, err := s.GetAction(liveKey); err != nil {
		t.Fatal("gc removed the live action")
	}

	// With the pin released, the blob is collectible.
	st, err = s.GC(map[string]bool{liveKey: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Has(pinned) || st.BlobsRemoved != 1 {
		t.Fatal("unpinned checkpoint blob survived gc")
	}
}

func TestVerifyReportsProblems(t *testing.T) {
	s := openTestStore(t)
	good, _ := s.Put([]byte("good"))
	bad, _ := s.Put([]byte("will corrupt"))
	os.WriteFile(s.blobPath(bad), []byte("corrupted!!!"), 0o644)
	key := hostutil.HashStrings("k")
	s.PutAction(&Action{Key: key, Task: "bin:w", Outputs: []Output{{Name: "w-bin", Digest: bad}}})

	problems, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	// The corrupt blob is flagged (and removed), and the action that
	// referenced it is flagged as missing its output.
	if len(problems) != 2 {
		t.Fatalf("problems = %v, want 2", problems)
	}
	if s.Has(bad) {
		t.Fatal("verify should remove corrupt blobs")
	}
	if !s.Has(good) {
		t.Fatal("verify removed a healthy blob")
	}

	if problems, _ = s.Verify(); len(problems) != 1 {
		t.Fatalf("second verify problems = %v, want only the dangling action", problems)
	}
}

// Cache-level behaviour without a remote: restore falls back cleanly when a
// referenced blob is gone.
func TestCacheRestoreMissingBlob(t *testing.T) {
	c := NewCache(openTestStore(t), nil)
	dir := t.TempDir()
	src := filepath.Join(dir, "out")
	os.WriteFile(src, []byte("artifact"), 0o644)
	a, err := c.Publish(hostutil.HashStrings("key"), "bin:w", []string{src})
	if err != nil {
		t.Fatal(err)
	}
	// Wipe the blob; restore must fail (caller then re-executes the task).
	os.Remove(c.Local().blobPath(a.Outputs[0].Digest))
	if err := c.Restore(a, []string{filepath.Join(dir, "restored")}); err == nil {
		t.Fatal("restore of missing blob should fail")
	}
}

func TestCachePublishRestore(t *testing.T) {
	c := NewCache(openTestStore(t), nil)
	dir := t.TempDir()
	var targets []string
	for i := 0; i < 3; i++ {
		p := filepath.Join(dir, fmt.Sprintf("out%d", i))
		os.WriteFile(p, []byte(fmt.Sprintf("artifact %d", i)), 0o755)
		targets = append(targets, p)
	}
	key := hostutil.HashStrings("key")
	a, err := c.Publish(key, "img:w", targets)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Lookup(key); got == nil || len(got.Outputs) != 3 {
		t.Fatalf("lookup after publish: %+v", got)
	}
	restoreDir := t.TempDir()
	var restored []string
	for i := range targets {
		restored = append(restored, filepath.Join(restoreDir, filepath.Base(targets[i])))
	}
	if err := c.Restore(a, restored); err != nil {
		t.Fatal(err)
	}
	for i, p := range restored {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("artifact %d", i); string(data) != want {
			t.Fatalf("restored %s = %q, want %q", p, data, want)
		}
		if fi, _ := os.Stat(p); fi.Mode().Perm() != 0o755 {
			t.Fatalf("restored mode %v, want 0755", fi.Mode().Perm())
		}
	}
	st := c.Stats()
	if st.Hits != 1 || st.BlobsRestored != 3 || st.Published != 1 {
		t.Fatalf("stats %+v", st)
	}
}
