// Package cas implements a SHA-256 content-addressed artifact store with an
// action cache, the persistence layer behind FireMarshal's shared build
// cache. The store holds two kinds of entries:
//
//   - blobs: immutable artifact bytes addressed by their SHA-256 digest
//     (boot binaries, kernels, disk images). Identical content is stored
//     exactly once no matter how many workloads produce it.
//   - actions: records mapping a task digest (the hash of a build step's
//     name, input hashes, and output names) to the digests of the outputs
//     that step produced. The build engine consults actions before running
//     a task and restores outputs from blobs on a hit.
//
// Writes are atomic (temp file + rename via hostutil), so concurrent
// builders sharing one store never observe partial entries, and reads
// re-verify the digest so corruption is detected — a corrupt blob is
// moved aside into <dir>/quarantine and reported as missing, degrading
// to a refetch/rebuild rather than a wrong artifact. Quarantined blobs
// are invisible to Get/Has/Usage/GC/Verify (only <dir>/blobs is
// walked), preserved for post-mortem, and rewritten in place by the
// next Put or a `cache verify -repair`. This operationalizes the
// paper's reproducibility guarantee: identical inputs ⇒ identical
// digest ⇒ one stored artifact.
package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"firemarshal/internal/hostutil"
)

// ErrNotFound reports a blob or action absent from a store.
var ErrNotFound = errors.New("cas: not found")

// ErrCorrupt reports a blob whose bytes no longer match its digest.
var ErrCorrupt = errors.New("cas: corrupt blob")

// Store is a content-addressed store rooted at a directory:
//
//	<dir>/blobs/<aa>/<digest>      artifact bytes, digest = sha256 hex
//	<dir>/actions/<aa>/<key>.json  action-cache entries
type Store struct {
	dir    string
	tamper Tamper

	mu          sync.Mutex
	puts        uint64         // blobs newly written
	dedups      uint64         // puts that found the blob already present
	quarantined uint64         // corrupt blobs moved into <dir>/quarantine
	held        map[string]int // digests pinned against a concurrent GC sweep

	// heldUntil records when a digest's last hold was released. A sweep
	// must spare a digest held at ANY point since its snapshot — a publish
	// may finish (and release) after the mark phase already missed its
	// action but before the sweep reaches its blob. GC prunes entries
	// older than its own snapshot once they can no longer matter.
	heldUntil map[string]time.Time

	// gcMu serializes collections: concurrent sweeps would double-count
	// stats and race each other's heldUntil pruning for no benefit.
	gcMu sync.Mutex

	// gcSweepHook, when non-nil, runs after GC's mark phase and before
	// the blob sweep — the test seam for deterministic GC-vs-Put races.
	gcSweepHook func()
}

// Tamper is a fault-injection hook on the blob I/O paths, implemented by
// the chaos package (duck-typed here to keep cas dependency-free).
// ReadBlob may return altered bytes for what was read from disk;
// WriteBlob may alter the bytes about to be written or fail the write
// outright. Production stores leave it nil.
type Tamper interface {
	ReadBlob(digest string, data []byte) []byte
	WriteBlob(digest string, data []byte) ([]byte, error)
}

// SetTamper installs a fault-injection hook. Call before the store is
// shared across goroutines.
func (s *Store) SetTamper(t Tamper) { s.tamper = t }

// Action is one action-cache entry: the outputs a task produced for a given
// input digest. Outputs are ordered by the sorted base names of the task's
// targets, so a restore into a different checkout maps positionally.
type Action struct {
	// Key is the task digest this entry is stored under.
	Key string `json:"key"`
	// Task is the producing task's name (for stats and debugging).
	Task string `json:"task"`
	// Outputs lists the produced artifacts in sorted-target order.
	Outputs []Output `json:"outputs"`
}

// Output is one produced artifact of an action.
type Output struct {
	// Name is the target's base name (stable across checkouts).
	Name string `json:"name"`
	// Digest addresses the artifact bytes in the blob store.
	Digest string `json:"digest"`
	// Mode is the file mode to restore with.
	Mode uint32 `json:"mode"`
	// Size is the artifact size in bytes (for stats without a blob read).
	Size int64 `json:"size"`
}

// Usage summarizes a store's disk contents.
type Usage struct {
	Blobs     int
	BlobBytes int64
	Actions   int
}

// GCStats reports what a garbage collection removed.
type GCStats struct {
	ActionsRemoved int
	BlobsRemoved   int
	BytesReclaimed int64
}

// Open initializes (or reuses) a store at dir. Stores written by the v1
// flat layout (entries directly under <dir>/blobs and <dir>/actions) are
// migrated into the sharded layout one-shot, so old caches keep working
// after an upgrade.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cas: empty store directory")
	}
	for _, sub := range []string{"blobs", "actions"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cas: opening store: %w", err)
		}
	}
	s := &Store{dir: dir, held: map[string]int{}}
	if err := s.migrateFlat(); err != nil {
		return nil, fmt.Errorf("cas: migrating flat layout: %w", err)
	}
	return s, nil
}

// migrateFlat moves v1 flat-layout entries (<dir>/blobs/<digest>,
// <dir>/actions/<key>.json) into their <aa>/ shard directories. Each move
// is an atomic same-filesystem rename, so a crash mid-migration leaves a
// mixed-but-valid store the next Open finishes; re-running on an
// already-sharded store is a no-op (idempotent). A rename over an
// existing sharded entry is harmless: both names are the same
// content-addressed bytes.
func (s *Store) migrateFlat() error {
	for _, kind := range []string{"blobs", "actions"} {
		root := filepath.Join(s.dir, kind)
		entries, err := os.ReadDir(root)
		if err != nil {
			return err
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !validDigest(strings.TrimSuffix(name, ".json")) {
				continue // shard dirs, temp files, junk: not flat entries
			}
			shard := filepath.Join(root, name[:2])
			if err := os.MkdirAll(shard, 0o755); err != nil {
				return err
			}
			if err := os.Rename(filepath.Join(root, name), filepath.Join(shard, name)); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
	}
	return nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.dir, "blobs", digest[:2], digest)
}

func (s *Store) actionPath(key string) string {
	return filepath.Join(s.dir, "actions", key[:2], key+".json")
}

// quarantinePath is where a corrupt blob is moved aside. The quarantine
// directory is deliberately outside walk()'s reach, so quarantined bytes
// never count toward usage, never satisfy reads, and are never GC'd —
// they exist only for post-mortem inspection.
func (s *Store) quarantinePath(digest string) string {
	return filepath.Join(s.dir, "quarantine", digest)
}

// quarantine moves a corrupt blob aside instead of deleting it. Rename
// is atomic, so concurrent readers either see the (corrupt, re-verified)
// blob or a miss — never a partial file; when several readers race to
// quarantine the same blob, exactly one rename wins and the rest are
// harmless no-ops.
func (s *Store) quarantine(digest string) {
	qp := s.quarantinePath(digest)
	if err := os.MkdirAll(filepath.Dir(qp), 0o755); err != nil {
		os.Remove(s.blobPath(digest)) // fall back to the old delete-on-corrupt
		return
	}
	if err := os.Rename(s.blobPath(digest), qp); err != nil {
		if !os.IsNotExist(err) {
			os.Remove(s.blobPath(digest))
		}
		return
	}
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
}

// Quarantined reports how many corrupt blobs this store handle has moved
// into quarantine since it was opened.
func (s *Store) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// validDigest guards path construction against junk keys.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for _, c := range d {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Hold pins digest against a concurrent GC sweep until the returned
// release is called (calling it more than once is safe). Put paths hold
// their digest for the duration of the write automatically; multi-step
// publishers (blobs first, then the action that references them) hold
// across the whole publish so a sweep between the steps cannot reap a
// blob its about-to-exist action references.
func (s *Store) Hold(digest string) (release func()) {
	s.mu.Lock()
	if s.held == nil {
		s.held = map[string]int{}
	}
	s.held[digest]++
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			if s.held[digest]--; s.held[digest] <= 0 {
				delete(s.held, digest)
				if s.heldUntil == nil {
					s.heldUntil = map[string]time.Time{}
				}
				s.heldUntil[digest] = time.Now()
			}
			s.mu.Unlock()
		})
	}
}

// heldSince reports whether digest is held now or was held at any moment
// at or after start — the guard GC's sweep consults. The "was held"
// half closes the publish race: a hold taken before the mark phase and
// released before the sweep still means an action referencing the blob
// may have landed after the snapshot.
func (s *Store) heldSince(digest string, start time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.held[digest] > 0 || !s.heldUntil[digest].Before(start)
}

// Put stores data and returns its digest. Storing already-present content
// is a cheap no-op (counted as a dedup).
func (s *Store) Put(data []byte) (string, error) {
	digest := hostutil.HashBytes(data)
	release := s.Hold(digest)
	defer release()
	path := s.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		s.mu.Lock()
		s.dedups++
		s.mu.Unlock()
		return digest, nil
	}
	// The digest above is of the caller's bytes; tampering after hashing
	// means an injected torn write lands under the full digest — exactly
	// the corruption shape Get's re-verification must catch.
	if s.tamper != nil {
		var err error
		if data, err = s.tamper.WriteBlob(digest, data); err != nil {
			return "", fmt.Errorf("cas: writing blob %s: %w", digest, err)
		}
	}
	if err := hostutil.WriteFileAtomic(path, data, 0o644); err != nil {
		return "", fmt.Errorf("cas: writing blob %s: %w", digest, err)
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return digest, nil
}

// PutFile stores the contents of a host file, streaming it (hash pass,
// then copy) rather than buffering it whole.
func (s *Store) PutFile(path string) (string, int64, error) {
	digest, err := hostutil.HashFile(path)
	if err != nil {
		return "", 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	n, err := s.PutStream(digest, f)
	return digest, n, err
}

// Has reports whether a blob is present (without verifying its content).
func (s *Store) Has(digest string) bool {
	if !validDigest(digest) {
		return false
	}
	_, err := os.Stat(s.blobPath(digest))
	return err == nil
}

// Get returns a blob's bytes, re-verifying the digest. A blob whose content
// no longer matches (truncation, bit rot) is moved into quarantine so the
// next write can repopulate it, and ErrCorrupt is returned — the caller's
// cue to refetch from a remote (self-heal) or rebuild.
func (s *Store) Get(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("cas: %w: invalid digest %q", ErrNotFound, digest)
	}
	data, err := os.ReadFile(s.blobPath(digest))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("cas: blob %s: %w", digest, ErrNotFound)
	}
	if err != nil {
		return nil, err
	}
	if s.tamper != nil {
		data = s.tamper.ReadBlob(digest, data)
	}
	if hostutil.HashBytes(data) != digest {
		s.quarantine(digest)
		return nil, fmt.Errorf("cas: blob %s: %w", digest, ErrCorrupt)
	}
	return data, nil
}

// ErrRead marks a PutStream failure caused by the caller's reader — an
// upload torn mid-body — as opposed to store-side I/O. The cache server
// uses it to answer a disconnecting client with a 4xx instead of
// blaming itself with a 5xx.
var ErrRead = errors.New("cas: blob source read failed")

// readTracker remembers whether a copy failed on the read side.
type readTracker struct {
	r   io.Reader
	err error
}

func (t *readTracker) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err != nil && err != io.EOF {
		t.err = err
	}
	return n, err
}

// OpenBlob opens a blob for a streaming read, returning its size. This is
// the lock-free fast path the cache server streams GET bodies from: no
// verification happens here (re-hashing would mean reading the blob
// twice), because every consumer of streamed bytes — the remote client,
// checkpoint restore — re-verifies the digest itself; `cache verify`
// covers bit rot at rest. With a chaos tamper hook installed the read
// degrades to the buffered, verifying Get so fault injection keeps its
// bite.
func (s *Store) OpenBlob(digest string) (io.ReadCloser, int64, error) {
	if !validDigest(digest) {
		return nil, 0, fmt.Errorf("cas: %w: invalid digest %q", ErrNotFound, digest)
	}
	if s.tamper != nil {
		data, err := s.Get(digest)
		if err != nil {
			return nil, 0, err
		}
		return io.NopCloser(bytes.NewReader(data)), int64(len(data)), nil
	}
	f, err := os.Open(s.blobPath(digest))
	if os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("cas: blob %s: %w", digest, ErrNotFound)
	}
	if err != nil {
		return nil, 0, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	return f, fi.Size(), nil
}

// BlobSize reports a present blob's size without opening it.
func (s *Store) BlobSize(digest string) (int64, error) {
	if !validDigest(digest) {
		return 0, fmt.Errorf("cas: %w: invalid digest %q", ErrNotFound, digest)
	}
	fi, err := os.Stat(s.blobPath(digest))
	if os.IsNotExist(err) {
		return 0, fmt.Errorf("cas: blob %s: %w", digest, ErrNotFound)
	}
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

// BlobFilePath returns the on-disk path of a present blob, for callers
// that stream it out directly (resumable uploads seek into it). The file
// is immutable once placed, so handing out the path is safe.
func (s *Store) BlobFilePath(digest string) (string, error) {
	if _, err := s.BlobSize(digest); err != nil {
		return "", err
	}
	return s.blobPath(digest), nil
}

// PutStream stores a blob from r, hashing while it spills to a temp file
// in the destination shard — the whole-blob buffer of Put never exists,
// so a 1 GiB checkpoint upload costs pages, not heap. The temp file only
// renames into place if the streamed bytes hash to digest; a mismatch or
// torn read leaves no trace. Returns the byte count written (or the
// existing size on dedup).
func (s *Store) PutStream(digest string, r io.Reader) (int64, error) {
	if !validDigest(digest) {
		return 0, fmt.Errorf("cas: invalid digest %q", digest)
	}
	release := s.Hold(digest)
	defer release()
	path := s.blobPath(digest)
	if fi, err := os.Stat(path); err == nil {
		s.mu.Lock()
		s.dedups++
		s.mu.Unlock()
		return fi.Size(), nil
	}
	if s.tamper != nil {
		// Chaos runs buffer so the byte-level tamper hooks still apply.
		data, err := io.ReadAll(r)
		if err != nil {
			return 0, fmt.Errorf("cas: streaming blob %s: %w: %w", digest, ErrRead, err)
		}
		if hostutil.HashBytes(data) != digest {
			return 0, fmt.Errorf("cas: blob %s: streamed bytes do not match digest: %w", digest, ErrCorrupt)
		}
		_, err = s.Put(data)
		return int64(len(data)), err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return 0, err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-put-*")
	if err != nil {
		return 0, err
	}
	tmpName := tmp.Name()
	fail := func(err error) (int64, error) {
		tmp.Close()
		os.Remove(tmpName)
		return 0, err
	}
	h := sha256.New()
	tr := &readTracker{r: r}
	n, err := io.Copy(io.MultiWriter(tmp, h), tr)
	if err != nil {
		if tr.err != nil {
			return fail(fmt.Errorf("cas: streaming blob %s: %w: %w", digest, ErrRead, err))
		}
		return fail(fmt.Errorf("cas: writing blob %s: %w", digest, err))
	}
	if hex.EncodeToString(h.Sum(nil)) != digest {
		return fail(fmt.Errorf("cas: blob %s: streamed bytes do not match digest: %w", digest, ErrCorrupt))
	}
	if err := tmp.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return 0, err
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return n, nil
}

// IngestFile moves an already-materialized file into the store as the
// blob for digest — the final step of a resumable upload, whose chunks
// were assembled outside blobs/. The file is re-hashed first; on a
// mismatch it is left in place (the caller owns the partial) and
// ErrCorrupt returned. On success the file is renamed into its shard
// (same filesystem, atomic) and no longer exists at path.
func (s *Store) IngestFile(digest, path string) error {
	if !validDigest(digest) {
		return fmt.Errorf("cas: invalid digest %q", digest)
	}
	release := s.Hold(digest)
	defer release()
	dst := s.blobPath(digest)
	if _, err := os.Stat(dst); err == nil {
		os.Remove(path)
		s.mu.Lock()
		s.dedups++
		s.mu.Unlock()
		return nil
	}
	got, err := hostutil.HashFile(path)
	if err != nil {
		return err
	}
	if got != digest {
		return fmt.Errorf("cas: ingest %s: file hashes to %s: %w", digest, got, ErrCorrupt)
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	if err := os.Chmod(path, 0o644); err != nil {
		return err
	}
	if err := os.Rename(path, dst); err != nil {
		return err
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return nil
}

// UploadPath is where a resumable upload for digest is staged. It lives
// under <dir>/uploads — outside blobs/ — so partial bytes are invisible
// to Get/Has/Usage/GC until IngestFile promotes them.
func (s *Store) UploadPath(digest string) (string, error) {
	if !validDigest(digest) {
		return "", fmt.Errorf("cas: invalid digest %q", digest)
	}
	dir := filepath.Join(s.dir, "uploads")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	return filepath.Join(dir, digest), nil
}

// PutAction stores an action-cache entry under its key.
func (s *Store) PutAction(a *Action) error {
	if !validDigest(a.Key) {
		return fmt.Errorf("cas: invalid action key %q", a.Key)
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return hostutil.WriteFileAtomic(s.actionPath(a.Key), data, 0o644)
}

// GetAction returns the entry for key, or ErrNotFound.
func (s *Store) GetAction(key string) (*Action, error) {
	if !validDigest(key) {
		return nil, fmt.Errorf("cas: %w: invalid action key %q", ErrNotFound, key)
	}
	data, err := os.ReadFile(s.actionPath(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("cas: action %s: %w", key, ErrNotFound)
	}
	if err != nil {
		return nil, err
	}
	var a Action
	if err := json.Unmarshal(data, &a); err != nil {
		// A mangled entry behaves like a miss; drop it.
		os.Remove(s.actionPath(key))
		return nil, fmt.Errorf("cas: action %s: %w", key, ErrCorrupt)
	}
	return &a, nil
}

// walk visits every entry file under <dir>/<kind>.
func (s *Store) walk(kind string, visit func(path, name string, size int64) error) error {
	root := filepath.Join(s.dir, kind)
	return filepath.Walk(root, func(path string, fi os.FileInfo, werr error) error {
		if werr != nil {
			if errors.Is(werr, fs.ErrNotExist) {
				return nil
			}
			return werr
		}
		if fi.IsDir() || strings.HasPrefix(fi.Name(), ".tmp-") {
			return nil
		}
		return visit(path, fi.Name(), fi.Size())
	})
}

// Actions lists every stored action entry.
func (s *Store) Actions() ([]*Action, error) {
	var out []*Action
	err := s.walk("actions", func(path, name string, _ int64) error {
		key := strings.TrimSuffix(name, ".json")
		a, err := s.GetAction(key)
		if err != nil {
			if errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) {
				return nil
			}
			return err
		}
		out = append(out, a)
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, err
}

// Usage reports blob and action counts and total blob bytes.
func (s *Store) Usage() (Usage, error) {
	var u Usage
	err := s.walk("blobs", func(_, _ string, size int64) error {
		u.Blobs++
		u.BlobBytes += size
		return nil
	})
	if err != nil {
		return u, err
	}
	err = s.walk("actions", func(_, _ string, _ int64) error {
		u.Actions++
		return nil
	})
	return u, err
}

// PutStats returns how many blobs were newly written vs deduplicated since
// the store was opened.
func (s *Store) PutStats() (puts, dedups uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.dedups
}

// GC is a concurrent mark-and-sweep: it removes action entries whose key
// is not in live, then removes blobs no remaining action references.
// Callers pass the set of action keys still reachable from build state
// (ref-counting by reachability) and, in pinned, blob digests that must
// survive regardless — e.g. the pages and platform state of a resumable
// run's checkpoints, which no action references but `-resume` depends on.
//
// The collection runs without blocking readers or writers; the live and
// referenced sets are a snapshot taken at GC entry, so the sweep guards
// against racing traffic instead of locking it out:
//
//   - entries written after the snapshot instant (file mtime after the
//     GC start) are skipped — a Put or PutAction landing mid-sweep
//     survives even though the stale snapshot doesn't reference it;
//   - digests held open at any point since the snapshot — by an
//     in-flight Put/PutStream/IngestFile or an explicit Hold (a publish
//     between its blob and action writes) — are skipped regardless of
//     mtime. "At any point" matters: a publish can complete (hold
//     released, action written) after the mark phase already walked
//     actions, so a point-in-time held check at sweep time would still
//     reap its blob.
//
// Anything spared by a guard is simply unreferenced garbage to the NEXT
// collection if it really was garbage — the guards only delay
// reclamation, never leak it. Collections on one Store handle are
// serialized; callers never block, only other GCs do.
func (s *Store) GC(live, pinned map[string]bool) (GCStats, error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	var st GCStats
	start := time.Now()
	// wroteAfterSnapshot: does the entry at path postdate the GC's view?
	// A vanished file counts as racing traffic too (another GC, a
	// quarantine): nothing left to remove.
	wroteAfterSnapshot := func(path string) bool {
		fi, err := os.Stat(path)
		return err != nil || !fi.ModTime().Before(start)
	}
	referenced := map[string]bool{}
	err := s.walk("actions", func(path, name string, _ int64) error {
		key := strings.TrimSuffix(name, ".json")
		if !live[key] {
			if wroteAfterSnapshot(path) {
				return nil // written mid-sweep; the snapshot can't judge it
			}
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
			st.ActionsRemoved++
			return nil
		}
		a, err := s.GetAction(key)
		if err != nil {
			return nil // corrupt live entry: already dropped by GetAction
		}
		for _, o := range a.Outputs {
			referenced[o.Digest] = true
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	if s.gcSweepHook != nil {
		s.gcSweepHook()
	}
	err = s.walk("blobs", func(path, name string, size int64) error {
		if referenced[name] || pinned[name] || s.heldSince(name, start) {
			return nil
		}
		if wroteAfterSnapshot(path) {
			return nil // a concurrent Put must survive the sweep
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		st.BlobsRemoved++
		st.BytesReclaimed += size
		return nil
	})
	// Releases that predate this snapshot can never matter again (gcMu
	// guarantees no older collection is still sweeping): drop them so
	// heldUntil stays bounded by churn between collections.
	s.mu.Lock()
	for d, until := range s.heldUntil {
		if until.Before(start) {
			delete(s.heldUntil, d)
		}
	}
	s.mu.Unlock()
	return st, err
}

// Verify re-hashes every blob and checks every action's outputs are
// present, returning a description of each problem found. Corrupt blobs
// are quarantined (the store degrades to a miss, never a wrong
// artifact); `cache verify -repair` follows up by refetching the
// now-missing referenced blobs from the remote.
func (s *Store) Verify() ([]string, error) {
	var problems []string
	err := s.walk("blobs", func(path, name string, _ int64) error {
		data, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("blob %s: unreadable: %v", name, err))
			return nil
		}
		if hostutil.HashBytes(data) != name {
			s.quarantine(name)
			problems = append(problems, fmt.Sprintf("blob %s: digest mismatch (quarantined)", name))
		}
		return nil
	})
	if err != nil {
		return problems, err
	}
	actions, err := s.Actions()
	if err != nil {
		return problems, err
	}
	for _, a := range actions {
		for _, o := range a.Outputs {
			if !s.Has(o.Digest) {
				problems = append(problems, fmt.Sprintf("action %s (%s): missing blob %s for %s", a.Key[:12], a.Task, o.Digest[:12], o.Name))
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}
