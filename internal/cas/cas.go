// Package cas implements a SHA-256 content-addressed artifact store with an
// action cache, the persistence layer behind FireMarshal's shared build
// cache. The store holds two kinds of entries:
//
//   - blobs: immutable artifact bytes addressed by their SHA-256 digest
//     (boot binaries, kernels, disk images). Identical content is stored
//     exactly once no matter how many workloads produce it.
//   - actions: records mapping a task digest (the hash of a build step's
//     name, input hashes, and output names) to the digests of the outputs
//     that step produced. The build engine consults actions before running
//     a task and restores outputs from blobs on a hit.
//
// Writes are atomic (temp file + rename via hostutil), so concurrent
// builders sharing one store never observe partial entries, and reads
// re-verify the digest so corruption is detected — a corrupt blob is
// moved aside into <dir>/quarantine and reported as missing, degrading
// to a refetch/rebuild rather than a wrong artifact. Quarantined blobs
// are invisible to Get/Has/Usage/GC/Verify (only <dir>/blobs is
// walked), preserved for post-mortem, and rewritten in place by the
// next Put or a `cache verify -repair`. This operationalizes the
// paper's reproducibility guarantee: identical inputs ⇒ identical
// digest ⇒ one stored artifact.
package cas

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"firemarshal/internal/hostutil"
)

// ErrNotFound reports a blob or action absent from a store.
var ErrNotFound = errors.New("cas: not found")

// ErrCorrupt reports a blob whose bytes no longer match its digest.
var ErrCorrupt = errors.New("cas: corrupt blob")

// Store is a content-addressed store rooted at a directory:
//
//	<dir>/blobs/<aa>/<digest>      artifact bytes, digest = sha256 hex
//	<dir>/actions/<aa>/<key>.json  action-cache entries
type Store struct {
	dir    string
	tamper Tamper

	mu          sync.Mutex
	puts        uint64 // blobs newly written
	dedups      uint64 // puts that found the blob already present
	quarantined uint64 // corrupt blobs moved into <dir>/quarantine
}

// Tamper is a fault-injection hook on the blob I/O paths, implemented by
// the chaos package (duck-typed here to keep cas dependency-free).
// ReadBlob may return altered bytes for what was read from disk;
// WriteBlob may alter the bytes about to be written or fail the write
// outright. Production stores leave it nil.
type Tamper interface {
	ReadBlob(digest string, data []byte) []byte
	WriteBlob(digest string, data []byte) ([]byte, error)
}

// SetTamper installs a fault-injection hook. Call before the store is
// shared across goroutines.
func (s *Store) SetTamper(t Tamper) { s.tamper = t }

// Action is one action-cache entry: the outputs a task produced for a given
// input digest. Outputs are ordered by the sorted base names of the task's
// targets, so a restore into a different checkout maps positionally.
type Action struct {
	// Key is the task digest this entry is stored under.
	Key string `json:"key"`
	// Task is the producing task's name (for stats and debugging).
	Task string `json:"task"`
	// Outputs lists the produced artifacts in sorted-target order.
	Outputs []Output `json:"outputs"`
}

// Output is one produced artifact of an action.
type Output struct {
	// Name is the target's base name (stable across checkouts).
	Name string `json:"name"`
	// Digest addresses the artifact bytes in the blob store.
	Digest string `json:"digest"`
	// Mode is the file mode to restore with.
	Mode uint32 `json:"mode"`
	// Size is the artifact size in bytes (for stats without a blob read).
	Size int64 `json:"size"`
}

// Usage summarizes a store's disk contents.
type Usage struct {
	Blobs     int
	BlobBytes int64
	Actions   int
}

// GCStats reports what a garbage collection removed.
type GCStats struct {
	ActionsRemoved int
	BlobsRemoved   int
	BytesReclaimed int64
}

// Open initializes (or reuses) a store at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("cas: empty store directory")
	}
	for _, sub := range []string{"blobs", "actions"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("cas: opening store: %w", err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.dir, "blobs", digest[:2], digest)
}

func (s *Store) actionPath(key string) string {
	return filepath.Join(s.dir, "actions", key[:2], key+".json")
}

// quarantinePath is where a corrupt blob is moved aside. The quarantine
// directory is deliberately outside walk()'s reach, so quarantined bytes
// never count toward usage, never satisfy reads, and are never GC'd —
// they exist only for post-mortem inspection.
func (s *Store) quarantinePath(digest string) string {
	return filepath.Join(s.dir, "quarantine", digest)
}

// quarantine moves a corrupt blob aside instead of deleting it. Rename
// is atomic, so concurrent readers either see the (corrupt, re-verified)
// blob or a miss — never a partial file; when several readers race to
// quarantine the same blob, exactly one rename wins and the rest are
// harmless no-ops.
func (s *Store) quarantine(digest string) {
	qp := s.quarantinePath(digest)
	if err := os.MkdirAll(filepath.Dir(qp), 0o755); err != nil {
		os.Remove(s.blobPath(digest)) // fall back to the old delete-on-corrupt
		return
	}
	if err := os.Rename(s.blobPath(digest), qp); err != nil {
		if !os.IsNotExist(err) {
			os.Remove(s.blobPath(digest))
		}
		return
	}
	s.mu.Lock()
	s.quarantined++
	s.mu.Unlock()
}

// Quarantined reports how many corrupt blobs this store handle has moved
// into quarantine since it was opened.
func (s *Store) Quarantined() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.quarantined
}

// validDigest guards path construction against junk keys.
func validDigest(d string) bool {
	if len(d) != 64 {
		return false
	}
	for _, c := range d {
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// Put stores data and returns its digest. Storing already-present content
// is a cheap no-op (counted as a dedup).
func (s *Store) Put(data []byte) (string, error) {
	digest := hostutil.HashBytes(data)
	path := s.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		s.mu.Lock()
		s.dedups++
		s.mu.Unlock()
		return digest, nil
	}
	// The digest above is of the caller's bytes; tampering after hashing
	// means an injected torn write lands under the full digest — exactly
	// the corruption shape Get's re-verification must catch.
	if s.tamper != nil {
		var err error
		if data, err = s.tamper.WriteBlob(digest, data); err != nil {
			return "", fmt.Errorf("cas: writing blob %s: %w", digest, err)
		}
	}
	if err := hostutil.WriteFileAtomic(path, data, 0o644); err != nil {
		return "", fmt.Errorf("cas: writing blob %s: %w", digest, err)
	}
	s.mu.Lock()
	s.puts++
	s.mu.Unlock()
	return digest, nil
}

// PutFile stores the contents of a host file.
func (s *Store) PutFile(path string) (string, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", 0, err
	}
	digest, err := s.Put(data)
	return digest, int64(len(data)), err
}

// Has reports whether a blob is present (without verifying its content).
func (s *Store) Has(digest string) bool {
	if !validDigest(digest) {
		return false
	}
	_, err := os.Stat(s.blobPath(digest))
	return err == nil
}

// Get returns a blob's bytes, re-verifying the digest. A blob whose content
// no longer matches (truncation, bit rot) is moved into quarantine so the
// next write can repopulate it, and ErrCorrupt is returned — the caller's
// cue to refetch from a remote (self-heal) or rebuild.
func (s *Store) Get(digest string) ([]byte, error) {
	if !validDigest(digest) {
		return nil, fmt.Errorf("cas: %w: invalid digest %q", ErrNotFound, digest)
	}
	data, err := os.ReadFile(s.blobPath(digest))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("cas: blob %s: %w", digest, ErrNotFound)
	}
	if err != nil {
		return nil, err
	}
	if s.tamper != nil {
		data = s.tamper.ReadBlob(digest, data)
	}
	if hostutil.HashBytes(data) != digest {
		s.quarantine(digest)
		return nil, fmt.Errorf("cas: blob %s: %w", digest, ErrCorrupt)
	}
	return data, nil
}

// PutAction stores an action-cache entry under its key.
func (s *Store) PutAction(a *Action) error {
	if !validDigest(a.Key) {
		return fmt.Errorf("cas: invalid action key %q", a.Key)
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return hostutil.WriteFileAtomic(s.actionPath(a.Key), data, 0o644)
}

// GetAction returns the entry for key, or ErrNotFound.
func (s *Store) GetAction(key string) (*Action, error) {
	if !validDigest(key) {
		return nil, fmt.Errorf("cas: %w: invalid action key %q", ErrNotFound, key)
	}
	data, err := os.ReadFile(s.actionPath(key))
	if os.IsNotExist(err) {
		return nil, fmt.Errorf("cas: action %s: %w", key, ErrNotFound)
	}
	if err != nil {
		return nil, err
	}
	var a Action
	if err := json.Unmarshal(data, &a); err != nil {
		// A mangled entry behaves like a miss; drop it.
		os.Remove(s.actionPath(key))
		return nil, fmt.Errorf("cas: action %s: %w", key, ErrCorrupt)
	}
	return &a, nil
}

// walk visits every entry file under <dir>/<kind>.
func (s *Store) walk(kind string, visit func(path, name string, size int64) error) error {
	root := filepath.Join(s.dir, kind)
	return filepath.Walk(root, func(path string, fi os.FileInfo, werr error) error {
		if werr != nil {
			if errors.Is(werr, fs.ErrNotExist) {
				return nil
			}
			return werr
		}
		if fi.IsDir() || strings.HasPrefix(fi.Name(), ".tmp-") {
			return nil
		}
		return visit(path, fi.Name(), fi.Size())
	})
}

// Actions lists every stored action entry.
func (s *Store) Actions() ([]*Action, error) {
	var out []*Action
	err := s.walk("actions", func(path, name string, _ int64) error {
		key := strings.TrimSuffix(name, ".json")
		a, err := s.GetAction(key)
		if err != nil {
			if errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) {
				return nil
			}
			return err
		}
		out = append(out, a)
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, err
}

// Usage reports blob and action counts and total blob bytes.
func (s *Store) Usage() (Usage, error) {
	var u Usage
	err := s.walk("blobs", func(_, _ string, size int64) error {
		u.Blobs++
		u.BlobBytes += size
		return nil
	})
	if err != nil {
		return u, err
	}
	err = s.walk("actions", func(_, _ string, _ int64) error {
		u.Actions++
		return nil
	})
	return u, err
}

// PutStats returns how many blobs were newly written vs deduplicated since
// the store was opened.
func (s *Store) PutStats() (puts, dedups uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.puts, s.dedups
}

// GC removes action entries whose key is not in live, then removes blobs no
// remaining action references. Callers pass the set of action keys still
// reachable from build state (ref-counting by reachability) and, in
// pinned, blob digests that must survive regardless — e.g. the pages and
// platform state of a resumable run's checkpoints, which no action
// references but `-resume` depends on.
func (s *Store) GC(live, pinned map[string]bool) (GCStats, error) {
	var st GCStats
	referenced := map[string]bool{}
	err := s.walk("actions", func(path, name string, _ int64) error {
		key := strings.TrimSuffix(name, ".json")
		if !live[key] {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
			st.ActionsRemoved++
			return nil
		}
		a, err := s.GetAction(key)
		if err != nil {
			return nil // corrupt live entry: already dropped by GetAction
		}
		for _, o := range a.Outputs {
			referenced[o.Digest] = true
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	err = s.walk("blobs", func(path, name string, size int64) error {
		if referenced[name] || pinned[name] {
			return nil
		}
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
		st.BlobsRemoved++
		st.BytesReclaimed += size
		return nil
	})
	return st, err
}

// Verify re-hashes every blob and checks every action's outputs are
// present, returning a description of each problem found. Corrupt blobs
// are quarantined (the store degrades to a miss, never a wrong
// artifact); `cache verify -repair` follows up by refetching the
// now-missing referenced blobs from the remote.
func (s *Store) Verify() ([]string, error) {
	var problems []string
	err := s.walk("blobs", func(path, name string, _ int64) error {
		data, err := os.ReadFile(path)
		if err != nil {
			problems = append(problems, fmt.Sprintf("blob %s: unreadable: %v", name, err))
			return nil
		}
		if hostutil.HashBytes(data) != name {
			s.quarantine(name)
			problems = append(problems, fmt.Sprintf("blob %s: digest mismatch (quarantined)", name))
		}
		return nil
	})
	if err != nil {
		return problems, err
	}
	actions, err := s.Actions()
	if err != nil {
		return problems, err
	}
	for _, a := range actions {
		for _, o := range a.Outputs {
			if !s.Has(o.Digest) {
				problems = append(problems, fmt.Sprintf("action %s (%s): missing blob %s for %s", a.Key[:12], a.Task, o.Digest[:12], o.Name))
			}
		}
	}
	sort.Strings(problems)
	return problems, nil
}
