package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/cas"
	"firemarshal/internal/sim"
)

// progShort prints one value and exits 3 — the "first exec" of a job.
const progShort = `
_start:
    li a0, 41
    addi a0, a0, 1
    li a7, 0x101
    ecall
    li a0, 3
    li a7, 93
    ecall
`

// progLong mixes ALU work, stores across several pages, and console
// output over ~18k instructions — the in-flight exec checkpoints land in.
const progLong = `
_start:
    li s0, 2000
    li s1, 0
    li s2, 0x100000
outer:
    andi t0, s0, 255
    slli t1, t0, 3
    add  t2, s2, t1
    sd   s1, 0(t2)
    ld   t3, 0(t2)
    add  s1, s1, t3
    mul  s1, s1, s0
    addi s0, s0, -1
    bnez s0, outer
    mv a0, s1
    li a7, 0x101
    ecall
    li a0, 7
    li a7, 93
    ecall
`

func openStore(t *testing.T) (*cas.Store, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := cas.Open(filepath.Join(dir, "cas"))
	if err != nil {
		t.Fatal(err)
	}
	return store, filepath.Join(dir, "ckpt")
}

// miniPlatform drives execs the way funcsim does, threading the platform
// cycle counter through successive machines.
type miniPlatform struct {
	t      *testing.T
	rt     *Runtime
	cycles uint64
}

type miniResult struct {
	exit    int64
	instrs  uint64
	cycles  uint64
	console string
}

// exec runs one executable, replaying or restoring through the runtime.
// crashAfter > 0 aborts the run after that many snapshots (simulating a
// kill) and returns nil.
func (p *miniPlatform) exec(src string, crashAfter int) *miniResult {
	p.t.Helper()
	exe, err := asm.Assemble(src, asm.Options{})
	if err != nil {
		p.t.Fatal(err)
	}
	sig := ExecSig(exe.Entry, []string{src[:8]})

	if rec, console, ok, err := p.rt.ReplayNext(sig); err != nil {
		p.t.Fatal(err)
	} else if ok {
		p.cycles += rec.Cycles
		return &miniResult{exit: rec.Exit, instrs: rec.Instrs, cycles: rec.Cycles, console: string(console)}
	}

	var console bytes.Buffer
	m := sim.NewMachine()
	m.Console = &console
	m.SyscallFn = sim.BareSyscalls()
	m.Devices = []sim.Device{&sim.UART{}}
	m.MaxInstrs = 10_000_000
	m.LoadExecutable(exe, sim.DefaultStackTop)
	m.Now = p.cycles
	start := p.cycles
	startInstrs := m.Instret // before BeginExec: a restore advances Instret

	w, _, err := p.rt.BeginExec(sig, m, &console)
	if err != nil {
		p.t.Fatal(err)
	}
	m.Console = w

	if crashAfter > 0 {
		orig := m.CkptFn
		snaps := 0
		m.CkptFn = func(mm *sim.Machine) error {
			if err := orig(mm); err != nil {
				return err
			}
			snaps++
			if snaps == crashAfter {
				return errors.New("simulated crash")
			}
			return nil
		}
	}

	_, err = sim.RunFunctional(m)
	if crashAfter > 0 {
		if err == nil {
			p.t.Fatal("crash never fired")
		}
		return nil
	}
	if err != nil {
		p.t.Fatal(err)
	}
	p.cycles = m.Now
	instrs := m.Instret - startInstrs
	if err := p.rt.FinishExec(m.ExitCode, instrs, p.cycles-start); err != nil {
		p.t.Fatal(err)
	}
	// The recorder buffered everything written through w.
	return &miniResult{exit: m.ExitCode, instrs: instrs, cycles: p.cycles - start, console: console.String()}
}

// TestCrashResumeBitIdentical is the package's tentpole property: a run
// killed mid-exec (after a completed exec and several snapshots) and
// resumed from its checkpoint produces bit-identical exec records —
// exits, instruction counts, cycle deltas, and console transcripts.
func TestCrashResumeBitIdentical(t *testing.T) {
	store, ptrDir := openStore(t)
	cfg := Config{Store: store, Dir: ptrDir, Job: "job0", Every: 1000}

	// Uninterrupted reference run.
	straightRT, err := Open(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	straight := &miniPlatform{t: t, rt: straightRT}
	s0 := straight.exec(progShort, 0)
	s1 := straight.exec(progLong, 0)
	Clear(ptrDir, cfg.Job)

	// Crashed attempt: exec0 completes, exec1 dies after 3 snapshots.
	crashRT, err := Open(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	crash := &miniPlatform{t: t, rt: crashRT}
	crash.exec(progShort, 0)
	crash.exec(progLong, 3)

	ptr, err := LoadPointer(PointerPath(ptrDir, cfg.Job))
	if err != nil {
		t.Fatalf("no pointer after crash: %v", err)
	}
	if ptr.Exec != 1 || ptr.Instret != 3000 {
		t.Fatalf("pointer = %+v, want exec 1 at instret 3000", ptr)
	}

	// Resumed attempt: exec0 replays, exec1 restores mid-flight.
	resumeRT, err := Open(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if !resumeRT.Resuming() {
		t.Fatal("resume runtime found no checkpoint")
	}
	resume := &miniPlatform{t: t, rt: resumeRT}
	r0 := resume.exec(progShort, 0)
	r1 := resume.exec(progLong, 0)

	for name, pair := range map[string][2]*miniResult{"exec0": {s0, r0}, "exec1": {s1, r1}} {
		want, got := pair[0], pair[1]
		if got.exit != want.exit || got.instrs != want.instrs || got.cycles != want.cycles {
			t.Errorf("%s: resumed (exit=%d instrs=%d cycles=%d), straight (exit=%d instrs=%d cycles=%d)",
				name, got.exit, got.instrs, got.cycles, want.exit, want.instrs, want.cycles)
		}
		if got.console != want.console {
			t.Errorf("%s: console %q, want %q", name, got.console, want.console)
		}
	}
	if resume.cycles != straight.cycles {
		t.Errorf("final platform cycles %d, want %d", resume.cycles, straight.cycles)
	}

	// The resumed attempt's exec records must match the straight run's.
	sr, rr := straightRT.Execs(), resumeRT.Execs()
	if len(sr) != len(rr) {
		t.Fatalf("%d resumed exec records, want %d", len(rr), len(sr))
	}
	for i := range sr {
		if sr[i] != rr[i] {
			t.Errorf("exec record %d: %+v, want %+v", i, rr[i], sr[i])
		}
	}
}

// TestResumeWithoutPointerRunsFresh checks the resume-iff-pointer policy.
func TestResumeWithoutPointerRunsFresh(t *testing.T) {
	store, ptrDir := openStore(t)
	rt, err := Open(Config{Store: store, Dir: ptrDir, Job: "never-ran", Every: 100}, true)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Resuming() {
		t.Fatal("resuming with no pointer on disk")
	}
	if _, _, ok, err := rt.ReplayNext("sig"); ok || err != nil {
		t.Fatalf("ReplayNext = ok=%v err=%v, want fresh run", ok, err)
	}
}

// TestSigMismatchRefuses checks a changed workload is detected rather
// than silently resumed into the wrong program.
func TestSigMismatchRefuses(t *testing.T) {
	store, ptrDir := openStore(t)
	cfg := Config{Store: store, Dir: ptrDir, Job: "job-sig", Every: 1000}
	rt, err := Open(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	p := &miniPlatform{t: t, rt: rt}
	p.exec(progLong, 2) // crash mid-exec0

	rt2, err := Open(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine()
	m.SyscallFn = sim.BareSyscalls()
	if _, _, err := rt2.BeginExec("0000000000000000deadbeef", m, &bytes.Buffer{}); err == nil {
		t.Fatal("BeginExec accepted a mismatched exec signature")
	}
}

// TestSnapshotDedupsCleanPages checks successive snapshots reuse digests
// for pages the guest did not touch between boundaries (the code page
// never changes after the first snapshot).
func TestSnapshotDedupsCleanPages(t *testing.T) {
	store, ptrDir := openStore(t)
	cfg := Config{Store: store, Dir: ptrDir, Job: "job-dedup", Every: 1000}
	rt, err := Open(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	p := &miniPlatform{t: t, rt: rt}
	p.exec(progLong, 0)

	_, dedups := store.PutStats()
	if dedups == 0 {
		t.Error("no blob dedup across snapshots; every page re-stored every time")
	}
}

// TestPointerLifecycle covers listing, clearing, and torn pointers.
func TestPointerLifecycle(t *testing.T) {
	store, ptrDir := openStore(t)
	cfg := Config{Store: store, Dir: ptrDir, Job: "job-a", Every: 1000}
	rt, err := Open(cfg, false)
	if err != nil {
		t.Fatal(err)
	}
	p := &miniPlatform{t: t, rt: rt}
	p.exec(progLong, 2)

	// A torn pointer (crash mid-write would be prevented by the atomic
	// rename, but disk corruption isn't) must not break listing.
	if err := os.WriteFile(filepath.Join(ptrDir, "garbled.ckpt.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	ptrs, err := Pointers(ptrDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 1 || ptrs[0].Job != "job-a" {
		t.Fatalf("pointers = %+v, want exactly job-a", ptrs)
	}

	cp, err := Load(store, ptrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if probs := cp.Verify(store); len(probs) != 0 {
		t.Fatalf("fresh checkpoint has problems: %v", probs)
	}
	if len(cp.Refs()) == 0 {
		t.Fatal("checkpoint references no blobs")
	}

	// Remove one referenced page blob: Verify must report it.
	missing := cp.Pages[0].Digest
	if err := os.Remove(filepath.Join(store.Dir(), "blobs", missing[:2], missing)); err != nil {
		t.Fatal(err)
	}
	if probs := cp.Verify(store); len(probs) != 1 {
		t.Fatalf("Verify found %d problems, want 1", len(probs))
	}

	if err := Clear(ptrDir, "job-a"); err != nil {
		t.Fatal(err)
	}
	if err := Clear(ptrDir, "job-a"); err != nil {
		t.Fatalf("Clear not idempotent: %v", err)
	}
	ptrs, err = Pointers(ptrDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ptrs) != 0 {
		t.Fatalf("pointers after Clear = %+v", ptrs)
	}

	// Pointers on a directory that never existed is an empty list.
	ptrs, err = Pointers(filepath.Join(ptrDir, "nope"))
	if err != nil || len(ptrs) != 0 {
		t.Fatalf("Pointers(missing dir) = %v, %v", ptrs, err)
	}
}
