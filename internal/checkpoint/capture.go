// Bare machine capture/restore: the verification farm's bisector needs to
// snapshot a machine at an exact retired-instruction boundary and later
// rebuild an identical machine, without the per-job Runtime's pointer
// files, exec replay, or console teeing. Capture serializes just pages +
// architectural state into the CAS; because page numbers are emitted in
// ascending order and the encoding is canonical JSON, two machines that
// executed the same retirement history produce the same digest — digest
// comparison IS state comparison, which is what lets the bisector walk
// checkpoint boundaries cheaply.
package checkpoint

import (
	"encoding/json"
	"fmt"

	"firemarshal/internal/cas"
	"firemarshal/internal/sim"
)

// Capture snapshots the machine's memory pages and architectural state
// into the store and returns the checkpoint plus its content digest. The
// digest is a pure function of (job, mapped pages, arch state): machines
// in the same state capture to the same digest.
func Capture(store *cas.Store, job string, m *sim.Machine) (*Checkpoint, string, error) {
	cp := &Checkpoint{Version: Version, Job: job, Arch: m.SaveArch()}
	for _, pn := range m.Mem.PageNumbers() {
		digest, err := store.Put(m.Mem.PageBytes(pn))
		if err != nil {
			return nil, "", fmt.Errorf("checkpoint: capture %s: storing page %#x: %w", job, pn, err)
		}
		cp.Pages = append(cp.Pages, PageRef{PN: pn, Digest: digest})
	}
	data, err := json.Marshal(cp)
	if err != nil {
		return nil, "", err
	}
	digest, err := store.Put(data)
	if err != nil {
		return nil, "", fmt.Errorf("checkpoint: capture %s: %w", job, err)
	}
	return cp, digest, nil
}

// Restore rebuilds the captured state onto m: memory is reset to exactly
// the captured pages and the architectural state reinstalled (predecode
// and trace caches rebuilt via RestoreArch). The machine must already
// have its devices/syscall environment configured; Restore only touches
// memory and architectural state.
func (cp *Checkpoint) Restore(store *cas.Store, m *sim.Machine) error {
	m.Mem.Reset()
	for _, pref := range cp.Pages {
		data, err := store.Get(pref.Digest)
		if err != nil {
			return fmt.Errorf("checkpoint: restore %s page %#x: %w", cp.Job, pref.PN, err)
		}
		if err := m.Mem.SetPage(pref.PN, data); err != nil {
			return err
		}
	}
	m.RestoreArch(cp.Arch)
	return nil
}
