package checkpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
)

// transferAttempts bounds per-blob retries during Push/Fetch. Checkpoint
// replication is the lease-handoff backbone, so a single dropped request
// must not forfeit a handoff; the jitter is deterministic (hashed from
// digest and attempt), keeping retry schedules reproducible.
const transferAttempts = 3

// withRetry runs op up to transferAttempts times, sleeping briefly with
// deterministic jitter between failures. Context cancellation stops the
// retries immediately.
func withRetry(ctx context.Context, key string, op func() error) error {
	var err error
	for attempt := 0; attempt < transferAttempts; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if ctx != nil && ctx.Err() != nil {
			return err
		}
		if attempt < transferAttempts-1 {
			time.Sleep(5*time.Millisecond + hostutil.DetJitter(key, attempt, 20*time.Millisecond))
		}
	}
	return err
}

// WritePointer atomically installs a pointer file under dir, making ptr the
// job's latest checkpoint for any runtime opened against that directory.
// Coordinators use it to persist pointers streamed from workers (so their
// own -resume path sees them), and workers use it to stage a handed-off
// checkpoint before opening the job with resume set.
func WritePointer(dir string, ptr *Pointer) error {
	pdata, err := json.MarshalIndent(ptr, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := hostutil.WriteFileAtomic(PointerPath(dir, ptr.Job), pdata, 0o644); err != nil {
		return fmt.Errorf("checkpoint: job %s: writing pointer: %w", ptr.Job, err)
	}
	return nil
}

// Push replicates the checkpoint ptr names — the checkpoint document plus
// every blob it references — from the local store to a remote. After a
// successful Push any machine sharing that remote can Fetch and resume the
// job bit-identically. Blobs are uploaded unconditionally; the server
// content-addresses them, so re-pushing an unchanged page is idempotent.
func Push(ctx context.Context, store *cas.Store, rem cas.Remote, ptr *Pointer) error {
	cp, err := Load(store, ptr)
	if err != nil {
		return err
	}
	for _, digest := range append(cp.Refs(), ptr.Digest) {
		data, err := store.Get(digest)
		if err != nil {
			return fmt.Errorf("checkpoint: job %s: pushing %s: %w", ptr.Job, digest[:12], err)
		}
		if err := withRetry(ctx, digest, func() error { return rem.PutBlob(ctx, digest, data) }); err != nil {
			return fmt.Errorf("checkpoint: job %s: pushing %s: %w", ptr.Job, digest[:12], err)
		}
	}
	return nil
}

// Fetch materializes the checkpoint ptr names into the local store: the
// checkpoint document first (it lists everything else), then every
// referenced blob not already present locally. On success the local store
// can restore the job exactly as the pushing machine would have.
func Fetch(ctx context.Context, store *cas.Store, rem cas.Remote, ptr *Pointer) error {
	var data []byte
	err := withRetry(ctx, ptr.Digest, func() error {
		var gerr error
		data, gerr = rem.GetBlob(ctx, ptr.Digest)
		return gerr
	})
	if err != nil {
		return fmt.Errorf("checkpoint: job %s: fetching %s: %w", ptr.Job, ptr.Digest[:12], err)
	}
	if _, err := store.Put(data); err != nil {
		return err
	}
	cp, err := Load(store, ptr)
	if err != nil {
		return err
	}
	for _, digest := range cp.Refs() {
		if store.Has(digest) {
			continue
		}
		var bdata []byte
		err := withRetry(ctx, digest, func() error {
			var gerr error
			bdata, gerr = rem.GetBlob(ctx, digest)
			return gerr
		})
		if err != nil {
			return fmt.Errorf("checkpoint: job %s: fetching %s: %w", ptr.Job, digest[:12], err)
		}
		if _, err := store.Put(bdata); err != nil {
			return err
		}
	}
	return nil
}
