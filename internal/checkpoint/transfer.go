package checkpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"os"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
)

// WritePointer atomically installs a pointer file under dir, making ptr the
// job's latest checkpoint for any runtime opened against that directory.
// Coordinators use it to persist pointers streamed from workers (so their
// own -resume path sees them), and workers use it to stage a handed-off
// checkpoint before opening the job with resume set.
func WritePointer(dir string, ptr *Pointer) error {
	pdata, err := json.MarshalIndent(ptr, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := hostutil.WriteFileAtomic(PointerPath(dir, ptr.Job), pdata, 0o644); err != nil {
		return fmt.Errorf("checkpoint: job %s: writing pointer: %w", ptr.Job, err)
	}
	return nil
}

// Push replicates the checkpoint ptr names — the checkpoint document plus
// every blob it references — from the local store to a remote. After a
// successful Push any machine sharing that remote can Fetch and resume the
// job bit-identically. Blobs are uploaded unconditionally; the server
// content-addresses them, so re-pushing an unchanged page is idempotent.
func Push(ctx context.Context, store *cas.Store, rem cas.Remote, ptr *Pointer) error {
	cp, err := Load(store, ptr)
	if err != nil {
		return err
	}
	for _, digest := range append(cp.Refs(), ptr.Digest) {
		data, err := store.Get(digest)
		if err != nil {
			return fmt.Errorf("checkpoint: job %s: pushing %s: %w", ptr.Job, digest[:12], err)
		}
		if err := rem.PutBlob(ctx, digest, data); err != nil {
			return fmt.Errorf("checkpoint: job %s: pushing %s: %w", ptr.Job, digest[:12], err)
		}
	}
	return nil
}

// Fetch materializes the checkpoint ptr names into the local store: the
// checkpoint document first (it lists everything else), then every
// referenced blob not already present locally. On success the local store
// can restore the job exactly as the pushing machine would have.
func Fetch(ctx context.Context, store *cas.Store, rem cas.Remote, ptr *Pointer) error {
	data, err := rem.GetBlob(ctx, ptr.Digest)
	if err != nil {
		return fmt.Errorf("checkpoint: job %s: fetching %s: %w", ptr.Job, ptr.Digest[:12], err)
	}
	if _, err := store.Put(data); err != nil {
		return err
	}
	cp, err := Load(store, ptr)
	if err != nil {
		return err
	}
	for _, digest := range cp.Refs() {
		if store.Has(digest) {
			continue
		}
		bdata, err := rem.GetBlob(ctx, digest)
		if err != nil {
			return fmt.Errorf("checkpoint: job %s: fetching %s: %w", ptr.Job, digest[:12], err)
		}
		if _, err := store.Put(bdata); err != nil {
			return err
		}
	}
	return nil
}
