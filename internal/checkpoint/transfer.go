package checkpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
)

// transferAttempts bounds per-blob retries during Push/Fetch. Checkpoint
// replication is the lease-handoff backbone, so a single dropped request
// must not forfeit a handoff; the jitter is deterministic (hashed from
// digest and attempt), keeping retry schedules reproducible.
const transferAttempts = 3

// withRetry runs op up to transferAttempts times, sleeping briefly with
// deterministic jitter between failures. Context cancellation stops the
// retries immediately.
func withRetry(ctx context.Context, key string, op func() error) error {
	var err error
	for attempt := 0; attempt < transferAttempts; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if ctx != nil && ctx.Err() != nil {
			return err
		}
		if attempt < transferAttempts-1 {
			time.Sleep(5*time.Millisecond + hostutil.DetJitter(key, attempt, 20*time.Millisecond))
		}
	}
	return err
}

// WritePointer atomically installs a pointer file under dir, making ptr the
// job's latest checkpoint for any runtime opened against that directory.
// Coordinators use it to persist pointers streamed from workers (so their
// own -resume path sees them), and workers use it to stage a handed-off
// checkpoint before opening the job with resume set.
func WritePointer(dir string, ptr *Pointer) error {
	pdata, err := json.MarshalIndent(ptr, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := hostutil.WriteFileAtomic(PointerPath(dir, ptr.Job), pdata, 0o644); err != nil {
		return fmt.Errorf("checkpoint: job %s: writing pointer: %w", ptr.Job, err)
	}
	return nil
}

// pushBlob uploads one blob, streaming from the store's on-disk file when
// the remote supports it (cas.BlobFilePusher — the HTTP client does, with
// resumable chunks for large payloads), falling back to a buffered PutBlob
// otherwise. Checkpoint memory pages are the largest blobs marshal moves,
// so this is the path that must not hold gigabytes on the heap.
func pushBlob(ctx context.Context, store *cas.Store, rem cas.Remote, digest string) error {
	if fp, ok := rem.(cas.BlobFilePusher); ok {
		if path, err := store.BlobFilePath(digest); err == nil {
			return fp.PutBlobFile(ctx, digest, path)
		}
	}
	data, err := store.Get(digest)
	if err != nil {
		return err
	}
	return rem.PutBlob(ctx, digest, data)
}

// fetchBlob downloads one blob into the store, streaming end-to-end when
// the remote supports it (cas.BlobStreamer): the verified stream feeds
// Store.PutStream, which hashes into a temp file — the blob never exists
// whole in memory. Otherwise it buffers via GetBlob/Put.
func fetchBlob(ctx context.Context, store *cas.Store, rem cas.Remote, digest string) error {
	if bs, ok := rem.(cas.BlobStreamer); ok {
		rc, _, err := bs.GetBlobStream(ctx, digest)
		if err != nil {
			return err
		}
		_, perr := store.PutStream(digest, rc)
		if cerr := rc.Close(); perr == nil {
			perr = cerr
		}
		return perr
	}
	data, err := rem.GetBlob(ctx, digest)
	if err != nil {
		return err
	}
	_, err = store.Put(data)
	return err
}

// Push replicates the checkpoint ptr names — the checkpoint document plus
// every blob it references — from the local store to a remote. After a
// successful Push any machine sharing that remote can Fetch and resume the
// job bit-identically. Blobs are uploaded unconditionally; the server
// content-addresses them, so re-pushing an unchanged page is idempotent.
func Push(ctx context.Context, store *cas.Store, rem cas.Remote, ptr *Pointer) error {
	cp, err := Load(store, ptr)
	if err != nil {
		return err
	}
	for _, digest := range append(cp.Refs(), ptr.Digest) {
		if err := withRetry(ctx, digest, func() error { return pushBlob(ctx, store, rem, digest) }); err != nil {
			return fmt.Errorf("checkpoint: job %s: pushing %s: %w", ptr.Job, digest[:12], err)
		}
	}
	return nil
}

// Fetch materializes the checkpoint ptr names into the local store: the
// checkpoint document first (it lists everything else), then every
// referenced blob not already present locally. On success the local store
// can restore the job exactly as the pushing machine would have.
func Fetch(ctx context.Context, store *cas.Store, rem cas.Remote, ptr *Pointer) error {
	err := withRetry(ctx, ptr.Digest, func() error { return fetchBlob(ctx, store, rem, ptr.Digest) })
	if err != nil {
		return fmt.Errorf("checkpoint: job %s: fetching %s: %w", ptr.Job, ptr.Digest[:12], err)
	}
	cp, err := Load(store, ptr)
	if err != nil {
		return err
	}
	for _, digest := range cp.Refs() {
		if store.Has(digest) {
			continue
		}
		err := withRetry(ctx, digest, func() error { return fetchBlob(ctx, store, rem, digest) })
		if err != nil {
			return fmt.Errorf("checkpoint: job %s: fetching %s: %w", ptr.Job, digest[:12], err)
		}
	}
	return nil
}
