package checkpoint

import (
	"io"
	"testing"

	"firemarshal/internal/asm"
	"firemarshal/internal/sim"
)

// captureMachine assembles progLong and runs it for n instructions.
func captureMachine(t *testing.T, n uint64) *sim.Machine {
	t.Helper()
	exe, err := asm.Assemble(progLong, asm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMachine()
	m.Console = io.Discard
	m.SyscallFn = sim.BareSyscalls()
	m.LoadExecutable(exe, sim.DefaultStackTop)
	if n > 0 {
		m.MaxInstrs = n
		if _, err := sim.RunFunctional(m); err == nil {
			t.Fatal("expected instruction-limit trap")
		}
		if m.Instret != n {
			t.Fatalf("Instret = %d, want %d", m.Instret, n)
		}
	}
	return m
}

// TestCaptureRestoreRoundTrip runs a machine to an instruction boundary,
// captures it, restores into a fresh machine, and checks both finish the
// program in identical final state.
func TestCaptureRestoreRoundTrip(t *testing.T) {
	store, _ := openStore(t)
	m := captureMachine(t, 5000)
	cp, digest, err := Capture(store, "job", m)
	if err != nil {
		t.Fatal(err)
	}
	if digest == "" || len(cp.Pages) == 0 {
		t.Fatalf("capture: digest=%q pages=%d", digest, len(cp.Pages))
	}

	m2 := captureMachine(t, 0) // fresh machine, executable loaded
	if err := cp.Restore(store, m2); err != nil {
		t.Fatal(err)
	}
	if m2.Instret != m.Instret || m2.PC != m.PC || m2.Regs != m.Regs {
		t.Fatalf("restored state differs: Instret %d vs %d, PC %#x vs %#x",
			m2.Instret, m.Instret, m2.PC, m.PC)
	}
	// A re-capture of the restored machine must hash identically.
	_, digest2, err := Capture(store, "job", m2)
	if err != nil {
		t.Fatal(err)
	}
	if digest2 != digest {
		t.Fatalf("re-capture digest %s != original %s", digest2[:12], digest[:12])
	}

	// Both machines run to completion and agree exactly.
	m.MaxInstrs, m2.MaxInstrs = 0, 0
	if _, err := sim.RunFunctional(m); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.RunFunctional(m2); err != nil {
		t.Fatal(err)
	}
	if !m.Halted || !m2.Halted || m.ExitCode != m2.ExitCode || m.Instret != m2.Instret || m.Regs != m2.Regs {
		t.Fatalf("runs diverge after restore: exit %d vs %d, instret %d vs %d",
			m.ExitCode, m2.ExitCode, m.Instret, m2.Instret)
	}
}

// TestCaptureDigestDiscriminates: machines at different boundaries hash
// differently, and the same boundary reached twice hashes identically —
// the property the farm's bisector leans on.
func TestCaptureDigestDiscriminates(t *testing.T) {
	store, _ := openStore(t)
	_, d1, err := Capture(store, "job", captureMachine(t, 5000))
	if err != nil {
		t.Fatal(err)
	}
	_, d1b, err := Capture(store, "job", captureMachine(t, 5000))
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := Capture(store, "job", captureMachine(t, 6000))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d1b {
		t.Fatalf("same boundary, different digests: %s vs %s", d1[:12], d1b[:12])
	}
	if d1 == d2 {
		t.Fatalf("different boundaries, same digest %s", d1[:12])
	}
}
