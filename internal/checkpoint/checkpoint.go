// Package checkpoint persists deterministic simulation checkpoints into
// the content-addressed store, the state behind `marshal launch -resume`.
//
// A checkpoint captures everything a platform needs to continue a job's
// in-flight Exec bit-identically: the machine's architectural state
// (sim.ArchState), every mapped memory page as its own content-addressed
// blob (so unchanged pages dedup across successive checkpoints and across
// jobs booting the same image), platform "extra" state (branch predictor
// tables, cache tags, accumulated statistics — opaque named blobs saved
// through callbacks), the console bytes emitted so far, and the records
// of every Exec the platform completed before the in-flight one (exit
// code, instruction/cycle deltas, full console transcript) so a resumed
// run can replay them without re-simulating.
//
// On-disk layout: blobs live in the shared CAS; the only non-CAS file is
// a small pointer `<dir>/<job>.ckpt.json` naming the latest checkpoint
// blob for the job. The pointer is written atomically after the blobs it
// references, so a crash mid-snapshot leaves the previous checkpoint
// intact — at worst some orphaned blobs that the pinned-aware GC removes
// once the run is no longer live.
package checkpoint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"firemarshal/internal/cas"
	"firemarshal/internal/hostutil"
	"firemarshal/internal/obs"
	"firemarshal/internal/sim"
)

// Version identifies the checkpoint schema; a reader refuses other
// versions rather than misinterpreting state.
const Version = 1

// Config parameterizes a job's checkpoint runtime.
type Config struct {
	// Store holds checkpoint blobs (pages, console, extra state).
	Store *cas.Store
	// Dir is where the per-job pointer file lives. It must be outside the
	// job's run directory, which launchers wipe per attempt.
	Dir string
	// Job names the job; it keys the pointer file.
	Job string
	// Every is the snapshot interval in retired instructions; 0 disables
	// snapshots (the runtime still records completed Execs in memory).
	Every uint64
	// Obs is the registry checkpoint_writes_total / _restores_total count
	// into; nil resolves to the process-wide obs.Default.
	Obs *obs.Registry
	// Span, when set, parents one "checkpoint" child span per snapshot
	// and one "restore" child span per restore in the run trace.
	Span *obs.Span
	// OnSnapshot, when set, runs after each snapshot's pointer flip with
	// the new pointer and the checkpoint it names. Distributed workers use
	// it to replicate the snapshot's blobs into the shared remote cache and
	// announce the pointer to their coordinator, so the job can be restored
	// on another machine. A non-nil error fails the snapshot (and with it
	// the exec), because a handoff the hook could not make durable must not
	// be reported as one that was.
	OnSnapshot func(ptr Pointer, cp *Checkpoint) error
}

// PageRef names one memory page's content.
type PageRef struct {
	PN     uint64 `json:"pn"`
	Digest string `json:"digest"`
}

// ExecRecord is the outcome of one completed Platform.Exec, enough to
// replay it on resume without re-simulating: the platform re-charges
// Cycles and re-emits the recorded console bytes.
type ExecRecord struct {
	// Sig identifies the exec (entry point + arguments); resume refuses
	// to replay against a workload that issues a different sequence.
	Sig string `json:"sig"`
	// Exit is the guest's exit code.
	Exit int64 `json:"exit"`
	// Instrs is the instructions retired by this exec.
	Instrs uint64 `json:"instrs"`
	// Cycles is the platform cycle delta this exec charged.
	Cycles uint64 `json:"cycles"`
	// Console is the CAS digest of the exec's console output.
	Console string `json:"console"`
}

// Checkpoint is one serialized snapshot: the completed-exec history plus
// the in-flight exec's machine state at an instruction boundary.
type Checkpoint struct {
	Version int    `json:"version"`
	Job     string `json:"job"`
	// ExecIdx is the index (into the platform's exec sequence) of the
	// in-flight exec this snapshot was taken inside.
	ExecIdx int `json:"exec"`
	// Sig is the in-flight exec's signature.
	Sig string `json:"sig"`
	// Arch is the machine's architectural state at the snapshot boundary.
	Arch sim.ArchState `json:"arch"`
	// Pages lists every mapped page, ascending by page number.
	Pages []PageRef `json:"pages"`
	// Extra maps platform state names (e.g. "rtlsim") to blob digests.
	Extra map[string]string `json:"extra,omitempty"`
	// Console is the digest of the in-flight exec's console bytes so far.
	Console string `json:"console"`
	// Execs records the execs completed before the in-flight one.
	Execs []ExecRecord `json:"execs,omitempty"`
}

// Pointer is the per-job pointer file: the latest checkpoint's address.
type Pointer struct {
	Job     string `json:"job"`
	Digest  string `json:"digest"`
	Exec    int    `json:"exec"`
	Instret uint64 `json:"instret"`
}

// PointerPath returns the pointer file path for a job. Path separators
// in job names are flattened so every pointer stays inside dir.
func PointerPath(dir, job string) string {
	safe := strings.NewReplacer("/", "_", string(filepath.Separator), "_").Replace(job)
	return filepath.Join(dir, safe+".ckpt.json")
}

// LoadPointer reads one pointer file. A missing file returns fs.ErrNotExist.
func LoadPointer(path string) (*Pointer, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p Pointer
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("checkpoint: pointer %s: %w", path, err)
	}
	return &p, nil
}

// Pointers lists every pointer file under dir (no dir is an empty list).
func Pointers(dir string) ([]*Pointer, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []*Pointer
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".ckpt.json") {
			continue
		}
		p, err := LoadPointer(filepath.Join(dir, e.Name()))
		if err != nil {
			// A torn or garbled pointer means that job resumes from
			// scratch; it must not fail every other job's listing.
			continue
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out, nil
}

// Load fetches and decodes the checkpoint a pointer names.
func Load(store *cas.Store, ptr *Pointer) (*Checkpoint, error) {
	data, err := store.Get(ptr.Digest)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: job %s: %w", ptr.Job, err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("checkpoint: job %s: decoding %s: %w", ptr.Job, ptr.Digest[:12], err)
	}
	if cp.Version != Version {
		return nil, fmt.Errorf("checkpoint: job %s: version %d, want %d", ptr.Job, cp.Version, Version)
	}
	return &cp, nil
}

// Refs returns every blob digest the checkpoint references — the set a
// garbage collector must pin while the run is resumable.
func (cp *Checkpoint) Refs() []string {
	var out []string
	for _, p := range cp.Pages {
		out = append(out, p.Digest)
	}
	for _, d := range cp.Extra {
		out = append(out, d)
	}
	if cp.Console != "" {
		out = append(out, cp.Console)
	}
	for _, e := range cp.Execs {
		if e.Console != "" {
			out = append(out, e.Console)
		}
	}
	sort.Strings(out)
	return out
}

// ExecSig computes an exec's identity from its entry point and argument
// vector — what the guest OS passes to Platform.Exec.
func ExecSig(entry uint64, args []string) string {
	parts := append([]string{fmt.Sprintf("entry=%#x", entry)}, args...)
	return hostutil.HashStrings(parts...)
}

// recorder tees console output into a buffer so snapshots and exec
// records can store the exact transcript.
type recorder struct {
	w   io.Writer
	buf bytes.Buffer
}

func (r *recorder) Write(p []byte) (int, error) {
	r.buf.Write(p)
	if r.w != nil {
		return r.w.Write(p)
	}
	return len(p), nil
}

// Runtime drives checkpointing for one job attempt. The owning platform
// calls ReplayNext before each Exec (replaying completed execs recorded
// by a crashed attempt), then BeginExec / FinishExec around live
// simulation. Snapshots fire from the machine's CkptFn at deterministic
// instruction boundaries (see sim.Machine.CkptEvery).
type Runtime struct {
	cfg Config

	// SaveExtra returns named platform state blobs to include in each
	// snapshot (predictor tables, cache state, statistics). RestoreExtra
	// installs them on resume. Either may be nil for stateless platforms.
	SaveExtra    func() (map[string][]byte, error)
	RestoreExtra func(map[string][]byte) error

	resume  *Checkpoint // pending restore target; nil once consumed
	execIdx int         // index of the next exec
	execs   []ExecRecord

	// Per-exec state.
	sig     string
	rec     *recorder
	digests map[uint64]string // page -> digest, reused for clean pages
}

// Open creates a job's checkpoint runtime. With resume set and a pointer
// file present, the runtime replays the recorded execs and restores the
// in-flight one; otherwise the job starts from scratch.
func Open(cfg Config, resume bool) (*Runtime, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("checkpoint: no store configured")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("checkpoint: no pointer directory configured")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	rt := &Runtime{cfg: cfg}
	if !resume {
		return rt, nil
	}
	ptr, err := LoadPointer(PointerPath(cfg.Dir, cfg.Job))
	if errors.Is(err, fs.ErrNotExist) {
		return rt, nil
	}
	if err != nil {
		return nil, err
	}
	cp, err := Load(cfg.Store, ptr)
	if err != nil {
		return nil, err
	}
	if cp.Job != cfg.Job {
		return nil, fmt.Errorf("checkpoint: pointer for %s names job %s", cfg.Job, cp.Job)
	}
	rt.resume = cp
	return rt, nil
}

// Resuming reports whether a restore target is still pending.
func (rt *Runtime) Resuming() bool { return rt.resume != nil }

// Execs returns the exec records accumulated this attempt (replayed and
// live), in order.
func (rt *Runtime) Execs() []ExecRecord { return rt.execs }

// ReplayNext replays one completed exec recorded before the crash. When
// the next exec index is below the checkpoint's in-flight index it
// returns that exec's record plus its console transcript and ok=true;
// the platform charges the cycles and emits the bytes without
// simulating. ok=false means the exec must run (possibly restored).
func (rt *Runtime) ReplayNext(sig string) (*ExecRecord, []byte, bool, error) {
	if rt.resume == nil || rt.execIdx >= rt.resume.ExecIdx {
		return nil, nil, false, nil
	}
	rec := rt.resume.Execs[rt.execIdx]
	if rec.Sig != sig {
		return nil, nil, false, fmt.Errorf("checkpoint: job %s exec %d: recorded sig %s, workload issued %s (workload changed since crash)",
			rt.cfg.Job, rt.execIdx, rec.Sig[:12], sig[:12])
	}
	console, err := rt.cfg.Store.Get(rec.Console)
	if err != nil {
		return nil, nil, false, fmt.Errorf("checkpoint: job %s exec %d console: %w", rt.cfg.Job, rt.execIdx, err)
	}
	rt.execs = append(rt.execs, rec)
	rt.execIdx++
	return &rec, console, true, nil
}

// BeginExec prepares a live exec: it installs the snapshot hook on the
// machine and tees the console. If this exec is the checkpoint's
// in-flight one, the machine's memory, architectural state, platform
// extra state, and partial console output are restored first; restored
// reports whether that happened (the caller's instruction/cycle baselines
// must predate BeginExec either way, since a fresh machine starts at
// zero). The returned writer replaces console for the exec's duration.
func (rt *Runtime) BeginExec(sig string, m *sim.Machine, console io.Writer) (io.Writer, bool, error) {
	rt.sig = sig
	rt.rec = &recorder{w: console}
	rt.digests = map[uint64]string{}
	m.CkptEvery = rt.cfg.Every
	if rt.cfg.Every != 0 {
		m.CkptFn = rt.snapshot
	}

	if rt.resume == nil || rt.execIdx != rt.resume.ExecIdx {
		return rt.rec, false, nil
	}
	cp := rt.resume
	rt.resume = nil // consumed either way; a failed restore re-runs fresh state
	if cp.Sig != sig {
		return nil, false, fmt.Errorf("checkpoint: job %s exec %d: recorded sig %s, workload issued %s (workload changed since crash)",
			rt.cfg.Job, rt.execIdx, cp.Sig[:12], sig[:12])
	}

	m.Mem.Reset()
	for _, pref := range cp.Pages {
		data, err := rt.cfg.Store.Get(pref.Digest)
		if err != nil {
			return nil, false, fmt.Errorf("checkpoint: job %s page %#x: %w", rt.cfg.Job, pref.PN, err)
		}
		if err := m.Mem.SetPage(pref.PN, data); err != nil {
			return nil, false, err
		}
		rt.digests[pref.PN] = pref.Digest
	}
	m.RestoreArch(cp.Arch)

	if len(cp.Extra) > 0 {
		if rt.RestoreExtra == nil {
			return nil, false, fmt.Errorf("checkpoint: job %s: snapshot has platform state but platform cannot restore it", rt.cfg.Job)
		}
		extra := make(map[string][]byte, len(cp.Extra))
		for name, digest := range cp.Extra {
			data, err := rt.cfg.Store.Get(digest)
			if err != nil {
				return nil, false, fmt.Errorf("checkpoint: job %s extra %q: %w", rt.cfg.Job, name, err)
			}
			extra[name] = data
		}
		if err := rt.RestoreExtra(extra); err != nil {
			return nil, false, fmt.Errorf("checkpoint: job %s: %w", rt.cfg.Job, err)
		}
	}

	if cp.Console != "" {
		partial, err := rt.cfg.Store.Get(cp.Console)
		if err != nil {
			return nil, false, fmt.Errorf("checkpoint: job %s console: %w", rt.cfg.Job, err)
		}
		// Re-emit the pre-crash output so the resumed transcript is
		// byte-identical, and seed the recorder so the next snapshot and
		// the final exec record carry the full transcript.
		if _, err := rt.rec.Write(partial); err != nil {
			return nil, false, err
		}
	}
	rt.cfg.Obs.Counter("checkpoint_restores_total").Inc()
	restoreSpan := rt.cfg.Span.Child("restore")
	restoreSpan.Attr("exec", fmt.Sprint(rt.execIdx))
	restoreSpan.End()
	return rt.rec, true, nil
}

// FinishExec records a completed live exec. cycles is the platform cycle
// delta the exec charged.
func (rt *Runtime) FinishExec(exit int64, instrs, cycles uint64) error {
	consoleDigest, err := rt.cfg.Store.Put(rt.rec.buf.Bytes())
	if err != nil {
		return fmt.Errorf("checkpoint: job %s: storing console: %w", rt.cfg.Job, err)
	}
	rt.execs = append(rt.execs, ExecRecord{
		Sig:     rt.sig,
		Exit:    exit,
		Instrs:  instrs,
		Cycles:  cycles,
		Console: consoleDigest,
	})
	rt.execIdx++
	rt.rec = nil
	rt.digests = nil
	return nil
}

// snapshot is the sim.Machine CkptFn: serialize the machine at the
// current instruction boundary and flip the pointer file to it.
func (rt *Runtime) snapshot(m *sim.Machine) error {
	span := rt.cfg.Span.Child("checkpoint")
	defer span.End()
	cp := &Checkpoint{
		Version: Version,
		Job:     rt.cfg.Job,
		ExecIdx: rt.execIdx,
		Sig:     rt.sig,
		Arch:    m.SaveArch(),
		Execs:   append([]ExecRecord(nil), rt.execs...),
	}

	// Only re-hash pages written since the previous snapshot; clean pages
	// reuse their cached digest (and the CAS dedups the bytes regardless).
	dirty := m.Mem.TakeDirty()
	for _, pn := range m.Mem.PageNumbers() {
		digest, ok := rt.digests[pn]
		if _, wrote := dirty[pn]; wrote || !ok {
			var err error
			digest, err = rt.cfg.Store.Put(m.Mem.PageBytes(pn))
			if err != nil {
				return fmt.Errorf("checkpoint: job %s: storing page %#x: %w", rt.cfg.Job, pn, err)
			}
			rt.digests[pn] = digest
		}
		cp.Pages = append(cp.Pages, PageRef{PN: pn, Digest: digest})
	}

	consoleDigest, err := rt.cfg.Store.Put(rt.rec.buf.Bytes())
	if err != nil {
		return fmt.Errorf("checkpoint: job %s: storing console: %w", rt.cfg.Job, err)
	}
	cp.Console = consoleDigest

	if rt.SaveExtra != nil {
		extra, err := rt.SaveExtra()
		if err != nil {
			return fmt.Errorf("checkpoint: job %s: saving platform state: %w", rt.cfg.Job, err)
		}
		if len(extra) > 0 {
			cp.Extra = make(map[string]string, len(extra))
			for name, data := range extra {
				digest, err := rt.cfg.Store.Put(data)
				if err != nil {
					return fmt.Errorf("checkpoint: job %s: storing %q state: %w", rt.cfg.Job, name, err)
				}
				cp.Extra[name] = digest
			}
		}
	}

	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	digest, err := rt.cfg.Store.Put(data)
	if err != nil {
		return fmt.Errorf("checkpoint: job %s: storing checkpoint: %w", rt.cfg.Job, err)
	}
	ptr := Pointer{Job: rt.cfg.Job, Digest: digest, Exec: rt.execIdx, Instret: cp.Arch.Instret}
	pdata, err := json.MarshalIndent(&ptr, "", "  ")
	if err != nil {
		return err
	}
	// Atomic flip: the pointer only ever names a fully stored checkpoint.
	if err := hostutil.WriteFileAtomic(PointerPath(rt.cfg.Dir, rt.cfg.Job), pdata, 0o644); err != nil {
		return fmt.Errorf("checkpoint: job %s: writing pointer: %w", rt.cfg.Job, err)
	}
	rt.cfg.Obs.Counter("checkpoint_writes_total").Inc()
	if rt.cfg.OnSnapshot != nil {
		if err := rt.cfg.OnSnapshot(ptr, cp); err != nil {
			return fmt.Errorf("checkpoint: job %s: snapshot hook: %w", rt.cfg.Job, err)
		}
	}
	return nil
}

// Clear removes the job's pointer file — called once the job's final
// status is durable in the journal, so the GC may reclaim its blobs.
func Clear(dir, job string) error {
	err := os.Remove(PointerPath(dir, job))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Verify checks that every blob a checkpoint references is present in
// the store, returning a description of each problem.
func (cp *Checkpoint) Verify(store *cas.Store) []string {
	var problems []string
	for _, d := range cp.Refs() {
		if !store.Has(d) {
			problems = append(problems, fmt.Sprintf("checkpoint for %s (exec %d): missing blob %s", cp.Job, cp.ExecIdx, d[:12]))
		}
	}
	return problems
}
