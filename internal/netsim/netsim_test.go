package netsim

import (
	"bytes"
	"sync"
	"testing"
)

func TestRDMAReadWrite(t *testing.T) {
	f := New(DefaultConfig())
	mem := make([]byte, 4096)
	for i := range mem {
		mem[i] = byte(i)
	}
	f.RegisterMemory("server", 0x100000, mem)

	data, lat, err := f.RDMARead("server", 0x100010, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, mem[0x10:0x20]) {
		t.Error("read wrong data")
	}
	if lat != 2*200+16/8 {
		t.Errorf("latency = %d", lat)
	}

	if _, err := f.RDMAWrite("server", 0x100000, []byte{0xaa, 0xbb}); err != nil {
		t.Fatal(err)
	}
	data, _, _ = f.RDMARead("server", 0x100000, 2)
	if data[0] != 0xaa || data[1] != 0xbb {
		t.Error("write not visible")
	}
}

func TestLatencyScalesWithSize(t *testing.T) {
	f := New(Config{LatencyCycles: 100, BytesPerCycle: 4})
	f.RegisterMemory("s", 0, make([]byte, 8192))
	_, small, _ := f.RDMARead("s", 0, 64)
	_, large, _ := f.RDMARead("s", 0, 4096)
	if large <= small {
		t.Errorf("latency should scale: %d vs %d", small, large)
	}
	if small != 200+16 || large != 200+1024 {
		t.Errorf("latencies = %d, %d", small, large)
	}
}

func TestUnknownNodeAndRange(t *testing.T) {
	f := New(DefaultConfig())
	f.RegisterMemory("s", 0x1000, make([]byte, 64))
	if _, _, err := f.RDMARead("nobody", 0x1000, 8); err == nil {
		t.Error("expected error for unknown node")
	}
	if _, _, err := f.RDMARead("s", 0x1040, 8); err == nil {
		t.Error("expected error for out-of-range read")
	}
	if _, _, err := f.RDMARead("s", 0xfff, 8); err == nil {
		t.Error("expected error for straddling read")
	}
	if _, err := f.RDMAWrite("s", 0x1038, make([]byte, 16)); err == nil {
		t.Error("expected error for overflowing write")
	}
}

func TestMultipleRegions(t *testing.T) {
	f := New(DefaultConfig())
	f.RegisterMemory("s", 0x1000, []byte{1})
	f.RegisterMemory("s", 0x2000, []byte{2})
	d, _, err := f.RDMARead("s", 0x2000, 1)
	if err != nil || d[0] != 2 {
		t.Errorf("second region read: %v %v", d, err)
	}
	if !f.HasNode("s") || f.HasNode("t") {
		t.Error("HasNode wrong")
	}
}

func TestStats(t *testing.T) {
	f := New(DefaultConfig())
	f.RegisterMemory("s", 0, make([]byte, 1024))
	f.RDMARead("s", 0, 100)
	f.RDMAWrite("s", 0, make([]byte, 50))
	st := f.SnapshotStats()
	if st.RDMAReads != 1 || st.BytesRead != 100 || st.RDMAWrites != 1 || st.BytesWrite != 50 {
		t.Errorf("stats = %+v", st)
	}
}

func TestConcurrentAccess(t *testing.T) {
	f := New(DefaultConfig())
	f.RegisterMemory("s", 0, make([]byte, 1<<16))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				addr := uint64((g*1000 + i) % (1 << 15))
				f.RDMAWrite("s", addr, []byte{byte(i)})
				f.RDMARead("s", addr, 1)
			}
		}(g)
	}
	wg.Wait()
	st := f.SnapshotStats()
	if st.RDMAReads != 8000 || st.RDMAWrites != 8000 {
		t.Errorf("stats after concurrent use: %+v", st)
	}
}

func TestZeroBandwidthDefaults(t *testing.T) {
	f := New(Config{LatencyCycles: 10})
	f.RegisterMemory("s", 0, make([]byte, 64))
	if _, _, err := f.RDMARead("s", 0, 8); err != nil {
		t.Errorf("zero bandwidth config should default sanely: %v", err)
	}
}
