package netsim

import (
	"testing"

	"firemarshal/internal/sim"
)

func TestNICRegisterFlow(t *testing.T) {
	fabric := New(DefaultConfig())
	nic := &NIC{Fabric: fabric, NodeName: "n0"}
	m := sim.NewMachine()
	m.Mem.WriteBytes(0x100000, []byte{9, 8, 7, 6})

	store := func(off, val uint64) error {
		_, err := nic.Store(m, NICBase+off, 8, val)
		return err
	}
	if err := store(0x00, 0x100000); err != nil {
		t.Fatal(err)
	}
	if err := store(0x08, 4); err != nil {
		t.Fatal(err)
	}
	if err := store(0x10, 1); err != nil {
		t.Fatal(err)
	}
	count, _, err := nic.Load(m, NICBase+0x18, 8)
	if err != nil || count != 1 {
		t.Errorf("count = %d, %v", count, err)
	}
	data, _, err := fabric.RDMARead("n0", 0x100000, 4)
	if err != nil || data[0] != 9 || data[3] != 6 {
		t.Errorf("registered data = %v, %v", data, err)
	}
}

func TestNICErrors(t *testing.T) {
	m := sim.NewMachine()
	// No fabric: the functional-simulation limitation of §VI.
	nic := &NIC{NodeName: "n0"}
	nic.Store(m, NICBase+0x08, 8, 64)
	if _, err := nic.Store(m, NICBase+0x10, 8, 1); err == nil {
		t.Error("register without fabric must fail (no network model in functional sim)")
	}
	// Zero size.
	nic2 := &NIC{Fabric: New(DefaultConfig()), NodeName: "n"}
	if _, err := nic2.Store(m, NICBase+0x10, 8, 1); err == nil {
		t.Error("zero-size register must fail")
	}
	// Unknown registers.
	if _, err := nic2.Store(m, NICBase+0x18, 8, 1); err == nil {
		t.Error("store to count register must fail")
	}
	if _, _, err := nic2.Load(m, NICBase+0x00, 8); err == nil {
		t.Error("load from base register must fail")
	}
}

func TestNICContains(t *testing.T) {
	nic := &NIC{}
	if !nic.Contains(NICBase) || !nic.Contains(NICBase+0x18) {
		t.Error("NIC must claim its registers")
	}
	if nic.Contains(NICBase-1) || nic.Contains(NICBase+0x20) {
		t.Error("NIC claims too much")
	}
	if nic.Name() != "icenic" {
		t.Error("name wrong")
	}
}
