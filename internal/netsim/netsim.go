// Package netsim models the network connecting jobs in a multi-node
// cycle-exact simulation (the role of FireSim's simulated datacenter
// network, §III-A "jobs ... will be instantiated as network nodes in
// FireSim simulation"). It provides an RDMA-capable fabric: nodes register
// memory regions with their simulated NIC, and remote nodes read or write
// those regions without involving the owner's CPU — exactly the property
// the Page Fault Accelerator exploits (§IV-A).
//
// The paper notes that functional simulation lacks a network model (§VI);
// this package is therefore only wired into the cycle-exact simulator,
// while the functional Spike golden model emulates remote memory locally.
package netsim

import (
	"fmt"
	"sync"
)

// Config sets the fabric timing model.
type Config struct {
	// LatencyCycles is the one-way propagation latency per message.
	LatencyCycles uint64
	// BytesPerCycle is the per-link bandwidth.
	BytesPerCycle uint64
}

// DefaultConfig models a low-latency datacenter link: 200-cycle propagation,
// 8 bytes/cycle.
func DefaultConfig() Config {
	return Config{LatencyCycles: 200, BytesPerCycle: 8}
}

// Fabric connects the nodes of one simulated cluster. It is safe for
// concurrent use: nodes simulate in parallel on the host.
type Fabric struct {
	cfg Config

	mu      sync.Mutex
	regions map[string][]*region
	stats   Stats
}

// Stats counts fabric traffic.
type Stats struct {
	RDMAReads  uint64
	RDMAWrites uint64
	BytesRead  uint64
	BytesWrite uint64
}

type region struct {
	base uint64
	data []byte
}

// New creates an empty fabric.
func New(cfg Config) *Fabric {
	if cfg.BytesPerCycle == 0 {
		cfg.BytesPerCycle = 1
	}
	return &Fabric{cfg: cfg, regions: map[string][]*region{}}
}

// RegisterMemory exposes a memory region of the named node for RDMA. The
// fabric takes ownership of data (the NIC's registered buffer).
func (f *Fabric) RegisterMemory(node string, base uint64, data []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.regions[node] = append(f.regions[node], &region{base: base, data: data})
}

// HasNode reports whether the node registered any memory.
func (f *Fabric) HasNode(node string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.regions[node]) > 0
}

func (f *Fabric) find(node string, addr uint64, n int) (*region, error) {
	for _, r := range f.regions[node] {
		if addr >= r.base && addr+uint64(n) <= r.base+uint64(len(r.data)) {
			return r, nil
		}
	}
	return nil, fmt.Errorf("netsim: node %q has no registered region covering [%#x,%#x)", node, addr, addr+uint64(n))
}

// transferCycles returns the modeled cycles for an n-byte round trip.
func (f *Fabric) transferCycles(n int) uint64 {
	return 2*f.cfg.LatencyCycles + uint64(n)/f.cfg.BytesPerCycle
}

// RDMARead fetches n bytes at addr from the node's registered memory,
// returning the data and the modeled latency in cycles.
func (f *Fabric) RDMARead(node string, addr uint64, n int) ([]byte, uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.find(node, addr, n)
	if err != nil {
		return nil, 0, err
	}
	off := addr - r.base
	out := append([]byte(nil), r.data[off:off+uint64(n)]...)
	f.stats.RDMAReads++
	f.stats.BytesRead += uint64(n)
	return out, f.transferCycles(n), nil
}

// RDMAWrite stores data into the node's registered memory, returning the
// modeled latency in cycles.
func (f *Fabric) RDMAWrite(node string, addr uint64, data []byte) (uint64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	r, err := f.find(node, addr, len(data))
	if err != nil {
		return 0, err
	}
	copy(r.data[addr-r.base:], data)
	f.stats.RDMAWrites++
	f.stats.BytesWrite += uint64(len(data))
	return f.transferCycles(len(data)), nil
}

// SnapshotStats returns accumulated traffic counters.
func (f *Fabric) SnapshotStats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
