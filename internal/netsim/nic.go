package netsim

import (
	"fmt"

	"firemarshal/internal/sim"
)

// NIC is the RDMA-capable network interface exposed to guests. A memory
// server (the bare-metal job of Listing 1) registers a region of its memory
// with the NIC; the fabric then serves RDMA reads/writes against it without
// CPU involvement — the property the PFA leverages (§IV-A).
type NIC struct {
	// Fabric is the cluster network.
	Fabric *Fabric
	// NodeName identifies this node on the fabric.
	NodeName string

	base, size uint64
	registered int
}

// NICBase is the NIC's MMIO address.
const NICBase = 0x57000000

// NIC register offsets.
const (
	nicRegBase     = 0x00 // store: region base
	nicRegSize     = 0x08 // store: region size
	nicRegRegister = 0x10 // store: snapshot [base,base+size) and register it
	nicRegCount    = 0x18 // load: regions registered so far
	nicRegSpan     = 0x20
)

// Name implements sim.Device.
func (n *NIC) Name() string { return "icenic" }

// Contains implements sim.Device.
func (n *NIC) Contains(addr uint64) bool {
	return addr >= NICBase && addr < NICBase+nicRegSpan
}

// AddrRange implements sim.AddrRanger for the machine's device index.
func (n *NIC) AddrRange() (uint64, uint64) { return NICBase, NICBase + nicRegSpan }

// Load implements sim.Device.
func (n *NIC) Load(m *sim.Machine, addr uint64, size int) (uint64, uint64, error) {
	switch addr - NICBase {
	case nicRegCount:
		return uint64(n.registered), 0, nil
	default:
		return 0, 0, fmt.Errorf("netsim: NIC load from unknown register %#x", addr)
	}
}

// Store implements sim.Device.
func (n *NIC) Store(m *sim.Machine, addr uint64, size int, val uint64) (uint64, error) {
	switch addr - NICBase {
	case nicRegBase:
		n.base = val
		return 0, nil
	case nicRegSize:
		n.size = val
		return 0, nil
	case nicRegRegister:
		if n.Fabric == nil {
			return 0, fmt.Errorf("netsim: NIC has no fabric (functional simulation cannot model inter-job networking)")
		}
		if n.size == 0 {
			return 0, fmt.Errorf("netsim: NIC register with zero size")
		}
		data := m.Mem.ReadBytes(n.base, int(n.size))
		n.Fabric.RegisterMemory(n.NodeName, n.base, data)
		n.registered++
		return 0, nil
	default:
		return 0, fmt.Errorf("netsim: NIC store to unknown register %#x", addr)
	}
}

var _ sim.Device = (*NIC)(nil)
